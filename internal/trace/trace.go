// Package trace defines the measurement records the crawler persists and
// the anonymization applied before analysis. The paper stored only metadata
// — broadcast IDs, timestamps, viewer join times, comment/heart timestamps,
// never content — and "all identifiers are securely anonymized before
// analysis" (§3.1); Anonymizer reproduces that with keyed HMAC-SHA256 so
// equal IDs stay joinable across records without being reversible.
package trace

import (
	"bufio"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// BroadcastRecord is one crawled broadcast's metadata (§3.1 field list).
type BroadcastRecord struct {
	BroadcastID string    `json:"broadcast_id"`
	Broadcaster string    `json:"broadcaster"`
	StartedAt   time.Time `json:"started_at"`
	EndedAt     time.Time `json:"ended_at,omitempty"`
	Joins       []Join    `json:"joins,omitempty"`
	Events      []Event   `json:"events,omitempty"`
}

// Join is one viewer arrival.
type Join struct {
	UserID string    `json:"user_id"`
	At     time.Time `json:"at"`
}

// Event is one timestamped comment or heart (no content is stored).
type Event struct {
	UserID string    `json:"user_id"`
	Kind   string    `json:"kind"`
	At     time.Time `json:"at"`
}

// DelayRecord is one chunk/frame delay observation from the measurement
// crawlers (§4.3).
type DelayRecord struct {
	BroadcastID string        `json:"broadcast_id"`
	Kind        string        `json:"kind"` // "frame" or "chunk"
	Seq         uint64        `json:"seq"`
	CapturedAt  time.Time     `json:"captured_at"`
	OriginAt    time.Time     `json:"origin_at,omitempty"`
	EdgeAt      time.Time     `json:"edge_at,omitempty"`
	Delay       time.Duration `json:"delay"`
}

// Anonymizer pseudonymizes identifiers with HMAC-SHA256 under a secret key.
type Anonymizer struct {
	key []byte
}

// NewAnonymizer builds an Anonymizer; the key never leaves the process.
func NewAnonymizer(key []byte) *Anonymizer {
	return &Anonymizer{key: append([]byte(nil), key...)}
}

// Anonymize maps an identifier to a stable 16-hex-char pseudonym.
func (a *Anonymizer) Anonymize(id string) string {
	mac := hmac.New(sha256.New, a.key)
	mac.Write([]byte(id))
	return hex.EncodeToString(mac.Sum(nil)[:8])
}

// AnonymizeRecord returns a copy of r with all identifiers pseudonymized.
func (a *Anonymizer) AnonymizeRecord(r BroadcastRecord) BroadcastRecord {
	out := r
	out.BroadcastID = a.Anonymize(r.BroadcastID)
	out.Broadcaster = a.Anonymize(r.Broadcaster)
	out.Joins = make([]Join, len(r.Joins))
	for i, j := range r.Joins {
		out.Joins[i] = Join{UserID: a.Anonymize(j.UserID), At: j.At}
	}
	out.Events = make([]Event, len(r.Events))
	for i, e := range r.Events {
		out.Events[i] = Event{UserID: a.Anonymize(e.UserID), Kind: e.Kind, At: e.At}
	}
	return out
}

// Writer streams records as JSON lines.
type Writer struct {
	w   *bufio.Writer
	enc *json.Encoder
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	bw := bufio.NewWriter(w)
	return &Writer{w: bw, enc: json.NewEncoder(bw)}
}

// Write appends one record as a JSON line.
func (w *Writer) Write(v interface{}) error {
	if err := w.enc.Encode(v); err != nil {
		return fmt.Errorf("trace: encode: %w", err)
	}
	return nil
}

// Flush commits buffered output.
func (w *Writer) Flush() error { return w.w.Flush() }

// ReadBroadcasts parses a JSONL stream of BroadcastRecords.
func ReadBroadcasts(r io.Reader) ([]BroadcastRecord, error) {
	var out []BroadcastRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 16<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec BroadcastRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: scan: %w", err)
	}
	return out, nil
}

// ReadDelays parses a JSONL stream of DelayRecords.
func ReadDelays(r io.Reader) ([]DelayRecord, error) {
	var out []DelayRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 16<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec DelayRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: scan: %w", err)
	}
	return out, nil
}
