package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestAnonymizeStable(t *testing.T) {
	a := NewAnonymizer([]byte("secret"))
	if a.Anonymize("user-1") != a.Anonymize("user-1") {
		t.Fatal("pseudonym not stable")
	}
	if a.Anonymize("user-1") == a.Anonymize("user-2") {
		t.Fatal("distinct IDs collided")
	}
	b := NewAnonymizer([]byte("other-key"))
	if a.Anonymize("user-1") == b.Anonymize("user-1") {
		t.Fatal("pseudonym independent of key")
	}
	if got := a.Anonymize("user-1"); len(got) != 16 {
		t.Fatalf("pseudonym length = %d", len(got))
	}
}

func TestAnonymizeRecord(t *testing.T) {
	a := NewAnonymizer([]byte("k"))
	rec := BroadcastRecord{
		BroadcastID: "b1",
		Broadcaster: "alice",
		StartedAt:   time.Unix(100, 0),
		Joins:       []Join{{UserID: "bob", At: time.Unix(101, 0)}},
		Events:      []Event{{UserID: "bob", Kind: "heart", At: time.Unix(102, 0)}},
	}
	anon := a.AnonymizeRecord(rec)
	if anon.BroadcastID == "b1" || anon.Broadcaster == "alice" || anon.Joins[0].UserID == "bob" {
		t.Fatal("identifiers leaked")
	}
	// Join and event by the same user stay joinable.
	if anon.Joins[0].UserID != anon.Events[0].UserID {
		t.Fatal("pseudonyms not consistent within record")
	}
	// Timestamps are preserved (the analysis needs them).
	if !anon.Joins[0].At.Equal(rec.Joins[0].At) {
		t.Fatal("timestamps altered")
	}
	// Original untouched.
	if rec.BroadcastID != "b1" {
		t.Fatal("input mutated")
	}
}

func TestBroadcastJSONLRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	recs := []BroadcastRecord{
		{BroadcastID: "b1", Broadcaster: "u1", StartedAt: time.Unix(1, 0).UTC()},
		{BroadcastID: "b2", Broadcaster: "u2", StartedAt: time.Unix(2, 0).UTC(),
			Joins: []Join{{UserID: "v", At: time.Unix(3, 0).UTC()}}},
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBroadcasts(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].BroadcastID != "b1" || len(got[1].Joins) != 1 {
		t.Fatalf("roundtrip = %+v", got)
	}
}

func TestDelayJSONLRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	rec := DelayRecord{BroadcastID: "b", Kind: "chunk", Seq: 7, Delay: 1500 * time.Millisecond}
	if err := w.Write(rec); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	got, err := ReadDelays(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Seq != 7 || got[0].Delay != 1500*time.Millisecond {
		t.Fatalf("roundtrip = %+v", got)
	}
}

func TestReadBroadcastsBadLine(t *testing.T) {
	if _, err := ReadBroadcasts(strings.NewReader("{not json}\n")); err == nil {
		t.Fatal("bad line accepted")
	}
	if _, err := ReadDelays(strings.NewReader("{nope\n")); err == nil {
		t.Fatal("bad delay line accepted")
	}
}

func TestReadSkipsEmptyLines(t *testing.T) {
	in := "\n{\"broadcast_id\":\"b1\"}\n\n"
	got, err := ReadBroadcasts(strings.NewReader(in))
	if err != nil || len(got) != 1 {
		t.Fatalf("got %v, %v", got, err)
	}
}

// Property: anonymization is injective in practice and deterministic.
func TestAnonymizeProperty(t *testing.T) {
	a := NewAnonymizer([]byte("prop-key"))
	seen := map[string]string{}
	f := func(id string) bool {
		p := a.Anonymize(id)
		if p == id && id != "" {
			return false // must not be identity
		}
		if prev, ok := seen[p]; ok && prev != id {
			return false // collision
		}
		seen[p] = id
		return p == a.Anonymize(id)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
