package testutil

import (
	"strings"
	"testing"
	"time"
)

func TestSnapshotSeesSelf(t *testing.T) {
	snap := snapshot()
	if len(snap) == 0 {
		t.Fatal("empty snapshot")
	}
	found := false
	for _, stack := range snap {
		if strings.Contains(stack, "TestSnapshotSeesSelf") {
			found = true
		}
	}
	if !found {
		t.Fatal("snapshot missing the test goroutine")
	}
}

func TestLeakedDetectsAndClears(t *testing.T) {
	base := snapshot()

	block := make(chan struct{})
	started := make(chan struct{})
	go func() {
		close(started)
		<-block
	}()
	<-started

	l := leaked(base)
	if len(l) != 1 || !strings.Contains(l[0], "TestLeakedDetectsAndClears") {
		t.Fatalf("leaked = %d blocks (%v), want exactly the planted goroutine", len(l), l)
	}

	close(block)
	deadline := time.Now().Add(2 * time.Second)
	for len(leaked(base)) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("leak did not clear after goroutine exit")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestCheckGoroutinesPassesOnCleanTest(t *testing.T) {
	CheckGoroutines(t, time.Second)
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
}
