// Package testutil holds shared test helpers. Its centerpiece is a
// goroutine-leak checker built on snapshot/diff of runtime.Stack: instead of
// the ad-hoc NumGoroutine counting the early chaos tests used (which can
// both miss leaks masked by exits elsewhere and false-positive on unrelated
// background goroutines), it records which goroutines existed at test start
// and reports, with full stacks, any new ones that survive the test.
package testutil

import (
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"
)

// ignoredStacks marks goroutines outside the test's control: the testing
// framework itself and runtime/httputil background workers that outlive any
// single test by design.
var ignoredStacks = []string{
	"testing.(*T).Run",
	"testing.(*T).Parallel",
	"testing.runTests",
	"testing.(*M).",
	"runtime.goexit0",
	"created by runtime.gc",
	"runtime.MHeap_Scavenger",
	"runtime.ReadTrace",
	"signal.signal_recv",
	"created by os/signal.Notify",
	// DNS lookups and idle keep-alive conns drain on their own; the retry
	// window below handles the common case, this the stragglers.
	"net._C2func_getaddrinfo",
	"internal/singleflight.(*Group).doCall",
}

// snapshot returns the stack block of every live goroutine, keyed by the
// goroutine header line ("goroutine N [state]:" → "goroutine N").
func snapshot() map[string]string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	out := make(map[string]string)
	for _, block := range strings.Split(string(buf), "\n\n") {
		head, _, ok := strings.Cut(block, " [")
		if !ok || !strings.HasPrefix(head, "goroutine ") {
			continue
		}
		out[head] = block
	}
	return out
}

// leaked returns the stacks present now but absent from base, minus the
// ignore list and the calling goroutine.
func leaked(base map[string]string) []string {
	var out []string
cur:
	for id, stack := range snapshot() {
		if _, ok := base[id]; ok {
			continue
		}
		if strings.Contains(stack, "testutil.leaked") {
			continue // the goroutine running the checker itself
		}
		for _, ig := range ignoredStacks {
			if strings.Contains(stack, ig) {
				continue cur
			}
		}
		out = append(out, stack)
	}
	return out
}

// CheckGoroutines snapshots the live goroutines and registers a cleanup that
// fails the test if goroutines created after the snapshot are still running
// once the test (and all cleanups registered after this call) finish. Call
// it FIRST, before starting the system under test, so teardown registered
// later runs before the check (t.Cleanup is LIFO).
//
// The checker retries for up to wait (default 5 s when zero) because healthy
// teardown is asynchronous: conn close, context propagation, and timer
// drains all land shortly after Stop returns.
func CheckGoroutines(t testing.TB, wait ...time.Duration) {
	t.Helper()
	d := 5 * time.Second
	if len(wait) > 0 && wait[0] > 0 {
		d = wait[0]
	}
	base := snapshot()
	t.Cleanup(func() {
		// Idle keep-alive conns on the shared transport hold their
		// readLoop/writeLoop goroutines until closed.
		if tr, ok := http.DefaultTransport.(*http.Transport); ok {
			tr.CloseIdleConnections()
		}
		deadline := time.Now().Add(d)
		for {
			runtime.GC()
			l := leaked(base)
			if len(l) == 0 {
				return
			}
			if time.Now().After(deadline) {
				t.Errorf("testutil: %d leaked goroutine(s):\n\n%s", len(l), strings.Join(l, "\n\n"))
				return
			}
			time.Sleep(20 * time.Millisecond)
		}
	})
}
