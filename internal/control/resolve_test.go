package control

import (
	"context"
	"errors"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/geo"
	"repro/internal/testutil"
)

func TestResolveEdgeDoesNotRecordJoin(t *testing.T) {
	s := newTestService()
	u := s.Register("b")
	g, err := s.StartBroadcast(u.ID, geo.Location{City: "NYC"})
	if err != nil {
		t.Fatal(err)
	}
	url, err := s.ResolveEdge(g.BroadcastID, geo.Location{City: "SF"})
	if err != nil || url != "http://edge-1/hls" {
		t.Fatalf("ResolveEdge = %q, %v", url, err)
	}
	info, _ := s.Info(g.BroadcastID)
	if info.Viewers != 0 {
		t.Fatalf("Viewers = %d after ResolveEdge, want 0 (no join recorded)", info.Viewers)
	}
	if _, err := s.ResolveEdge("missing", geo.Location{}); !errors.Is(err, ErrNoBroadcast) {
		t.Fatalf("missing broadcast err = %v", err)
	}
}

func TestResolveEdgeWorksAfterBroadcastEnds(t *testing.T) {
	s := newTestService()
	u := s.Register("b")
	g, _ := s.StartBroadcast(u.ID, geo.Location{})
	if err := s.EndBroadcast(g.BroadcastID, g.Token); err != nil {
		t.Fatal(err)
	}
	// Join refuses ended broadcasts, but a viewer mid-replay must still be
	// able to re-resolve its edge.
	if _, err := s.Join(1, g.BroadcastID, geo.Location{}); !errors.Is(err, ErrEnded) {
		t.Fatalf("Join after end = %v, want ErrEnded", err)
	}
	if url, err := s.ResolveEdge(g.BroadcastID, geo.Location{}); err != nil || url == "" {
		t.Fatalf("ResolveEdge after end = %q, %v, want success", url, err)
	}
}

func TestResolveEdgeHTTPRoundTrip(t *testing.T) {
	testutil.CheckGoroutines(t)
	var mu sync.Mutex
	var gotLoc geo.Location
	s := NewService(Config{
		Routes: Routes{
			AssignOrigin: func(geo.Location) (string, string) { return "o1", "addr" },
			AssignEdge: func(id string, loc geo.Location) string {
				mu.Lock()
				gotLoc = loc
				mu.Unlock()
				return "http://edge-2/hls"
			},
		},
	})
	srv := httptest.NewServer(Handler("/api", s))
	defer srv.Close()
	client := &Client{BaseURL: srv.URL + "/api"}
	ctx := context.Background()

	u := s.Register("b")
	g, _ := s.StartBroadcast(u.ID, geo.Location{})
	url, err := client.ResolveEdge(ctx, g.BroadcastID, geo.Location{City: "São Paulo", Lat: -23.55, Lon: -46.63})
	if err != nil || url != "http://edge-2/hls" {
		t.Fatalf("ResolveEdge = %q, %v", url, err)
	}
	mu.Lock()
	defer mu.Unlock()
	if gotLoc.City != "São Paulo" || gotLoc.Lat != -23.55 || gotLoc.Lon != -46.63 {
		t.Fatalf("location did not survive the query string: %+v", gotLoc)
	}
	if _, err := client.ResolveEdge(ctx, "missing", geo.Location{}); !errors.Is(err, ErrNoBroadcast) {
		t.Fatalf("missing broadcast err = %v", err)
	}
}
