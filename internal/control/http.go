package control

import (
	"bytes"
	"context"
	"crypto/ed25519"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/geo"
)

// The control plane's HTTP surface stands in for Periscope's HTTPS API: the
// one channel that IS authenticated and confidential in the real system.
// (We serve plain HTTP on loopback; the trust property we reproduce is that
// the §7 attacker taps only the RTMP/HLS data path, never this channel.)

type registerReq struct {
	Name string `json:"name"`
}

type registerResp struct {
	ID uint64 `json:"id"`
}

type startReq struct {
	UserID  uint64   `json:"user_id"`
	City    string   `json:"city"`
	Lat     float64  `json:"lat"`
	Lon     float64  `json:"lon"`
	Private bool     `json:"private,omitempty"`
	Allowed []uint64 `json:"allowed,omitempty"`
}

type grantResp struct {
	BroadcastID string `json:"broadcast_id"`
	Token       string `json:"token"`
	OriginID    string `json:"origin_id"`
	RTMPAddr    string `json:"rtmp_addr,omitempty"`
	MessageURL  string `json:"message_url"`
	Private     bool   `json:"private,omitempty"`
	RTMPSAddr   string `json:"rtmps_addr,omitempty"`
	CAPEM       []byte `json:"ca_pem,omitempty"`
}

type endReq struct {
	Token string `json:"token"`
}

type pubKeyReq struct {
	Token     string `json:"token"`
	PubKeyHex string `json:"pubkey_hex"`
}

type pubKeyResp struct {
	PubKeyHex string `json:"pubkey_hex"`
}

type joinReq struct {
	UserID uint64  `json:"user_id"`
	City   string  `json:"city"`
	Lat    float64 `json:"lat"`
	Lon    float64 `json:"lon"`
}

type joinResp struct {
	Protocol    string `json:"protocol"`
	RTMPAddr    string `json:"rtmp_addr,omitempty"`
	HLSBaseURL  string `json:"hls_base_url,omitempty"`
	MessageURL  string `json:"message_url"`
	Private     bool   `json:"private,omitempty"`
	RTMPSAddr   string `json:"rtmps_addr,omitempty"`
	ViewerToken string `json:"viewer_token,omitempty"`
	CAPEM       []byte `json:"ca_pem,omitempty"`
}

type resolveEdgeResp struct {
	HLSBaseURL string `json:"hls_base_url"`
}

// Tenancy API payloads. Plans travel as planRec (the same codec the journal
// uses), so the wire shape and the durable shape cannot drift apart.

type tenantCreateReq struct {
	Name string  `json:"name"`
	Plan planRec `json:"plan"`
}

type tenantJSON struct {
	ID        string    `json:"id"`
	Name      string    `json:"name,omitempty"`
	Plan      planRec   `json:"plan"`
	Suspended bool      `json:"suspended,omitempty"`
	CreatedAt time.Time `json:"created_at"`
}

func toTenantJSON(t Tenant) tenantJSON {
	return tenantJSON{
		ID:        t.ID,
		Name:      t.Name,
		Plan:      planRecOf(t.Plan),
		Suspended: t.Suspended,
		CreatedAt: t.CreatedAt,
	}
}

type keyIssueResp struct {
	Key string `json:"key"`
}

type keyRevokeReq struct {
	Key string `json:"key"`
}

type usageResp struct {
	TenantID string     `json:"tenant_id"`
	Days     []UsageDay `json:"days"`
}

// apiKeyHeader authenticates tenant-owned start/join requests. Presence of
// the header selects the key-authenticated path.
const apiKeyHeader = "X-API-Key"

// errCodeHeader disambiguates error statuses for the client: 403 is both
// "bad broadcast token" and "revoked key / suspended tenant", 401 both "not
// invited" and "bad API key". The body stays human-readable.
const errCodeHeader = "X-Control-Error"

type summaryJSON struct {
	BroadcastID string    `json:"broadcast_id"`
	Broadcaster uint64    `json:"broadcaster"`
	StartedAt   time.Time `json:"started_at"`
	EndedAt     time.Time `json:"ended_at,omitempty"`
	Live        bool      `json:"live"`
	Viewers     int       `json:"viewers"`
	City        string    `json:"city"`
}

func toSummaryJSON(s Summary) summaryJSON {
	return summaryJSON{
		BroadcastID: s.BroadcastID,
		Broadcaster: s.Broadcaster,
		StartedAt:   s.StartedAt,
		EndedAt:     s.EndedAt,
		Live:        s.Live,
		Viewers:     s.Viewers,
		City:        s.Location.City,
	}
}

// Handler exposes the service over HTTP under prefix (e.g. "/api").
func Handler(prefix string, s *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(prefix+"/users", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var req registerReq
		if !decodeJSON(w, r, &req) {
			return
		}
		u, err := s.RegisterUser(req.Name)
		if respondErr(w, err) {
			return
		}
		writeJSON(w, registerResp{ID: u.ID})
	})
	mux.HandleFunc(prefix+"/global", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		if s.Down() {
			respondErr(w, ErrUnavailable)
			return
		}
		list := s.GlobalList()
		out := make([]summaryJSON, 0, len(list))
		for _, b := range list {
			out = append(out, toSummaryJSON(b))
		}
		writeJSON(w, struct {
			Broadcasts []summaryJSON `json:"broadcasts"`
		}{out})
	})
	mux.HandleFunc(prefix+"/broadcasts", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var req startReq
		if !decodeJSON(w, r, &req) {
			return
		}
		loc := geo.Location{City: req.City, Lat: req.Lat, Lon: req.Lon}
		var grant BroadcastGrant
		var err error
		switch key := r.Header.Get(apiKeyHeader); {
		case key != "" && req.Private:
			// Private broadcasts are invite-keyed per user; tenant-owned
			// private starts are not a thing yet.
			http.Error(w, "private broadcasts cannot be key-authenticated", http.StatusBadRequest)
			return
		case key != "":
			grant, err = s.StartBroadcastKey(key, req.UserID, loc)
		case req.Private:
			grant, err = s.StartPrivateBroadcast(req.UserID, loc, req.Allowed)
		default:
			grant, err = s.StartBroadcast(req.UserID, loc)
		}
		if respondErr(w, err) {
			return
		}
		writeJSON(w, grantResp{
			BroadcastID: grant.BroadcastID,
			Token:       grant.Token,
			OriginID:    grant.OriginID,
			RTMPAddr:    grant.RTMPAddr,
			MessageURL:  grant.MessageURL,
			Private:     grant.Private,
			RTMPSAddr:   grant.RTMPSAddr,
			CAPEM:       grant.CAPEM,
		})
	})
	mux.HandleFunc(prefix+"/broadcasts/", func(w http.ResponseWriter, r *http.Request) {
		rest := strings.TrimPrefix(r.URL.Path, prefix+"/broadcasts/")
		parts := strings.Split(rest, "/")
		id := parts[0]
		switch {
		case len(parts) == 1 && r.Method == http.MethodGet:
			info, err := s.Info(id)
			if respondErr(w, err) {
				return
			}
			writeJSON(w, toSummaryJSON(info))
		case len(parts) == 2 && parts[1] == "end" && r.Method == http.MethodPost:
			var req endReq
			if !decodeJSON(w, r, &req) {
				return
			}
			if respondErr(w, s.EndBroadcast(id, req.Token)) {
				return
			}
			writeJSON(w, struct{}{})
		case len(parts) == 2 && parts[1] == "join" && r.Method == http.MethodPost:
			var req joinReq
			if !decodeJSON(w, r, &req) {
				return
			}
			loc := geo.Location{City: req.City, Lat: req.Lat, Lon: req.Lon}
			var grant ViewerGrant
			var err error
			if key := r.Header.Get(apiKeyHeader); key != "" {
				grant, err = s.JoinKey(key, req.UserID, id, loc)
			} else {
				grant, err = s.Join(req.UserID, id, loc)
			}
			if respondErr(w, err) {
				return
			}
			writeJSON(w, joinResp{
				Protocol:    string(grant.Protocol),
				RTMPAddr:    grant.RTMPAddr,
				HLSBaseURL:  grant.HLSBaseURL,
				MessageURL:  grant.MessageURL,
				Private:     grant.Private,
				RTMPSAddr:   grant.RTMPSAddr,
				ViewerToken: grant.ViewerToken,
				CAPEM:       grant.CAPEM,
			})
		case len(parts) == 2 && parts[1] == "pubkey" && r.Method == http.MethodPost:
			var req pubKeyReq
			if !decodeJSON(w, r, &req) {
				return
			}
			key, err := hex.DecodeString(req.PubKeyHex)
			if err != nil || len(key) != ed25519.PublicKeySize {
				http.Error(w, "bad public key", http.StatusBadRequest)
				return
			}
			if respondErr(w, s.RegisterPublicKey(id, req.Token, key)) {
				return
			}
			writeJSON(w, struct{}{})
		case len(parts) == 2 && parts[1] == "pubkey" && r.Method == http.MethodGet:
			key := s.PublicKey(id)
			writeJSON(w, pubKeyResp{PubKeyHex: hex.EncodeToString(key)})
		case len(parts) == 2 && parts[1] == "edge" && r.Method == http.MethodGet:
			q := r.URL.Query()
			loc := geo.Location{City: q.Get("city")}
			fmt.Sscanf(q.Get("lat"), "%f", &loc.Lat)
			fmt.Sscanf(q.Get("lon"), "%f", &loc.Lon)
			url, err := s.ResolveEdge(id, loc)
			if respondErr(w, err) {
				return
			}
			writeJSON(w, resolveEdgeResp{HLSBaseURL: url})
		default:
			http.NotFound(w, r)
		}
	})
	mux.HandleFunc(prefix+"/tenants", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodPost:
			var req tenantCreateReq
			if !decodeJSON(w, r, &req) {
				return
			}
			t, err := s.CreateTenant(req.Name, req.Plan.plan())
			if respondErr(w, err) {
				return
			}
			writeJSON(w, toTenantJSON(t))
		case http.MethodGet:
			if s.Down() {
				respondErr(w, ErrUnavailable)
				return
			}
			list := s.Tenants()
			out := make([]tenantJSON, 0, len(list))
			for _, t := range list {
				out = append(out, toTenantJSON(t))
			}
			writeJSON(w, struct {
				Tenants []tenantJSON `json:"tenants"`
			}{out})
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
	mux.HandleFunc(prefix+"/tenants/", func(w http.ResponseWriter, r *http.Request) {
		rest := strings.TrimPrefix(r.URL.Path, prefix+"/tenants/")
		parts := strings.Split(rest, "/")
		id := parts[0]
		switch {
		case len(parts) == 1 && r.Method == http.MethodGet:
			t, err := s.TenantInfo(id)
			if respondErr(w, err) {
				return
			}
			writeJSON(w, toTenantJSON(t))
		case len(parts) == 2 && parts[1] == "plan" && r.Method == http.MethodPost:
			var req planRec
			if !decodeJSON(w, r, &req) {
				return
			}
			if respondErr(w, s.SetTenantPlan(id, req.plan())) {
				return
			}
			writeJSON(w, struct{}{})
		case len(parts) == 2 && parts[1] == "keys" && r.Method == http.MethodPost:
			k, err := s.IssueAPIKey(id)
			if respondErr(w, err) {
				return
			}
			writeJSON(w, keyIssueResp{Key: k.Key})
		case len(parts) == 2 && parts[1] == "suspend" && r.Method == http.MethodPost:
			if respondErr(w, s.SuspendTenant(id)) {
				return
			}
			writeJSON(w, struct{}{})
		case len(parts) == 2 && parts[1] == "resume" && r.Method == http.MethodPost:
			if respondErr(w, s.ResumeTenant(id)) {
				return
			}
			writeJSON(w, struct{}{})
		default:
			http.NotFound(w, r)
		}
	})
	mux.HandleFunc(prefix+"/keys/revoke", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var req keyRevokeReq
		if !decodeJSON(w, r, &req) {
			return
		}
		if respondErr(w, s.RevokeAPIKey(req.Key)) {
			return
		}
		writeJSON(w, struct{}{})
	})
	mux.HandleFunc(prefix+"/usage", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		tenantID := r.URL.Query().Get("tenant")
		if tenantID == "" {
			http.Error(w, "missing tenant parameter", http.StatusBadRequest)
			return
		}
		days, err := s.Usage(tenantID)
		if respondErr(w, err) {
			return
		}
		if days == nil {
			days = []UsageDay{}
		}
		writeJSON(w, usageResp{TenantID: tenantID, Days: days})
	})
	return mux
}

func decodeJSON(w http.ResponseWriter, r *http.Request, v interface{}) bool {
	body, err := io.ReadAll(io.LimitReader(r.Body, 64<<10))
	if err != nil || json.Unmarshal(body, v) != nil {
		http.Error(w, "bad request body", http.StatusBadRequest)
		return false
	}
	return true
}

// errCode is the X-Control-Error value for each sentinel; do is the inverse.
func respondErr(w http.ResponseWriter, err error) bool {
	if err == nil {
		return false
	}
	var qe *QuotaError
	switch {
	case errors.Is(err, ErrNoBroadcast):
		w.Header().Set(errCodeHeader, "no_broadcast")
		http.Error(w, err.Error(), http.StatusNotFound)
	case errors.Is(err, ErrNoTenant):
		w.Header().Set(errCodeHeader, "no_tenant")
		http.Error(w, err.Error(), http.StatusNotFound)
	case errors.Is(err, ErrBadToken):
		w.Header().Set(errCodeHeader, "bad_token")
		http.Error(w, err.Error(), http.StatusForbidden)
	case errors.Is(err, ErrKeyRevoked):
		w.Header().Set(errCodeHeader, "key_revoked")
		http.Error(w, err.Error(), http.StatusForbidden)
	case errors.Is(err, ErrTenantSuspended):
		w.Header().Set(errCodeHeader, "tenant_suspended")
		http.Error(w, err.Error(), http.StatusForbidden)
	case errors.Is(err, ErrBadAPIKey):
		w.Header().Set(errCodeHeader, "bad_api_key")
		http.Error(w, err.Error(), http.StatusUnauthorized)
	case errors.Is(err, ErrNotInvited):
		w.Header().Set(errCodeHeader, "not_invited")
		http.Error(w, err.Error(), http.StatusUnauthorized)
	case errors.As(err, &qe):
		// Quota and plan-rate rejections: 429 with the server-computed wait.
		// FailoverPoller rides this via the RetryAfterHint on the client's
		// reconstructed QuotaError.
		w.Header().Set(errCodeHeader, "quota")
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(qe.RetryAfter)))
		http.Error(w, err.Error(), http.StatusTooManyRequests)
	case errors.Is(err, ErrEnded):
		w.Header().Set(errCodeHeader, "ended")
		http.Error(w, err.Error(), http.StatusGone)
	case errors.Is(err, ErrUnavailable):
		// The crashed control plane's 503 is the degraded-mode trigger:
		// clients fall back to cached grants and retry with backoff. Auth
		// fails closed here: key-authenticated calls get the same 503, never
		// a tenancy answer derived from wiped state.
		w.Header().Set(errCodeHeader, "unavailable")
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
	return true
}

// retryAfterSeconds rounds a wait up to whole seconds (the Retry-After unit),
// floor 1 so clients never busy-loop.
func retryAfterSeconds(d time.Duration) int {
	s := int((d + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		_ = err // response already started
	}
}

// Client is the app/crawler side of the control API.
type Client struct {
	// BaseURL includes the prefix, e.g. "http://ctrl:8080/api".
	BaseURL    string
	HTTPClient *http.Client
	// APIKey, when set, is attached as X-API-Key to every request, selecting
	// the key-authenticated (tenant-owned) start/join paths.
	APIKey string
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) post(ctx context.Context, path string, in, out interface{}) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if c.APIKey != "" {
		req.Header.Set(apiKeyHeader, c.APIKey)
	}
	return c.do(req, out)
}

func (c *Client) get(ctx context.Context, path string, out interface{}) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return err
	}
	if c.APIKey != "" {
		req.Header.Set(apiKeyHeader, c.APIKey)
	}
	return c.do(req, out)
}

func (c *Client) do(req *http.Request, out interface{}) error {
	resp, err := c.http().Do(req)
	if err != nil {
		return fmt.Errorf("control: %s %s: %w", req.Method, req.URL.Path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		if err := errFromResponse(resp); err != nil {
			return err
		}
		return fmt.Errorf("control: %s %s: status %d", req.Method, req.URL.Path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// errFromResponse reconstructs the service error from a non-200 response:
// the X-Control-Error code when present (it disambiguates statuses that
// carry two meanings), the historical status mapping otherwise.
func errFromResponse(resp *http.Response) error {
	switch resp.Header.Get(errCodeHeader) {
	case "no_broadcast":
		return ErrNoBroadcast
	case "no_tenant":
		return ErrNoTenant
	case "bad_token":
		return ErrBadToken
	case "key_revoked":
		return ErrKeyRevoked
	case "tenant_suspended":
		return ErrTenantSuspended
	case "bad_api_key":
		return ErrBadAPIKey
	case "not_invited":
		return ErrNotInvited
	case "ended":
		return ErrEnded
	case "unavailable":
		return ErrUnavailable
	case "quota":
		retry := time.Second
		if s, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && s > 0 {
			retry = time.Duration(s) * time.Second
		}
		return &QuotaError{Reason: "server quota rejection", RetryAfter: retry}
	}
	switch resp.StatusCode {
	case http.StatusNotFound:
		return ErrNoBroadcast
	case http.StatusForbidden:
		return ErrBadToken
	case http.StatusUnauthorized:
		return ErrNotInvited
	case http.StatusGone:
		return ErrEnded
	case http.StatusServiceUnavailable:
		return ErrUnavailable
	}
	return nil
}

// Register creates a user.
func (c *Client) Register(ctx context.Context, name string) (uint64, error) {
	var resp registerResp
	if err := c.post(ctx, "/users", registerReq{Name: name}, &resp); err != nil {
		return 0, err
	}
	return resp.ID, nil
}

// StartBroadcast opens a public broadcast for user at loc.
func (c *Client) StartBroadcast(ctx context.Context, userID uint64, loc geo.Location) (BroadcastGrant, error) {
	return c.startBroadcast(ctx, startReq{UserID: userID, City: loc.City, Lat: loc.Lat, Lon: loc.Lon})
}

// StartPrivateBroadcast opens an invite-only broadcast over RTMPS.
func (c *Client) StartPrivateBroadcast(ctx context.Context, userID uint64, loc geo.Location, allowed []uint64) (BroadcastGrant, error) {
	return c.startBroadcast(ctx, startReq{
		UserID: userID, City: loc.City, Lat: loc.Lat, Lon: loc.Lon,
		Private: true, Allowed: allowed,
	})
}

func (c *Client) startBroadcast(ctx context.Context, req startReq) (BroadcastGrant, error) {
	var resp grantResp
	if err := c.post(ctx, "/broadcasts", req, &resp); err != nil {
		return BroadcastGrant{}, err
	}
	return BroadcastGrant{
		BroadcastID: resp.BroadcastID,
		Token:       resp.Token,
		OriginID:    resp.OriginID,
		RTMPAddr:    resp.RTMPAddr,
		MessageURL:  resp.MessageURL,
		Private:     resp.Private,
		RTMPSAddr:   resp.RTMPSAddr,
		CAPEM:       resp.CAPEM,
	}, nil
}

// EndBroadcast finishes a broadcast.
func (c *Client) EndBroadcast(ctx context.Context, broadcastID, token string) error {
	return c.post(ctx, "/broadcasts/"+broadcastID+"/end", endReq{Token: token}, nil)
}

// RegisterPublicKey uploads the §7.2 signing key over the secure channel.
func (c *Client) RegisterPublicKey(ctx context.Context, broadcastID, token string, pub ed25519.PublicKey) error {
	return c.post(ctx, "/broadcasts/"+broadcastID+"/pubkey",
		pubKeyReq{Token: token, PubKeyHex: hex.EncodeToString(pub)}, nil)
}

// PublicKey fetches a broadcast's signing key; empty means unsigned.
func (c *Client) PublicKey(ctx context.Context, broadcastID string) (ed25519.PublicKey, error) {
	var resp pubKeyResp
	if err := c.get(ctx, "/broadcasts/"+broadcastID+"/pubkey", &resp); err != nil {
		return nil, err
	}
	if resp.PubKeyHex == "" {
		return nil, nil
	}
	key, err := hex.DecodeString(resp.PubKeyHex)
	if err != nil {
		return nil, err
	}
	return key, nil
}

// Join requests viewer access to a broadcast.
func (c *Client) Join(ctx context.Context, userID uint64, broadcastID string, loc geo.Location) (ViewerGrant, error) {
	var resp joinResp
	err := c.post(ctx, "/broadcasts/"+broadcastID+"/join",
		joinReq{UserID: userID, City: loc.City, Lat: loc.Lat, Lon: loc.Lon}, &resp)
	if err != nil {
		return ViewerGrant{}, err
	}
	return ViewerGrant{
		Protocol:    Protocol(resp.Protocol),
		RTMPAddr:    resp.RTMPAddr,
		HLSBaseURL:  resp.HLSBaseURL,
		MessageURL:  resp.MessageURL,
		Private:     resp.Private,
		RTMPSAddr:   resp.RTMPSAddr,
		ViewerToken: resp.ViewerToken,
		CAPEM:       resp.CAPEM,
	}, nil
}

// ResolveEdge re-resolves the healthy HLS edge for a broadcast without
// recording a join — the failover path viewers take when their edge dies.
func (c *Client) ResolveEdge(ctx context.Context, broadcastID string, loc geo.Location) (string, error) {
	var resp resolveEdgeResp
	path := fmt.Sprintf("/broadcasts/%s/edge?city=%s&lat=%g&lon=%g",
		broadcastID, url.QueryEscape(loc.City), loc.Lat, loc.Lon)
	if err := c.get(ctx, path, &resp); err != nil {
		return "", err
	}
	return resp.HLSBaseURL, nil
}

// GlobalList fetches the 50-random live list.
func (c *Client) GlobalList(ctx context.Context) ([]Summary, error) {
	var resp struct {
		Broadcasts []summaryJSON `json:"broadcasts"`
	}
	if err := c.get(ctx, "/global", &resp); err != nil {
		return nil, err
	}
	out := make([]Summary, 0, len(resp.Broadcasts))
	for _, b := range resp.Broadcasts {
		out = append(out, Summary{
			BroadcastID: b.BroadcastID,
			Broadcaster: b.Broadcaster,
			StartedAt:   b.StartedAt,
			EndedAt:     b.EndedAt,
			Live:        b.Live,
			Viewers:     b.Viewers,
			Location:    geo.Location{City: b.City},
		})
	}
	return out, nil
}

// CreateTenant registers a tenant (admin surface).
func (c *Client) CreateTenant(ctx context.Context, name string, plan Plan) (Tenant, error) {
	var resp tenantJSON
	if err := c.post(ctx, "/tenants", tenantCreateReq{Name: name, Plan: planRecOf(plan)}, &resp); err != nil {
		return Tenant{}, err
	}
	return Tenant{
		ID:        resp.ID,
		Name:      resp.Name,
		Plan:      resp.Plan.plan(),
		Suspended: resp.Suspended,
		CreatedAt: resp.CreatedAt,
	}, nil
}

// IssueAPIKey mints a key for the tenant (admin surface).
func (c *Client) IssueAPIKey(ctx context.Context, tenantID string) (string, error) {
	var resp keyIssueResp
	if err := c.post(ctx, "/tenants/"+tenantID+"/keys", struct{}{}, &resp); err != nil {
		return "", err
	}
	return resp.Key, nil
}

// RevokeAPIKey invalidates a key (admin surface).
func (c *Client) RevokeAPIKey(ctx context.Context, key string) error {
	return c.post(ctx, "/keys/revoke", keyRevokeReq{Key: key}, nil)
}

// SuspendTenant blocks a tenant's key-authenticated calls (admin surface).
func (c *Client) SuspendTenant(ctx context.Context, tenantID string) error {
	return c.post(ctx, "/tenants/"+tenantID+"/suspend", struct{}{}, nil)
}

// ResumeTenant lifts a suspension (admin surface).
func (c *Client) ResumeTenant(ctx context.Context, tenantID string) error {
	return c.post(ctx, "/tenants/"+tenantID+"/resume", struct{}{}, nil)
}

// Usage fetches a tenant's per-day delivery rollups.
func (c *Client) Usage(ctx context.Context, tenantID string) ([]UsageDay, error) {
	var resp usageResp
	if err := c.get(ctx, "/usage?tenant="+url.QueryEscape(tenantID), &resp); err != nil {
		return nil, err
	}
	return resp.Days, nil
}

// Info fetches one broadcast summary.
func (c *Client) Info(ctx context.Context, broadcastID string) (Summary, error) {
	var b summaryJSON
	if err := c.get(ctx, "/broadcasts/"+broadcastID, &b); err != nil {
		return Summary{}, err
	}
	return Summary{
		BroadcastID: b.BroadcastID,
		Broadcaster: b.Broadcaster,
		StartedAt:   b.StartedAt,
		EndedAt:     b.EndedAt,
		Live:        b.Live,
		Viewers:     b.Viewers,
		Location:    geo.Location{City: b.City},
	}, nil
}
