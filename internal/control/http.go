package control

import (
	"bytes"
	"context"
	"crypto/ed25519"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"repro/internal/geo"
)

// The control plane's HTTP surface stands in for Periscope's HTTPS API: the
// one channel that IS authenticated and confidential in the real system.
// (We serve plain HTTP on loopback; the trust property we reproduce is that
// the §7 attacker taps only the RTMP/HLS data path, never this channel.)

type registerReq struct {
	Name string `json:"name"`
}

type registerResp struct {
	ID uint64 `json:"id"`
}

type startReq struct {
	UserID  uint64   `json:"user_id"`
	City    string   `json:"city"`
	Lat     float64  `json:"lat"`
	Lon     float64  `json:"lon"`
	Private bool     `json:"private,omitempty"`
	Allowed []uint64 `json:"allowed,omitempty"`
}

type grantResp struct {
	BroadcastID string `json:"broadcast_id"`
	Token       string `json:"token"`
	OriginID    string `json:"origin_id"`
	RTMPAddr    string `json:"rtmp_addr,omitempty"`
	MessageURL  string `json:"message_url"`
	Private     bool   `json:"private,omitempty"`
	RTMPSAddr   string `json:"rtmps_addr,omitempty"`
	CAPEM       []byte `json:"ca_pem,omitempty"`
}

type endReq struct {
	Token string `json:"token"`
}

type pubKeyReq struct {
	Token     string `json:"token"`
	PubKeyHex string `json:"pubkey_hex"`
}

type pubKeyResp struct {
	PubKeyHex string `json:"pubkey_hex"`
}

type joinReq struct {
	UserID uint64  `json:"user_id"`
	City   string  `json:"city"`
	Lat    float64 `json:"lat"`
	Lon    float64 `json:"lon"`
}

type joinResp struct {
	Protocol    string `json:"protocol"`
	RTMPAddr    string `json:"rtmp_addr,omitempty"`
	HLSBaseURL  string `json:"hls_base_url,omitempty"`
	MessageURL  string `json:"message_url"`
	Private     bool   `json:"private,omitempty"`
	RTMPSAddr   string `json:"rtmps_addr,omitempty"`
	ViewerToken string `json:"viewer_token,omitempty"`
	CAPEM       []byte `json:"ca_pem,omitempty"`
}

type resolveEdgeResp struct {
	HLSBaseURL string `json:"hls_base_url"`
}

type summaryJSON struct {
	BroadcastID string    `json:"broadcast_id"`
	Broadcaster uint64    `json:"broadcaster"`
	StartedAt   time.Time `json:"started_at"`
	EndedAt     time.Time `json:"ended_at,omitempty"`
	Live        bool      `json:"live"`
	Viewers     int       `json:"viewers"`
	City        string    `json:"city"`
}

func toSummaryJSON(s Summary) summaryJSON {
	return summaryJSON{
		BroadcastID: s.BroadcastID,
		Broadcaster: s.Broadcaster,
		StartedAt:   s.StartedAt,
		EndedAt:     s.EndedAt,
		Live:        s.Live,
		Viewers:     s.Viewers,
		City:        s.Location.City,
	}
}

// Handler exposes the service over HTTP under prefix (e.g. "/api").
func Handler(prefix string, s *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(prefix+"/users", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var req registerReq
		if !decodeJSON(w, r, &req) {
			return
		}
		u, err := s.RegisterUser(req.Name)
		if respondErr(w, err) {
			return
		}
		writeJSON(w, registerResp{ID: u.ID})
	})
	mux.HandleFunc(prefix+"/global", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		if s.Down() {
			respondErr(w, ErrUnavailable)
			return
		}
		list := s.GlobalList()
		out := make([]summaryJSON, 0, len(list))
		for _, b := range list {
			out = append(out, toSummaryJSON(b))
		}
		writeJSON(w, struct {
			Broadcasts []summaryJSON `json:"broadcasts"`
		}{out})
	})
	mux.HandleFunc(prefix+"/broadcasts", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var req startReq
		if !decodeJSON(w, r, &req) {
			return
		}
		loc := geo.Location{City: req.City, Lat: req.Lat, Lon: req.Lon}
		var grant BroadcastGrant
		var err error
		if req.Private {
			grant, err = s.StartPrivateBroadcast(req.UserID, loc, req.Allowed)
		} else {
			grant, err = s.StartBroadcast(req.UserID, loc)
		}
		if respondErr(w, err) {
			return
		}
		writeJSON(w, grantResp{
			BroadcastID: grant.BroadcastID,
			Token:       grant.Token,
			OriginID:    grant.OriginID,
			RTMPAddr:    grant.RTMPAddr,
			MessageURL:  grant.MessageURL,
			Private:     grant.Private,
			RTMPSAddr:   grant.RTMPSAddr,
			CAPEM:       grant.CAPEM,
		})
	})
	mux.HandleFunc(prefix+"/broadcasts/", func(w http.ResponseWriter, r *http.Request) {
		rest := strings.TrimPrefix(r.URL.Path, prefix+"/broadcasts/")
		parts := strings.Split(rest, "/")
		id := parts[0]
		switch {
		case len(parts) == 1 && r.Method == http.MethodGet:
			info, err := s.Info(id)
			if respondErr(w, err) {
				return
			}
			writeJSON(w, toSummaryJSON(info))
		case len(parts) == 2 && parts[1] == "end" && r.Method == http.MethodPost:
			var req endReq
			if !decodeJSON(w, r, &req) {
				return
			}
			if respondErr(w, s.EndBroadcast(id, req.Token)) {
				return
			}
			writeJSON(w, struct{}{})
		case len(parts) == 2 && parts[1] == "join" && r.Method == http.MethodPost:
			var req joinReq
			if !decodeJSON(w, r, &req) {
				return
			}
			grant, err := s.Join(req.UserID, id, geo.Location{City: req.City, Lat: req.Lat, Lon: req.Lon})
			if respondErr(w, err) {
				return
			}
			writeJSON(w, joinResp{
				Protocol:    string(grant.Protocol),
				RTMPAddr:    grant.RTMPAddr,
				HLSBaseURL:  grant.HLSBaseURL,
				MessageURL:  grant.MessageURL,
				Private:     grant.Private,
				RTMPSAddr:   grant.RTMPSAddr,
				ViewerToken: grant.ViewerToken,
				CAPEM:       grant.CAPEM,
			})
		case len(parts) == 2 && parts[1] == "pubkey" && r.Method == http.MethodPost:
			var req pubKeyReq
			if !decodeJSON(w, r, &req) {
				return
			}
			key, err := hex.DecodeString(req.PubKeyHex)
			if err != nil || len(key) != ed25519.PublicKeySize {
				http.Error(w, "bad public key", http.StatusBadRequest)
				return
			}
			if respondErr(w, s.RegisterPublicKey(id, req.Token, key)) {
				return
			}
			writeJSON(w, struct{}{})
		case len(parts) == 2 && parts[1] == "pubkey" && r.Method == http.MethodGet:
			key := s.PublicKey(id)
			writeJSON(w, pubKeyResp{PubKeyHex: hex.EncodeToString(key)})
		case len(parts) == 2 && parts[1] == "edge" && r.Method == http.MethodGet:
			q := r.URL.Query()
			loc := geo.Location{City: q.Get("city")}
			fmt.Sscanf(q.Get("lat"), "%f", &loc.Lat)
			fmt.Sscanf(q.Get("lon"), "%f", &loc.Lon)
			url, err := s.ResolveEdge(id, loc)
			if respondErr(w, err) {
				return
			}
			writeJSON(w, resolveEdgeResp{HLSBaseURL: url})
		default:
			http.NotFound(w, r)
		}
	})
	return mux
}

func decodeJSON(w http.ResponseWriter, r *http.Request, v interface{}) bool {
	body, err := io.ReadAll(io.LimitReader(r.Body, 64<<10))
	if err != nil || json.Unmarshal(body, v) != nil {
		http.Error(w, "bad request body", http.StatusBadRequest)
		return false
	}
	return true
}

func respondErr(w http.ResponseWriter, err error) bool {
	switch {
	case err == nil:
		return false
	case errors.Is(err, ErrNoBroadcast):
		http.Error(w, err.Error(), http.StatusNotFound)
	case errors.Is(err, ErrBadToken):
		http.Error(w, err.Error(), http.StatusForbidden)
	case errors.Is(err, ErrNotInvited):
		http.Error(w, err.Error(), http.StatusUnauthorized)
	case errors.Is(err, ErrEnded):
		http.Error(w, err.Error(), http.StatusGone)
	case errors.Is(err, ErrUnavailable):
		// The crashed control plane's 503 is the degraded-mode trigger:
		// clients fall back to cached grants and retry with backoff.
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
	return true
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		_ = err // response already started
	}
}

// Client is the app/crawler side of the control API.
type Client struct {
	// BaseURL includes the prefix, e.g. "http://ctrl:8080/api".
	BaseURL    string
	HTTPClient *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) post(ctx context.Context, path string, in, out interface{}) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.do(req, out)
}

func (c *Client) get(ctx context.Context, path string, out interface{}) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return err
	}
	return c.do(req, out)
}

func (c *Client) do(req *http.Request, out interface{}) error {
	resp, err := c.http().Do(req)
	if err != nil {
		return fmt.Errorf("control: %s %s: %w", req.Method, req.URL.Path, err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		return ErrNoBroadcast
	case http.StatusForbidden:
		return ErrBadToken
	case http.StatusUnauthorized:
		return ErrNotInvited
	case http.StatusGone:
		return ErrEnded
	case http.StatusServiceUnavailable:
		return ErrUnavailable
	default:
		return fmt.Errorf("control: %s %s: status %d", req.Method, req.URL.Path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Register creates a user.
func (c *Client) Register(ctx context.Context, name string) (uint64, error) {
	var resp registerResp
	if err := c.post(ctx, "/users", registerReq{Name: name}, &resp); err != nil {
		return 0, err
	}
	return resp.ID, nil
}

// StartBroadcast opens a public broadcast for user at loc.
func (c *Client) StartBroadcast(ctx context.Context, userID uint64, loc geo.Location) (BroadcastGrant, error) {
	return c.startBroadcast(ctx, startReq{UserID: userID, City: loc.City, Lat: loc.Lat, Lon: loc.Lon})
}

// StartPrivateBroadcast opens an invite-only broadcast over RTMPS.
func (c *Client) StartPrivateBroadcast(ctx context.Context, userID uint64, loc geo.Location, allowed []uint64) (BroadcastGrant, error) {
	return c.startBroadcast(ctx, startReq{
		UserID: userID, City: loc.City, Lat: loc.Lat, Lon: loc.Lon,
		Private: true, Allowed: allowed,
	})
}

func (c *Client) startBroadcast(ctx context.Context, req startReq) (BroadcastGrant, error) {
	var resp grantResp
	if err := c.post(ctx, "/broadcasts", req, &resp); err != nil {
		return BroadcastGrant{}, err
	}
	return BroadcastGrant{
		BroadcastID: resp.BroadcastID,
		Token:       resp.Token,
		OriginID:    resp.OriginID,
		RTMPAddr:    resp.RTMPAddr,
		MessageURL:  resp.MessageURL,
		Private:     resp.Private,
		RTMPSAddr:   resp.RTMPSAddr,
		CAPEM:       resp.CAPEM,
	}, nil
}

// EndBroadcast finishes a broadcast.
func (c *Client) EndBroadcast(ctx context.Context, broadcastID, token string) error {
	return c.post(ctx, "/broadcasts/"+broadcastID+"/end", endReq{Token: token}, nil)
}

// RegisterPublicKey uploads the §7.2 signing key over the secure channel.
func (c *Client) RegisterPublicKey(ctx context.Context, broadcastID, token string, pub ed25519.PublicKey) error {
	return c.post(ctx, "/broadcasts/"+broadcastID+"/pubkey",
		pubKeyReq{Token: token, PubKeyHex: hex.EncodeToString(pub)}, nil)
}

// PublicKey fetches a broadcast's signing key; empty means unsigned.
func (c *Client) PublicKey(ctx context.Context, broadcastID string) (ed25519.PublicKey, error) {
	var resp pubKeyResp
	if err := c.get(ctx, "/broadcasts/"+broadcastID+"/pubkey", &resp); err != nil {
		return nil, err
	}
	if resp.PubKeyHex == "" {
		return nil, nil
	}
	key, err := hex.DecodeString(resp.PubKeyHex)
	if err != nil {
		return nil, err
	}
	return key, nil
}

// Join requests viewer access to a broadcast.
func (c *Client) Join(ctx context.Context, userID uint64, broadcastID string, loc geo.Location) (ViewerGrant, error) {
	var resp joinResp
	err := c.post(ctx, "/broadcasts/"+broadcastID+"/join",
		joinReq{UserID: userID, City: loc.City, Lat: loc.Lat, Lon: loc.Lon}, &resp)
	if err != nil {
		return ViewerGrant{}, err
	}
	return ViewerGrant{
		Protocol:    Protocol(resp.Protocol),
		RTMPAddr:    resp.RTMPAddr,
		HLSBaseURL:  resp.HLSBaseURL,
		MessageURL:  resp.MessageURL,
		Private:     resp.Private,
		RTMPSAddr:   resp.RTMPSAddr,
		ViewerToken: resp.ViewerToken,
		CAPEM:       resp.CAPEM,
	}, nil
}

// ResolveEdge re-resolves the healthy HLS edge for a broadcast without
// recording a join — the failover path viewers take when their edge dies.
func (c *Client) ResolveEdge(ctx context.Context, broadcastID string, loc geo.Location) (string, error) {
	var resp resolveEdgeResp
	path := fmt.Sprintf("/broadcasts/%s/edge?city=%s&lat=%g&lon=%g",
		broadcastID, url.QueryEscape(loc.City), loc.Lat, loc.Lon)
	if err := c.get(ctx, path, &resp); err != nil {
		return "", err
	}
	return resp.HLSBaseURL, nil
}

// GlobalList fetches the 50-random live list.
func (c *Client) GlobalList(ctx context.Context) ([]Summary, error) {
	var resp struct {
		Broadcasts []summaryJSON `json:"broadcasts"`
	}
	if err := c.get(ctx, "/global", &resp); err != nil {
		return nil, err
	}
	out := make([]Summary, 0, len(resp.Broadcasts))
	for _, b := range resp.Broadcasts {
		out = append(out, Summary{
			BroadcastID: b.BroadcastID,
			Broadcaster: b.Broadcaster,
			StartedAt:   b.StartedAt,
			EndedAt:     b.EndedAt,
			Live:        b.Live,
			Viewers:     b.Viewers,
			Location:    geo.Location{City: b.City},
		})
	}
	return out, nil
}

// Info fetches one broadcast summary.
func (c *Client) Info(ctx context.Context, broadcastID string) (Summary, error) {
	var b summaryJSON
	if err := c.get(ctx, "/broadcasts/"+broadcastID, &b); err != nil {
		return Summary{}, err
	}
	return Summary{
		BroadcastID: b.BroadcastID,
		Broadcaster: b.Broadcaster,
		StartedAt:   b.StartedAt,
		EndedAt:     b.EndedAt,
		Live:        b.Live,
		Viewers:     b.Viewers,
		Location:    geo.Location{City: b.City},
	}, nil
}
