package control

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/geo"
	"repro/internal/journal"
	"repro/internal/metrics"
	"repro/internal/resilience"
)

func counterValue(reg *metrics.Registry, name string) int64 {
	var v int64
	for _, c := range reg.Snapshot().Counters {
		if c.Name == name {
			v += c.Value
		}
	}
	return v
}

func gaugeValue(t *testing.T, reg *metrics.Registry, name string) int64 {
	t.Helper()
	for _, g := range reg.Snapshot().Gauges {
		if g.Name == name {
			return g.Value
		}
	}
	t.Fatalf("gauge %q not registered", name)
	return 0
}

// TestAuthCacheServesGrantsThroughOutage: the heart of degraded-mode auth —
// a grant the control plane confirmed keeps admitting the client while the
// control plane is down, but only until its TTL.
func TestAuthCacheServesGrantsThroughOutage(t *testing.T) {
	s := newTestService()
	vc := clock.NewVirtual(time.Unix(0, 0))
	reg := metrics.NewRegistry()
	ac := NewAuthCache(AuthCacheConfig{Service: s, TTL: time.Minute, Clock: vc, Metrics: reg})

	u := s.Register("alice")
	grant, err := s.StartBroadcast(u.ID, geo.Location{})
	if err != nil {
		t.Fatal(err)
	}
	if !ac.Authorize(grant.BroadcastID, grant.Token, "publisher") {
		t.Fatal("live authorize failed")
	}
	if got := gaugeValue(t, reg, "control_stale_grants"); got != 1 {
		t.Fatalf("control_stale_grants = %d, want 1", got)
	}

	s.Crash()
	if !ac.Authorize(grant.BroadcastID, grant.Token, "publisher") {
		t.Fatal("cached grant refused during outage")
	}
	if ac.Authorize(grant.BroadcastID, "forged", "publisher") {
		t.Fatal("unconfirmed token admitted during outage")
	}
	if counterValue(reg, metricUnavailable) == 0 {
		t.Fatal("control_unavailable_total did not count")
	}
	if counterValue(reg, metricStaleServed) != 1 {
		t.Fatalf("control_stale_served_total = %d, want 1", counterValue(reg, metricStaleServed))
	}

	vc.Advance(2 * time.Minute)
	if ac.Authorize(grant.BroadcastID, grant.Token, "publisher") {
		t.Fatal("expired grant admitted during outage")
	}
	if got := gaugeValue(t, reg, "control_stale_grants"); got != 0 {
		t.Fatalf("control_stale_grants after expiry = %d, want 0", got)
	}
}

// TestAuthCacheLiveNoRevokes: an authoritative "no" from a reachable
// control plane (the broadcast ended) must evict the cached grant — a
// subsequent outage must not resurrect it.
func TestAuthCacheLiveNoRevokes(t *testing.T) {
	s := newTestService()
	ac := NewAuthCache(AuthCacheConfig{Service: s})
	u := s.Register("alice")
	grant, _ := s.StartBroadcast(u.ID, geo.Location{})
	if !ac.Authorize(grant.BroadcastID, grant.Token, "publisher") {
		t.Fatal("live authorize failed")
	}
	if err := s.EndBroadcast(grant.BroadcastID, grant.Token); err != nil {
		t.Fatal(err)
	}
	if ac.Authorize(grant.BroadcastID, grant.Token, "publisher") {
		t.Fatal("ended broadcast still authorized live")
	}
	s.Crash()
	if ac.Authorize(grant.BroadcastID, grant.Token, "publisher") {
		t.Fatal("revoked grant resurrected during outage")
	}
}

// TestAuthCachePartitionGate: a gate error (origin↔control partition) must
// force the cached path even though the service itself is healthy.
func TestAuthCachePartitionGate(t *testing.T) {
	s := newTestService()
	partitioned := false
	ac := NewAuthCache(AuthCacheConfig{
		Service: s,
		Gate: func() error {
			if partitioned {
				return errors.New("link cut")
			}
			return nil
		},
	})
	u := s.Register("alice")
	grant, _ := s.StartBroadcast(u.ID, geo.Location{})
	if !ac.Authorize(grant.BroadcastID, grant.Token, "publisher") {
		t.Fatal("live authorize failed")
	}
	if k := ac.PublicKey(grant.BroadcastID); k != nil {
		t.Fatalf("unexpected key before registration: %v", k)
	}

	partitioned = true
	if !ac.Authorize(grant.BroadcastID, grant.Token, "publisher") {
		t.Fatal("cached grant refused during partition")
	}
	// End the broadcast behind the partition: the cache cannot see the end,
	// so the grant keeps serving (TTL-bounded) — that is the documented
	// trade, verified here so a behavior change is a conscious one.
	s.ForceEnd(grant.BroadcastID)
	if !ac.Authorize(grant.BroadcastID, grant.Token, "publisher") {
		t.Fatal("cached grant dropped mid-partition without TTL expiry")
	}
	partitioned = false
	if ac.Authorize(grant.BroadcastID, grant.Token, "publisher") {
		t.Fatal("healed partition did not restore authoritative answers")
	}
}

// resolverFixture stands up a journaled Service (so Recover has something
// to replay) behind its HTTP handler, with a ResolverCache on a breaker
// tuned for test speed.
func resolverFixture(t *testing.T, reg *metrics.Registry) (*Service, *ResolverCache) {
	t.Helper()
	s := newJournaledService(journal.NewMem(), nil)
	srv := httptest.NewServer(Handler("/api", s))
	t.Cleanup(srv.Close)
	rc := NewResolverCache(ResolverCacheConfig{
		Client: &Client{BaseURL: srv.URL + "/api"},
		TTL:    time.Minute,
		Breaker: resilience.BreakerConfig{
			FailureThreshold: 2,
			OpenFor:          time.Millisecond,
		},
		Metrics: reg,
	})
	return s, rc
}

// TestResolverCacheServesStaleEdgeDuringOutage: resolve once live, then keep
// resolving from cache across a control crash.
func TestResolverCacheServesStaleEdgeDuringOutage(t *testing.T) {
	reg := metrics.NewRegistry()
	s, rc := resolverFixture(t, reg)
	u := s.Register("alice")
	grant, _ := s.StartBroadcast(u.ID, geo.Location{})
	ctx := context.Background()

	url, err := rc.ResolveEdge(ctx, grant.BroadcastID, geo.Location{})
	if err != nil || url == "" {
		t.Fatalf("live resolve: %q, %v", url, err)
	}

	s.Crash()
	for i := 0; i < 5; i++ {
		got, err := rc.ResolveEdge(ctx, grant.BroadcastID, geo.Location{})
		if err != nil || got != url {
			t.Fatalf("degraded resolve %d: %q, %v (want %q)", i, got, err, url)
		}
	}
	if counterValue(reg, metricStaleServed) == 0 {
		t.Fatal("stale resolves not counted")
	}
	// An unknown broadcast has nothing cached: the outage error surfaces.
	if _, err := rc.ResolveEdge(ctx, "bcast-999", geo.Location{}); err == nil {
		t.Fatal("uncached resolve succeeded during outage")
	}

	s.Recover()
	// The breaker may need a probe to close; within a few attempts the live
	// path must be back.
	var lastErr error
	for i := 0; i < 10; i++ {
		if _, lastErr = rc.ResolveEdge(ctx, grant.BroadcastID, geo.Location{}); lastErr == nil {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if lastErr != nil {
		t.Fatalf("live resolve after recovery: %v", lastErr)
	}
}

// TestResolverCacheQueuesJoinsAndFlushes: joins during an outage return a
// degraded grant against the cached edge and queue for replay; FlushJoins
// lands them on the recovered control plane.
func TestResolverCacheQueuesJoinsAndFlushes(t *testing.T) {
	reg := metrics.NewRegistry()
	s, rc := resolverFixture(t, reg)
	u := s.Register("alice")
	grant, _ := s.StartBroadcast(u.ID, geo.Location{})
	ctx := context.Background()

	if _, err := rc.ResolveEdge(ctx, grant.BroadcastID, geo.Location{}); err != nil {
		t.Fatal(err)
	}

	s.Crash()
	for i := uint64(0); i < 3; i++ {
		g, degraded, err := rc.Join(ctx, 100+i, grant.BroadcastID, geo.Location{})
		if err != nil {
			t.Fatalf("degraded join %d: %v", i, err)
		}
		if !degraded || g.Protocol != ProtoHLS || g.HLSBaseURL == "" {
			t.Fatalf("degraded join %d grant = %+v (degraded=%v)", i, g, degraded)
		}
	}
	if rc.QueuedJoins() != 3 {
		t.Fatalf("QueuedJoins = %d, want 3", rc.QueuedJoins())
	}
	if got := gaugeValue(t, reg, "control_queued_joins"); got != 3 {
		t.Fatalf("control_queued_joins gauge = %d, want 3", got)
	}
	// Flushing against a dead control plane must keep the queue intact.
	if n := rc.FlushJoins(ctx); n != 0 {
		t.Fatalf("flush against crashed control plane replayed %d", n)
	}
	if rc.QueuedJoins() != 3 {
		t.Fatalf("queue shrank against dead control plane: %d", rc.QueuedJoins())
	}

	s.Recover()
	// The breaker cooldown is 1ms; retry the flush until the probe lands.
	deadline := time.Now().Add(time.Second)
	total := 0
	for total < 3 && time.Now().Before(deadline) {
		total += rc.FlushJoins(ctx)
		time.Sleep(2 * time.Millisecond)
	}
	if total != 3 {
		t.Fatalf("flushed %d joins, want 3", total)
	}
	if rc.QueuedJoins() != 0 {
		t.Fatalf("QueuedJoins after flush = %d", rc.QueuedJoins())
	}
	joins, err := s.Joins(grant.BroadcastID)
	if err != nil || len(joins) != 3 {
		t.Fatalf("control plane recorded %d joins (err %v), want 3", len(joins), err)
	}
}

// TestResolverCachePermanentErrorsStayAuthoritative: a live "no such
// broadcast" must surface as-is — not trip the breaker, not serve stale.
func TestResolverCachePermanentErrorsStayAuthoritative(t *testing.T) {
	_, rc := resolverFixture(t, nil)
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if _, err := rc.ResolveEdge(ctx, "bcast-404", geo.Location{}); !errors.Is(err, ErrNoBroadcast) {
			t.Fatalf("resolve %d err = %v, want ErrNoBroadcast", i, err)
		}
	}
	if _, _, err := rc.Join(ctx, 1, "bcast-404", geo.Location{}); !errors.Is(err, ErrNoBroadcast) {
		t.Fatalf("join err = %v, want ErrNoBroadcast", err)
	}
	if rc.QueuedJoins() != 0 {
		t.Fatal("authoritative rejection queued a join")
	}
}
