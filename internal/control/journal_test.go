package control

import (
	"bytes"
	"crypto/ed25519"
	"crypto/rand"
	"errors"
	"sync"
	"testing"

	"repro/internal/geo"
	"repro/internal/journal"
	"repro/internal/metrics"
)

func newJournaledService(backend journal.Backend, reg *metrics.Registry) *Service {
	return NewService(Config{
		Routes: Routes{
			AssignOrigin: func(loc geo.Location) (string, string) {
				return "origin-1", "127.0.0.1:1935"
			},
			RTMPSAddr: func(originID string) string {
				return "127.0.0.1:19350"
			},
			AssignEdge: func(id string, loc geo.Location) string {
				return "http://edge-1/hls"
			},
			MessageURL: "http://msg/channel",
		},
		RTMPViewerLimit: 3,
		Seed:            1,
		Journal:         backend,
		Metrics:         reg,
	})
}

// TestControlCrashRecover is the core durability contract: everything the
// control plane acknowledged before a crash — users, live broadcasts with
// their unforgeable tokens, public keys, joins — is back after Recover, and
// the OnStart callbacks re-fire for still-live broadcasts.
func TestControlCrashRecover(t *testing.T) {
	backend := journal.NewMem()
	reg := metrics.NewRegistry()
	s := newJournaledService(backend, reg)

	var mu sync.Mutex
	var started []string
	s.OnStart(func(id, origin string) {
		mu.Lock()
		started = append(started, id)
		mu.Unlock()
	})

	alice := s.Register("alice")
	bob := s.Register("bob")
	grant, err := s.StartBroadcast(alice.ID, geo.Location{City: "NYC"})
	if err != nil {
		t.Fatal(err)
	}
	endedGrant, err := s.StartBroadcast(bob.ID, geo.Location{City: "SF"})
	if err != nil {
		t.Fatal(err)
	}
	pub, _, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterPublicKey(grant.BroadcastID, grant.Token, pub); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Join(bob.ID, grant.BroadcastID, geo.Location{}); err != nil {
		t.Fatal(err)
	}
	if err := s.EndBroadcast(endedGrant.BroadcastID, endedGrant.Token); err != nil {
		t.Fatal(err)
	}

	s.Crash()
	if !s.Down() {
		t.Fatal("Down() = false after Crash")
	}
	if _, err := s.StartBroadcast(alice.ID, geo.Location{}); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("StartBroadcast while crashed: err = %v, want ErrUnavailable", err)
	}
	if _, err := s.Join(bob.ID, grant.BroadcastID, geo.Location{}); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("Join while crashed: err = %v, want ErrUnavailable", err)
	}
	if err := s.ForceEnd(grant.BroadcastID); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("ForceEnd while crashed: err = %v, want ErrUnavailable", err)
	}
	if (Auth{S: s}).Authorize(grant.BroadcastID, grant.Token, "publisher") {
		t.Fatal("Authorize succeeded while crashed")
	}
	if s.LiveCount() != 0 {
		t.Fatalf("LiveCount while crashed = %d", s.LiveCount())
	}

	s.Recover()
	if s.Down() {
		t.Fatal("Down() = true after Recover")
	}
	if got := s.UserCount(); got != 2 {
		t.Fatalf("UserCount after recover = %d, want 2", got)
	}
	if got := s.LiveCount(); got != 1 {
		t.Fatalf("LiveCount after recover = %d, want 1", got)
	}
	info, err := s.Info(grant.BroadcastID)
	if err != nil || !info.Live || info.Broadcaster != alice.ID {
		t.Fatalf("recovered info = %+v, err %v", info, err)
	}
	if info, err := s.Info(endedGrant.BroadcastID); err != nil || info.Live {
		t.Fatalf("ended broadcast resurrected: %+v, err %v", info, err)
	}
	if !(Auth{S: s}).Authorize(grant.BroadcastID, grant.Token, "publisher") {
		t.Fatal("recovered token rejected")
	}
	if k := s.PublicKey(grant.BroadcastID); !bytes.Equal(k, pub) {
		t.Fatal("public key lost across recovery")
	}
	joins, err := s.Joins(grant.BroadcastID)
	if err != nil || len(joins) != 1 || joins[0].UserID != bob.ID {
		t.Fatalf("recovered joins = %+v, err %v", joins, err)
	}
	mu.Lock()
	refired := append([]string(nil), started...)
	mu.Unlock()
	// Two live starts + one re-fire for the still-live broadcast.
	if len(refired) != 3 || refired[2] != grant.BroadcastID {
		t.Fatalf("OnStart fires = %v, want re-fire for %s", refired, grant.BroadcastID)
	}

	// The unforgeable token still ends the broadcast, and new state after
	// recovery journals onto the truncated-clean log.
	if err := s.EndBroadcast(grant.BroadcastID, grant.Token); err != nil {
		t.Fatalf("end with recovered token: %v", err)
	}
	if _, err := s.StartBroadcast(alice.ID, geo.Location{}); err != nil {
		t.Fatalf("start after recovery: %v", err)
	}

	found := false
	for _, h := range reg.Snapshot().Histograms {
		if h.Name == "control_recovery_seconds" && h.Count > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("control_recovery_seconds did not populate")
	}
}

// TestControlRestartIsNewServiceOverBackend: the harder restart — the whole
// process dies and a fresh Service is constructed over the old backend.
func TestControlRestartIsNewServiceOverBackend(t *testing.T) {
	backend := journal.NewMem()
	s := newJournaledService(backend, nil)
	u := s.Register("alice")
	grant, err := s.StartBroadcast(u.ID, geo.Location{City: "NYC"})
	if err != nil {
		t.Fatal(err)
	}
	s.Crash() // drains the writer; the old incarnation never touches the backend again

	s2 := newJournaledService(backend, nil)
	if s2.LiveCount() != 1 {
		t.Fatalf("restarted LiveCount = %d, want 1", s2.LiveCount())
	}
	if !(Auth{S: s2}).Authorize(grant.BroadcastID, grant.Token, "publisher") {
		t.Fatal("token rejected after full restart")
	}
	// The broadcast-ID counter must resume past journaled IDs: a fresh
	// start must not collide with the recovered broadcast.
	g2, err := s2.StartBroadcast(u.ID, geo.Location{})
	if err != nil {
		t.Fatal(err)
	}
	if g2.BroadcastID == grant.BroadcastID {
		t.Fatalf("broadcast ID %q reused after restart", g2.BroadcastID)
	}
}

// TestControlRecoverTruncatesTornTail: a crash mid-append leaves a damaged
// tail; recovery must truncate it, count it, and leave a journal that future
// appends extend cleanly.
func TestControlRecoverTruncatesTornTail(t *testing.T) {
	backend := journal.NewMem()
	reg := metrics.NewRegistry()
	s := newJournaledService(backend, reg)
	u := s.Register("alice")
	grant, err := s.StartBroadcast(u.ID, geo.Location{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Join(77, grant.BroadcastID, geo.Location{}); err != nil {
		t.Fatal(err)
	}

	s.Crash()
	backend.CorruptTail(3) // tear the last record (the join)

	s.Recover()
	if s.LiveCount() != 1 {
		t.Fatalf("LiveCount after torn-tail recovery = %d, want 1", s.LiveCount())
	}
	if joins, _ := s.Joins(grant.BroadcastID); len(joins) != 0 {
		t.Fatalf("torn join survived: %v", joins)
	}
	var corrupt int64
	for _, c := range reg.Snapshot().Counters {
		if c.Name == "journal_corrupt_tails_total" {
			corrupt += c.Value
		}
	}
	if corrupt == 0 {
		t.Fatal("journal_corrupt_tails_total did not count the torn tail")
	}

	// Appends after the truncation must be reachable to the next replay.
	if _, err := s.Join(88, grant.BroadcastID, geo.Location{}); err != nil {
		t.Fatal(err)
	}
	s.Crash()
	s.Recover()
	if joins, _ := s.Joins(grant.BroadcastID); len(joins) != 1 || joins[0].UserID != 88 {
		t.Fatalf("post-truncate join lost: %v", joins)
	}
}

// TestControlPrivateBroadcastRecovery: the per-viewer RTMPS tokens minted for
// private broadcasts are unforgeable; they must survive a control crash or
// every private viewer's reconnect is refused.
func TestControlPrivateBroadcastRecovery(t *testing.T) {
	backend := journal.NewMem()
	s := newJournaledService(backend, nil)
	host := s.Register("host")
	guest := s.Register("guest")
	grant, err := s.StartPrivateBroadcast(host.ID, geo.Location{}, []uint64{guest.ID})
	if err != nil {
		t.Fatal(err)
	}
	vg, err := s.Join(guest.ID, grant.BroadcastID, geo.Location{})
	if err != nil {
		t.Fatal(err)
	}
	if vg.ViewerToken == "" {
		t.Fatal("private join minted no viewer token")
	}

	s.Crash()
	s.Recover()

	if !(Auth{S: s}).Authorize(grant.BroadcastID, vg.ViewerToken, "viewer") {
		t.Fatal("viewer token rejected after recovery")
	}
	if (Auth{S: s}).Authorize(grant.BroadcastID, "forged", "viewer") {
		t.Fatal("forged viewer token accepted after recovery")
	}
	// The allow-list survived too: an uninvited user still cannot join.
	if _, err := s.Join(999, grant.BroadcastID, geo.Location{}); !errors.Is(err, ErrNotInvited) {
		t.Fatalf("uninvited join after recovery: err = %v", err)
	}
}

// TestTenantUsageTornTailNoDoubleCount: usage records carry ABSOLUTE day
// totals, so a crash that tears the newest rollup off the journal loses at
// most that one flush — replay can never double-count, and the next flush
// re-journals a total that includes everything the torn record covered.
func TestTenantUsageTornTailNoDoubleCount(t *testing.T) {
	backend := journal.NewMem()
	s := newJournaledService(backend, metrics.NewRegistry())
	tn, err := s.CreateTenant("acme", Plan{})
	if err != nil {
		t.Fatal(err)
	}
	k, _ := s.IssueAPIKey(tn.ID)
	u := s.Register("alice")
	grant, err := s.StartBroadcastKey(k.Key, u.ID, geo.Location{})
	if err != nil {
		t.Fatal(err)
	}
	m := s.Meter(grant.BroadcastID)

	m.MeterFrames(10, 100)
	if s.FlushUsage() != 1 { // journals {frames: 10, bytes: 100}
		t.Fatal("first flush")
	}
	m.MeterFrames(15, 150)
	if s.FlushUsage() != 1 { // journals {frames: 25, bytes: 250} — absolute
		t.Fatal("second flush")
	}

	s.Crash()
	backend.CorruptTail(3) // tear the newest usage record mid-append

	s.Recover()
	days, err := s.Usage(tn.ID)
	if err != nil || len(days) != 1 {
		t.Fatalf("usage after torn-tail recovery = %+v, err %v", days, err)
	}
	// Exactly the first flush: never 350 (double-counted) or 250 (the torn
	// record must not have replayed).
	if days[0].Frames != 10 || days[0].Bytes != 100 {
		t.Fatalf("rollup after torn tail = %+v, want frames=10 bytes=100", days[0])
	}

	// The delivery the torn flush covered is gone from the rollup (meters
	// were drained), but new metering folds in cleanly and the re-journaled
	// absolute total reaches the next incarnation intact.
	m2 := s.Meter(grant.BroadcastID)
	m2.MeterChunks(4, 40)
	if s.FlushUsage() != 1 {
		t.Fatal("post-recovery flush")
	}
	s.Crash()
	s2 := newJournaledService(backend, nil)
	days, err = s2.Usage(tn.ID)
	if err != nil || len(days) != 1 || days[0].Frames != 10 || days[0].Chunks != 4 || days[0].Bytes != 140 {
		t.Fatalf("restarted rollup = %+v, err %v", days, err)
	}
}

// TestTenantReplayOrdering: replay applies tenancy records in journal order —
// a plan set after a key issue, a revocation after a re-issue, a suspension
// after a resume all land in their final states.
func TestTenantReplayOrdering(t *testing.T) {
	backend := journal.NewMem()
	s := newJournaledService(backend, nil)
	tn, _ := s.CreateTenant("flip", Plan{Name: "v1"})
	s.SetTenantPlan(tn.ID, Plan{Name: "v2"})
	s.SetTenantPlan(tn.ID, Plan{Name: "v3", MaxJoinRPS: 9})
	s.SuspendTenant(tn.ID)
	s.ResumeTenant(tn.ID)
	k1, _ := s.IssueAPIKey(tn.ID)
	s.RevokeAPIKey(k1.Key)
	k2, _ := s.IssueAPIKey(tn.ID)
	s.Crash()

	s2 := newJournaledService(backend, nil)
	got, err := s2.TenantInfo(tn.ID)
	if err != nil || got.Plan.Name != "v3" || got.Plan.MaxJoinRPS != 9 || got.Suspended {
		t.Fatalf("replayed tenant = %+v, err %v", got, err)
	}
	u := s2.Register("alice")
	if _, err := s2.StartBroadcastKey(k1.Key, u.ID, geo.Location{}); !errors.Is(err, ErrKeyRevoked) {
		t.Fatalf("revoked key after replay: err = %v", err)
	}
	if _, err := s2.StartBroadcastKey(k2.Key, u.ID, geo.Location{}); err != nil {
		t.Fatalf("live key after replay: %v", err)
	}
}

// FuzzControlJournalRecovery: an arbitrary byte soup in the backend —
// including corrupted encodings of real control records — must never panic
// service construction, and the surviving journal must be extendable: state
// acknowledged by the recovered service replays into the next incarnation.
// The seed corpus covers the tenancy record types (32–37) alongside the
// broadcast ones so mutations hit their codecs too.
func FuzzControlJournalRecovery(f *testing.F) {
	seed := func() []byte {
		backend := journal.NewMem()
		s := newJournaledService(backend, nil)
		u := s.Register("alice")
		grant, _ := s.StartBroadcast(u.ID, geo.Location{City: "NYC"})
		s.Join(u.ID, grant.BroadcastID, geo.Location{})
		s.EndBroadcast(grant.BroadcastID, grant.Token)
		tn, _ := s.CreateTenant("acme", Plan{Name: "pro", MaxJoinRPS: 10, DailyBytesQuota: 1 << 20})
		s.SetTenantPlan(tn.ID, Plan{Name: "pro2", MaxConcurrentBroadcasts: 2})
		key, _ := s.IssueAPIKey(tn.ID)
		g2, _ := s.StartBroadcastKey(key.Key, u.ID, geo.Location{})
		if m := s.Meter(g2.BroadcastID); m != nil {
			m.MeterFrames(5, 500)
		}
		s.FlushUsage()
		s.RevokeAPIKey(key.Key)
		s.SuspendTenant(tn.ID)
		s.ResumeTenant(tn.ID)
		s.Crash()
		data, _ := backend.Load()
		return data
	}()
	f.Add([]byte(nil))
	f.Add(seed)
	f.Add(seed[:len(seed)-2])
	corrupt := append([]byte(nil), seed...)
	corrupt[len(corrupt)/2] ^= 0x40
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, data []byte) {
		backend := journal.NewMem()
		backend.Append(data)
		s := newJournaledService(backend, nil)
		u := s.Register("fuzz")
		grant, err := s.StartBroadcast(u.ID, geo.Location{})
		if err != nil {
			t.Fatalf("start on recovered service: %v", err)
		}
		s.Crash()
		s2 := newJournaledService(backend, nil)
		if !(Auth{S: s2}).Authorize(grant.BroadcastID, grant.Token, "publisher") {
			t.Fatal("broadcast journaled after torn-tail truncation did not survive restart")
		}
	})
}
