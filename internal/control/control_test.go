package control

import (
	"context"
	"crypto/ed25519"
	"errors"
	"net/http/httptest"
	"testing"

	"repro/internal/geo"
	"repro/internal/testutil"
	"repro/internal/wire"
)

func newTestService() *Service {
	return NewService(Config{
		Routes: Routes{
			AssignOrigin: func(loc geo.Location) (string, string) {
				return "origin-1", "127.0.0.1:1935"
			},
			AssignEdge: func(id string, loc geo.Location) string {
				return "http://edge-1/hls"
			},
			MessageURL: "http://msg/channel",
		},
		RTMPViewerLimit: 3,
		Seed:            1,
	})
}

func TestRegisterSequentialIDs(t *testing.T) {
	s := newTestService()
	for i := uint64(1); i <= 5; i++ {
		if u := s.Register("u"); u.ID != i {
			t.Fatalf("user ID = %d, want %d", u.ID, i)
		}
	}
	if s.UserCount() != 5 {
		t.Fatalf("UserCount = %d", s.UserCount())
	}
}

func TestBroadcastLifecycle(t *testing.T) {
	s := newTestService()
	u := s.Register("alice")
	grant, err := s.StartBroadcast(u.ID, geo.Location{City: "NYC"})
	if err != nil {
		t.Fatal(err)
	}
	if grant.Token == "" || grant.BroadcastID == "" || grant.RTMPAddr == "" {
		t.Fatalf("incomplete grant: %+v", grant)
	}
	if s.LiveCount() != 1 {
		t.Fatalf("LiveCount = %d", s.LiveCount())
	}
	info, err := s.Info(grant.BroadcastID)
	if err != nil || !info.Live || info.Broadcaster != u.ID {
		t.Fatalf("info = %+v, err %v", info, err)
	}
	if err := s.EndBroadcast(grant.BroadcastID, "wrong"); !errors.Is(err, ErrBadToken) {
		t.Fatalf("wrong-token end err = %v", err)
	}
	if err := s.EndBroadcast(grant.BroadcastID, grant.Token); err != nil {
		t.Fatal(err)
	}
	if s.LiveCount() != 0 {
		t.Fatal("broadcast still live after end")
	}
	// Idempotent end.
	if err := s.EndBroadcast(grant.BroadcastID, grant.Token); err != nil {
		t.Fatalf("second end err = %v", err)
	}
}

func TestJoinRoutesFirstNToRTMP(t *testing.T) {
	s := newTestService()
	u := s.Register("b")
	grant, _ := s.StartBroadcast(u.ID, geo.Location{})
	for i := 0; i < 3; i++ {
		g, err := s.Join(uint64(100+i), grant.BroadcastID, geo.Location{})
		if err != nil {
			t.Fatal(err)
		}
		if g.Protocol != ProtoRTMP || g.RTMPAddr == "" {
			t.Fatalf("join %d = %+v, want RTMP", i, g)
		}
		if g.HLSBaseURL == "" {
			t.Fatal("RTMP join should still receive the HLS URL (§4.3)")
		}
	}
	g, err := s.Join(999, grant.BroadcastID, geo.Location{})
	if err != nil {
		t.Fatal(err)
	}
	if g.Protocol != ProtoHLS {
		t.Fatalf("4th join protocol = %s, want HLS", g.Protocol)
	}
	joins, _ := s.Joins(grant.BroadcastID)
	if len(joins) != 4 {
		t.Fatalf("joins = %d", len(joins))
	}
}

func TestJoinEndedBroadcast(t *testing.T) {
	s := newTestService()
	u := s.Register("b")
	grant, _ := s.StartBroadcast(u.ID, geo.Location{})
	s.EndBroadcast(grant.BroadcastID, grant.Token)
	if _, err := s.Join(1, grant.BroadcastID, geo.Location{}); !errors.Is(err, ErrEnded) {
		t.Fatalf("err = %v", err)
	}
	if _, err := s.Join(1, "nope", geo.Location{}); !errors.Is(err, ErrNoBroadcast) {
		t.Fatalf("err = %v", err)
	}
}

func TestGlobalListSampling(t *testing.T) {
	s := newTestService()
	u := s.Register("b")
	var tokens []string
	var ids []string
	for i := 0; i < 120; i++ {
		g, _ := s.StartBroadcast(u.ID, geo.Location{})
		tokens = append(tokens, g.Token)
		ids = append(ids, g.BroadcastID)
	}
	list := s.GlobalList()
	if len(list) != GlobalListSize {
		t.Fatalf("global list size = %d, want %d", len(list), GlobalListSize)
	}
	seen := map[string]bool{}
	for _, b := range list {
		if seen[b.BroadcastID] {
			t.Fatalf("duplicate %s in one sample", b.BroadcastID)
		}
		seen[b.BroadcastID] = true
		if !b.Live {
			t.Fatal("ended broadcast in global list")
		}
	}
	// Repeated queries must eventually cover everything (the crawler's
	// exhaustive-capture property, §3.1).
	covered := map[string]bool{}
	for i := 0; i < 200 && len(covered) < 120; i++ {
		for _, b := range s.GlobalList() {
			covered[b.BroadcastID] = true
		}
	}
	if len(covered) != 120 {
		t.Fatalf("repeated sampling covered %d/120 broadcasts", len(covered))
	}
	// Ended broadcasts leave the list.
	for i := 0; i < 100; i++ {
		s.EndBroadcast(ids[i], tokens[i])
	}
	if got := len(s.GlobalList()); got != 20 {
		t.Fatalf("list after ends = %d, want 20", got)
	}
}

func TestCallbacks(t *testing.T) {
	s := newTestService()
	var started, ended []string
	s.OnStart(func(id, origin string) {
		started = append(started, id)
		if origin != "origin-1" {
			t.Errorf("origin = %s", origin)
		}
	})
	s.OnEnd(func(id string) { ended = append(ended, id) })
	u := s.Register("b")
	g, _ := s.StartBroadcast(u.ID, geo.Location{})
	s.EndBroadcast(g.BroadcastID, g.Token)
	if len(started) != 1 || len(ended) != 1 || started[0] != g.BroadcastID {
		t.Fatalf("callbacks: started=%v ended=%v", started, ended)
	}
}

func TestAuthAdapter(t *testing.T) {
	s := newTestService()
	u := s.Register("b")
	g, _ := s.StartBroadcast(u.ID, geo.Location{})
	a := Auth{S: s}
	if !a.Authorize(g.BroadcastID, g.Token, wire.RoleBroadcaster) {
		t.Fatal("valid broadcaster token rejected")
	}
	if a.Authorize(g.BroadcastID, "wrong", wire.RoleBroadcaster) {
		t.Fatal("wrong broadcaster token accepted")
	}
	if !a.Authorize(g.BroadcastID, "", wire.RoleViewer) {
		t.Fatal("viewer rejected from public broadcast")
	}
	if a.Authorize("missing", "x", wire.RoleViewer) {
		t.Fatal("viewer admitted to missing broadcast")
	}
	s.EndBroadcast(g.BroadcastID, g.Token)
	if a.Authorize(g.BroadcastID, g.Token, wire.RoleBroadcaster) {
		t.Fatal("ended broadcast still authorizes")
	}
}

func TestPublicKeyRegistry(t *testing.T) {
	s := newTestService()
	u := s.Register("b")
	g, _ := s.StartBroadcast(u.ID, geo.Location{})
	pub, _, err := ed25519.GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterPublicKey(g.BroadcastID, "bad", pub); !errors.Is(err, ErrBadToken) {
		t.Fatalf("bad-token key registration err = %v", err)
	}
	if err := s.RegisterPublicKey(g.BroadcastID, g.Token, pub); err != nil {
		t.Fatal(err)
	}
	got := s.PublicKey(g.BroadcastID)
	if !pub.Equal(got) {
		t.Fatal("stored key mismatch")
	}
	if s.PublicKey("missing") != nil {
		t.Fatal("missing broadcast returned a key")
	}
}

func TestHTTPAPI(t *testing.T) {
	testutil.CheckGoroutines(t)
	s := newTestService()
	srv := httptest.NewServer(Handler("/api", s))
	defer srv.Close()
	client := &Client{BaseURL: srv.URL + "/api"}
	ctx := context.Background()

	uid, err := client.Register(ctx, "alice")
	if err != nil || uid != 1 {
		t.Fatalf("Register = %d, %v", uid, err)
	}
	grant, err := client.StartBroadcast(ctx, uid, geo.Location{City: "NYC", Lat: 40.7, Lon: -74})
	if err != nil {
		t.Fatal(err)
	}
	if grant.RTMPAddr == "" || grant.Token == "" {
		t.Fatalf("grant = %+v", grant)
	}

	pub, _, _ := ed25519.GenerateKey(nil)
	if err := client.RegisterPublicKey(ctx, grant.BroadcastID, grant.Token, pub); err != nil {
		t.Fatal(err)
	}
	gotKey, err := client.PublicKey(ctx, grant.BroadcastID)
	if err != nil || !pub.Equal(gotKey) {
		t.Fatalf("PublicKey roundtrip: %v", err)
	}

	for i := 0; i < 4; i++ {
		g, err := client.Join(ctx, uint64(10+i), grant.BroadcastID, geo.Location{})
		if err != nil {
			t.Fatal(err)
		}
		want := ProtoRTMP
		if i >= 3 {
			want = ProtoHLS
		}
		if g.Protocol != want {
			t.Fatalf("join %d protocol = %s, want %s", i, g.Protocol, want)
		}
	}

	list, err := client.GlobalList(ctx)
	if err != nil || len(list) != 1 {
		t.Fatalf("GlobalList = %v, %v", list, err)
	}
	info, err := client.Info(ctx, grant.BroadcastID)
	if err != nil || info.Viewers != 4 {
		t.Fatalf("Info = %+v, %v", info, err)
	}

	if err := client.EndBroadcast(ctx, grant.BroadcastID, "bad"); !errors.Is(err, ErrBadToken) {
		t.Fatalf("bad end err = %v", err)
	}
	if err := client.EndBroadcast(ctx, grant.BroadcastID, grant.Token); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Join(ctx, 99, grant.BroadcastID, geo.Location{}); !errors.Is(err, ErrEnded) {
		t.Fatalf("join ended err = %v", err)
	}
	if _, err := client.Info(ctx, "missing"); !errors.Is(err, ErrNoBroadcast) {
		t.Fatalf("missing info err = %v", err)
	}
}

func TestTokensUnique(t *testing.T) {
	s := newTestService()
	u := s.Register("b")
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		g, err := s.StartBroadcast(u.ID, geo.Location{})
		if err != nil {
			t.Fatal(err)
		}
		if seen[g.Token] {
			t.Fatal("duplicate token issued")
		}
		seen[g.Token] = true
	}

}
