package control

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/geo"
	"repro/internal/journal"
	"repro/internal/testutil"
)

// TestJoinVsEndHammer drives concurrent Join, ResolveEdge, EndBroadcast,
// and ForceEnd against many broadcasts under the race detector. The
// regression it guards: end paths fired their OnEnd callbacks while a
// not-yet-complete start could still be running its OnStart callbacks, so a
// data-plane consumer (the pubsub hub) could see Close before Open and leak
// the channel forever. The started-gate now orders them; this hammer
// asserts the ordering and that joins racing an end either land or get
// ErrEnded/ErrNoBroadcast — never a torn in-between.
func TestJoinVsEndHammer(t *testing.T) {
	testutil.CheckGoroutines(t)
	s := newJournaledService(journal.NewMem(), nil)
	defer s.Close()

	// Track per-broadcast callback ordering: Open must strictly precede
	// Close, exactly once each.
	var cbMu sync.Mutex
	opened := make(map[string]int)
	closedBefore := make(map[string]bool)
	s.OnStart(func(id, origin string) {
		cbMu.Lock()
		opened[id]++
		cbMu.Unlock()
	})
	s.OnEnd(func(id string) {
		cbMu.Lock()
		if opened[id] == 0 {
			closedBefore[id] = true
		}
		cbMu.Unlock()
	})

	const broadcasts = 16
	const joinersPer = 4
	u := s.Register("host")
	var wg sync.WaitGroup
	var joinsOK, joinsRejected atomic.Int64
	for b := 0; b < broadcasts; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			grant, err := s.StartBroadcast(u.ID, geo.Location{})
			if err != nil {
				t.Errorf("start %d: %v", b, err)
				return
			}
			var inner sync.WaitGroup
			for j := 0; j < joinersPer; j++ {
				inner.Add(1)
				go func(j int) {
					defer inner.Done()
					for k := 0; k < 8; k++ {
						_, err := s.Join(uint64(1000+j), grant.BroadcastID, geo.Location{})
						switch {
						case err == nil:
							joinsOK.Add(1)
						case errors.Is(err, ErrEnded) || errors.Is(err, ErrNoBroadcast):
							joinsRejected.Add(1)
						default:
							t.Errorf("join: %v", err)
						}
						s.ResolveEdge(grant.BroadcastID, geo.Location{})
					}
				}(j)
			}
			// End races the joiners: half force-ended (the platform's
			// data-plane path), half ended by token (the broadcaster's).
			if b%2 == 0 {
				if err := s.ForceEnd(grant.BroadcastID); err != nil {
					t.Errorf("force end %d: %v", b, err)
				}
			} else {
				if err := s.EndBroadcast(grant.BroadcastID, grant.Token); err != nil {
					t.Errorf("end %d: %v", b, err)
				}
			}
			inner.Wait()
		}(b)
	}
	wg.Wait()

	cbMu.Lock()
	defer cbMu.Unlock()
	if len(closedBefore) > 0 {
		t.Fatalf("OnEnd fired before OnStart for %d broadcasts: %v", len(closedBefore), keys(closedBefore))
	}
	if len(opened) != broadcasts {
		t.Fatalf("OnStart fired for %d broadcasts, want %d", len(opened), broadcasts)
	}
	if joinsOK.Load()+joinsRejected.Load() == 0 {
		t.Fatal("hammer exercised no joins")
	}
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestEndDuringCrashThenRecoveryHammer: ends racing a crash must either
// land (journaled) or fail with ErrUnavailable — after recovery no
// broadcast may be falsely live (end journaled but state says live) and
// every ErrUnavailable end must still be live (end rejected, not torn).
func TestEndDuringCrashThenRecoveryHammer(t *testing.T) {
	testutil.CheckGoroutines(t)
	s := newJournaledService(journal.NewMem(), nil)
	defer s.Close()
	u := s.Register("host")
	const n = 32
	grants := make([]BroadcastGrant, n)
	for i := range grants {
		g, err := s.StartBroadcast(u.ID, geo.Location{})
		if err != nil {
			t.Fatal(err)
		}
		grants[i] = g
	}

	endErr := make([]error, n)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := range grants {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			endErr[i] = s.ForceEnd(grants[i].BroadcastID)
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		s.Crash()
	}()
	close(start)
	wg.Wait()
	s.Recover()

	for i, err := range endErr {
		info, ierr := s.Info(grants[i].BroadcastID)
		if ierr != nil {
			t.Fatalf("broadcast %d lost entirely: %v", i, ierr)
		}
		switch {
		case err == nil:
			if info.Live {
				t.Fatalf("broadcast %d: end acknowledged but live after recovery", i)
			}
		case errors.Is(err, ErrUnavailable):
			if !info.Live {
				t.Fatalf("broadcast %d: end rejected with ErrUnavailable but dead after recovery (falsely ended)", i)
			}
		default:
			t.Fatalf("broadcast %d: end err = %v", i, err)
		}
	}
	// Sanity: the test exercised both outcomes at least once across runs is
	// not guaranteed, but every broadcast must be force-endable now.
	for i := range grants {
		if err := s.ForceEnd(grants[i].BroadcastID); err != nil {
			t.Fatalf("post-recovery force end %d: %v", i, err)
		}
	}
	if s.LiveCount() != 0 {
		t.Fatalf("LiveCount = %d after ending everything", s.LiveCount())
	}
	_ = fmt.Sprintf // keep fmt imported if assertions change
}
