package control

import (
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/clock"
)

// Periscope rate-limited API clients; the paper's crawlers ran from a
// whitelisted IP range and still "were unable to keep up with the growing
// volume of broadcasts" (§3.1). RateLimiter reproduces that surface: a
// per-client token bucket over the control API with a whitelist bypass.

// RateLimiterConfig tunes the limiter.
type RateLimiterConfig struct {
	// RequestsPerSecond is the sustained per-client rate (default 5).
	RequestsPerSecond float64
	// Burst is the bucket depth (default 10).
	Burst float64
	// Whitelist lists client hosts (no port) exempt from limiting — the
	// paper's whitelisted measurement range.
	Whitelist []string
	// Clock defaults to the real clock.
	Clock clock.Clock
}

// RateLimiter is an http middleware enforcing per-client token buckets.
type RateLimiter struct {
	cfg       RateLimiterConfig
	clock     clock.Clock
	whitelist map[string]bool

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// NewRateLimiter builds a RateLimiter.
func NewRateLimiter(cfg RateLimiterConfig) *RateLimiter {
	if cfg.RequestsPerSecond <= 0 {
		cfg.RequestsPerSecond = 5
	}
	if cfg.Burst <= 0 {
		cfg.Burst = 10
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.NewReal()
	}
	wl := make(map[string]bool, len(cfg.Whitelist))
	for _, h := range cfg.Whitelist {
		wl[h] = true
	}
	return &RateLimiter{
		cfg:       cfg,
		clock:     cfg.Clock,
		whitelist: wl,
		buckets:   make(map[string]*bucket),
	}
}

// Allow reports whether a request from client may proceed now.
func (rl *RateLimiter) Allow(client string) bool {
	if rl.whitelist[client] {
		return true
	}
	now := rl.clock.Now()
	rl.mu.Lock()
	defer rl.mu.Unlock()
	b, ok := rl.buckets[client]
	if !ok {
		b = &bucket{tokens: rl.cfg.Burst, last: now}
		rl.buckets[client] = b
	}
	elapsed := now.Sub(b.last).Seconds()
	if elapsed > 0 {
		b.tokens += elapsed * rl.cfg.RequestsPerSecond
		if b.tokens > rl.cfg.Burst {
			b.tokens = rl.cfg.Burst
		}
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Wrap applies the limiter to a handler, answering 429 when exhausted.
func (rl *RateLimiter) Wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		host, _, err := net.SplitHostPort(r.RemoteAddr)
		if err != nil {
			host = r.RemoteAddr
		}
		if !rl.Allow(host) {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "rate limit exceeded", http.StatusTooManyRequests)
			return
		}
		next.ServeHTTP(w, r)
	})
}

// Sweep drops buckets idle longer than maxIdle, bounding memory; returns
// the number removed.
func (rl *RateLimiter) Sweep(maxIdle time.Duration) int {
	now := rl.clock.Now()
	rl.mu.Lock()
	defer rl.mu.Unlock()
	n := 0
	for k, b := range rl.buckets {
		if now.Sub(b.last) > maxIdle {
			delete(rl.buckets, k)
			n++
		}
	}
	return n
}
