package control

import (
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/clock"
)

// Periscope rate-limited API clients; the paper's crawlers ran from a
// whitelisted IP range and still "were unable to keep up with the growing
// volume of broadcasts" (§3.1). KeyedLimiter is the shared token-bucket
// core: a bucket map over arbitrary string keys where every Allow call
// carries its own rate and burst, so one instance serves both fixed-rate
// per-client limiting (RateLimiter below) and plan-derived per-tenant join
// limiting (Service.JoinKey) with one sweep.

// KeyedLimiter is a clock-injected token-bucket map. Rates arrive per call
// rather than per limiter, which is what lets tenant plans differ without a
// limiter per tenant.
type KeyedLimiter struct {
	clock clock.Clock

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// NewKeyedLimiter builds a limiter on clk (nil means the real clock).
func NewKeyedLimiter(clk clock.Clock) *KeyedLimiter {
	if clk == nil {
		clk = clock.NewReal()
	}
	return &KeyedLimiter{clock: clk, buckets: make(map[string]*bucket)}
}

// Allow reports whether one request under key may proceed now, refilling at
// rps up to burst. A key's bucket starts full. Rate changes between calls
// (e.g. a tenant plan change) apply immediately; accumulated tokens are
// clamped to the new burst.
func (kl *KeyedLimiter) Allow(key string, rps, burst float64) bool {
	now := kl.clock.Now()
	kl.mu.Lock()
	defer kl.mu.Unlock()
	b, ok := kl.buckets[key]
	if !ok {
		b = &bucket{tokens: burst, last: now}
		kl.buckets[key] = b
	}
	elapsed := now.Sub(b.last).Seconds()
	if elapsed > 0 {
		b.tokens += elapsed * rps
		b.last = now
	}
	if b.tokens > burst {
		b.tokens = burst
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Sweep drops buckets idle longer than maxIdle, bounding memory; returns
// the number removed.
func (kl *KeyedLimiter) Sweep(maxIdle time.Duration) int {
	now := kl.clock.Now()
	kl.mu.Lock()
	defer kl.mu.Unlock()
	n := 0
	for k, b := range kl.buckets {
		if now.Sub(b.last) > maxIdle {
			delete(kl.buckets, k)
			n++
		}
	}
	return n
}

// RateLimiterConfig tunes the per-client API limiter.
type RateLimiterConfig struct {
	// RequestsPerSecond is the sustained per-client rate (default 5).
	RequestsPerSecond float64
	// Burst is the bucket depth (default 10).
	Burst float64
	// Whitelist lists client hosts (no port) exempt from limiting — the
	// paper's whitelisted measurement range.
	Whitelist []string
	// Clock defaults to the real clock.
	Clock clock.Clock
}

// RateLimiter is an http middleware enforcing per-client token buckets,
// built on a KeyedLimiter keyed by client host.
type RateLimiter struct {
	cfg       RateLimiterConfig
	keyed     *KeyedLimiter
	whitelist map[string]bool
}

// NewRateLimiter builds a RateLimiter.
func NewRateLimiter(cfg RateLimiterConfig) *RateLimiter {
	if cfg.RequestsPerSecond <= 0 {
		cfg.RequestsPerSecond = 5
	}
	if cfg.Burst <= 0 {
		cfg.Burst = 10
	}
	wl := make(map[string]bool, len(cfg.Whitelist))
	for _, h := range cfg.Whitelist {
		wl[h] = true
	}
	return &RateLimiter{
		cfg:       cfg,
		keyed:     NewKeyedLimiter(cfg.Clock),
		whitelist: wl,
	}
}

// Allow reports whether a request from client may proceed now.
func (rl *RateLimiter) Allow(client string) bool {
	if rl.whitelist[client] {
		return true
	}
	return rl.keyed.Allow(client, rl.cfg.RequestsPerSecond, rl.cfg.Burst)
}

// Wrap applies the limiter to a handler, answering 429 when exhausted.
func (rl *RateLimiter) Wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		host, _, err := net.SplitHostPort(r.RemoteAddr)
		if err != nil {
			host = r.RemoteAddr
		}
		if !rl.Allow(host) {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "rate limit exceeded", http.StatusTooManyRequests)
			return
		}
		next.ServeHTTP(w, r)
	})
}

// Sweep drops buckets idle longer than maxIdle, bounding memory; returns
// the number removed.
func (rl *RateLimiter) Sweep(maxIdle time.Duration) int {
	return rl.keyed.Sweep(maxIdle)
}
