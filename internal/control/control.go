// Package control implements the Periscope-server analog of Figure 8(a): the
// control plane users talk to over a secure channel. It registers users with
// sequential IDs (the property the paper used to count registrations, §3.1),
// issues broadcast tokens, routes broadcasters to their nearest origin and
// viewers to RTMP or HLS (first ~100 viewers get the low-latency RTMP path,
// §4.1), serves the 50-random global broadcast list the crawler samples, and
// holds the broadcaster public keys of the §7.2 signature defense — the one
// exchange that happens over the authenticated channel.
package control

import (
	"crypto/ed25519"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/geo"
	"repro/internal/journal"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/wire"
)

// Errors returned by the service.
var (
	ErrNoBroadcast = errors.New("control: no such broadcast")
	ErrBadToken    = errors.New("control: bad token")
	ErrEnded       = errors.New("control: broadcast ended")
	ErrNotInvited  = errors.New("control: user not invited to private broadcast")
	// ErrUnavailable reports a crashed (or partitioned-away) control plane.
	// It is transient: clients hold cached grants, keep streaming, and
	// retry — DESIGN.md §6.3's degraded mode.
	ErrUnavailable = errors.New("control: control plane unavailable")
)

// GlobalListSize is how many random broadcasts one global-list query
// returns (§3.1).
const GlobalListSize = 50

// DefaultRTMPViewerLimit is the viewer count beyond which joins are routed
// to HLS (§4.1: "around 100").
const DefaultRTMPViewerLimit = 100

// User is a registered account. IDs are sequential, mirroring the Periscope
// property the paper exploited to count registrations.
type User struct {
	ID   uint64
	Name string
}

// Routes tells the service where the data plane lives. The platform wires
// these to real listener addresses; simulations use symbolic names.
type Routes struct {
	// AssignOrigin picks the ingest origin for a broadcaster location,
	// returning its ID and RTMP address.
	AssignOrigin func(loc geo.Location) (originID, rtmpAddr string)
	// RTMPSAddr returns an origin's TLS listener address for private
	// broadcasts (§7.2); nil disables private broadcasts.
	RTMPSAddr func(originID string) string
	// AssignEdge picks the HLS edge base URL for a viewer location.
	AssignEdge func(broadcastID string, loc geo.Location) (hlsBaseURL string)
	// MessageURL is the pubsub channel base URL handed to every client.
	MessageURL string
	// TLSCertPEM is the platform CA handed to private-broadcast clients
	// over this (authenticated) channel, so the data-path attacker can
	// never substitute a certificate.
	TLSCertPEM []byte
}

// Config configures a Service.
type Config struct {
	Routes Routes
	// RTMPViewerLimit is the RTMP→HLS cutoff; zero means the default 100.
	RTMPViewerLimit int
	// Clock defaults to the real clock.
	Clock clock.Clock
	// Seed drives global-list sampling.
	Seed uint64
	// Journal, when set, is the write-ahead log backing control-plane
	// crash recovery (DESIGN.md §6.3): registrations, broadcast
	// start/end, key registrations, and joins are appended through a
	// group-commit writer, and NewService replays whatever the backend
	// already holds — so constructing a Service over a non-empty journal
	// is the restart path. Nil disables journaling (no recovery).
	Journal journal.Backend
	// Metrics is the registry the control plane's recovery histogram and
	// journal counters register in; nil means a private registry.
	Metrics *metrics.Registry
	// Logf sinks journal replay/append diagnostics; nil discards.
	Logf func(format string, args ...interface{})
}

// BroadcastGrant is what a broadcaster gets back from StartBroadcast.
type BroadcastGrant struct {
	BroadcastID string
	Token       string
	OriginID    string
	RTMPAddr    string
	MessageURL  string
	// Private broadcasts upload over RTMPS instead (§7.2); RTMPSAddr and
	// CAPEM are only set for them.
	Private   bool
	RTMPSAddr string
	CAPEM     []byte
}

// Protocol selects a viewer's delivery path.
type Protocol string

// Viewer delivery protocols.
const (
	ProtoRTMP Protocol = "rtmp"
	ProtoHLS  Protocol = "hls"
)

// ViewerGrant is what a viewer gets back from Join. Mirroring Periscope,
// RTMP joins also receive the HLS URL (the paper's crawler exploited this to
// obtain both, §4.3). Private-broadcast grants instead carry an RTMPS
// address, a per-viewer token, and the platform CA.
type ViewerGrant struct {
	Protocol    Protocol
	RTMPAddr    string
	HLSBaseURL  string
	MessageURL  string
	Private     bool
	RTMPSAddr   string
	ViewerToken string
	CAPEM       []byte
}

// ProtoRTMPS is the private-broadcast delivery path.
const ProtoRTMPS Protocol = "rtmps"

// ViewerJoin is one recorded join.
type ViewerJoin struct {
	UserID uint64
	At     time.Time
}

// Summary is the public view of a broadcast.
type Summary struct {
	BroadcastID string
	Broadcaster uint64
	StartedAt   time.Time
	EndedAt     time.Time
	Live        bool
	Viewers     int
	Location    geo.Location
}

type broadcastState struct {
	id          string
	token       string
	broadcaster uint64
	originID    string
	rtmpAddr    string
	rtmpsAddr   string
	startedAt   time.Time
	endedAt     time.Time
	ended       bool
	loc         geo.Location
	// tenantID is the owning tenant for key-authenticated broadcasts;
	// empty for the legacy anonymous surface.
	tenantID string
	joins    []ViewerJoin
	pubKey   ed25519.PublicKey
	// started closes once the start-side effects (OnStart callbacks: pubsub
	// channel open, topology assignment) have finished. End paths wait on it
	// before firing OnEnd, so a data-plane end racing the start can never
	// close the hub channel before it was opened — which would leak it open
	// forever. Replayed broadcasts get a pre-closed channel.
	started chan struct{}
	// Private broadcasts admit only the allowed set, each with a minted
	// per-viewer token the origin validates.
	private      bool
	allowed      map[uint64]bool
	viewerTokens map[string]bool
}

// Service is the control plane.
type Service struct {
	cfg   Config
	clock clock.Clock
	reg   *metrics.Registry
	m     *ctrlMetrics
	logf  func(string, ...interface{})

	// crashed marks a killed control plane: every public method answers
	// ErrUnavailable (503 over HTTP) until Recover replays the journal.
	crashed atomic.Bool

	// joins is the per-tenant join limiter: one keyed bucket map, rates
	// derived from each tenant's plan at the Allow call (DESIGN.md §11).
	// It sits outside s.mu (it has its own lock) and outside the journaled
	// state — throttle buckets are volatile by design.
	joins *KeyedLimiter

	mu         sync.Mutex
	src        *rng.Source
	jw         *journal.Writer
	nextUser   uint64
	users      map[uint64]User
	broadcasts map[string]*broadcastState
	liveIDs    []string // maintained for O(1) random sampling
	livePos    map[string]int
	nextBcast  uint64
	// Tenancy state (journaled, wiped by Crash like everything above).
	nextTenant uint64
	tenants    map[string]*tenantState
	keys       map[string]*APIKey
	// meters accumulate data-plane delivery between usage flushes. They
	// deliberately survive Crash — see TenantMeter.
	meters map[string]*TenantMeter

	// listeners are notified on start/end, used by the platform to open
	// and close pubsub channels and topology assignments.
	onStart []func(id string, origin string)
	onEnd   []func(id string)
}

// NewService builds a Service. When the config carries a journal backend,
// whatever it already holds is replayed first — so pointing a fresh Service
// at a crashed one's journal is the restart path.
func NewService(cfg Config) *Service {
	if cfg.Clock == nil {
		cfg.Clock = clock.NewReal()
	}
	if cfg.RTMPViewerLimit == 0 {
		cfg.RTMPViewerLimit = DefaultRTMPViewerLimit
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...interface{}) {}
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	s := &Service{
		cfg:        cfg,
		clock:      cfg.Clock,
		reg:        reg,
		m:          newCtrlMetrics(reg),
		logf:       logf,
		src:        rng.New(cfg.Seed),
		users:      make(map[uint64]User),
		broadcasts: make(map[string]*broadcastState),
		livePos:    make(map[string]int),
		tenants:    make(map[string]*tenantState),
		keys:       make(map[string]*APIKey),
		meters:     make(map[string]*TenantMeter),
	}
	s.joins = NewKeyedLimiter(s.clock)
	s.mu.Lock()
	s.openJournalLocked()
	s.mu.Unlock()
	return s
}

// OnStart registers a callback fired when a broadcast starts.
func (s *Service) OnStart(fn func(broadcastID, originID string)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onStart = append(s.onStart, fn)
}

// OnEnd registers a callback fired when a broadcast ends.
func (s *Service) OnEnd(fn func(broadcastID string)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onEnd = append(s.onEnd, fn)
}

// SetMessageURL updates the pubsub base URL handed out in grants. The
// platform calls this once its HTTP listener is bound.
func (s *Service) SetMessageURL(url string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cfg.Routes.MessageURL = url
}

func (s *Service) messageURL() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cfg.Routes.MessageURL
}

// Register creates a user with the next sequential ID. It is the legacy
// always-succeeds surface; callers that must observe a control outage use
// RegisterUser.
func (s *Service) Register(name string) User {
	u, _ := s.RegisterUser(name)
	return u
}

// RegisterUser creates a user with the next sequential ID, failing with
// ErrUnavailable while the control plane is down.
func (s *Service) RegisterUser(name string) (User, error) {
	if s.crashed.Load() {
		return User{}, ErrUnavailable
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextUser++
	u := User{ID: s.nextUser, Name: name}
	s.users[u.ID] = u
	s.appendLocked(journal.Record{
		Type:    journal.RecordCtrlRegister,
		Payload: encodeCtrl(ctrlRegisterRec{ID: u.ID, Name: name}),
	})
	return u, nil
}

// UserCount returns the total registered users (the paper's §3.1 estimate
// read this off the latest sequential ID).
func (s *Service) UserCount() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nextUser
}

// newToken mints an unguessable broadcast token over the secure channel.
func newToken() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("control: token entropy: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

// StartBroadcast creates a live public broadcast for userID at loc.
func (s *Service) StartBroadcast(userID uint64, loc geo.Location) (BroadcastGrant, error) {
	return s.startBroadcast(userID, loc, nil)
}

// StartPrivateBroadcast creates a broadcast only the allowed users may
// join, delivered over RTMPS (§2.1's private broadcasts, §7.2's transport).
// It fails when the platform has no TLS listeners configured.
func (s *Service) StartPrivateBroadcast(userID uint64, loc geo.Location, allowed []uint64) (BroadcastGrant, error) {
	if s.cfg.Routes.RTMPSAddr == nil {
		return BroadcastGrant{}, errors.New("control: private broadcasts not enabled")
	}
	set := make(map[uint64]bool, len(allowed))
	for _, u := range allowed {
		set[u] = true
	}
	return s.startBroadcast(userID, loc, set)
}

func (s *Service) startBroadcast(userID uint64, loc geo.Location, allowed map[uint64]bool) (BroadcastGrant, error) {
	return s.startBroadcastAs(userID, loc, allowed, "")
}

// startBroadcastAs is the shared start path; tenantID is empty for the
// legacy anonymous surface and set for key-authenticated starts, in which
// case plan admission (max concurrent broadcasts) runs inside the same
// critical section that creates the broadcast.
func (s *Service) startBroadcastAs(userID uint64, loc geo.Location, allowed map[uint64]bool, tenantID string) (BroadcastGrant, error) {
	if s.crashed.Load() {
		return BroadcastGrant{}, ErrUnavailable
	}
	token, err := newToken()
	if err != nil {
		return BroadcastGrant{}, err
	}
	originID, rtmpAddr := "", ""
	if s.cfg.Routes.AssignOrigin != nil {
		originID, rtmpAddr = s.cfg.Routes.AssignOrigin(loc)
	}
	private := allowed != nil
	rtmpsAddr := ""
	if private {
		rtmpsAddr = s.cfg.Routes.RTMPSAddr(originID)
	}
	s.mu.Lock()
	var tenant *tenantState
	if tenantID != "" {
		ts, ok := s.tenants[tenantID]
		if !ok {
			s.mu.Unlock()
			return BroadcastGrant{}, ErrNoTenant
		}
		// Re-check under the lock: the key resolution ran outside it.
		if ts.t.Suspended {
			s.mu.Unlock()
			return BroadcastGrant{}, ErrTenantSuspended
		}
		if max := ts.t.Plan.MaxConcurrentBroadcasts; max > 0 && ts.live >= max {
			s.mu.Unlock()
			return BroadcastGrant{}, &QuotaError{
				Reason:     "concurrent broadcasts at plan limit",
				RetryAfter: time.Second,
			}
		}
		tenant = ts
	}
	s.nextBcast++
	id := fmt.Sprintf("bcast-%d", s.nextBcast)
	st := &broadcastState{
		id:          id,
		token:       token,
		broadcaster: userID,
		originID:    originID,
		rtmpAddr:    rtmpAddr,
		rtmpsAddr:   rtmpsAddr,
		startedAt:   s.clock.Now(),
		loc:         loc,
		private:     private,
		allowed:     allowed,
		tenantID:    tenantID,
		started:     make(chan struct{}),
	}
	if private {
		st.viewerTokens = make(map[string]bool)
	}
	if tenant != nil {
		tenant.live++
	}
	s.broadcasts[id] = st
	if !private {
		// Private broadcasts never appear on the public global list.
		s.livePos[id] = len(s.liveIDs)
		s.liveIDs = append(s.liveIDs, id)
	}
	rec := ctrlStartRec{
		Token:       token,
		Broadcaster: userID,
		OriginID:    originID,
		RTMPAddr:    rtmpAddr,
		RTMPSAddr:   rtmpsAddr,
		StartedAt:   st.startedAt.UnixNano(),
		City:        loc.City,
		Lat:         loc.Lat,
		Lon:         loc.Lon,
		Private:     private,
		TenantID:    tenantID,
	}
	for u := range allowed {
		rec.Allowed = append(rec.Allowed, u)
	}
	s.appendLocked(journal.Record{
		Type:        journal.RecordCtrlStart,
		BroadcastID: id,
		Payload:     encodeCtrl(rec),
	})
	callbacks := make([]func(broadcastID, originID string), len(s.onStart))
	copy(callbacks, s.onStart)
	s.mu.Unlock()
	for _, fn := range callbacks {
		fn(id, originID)
	}
	// End paths block on this: OnEnd never runs before OnStart finished.
	close(st.started)
	g := BroadcastGrant{
		BroadcastID: id,
		Token:       token,
		OriginID:    originID,
		RTMPAddr:    rtmpAddr,
		MessageURL:  s.messageURL(),
		Private:     private,
	}
	if private {
		g.RTMPSAddr = rtmpsAddr
		g.CAPEM = s.cfg.Routes.TLSCertPEM
		g.RTMPAddr = "" // private uploads must not use plaintext RTMP
	}
	return g, nil
}

// RegisterPublicKey stores a broadcaster's signing key, authenticated by the
// broadcast token. This is the §7.2 key exchange over the secure channel.
func (s *Service) RegisterPublicKey(broadcastID, token string, pub ed25519.PublicKey) error {
	if s.crashed.Load() {
		return ErrUnavailable
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.broadcasts[broadcastID]
	if !ok {
		return ErrNoBroadcast
	}
	if st.token != token {
		return ErrBadToken
	}
	st.pubKey = append(ed25519.PublicKey(nil), pub...)
	s.appendLocked(journal.Record{
		Type:        journal.RecordCtrlKey,
		BroadcastID: broadcastID,
		Payload:     encodeCtrl(ctrlKeyRec{PubKey: st.pubKey}),
	})
	return nil
}

// PublicKey returns the registered key for a broadcast, or nil. Viewers use
// this (over the secure channel) to verify signed streams.
func (s *Service) PublicKey(broadcastID string) ed25519.PublicKey {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.broadcasts[broadcastID]
	if !ok {
		return nil
	}
	return st.pubKey
}

// EndBroadcast finishes a broadcast; requires the broadcast token.
func (s *Service) EndBroadcast(broadcastID, token string) error {
	if s.crashed.Load() {
		return ErrUnavailable
	}
	s.mu.Lock()
	st, ok := s.broadcasts[broadcastID]
	if !ok {
		s.mu.Unlock()
		return ErrNoBroadcast
	}
	if st.token != token {
		s.mu.Unlock()
		return ErrBadToken
	}
	s.endLocked(st)
	return nil
}

// ForceEnd finishes a broadcast without a token. It is for server-internal
// use: the data plane reports that the broadcaster's RTMP session closed.
// ErrUnavailable means the control plane is down and the end was NOT
// recorded — the caller must retry after recovery or the broadcast would
// replay as falsely live.
func (s *Service) ForceEnd(broadcastID string) error {
	if s.crashed.Load() {
		return ErrUnavailable
	}
	s.mu.Lock()
	st, ok := s.broadcasts[broadcastID]
	if !ok {
		s.mu.Unlock()
		return ErrNoBroadcast
	}
	s.endLocked(st)
	return nil
}

// endLocked marks st ended, journals the end, and fires the OnEnd callbacks.
// Called with s.mu held; returns with it released. A no-op (beyond the
// unlock) when the broadcast already ended. It waits for the start side
// effects to finish before firing OnEnd — see broadcastState.started — so a
// data-plane end racing StartBroadcast cannot close the pubsub channel
// before it opened or journal the end record ahead of the start record.
func (s *Service) endLocked(st *broadcastState) {
	if st.ended {
		s.mu.Unlock()
		return
	}
	st.ended = true
	st.endedAt = s.clock.Now()
	if st.tenantID != "" {
		if ts, ok := s.tenants[st.tenantID]; ok && ts.live > 0 {
			ts.live--
		}
	}
	s.removeLiveLocked(st.id)
	s.appendLocked(journal.Record{
		Type:        journal.RecordCtrlEnd,
		BroadcastID: st.id,
		Payload:     encodeCtrl(ctrlEndRec{EndedAt: st.endedAt.UnixNano()}),
	})
	callbacks := make([]func(broadcastID string), len(s.onEnd))
	copy(callbacks, s.onEnd)
	started := st.started
	id := st.id
	s.mu.Unlock()
	<-started
	for _, fn := range callbacks {
		fn(id)
	}
}

func (s *Service) removeLiveLocked(id string) {
	pos, ok := s.livePos[id]
	if !ok {
		return
	}
	last := len(s.liveIDs) - 1
	s.liveIDs[pos] = s.liveIDs[last]
	s.livePos[s.liveIDs[pos]] = pos
	s.liveIDs = s.liveIDs[:last]
	delete(s.livePos, id)
}

// Join records a viewer joining and routes them: joins below the RTMP limit
// get the RTMP path, later ones HLS (§4.1).
func (s *Service) Join(userID uint64, broadcastID string, loc geo.Location) (ViewerGrant, error) {
	if s.crashed.Load() {
		return ViewerGrant{}, ErrUnavailable
	}
	s.mu.Lock()
	st, ok := s.broadcasts[broadcastID]
	if !ok {
		s.mu.Unlock()
		return ViewerGrant{}, ErrNoBroadcast
	}
	if st.ended {
		s.mu.Unlock()
		return ViewerGrant{}, ErrEnded
	}
	if st.private {
		if !st.allowed[userID] && st.broadcaster != userID {
			s.mu.Unlock()
			return ViewerGrant{}, ErrNotInvited
		}
		vt, err := newToken()
		if err != nil {
			s.mu.Unlock()
			return ViewerGrant{}, err
		}
		st.viewerTokens[vt] = true
		join := ViewerJoin{UserID: userID, At: s.clock.Now()}
		st.joins = append(st.joins, join)
		s.appendLocked(journal.Record{
			Type:        journal.RecordCtrlJoin,
			BroadcastID: broadcastID,
			Payload:     encodeCtrl(ctrlJoinRec{UserID: userID, At: join.At.UnixNano(), ViewerToken: vt}),
		})
		rtmpsAddr := st.rtmpsAddr
		s.mu.Unlock()
		return ViewerGrant{
			Protocol:    ProtoRTMPS,
			Private:     true,
			RTMPSAddr:   rtmpsAddr,
			ViewerToken: vt,
			CAPEM:       s.cfg.Routes.TLSCertPEM,
			MessageURL:  s.messageURL(),
		}, nil
	}
	join := ViewerJoin{UserID: userID, At: s.clock.Now()}
	st.joins = append(st.joins, join)
	s.appendLocked(journal.Record{
		Type:        journal.RecordCtrlJoin,
		BroadcastID: broadcastID,
		Payload:     encodeCtrl(ctrlJoinRec{UserID: userID, At: join.At.UnixNano()}),
	})
	idx := len(st.joins)
	rtmpAddr := st.rtmpAddr
	s.mu.Unlock()

	grant := ViewerGrant{MessageURL: s.messageURL()}
	if s.cfg.Routes.AssignEdge != nil {
		grant.HLSBaseURL = s.cfg.Routes.AssignEdge(broadcastID, loc)
	}
	if idx <= s.cfg.RTMPViewerLimit {
		grant.Protocol = ProtoRTMP
		grant.RTMPAddr = rtmpAddr
	} else {
		grant.Protocol = ProtoHLS
	}
	return grant, nil
}

// ResolveEdge re-resolves the HLS edge for an existing viewer session
// without recording a join. Failover pollers call it when their assigned
// edge dies, sheds, or drains mid-stream; because the route consults the
// fleet-health eligibility filter, the answer is whatever sibling edge is
// currently healthy and nearest. It works for ended-but-retained broadcasts
// too — a viewer mid-replay must still be able to migrate.
func (s *Service) ResolveEdge(broadcastID string, loc geo.Location) (string, error) {
	if s.crashed.Load() {
		return "", ErrUnavailable
	}
	s.mu.Lock()
	st, ok := s.broadcasts[broadcastID]
	var quotaErr *QuotaError
	if ok && st.tenantID != "" {
		// Quota-exceeded admission extends to failover re-resolves: an
		// over-quota tenant's viewers get 429 + Retry-After here, which
		// rides the FailoverPoller's resolve backoff (it honors the hint
		// and degrades to its cached edge when it has one).
		if ts, tok := s.tenants[st.tenantID]; tok {
			quotaErr = s.quotaCheckLocked(ts)
		}
	}
	s.mu.Unlock()
	if !ok {
		return "", ErrNoBroadcast
	}
	if quotaErr != nil {
		return "", quotaErr
	}
	if s.cfg.Routes.AssignEdge == nil {
		return "", errors.New("control: no edge route configured")
	}
	return s.cfg.Routes.AssignEdge(broadcastID, loc), nil
}

// GlobalList returns up to GlobalListSize randomly selected live broadcasts,
// the API surface the paper's crawler polled every 250 ms (§3.1).
func (s *Service) GlobalList() []Summary {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.liveIDs)
	k := GlobalListSize
	if n <= k {
		out := make([]Summary, 0, n)
		for _, id := range s.liveIDs {
			out = append(out, s.summaryLocked(s.broadcasts[id]))
		}
		return out
	}
	// Partial Fisher–Yates over a copy for an unbiased k-sample.
	ids := append([]string(nil), s.liveIDs...)
	out := make([]Summary, 0, k)
	for i := 0; i < k; i++ {
		j := i + s.src.Intn(n-i)
		ids[i], ids[j] = ids[j], ids[i]
		out = append(out, s.summaryLocked(s.broadcasts[ids[i]]))
	}
	return out
}

// Info returns the summary of one broadcast.
func (s *Service) Info(broadcastID string) (Summary, error) {
	if s.crashed.Load() {
		return Summary{}, ErrUnavailable
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.broadcasts[broadcastID]
	if !ok {
		return Summary{}, ErrNoBroadcast
	}
	return s.summaryLocked(st), nil
}

// Joins returns the recorded viewer joins for a broadcast.
func (s *Service) Joins(broadcastID string) ([]ViewerJoin, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.broadcasts[broadcastID]
	if !ok {
		return nil, ErrNoBroadcast
	}
	return append([]ViewerJoin(nil), st.joins...), nil
}

// LiveCount returns the number of live broadcasts.
func (s *Service) LiveCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.liveIDs)
}

func (s *Service) summaryLocked(st *broadcastState) Summary {
	return Summary{
		BroadcastID: st.id,
		Broadcaster: st.broadcaster,
		StartedAt:   st.startedAt,
		EndedAt:     st.endedAt,
		Live:        !st.ended,
		Viewers:     len(st.joins),
		Location:    st.loc,
	}
}

// Auth adapts the service to rtmp.Auth: broadcasters must present the exact
// broadcast token; viewers are admitted to any live broadcast (public
// broadcasts, the Periscope default).
type Auth struct{ S *Service }

// Authorize implements rtmp.Auth. While the control plane is down every
// live lookup fails closed; wrap with NewAuthCache for the degraded-mode
// grant cache that keeps previously authorized sessions reconnecting.
func (a Auth) Authorize(broadcastID, token, role string) bool {
	if a.S.crashed.Load() {
		return false
	}
	a.S.mu.Lock()
	defer a.S.mu.Unlock()
	st, ok := a.S.broadcasts[broadcastID]
	if !ok || st.ended {
		return false
	}
	if role == wire.RoleBroadcaster {
		return st.token == token
	}
	if st.private {
		// Private viewers present the per-user token minted at Join.
		return st.viewerTokens[token]
	}
	return true
}

// PublicKey implements rtmp.Auth.
func (a Auth) PublicKey(broadcastID string) ed25519.PublicKey {
	return a.S.PublicKey(broadcastID)
}
