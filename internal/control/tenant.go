package control

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/geo"
	"repro/internal/journal"
)

// Tenancy layer (DESIGN.md §11): the control plane's answer to "who owns
// this request". The paper's platform is a single implicit operator, but a
// production service meters everything per customer — a few huge channels
// must not starve thousands of small ones (the Twitch-style crowdsourced
// workload of PAPERS.md). Every entity here — tenant, plan, API key, usage
// rollup — is journaled with the same PR-7 semantics as broadcasts: appended
// under s.mu through the group-commit writer, wiped by Crash, rebuilt by
// Recover, with auth failing closed while the control plane is down.

// Tenancy errors. QuotaError wraps ErrQuotaExceeded with a Retry-After hint
// so the HTTP layer can answer 429 + Retry-After and the hls.FailoverPoller
// backoff path can honor the server-provided wait.
var (
	ErrBadAPIKey       = errors.New("control: unknown API key")
	ErrKeyRevoked      = errors.New("control: API key revoked")
	ErrTenantSuspended = errors.New("control: tenant suspended")
	ErrNoTenant        = errors.New("control: no such tenant")
	ErrQuotaExceeded   = errors.New("control: quota exceeded")
)

// QuotaError reports a plan-limit or quota rejection: which limit tripped
// and how long the caller should wait before retrying.
type QuotaError struct {
	Reason     string
	RetryAfter time.Duration
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("control: quota exceeded: %s (retry after %s)", e.Reason, e.RetryAfter)
}

// Is makes errors.Is(err, ErrQuotaExceeded) true for every QuotaError.
func (e *QuotaError) Is(target error) bool { return target == ErrQuotaExceeded }

// RetryAfterHint exposes the wait for hls.FailoverPoller's resolve backoff.
func (e *QuotaError) RetryAfterHint() time.Duration { return e.RetryAfter }

// Plan is a tenant's service level. Zero values mean unlimited — the
// implicit plan of the pre-tenancy platform.
type Plan struct {
	// Name labels the plan ("free", "pro"); informational.
	Name string
	// MaxConcurrentBroadcasts caps simultaneously live broadcasts.
	MaxConcurrentBroadcasts int
	// MaxJoinRPS is the sustained key-authenticated join rate; JoinBurst
	// is the bucket depth (zero means 2×MaxJoinRPS, floor 1).
	MaxJoinRPS float64
	JoinBurst  float64
	// DailyBytesQuota caps delivered bytes (RTMP fan-out + HLS chunks) per
	// UTC day; admission answers 429 once the rollups cross it.
	DailyBytesQuota int64
}

// joinBurst resolves the effective bucket depth for a plan.
func joinBurst(p Plan) float64 {
	if p.JoinBurst > 0 {
		return p.JoinBurst
	}
	b := 2 * p.MaxJoinRPS
	if b < 1 {
		b = 1
	}
	return b
}

// Tenant is one metered customer of the platform.
type Tenant struct {
	ID        string
	Name      string
	Plan      Plan
	Suspended bool
	CreatedAt time.Time
}

// APIKey authenticates requests to a tenant. Keys are minted with the same
// crypto/rand entropy as broadcast tokens and journaled, so they survive a
// control crash exactly like broadcast tokens do.
type APIKey struct {
	Key      string
	TenantID string
	Revoked  bool
	IssuedAt time.Time
}

// UsageDay is one per-tenant per-day delivery rollup. Values are cumulative
// absolute totals for the day.
type UsageDay struct {
	Day    string `json:"day"` // "2006-01-02", UTC
	Frames int64  `json:"frames"`
	Chunks int64  `json:"chunks"`
	Bytes  int64  `json:"bytes"`
}

// usageDayLayout formats clock time into rollup day keys.
const usageDayLayout = "2006-01-02"

// tenantState is the service-side row: the public Tenant plus live counters
// and flushed rollups.
type tenantState struct {
	t Tenant
	// live counts this tenant's currently live broadcasts (the
	// MaxConcurrentBroadcasts admission input).
	live int
	// usage holds flushed per-day rollups, keyed by day.
	usage map[string]UsageDay
}

// TenantMeter accumulates a tenant's delivered frames/chunks/bytes between
// usage flushes. The data plane resolves one per broadcast at session setup
// (cold path) and calls the Meter methods from fan-out and chunk-serve paths
// — atomic adds only, zero allocations. Meters deliberately survive Crash():
// they are data-plane accumulators, like the origins' own counters, so
// delivery metered during a control outage lands in the rollups after
// Recover instead of vanishing.
type TenantMeter struct {
	tenantID string
	frames   atomic.Int64
	chunks   atomic.Int64
	bytes    atomic.Int64
}

// MeterFrames records frames delivered over RTMP fan-out (rtmp.FrameUsage).
func (m *TenantMeter) MeterFrames(frames, bytes int64) {
	m.frames.Add(frames)
	m.bytes.Add(bytes)
}

// MeterChunks records chunks delivered from an HLS edge (cdn.ChunkUsage).
func (m *TenantMeter) MeterChunks(chunks, bytes int64) {
	m.chunks.Add(chunks)
	m.bytes.Add(bytes)
}

// pendingBytes reads the unflushed byte count (quota admission folds it in
// so a tenant cannot stream past its quota between flushes).
func (m *TenantMeter) pendingBytes() int64 { return m.bytes.Load() }

// Totals reads the meter's unflushed counts — a debugging/benchmark window
// into what the next FlushUsage will fold in.
func (m *TenantMeter) Totals() (frames, chunks, bytes int64) {
	return m.frames.Load(), m.chunks.Load(), m.bytes.Load()
}

// CreateTenant registers a tenant with sequential "tnt-N" IDs and journals
// the row.
func (s *Service) CreateTenant(name string, plan Plan) (Tenant, error) {
	if s.crashed.Load() {
		return Tenant{}, ErrUnavailable
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextTenant++
	t := Tenant{
		ID:        fmt.Sprintf("tnt-%d", s.nextTenant),
		Name:      name,
		Plan:      plan,
		CreatedAt: s.clock.Now(),
	}
	s.tenants[t.ID] = &tenantState{t: t, usage: make(map[string]UsageDay)}
	s.appendLocked(journal.Record{
		Type:        journal.RecordCtrlTenant,
		BroadcastID: t.ID,
		Payload:     encodeCtrl(tenantRecOf(t)),
	})
	return t, nil
}

// TenantInfo returns one tenant row.
func (s *Service) TenantInfo(id string) (Tenant, error) {
	if s.crashed.Load() {
		return Tenant{}, ErrUnavailable
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ts, ok := s.tenants[id]
	if !ok {
		return Tenant{}, ErrNoTenant
	}
	return ts.t, nil
}

// Tenants lists all tenant rows sorted by ID.
func (s *Service) Tenants() []Tenant {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Tenant, 0, len(s.tenants))
	for _, ts := range s.tenants {
		out = append(out, ts.t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// SetTenantPlan replaces a tenant's plan and journals the change.
func (s *Service) SetTenantPlan(id string, plan Plan) error {
	if s.crashed.Load() {
		return ErrUnavailable
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ts, ok := s.tenants[id]
	if !ok {
		return ErrNoTenant
	}
	ts.t.Plan = plan
	s.appendLocked(journal.Record{
		Type:        journal.RecordCtrlTenantPlan,
		BroadcastID: id,
		Payload:     encodeCtrl(ctrlTenantPlanRec{Plan: planRecOf(plan)}),
	})
	return nil
}

// SuspendTenant blocks every key-authenticated call for the tenant (403)
// until ResumeTenant.
func (s *Service) SuspendTenant(id string) error { return s.setSuspended(id, true) }

// ResumeTenant lifts a suspension.
func (s *Service) ResumeTenant(id string) error { return s.setSuspended(id, false) }

func (s *Service) setSuspended(id string, suspended bool) error {
	if s.crashed.Load() {
		return ErrUnavailable
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ts, ok := s.tenants[id]
	if !ok {
		return ErrNoTenant
	}
	ts.t.Suspended = suspended
	s.appendLocked(journal.Record{
		Type:        journal.RecordCtrlTenantStatus,
		BroadcastID: id,
		Payload:     encodeCtrl(ctrlTenantStatusRec{Suspended: suspended}),
	})
	return nil
}

// IssueAPIKey mints and journals a key for the tenant.
func (s *Service) IssueAPIKey(tenantID string) (APIKey, error) {
	if s.crashed.Load() {
		return APIKey{}, ErrUnavailable
	}
	secret, err := newToken()
	if err != nil {
		return APIKey{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.tenants[tenantID]; !ok {
		return APIKey{}, ErrNoTenant
	}
	k := APIKey{Key: "key-" + secret, TenantID: tenantID, IssuedAt: s.clock.Now()}
	s.keys[k.Key] = &k
	s.appendLocked(journal.Record{
		Type:        journal.RecordCtrlKeyIssue,
		BroadcastID: k.Key,
		Payload:     encodeCtrl(ctrlKeyIssueRec{Tenant: tenantID, IssuedAt: k.IssuedAt.UnixNano()}),
	})
	return k, nil
}

// RevokeAPIKey invalidates a key; every later use answers 403.
func (s *Service) RevokeAPIKey(key string) error {
	if s.crashed.Load() {
		return ErrUnavailable
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	k, ok := s.keys[key]
	if !ok {
		return ErrBadAPIKey
	}
	k.Revoked = true
	s.appendLocked(journal.Record{
		Type:        journal.RecordCtrlKeyRevoke,
		BroadcastID: key,
		Payload:     encodeCtrl(ctrlKeyRevokeRec{}),
	})
	return nil
}

// resolveKeyLocked authenticates an API key: unknown keys answer 401-class
// ErrBadAPIKey, revoked keys and suspended tenants 403-class errors. Called
// with s.mu held.
func (s *Service) resolveKeyLocked(key string) (*tenantState, error) {
	k, ok := s.keys[key]
	if !ok {
		return nil, ErrBadAPIKey
	}
	if k.Revoked {
		return nil, ErrKeyRevoked
	}
	ts, ok := s.tenants[k.TenantID]
	if !ok {
		// A key whose tenant row is gone is as dead as a revoked one.
		return nil, ErrBadAPIKey
	}
	if ts.t.Suspended {
		return nil, ErrTenantSuspended
	}
	return ts, nil
}

// StartBroadcastKey is the key-authenticated StartBroadcast: the broadcast
// is owned by (and admission-checked against) the key's tenant.
func (s *Service) StartBroadcastKey(key string, userID uint64, loc geo.Location) (BroadcastGrant, error) {
	if s.crashed.Load() {
		return BroadcastGrant{}, ErrUnavailable
	}
	s.mu.Lock()
	ts, err := s.resolveKeyLocked(key)
	if err != nil {
		s.mu.Unlock()
		return BroadcastGrant{}, err
	}
	tenantID := ts.t.ID
	s.mu.Unlock()
	return s.startBroadcastAs(userID, loc, nil, tenantID)
}

// JoinKey is the key-authenticated Join: the caller's tenant pays the join
// rate (plan MaxJoinRPS through the keyed limiter) and must be inside its
// daily delivered-bytes quota.
func (s *Service) JoinKey(key string, userID uint64, broadcastID string, loc geo.Location) (ViewerGrant, error) {
	if s.crashed.Load() {
		return ViewerGrant{}, ErrUnavailable
	}
	s.mu.Lock()
	ts, err := s.resolveKeyLocked(key)
	if err != nil {
		s.mu.Unlock()
		return ViewerGrant{}, err
	}
	tenantID, plan := ts.t.ID, ts.t.Plan
	quotaErr := s.quotaCheckLocked(ts)
	s.mu.Unlock()
	if plan.MaxJoinRPS > 0 && !s.joins.Allow(tenantID, plan.MaxJoinRPS, joinBurst(plan)) {
		return ViewerGrant{}, &QuotaError{Reason: "join rate above plan limit", RetryAfter: rateRetryAfter(plan.MaxJoinRPS)}
	}
	if quotaErr != nil {
		return ViewerGrant{}, quotaErr
	}
	return s.Join(userID, broadcastID, loc)
}

// rateRetryAfter suggests a wait long enough to earn one token back.
func rateRetryAfter(rps float64) time.Duration {
	if rps <= 0 {
		return time.Second
	}
	d := time.Duration(float64(time.Second) / rps)
	if d < time.Second {
		d = time.Second
	}
	return d
}

// quotaCheckLocked reports whether the tenant is over its daily bytes quota:
// flushed rollups for the current day plus the meter's unflushed pending
// bytes. Called with s.mu held.
func (s *Service) quotaCheckLocked(ts *tenantState) *QuotaError {
	q := ts.t.Plan.DailyBytesQuota
	if q <= 0 {
		return nil
	}
	now := s.clock.Now().UTC()
	used := ts.usage[now.Format(usageDayLayout)].Bytes
	if m := s.meters[ts.t.ID]; m != nil {
		used += m.pendingBytes()
	}
	if used < q {
		return nil
	}
	return &QuotaError{Reason: "daily delivered-bytes quota", RetryAfter: untilNextDay(now)}
}

// untilNextDay is the Retry-After for a spent daily quota: time to the next
// UTC day boundary, clamped to [1s, 1h] so clients neither spin nor park for
// a literal day.
func untilNextDay(now time.Time) time.Duration {
	next := now.Truncate(24 * time.Hour).Add(24 * time.Hour)
	d := next.Sub(now)
	if d > time.Hour {
		d = time.Hour
	}
	if d < time.Second {
		d = time.Second
	}
	return d
}

// TenantOf returns the tenant owning a broadcast, or "" for untenanted
// (legacy anonymous) broadcasts. The data plane calls it at session setup to
// label per-tenant instruments.
func (s *Service) TenantOf(broadcastID string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if st, ok := s.broadcasts[broadcastID]; ok {
		return st.tenantID
	}
	return ""
}

// Meter returns the usage accumulator for a broadcast's owning tenant, or
// nil for untenanted broadcasts. Called by the data plane at session setup
// (cold path); the returned meter's methods are the hot-path sinks.
func (s *Service) Meter(broadcastID string) *TenantMeter {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.broadcasts[broadcastID]
	if !ok || st.tenantID == "" {
		return nil
	}
	return s.meterLocked(st.tenantID)
}

// meterLocked returns (creating if needed) the tenant's meter. Meters live
// outside the journaled state: Crash keeps them, so data-plane accounting
// during an outage survives into the post-Recover flush.
func (s *Service) meterLocked(tenantID string) *TenantMeter {
	m, ok := s.meters[tenantID]
	if !ok {
		m = &TenantMeter{tenantID: tenantID}
		s.meters[tenantID] = m
	}
	return m
}

// FlushUsage drains every meter's pending counts into the current UTC day's
// rollup and journals the new ABSOLUTE day totals (RecordCtrlUsage). Replay
// assigns those totals, so a torn tail mid-rollup loses at most the newest
// flush — it can never double-count. Returns how many tenants had activity.
// A crashed control plane skips the flush entirely; the atomics keep
// accumulating and the next flush after Recover picks them up.
func (s *Service) FlushUsage() int {
	if s.crashed.Load() {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	day := s.clock.Now().UTC().Format(usageDayLayout)
	flushed := 0
	for tenantID, m := range s.meters {
		frames, chunks, bytes := m.frames.Swap(0), m.chunks.Swap(0), m.bytes.Swap(0)
		if frames == 0 && chunks == 0 && bytes == 0 {
			continue
		}
		ts, ok := s.tenants[tenantID]
		if !ok {
			// Tenant deleted underneath a live meter: drop the counts, a
			// rollup without an owner row is unreachable anyway.
			continue
		}
		u := ts.usage[day]
		u.Day = day
		u.Frames += frames
		u.Chunks += chunks
		u.Bytes += bytes
		ts.usage[day] = u
		s.appendLocked(journal.Record{
			Type:        journal.RecordCtrlUsage,
			BroadcastID: tenantID,
			Payload: encodeCtrl(ctrlUsageRec{
				Day:    day,
				Frames: u.Frames,
				Chunks: u.Chunks,
				Bytes:  u.Bytes,
			}),
		})
		flushed++
	}
	return flushed
}

// Usage returns a tenant's flushed per-day rollups sorted by day.
func (s *Service) Usage(tenantID string) ([]UsageDay, error) {
	if s.crashed.Load() {
		return nil, ErrUnavailable
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ts, ok := s.tenants[tenantID]
	if !ok {
		return nil, ErrNoTenant
	}
	out := make([]UsageDay, 0, len(ts.usage))
	for _, u := range ts.usage {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Day < out[j].Day })
	return out, nil
}

// Sweep drops idle per-tenant join buckets (shared mechanism with the
// per-client API RateLimiter; the platform janitor calls both).
func (s *Service) Sweep(maxIdle time.Duration) int {
	return s.joins.Sweep(maxIdle)
}
