package control

import (
	"context"
	"crypto/ed25519"
	"errors"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/geo"
	"repro/internal/metrics"
	"repro/internal/resilience"
)

// This file is the client half of DESIGN.md §6.3's degraded mode: the
// control plane can crash or partition away, but live delivery must not
// stop. Two caches implement that:
//
//   - AuthCache sits on the origin's RTMP auth path. A publisher or viewer
//     the control plane authorized once keeps reconnecting through an
//     outage on the cached grant (TTL-bounded), so an origin crash during a
//     control outage does not cascade into dead broadcasts.
//   - ResolverCache sits on the viewer's control-API path. Edge mappings
//     resolve from cache while the control plane is away, joins queue and
//     replay on recovery, and a breaker keeps the outage from turning into
//     a thundering herd of doomed requests.

// Degraded-mode instrument names, shared by both caches so dashboards see
// one coherent signal regardless of which path degraded.
const (
	// metricUnavailable counts control-plane calls that failed over to the
	// degraded path (cache hit or not).
	metricUnavailable = "control_unavailable_total"
	// metricStaleServed counts requests actually answered from a stale
	// cached grant or mapping while the control plane was unreachable.
	metricStaleServed = "control_stale_served_total"
)

// AuthCacheConfig tunes an AuthCache.
type AuthCacheConfig struct {
	// Service is the live control plane consulted first. Required.
	Service *Service
	// TTL bounds how long a cached grant outlives its last live
	// confirmation; zero means 5 minutes. The TTL is the revocation
	// horizon: a broadcast ended during an outage keeps admitting its
	// already-authorized clients at most this long.
	TTL time.Duration
	// Gate, when set, simulates the origin↔control link: a non-nil error
	// means the link is partitioned and the live lookup must not be
	// attempted. Nil means only Service.Down() gates.
	Gate func() error
	// Clock defaults to the real clock.
	Clock clock.Clock
	// Metrics registers the degraded-mode instruments; nil means private.
	Metrics *metrics.Registry
}

type authGrantKey struct {
	broadcastID string
	token       string
	role        string
}

// AuthCache implements rtmp.Auth over a Service with a TTL'd grant cache
// that keeps serving while the control plane is crashed or partitioned.
type AuthCache struct {
	cfg AuthCacheConfig
	clk clock.Clock

	unavailable *metrics.Counter
	staleServed *metrics.Counter

	mu     sync.Mutex
	grants map[authGrantKey]time.Time // grant → expiry
	keys   map[string]ed25519.PublicKey
}

// NewAuthCache builds the cache and registers its instruments: the shared
// unavailable/stale counters plus a control_stale_grants gauge sampling the
// number of unexpired cached grants (the blast radius an outage could serve
// from).
func NewAuthCache(cfg AuthCacheConfig) *AuthCache {
	if cfg.TTL <= 0 {
		cfg.TTL = 5 * time.Minute
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.NewReal()
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	ac := &AuthCache{
		cfg:         cfg,
		clk:         cfg.Clock,
		unavailable: reg.Counter(metricUnavailable),
		staleServed: reg.Counter(metricStaleServed),
		grants:      make(map[authGrantKey]time.Time),
		keys:        make(map[string]ed25519.PublicKey),
	}
	reg.GaugeFunc("control_stale_grants", func() int64 {
		ac.mu.Lock()
		defer ac.mu.Unlock()
		now := ac.clk.Now()
		var n int64
		for _, exp := range ac.grants {
			if exp.After(now) {
				n++
			}
		}
		return n
	})
	return ac
}

// reachable reports whether a live control lookup should be attempted.
func (ac *AuthCache) reachable() bool {
	if ac.cfg.Service.Down() {
		return false
	}
	if ac.cfg.Gate != nil && ac.cfg.Gate() != nil {
		return false
	}
	return true
}

// Authorize implements rtmp.Auth. Live answers are authoritative both ways:
// a yes refreshes the cached grant's TTL, a no revokes it (the broadcast
// ended or the token was never valid). Only when the control plane is
// unreachable does the cache answer — and only within the TTL.
func (ac *AuthCache) Authorize(broadcastID, token, role string) bool {
	key := authGrantKey{broadcastID: broadcastID, token: token, role: role}
	if ac.reachable() {
		ok := Auth{S: ac.cfg.Service}.Authorize(broadcastID, token, role)
		ac.mu.Lock()
		if ok {
			ac.grants[key] = ac.clk.Now().Add(ac.cfg.TTL)
		} else {
			delete(ac.grants, key)
		}
		ac.mu.Unlock()
		return ok
	}
	ac.unavailable.Inc()
	ac.mu.Lock()
	exp, ok := ac.grants[key]
	ac.mu.Unlock()
	if !ok || !exp.After(ac.clk.Now()) {
		return false
	}
	ac.staleServed.Inc()
	return true
}

// PublicKey implements rtmp.Auth, caching the last live answer per
// broadcast so signed streams keep verifying through an outage.
func (ac *AuthCache) PublicKey(broadcastID string) ed25519.PublicKey {
	if ac.reachable() {
		k := ac.cfg.Service.PublicKey(broadcastID)
		ac.mu.Lock()
		if k != nil {
			ac.keys[broadcastID] = k
		}
		ac.mu.Unlock()
		return k
	}
	ac.unavailable.Inc()
	ac.mu.Lock()
	defer ac.mu.Unlock()
	return ac.keys[broadcastID]
}

// Evict drops every cached grant and key for one broadcast. The platform
// janitor calls it when a broadcast is garbage-collected.
func (ac *AuthCache) Evict(broadcastID string) {
	ac.mu.Lock()
	defer ac.mu.Unlock()
	for k := range ac.grants {
		if k.broadcastID == broadcastID {
			delete(ac.grants, k)
		}
	}
	delete(ac.keys, broadcastID)
}

// --- viewer-side resolver cache --------------------------------------------

// ResolverCacheConfig tunes a ResolverCache.
type ResolverCacheConfig struct {
	// Client is the live control API. Required.
	Client *Client
	// TTL bounds a cached edge mapping's life without live confirmation;
	// zero means one minute.
	TTL time.Duration
	// Breaker trips after repeated control failures so an outage costs one
	// probe per cooldown instead of a timeout per viewer per poll. Zero
	// uses the resilience defaults.
	Breaker resilience.BreakerConfig
	// Clock defaults to the real clock.
	Clock clock.Clock
	// Metrics registers the degraded-mode instruments; nil means private.
	Metrics *metrics.Registry
}

type cachedEdge struct {
	url string
	exp time.Time
}

type queuedJoin struct {
	UserID      uint64
	BroadcastID string
	Loc         geo.Location
}

// ResolverCache is the viewer-session wrapper around the control API:
// resolve-edge and join answers are cached with TTLs, a breaker fails fast
// during an outage, joins queue while the control plane is away, and
// FlushJoins replays them on recovery — so the control plane's books catch
// up with the viewers that kept streaming without it.
type ResolverCache struct {
	cfg ResolverCacheConfig
	clk clock.Clock
	br  *resilience.Breaker

	unavailable *metrics.Counter
	staleServed *metrics.Counter

	mu     sync.Mutex
	edges  map[string]cachedEdge // broadcastID → last-known edge
	queued []queuedJoin
}

// NewResolverCache builds the cache and registers its instruments,
// including a control_queued_joins gauge over the replay backlog.
func NewResolverCache(cfg ResolverCacheConfig) *ResolverCache {
	if cfg.TTL <= 0 {
		cfg.TTL = time.Minute
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.NewReal()
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	rc := &ResolverCache{
		cfg:         cfg,
		clk:         cfg.Clock,
		br:          resilience.NewBreaker(cfg.Breaker),
		unavailable: reg.Counter(metricUnavailable),
		staleServed: reg.Counter(metricStaleServed),
		edges:       make(map[string]cachedEdge),
	}
	reg.GaugeFunc("control_queued_joins", func() int64 {
		rc.mu.Lock()
		defer rc.mu.Unlock()
		return int64(len(rc.queued))
	})
	return rc
}

// permanentControlErr reports an answer that is authoritative, not an
// outage: falling back to cache on these would mask a real rejection.
func permanentControlErr(err error) bool {
	return errors.Is(err, ErrNoBroadcast) || errors.Is(err, ErrBadToken) ||
		errors.Is(err, ErrNotInvited) || errors.Is(err, ErrEnded)
}

// throughBreaker runs op under the breaker, but reports authoritative
// rejections as successes: the control plane answered, so the circuit is
// healthy — only outages (timeouts, 503s, refused connections) should open
// it.
func (rc *ResolverCache) throughBreaker(op func() error) error {
	if err := rc.br.Allow(); err != nil {
		return err
	}
	err := op()
	if permanentControlErr(err) {
		rc.br.Report(nil)
	} else {
		rc.br.Report(err)
	}
	return err
}

// ResolveEdge resolves the HLS edge for a broadcast: live through the
// breaker when possible (refreshing the cache and opportunistically
// replaying queued joins), from the unexpired cache when the control plane
// is unreachable. ErrNoBroadcast from a live answer is authoritative and
// evicts the cache entry.
func (rc *ResolverCache) ResolveEdge(ctx context.Context, broadcastID string, loc geo.Location) (string, error) {
	var url string
	err := rc.throughBreaker(func() error {
		var err error
		url, err = rc.cfg.Client.ResolveEdge(ctx, broadcastID, loc)
		return err
	})
	now := rc.clk.Now()
	if err == nil {
		rc.mu.Lock()
		rc.edges[broadcastID] = cachedEdge{url: url, exp: now.Add(rc.cfg.TTL)}
		rc.mu.Unlock()
		rc.flushAsyncIfQueued(ctx)
		return url, nil
	}
	if permanentControlErr(err) {
		rc.mu.Lock()
		delete(rc.edges, broadcastID)
		rc.mu.Unlock()
		return "", err
	}
	rc.unavailable.Inc()
	rc.mu.Lock()
	ce, ok := rc.edges[broadcastID]
	rc.mu.Unlock()
	if ok && ce.exp.After(now) {
		rc.staleServed.Inc()
		return ce.url, nil
	}
	return "", err
}

// Join requests a viewer grant. While the control plane is unreachable it
// degrades instead of failing: the join is queued for replay and, when an
// unexpired edge mapping is cached, a synthetic HLS grant against that edge
// is returned (degraded=true) so the viewer starts streaming immediately.
// Without a cached mapping the control error surfaces — there is nothing to
// stream from.
func (rc *ResolverCache) Join(ctx context.Context, userID uint64, broadcastID string, loc geo.Location) (grant ViewerGrant, degraded bool, err error) {
	err = rc.throughBreaker(func() error {
		var err error
		grant, err = rc.cfg.Client.Join(ctx, userID, broadcastID, loc)
		return err
	})
	if err == nil {
		if grant.HLSBaseURL != "" {
			rc.mu.Lock()
			rc.edges[broadcastID] = cachedEdge{url: grant.HLSBaseURL, exp: rc.clk.Now().Add(rc.cfg.TTL)}
			rc.mu.Unlock()
		}
		rc.flushAsyncIfQueued(ctx)
		return grant, false, nil
	}
	if permanentControlErr(err) {
		return ViewerGrant{}, false, err
	}
	rc.unavailable.Inc()
	rc.mu.Lock()
	rc.queued = append(rc.queued, queuedJoin{UserID: userID, BroadcastID: broadcastID, Loc: loc})
	ce, ok := rc.edges[broadcastID]
	rc.mu.Unlock()
	if ok && ce.exp.After(rc.clk.Now()) {
		rc.staleServed.Inc()
		return ViewerGrant{Protocol: ProtoHLS, HLSBaseURL: ce.url}, true, nil
	}
	return ViewerGrant{}, false, err
}

// QueuedJoins returns the replay backlog size.
func (rc *ResolverCache) QueuedJoins() int {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return len(rc.queued)
}

// FlushJoins replays queued joins against the recovered control plane,
// returning how many were accepted. Replay stops at the first transient
// failure (the rest stay queued for the next flush); authoritative
// rejections — the broadcast ended while the viewer streamed degraded —
// are dropped, since there is no longer anything to record the join on.
func (rc *ResolverCache) FlushJoins(ctx context.Context) int {
	flushed := 0
	for {
		rc.mu.Lock()
		if len(rc.queued) == 0 {
			rc.mu.Unlock()
			return flushed
		}
		j := rc.queued[0]
		rc.queued = rc.queued[1:]
		rc.mu.Unlock()
		_, err := rc.cfg.Client.Join(ctx, j.UserID, j.BroadcastID, j.Loc)
		switch {
		case err == nil:
			flushed++
		case permanentControlErr(err):
			// Dropped: the broadcast is gone; nothing to replay onto.
		default:
			rc.mu.Lock()
			rc.queued = append([]queuedJoin{j}, rc.queued...)
			rc.mu.Unlock()
			return flushed
		}
	}
}

// flushAsyncIfQueued kicks one background replay after a live success —
// recovery detection without a poller. The goroutine is bounded: FlushJoins
// drains or stops at the first transient failure.
func (rc *ResolverCache) flushAsyncIfQueued(ctx context.Context) {
	rc.mu.Lock()
	n := len(rc.queued)
	rc.mu.Unlock()
	if n == 0 {
		return
	}
	go rc.FlushJoins(context.WithoutCancel(ctx))
}
