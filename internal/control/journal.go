package control

import (
	"crypto/ed25519"
	"encoding/json"
	"errors"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/geo"
	"repro/internal/journal"
	"repro/internal/metrics"
)

// This file is the control plane's durability layer (DESIGN.md §6.3): every
// state transition the service acknowledges — user registration, broadcast
// start/end, public-key registration, viewer join — is appended to a
// write-ahead journal, and Crash/Recover replays it so a restarted control
// plane resumes with live broadcasts, tokens, and edge assignments intact.
// The framing is internal/journal's CRC-checked record stream; the payloads
// here are JSON: the control plane is off every hot path, so the codec
// optimizes for schema evolution over allocation count.
//
// Replay determinism rests on one invariant: records are enqueued while
// s.mu is held, so the journal order IS the serialization the mutex imposed
// on the live mutations. Replaying the log single-threaded therefore
// reconstructs exactly the state the crashed process acknowledged —
// including the crypto/rand-minted broadcast and viewer tokens, which could
// never be re-derived.

// Journal payload codecs, one per Record*Ctrl* type. BroadcastID travels in
// the record frame itself.
type ctrlRegisterRec struct {
	ID   uint64 `json:"id"`
	Name string `json:"name,omitempty"`
}

type ctrlStartRec struct {
	Token       string   `json:"token"`
	Broadcaster uint64   `json:"broadcaster"`
	OriginID    string   `json:"origin_id,omitempty"`
	RTMPAddr    string   `json:"rtmp_addr,omitempty"`
	RTMPSAddr   string   `json:"rtmps_addr,omitempty"`
	StartedAt   int64    `json:"started_at"` // unix nanos
	City        string   `json:"city,omitempty"`
	Lat         float64  `json:"lat,omitempty"`
	Lon         float64  `json:"lon,omitempty"`
	Private     bool     `json:"private,omitempty"`
	Allowed     []uint64 `json:"allowed,omitempty"`
	TenantID    string   `json:"tenant,omitempty"`
}

type ctrlEndRec struct {
	EndedAt int64 `json:"ended_at"` // unix nanos
}

type ctrlKeyRec struct {
	PubKey []byte `json:"pubkey"`
}

type ctrlJoinRec struct {
	UserID uint64 `json:"user_id"`
	At     int64  `json:"at"` // unix nanos
	// ViewerToken is set for private-broadcast joins: the origin validates
	// it at RTMPS handshake, so it must survive a control restart.
	ViewerToken string `json:"viewer_token,omitempty"`
}

// Tenancy codecs (DESIGN.md §11). The tenant ID (or, for key records, the
// API key) travels in the record frame's BroadcastID field.

// planRec is the journaled form of a Plan.
type planRec struct {
	Name          string  `json:"name,omitempty"`
	MaxBroadcasts int     `json:"max_broadcasts,omitempty"`
	MaxJoinRPS    float64 `json:"max_join_rps,omitempty"`
	JoinBurst     float64 `json:"join_burst,omitempty"`
	DailyBytes    int64   `json:"daily_bytes,omitempty"`
}

func planRecOf(p Plan) planRec {
	return planRec{
		Name:          p.Name,
		MaxBroadcasts: p.MaxConcurrentBroadcasts,
		MaxJoinRPS:    p.MaxJoinRPS,
		JoinBurst:     p.JoinBurst,
		DailyBytes:    p.DailyBytesQuota,
	}
}

func (r planRec) plan() Plan {
	return Plan{
		Name:                    r.Name,
		MaxConcurrentBroadcasts: r.MaxBroadcasts,
		MaxJoinRPS:              r.MaxJoinRPS,
		JoinBurst:               r.JoinBurst,
		DailyBytesQuota:         r.DailyBytes,
	}
}

type ctrlTenantRec struct {
	Name      string  `json:"name,omitempty"`
	Plan      planRec `json:"plan"`
	Suspended bool    `json:"suspended,omitempty"`
	CreatedAt int64   `json:"created_at"` // unix nanos
}

func tenantRecOf(t Tenant) ctrlTenantRec {
	return ctrlTenantRec{
		Name:      t.Name,
		Plan:      planRecOf(t.Plan),
		Suspended: t.Suspended,
		CreatedAt: t.CreatedAt.UnixNano(),
	}
}

type ctrlTenantPlanRec struct {
	Plan planRec `json:"plan"`
}

type ctrlTenantStatusRec struct {
	Suspended bool `json:"suspended"`
}

type ctrlKeyIssueRec struct {
	Tenant   string `json:"tenant"`
	IssuedAt int64  `json:"issued_at"` // unix nanos
}

type ctrlKeyRevokeRec struct{}

// ctrlUsageRec carries ABSOLUTE cumulative day totals (see
// journal.RecordCtrlUsage): replay assigns, so a torn tail can lose the
// newest rollup but never double-counts an older one.
type ctrlUsageRec struct {
	Day    string `json:"day"`
	Frames int64  `json:"frames"`
	Chunks int64  `json:"chunks"`
	Bytes  int64  `json:"bytes"`
}

// encodeCtrl marshals a payload codec. The codecs are plain structs of
// scalars and slices; json.Marshal cannot fail on them.
func encodeCtrl(v interface{}) []byte {
	b, _ := json.Marshal(v)
	return b
}

// ctrlMetrics instrument the durability layer: recovery latency plus the
// replay/corruption counters shared (by name, distinguished by the site
// label) with the origin journals.
type ctrlMetrics struct {
	recovery     *metrics.Histogram
	replayed     *metrics.Counter
	corruptTails *metrics.Counter
}

// recoveryBuckets resolve control-plane recovery time: journal replay over
// in-memory or file backends, expected in the low milliseconds.
var recoveryBuckets = []time.Duration{
	time.Millisecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	25 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	250 * time.Millisecond,
	time.Second,
	5 * time.Second,
}

func newCtrlMetrics(reg *metrics.Registry) *ctrlMetrics {
	l := metrics.L("site", "control")
	return &ctrlMetrics{
		recovery:     reg.Histogram("control_recovery_seconds", recoveryBuckets),
		replayed:     reg.Counter("journal_replayed_records_total", l),
		corruptTails: reg.Counter("journal_corrupt_tails_total", l),
	}
}

// closedStart is the pre-closed start gate given to replayed broadcasts:
// their OnStart side effects re-fire during Recover, so an end must never
// wait on them.
var closedStart = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// appendLocked enqueues one record on the journal writer. Called with s.mu
// held — see the package comment above: holding the lock across the enqueue
// is what makes journal order equal mutation order. The writer only
// enqueues (the group commit runs on its own goroutine), so the critical
// section grows by a channel send, never an fsync.
func (s *Service) appendLocked(r journal.Record) {
	if s.jw == nil {
		return
	}
	if err := s.jw.Append(r); err != nil && !errors.Is(err, journal.ErrClosed) {
		s.logf("control: journal append: %v", err)
	}
}

// openJournalLocked replays the configured journal backend into the service
// state, truncates any damaged tail, and starts the group-commit writer.
// No-op without a backend. Called with s.mu held.
func (s *Service) openJournalLocked() {
	backend := s.cfg.Journal
	if backend == nil {
		return
	}
	data, err := backend.Load()
	if err != nil {
		s.logf("control: journal load: %v", err)
		data = nil
	}
	st, err := journal.Replay(data, s.applyRecordLocked)
	if err != nil {
		// applyRecordLocked never fails; a non-nil error would mean the
		// journal package broke its own contract.
		s.logf("control: journal replay: %v", err)
	}
	if st.TailCorrupt {
		// Discard the damaged tail before appending anything new: bytes
		// written after a corrupt region would be unreachable to every
		// future replay.
		s.m.corruptTails.Inc()
		s.logf("control: journal tail corrupt: discarding %d bytes after %d records",
			st.DiscardedBytes, st.Records)
		if err := backend.Truncate(int64(st.ValidBytes)); err != nil {
			s.logf("control: journal truncate: %v", err)
		}
	}
	s.m.replayed.Add(int64(st.Records))
	s.jw = journal.NewWriter(backend, journal.WriterConfig{
		Metrics: s.reg,
		Labels:  []metrics.Label{metrics.L("site", "control")},
		Logf:    s.logf,
	})
}

// bcastSeq extracts N from a "bcast-N" broadcast ID; replay uses it to
// restore the sequential-ID counter past every journaled broadcast.
func bcastSeq(id string) (uint64, bool) { return seqOf(id, "bcast-") }

// tntSeq does the same for "tnt-N" tenant IDs.
func tntSeq(id string) (uint64, bool) { return seqOf(id, "tnt-") }

func seqOf(id, prefix string) (uint64, bool) {
	rest, ok := strings.CutPrefix(id, prefix)
	if !ok {
		return 0, false
	}
	n, err := strconv.ParseUint(rest, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// applyRecordLocked rehydrates one journal record. A CRC-valid record with
// an undecodable payload is a writer bug, not tail damage; it is skipped
// (logged) rather than aborting recovery.
func (s *Service) applyRecordLocked(r journal.Record) error {
	switch r.Type {
	case journal.RecordCtrlRegister:
		var rec ctrlRegisterRec
		if json.Unmarshal(r.Payload, &rec) != nil || rec.ID == 0 {
			s.logf("control: journal register record undecodable")
			return nil
		}
		s.users[rec.ID] = User{ID: rec.ID, Name: rec.Name}
		if rec.ID > s.nextUser {
			s.nextUser = rec.ID
		}
	case journal.RecordCtrlStart:
		var rec ctrlStartRec
		if json.Unmarshal(r.Payload, &rec) != nil {
			s.logf("control: journal start record %q undecodable", r.BroadcastID)
			return nil
		}
		id := r.BroadcastID
		if _, ok := s.broadcasts[id]; ok {
			return nil
		}
		st := &broadcastState{
			id:          id,
			token:       rec.Token,
			broadcaster: rec.Broadcaster,
			originID:    rec.OriginID,
			rtmpAddr:    rec.RTMPAddr,
			rtmpsAddr:   rec.RTMPSAddr,
			startedAt:   time.Unix(0, rec.StartedAt),
			loc:         geo.Location{City: rec.City, Lat: rec.Lat, Lon: rec.Lon},
			private:     rec.Private,
			tenantID:    rec.TenantID,
			started:     closedStart,
		}
		if rec.TenantID != "" {
			// The owning tenant's record always precedes the start in the
			// journal (both were appended under s.mu); a missing row means a
			// tenant record was skipped as undecodable — count live anyway so
			// a later tenant upsert sees consistent admission state.
			if ts, ok := s.tenants[rec.TenantID]; ok {
				ts.live++
			}
		}
		if rec.Private {
			st.allowed = make(map[uint64]bool, len(rec.Allowed))
			for _, u := range rec.Allowed {
				st.allowed[u] = true
			}
			st.viewerTokens = make(map[string]bool)
		}
		s.broadcasts[id] = st
		if !rec.Private {
			s.livePos[id] = len(s.liveIDs)
			s.liveIDs = append(s.liveIDs, id)
		}
		if n, ok := bcastSeq(id); ok && n > s.nextBcast {
			s.nextBcast = n
		}
	case journal.RecordCtrlEnd:
		st, ok := s.broadcasts[r.BroadcastID]
		if !ok || st.ended {
			return nil
		}
		var rec ctrlEndRec
		if json.Unmarshal(r.Payload, &rec) != nil {
			s.logf("control: journal end record %q undecodable", r.BroadcastID)
			return nil
		}
		st.ended = true
		st.endedAt = time.Unix(0, rec.EndedAt)
		if st.tenantID != "" {
			if ts, tok := s.tenants[st.tenantID]; tok && ts.live > 0 {
				ts.live--
			}
		}
		s.removeLiveLocked(r.BroadcastID)
	case journal.RecordCtrlKey:
		st, ok := s.broadcasts[r.BroadcastID]
		if !ok {
			return nil
		}
		var rec ctrlKeyRec
		if json.Unmarshal(r.Payload, &rec) != nil {
			s.logf("control: journal key record %q undecodable", r.BroadcastID)
			return nil
		}
		st.pubKey = append(ed25519.PublicKey(nil), rec.PubKey...)
	case journal.RecordCtrlJoin:
		st, ok := s.broadcasts[r.BroadcastID]
		if !ok || st.ended {
			return nil
		}
		var rec ctrlJoinRec
		if json.Unmarshal(r.Payload, &rec) != nil {
			s.logf("control: journal join record %q undecodable", r.BroadcastID)
			return nil
		}
		st.joins = append(st.joins, ViewerJoin{UserID: rec.UserID, At: time.Unix(0, rec.At)})
		if rec.ViewerToken != "" && st.viewerTokens != nil {
			st.viewerTokens[rec.ViewerToken] = true
		}
	case journal.RecordCtrlTenant:
		var rec ctrlTenantRec
		if json.Unmarshal(r.Payload, &rec) != nil {
			s.logf("control: journal tenant record %q undecodable", r.BroadcastID)
			return nil
		}
		id := r.BroadcastID
		t := Tenant{
			ID:        id,
			Name:      rec.Name,
			Plan:      rec.Plan.plan(),
			Suspended: rec.Suspended,
			CreatedAt: time.Unix(0, rec.CreatedAt),
		}
		if ts, ok := s.tenants[id]; ok {
			// Upsert: keep live count and rollups accumulated so far.
			ts.t = t
		} else {
			s.tenants[id] = &tenantState{t: t, usage: make(map[string]UsageDay)}
		}
		if n, ok := tntSeq(id); ok && n > s.nextTenant {
			s.nextTenant = n
		}
	case journal.RecordCtrlTenantPlan:
		ts, ok := s.tenants[r.BroadcastID]
		if !ok {
			return nil
		}
		var rec ctrlTenantPlanRec
		if json.Unmarshal(r.Payload, &rec) != nil {
			s.logf("control: journal tenant plan record %q undecodable", r.BroadcastID)
			return nil
		}
		ts.t.Plan = rec.Plan.plan()
	case journal.RecordCtrlTenantStatus:
		ts, ok := s.tenants[r.BroadcastID]
		if !ok {
			return nil
		}
		var rec ctrlTenantStatusRec
		if json.Unmarshal(r.Payload, &rec) != nil {
			s.logf("control: journal tenant status record %q undecodable", r.BroadcastID)
			return nil
		}
		ts.t.Suspended = rec.Suspended
	case journal.RecordCtrlKeyIssue:
		var rec ctrlKeyIssueRec
		if json.Unmarshal(r.Payload, &rec) != nil || rec.Tenant == "" {
			s.logf("control: journal key issue record undecodable")
			return nil
		}
		s.keys[r.BroadcastID] = &APIKey{
			Key:      r.BroadcastID,
			TenantID: rec.Tenant,
			IssuedAt: time.Unix(0, rec.IssuedAt),
		}
	case journal.RecordCtrlKeyRevoke:
		if k, ok := s.keys[r.BroadcastID]; ok {
			k.Revoked = true
		}
	case journal.RecordCtrlUsage:
		ts, ok := s.tenants[r.BroadcastID]
		if !ok {
			return nil
		}
		var rec ctrlUsageRec
		if json.Unmarshal(r.Payload, &rec) != nil || rec.Day == "" {
			s.logf("control: journal usage record %q undecodable", r.BroadcastID)
			return nil
		}
		// ASSIGN the absolute totals — never add. Later records for the same
		// day simply carry larger totals, so replaying any prefix of the
		// journal (a torn tail) yields exact counts as of the last durable
		// flush, with no double-counting.
		ts.usage[rec.Day] = UsageDay{
			Day:    rec.Day,
			Frames: rec.Frames,
			Chunks: rec.Chunks,
			Bytes:  rec.Bytes,
		}
	default:
		// Unknown record types are skipped, not fatal: a journal written by
		// a newer binary must not brick an older one's recovery.
		s.logf("control: journal record type %d unknown", r.Type)
	}
	return nil
}

// Crash kills the control plane in place: the journal writer drains
// (everything acknowledged before the crash is durable) and all volatile
// state is dropped. The Service object itself survives, answering
// ErrUnavailable (503 over HTTP) until Recover. Registered OnStart/OnEnd
// callbacks survive too — they are process wiring, not state.
func (s *Service) Crash() {
	if !s.crashed.CompareAndSwap(false, true) {
		return
	}
	s.mu.Lock()
	jw := s.jw
	s.jw = nil
	s.mu.Unlock()
	if jw != nil {
		jw.Close()
	}
	s.mu.Lock()
	s.users = make(map[uint64]User)
	s.broadcasts = make(map[string]*broadcastState)
	s.liveIDs = nil
	s.livePos = make(map[string]int)
	s.nextUser = 0
	s.nextBcast = 0
	// Tenancy state is journaled and wiped like everything else — auth fails
	// closed (ErrUnavailable) until Recover replays tenants and keys. The
	// meters map deliberately survives: those are data-plane accumulators
	// (like the origins' own counters), and delivery metered during the
	// outage must land in the post-Recover rollups, not vanish.
	s.tenants = make(map[string]*tenantState)
	s.keys = make(map[string]*APIKey)
	s.nextTenant = 0
	s.mu.Unlock()
}

// Down reports whether the control plane is crashed — the signal degraded
// clients and the grant cache consult.
func (s *Service) Down() bool { return s.crashed.Load() }

// Close drains the journal writer on clean shutdown, making everything the
// service acknowledged durable. Unlike Crash, state stays intact and the
// service keeps answering; it just stops journaling. Idempotent.
func (s *Service) Close() {
	s.mu.Lock()
	jw := s.jw
	s.jw = nil
	s.mu.Unlock()
	if jw != nil {
		jw.Close()
	}
}

// Recover restarts a crashed control plane: journal replay rebuilds users,
// broadcasts (with their unforgeable tokens), joins, and the live list;
// damaged tails are truncated; then the OnStart callbacks re-fire for every
// still-live broadcast so the platform reopens pubsub channels and topology
// assignments (both idempotent). The wall-clock cost lands in the
// control_recovery_seconds histogram. No-op on a healthy service.
func (s *Service) Recover() {
	if !s.crashed.Load() {
		return
	}
	start := s.clock.Now()
	s.mu.Lock()
	s.openJournalLocked()
	type liveRef struct{ id, origin string }
	var live []liveRef
	for id, st := range s.broadcasts {
		if !st.ended {
			live = append(live, liveRef{id: id, origin: st.originID})
		}
	}
	sort.Slice(live, func(i, j int) bool { return live[i].id < live[j].id })
	callbacks := make([]func(broadcastID, originID string), len(s.onStart))
	copy(callbacks, s.onStart)
	s.mu.Unlock()
	s.crashed.Store(false)
	for _, b := range live {
		for _, fn := range callbacks {
			fn(b.id, b.origin)
		}
	}
	s.m.recovery.Observe(s.clock.Now().Sub(start))
}
