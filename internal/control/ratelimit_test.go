package control

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/testutil"
)

func TestRateLimiterBurstThenThrottle(t *testing.T) {
	vc := clock.NewVirtual(time.Time{})
	rl := NewRateLimiter(RateLimiterConfig{RequestsPerSecond: 2, Burst: 3, Clock: vc})
	for i := 0; i < 3; i++ {
		if !rl.Allow("1.2.3.4") {
			t.Fatalf("burst request %d denied", i)
		}
	}
	if rl.Allow("1.2.3.4") {
		t.Fatal("request beyond burst allowed")
	}
	// Half a second refills one token at 2 rps.
	vc.Advance(500 * time.Millisecond)
	if !rl.Allow("1.2.3.4") {
		t.Fatal("refilled token denied")
	}
	if rl.Allow("1.2.3.4") {
		t.Fatal("second token appeared from nowhere")
	}
}

func TestRateLimiterPerClientIsolation(t *testing.T) {
	vc := clock.NewVirtual(time.Time{})
	rl := NewRateLimiter(RateLimiterConfig{RequestsPerSecond: 1, Burst: 1, Clock: vc})
	if !rl.Allow("a") || rl.Allow("a") {
		t.Fatal("client a bucket broken")
	}
	if !rl.Allow("b") {
		t.Fatal("client b throttled by client a")
	}
}

func TestRateLimiterWhitelist(t *testing.T) {
	vc := clock.NewVirtual(time.Time{})
	rl := NewRateLimiter(RateLimiterConfig{
		RequestsPerSecond: 1, Burst: 1, Clock: vc,
		Whitelist: []string{"10.0.0.9"},
	})
	// The paper's whitelisted crawler range: unlimited.
	for i := 0; i < 100; i++ {
		if !rl.Allow("10.0.0.9") {
			t.Fatalf("whitelisted client throttled at request %d", i)
		}
	}
}

func TestRateLimiterTokensCapAtBurst(t *testing.T) {
	vc := clock.NewVirtual(time.Time{})
	rl := NewRateLimiter(RateLimiterConfig{RequestsPerSecond: 100, Burst: 2, Clock: vc})
	rl.Allow("c")
	vc.Advance(time.Hour) // would refill millions without the cap
	for i := 0; i < 2; i++ {
		if !rl.Allow("c") {
			t.Fatalf("token %d denied after refill", i)
		}
	}
	if rl.Allow("c") {
		t.Fatal("bucket exceeded burst cap")
	}
}

func TestRateLimiterSweep(t *testing.T) {
	vc := clock.NewVirtual(time.Time{})
	rl := NewRateLimiter(RateLimiterConfig{Clock: vc})
	rl.Allow("old")
	vc.Advance(2 * time.Hour)
	rl.Allow("fresh")
	if n := rl.Sweep(time.Hour); n != 1 {
		t.Fatalf("swept %d buckets, want 1", n)
	}
}

func TestRateLimiterHTTPMiddleware(t *testing.T) {
	testutil.CheckGoroutines(t)
	rl := NewRateLimiter(RateLimiterConfig{RequestsPerSecond: 0.001, Burst: 2})
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	srv := httptest.NewServer(rl.Wrap(inner))
	defer srv.Close()
	codes := []int{}
	for i := 0; i < 4; i++ {
		resp, err := http.Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		codes = append(codes, resp.StatusCode)
	}
	if codes[0] != 200 || codes[1] != 200 {
		t.Fatalf("burst requests rejected: %v", codes)
	}
	if codes[2] != http.StatusTooManyRequests || codes[3] != http.StatusTooManyRequests {
		t.Fatalf("over-limit requests not throttled: %v", codes)
	}
}
