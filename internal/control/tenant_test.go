package control

import (
	"errors"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/geo"
	"repro/internal/journal"
	"repro/internal/metrics"
)

// newTenantService builds a journaled service on a virtual clock so the
// rate-limiter refills, quota windows, and usage-day keys are all driven by
// the test.
func newTenantService(backend journal.Backend, clk clock.Clock) *Service {
	return NewService(Config{
		Routes: Routes{
			AssignOrigin: func(loc geo.Location) (string, string) {
				return "origin-1", "127.0.0.1:1935"
			},
			RTMPSAddr: func(originID string) string { return "127.0.0.1:19350" },
			AssignEdge: func(id string, loc geo.Location) string {
				return "http://edge-1/hls"
			},
			MessageURL: "http://msg/channel",
		},
		RTMPViewerLimit: 100,
		Seed:            1,
		Journal:         backend,
		Clock:           clk,
		Metrics:         metrics.NewRegistry(),
	})
}

func TestTenantCRUDAndKeys(t *testing.T) {
	s := newTenantService(journal.NewMem(), nil)
	a, err := s.CreateTenant("acme", Plan{Name: "pro"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.CreateTenant("blip", Plan{Name: "free"})
	if err != nil {
		t.Fatal(err)
	}
	if a.ID == b.ID || a.ID != "tnt-1" || b.ID != "tnt-2" {
		t.Fatalf("tenant IDs = %q, %q", a.ID, b.ID)
	}
	if got, err := s.TenantInfo(a.ID); err != nil || got.Name != "acme" {
		t.Fatalf("TenantInfo = %+v, err %v", got, err)
	}
	if _, err := s.TenantInfo("tnt-404"); !errors.Is(err, ErrNoTenant) {
		t.Fatalf("missing tenant: err = %v", err)
	}
	if all := s.Tenants(); len(all) != 2 || all[0].ID != "tnt-1" || all[1].ID != "tnt-2" {
		t.Fatalf("Tenants() = %+v", all)
	}

	k, err := s.IssueAPIKey(a.ID)
	if err != nil {
		t.Fatal(err)
	}
	if k.TenantID != a.ID || len(k.Key) < 10 {
		t.Fatalf("key = %+v", k)
	}
	if _, err := s.IssueAPIKey("tnt-404"); !errors.Is(err, ErrNoTenant) {
		t.Fatalf("key for missing tenant: err = %v", err)
	}

	u := s.Register("streamer")
	if _, err := s.StartBroadcastKey("key-forged", u.ID, geo.Location{}); !errors.Is(err, ErrBadAPIKey) {
		t.Fatalf("forged key: err = %v", err)
	}
	grant, err := s.StartBroadcastKey(k.Key, u.ID, geo.Location{City: "NYC"})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.TenantOf(grant.BroadcastID); got != a.ID {
		t.Fatalf("TenantOf = %q, want %q", got, a.ID)
	}

	// Revocation turns the key off for every later call.
	if err := s.RevokeAPIKey(k.Key); err != nil {
		t.Fatal(err)
	}
	if _, err := s.StartBroadcastKey(k.Key, u.ID, geo.Location{}); !errors.Is(err, ErrKeyRevoked) {
		t.Fatalf("revoked key: err = %v", err)
	}
	if err := s.RevokeAPIKey("key-nope"); !errors.Is(err, ErrBadAPIKey) {
		t.Fatalf("revoking unknown key: err = %v", err)
	}

	// Suspension blocks even valid keys, resume lifts it.
	k2, err := s.IssueAPIKey(a.ID)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SuspendTenant(a.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := s.JoinKey(k2.Key, u.ID, grant.BroadcastID, geo.Location{}); !errors.Is(err, ErrTenantSuspended) {
		t.Fatalf("suspended tenant join: err = %v", err)
	}
	if err := s.ResumeTenant(a.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := s.JoinKey(k2.Key, u.ID, grant.BroadcastID, geo.Location{}); err != nil {
		t.Fatalf("resumed tenant join: %v", err)
	}
}

func TestTenantConcurrentBroadcastCap(t *testing.T) {
	s := newTenantService(journal.NewMem(), nil)
	tn, _ := s.CreateTenant("capped", Plan{MaxConcurrentBroadcasts: 2})
	k, _ := s.IssueAPIKey(tn.ID)
	u := s.Register("streamer")

	g1, err := s.StartBroadcastKey(k.Key, u.ID, geo.Location{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.StartBroadcastKey(k.Key, u.ID, geo.Location{}); err != nil {
		t.Fatal(err)
	}
	_, err = s.StartBroadcastKey(k.Key, u.ID, geo.Location{})
	var qe *QuotaError
	if !errors.As(err, &qe) || !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("third start: err = %v, want QuotaError", err)
	}
	// Ending one frees a slot.
	if err := s.EndBroadcast(g1.BroadcastID, g1.Token); err != nil {
		t.Fatal(err)
	}
	if _, err := s.StartBroadcastKey(k.Key, u.ID, geo.Location{}); err != nil {
		t.Fatalf("start after end: %v", err)
	}
}

func TestTenantJoinRateLimit(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(1_700_000_000, 0))
	s := newTenantService(journal.NewMem(), clk)
	tn, _ := s.CreateTenant("rated", Plan{MaxJoinRPS: 1, JoinBurst: 2})
	k, _ := s.IssueAPIKey(tn.ID)
	u := s.Register("streamer")
	grant, err := s.StartBroadcastKey(k.Key, u.ID, geo.Location{})
	if err != nil {
		t.Fatal(err)
	}

	// Bucket depth 2: two joins pass, the third is throttled.
	for i := 0; i < 2; i++ {
		if _, err := s.JoinKey(k.Key, uint64(100+i), grant.BroadcastID, geo.Location{}); err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
	}
	_, err = s.JoinKey(k.Key, 200, grant.BroadcastID, geo.Location{})
	var qe *QuotaError
	if !errors.As(err, &qe) {
		t.Fatalf("throttled join: err = %v, want QuotaError", err)
	}
	if qe.RetryAfter < time.Second {
		t.Fatalf("RetryAfter = %v, want >= 1s", qe.RetryAfter)
	}

	// One second of virtual time earns one token back.
	clk.Advance(time.Second)
	if _, err := s.JoinKey(k.Key, 201, grant.BroadcastID, geo.Location{}); err != nil {
		t.Fatalf("join after refill: %v", err)
	}
	if _, err := s.JoinKey(k.Key, 202, grant.BroadcastID, geo.Location{}); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("second join after single refill: err = %v", err)
	}

	// An unlimited-plan tenant is never throttled.
	free, _ := s.CreateTenant("unlimited", Plan{})
	kf, _ := s.IssueAPIKey(free.ID)
	for i := 0; i < 50; i++ {
		if _, err := s.JoinKey(kf.Key, uint64(300+i), grant.BroadcastID, geo.Location{}); err != nil {
			t.Fatalf("unlimited join %d: %v", i, err)
		}
	}
}

func TestTenantQuotaAdmission(t *testing.T) {
	clk := clock.NewVirtual(time.Date(2026, 3, 1, 12, 0, 0, 0, time.UTC))
	s := newTenantService(journal.NewMem(), clk)
	tn, _ := s.CreateTenant("metered", Plan{DailyBytesQuota: 1000})
	k, _ := s.IssueAPIKey(tn.ID)
	u := s.Register("streamer")
	grant, err := s.StartBroadcastKey(k.Key, u.ID, geo.Location{})
	if err != nil {
		t.Fatal(err)
	}

	m := s.Meter(grant.BroadcastID)
	if m == nil {
		t.Fatal("Meter returned nil for tenanted broadcast")
	}
	// Under quota: join admitted.
	m.MeterFrames(10, 400)
	if _, err := s.JoinKey(k.Key, 100, grant.BroadcastID, geo.Location{}); err != nil {
		t.Fatalf("under-quota join: %v", err)
	}
	// Pending (unflushed) meter bytes count toward the quota too.
	m.MeterChunks(5, 600)
	_, err = s.JoinKey(k.Key, 101, grant.BroadcastID, geo.Location{})
	var qe *QuotaError
	if !errors.As(err, &qe) {
		t.Fatalf("over-quota join (pending bytes): err = %v, want QuotaError", err)
	}
	if qe.RetryAfter < time.Second || qe.RetryAfter > time.Hour {
		t.Fatalf("quota RetryAfter = %v, want within [1s, 1h]", qe.RetryAfter)
	}

	// Flushing moves the bytes into the day rollup; still over quota.
	if n := s.FlushUsage(); n != 1 {
		t.Fatalf("FlushUsage = %d, want 1", n)
	}
	if _, err := s.JoinKey(k.Key, 102, grant.BroadcastID, geo.Location{}); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("over-quota join (flushed bytes): err = %v", err)
	}
	days, err := s.Usage(tn.ID)
	if err != nil || len(days) != 1 {
		t.Fatalf("Usage = %+v, err %v", days, err)
	}
	if d := days[0]; d.Day != "2026-03-01" || d.Frames != 10 || d.Chunks != 5 || d.Bytes != 1000 {
		t.Fatalf("rollup = %+v", d)
	}

	// The next UTC day opens a fresh window.
	clk.Advance(13 * time.Hour)
	if _, err := s.JoinKey(k.Key, 103, grant.BroadcastID, geo.Location{}); err != nil {
		t.Fatalf("next-day join: %v", err)
	}

	// ResolveEdge enforces the same quota for viewers refreshing playlists.
	m.MeterChunks(2, 2000)
	if _, err := s.ResolveEdge(grant.BroadcastID, geo.Location{}); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("over-quota ResolveEdge: err = %v", err)
	}
}

// TestTenantCrashRecover: the whole tenancy surface — tenants, plans, keys,
// revocations, suspensions, usage rollups, live counts — fails closed during
// an outage and is rebuilt by replay.
func TestTenantCrashRecover(t *testing.T) {
	clk := clock.NewVirtual(time.Date(2026, 3, 1, 8, 0, 0, 0, time.UTC))
	backend := journal.NewMem()
	s := newTenantService(backend, clk)

	tn, _ := s.CreateTenant("acme", Plan{Name: "free", MaxConcurrentBroadcasts: 3})
	s.SetTenantPlan(tn.ID, Plan{Name: "pro", MaxConcurrentBroadcasts: 1, DailyBytesQuota: 5000})
	other, _ := s.CreateTenant("bystander", Plan{})
	s.SuspendTenant(other.ID)
	k, _ := s.IssueAPIKey(tn.ID)
	dead, _ := s.IssueAPIKey(tn.ID)
	s.RevokeAPIKey(dead.Key)

	u := s.Register("streamer")
	grant, err := s.StartBroadcastKey(k.Key, u.ID, geo.Location{})
	if err != nil {
		t.Fatal(err)
	}
	s.Meter(grant.BroadcastID).MeterFrames(7, 700)
	if s.FlushUsage() != 1 {
		t.Fatal("flush before crash")
	}

	s.Crash()
	// Fail closed: every tenancy entry point answers ErrUnavailable.
	if _, err := s.CreateTenant("x", Plan{}); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("CreateTenant while crashed: %v", err)
	}
	if _, err := s.TenantInfo(tn.ID); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("TenantInfo while crashed: %v", err)
	}
	if _, err := s.IssueAPIKey(tn.ID); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("IssueAPIKey while crashed: %v", err)
	}
	if _, err := s.StartBroadcastKey(k.Key, u.ID, geo.Location{}); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("StartBroadcastKey while crashed: %v", err)
	}
	if _, err := s.JoinKey(k.Key, 1, grant.BroadcastID, geo.Location{}); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("JoinKey while crashed: %v", err)
	}
	if _, err := s.Usage(tn.ID); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("Usage while crashed: %v", err)
	}
	if s.FlushUsage() != 0 {
		t.Fatal("FlushUsage journaled while crashed")
	}
	// Meters keep accumulating through the outage.
	outageMeter := s.meters[tn.ID]
	if outageMeter == nil {
		t.Fatal("meter wiped by Crash")
	}
	outageMeter.MeterChunks(3, 300)

	s.Recover()
	got, err := s.TenantInfo(tn.ID)
	if err != nil || got.Plan.Name != "pro" || got.Plan.DailyBytesQuota != 5000 {
		t.Fatalf("recovered tenant = %+v, err %v", got, err)
	}
	if o, _ := s.TenantInfo(other.ID); !o.Suspended {
		t.Fatal("suspension lost across recovery")
	}
	// Live count survived: plan caps at 1 and the recovered broadcast holds it.
	if _, err := s.StartBroadcastKey(k.Key, u.ID, geo.Location{}); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("cap ignored recovered live broadcast: err = %v", err)
	}
	// Revocation survived.
	if _, err := s.StartBroadcastKey(dead.Key, u.ID, geo.Location{}); !errors.Is(err, ErrKeyRevoked) {
		t.Fatalf("revoked key after recovery: err = %v", err)
	}
	// Usage rollups survived, and the outage-time metering lands on the
	// next flush.
	days, _ := s.Usage(tn.ID)
	if len(days) != 1 || days[0].Bytes != 700 {
		t.Fatalf("recovered usage = %+v", days)
	}
	if s.FlushUsage() != 1 {
		t.Fatal("post-recover flush missed outage metering")
	}
	days, _ = s.Usage(tn.ID)
	if len(days) != 1 || days[0].Bytes != 1000 || days[0].Chunks != 3 {
		t.Fatalf("post-recover usage = %+v", days)
	}
	// Broadcast→tenant attribution recovered too.
	if got := s.TenantOf(grant.BroadcastID); got != tn.ID {
		t.Fatalf("TenantOf after recovery = %q", got)
	}

	// The harder restart: a fresh Service over the same backend sees it all,
	// and the tenant ID counter resumes past journaled IDs.
	s.Crash()
	s2 := newTenantService(backend, clk)
	if got, err := s2.TenantInfo(tn.ID); err != nil || got.Plan.Name != "pro" {
		t.Fatalf("restarted tenant = %+v, err %v", got, err)
	}
	days, _ = s2.Usage(tn.ID)
	if len(days) != 1 || days[0].Bytes != 1000 {
		t.Fatalf("restarted usage = %+v", days)
	}
	t3, err := s2.CreateTenant("fresh", Plan{})
	if err != nil {
		t.Fatal(err)
	}
	if t3.ID == tn.ID || t3.ID == other.ID {
		t.Fatalf("tenant ID %q reused after restart", t3.ID)
	}
}

func TestKeyedLimiterSweep(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	l := NewKeyedLimiter(clk)
	if !l.Allow("a", 1, 1) || !l.Allow("b", 1, 1) {
		t.Fatal("fresh buckets should admit")
	}
	clk.Advance(time.Minute)
	if !l.Allow("b", 1, 1) {
		t.Fatal("refilled bucket should admit")
	}
	// "a" has been idle a minute, "b" was just touched.
	if n := l.Sweep(30 * time.Second); n != 1 {
		t.Fatalf("Sweep = %d, want 1", n)
	}
	if n := l.Sweep(30 * time.Second); n != 0 {
		t.Fatalf("second Sweep = %d, want 0", n)
	}
}

// TestKeyedLimiterPlanChange: rates are passed per call, so a plan downgrade
// applies to the very next request — the bucket clamps to the new burst.
func TestKeyedLimiterPlanChange(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	l := NewKeyedLimiter(clk)
	for i := 0; i < 10; i++ {
		if !l.Allow("t", 100, 10) {
			t.Fatalf("burst-10 request %d refused", i)
		}
	}
	clk.Advance(time.Hour) // bucket refills to old burst…
	if !l.Allow("t", 1, 1) {
		t.Fatal("first request under downgraded plan refused")
	}
	if l.Allow("t", 1, 1) {
		t.Fatal("downgraded burst did not clamp: second request admitted")
	}
}
