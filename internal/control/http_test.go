package control

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/geo"
	"repro/internal/journal"
)

// newHTTPTenantFixture builds a service + handler + key-bearing client with
// one tenant and one tenanted broadcast.
func newHTTPTenantFixture(t *testing.T, clk clock.Clock, plan Plan) (*Service, *httptest.Server, *Client, Tenant, BroadcastGrant) {
	t.Helper()
	s := newTenantService(journal.NewMem(), clk)
	tn, err := s.CreateTenant("acme", plan)
	if err != nil {
		t.Fatal(err)
	}
	k, err := s.IssueAPIKey(tn.ID)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler("/api", s))
	t.Cleanup(srv.Close)
	c := &Client{BaseURL: srv.URL + "/api", APIKey: k.Key}
	u := s.Register("streamer")
	grant, err := s.StartBroadcastKey(k.Key, u.ID, geo.Location{City: "NYC"})
	if err != nil {
		t.Fatal(err)
	}
	return s, srv, c, tn, grant
}

// rawStatus posts a request with an explicit key and returns status + error
// code header, for asserting exact wire-level behavior.
func rawStatus(t *testing.T, url, key, body string) (int, string, http.Header) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if key != "" {
		req.Header.Set(apiKeyHeader, key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	return resp.StatusCode, resp.Header.Get(errCodeHeader), resp.Header
}

// TestHTTPAuthStatusPaths pins each tenancy failure to its status code and
// X-Control-Error code, and checks the client reconstructs the sentinel error.
func TestHTTPAuthStatusPaths(t *testing.T) {
	s, srv, c, tn, grant := newHTTPTenantFixture(t, nil, Plan{})
	ctx := context.Background()
	joinBody := `{"user_id": 7}`
	joinURL := srv.URL + "/api/broadcasts/" + grant.BroadcastID + "/join"

	// 401 bad_api_key: unknown key.
	if code, ec, _ := rawStatus(t, joinURL, "key-forged", joinBody); code != http.StatusUnauthorized || ec != "bad_api_key" {
		t.Fatalf("bad key: status %d, code %q", code, ec)
	}
	bad := &Client{BaseURL: c.BaseURL, APIKey: "key-forged"}
	if _, err := bad.Join(ctx, 7, grant.BroadcastID, geo.Location{}); !errors.Is(err, ErrBadAPIKey) {
		t.Fatalf("bad key via client: err = %v", err)
	}

	// 403 key_revoked.
	revoked, _ := s.IssueAPIKey(tn.ID)
	if err := s.RevokeAPIKey(revoked.Key); err != nil {
		t.Fatal(err)
	}
	if code, ec, _ := rawStatus(t, joinURL, revoked.Key, joinBody); code != http.StatusForbidden || ec != "key_revoked" {
		t.Fatalf("revoked key: status %d, code %q", code, ec)
	}
	rc := &Client{BaseURL: c.BaseURL, APIKey: revoked.Key}
	if _, err := rc.Join(ctx, 7, grant.BroadcastID, geo.Location{}); !errors.Is(err, ErrKeyRevoked) {
		t.Fatalf("revoked key via client: err = %v", err)
	}

	// 403 tenant_suspended.
	if err := s.SuspendTenant(tn.ID); err != nil {
		t.Fatal(err)
	}
	if code, ec, _ := rawStatus(t, joinURL, c.APIKey, joinBody); code != http.StatusForbidden || ec != "tenant_suspended" {
		t.Fatalf("suspended: status %d, code %q", code, ec)
	}
	if _, err := c.Join(ctx, 7, grant.BroadcastID, geo.Location{}); !errors.Is(err, ErrTenantSuspended) {
		t.Fatalf("suspended via client: err = %v", err)
	}
	if err := s.ResumeTenant(tn.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Join(ctx, 7, grant.BroadcastID, geo.Location{}); err != nil {
		t.Fatalf("resumed join: %v", err)
	}

	// 404 no_tenant on the admin surface.
	if _, err := c.Usage(ctx, "tnt-404"); !errors.Is(err, ErrNoTenant) {
		t.Fatalf("usage for missing tenant: err = %v", err)
	}
	if _, err := c.IssueAPIKey(ctx, "tnt-404"); !errors.Is(err, ErrNoTenant) {
		t.Fatalf("key for missing tenant: err = %v", err)
	}

	// 400: a key on a private start is a contradiction.
	code, _, _ := rawStatus(t, srv.URL+"/api/broadcasts", c.APIKey, `{"user_id": 1, "private": true}`)
	if code != http.StatusBadRequest {
		t.Fatalf("key+private start: status %d, want 400", code)
	}
}

// TestHTTPQuota429 pins the 429 path: Retry-After carries the server-computed
// wait and the client reconstructs a QuotaError whose hint FailoverPoller can
// honor.
func TestHTTPQuota429(t *testing.T) {
	clk := clock.NewVirtual(time.Date(2026, 3, 1, 23, 59, 0, 0, time.UTC))
	s, srv, c, tn, grant := newHTTPTenantFixture(t, clk, Plan{DailyBytesQuota: 100})
	ctx := context.Background()
	s.Meter(grant.BroadcastID).MeterChunks(1, 100)

	code, ec, hdr := rawStatus(t, srv.URL+"/api/broadcasts/"+grant.BroadcastID+"/join", c.APIKey, `{"user_id": 9}`)
	if code != http.StatusTooManyRequests || ec != "quota" {
		t.Fatalf("quota join: status %d, code %q", code, ec)
	}
	// 60s to the UTC day boundary → Retry-After: 60.
	if ra, err := strconv.Atoi(hdr.Get("Retry-After")); err != nil || ra != 60 {
		t.Fatalf("Retry-After = %q, want 60", hdr.Get("Retry-After"))
	}

	_, err := c.Join(ctx, 9, grant.BroadcastID, geo.Location{})
	var qe *QuotaError
	if !errors.As(err, &qe) || !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("client quota err = %v, want QuotaError", err)
	}
	if qe.RetryAfterHint() != 60*time.Second {
		t.Fatalf("client RetryAfterHint = %v, want 60s", qe.RetryAfterHint())
	}

	// The concurrent-broadcast cap answers on the same path.
	if err := s.SetTenantPlan(tn.ID, Plan{MaxConcurrentBroadcasts: 1}); err != nil {
		t.Fatal(err)
	}
	code, ec, _ = rawStatus(t, srv.URL+"/api/broadcasts", c.APIKey, `{"user_id": 1}`)
	if code != http.StatusTooManyRequests || ec != "quota" {
		t.Fatalf("capped start: status %d, code %q", code, ec)
	}
}

// TestHTTPTenantAdminRoundTrip drives the whole admin surface through the
// client: create, key issue, key-authed start, usage, suspend/resume, revoke.
func TestHTTPTenantAdminRoundTrip(t *testing.T) {
	s := newTenantService(journal.NewMem(), nil)
	srv := httptest.NewServer(Handler("/api", s))
	defer srv.Close()
	admin := &Client{BaseURL: srv.URL + "/api"}
	ctx := context.Background()

	tn, err := admin.CreateTenant(ctx, "acme", Plan{Name: "pro", MaxJoinRPS: 50, DailyBytesQuota: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	if tn.ID == "" || tn.Plan.Name != "pro" || tn.Plan.DailyBytesQuota != 1<<30 {
		t.Fatalf("created tenant = %+v", tn)
	}
	key, err := admin.IssueAPIKey(ctx, tn.ID)
	if err != nil {
		t.Fatal(err)
	}

	app := &Client{BaseURL: admin.BaseURL, APIKey: key}
	uid, err := app.Register(ctx, "streamer")
	if err != nil {
		t.Fatal(err)
	}
	grant, err := app.StartBroadcast(ctx, uid, geo.Location{City: "NYC"})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.TenantOf(grant.BroadcastID); got != tn.ID {
		t.Fatalf("key-authed start not attributed: TenantOf = %q", got)
	}

	// Usage: empty before any flush, populated after metering + flush.
	days, err := admin.Usage(ctx, tn.ID)
	if err != nil || len(days) != 0 {
		t.Fatalf("fresh usage = %+v, err %v", days, err)
	}
	s.Meter(grant.BroadcastID).MeterFrames(3, 333)
	s.FlushUsage()
	days, err = admin.Usage(ctx, tn.ID)
	if err != nil || len(days) != 1 || days[0].Bytes != 333 || days[0].Frames != 3 {
		t.Fatalf("flushed usage = %+v, err %v", days, err)
	}

	if err := admin.SuspendTenant(ctx, tn.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := app.Join(ctx, uid, grant.BroadcastID, geo.Location{}); !errors.Is(err, ErrTenantSuspended) {
		t.Fatalf("join while suspended: err = %v", err)
	}
	if err := admin.ResumeTenant(ctx, tn.ID); err != nil {
		t.Fatal(err)
	}
	if err := admin.RevokeAPIKey(ctx, key); err != nil {
		t.Fatal(err)
	}
	if _, err := app.Join(ctx, uid, grant.BroadcastID, geo.Location{}); !errors.Is(err, ErrKeyRevoked) {
		t.Fatalf("join with revoked key: err = %v", err)
	}
}

// TestHTTPUsageBadRequest: /usage without a tenant parameter is a 400, not a
// panic or an empty 200.
func TestHTTPUsageBadRequest(t *testing.T) {
	s := newTenantService(journal.NewMem(), nil)
	srv := httptest.NewServer(Handler("/api", s))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/api/usage")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("usage without tenant: status %d, want 400", resp.StatusCode)
	}
}

// TestHTTPKeyAuthUnavailable: a crashed control plane answers 503 to
// key-authenticated calls — fail closed, never a tenancy verdict derived from
// wiped state.
func TestHTTPKeyAuthUnavailable(t *testing.T) {
	s, srv, c, _, grant := newHTTPTenantFixture(t, nil, Plan{})
	s.Crash()
	code, ec, hdr := rawStatus(t, srv.URL+"/api/broadcasts/"+grant.BroadcastID+"/join", c.APIKey, `{"user_id": 5}`)
	if code != http.StatusServiceUnavailable || ec != "unavailable" {
		t.Fatalf("crashed join: status %d, code %q", code, ec)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	if _, err := c.Join(context.Background(), 5, grant.BroadcastID, geo.Location{}); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("crashed join via client: err = %v", err)
	}
}
