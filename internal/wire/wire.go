// Package wire defines the message framing of the RTMP-like protocol: a
// one-byte type, a big-endian length, and an opaque body. Faithful to the
// weakness the paper exploits in §7, the protocol is unencrypted and — until
// the signature defense is enabled — unauthenticated beyond the plaintext
// broadcast token sent at handshake time.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// MsgType identifies a protocol message.
type MsgType uint8

// Protocol messages.
const (
	// MsgHandshake opens a session; body is a Handshake.
	MsgHandshake MsgType = iota + 1
	// MsgHandshakeAck answers a handshake; body is an Ack.
	MsgHandshakeAck
	// MsgFrame carries one media.Frame (media wire form).
	MsgFrame
	// MsgSignedFrame carries a frame plus an Ed25519 signature:
	// [frameLen uint32][frame][sig 64B] (§7.2 defense).
	MsgSignedFrame
	// MsgEnd announces the end of a broadcast; empty body.
	MsgEnd
)

// Roles in a handshake.
const (
	RoleBroadcaster = "broadcaster"
	RoleViewer      = "viewer"
)

// Ack status codes.
const (
	StatusOK        = "ok"
	StatusBadToken  = "bad-token"
	StatusFull      = "full" // RTMP viewer cap reached: fall back to HLS
	StatusNotFound  = "not-found"
	StatusDuplicate = "duplicate-broadcaster"
)

// MaxBody bounds message bodies against malicious length prefixes.
const MaxBody = 32 << 20

// ErrBodyTooLarge reports a length prefix above MaxBody.
var ErrBodyTooLarge = errors.New("wire: message body exceeds limit")

// Handshake is the session-opening message. Token is sent in plaintext —
// the §7.1 vulnerability.
type Handshake struct {
	Role        string
	BroadcastID string
	Token       string
	// BufferMs is the stream buffer the viewer requests; the paper's
	// crawler sets 0 so every frame is pushed immediately (§4.3).
	BufferMs uint32
}

// Ack is the server's handshake reply.
type Ack struct {
	Status  string
	Message string
}

// Message is one framed protocol unit.
type Message struct {
	Type MsgType
	Body []byte
}

// WriteMessage frames and writes a message.
func WriteMessage(w io.Writer, m Message) error {
	if len(m.Body) > MaxBody {
		return ErrBodyTooLarge
	}
	hdr := make([]byte, 5, 5+len(m.Body))
	hdr[0] = byte(m.Type)
	binary.BigEndian.PutUint32(hdr[1:5], uint32(len(m.Body)))
	if _, err := w.Write(append(hdr, m.Body...)); err != nil {
		return fmt.Errorf("wire: write: %w", err)
	}
	return nil
}

// ReadMessage reads one framed message.
func ReadMessage(r io.Reader) (Message, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Message{}, err
	}
	n := binary.BigEndian.Uint32(hdr[1:5])
	if n > MaxBody {
		return Message{}, ErrBodyTooLarge
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return Message{}, fmt.Errorf("wire: read body: %w", err)
	}
	return Message{Type: MsgType(hdr[0]), Body: body}, nil
}

// appendString appends a length-prefixed string.
func appendString(dst []byte, s string) []byte {
	var l [2]byte
	binary.BigEndian.PutUint16(l[:], uint16(len(s)))
	dst = append(dst, l[:]...)
	return append(dst, s...)
}

// readString consumes a length-prefixed string.
func readString(data []byte) (string, []byte, error) {
	if len(data) < 2 {
		return "", nil, errors.New("wire: short string length")
	}
	n := int(binary.BigEndian.Uint16(data))
	if len(data) < 2+n {
		return "", nil, errors.New("wire: short string body")
	}
	return string(data[2 : 2+n]), data[2+n:], nil
}

// MarshalHandshake encodes a Handshake body.
func MarshalHandshake(h Handshake) []byte {
	buf := appendString(nil, h.Role)
	buf = appendString(buf, h.BroadcastID)
	buf = appendString(buf, h.Token)
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], h.BufferMs)
	return append(buf, b[:]...)
}

// UnmarshalHandshake decodes a Handshake body.
func UnmarshalHandshake(data []byte) (Handshake, error) {
	var h Handshake
	var err error
	if h.Role, data, err = readString(data); err != nil {
		return h, fmt.Errorf("wire: handshake role: %w", err)
	}
	if h.BroadcastID, data, err = readString(data); err != nil {
		return h, fmt.Errorf("wire: handshake broadcast: %w", err)
	}
	if h.Token, data, err = readString(data); err != nil {
		return h, fmt.Errorf("wire: handshake token: %w", err)
	}
	if len(data) < 4 {
		return h, errors.New("wire: handshake missing buffer")
	}
	h.BufferMs = binary.BigEndian.Uint32(data)
	return h, nil
}

// MarshalAck encodes an Ack body.
func MarshalAck(a Ack) []byte {
	buf := appendString(nil, a.Status)
	return appendString(buf, a.Message)
}

// UnmarshalAck decodes an Ack body.
func UnmarshalAck(data []byte) (Ack, error) {
	var a Ack
	var err error
	if a.Status, data, err = readString(data); err != nil {
		return a, fmt.Errorf("wire: ack status: %w", err)
	}
	if a.Message, _, err = readString(data); err != nil {
		return a, fmt.Errorf("wire: ack message: %w", err)
	}
	return a, nil
}

// SignatureSize is the Ed25519 signature length used by MsgSignedFrame.
const SignatureSize = 64

// MarshalSignedFrame encodes [frameLen][frameBytes][sig].
func MarshalSignedFrame(frameBytes, sig []byte) ([]byte, error) {
	if len(sig) != SignatureSize {
		return nil, fmt.Errorf("wire: signature length %d, want %d", len(sig), SignatureSize)
	}
	buf := make([]byte, 4, 4+len(frameBytes)+SignatureSize)
	binary.BigEndian.PutUint32(buf, uint32(len(frameBytes)))
	buf = append(buf, frameBytes...)
	return append(buf, sig...), nil
}

// UnmarshalSignedFrame decodes a signed-frame body into frame bytes and
// signature.
func UnmarshalSignedFrame(data []byte) (frameBytes, sig []byte, err error) {
	if len(data) < 4 {
		return nil, nil, errors.New("wire: short signed frame")
	}
	n := binary.BigEndian.Uint32(data)
	if uint64(len(data)) < 4+uint64(n)+SignatureSize {
		return nil, nil, errors.New("wire: truncated signed frame")
	}
	frameBytes = data[4 : 4+n]
	sig = data[4+n : 4+n+SignatureSize]
	return frameBytes, sig, nil
}
