// Package wire defines the message framing of the RTMP-like protocol: a
// one-byte type, a big-endian length, and an opaque body. Faithful to the
// weakness the paper exploits in §7, the protocol is unencrypted and — until
// the signature defense is enabled — unauthenticated beyond the plaintext
// broadcast token sent at handshake time.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
)

// MsgType identifies a protocol message.
type MsgType uint8

// Protocol messages.
const (
	// MsgHandshake opens a session; body is a Handshake.
	MsgHandshake MsgType = iota + 1
	// MsgHandshakeAck answers a handshake; body is an Ack.
	MsgHandshakeAck
	// MsgFrame carries one media.Frame (media wire form).
	MsgFrame
	// MsgSignedFrame carries a frame plus an Ed25519 signature:
	// [frameLen uint32][frame][sig 64B] (§7.2 defense).
	MsgSignedFrame
	// MsgEnd announces the end of a broadcast; empty body.
	MsgEnd
)

// Roles in a handshake.
const (
	RoleBroadcaster = "broadcaster"
	RoleViewer      = "viewer"
)

// Ack status codes.
const (
	StatusOK        = "ok"
	StatusBadToken  = "bad-token"
	StatusFull      = "full" // RTMP viewer cap reached: fall back to HLS
	StatusNotFound  = "not-found"
	StatusDuplicate = "duplicate-broadcaster"
	// StatusUnavailable is a retryable refusal: the broadcast is expected
	// back shortly (its origin just restarted and the publisher has not
	// reconnected yet), so clients should back off and redial rather than
	// treat the stream as gone.
	StatusUnavailable = "unavailable"
)

// MaxBody bounds message bodies against malicious length prefixes.
const MaxBody = 32 << 20

// ErrBodyTooLarge reports a length prefix above MaxBody.
var ErrBodyTooLarge = errors.New("wire: message body exceeds limit")

// Handshake is the session-opening message. Token is sent in plaintext —
// the §7.1 vulnerability.
type Handshake struct {
	Role        string
	BroadcastID string
	Token       string
	// BufferMs is the stream buffer the viewer requests; the paper's
	// crawler sets 0 so every frame is pushed immediately (§4.3).
	BufferMs uint32
}

// Ack is the server's handshake reply.
type Ack struct {
	Status  string
	Message string
	// ResumeSeq is the next frame sequence the server expects from a
	// broadcaster — nonzero when a recovered origin tells a reconnecting
	// publisher where to resume (frames below it are already durable). It
	// rides the encoding as an optional trailing field, so peers without it
	// interoperate.
	ResumeSeq uint64
}

// Message is one framed protocol unit.
type Message struct {
	Type MsgType
	Body []byte
}

// headerSize is the framing overhead: one type byte plus a big-endian length.
const headerSize = 5

// AppendMessage appends the framed form of m to dst and returns the extended
// slice. It is the allocation-free building block behind WriteMessage and
// EncodeMessage.
//
//livesim:hotpath
func AppendMessage(dst []byte, m Message) ([]byte, error) {
	if len(m.Body) > MaxBody {
		return dst, ErrBodyTooLarge
	}
	var hdr [headerSize]byte
	hdr[0] = byte(m.Type)
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(m.Body)))
	dst = append(dst, hdr[:]...)
	return append(dst, m.Body...), nil
}

// Encoded is one fully framed message — header and body in a single
// contiguous buffer, exactly the bytes WriteEncoded puts on the wire. The
// fan-out path frames a frame once per arrival and hands the same Encoded to
// every viewer, replacing N per-viewer framings (and their copies) with one.
// An Encoded is immutable once built: it may be shared across goroutines.
type Encoded []byte

// Type returns the framed message's type.
func (e Encoded) Type() MsgType {
	if len(e) < headerSize {
		return 0
	}
	return MsgType(e[0])
}

// Body returns the framed message's body, aliasing the encoded buffer.
func (e Encoded) Body() []byte {
	if len(e) < headerSize {
		return nil
	}
	return e[headerSize:]
}

// Message re-views the encoded bytes as a Message without copying.
func (e Encoded) Message() Message {
	return Message{Type: e.Type(), Body: e.Body()}
}

// EncodeMessage frames m once; the result can be written to any number of
// connections with WriteEncoded.
//
//livesim:hotpath
func EncodeMessage(m Message) (Encoded, error) {
	//lint:allow hotpathescape the framed buffer is the product; the fan-out retains it by design
	buf := make([]byte, 0, headerSize+len(m.Body))
	buf, err := AppendMessage(buf, m)
	if err != nil {
		return nil, err
	}
	return Encoded(buf), nil
}

// WriteEncoded writes one pre-framed message with a single Write call and no
// copying.
//
//livesim:hotpath
func WriteEncoded(w io.Writer, e Encoded) error {
	if _, err := w.Write(e); err != nil {
		//lint:allow hotpathalloc error path only; the success path allocates nothing
		return fmt.Errorf("wire: write: %w", err)
	}
	return nil
}

// ReadEncoded reads one message preserving its framed form: the returned
// buffer is byte-for-byte what WriteEncoded would send. It costs one
// allocation — the buffer a fan-out retains anyway — so relaying a message to
// N viewers needs no re-framing and no further copies.
//
//livesim:hotpath
func ReadEncoded(r io.Reader) (Encoded, error) {
	//lint:allow hotpathescape header scratch is pinned by the io.Reader interface call; the body buffer cannot be sized before it is read
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > MaxBody {
		return nil, ErrBodyTooLarge
	}
	//lint:allow hotpathescape the framed buffer is the product; the fan-out retains it by design
	buf := make([]byte, headerSize+int(n))
	copy(buf, hdr[:])
	if _, err := io.ReadFull(r, buf[headerSize:]); err != nil {
		//lint:allow hotpathalloc error path only; the success path costs the one retained buffer
		return nil, fmt.Errorf("wire: read body: %w", err)
	}
	return Encoded(buf), nil
}

// writeBufs stages header+body for WriteMessage so framing costs no
// allocation and exactly one Write (one syscall on a net.Conn).
var writeBufs = sync.Pool{New: func() interface{} {
	b := make([]byte, 0, 4096)
	return &b
}}

// maxPooledBuf bounds what WriteMessage returns to the pool, so one huge
// message cannot pin a huge buffer for the process lifetime.
const maxPooledBuf = 1 << 20

// WriteMessage frames and writes a message with a single Write. The header
// and body are staged in a pooled buffer, so steady-state calls allocate
// nothing.
//
//livesim:hotpath
func WriteMessage(w io.Writer, m Message) error {
	if len(m.Body) > MaxBody {
		return ErrBodyTooLarge
	}
	bp := writeBufs.Get().(*[]byte)
	buf, _ := AppendMessage((*bp)[:0], m)
	_, err := w.Write(buf)
	if cap(buf) <= maxPooledBuf {
		*bp = buf[:0]
		writeBufs.Put(bp)
	}
	if err != nil {
		//lint:allow hotpathalloc error path only; the success path allocates nothing
		return fmt.Errorf("wire: write: %w", err)
	}
	return nil
}

// ReadMessage reads one framed message into a fresh buffer.
func ReadMessage(r io.Reader) (Message, error) {
	m, _, err := ReadMessageInto(r, nil)
	return m, err
}

// ReadMessageInto reads one framed message, reusing buf for the body when it
// has the capacity (growing it otherwise). The returned message's Body
// aliases the returned buffer, which should be passed to the next call — a
// read loop that does not retain bodies becomes allocation-free. Callers that
// keep a Body past the next call must copy it first.
//
//livesim:hotpath
func ReadMessageInto(r io.Reader, buf []byte) (Message, []byte, error) {
	// The header is read into the caller's buffer, not a local array: a
	// local would be pinned to the heap by the io.Reader interface call,
	// costing an allocation on every read and breaking the zero-alloc
	// steady state this function promises (hotpathescape enforces it).
	if cap(buf) < headerSize {
		//lint:allow hotpathescape grow path runs only until the caller's buffer reaches header size; the buffer is returned for reuse
		buf = make([]byte, headerSize)
	}
	hdr := buf[:headerSize]
	if _, err := io.ReadFull(r, hdr); err != nil {
		return Message{}, buf, err
	}
	typ := MsgType(hdr[0])
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > MaxBody {
		return Message{}, buf, ErrBodyTooLarge
	}
	if cap(buf) < int(n) {
		//lint:allow hotpathescape grow path runs only while bodies outgrow the caller's buffer; the buffer is returned for reuse
		buf = make([]byte, n)
	}
	body := buf[:n]
	if _, err := io.ReadFull(r, body); err != nil {
		//lint:allow hotpathalloc error path only; the success path reuses the caller's buffer
		return Message{}, buf, fmt.Errorf("wire: read body: %w", err)
	}
	return Message{Type: typ, Body: body}, body, nil
}

// appendString appends a length-prefixed string.
func appendString(dst []byte, s string) []byte {
	var l [2]byte
	binary.BigEndian.PutUint16(l[:], uint16(len(s)))
	dst = append(dst, l[:]...)
	return append(dst, s...)
}

// readString consumes a length-prefixed string.
func readString(data []byte) (string, []byte, error) {
	if len(data) < 2 {
		return "", nil, errors.New("wire: short string length")
	}
	n := int(binary.BigEndian.Uint16(data))
	if len(data) < 2+n {
		return "", nil, errors.New("wire: short string body")
	}
	return string(data[2 : 2+n]), data[2+n:], nil
}

// MarshalHandshake encodes a Handshake body.
func MarshalHandshake(h Handshake) []byte {
	buf := appendString(nil, h.Role)
	buf = appendString(buf, h.BroadcastID)
	buf = appendString(buf, h.Token)
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], h.BufferMs)
	return append(buf, b[:]...)
}

// UnmarshalHandshake decodes a Handshake body.
func UnmarshalHandshake(data []byte) (Handshake, error) {
	var h Handshake
	var err error
	if h.Role, data, err = readString(data); err != nil {
		return h, fmt.Errorf("wire: handshake role: %w", err)
	}
	if h.BroadcastID, data, err = readString(data); err != nil {
		return h, fmt.Errorf("wire: handshake broadcast: %w", err)
	}
	if h.Token, data, err = readString(data); err != nil {
		return h, fmt.Errorf("wire: handshake token: %w", err)
	}
	if len(data) < 4 {
		return h, errors.New("wire: handshake missing buffer")
	}
	h.BufferMs = binary.BigEndian.Uint32(data)
	return h, nil
}

// MarshalAck encodes an Ack body. The ResumeSeq field is appended only when
// nonzero, keeping the base encoding byte-identical to the pre-resume wire
// form.
func MarshalAck(a Ack) []byte {
	buf := appendString(nil, a.Status)
	buf = appendString(buf, a.Message)
	if a.ResumeSeq != 0 {
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], a.ResumeSeq)
		buf = append(buf, b[:]...)
	}
	return buf
}

// UnmarshalAck decodes an Ack body. A missing trailing ResumeSeq decodes as
// zero (an old peer, or a stream with nothing to resume).
func UnmarshalAck(data []byte) (Ack, error) {
	var a Ack
	var err error
	if a.Status, data, err = readString(data); err != nil {
		return a, fmt.Errorf("wire: ack status: %w", err)
	}
	if a.Message, data, err = readString(data); err != nil {
		return a, fmt.Errorf("wire: ack message: %w", err)
	}
	if len(data) >= 8 {
		a.ResumeSeq = binary.BigEndian.Uint64(data)
	}
	return a, nil
}

// SignatureSize is the Ed25519 signature length used by MsgSignedFrame.
const SignatureSize = 64

// MarshalSignedFrame encodes [frameLen][frameBytes][sig].
func MarshalSignedFrame(frameBytes, sig []byte) ([]byte, error) {
	if len(sig) != SignatureSize {
		return nil, fmt.Errorf("wire: signature length %d, want %d", len(sig), SignatureSize)
	}
	buf := make([]byte, 4, 4+len(frameBytes)+SignatureSize)
	binary.BigEndian.PutUint32(buf, uint32(len(frameBytes)))
	buf = append(buf, frameBytes...)
	return append(buf, sig...), nil
}

// UnmarshalSignedFrame decodes a signed-frame body into frame bytes and
// signature.
func UnmarshalSignedFrame(data []byte) (frameBytes, sig []byte, err error) {
	if len(data) < 4 {
		return nil, nil, errors.New("wire: short signed frame")
	}
	n := binary.BigEndian.Uint32(data)
	if uint64(len(data)) < 4+uint64(n)+SignatureSize {
		return nil, nil, errors.New("wire: truncated signed frame")
	}
	frameBytes = data[4 : 4+n]
	sig = data[4+n : 4+n+SignatureSize]
	return frameBytes, sig, nil
}
