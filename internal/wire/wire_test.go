package wire

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestMessageRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	msgs := []Message{
		{Type: MsgHandshake, Body: []byte("hello")},
		{Type: MsgFrame, Body: []byte{0, 1, 2}},
		{Type: MsgEnd, Body: nil},
	}
	for _, m := range msgs {
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range msgs {
		got, err := ReadMessage(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Type != want.Type || !bytes.Equal(got.Body, want.Body) {
			t.Fatalf("roundtrip mismatch: %+v vs %+v", got, want)
		}
	}
}

func TestMessageTooLarge(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, Message{Type: MsgFrame, Body: make([]byte, MaxBody+1)}); err != ErrBodyTooLarge {
		t.Fatalf("oversized write error = %v", err)
	}
	// Hand-craft an oversized length prefix.
	buf.Write([]byte{byte(MsgFrame), 0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadMessage(&buf); err != ErrBodyTooLarge {
		t.Fatalf("oversized read error = %v", err)
	}
}

func TestReadMessageShort(t *testing.T) {
	if _, err := ReadMessage(bytes.NewReader([]byte{1, 0})); err == nil {
		t.Fatal("short header accepted")
	}
	if _, err := ReadMessage(bytes.NewReader([]byte{1, 0, 0, 0, 5, 1, 2})); err == nil {
		t.Fatal("short body accepted")
	}
}

func TestHandshakeRoundtrip(t *testing.T) {
	h := Handshake{Role: RoleViewer, BroadcastID: "b-17", Token: "tok-secret", BufferMs: 1000}
	got, err := UnmarshalHandshake(MarshalHandshake(h))
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("roundtrip mismatch: %+v vs %+v", got, h)
	}
}

func TestHandshakeErrors(t *testing.T) {
	h := MarshalHandshake(Handshake{Role: RoleBroadcaster, BroadcastID: "b", Token: "t"})
	for cut := 0; cut < len(h); cut++ {
		if _, err := UnmarshalHandshake(h[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestAckRoundtrip(t *testing.T) {
	a := Ack{Status: StatusFull, Message: "use HLS"}
	got, err := UnmarshalAck(MarshalAck(a))
	if err != nil {
		t.Fatal(err)
	}
	if got != a {
		t.Fatalf("roundtrip mismatch: %+v vs %+v", got, a)
	}
}

func TestAckErrors(t *testing.T) {
	if _, err := UnmarshalAck([]byte{0}); err == nil {
		t.Fatal("short ack accepted")
	}
}

// TestAckResumeSeq: the optional trailing resume sequence round-trips, its
// absence decodes as zero, and an old-style ack (no trailing field) still
// parses.
func TestAckResumeSeq(t *testing.T) {
	a := Ack{Status: StatusOK, Message: "publishing", ResumeSeq: 1501}
	got, err := UnmarshalAck(MarshalAck(a))
	if err != nil {
		t.Fatal(err)
	}
	if got != a {
		t.Fatalf("roundtrip mismatch: %+v vs %+v", got, a)
	}
	base := MarshalAck(Ack{Status: StatusOK, Message: "publishing"})
	withSeq := MarshalAck(a)
	if !bytes.Equal(withSeq[:len(base)], base) {
		t.Fatal("resume encoding is not a strict extension of the base ack")
	}
	got, err = UnmarshalAck(base)
	if err != nil || got.ResumeSeq != 0 {
		t.Fatalf("base ack decoded as %+v (err %v), want ResumeSeq 0", got, err)
	}
}

func TestSignedFrameRoundtrip(t *testing.T) {
	frame := []byte("frame-bytes")
	sig := bytes.Repeat([]byte{7}, SignatureSize)
	body, err := MarshalSignedFrame(frame, sig)
	if err != nil {
		t.Fatal(err)
	}
	gotFrame, gotSig, err := UnmarshalSignedFrame(body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotFrame, frame) || !bytes.Equal(gotSig, sig) {
		t.Fatal("signed-frame roundtrip mismatch")
	}
}

func TestSignedFrameErrors(t *testing.T) {
	if _, err := MarshalSignedFrame([]byte("f"), []byte("short")); err == nil {
		t.Fatal("bad signature length accepted")
	}
	if _, _, err := UnmarshalSignedFrame([]byte{0, 0}); err == nil {
		t.Fatal("short body accepted")
	}
	body, _ := MarshalSignedFrame([]byte("frame"), bytes.Repeat([]byte{1}, SignatureSize))
	if _, _, err := UnmarshalSignedFrame(body[:len(body)-1]); err == nil {
		t.Fatal("truncated signature accepted")
	}
}

// Property: handshakes with arbitrary field contents roundtrip exactly.
func TestHandshakeRoundtripProperty(t *testing.T) {
	f := func(role, id, token string, buf uint32) bool {
		if len(role) > 65535 || len(id) > 65535 || len(token) > 65535 {
			return true
		}
		h := Handshake{Role: role, BroadcastID: id, Token: token, BufferMs: buf}
		got, err := UnmarshalHandshake(MarshalHandshake(h))
		return err == nil && got == h
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: messages of arbitrary type/body roundtrip through a buffer.
func TestMessageRoundtripProperty(t *testing.T) {
	f := func(typ uint8, body []byte) bool {
		var buf bytes.Buffer
		m := Message{Type: MsgType(typ), Body: body}
		if err := WriteMessage(&buf, m); err != nil {
			return len(body) > MaxBody
		}
		got, err := ReadMessage(&buf)
		return err == nil && got.Type == m.Type && bytes.Equal(got.Body, m.Body)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
