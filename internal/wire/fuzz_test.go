package wire

import (
	"bytes"
	"testing"
)

func FuzzReadMessage(f *testing.F) {
	var buf bytes.Buffer
	WriteMessage(&buf, Message{Type: MsgHandshake, Body: MarshalHandshake(Handshake{Role: RoleViewer, BroadcastID: "b"})})
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0, 0})
	f.Add([]byte{3, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadMessage(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(m.Body) > MaxBody {
			t.Fatal("oversized body accepted")
		}
		var out bytes.Buffer
		if err := WriteMessage(&out, m); err != nil {
			t.Fatalf("re-write rejected: %v", err)
		}
		if !bytes.Equal(out.Bytes(), data[:5+len(m.Body)]) {
			t.Fatal("re-write mismatch")
		}
	})
}

func FuzzUnmarshalHandshake(f *testing.F) {
	f.Add(MarshalHandshake(Handshake{Role: RoleBroadcaster, BroadcastID: "x", Token: "t", BufferMs: 9}))
	f.Add([]byte{})
	f.Add([]byte{0, 5, 'a'})
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := UnmarshalHandshake(data)
		if err != nil {
			return
		}
		got, err := UnmarshalHandshake(MarshalHandshake(h))
		if err != nil || got != h {
			t.Fatalf("roundtrip mismatch: %+v vs %+v (%v)", got, h, err)
		}
	})
}

func FuzzUnmarshalSignedFrame(f *testing.F) {
	body, _ := MarshalSignedFrame([]byte("frame"), bytes.Repeat([]byte{1}, SignatureSize))
	f.Add(body)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 200, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		fb, sig, err := UnmarshalSignedFrame(data)
		if err != nil {
			return
		}
		if len(sig) != SignatureSize {
			t.Fatal("bad signature length accepted")
		}
		again, err := MarshalSignedFrame(fb, sig)
		if err != nil {
			t.Fatalf("re-marshal rejected: %v", err)
		}
		fb2, sig2, err := UnmarshalSignedFrame(again)
		if err != nil || !bytes.Equal(fb, fb2) || !bytes.Equal(sig, sig2) {
			t.Fatal("roundtrip mismatch")
		}
	})
}
