package wire

import (
	"bytes"
	"io"
	"testing"
)

// TestEncodeMessageRoundTrip checks that the pre-framed form is exactly what
// WriteMessage puts on the wire, and that its accessors re-view the bytes.
func TestEncodeMessageRoundTrip(t *testing.T) {
	msgs := []Message{
		{Type: MsgFrame, Body: []byte("payload bytes")},
		{Type: MsgEnd},
		{Type: MsgHandshakeAck, Body: MarshalAck(Ack{Status: StatusOK, Message: "hi"})},
	}
	for _, m := range msgs {
		enc, err := EncodeMessage(m)
		if err != nil {
			t.Fatal(err)
		}
		var legacy bytes.Buffer
		if err := WriteMessage(&legacy, m); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(legacy.Bytes(), []byte(enc)) {
			t.Fatalf("EncodeMessage diverged from WriteMessage for type %d", m.Type)
		}
		if enc.Type() != m.Type {
			t.Fatalf("Type() = %d, want %d", enc.Type(), m.Type)
		}
		if !bytes.Equal(enc.Body(), m.Body) {
			t.Fatalf("Body() = %q, want %q", enc.Body(), m.Body)
		}
		got := enc.Message()
		if got.Type != m.Type || !bytes.Equal(got.Body, m.Body) {
			t.Fatalf("Message() = %+v, want %+v", got, m)
		}

		// WriteEncoded → ReadMessage round trip.
		var out bytes.Buffer
		if err := WriteEncoded(&out, enc); err != nil {
			t.Fatal(err)
		}
		back, err := ReadMessage(&out)
		if err != nil {
			t.Fatal(err)
		}
		if back.Type != m.Type || !bytes.Equal(back.Body, m.Body) {
			t.Fatalf("round trip = %+v, want %+v", back, m)
		}
	}
}

func TestEncodeMessageTooLarge(t *testing.T) {
	if _, err := EncodeMessage(Message{Type: MsgFrame, Body: make([]byte, MaxBody+1)}); err != ErrBodyTooLarge {
		t.Fatalf("err = %v, want ErrBodyTooLarge", err)
	}
	if _, err := AppendMessage(nil, Message{Type: MsgFrame, Body: make([]byte, MaxBody+1)}); err != ErrBodyTooLarge {
		t.Fatalf("append err = %v, want ErrBodyTooLarge", err)
	}
}

// TestReadEncodedMatchesWire checks ReadEncoded preserves the exact framed
// bytes, including the zero-body case.
func TestReadEncodedMatchesWire(t *testing.T) {
	var buf bytes.Buffer
	for _, m := range []Message{
		{Type: MsgFrame, Body: []byte("abc")},
		{Type: MsgEnd},
	} {
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	wireBytes := append([]byte(nil), buf.Bytes()...)
	e1, err := ReadEncoded(&buf)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := ReadEncoded(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := append(append([]byte(nil), e1...), e2...); !bytes.Equal(got, wireBytes) {
		t.Fatalf("ReadEncoded bytes diverged from wire bytes")
	}
	if e1.Type() != MsgFrame || string(e1.Body()) != "abc" {
		t.Fatalf("e1 = type %d body %q", e1.Type(), e1.Body())
	}
	if e2.Type() != MsgEnd || len(e2.Body()) != 0 {
		t.Fatalf("e2 = type %d body %q", e2.Type(), e2.Body())
	}
	if _, err := ReadEncoded(&buf); err != io.EOF {
		t.Fatalf("err = %v, want EOF", err)
	}
}

// TestReadEncodedRejectsOversize checks the length-prefix bound holds on the
// preserved-framing read path too.
func TestReadEncodedRejectsOversize(t *testing.T) {
	raw := []byte{byte(MsgFrame), 0xff, 0xff, 0xff, 0xff}
	if _, err := ReadEncoded(bytes.NewReader(raw)); err != ErrBodyTooLarge {
		t.Fatalf("err = %v, want ErrBodyTooLarge", err)
	}
}

// TestReadMessageInto checks buffer reuse: the same backing array serves
// successive reads once grown, and bodies alias the returned buffer.
func TestReadMessageInto(t *testing.T) {
	var buf bytes.Buffer
	big := bytes.Repeat([]byte{7}, 1024)
	for _, m := range []Message{
		{Type: MsgFrame, Body: big},
		{Type: MsgFrame, Body: []byte("small")},
		{Type: MsgEnd},
	} {
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	m1, reuse, err := ReadMessageInto(&buf, nil)
	if err != nil || !bytes.Equal(m1.Body, big) {
		t.Fatalf("m1 = %v (err %v)", len(m1.Body), err)
	}
	grown := cap(reuse)
	if grown < 1024 {
		t.Fatalf("reuse cap = %d, want >= 1024", grown)
	}
	m2, reuse2, err := ReadMessageInto(&buf, reuse)
	if err != nil || string(m2.Body) != "small" {
		t.Fatalf("m2 = %q (err %v)", m2.Body, err)
	}
	if cap(reuse2) != grown {
		t.Fatalf("buffer was reallocated for a smaller body: cap %d → %d", grown, cap(reuse2))
	}
	m3, _, err := ReadMessageInto(&buf, reuse2)
	if err != nil || m3.Type != MsgEnd || len(m3.Body) != 0 {
		t.Fatalf("m3 = %+v (err %v)", m3, err)
	}
}

// TestWriteMessageAllocFree locks in the pooled-buffer property: framing and
// writing a message allocates nothing in steady state.
func TestWriteMessageAllocFree(t *testing.T) {
	body := make([]byte, 2048)
	m := Message{Type: MsgFrame, Body: body}
	sink := io.Discard
	// Warm the pool.
	if err := WriteMessage(sink, m); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := WriteMessage(sink, m); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("WriteMessage allocs/op = %.1f, want 0", allocs)
	}
}
