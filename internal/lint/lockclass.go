package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

// lockclass.go is the mutex-call classifier shared by locksend (which keys
// locks by receiver expression within one function) and lockorder (which
// keys them by field class across the whole program).
//
// Two identities are computed for a call like `e.RLock()`:
//
//   - recvKey: the receiver expression, normalized through embedded-struct
//     promotion. `e.Lock()` on a struct embedding sync.Mutex and
//     `e.Mutex.Lock()` are the same lock; rendering the promoted call as
//     "e" and the explicit one as "e.Mutex" made locksend treat a
//     lock-via-promotion / unlock-via-field pair as a phantom held lock.
//     Both now render "e.Mutex".
//
//   - class: the declaring struct field — "repro/internal/cdn.Edge.mu" —
//     shared by every instance of the type, or the package-level variable
//     for global mutexes. Local and parameter mutexes have no class.

// mutexCall describes one sync.Mutex / sync.RWMutex method call.
type mutexCall struct {
	recvKey string // normalized receiver expression, e.g. "e.Mutex"
	acquire bool
	read    bool // RLock/RUnlock
	pos     token.Pos
}

// lockTracker resolves mutex calls against one pass's type information.
type lockTracker struct {
	pass *analysis.Pass
}

func newLockTracker(pass *analysis.Pass) *lockTracker {
	return &lockTracker{pass: pass}
}

// mutexOp reports whether call is a Lock/RLock/Unlock/RUnlock on a
// sync.Mutex or sync.RWMutex (including promoted calls through embedded
// structs and calls through a sync.Locker interface).
func (t *lockTracker) mutexOp(call *ast.CallExpr) (mutexCall, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return mutexCall{}, false
	}
	fn, ok := t.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return mutexCall{}, false
	}
	mc := mutexCall{pos: call.Pos()}
	switch fn.Name() {
	case "Lock":
		mc.acquire = true
	case "RLock":
		mc.acquire, mc.read = true, true
	case "Unlock":
	case "RUnlock":
		mc.read = true
	default:
		return mutexCall{}, false
	}
	mc.recvKey = t.recvKey(sel)
	return mc, true
}

// recvKey renders the receiver, appending the embedded-field hops a
// promoted method call leaves implicit.
func (t *lockTracker) recvKey(sel *ast.SelectorExpr) string {
	key := types.ExprString(sel.X)
	msel, ok := t.pass.TypesInfo.Selections[sel]
	if !ok || len(msel.Index()) < 2 {
		return key
	}
	// Promoted method: Index()[:len-1] are the implicit embedded fields.
	typ := msel.Recv()
	for _, i := range msel.Index()[:len(msel.Index())-1] {
		f := structField(typ, i)
		if f == nil {
			return key
		}
		key += "." + f.Name()
		typ = f.Type()
	}
	return key
}

// lockClass computes the program-wide class of the mutex a call operates
// on: the declaring struct field or package-level variable. ok is false
// for locals, parameters, and receivers the classifier cannot see through
// (interface values, map index results).
func (t *lockTracker) lockClass(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	// Promoted method on an embedded mutex: the field chain is in the
	// method selection itself.
	if msel, ok := t.pass.TypesInfo.Selections[sel]; ok && len(msel.Index()) >= 2 {
		return classFromFieldPath(msel.Recv(), msel.Index()[:len(msel.Index())-1])
	}
	// Direct method: classify the receiver expression.
	return t.exprClass(sel.X)
}

// exprClass classifies a mutex-valued expression.
func (t *lockTracker) exprClass(x ast.Expr) (string, bool) {
	switch e := x.(type) {
	case *ast.SelectorExpr:
		// A field selection (s.mu, s.inner.mu, shards[i].mu) — possibly
		// itself through embedded fields — or a qualified package-level
		// variable (pkg.Mu).
		if fsel, ok := t.pass.TypesInfo.Selections[e]; ok && fsel.Kind() == types.FieldVal {
			return classFromFieldPath(fsel.Recv(), fsel.Index())
		}
		if v, ok := t.pass.TypesInfo.Uses[e.Sel].(*types.Var); ok {
			return packageVarClass(v)
		}
	case *ast.Ident:
		if v, ok := t.pass.TypesInfo.Uses[e].(*types.Var); ok {
			return packageVarClass(v)
		}
	case *ast.ParenExpr:
		return t.exprClass(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return t.exprClass(e.X)
		}
	case *ast.StarExpr:
		return t.exprClass(e.X)
	}
	return "", false
}

// packageVarClass classifies a package-level mutex variable.
func packageVarClass(v *types.Var) (string, bool) {
	if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		return v.Pkg().Path() + "." + v.Name(), true
	}
	return "", false
}

// classFromFieldPath walks a field index path from recv and returns
// "pkgpath.Owner.field" for the final field, where Owner is the named
// struct that declares it.
func classFromFieldPath(recv types.Type, fields []int) (string, bool) {
	if len(fields) == 0 {
		return "", false
	}
	typ := recv
	for _, i := range fields[:len(fields)-1] {
		f := structField(typ, i)
		if f == nil {
			return "", false
		}
		typ = f.Type()
	}
	owner, ok := namedOf(typ)
	if !ok {
		return "", false
	}
	f := structField(typ, fields[len(fields)-1])
	if f == nil || owner.Obj().Pkg() == nil {
		return "", false
	}
	return owner.Obj().Pkg().Path() + "." + owner.Obj().Name() + "." + f.Name(), true
}

// structField returns field i of the struct underlying typ (through one
// pointer), nil if typ is not a struct or i is out of range.
func structField(typ types.Type, i int) *types.Var {
	t := typ
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	s, ok := t.Underlying().(*types.Struct)
	if !ok || i < 0 || i >= s.NumFields() {
		return nil
	}
	return s.Field(i)
}

// namedOf unwraps one pointer and reports the named type, if any.
func namedOf(typ types.Type) (*types.Named, bool) {
	t := typ
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return n, ok
}
