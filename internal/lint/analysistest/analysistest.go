// Package analysistest runs an analyzer over a fixture package and checks
// its diagnostics against // want annotations, mirroring (a useful subset
// of) golang.org/x/tools/go/analysis/analysistest:
//
//	ch <- v // want `channel send while`
//	mu.Lock() // want `send` `nested`
//
// Each expectation is a backquoted or double-quoted regular expression; a
// line's diagnostics and expectations must match one-to-one. Fixture
// packages live under internal/lint/testdata/src/<name> and are ordinary
// compilable Go so the type checker sees exactly what production code looks
// like.
package analysistest

import (
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/loader"
)

// Run loads testdata/src/<dir> relative to the caller's testdata root,
// applies the analyzer (with no //lint:allow filtering — that is the
// driver's concern, tested separately), and diffs diagnostics against
// // want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, dir string) {
	t.Helper()
	pkg, err := loader.LoadDir(filepath.Join(testdata, "src", dir))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	var got []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Syntax,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
		Report:    func(d analysis.Diagnostic) { got = append(got, d) },
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("%s on fixture %s: %v", a.Name, dir, err)
	}
	Check(t, pkg, a.Name, got)
}

// RunSuite analyzes several fixture packages in dependency order with
// cross-package fact propagation: between packages the fact store is
// gob-encoded and decoded into a fresh store, so the test exercises the
// same wire path — and the same structural fact keys — the vet driver uses
// when facts cross a .vetx file. Each package's diagnostics are checked
// against its own // want comments.
func RunSuite(t *testing.T, testdata string, a *analysis.Analyzer, dirs ...string) {
	t.Helper()
	analysis.RegisterFactTypes([]*analysis.Analyzer{a})
	facts := analysis.NewFactStore()
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(filepath.Join(testdata, "src", dir))
		if err != nil {
			t.Fatalf("loading fixture %s: %v", dir, err)
		}
		var got []analysis.Diagnostic
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Syntax,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			Facts:     facts,
			Report:    func(d analysis.Diagnostic) { got = append(got, d) },
		}
		if _, err := a.Run(pass); err != nil {
			t.Fatalf("%s on fixture %s: %v", a.Name, dir, err)
		}
		Check(t, pkg, a.Name, got)

		data, err := facts.Encode()
		if err != nil {
			t.Fatalf("encoding facts after %s: %v", dir, err)
		}
		facts = analysis.NewFactStore()
		if err := facts.Decode(data); err != nil {
			t.Fatalf("decoding facts after %s: %v", dir, err)
		}
	}
}

// Check diffs diagnostics against the fixture's // want comments. Exposed
// so the driver test can validate post-suppression findings the same way.
func Check(t *testing.T, pkg *loader.Package, name string, got []analysis.Diagnostic) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*regexp.Regexp)
	for _, file := range pkg.Syntax {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, pat := range parseWants(t, pos.String(), strings.TrimPrefix(text, "want ")) {
					wants[key{pos.Filename, pos.Line}] = append(wants[key{pos.Filename, pos.Line}], pat)
				}
			}
		}
	}

	matched := make(map[*regexp.Regexp]bool)
	for _, d := range got {
		pos := pkg.Fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		found := false
		for _, pat := range wants[k] {
			if !matched[pat] && pat.MatchString(d.Message) {
				matched[pat] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected %s diagnostic: %s", pos, name, d.Message)
		}
	}
	for k, pats := range wants {
		for _, pat := range pats {
			if !matched[pat] {
				t.Errorf("%s:%d: no %s diagnostic matching %q", k.file, k.line, name, pat)
			}
		}
	}
}

// parseWants extracts the quoted or backquoted regexps from a want comment.
func parseWants(t *testing.T, pos, s string) []*regexp.Regexp {
	t.Helper()
	var pats []*regexp.Regexp
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return pats
		}
		var raw, rest string
		switch s[0] {
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				t.Fatalf("%s: unterminated backquote in want comment", pos)
			}
			raw, rest = s[1:1+end], s[2+end:]
		case '"':
			end := strings.IndexByte(s[1:], '"')
			if end < 0 {
				t.Fatalf("%s: unterminated quote in want comment", pos)
			}
			var err error
			raw, err = strconv.Unquote(s[:2+end])
			if err != nil {
				t.Fatalf("%s: bad want string: %v", pos, err)
			}
			rest = s[2+end:]
		default:
			t.Fatalf("%s: want expectation must be quoted or backquoted, got %q", pos, s)
		}
		pat, err := regexp.Compile(raw)
		if err != nil {
			t.Fatalf("%s: bad want regexp %q: %v", pos, raw, err)
		}
		pats = append(pats, pat)
		s = rest
	}
}
