package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// Goroleak requires every `go` statement to have a provable termination
// path. testutil.CheckGoroutines catches leaks a test happens to trigger;
// this analyzer makes the property static: a spawned function must either
// run to completion (straight-line body, bounded loops), carry an explicit
// exit out of every unconditional loop (a return, a break, or a panic —
// which in practice means a `select` on ctx.Done() or a done channel whose
// case returns), or be accounted to a sync.WaitGroup (`defer wg.Done()` as
// the first statement), whose Wait makes the leak visible at join points.
//
// Functions that provably never return — an unconditional `for` loop with
// no exit, a bare `select {}`, or an unconditional call to such a function
// — are marked with a NeverReturns fact, so `go s.run()` is flagged at the
// spawn site even when run is declared in another package: the spawn is
// where the missing stop signal must be threaded in, not the loop.
var Goroleak = &analysis.Analyzer{
	Name: "goroleak",
	Doc: "flags `go` statements with no provable termination path (no " +
		"return/break out of unconditional loops, no ctx.Done()/done-channel " +
		"exit, no WaitGroup accounting), using NeverReturns facts to catch " +
		"spawns of forever-blocking functions across packages",
	Run:       runGoroleak,
	FactTypes: []analysis.Fact{(*NeverReturns)(nil)},
}

// NeverReturns marks a function that provably never returns to its caller:
// every execution path ends in an unconditional loop or empty select with
// no exit statement.
type NeverReturns struct {
	// Why is a short human-readable cause ("unconditional for loop with no
	// exit at decl", "select{}"), surfaced in spawn-site diagnostics.
	Why string
}

// AFact marks NeverReturns as a fact.
func (*NeverReturns) AFact() {}

func runGoroleak(pass *analysis.Pass) (interface{}, error) {
	gl := &goroleakPass{
		pass:    pass,
		decls:   make(map[*types.Func]*ast.FuncDecl),
		forever: make(map[*types.Func]string),
	}

	// Phase 1: index declarations, then find never-returning functions by
	// fixpoint (f never returns if it unconditionally calls g which never
	// returns).
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				gl.decls[obj] = fd
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for obj, fd := range gl.decls {
			if _, done := gl.forever[obj]; done {
				continue
			}
			if why, ok := gl.neverReturns(fd.Body); ok {
				gl.forever[obj] = why
				changed = true
			}
		}
	}
	for obj, why := range gl.forever {
		pass.ExportObjectFact(obj, &NeverReturns{Why: why})
	}

	// Phase 2: audit every `go` statement.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				gl.checkSpawn(g)
			}
			return true
		})
	}
	return nil, nil
}

type goroleakPass struct {
	pass    *analysis.Pass
	decls   map[*types.Func]*ast.FuncDecl
	forever map[*types.Func]string // same-package NeverReturns causes
}

// neverReturnsFn reports whether fn never returns, consulting the
// same-package fixpoint first and imported facts second.
func (gl *goroleakPass) neverReturnsFn(fn *types.Func) (string, bool) {
	if why, ok := gl.forever[fn]; ok {
		return why, true
	}
	if fn.Pkg() != nil && fn.Pkg() != gl.pass.Pkg {
		var fact NeverReturns
		if gl.pass.ImportObjectFact(fn, &fact) {
			return fact.Why, true
		}
	}
	return "", false
}

// checkSpawn validates one `go` statement.
func (gl *goroleakPass) checkSpawn(g *ast.GoStmt) {
	if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
		if gl.waitGroupAccounted(lit.Body) {
			return
		}
		if why, ok := gl.neverReturns(lit.Body); ok {
			gl.pass.Reportf(g.Pos(),
				"goroutine has no provable termination path (%s); select on ctx.Done() or a done channel and return, bound the loop, or account it with `defer wg.Done()` (DESIGN.md §8)",
				why)
		}
		return
	}
	if fn := gl.staticCallee(g.Call); fn != nil {
		if why, ok := gl.neverReturnsFn(fn); ok {
			gl.pass.Reportf(g.Pos(),
				"goroutine spawns %s, which never returns (%s); thread a ctx/done signal through it or account it with a WaitGroup (DESIGN.md §8)",
				fn.Name(), why)
		}
	}
}

// waitGroupAccounted reports whether the body's first statement is
// `defer wg.Done()` on a sync.WaitGroup — the accounting pattern whose
// Wait() surfaces the goroutine at shutdown.
func (gl *goroleakPass) waitGroupAccounted(body *ast.BlockStmt) bool {
	if len(body.List) == 0 {
		return false
	}
	ds, ok := body.List[0].(*ast.DeferStmt)
	if !ok {
		return false
	}
	sel, ok := ds.Call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := gl.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync" && fn.Name() == "Done"
}

// neverReturns scans a body's top-level statements in order for a point of
// no return. Statements after it are unreachable; statements before it
// (setup, defers) do not affect the verdict. A top-level `return` clears
// the verdict — the function can finish.
func (gl *goroleakPass) neverReturns(body *ast.BlockStmt) (string, bool) {
	for _, stmt := range body.List {
		switch s := stmt.(type) {
		case *ast.ReturnStmt:
			return "", false
		case *ast.ForStmt:
			if s.Cond == nil && !gl.hasLoopExit(s.Body) {
				return "unconditional for loop with no return, break, or panic", true
			}
		case *ast.SelectStmt:
			if len(s.Body.List) == 0 {
				return "blocks forever on select{}", true
			}
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if fn := gl.staticCallee(call); fn != nil {
					if why, ok := gl.neverReturnsFn(fn); ok {
						return "calls " + fn.Name() + ", which " + why, true
					}
				}
			}
		}
	}
	return "", false
}

// hasLoopExit reports whether an unconditional loop's body contains a
// statement that exits the loop or the goroutine: a return, a break bound
// to this loop (not to an inner for/switch/select — the classic trap where
// `break` inside a select case only exits the select), a goto, a panic, or
// a terminal call (os.Exit, log.Fatal*, runtime.Goexit).
func (gl *goroleakPass) hasLoopExit(body *ast.BlockStmt) bool {
	found := false
	// depth counts enclosing break targets between a statement and the
	// loop under test; a plain `break` only exits the loop at depth 0.
	var walk func(n ast.Node, depth int)
	walk = func(n ast.Node, depth int) {
		if found || n == nil {
			return
		}
		switch s := n.(type) {
		case *ast.ReturnStmt:
			found = true
		case *ast.BranchStmt:
			switch s.Tok.String() {
			case "break":
				// A labeled break targets a labeled statement; assume it
				// exits past the loop under test (labels on inner loops
				// that re-enter are rare enough to accept).
				if s.Label != nil || depth == 0 {
					found = true
				}
			case "goto":
				found = true
			}
		case *ast.CallExpr:
			if gl.isTerminalCall(s) {
				found = true
			}
			for _, a := range s.Args {
				walk(a, depth)
			}
			walk(s.Fun, depth)
		case *ast.ForStmt:
			walk(s.Body, depth+1)
		case *ast.RangeStmt:
			walk(s.Body, depth+1)
		case *ast.SwitchStmt:
			for _, c := range s.Body.List {
				walk(c, depth+1)
			}
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				walk(c, depth+1)
			}
		case *ast.SelectStmt:
			for _, c := range s.Body.List {
				walk(c, depth+1)
			}
		case *ast.CaseClause:
			for _, st := range s.Body {
				walk(st, depth)
			}
		case *ast.CommClause:
			for _, st := range s.Body {
				walk(st, depth)
			}
		case *ast.FuncLit:
			// A literal's returns exit the literal, not this loop.
		case *ast.BlockStmt:
			for _, st := range s.List {
				walk(st, depth)
			}
		case *ast.IfStmt:
			walk(s.Body, depth)
			walk(s.Else, depth)
		case *ast.LabeledStmt:
			walk(s.Stmt, depth)
		case *ast.ExprStmt:
			walk(s.X, depth)
		case *ast.DeferStmt:
			// Deferred calls run only if something else already exited.
		case *ast.GoStmt:
			// A nested spawn does not exit this loop (it is audited at its
			// own site).
		case *ast.AssignStmt:
			for _, r := range s.Rhs {
				walk(r, depth)
			}
		case *ast.DeclStmt, *ast.SendStmt, *ast.IncDecStmt, *ast.EmptyStmt:
		default:
			// Conservative: unhandled nodes are walked generically.
			ast.Inspect(n, func(inner ast.Node) bool {
				if found {
					return false
				}
				switch inner.(type) {
				case *ast.ReturnStmt:
					found = true
					return false
				case *ast.FuncLit:
					return false
				}
				return true
			})
		}
	}
	walk(body, 0)
	return found
}

// isTerminalCall reports whether call unconditionally ends the goroutine or
// process: panic, os.Exit, runtime.Goexit, log.Fatal*, or a call to a
// same-package or imported function known to never return (which, for the
// purposes of loop exit, still means this loop is not the leak — the
// callee is, and is flagged where it is spawned).
func (gl *goroleakPass) isTerminalCall(call *ast.CallExpr) bool {
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := gl.pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
			return true
		}
	}
	fn := gl.staticCallee(call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "os":
		return fn.Name() == "Exit"
	case "runtime":
		return fn.Name() == "Goexit"
	case "log":
		switch fn.Name() {
		case "Fatal", "Fatalf", "Fatalln", "Panic", "Panicf", "Panicln":
			return true
		}
	}
	return false
}

// staticCallee resolves a call's target *types.Func, nil for builtins and
// function values.
func (gl *goroleakPass) staticCallee(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := gl.pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}
