// Package lint hosts the repo's custom analyzers and the driver that runs
// them with //lint:allow suppression. The analyzers enforce invariants that
// PRs 1–3 established but nothing checked mechanically:
//
//	locksend      — no blocking op while a sync.Mutex/RWMutex is held (§5a)
//	walltime      — simulation/delivery packages use internal/clock and
//	                internal/rng, never the wall clock or global math/rand
//	atomiccounter — a counter is atomic everywhere or nowhere
//	hotpathalloc  — //livesim:hotpath functions stay allocation-lean
//	ctxplumb      — HTTP requests carry contexts; request paths derive from
//	                the caller's context rather than context.Background
//	lockorder     — the whole-program lock-acquisition graph is acyclic
//	                (no AB/BA deadlocks), propagated across packages via
//	                facts
//	goroleak      — every `go` statement has a provable termination path
//
// A ninth check, hotpathescape, lives in cmd/escapecheck: it is
// compiler-assisted (parses `go tool compile -m=2` escape diagnostics) and
// cannot run under the unitchecker protocol, but shares this package's
// //lint:allow directive namespace.
//
// False positives are suppressed in place with a reasoned directive:
//
//	//lint:allow <analyzer> <reason>
//
// on the flagged line or on the line directly above it. A directive is
// scoped to the named analyzer at that position; it does not blanket the
// line for other analyzers. Directives naming an unknown analyzer, carrying
// no reason, or matching no finding (stale — the code was fixed but the
// suppression lingered, ready to mask the next regression) are themselves
// diagnostics.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/loader"
)

// Analyzers returns the full suite in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		Locksend,
		Walltime,
		Atomiccounter,
		Hotpathalloc,
		Ctxplumb,
		Lockorder,
		Goroleak,
	}
}

// ExternalAllowNames are analyzer names that are valid in //lint:allow
// directives but enforced by a separate binary (cmd/escapecheck), so this
// driver can neither match nor stale-check their directives.
var ExternalAllowNames = map[string]bool{
	"hotpathescape": true,
}

// Finding is one post-suppression diagnostic.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// allowKey identifies a suppressed (analyzer, file, line) cell.
type allowKey struct {
	analyzer string
	file     string
	line     int
}

// directive is one well-formed //lint:allow, tracked for staleness.
type directive struct {
	name     string
	pos      token.Position
	external bool
	used     bool
}

const allowPrefix = "lint:allow"

// collectAllows parses every //lint:allow directive in the files. A
// directive suppresses its analyzer on the directive's own line (trailing
// comment) and on the following line (standalone comment above the
// statement). Malformed or unknown-analyzer directives are returned as
// findings so they fail the build like any other diagnostic.
func collectAllows(fset *token.FileSet, files []*ast.File, known map[string]bool) (map[allowKey]*directive, []*directive, []Finding) {
	allows := make(map[allowKey]*directive)
	var directives []*directive
	var bad []Finding
	for _, file := range files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(strings.TrimPrefix(text, allowPrefix))
				if len(fields) == 0 {
					bad = append(bad, Finding{
						Analyzer: "lintdirective", Pos: pos,
						Message: "malformed //lint:allow: want \"//lint:allow <analyzer> <reason>\"",
					})
					continue
				}
				name := fields[0]
				if !known[name] && !ExternalAllowNames[name] {
					bad = append(bad, Finding{
						Analyzer: "lintdirective", Pos: pos,
						Message: fmt.Sprintf("//lint:allow names unknown analyzer %q (known: %s)", name, knownNames(known)),
					})
					continue
				}
				if len(fields) < 2 {
					bad = append(bad, Finding{
						Analyzer: "lintdirective", Pos: pos,
						Message: fmt.Sprintf("//lint:allow %s has no reason; suppressions must say why", name),
					})
					continue
				}
				d := &directive{name: name, pos: pos, external: ExternalAllowNames[name]}
				directives = append(directives, d)
				allows[allowKey{name, pos.Filename, pos.Line}] = d
				allows[allowKey{name, pos.Filename, pos.Line + 1}] = d
			}
		}
	}
	return allows, directives, bad
}

func knownNames(known map[string]bool) string {
	names := make([]string, 0, len(known)+len(ExternalAllowNames))
	for n := range known {
		names = append(names, n)
	}
	for n := range ExternalAllowNames {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// Run applies the analyzers to one loaded package with a private fact
// store: fine for single-package use where cross-package facts cannot
// matter. Drivers analyzing a whole program use RunFacts with a store
// shared across packages in dependency order.
func Run(pkg *loader.Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	return RunFacts(pkg, analyzers, analysis.NewFactStore())
}

// RunFacts applies the analyzers to one loaded package against a shared
// fact store and returns the findings that survive //lint:allow
// suppression, plus directive diagnostics (malformed, unknown, reasonless,
// or stale), sorted by position. Analyzers export facts into the store even
// for suppressed findings, so suppression never poisons downstream
// packages' view of the program.
func RunFacts(pkg *loader.Package, analyzers []*analysis.Analyzer, facts *analysis.FactStore) ([]Finding, error) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	allows, directives, findings := collectAllows(pkg.Fset, pkg.Syntax, known)

	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Syntax,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			Facts:     facts,
		}
		name := a.Name
		pass.Report = func(d analysis.Diagnostic) {
			pos := pkg.Fset.Position(d.Pos)
			if dir, ok := allows[allowKey{name, pos.Filename, pos.Line}]; ok {
				dir.used = true
				return
			}
			findings = append(findings, Finding{Analyzer: name, Pos: pos, Message: d.Message})
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.ImportPath, err)
		}
	}

	// A directive that suppressed nothing is stale: the finding it covered
	// was fixed, and the lingering suppression would silently swallow the
	// next one at that position. External analyzers (hotpathescape) are
	// matched by their own driver.
	for _, d := range directives {
		if d.used || d.external {
			continue
		}
		findings = append(findings, Finding{
			Analyzer: "lintdirective", Pos: d.pos,
			Message: fmt.Sprintf("stale //lint:allow %s: no %s finding here; delete the directive (it would mask the next real finding at this position)", d.name, d.name),
		})
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return findings[i].Analyzer < findings[j].Analyzer
	})
	return findings, nil
}
