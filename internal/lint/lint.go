// Package lint hosts the repo's custom analyzers and the driver that runs
// them with //lint:allow suppression. The analyzers enforce invariants that
// PRs 1–3 established but nothing checked mechanically:
//
//	locksend      — no blocking op while a sync.Mutex/RWMutex is held (§5a)
//	walltime      — simulation/delivery packages use internal/clock and
//	                internal/rng, never the wall clock or global math/rand
//	atomiccounter — a counter is atomic everywhere or nowhere
//	hotpathalloc  — //livesim:hotpath functions stay allocation-lean
//	ctxplumb      — HTTP requests carry contexts; request paths derive from
//	                the caller's context rather than context.Background
//
// False positives are suppressed in place with a reasoned directive:
//
//	//lint:allow <analyzer> <reason>
//
// on the flagged line or on the line directly above it. Directives naming
// an unknown analyzer, or carrying no reason, are themselves diagnostics —
// a stale or typo'd suppression must not silently disable a check.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/loader"
)

// Analyzers returns the full suite in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		Locksend,
		Walltime,
		Atomiccounter,
		Hotpathalloc,
		Ctxplumb,
	}
}

// Finding is one post-suppression diagnostic.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// allowKey identifies a suppressed (analyzer, file, line) cell.
type allowKey struct {
	analyzer string
	file     string
	line     int
}

const allowPrefix = "lint:allow"

// collectAllows parses every //lint:allow directive in the files. A
// directive suppresses its analyzer on the directive's own line (trailing
// comment) and on the following line (standalone comment above the
// statement). Malformed or unknown-analyzer directives are returned as
// findings so they fail the build like any other diagnostic.
func collectAllows(fset *token.FileSet, files []*ast.File, known map[string]bool) (map[allowKey]bool, []Finding) {
	allows := make(map[allowKey]bool)
	var bad []Finding
	for _, file := range files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(strings.TrimPrefix(text, allowPrefix))
				if len(fields) == 0 {
					bad = append(bad, Finding{
						Analyzer: "lintdirective", Pos: pos,
						Message: "malformed //lint:allow: want \"//lint:allow <analyzer> <reason>\"",
					})
					continue
				}
				name := fields[0]
				if !known[name] {
					bad = append(bad, Finding{
						Analyzer: "lintdirective", Pos: pos,
						Message: fmt.Sprintf("//lint:allow names unknown analyzer %q (known: %s)", name, knownNames(known)),
					})
					continue
				}
				if len(fields) < 2 {
					bad = append(bad, Finding{
						Analyzer: "lintdirective", Pos: pos,
						Message: fmt.Sprintf("//lint:allow %s has no reason; suppressions must say why", name),
					})
					continue
				}
				allows[allowKey{name, pos.Filename, pos.Line}] = true
				allows[allowKey{name, pos.Filename, pos.Line + 1}] = true
			}
		}
	}
	return allows, bad
}

func knownNames(known map[string]bool) string {
	names := make([]string, 0, len(known))
	for n := range known {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// Run applies the analyzers to one loaded package and returns the findings
// that survive //lint:allow suppression, plus any directive diagnostics,
// sorted by position.
func Run(pkg *loader.Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	allows, findings := collectAllows(pkg.Fset, pkg.Syntax, known)

	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Syntax,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
		}
		name := a.Name
		pass.Report = func(d analysis.Diagnostic) {
			pos := pkg.Fset.Position(d.Pos)
			if allows[allowKey{name, pos.Filename, pos.Line}] {
				return
			}
			findings = append(findings, Finding{Analyzer: name, Pos: pos, Message: d.Message})
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.ImportPath, err)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return findings[i].Analyzer < findings[j].Analyzer
	})
	return findings, nil
}
