// Package escape implements hotpathescape, the compiler-assisted member of
// the lint suite (DESIGN.md §8): every //livesim:hotpath function must be
// escape-free, so the 2-allocs/frame fan-out and ~2.5-allocs/event engine
// budgets hold by construction rather than by benchmark.
//
// go/types cannot see escapes — they are a property of the gc backend's
// escape analysis — so this pass asks the compiler itself: each package
// containing a hotpath directive is recompiled with `go tool compile -m=2`
// against the export data `go list -export` already produced (the same
// files the lint loader imports), and the emitted escape diagnostics are
// mapped back onto the hotpath functions' source ranges. Invoking the
// compiler directly instead of `go build -gcflags=-m=2` sidesteps the build
// cache, which swallows diagnostics on every warm run.
//
// Two diagnostic shapes fail the check inside a hotpath function:
//
//	moved to heap: x        — a local was forced to the heap (one
//	                          allocation per call)
//	<expr> escapes to heap  — an allocation the function performs
//
// "leaking param" diagnostics are deliberately NOT failures: a leaking
// pointer parameter costs nothing per call when the pointee is already
// heap-resident (a method receiver, a connection, a store), which is every
// hot-path signature in this repo — the allocation, if any, surfaces as
// "moved to heap" at the caller, where this check sees it if the caller is
// itself a hotpath function.
//
// Deliberate, budgeted allocations are suppressed in place with
// //lint:allow hotpathescape <reason>, same contract as the AST analyzers;
// a stale suppression is itself a finding.
package escape

import (
	"bufio"
	"bytes"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/lint/loader"
)

const hotpathDirective = "livesim:hotpath"

// Finding is one escape regression (or directive problem) in a hotpath
// function.
type Finding struct {
	File    string
	Line    int
	Col     int
	Func    string // hotpath function containing the escape
	Message string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: hotpathescape: %s", f.File, f.Line, f.Col, f.Message)
}

// Stats summarizes a clean run for reporting.
type Stats struct {
	Packages  int // packages containing hotpath functions
	Functions int // hotpath functions proved escape-free
}

// Check runs the escape pass over the module packages matched by patterns
// (relative to dir). It returns the surviving findings and run statistics.
func Check(dir string, patterns ...string) ([]Finding, Stats, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	lps, err := loader.List(dir, patterns...)
	if err != nil {
		return nil, Stats{}, err
	}
	exports := make(map[string]string, len(lps))
	for _, lp := range lps {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
	}

	// Select the module packages that mention the directive at all; the
	// per-file grep is far cheaper than a compile.
	var targets []*loader.ListPkg
	for _, lp := range lps {
		if lp.DepOnly || lp.Standard || len(lp.GoFiles) == 0 || lp.Error != nil {
			continue
		}
		if packageMentionsHotpath(lp) {
			targets = append(targets, lp)
		}
	}
	if len(targets) == 0 {
		return nil, Stats{}, nil
	}

	tmp, err := os.MkdirTemp("", "escapecheck")
	if err != nil {
		return nil, Stats{}, err
	}
	defer os.RemoveAll(tmp)
	importcfg := filepath.Join(tmp, "importcfg")
	if err := writeImportcfg(importcfg, exports); err != nil {
		return nil, Stats{}, err
	}

	var (
		mu       sync.Mutex
		all      []Finding
		stats    Stats
		firstErr error
		wg       sync.WaitGroup
		sem      = make(chan struct{}, runtime.NumCPU())
	)
	for i, lp := range targets {
		wg.Add(1)
		go func(i int, lp *loader.ListPkg) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			fs, nfuncs, err := checkPackage(lp, importcfg, filepath.Join(tmp, fmt.Sprintf("pkg%d.o", i)))
			mu.Lock()
			defer mu.Unlock()
			if err != nil && firstErr == nil {
				firstErr = err
			}
			all = append(all, fs...)
			stats.Packages++
			stats.Functions += nfuncs
		}(i, lp)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, Stats{}, firstErr
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].File != all[j].File {
			return all[i].File < all[j].File
		}
		if all[i].Line != all[j].Line {
			return all[i].Line < all[j].Line
		}
		return all[i].Col < all[j].Col
	})
	return all, stats, nil
}

// packageMentionsHotpath reports whether any non-test Go file in the
// package contains the hotpath directive.
func packageMentionsHotpath(lp *loader.ListPkg) bool {
	for _, f := range lp.GoFiles {
		data, err := os.ReadFile(filepath.Join(lp.Dir, f))
		if err == nil && bytes.Contains(data, []byte("//"+hotpathDirective)) {
			return true
		}
	}
	return false
}

func writeImportcfg(path string, exports map[string]string) error {
	paths := make([]string, 0, len(exports))
	for p := range exports {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	var b strings.Builder
	for _, p := range paths {
		fmt.Fprintf(&b, "packagefile %s=%s\n", p, exports[p])
	}
	return os.WriteFile(path, []byte(b.String()), 0o666)
}

// hotRange is the source extent of one hotpath function.
type hotRange struct {
	name       string
	file       string
	start, end int // line numbers, inclusive
}

// allowDir is one //lint:allow hotpathescape directive.
type allowDir struct {
	file string
	line int // directive's own line; it covers line and line+1
	used bool
}

// checkPackage compiles one package with -m=2 and maps the diagnostics onto
// its hotpath functions. Returns findings and the number of hotpath
// functions checked.
func checkPackage(lp *loader.ListPkg, importcfg, objOut string) ([]Finding, int, error) {
	fset := token.NewFileSet()
	var (
		files  []string
		ranges []hotRange
		allows []*allowDir
	)
	for _, name := range lp.GoFiles {
		path := filepath.Join(lp.Dir, name)
		files = append(files, path)
		af, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, 0, err
		}
		for _, decl := range af.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				if strings.HasPrefix(strings.TrimPrefix(c.Text, "//"), hotpathDirective) {
					ranges = append(ranges, hotRange{
						name:  fd.Name.Name,
						file:  path,
						start: fset.Position(fd.Pos()).Line,
						end:   fset.Position(fd.End()).Line,
					})
					break
				}
			}
		}
		for _, cg := range af.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				if !strings.HasPrefix(text, "lint:allow") {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, "lint:allow"))
				if len(fields) >= 2 && fields[0] == "hotpathescape" {
					allows = append(allows, &allowDir{file: path, line: fset.Position(c.Pos()).Line})
				}
			}
		}
	}
	if len(ranges) == 0 {
		return nil, 0, nil
	}

	args := append([]string{"tool", "compile",
		"-p", lp.ImportPath, "-importcfg", importcfg, "-m=2", "-o", objOut}, files...)
	cmd := exec.Command("go", args...)
	cmd.Dir = lp.Dir
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Run(); err != nil {
		return nil, 0, fmt.Errorf("escapecheck: compiling %s: %v\n%s", lp.ImportPath, err, out.String())
	}

	findings := diagnose(out.Bytes(), ranges, allows)
	for _, a := range allows {
		if !a.used {
			findings = append(findings, Finding{
				File: a.file, Line: a.line, Func: "",
				Message: "stale //lint:allow hotpathescape: no escape diagnostic here; delete the directive",
			})
		}
	}
	return findings, len(ranges), nil
}

// diagLine matches one compiler diagnostic: file:line:col: message.
var diagLine = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*)$`)

// escapeMessage classifies a -m=2 diagnostic, returning a normalized
// message for ones that mean "this function puts something on the heap".
func escapeMessage(msg string) (string, bool) {
	msg = strings.TrimSuffix(msg, ":")
	switch {
	case strings.HasPrefix(msg, "moved to heap: "):
		return msg, true
	case strings.HasSuffix(msg, "escapes to heap"):
		return msg, true
	}
	return "", false
}

// diagnose maps diagnostics onto hotpath ranges, applying and consuming
// allow directives.
func diagnose(out []byte, ranges []hotRange, allows []*allowDir) []Finding {
	byFile := make(map[string][]hotRange)
	for _, r := range ranges {
		byFile[r.file] = append(byFile[r.file], r)
	}
	allowAt := make(map[[2]interface{}]*allowDir)
	for _, a := range allows {
		allowAt[[2]interface{}{a.file, a.line}] = a
		allowAt[[2]interface{}{a.file, a.line + 1}] = a
	}

	var findings []Finding
	seen := make(map[string]bool)
	sc := bufio.NewScanner(bytes.NewReader(out))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := diagLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		file := m[1]
		line, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		msg, bad := escapeMessage(m[4])
		if !bad {
			continue
		}
		var fn string
		for _, r := range byFile[file] {
			if line >= r.start && line <= r.end {
				fn = r.name
				break
			}
		}
		if fn == "" {
			continue
		}
		key := fmt.Sprintf("%s:%d:%d", file, line, col)
		if seen[key] {
			// -m=2 describes one escape several ways at one position
			// ("moved to heap: x" and "x escapes to heap"); one finding.
			continue
		}
		seen[key] = true
		if a, ok := allowAt[[2]interface{}{file, line}]; ok {
			a.used = true
			continue
		}
		findings = append(findings, Finding{
			File: file, Line: line, Col: col, Func: fn,
			Message: fmt.Sprintf("%s in //livesim:hotpath function %s; hot-path data must stay on the stack or in pooled buffers (DESIGN.md §8)", msg, fn),
		})
	}
	return findings
}
