package escape

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module for Check to compile.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestCheck compiles a fixture module with -m=2 and verifies the full
// contract in one pass: an escape in a hotpath function is a finding, an
// escape in an unmarked function is not, a reasoned //lint:allow
// hotpathescape suppresses, and a stale allow is itself a finding.
func TestCheck(t *testing.T) {
	mod := writeModule(t, map[string]string{
		"go.mod": "module escapee2e\n\ngo 1.24\n",
		"hot.go": `package hot

// leak escapes its local: one finding.
//
//livesim:hotpath
func leak() *int {
	x := 42
	return &x
}

// clean is arithmetic on the stack: no finding.
//
//livesim:hotpath
func clean(a, b int) int {
	return a*b + a
}

// allowed escapes deliberately, with a reason: suppressed.
//
//livesim:hotpath
func allowed() []byte {
	//lint:allow hotpathescape deliberate fixture allocation
	return make([]byte, 8)
}

// stale carries an allow with nothing to suppress: the directive is the
// finding.
//
//livesim:hotpath
func stale(a int) int {
	//lint:allow hotpathescape nothing escapes here any more
	return a + 1
}

// coldLeak escapes but is not marked hotpath: no finding.
func coldLeak() *int {
	y := 7
	return &y
}
`,
	})

	findings, stats, err := Check(mod, "./...")
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	for _, f := range findings {
		t.Logf("finding: %s", f)
	}
	if stats.Packages != 1 || stats.Functions != 4 {
		t.Errorf("want stats {1 package, 4 hotpath functions}, got %+v", stats)
	}
	var gotLeak, gotStale int
	for _, f := range findings {
		switch {
		case f.Func == "leak" && strings.Contains(f.Message, "heap"):
			gotLeak++
		case strings.Contains(f.Message, "stale //lint:allow hotpathescape"):
			gotStale++
		default:
			t.Errorf("unexpected finding: %s", f)
		}
	}
	if gotLeak != 1 {
		t.Errorf("want 1 escape finding in leak, got %d", gotLeak)
	}
	if gotStale != 1 {
		t.Errorf("want 1 stale-allow finding, got %d", gotStale)
	}
}

// TestCheckNoHotpath: a module with no hotpath directives compiles nothing
// and reports nothing.
func TestCheckNoHotpath(t *testing.T) {
	mod := writeModule(t, map[string]string{
		"go.mod": "module escapee2e\n\ngo 1.24\n",
		"cold.go": `package cold

func Leak() *int {
	x := 1
	return &x
}
`,
	})
	findings, stats, err := Check(mod, "./...")
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if len(findings) != 0 || stats.Packages != 0 {
		t.Errorf("want no findings and no packages, got %d findings, %+v", len(findings), stats)
	}
}
