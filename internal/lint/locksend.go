package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

// Locksend enforces the fan-out invariant from DESIGN.md §5a: no blocking
// operation — channel send, time.Sleep, network I/O, or acquiring another
// lock — may happen while a sync.Mutex or sync.RWMutex is held. The rtmp
// fan-out rewrite (103→2 allocs/frame, Fig. 14) depends on membership locks
// never being held across the per-viewer channel sends; a regression here
// reintroduces the head-of-line blocking the paper's §5 measurements rule
// out, and -race cannot see it because it is a liveness bug, not a data
// race.
//
// The analysis is intraprocedural and syntactic about control flow: within
// each function body it tracks, statement by statement, which mutexes are
// held (keyed by the receiver expression, e.g. "s.mu"), treating
// `defer mu.Unlock()` as holding the lock until the function returns.
// Receiver keys are normalized through embedded-struct promotion (see
// lockclass.go), so `e.Lock()` on a struct embedding a sync.Mutex and
// `e.Mutex.Unlock()` pair up instead of leaving a phantom held lock.
// Read locks (RLock) are tracked the same way — readers block writers, so
// a blocking operation under an RLock stalls the whole fan-out just as
// effectively. Function literals are analyzed as separate roots with an
// empty lock set, since they run at call time, not at definition time.
var Locksend = &analysis.Analyzer{
	Name: "locksend",
	Doc: "flags channel sends, time.Sleep, network I/O, and nested lock " +
		"acquisition while a sync.Mutex/RWMutex is held or read-held (the " +
		"fan-out invariant of DESIGN.md §5a)",
	Run: runLocksend,
}

func runLocksend(pass *analysis.Pass) (interface{}, error) {
	ls := &locksendPass{pass: pass, tracker: newLockTracker(pass)}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					ls.checkStmts(fn.Body.List, map[string]token.Pos{})
				}
			case *ast.FuncLit:
				ls.checkStmts(fn.Body.List, map[string]token.Pos{})
			}
			return true
		})
	}
	return nil, nil
}

type locksendPass struct {
	pass    *analysis.Pass
	tracker *lockTracker
}

// mutexOp returns the lock operation a call expression performs, if any,
// with the receiver key normalized through embedded-struct promotion.
func (ls *locksendPass) mutexOp(call *ast.CallExpr) (mutexCall, bool) {
	return ls.tracker.mutexOp(call)
}

// checkStmts walks a statement list in order, maintaining the held-lock set.
// Nested blocks get a copy of the set: an unlock on one branch does not
// release the lock for the code after the branch (the common
// `if cond { mu.Unlock(); return }` early-exit stays precise because the
// flagged statements are the ones syntactically after the Lock with no
// unconditional Unlock between).
func (ls *locksendPass) checkStmts(stmts []ast.Stmt, held map[string]token.Pos) {
	for _, stmt := range stmts {
		// Lock bookkeeping first: a standalone mu.Lock()/mu.Unlock() call.
		if es, ok := stmt.(*ast.ExprStmt); ok {
			if call, ok := es.X.(*ast.CallExpr); ok {
				if op, ok := ls.mutexOp(call); ok {
					if op.acquire {
						if len(held) > 0 {
							for k, pos := range held {
								ls.pass.Reportf(call.Pos(),
									"acquiring %s while %s is held (locked at %s); nested locking on the fan-out path risks deadlock and head-of-line blocking",
									op.recvKey, k, ls.pass.Position(pos))
							}
						}
						held[op.recvKey] = op.pos
					} else {
						delete(held, op.recvKey)
					}
					continue
				}
			}
		}
		// defer mu.Unlock() keeps the lock held for the remainder of the
		// function, so it is deliberately NOT removed from the set.
		if ds, ok := stmt.(*ast.DeferStmt); ok {
			if op, ok := ls.mutexOp(ds.Call); ok && !op.acquire {
				continue
			}
		}
		ls.checkStmt(stmt, held)
	}
}

// checkStmt recurses into one statement: compound statements descend with a
// copy of the held set; leaves are scanned for blocking operations.
func (ls *locksendPass) checkStmt(stmt ast.Stmt, held map[string]token.Pos) {
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		ls.checkStmts(s.List, copyHeld(held))
	case *ast.IfStmt:
		if s.Init != nil {
			ls.checkStmt(s.Init, held)
		}
		ls.checkCond(s.Cond, held)
		ls.checkStmts(s.Body.List, copyHeld(held))
		if s.Else != nil {
			ls.checkStmt(s.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			ls.checkStmt(s.Init, held)
		}
		if s.Cond != nil {
			ls.checkCond(s.Cond, held)
		}
		ls.checkStmts(s.Body.List, copyHeld(held))
	case *ast.RangeStmt:
		ls.checkStmts(s.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				ls.checkStmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				ls.checkStmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				if len(held) > 0 && cc.Comm != nil {
					ls.flagBlocking(cc.Comm, held)
				}
				ls.checkStmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.LabeledStmt:
		ls.checkStmt(s.Stmt, held)
	case *ast.GoStmt, *ast.DeferStmt:
		// The spawned/deferred body runs outside this lock region; function
		// literals are analyzed as separate roots.
	default:
		if len(held) > 0 {
			ls.flagBlocking(stmt, held)
		}
	}
}

// checkCond scans a condition expression for blocking operations (rare, but
// `case <-ch` style receives in conditions would hide here).
func (ls *locksendPass) checkCond(expr ast.Expr, held map[string]token.Pos) {
	if len(held) > 0 {
		ls.flagBlocking(expr, held)
	}
}

// flagBlocking inspects one leaf statement or expression for operations
// that must not happen under a lock. Function literals are skipped: they
// execute at call time, under whatever locks the caller then holds.
func (ls *locksendPass) flagBlocking(n ast.Node, held map[string]token.Pos) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			ls.report(e.Pos(), "channel send", held)
		case *ast.CallExpr:
			if op, ok := ls.mutexOp(e); ok && op.acquire {
				ls.report(e.Pos(), "acquiring "+op.recvKey, held)
				return false
			}
			if name, ok := ls.blockingCall(e); ok {
				ls.report(e.Pos(), name, held)
			}
		}
		return true
	})
}

// netBlocking names the net / net/http operations that block on the wire.
// An allowlist, because those packages are full of pure accessors
// (Addr.String, Request.Context, …) that are fine to call under a lock.
var netBlocking = map[string]bool{
	"Dial": true, "DialContext": true, "DialTimeout": true, "DialTCP": true,
	"DialUDP": true, "DialIP": true, "DialUnix": true,
	"Listen": true, "ListenPacket": true, "ListenTCP": true, "ListenUDP": true,
	"Accept": true, "AcceptTCP": true, "AcceptUnix": true,
	"Read": true, "ReadFrom": true, "ReadFromUDP": true, "ReadMsgUDP": true,
	"Write": true, "WriteTo": true, "WriteToUDP": true, "WriteMsgUDP": true,
	"Get": true, "Post": true, "PostForm": true, "Head": true, "Do": true,
	"RoundTrip": true, "Serve": true, "ServeTLS": true,
	"ListenAndServe": true, "ListenAndServeTLS": true, "Shutdown": true,
	"LookupHost": true, "LookupIP": true, "LookupAddr": true, "LookupCNAME": true,
}

// blockingCall reports whether call is time.Sleep or blocking network I/O
// (a net / net/http dial, read, write, serve, or request).
func (ls *locksendPass) blockingCall(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := ls.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", false
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Sleep" {
			return "time.Sleep", true
		}
	case "net", "net/http":
		if netBlocking[fn.Name()] {
			return "network I/O (" + fn.Pkg().Name() + "." + fn.Name() + ")", true
		}
	}
	return "", false
}

func (ls *locksendPass) report(pos token.Pos, what string, held map[string]token.Pos) {
	for k, lpos := range held {
		ls.pass.Reportf(pos,
			"%s while %s is held (locked at %s); release the lock first — snapshot under the lock, operate on the copy (DESIGN.md §5a)",
			what, k, ls.pass.Position(lpos))
	}
}

func copyHeld(held map[string]token.Pos) map[string]token.Pos {
	out := make(map[string]token.Pos, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}
