package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// Ctxplumb enforces context plumbing on request paths. Two failure modes
// motivated it: (1) http.Get/Post/NewRequest carry no context, so an edge
// outage turns into an unbounded hang that the resilience layer's
// per-attempt timeouts never see; (2) context.Background() deep inside a
// request-handling function detaches the call from the caller's deadline
// and cancellation, which is how drain/failover (DESIGN.md §6.1) stops
// in-flight work. The second check only fires inside functions that already
// receive a context.Context or *http.Request parameter — top-level setup
// code legitimately starts from Background.
var Ctxplumb = &analysis.Analyzer{
	Name: "ctxplumb",
	Doc: "flags context-free HTTP request construction (http.Get/Post/" +
		"NewRequest), context.Background()/TODO() inside functions that " +
		"already have a context to derive from, and (in CDN data-plane " +
		"packages) functions that declare a context.Context as _",
	Run: runCtxplumb,
}

// ctxIgnoredPackages (by final import-path element) are the CDN data-plane
// packages where every function that accepts a context must actually consult
// it: a request-path method that blanks its context (`_ context.Context`)
// cannot honor cancellation before lock acquisition, which is how a dead
// origin turns polls into pile-ups. Origin.ChunkList ignoring its context —
// fixed alongside crash recovery — is the motivating defect.
var ctxIgnoredPackages = map[string]bool{
	"cdn": true,
	"hls": true,
}

// ctxFreeHTTP maps the context-free constructors to their replacements.
var ctxFreeHTTP = map[string]string{
	"Get":        "http.NewRequestWithContext + client.Do",
	"Post":       "http.NewRequestWithContext + client.Do",
	"PostForm":   "http.NewRequestWithContext + client.Do",
	"Head":       "http.NewRequestWithContext + client.Do",
	"NewRequest": "http.NewRequestWithContext",
}

func runCtxplumb(pass *analysis.Pass) (interface{}, error) {
	checkIgnored := ctxIgnoredPackages[pathBase(pass.Pkg.Path())]
	for _, file := range pass.Files {
		if checkIgnored {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if ok {
					reportIgnoredCtx(pass, fd)
				}
			}
		}
		// Walk with a full node stack (ast.Inspect delivers nil when
		// leaving a node, matching each push with a pop) so the
		// Background/TODO check can ask whether an enclosing function has a
		// context to derive from.
		var stack []ast.Node
		walk := func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || !isPkgFunc(fn) {
				return true
			}
			switch fn.Pkg().Path() {
			case "net/http":
				if repl, bad := ctxFreeHTTP[fn.Name()]; bad {
					pass.Reportf(call.Pos(),
						"http.%s sends a request with no context (no deadline, no cancellation on drain/failover); use %s",
						fn.Name(), repl)
				}
			case "context":
				if fn.Name() == "Background" || fn.Name() == "TODO" {
					if enclosingHasContext(pass, stack) {
						pass.Reportf(call.Pos(),
							"context.%s() inside a function that receives a context detaches this call from the caller's deadline and cancellation; derive from the incoming ctx (or r.Context())",
							fn.Name())
					}
				}
			}
			return true
		}
		ast.Inspect(file, walk)
	}
	return nil, nil
}

// reportIgnoredCtx flags a function that declares a context.Context
// parameter as the blank identifier. Accepting a context and discarding it
// is worse than not accepting one: callers assume cancellation works.
func reportIgnoredCtx(pass *analysis.Pass, fd *ast.FuncDecl) {
	if fd.Type.Params == nil {
		return
	}
	for _, field := range fd.Type.Params.List {
		tv, ok := pass.TypesInfo.Types[field.Type]
		if !ok || !isContextType(tv.Type) {
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				pass.Reportf(name.Pos(),
					"%s declares a context.Context it ignores (_); honor cancellation (ctx.Err() before lock acquisition) or thread it to callees",
					fd.Name.Name)
			}
		}
	}
}

// enclosingHasContext reports whether any function on the stack (innermost
// function literal included — it closes over the outer parameters) declares
// a context.Context or *http.Request parameter.
func enclosingHasContext(pass *analysis.Pass, stack []ast.Node) bool {
	for _, n := range stack {
		var ft *ast.FuncType
		switch f := n.(type) {
		case *ast.FuncDecl:
			ft = f.Type
		case *ast.FuncLit:
			ft = f.Type
		}
		if ft == nil || ft.Params == nil {
			continue
		}
		for _, field := range ft.Params.List {
			tv, ok := pass.TypesInfo.Types[field.Type]
			if !ok {
				continue
			}
			if isContextType(tv.Type) || isHTTPRequestPtr(tv.Type) {
				return true
			}
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func isHTTPRequestPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "Request"
}
