package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

// Atomiccounter flags variables (struct fields or package-level vars) that
// are accessed through sync/atomic in one place and with plain reads or
// writes in another, anywhere in the same package. Mixed access is a data
// race that -race only catches when both sides happen to execute in the
// sampled interleaving; the stats counters exported to EXPERIMENTS.md are
// read by scrapers while the hot path increments them, so every counter
// must pick one discipline. (Fields of type atomic.Int64 etc. are type-safe
// and out of scope — this analyzer is about the address-based
// atomic.AddInt64(&x.n, 1) style, which the repo uses on hot paths to keep
// struct layout flat.)
var Atomiccounter = &analysis.Analyzer{
	Name: "atomiccounter",
	Doc: "flags fields accessed both via sync/atomic and via plain " +
		"reads/writes in the same package (a data race -race sees only " +
		"probabilistically)",
	Run: runAtomiccounter,
}

func runAtomiccounter(pass *analysis.Pass) (interface{}, error) {
	// Pass 1: find every variable whose address is taken for a sync/atomic
	// call, and remember the &x positions that belong to those calls so
	// pass 2 does not flag them as plain accesses.
	atomicVars := make(map[*types.Var]token.Pos) // var -> first atomic use
	atomicArgPos := make(map[token.Pos]bool)     // positions of &x args inside atomic calls

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(pass, call) || len(call.Args) == 0 {
				return true
			}
			// All address-based sync/atomic functions take the address as
			// the first argument.
			if un, ok := call.Args[0].(*ast.UnaryExpr); ok && un.Op == token.AND {
				if v := referencedVar(pass, un.X); v != nil {
					if _, seen := atomicVars[v]; !seen {
						atomicVars[v] = call.Pos()
					}
					atomicArgPos[un.X.Pos()] = true
				}
			}
			return true
		})
	}
	if len(atomicVars) == 0 {
		return nil, nil
	}

	// Pass 2: any other mention of those variables is a plain access.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var v *types.Var
			switch e := n.(type) {
			case *ast.SelectorExpr:
				v = referencedVar(pass, e)
			case *ast.Ident:
				// Only package-level vars: field *uses* always appear under
				// a SelectorExpr; a bare ident that resolves to a field is
				// its declaration or a composite-literal key.
				if obj, ok := pass.TypesInfo.Uses[e].(*types.Var); ok && !obj.IsField() {
					v = obj
				}
			default:
				return true
			}
			if v != nil && !atomicArgPos[n.Pos()] {
				if first, ok := atomicVars[v]; ok {
					pass.Reportf(n.Pos(),
						"%s is accessed with sync/atomic at %s; this plain access races with it — use atomic.Load/Store here too",
						v.Name(), pass.Position(first))
				}
			}
			return true
		})
	}
	return nil, nil
}

// isAtomicCall reports whether call invokes a sync/atomic package function.
func isAtomicCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" && isPkgFunc(fn)
}

// referencedVar resolves an expression to the struct field or package-level
// variable it names, or nil.
func referencedVar(pass *analysis.Pass, e ast.Expr) *types.Var {
	switch e := e.(type) {
	case *ast.SelectorExpr:
		if selInfo, ok := pass.TypesInfo.Selections[e]; ok {
			if v, ok := selInfo.Obj().(*types.Var); ok && v.IsField() {
				return v
			}
			return nil
		}
		// Qualified package-level var (pkg.Counter).
		if v, ok := pass.TypesInfo.Uses[e.Sel].(*types.Var); ok && !v.IsField() {
			return v
		}
	case *ast.Ident:
		if v, ok := pass.TypesInfo.Uses[e].(*types.Var); ok && !v.IsField() {
			// Restrict to package-level vars: locals cannot be shared
			// unless captured, and flagging locals drowns the signal.
			if v.Parent() == pass.Pkg.Scope() {
				return v
			}
		}
	}
	return nil
}
