package analysis

import (
	"go/token"
	"go/types"
	"testing"
)

// testFact is a minimal gob-encodable fact.
type testFact struct{ N int }

func (*testFact) AFact() {}

// newMethod builds a *types.Func method on a named type in pkg, the object
// shape facts are most often attached to.
func newMethod(pkg *types.Package, typeName, method string, ptrRecv bool) *types.Func {
	tn := types.NewTypeName(token.NoPos, pkg, typeName, nil)
	named := types.NewNamed(tn, types.NewStruct(nil, nil), nil)
	var recvType types.Type = named
	if ptrRecv {
		recvType = types.NewPointer(named)
	}
	recv := types.NewVar(token.NoPos, pkg, "r", recvType)
	sig := types.NewSignatureType(recv, nil, nil, nil, nil, false)
	return types.NewFunc(token.NoPos, pkg, method, sig)
}

// TestObjectFactRoundTrip exports a fact against an object from one
// types.Package, serializes the store, and imports it against a distinct
// types.Object with the same structure — the source-checked vs
// export-data-imported identity split the structural keys exist to bridge.
func TestObjectFactRoundTrip(t *testing.T) {
	RegisterFactTypes([]*Analyzer{{Name: "t", FactTypes: []Fact{(*testFact)(nil)}}})

	srcPkg := types.NewPackage("repro/internal/x", "x")
	exporter := &Pass{Pkg: srcPkg, Facts: NewFactStore()}
	exporter.ExportObjectFact(newMethod(srcPkg, "T", "M", true), &testFact{N: 7})
	exporter.ExportPackageFact(&testFact{N: 9})

	data, err := exporter.Facts.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}

	store := NewFactStore()
	if err := store.Decode(data); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if store.Len() != 2 {
		t.Fatalf("want 2 facts after round-trip, got %d", store.Len())
	}

	// A dependent unit sees the same declarations through export data:
	// fresh types.Package and types.Object values, same structure.
	impPkg := types.NewPackage("repro/internal/x", "x")
	importer := &Pass{Pkg: types.NewPackage("repro/internal/y", "y"), Facts: store}

	var got testFact
	if !importer.ImportObjectFact(newMethod(impPkg, "T", "M", true), &got) {
		t.Fatal("object fact not found through a structurally equal object")
	}
	if got.N != 7 {
		t.Errorf("object fact N = %d, want 7", got.N)
	}
	var pf testFact
	if !importer.ImportPackageFact(impPkg, &pf) {
		t.Fatal("package fact not found")
	}
	if pf.N != 9 {
		t.Errorf("package fact N = %d, want 9", pf.N)
	}

	// A value receiver is a different method identity: no match.
	if importer.ImportObjectFact(newMethod(impPkg, "T", "M", false), &got) {
		t.Error("value-receiver lookup matched a pointer-receiver fact")
	}
}

// TestDecodeEmpty: the .vetx file of a unit that exported nothing merges
// nothing and is not an error.
func TestDecodeEmpty(t *testing.T) {
	store := NewFactStore()
	if err := store.Decode(nil); err != nil {
		t.Fatalf("Decode(nil): %v", err)
	}
	if store.Len() != 0 {
		t.Errorf("want empty store, got %d facts", store.Len())
	}
}

// TestPkgKeyTestVariant: the bracketed test-variant suffix is stripped so
// the plain and test units address the same facts.
func TestPkgKeyTestVariant(t *testing.T) {
	if got := pkgKey("repro/internal/x [repro/internal/x.test]"); got != "repro/internal/x" {
		t.Errorf("pkgKey test variant = %q", got)
	}
	if got := pkgKey("repro/internal/x"); got != "repro/internal/x" {
		t.Errorf("pkgKey plain = %q", got)
	}
}
