// Package analysis is a minimal, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis driver contract, just large enough to host
// this repo's custom analyzers. The container that builds this repo has no
// module proxy access, so vendoring x/tools is not an option; the five
// analyzers in internal/lint only need the (Analyzer, Pass, Diagnostic)
// triple plus type information, all of which the standard library's go/ast
// and go/types provide. The shapes mirror x/tools so the analyzers could be
// ported to the real framework by changing only import paths.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one analysis: a name (used in diagnostics and in
// //lint:allow directives), documentation, and the Run function.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and suppression
	// directives. It must be a valid Go identifier.
	Name string

	// Doc is the one-paragraph description shown by `vetlivesim -help`.
	Doc string

	// Run applies the analyzer to a single package. Diagnostics are
	// delivered through pass.Report; the result value is unused by this
	// driver and exists only for x/tools signature compatibility.
	Run func(*Pass) (interface{}, error)

	// FactTypes lists the concrete fact types this analyzer exports, one
	// zero value per type, so the driver can register them for gob
	// serialization across units (see facts.go).
	FactTypes []Fact
}

// Diagnostic is a finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Facts is the cross-unit fact store (nil when the driver propagates
	// no facts; the Import/Export methods then degrade to no-ops).
	Facts *FactStore

	// Report delivers a diagnostic to the driver.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Position resolves a token.Pos against the pass's FileSet.
func (p *Pass) Position(pos token.Pos) token.Position {
	return p.Fset.Position(pos)
}
