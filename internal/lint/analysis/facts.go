package analysis

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"
	"reflect"
	"sort"
	"strings"
	"sync"
)

// Fact is a typed datum an analyzer attaches to an object or package in one
// compilation unit and reads back when analyzing a dependent unit — the
// x/tools facts contract. Concrete fact types must be gob-serializable
// (exported fields) because the vet driver round-trips them through .vetx
// files between `go vet` invocations.
type Fact interface {
	AFact() // marker method, discourages accidental implementations
}

// FactKey addresses one fact: the declaring package's import path, a stable
// object key within it ("" for package-level facts), and the fact's type
// name. Objects are keyed structurally — "Name" for package-level
// functions/vars, "(T).M" / "(*T).M" for methods — so a fact exported while
// type-checking a package from source is found again when the same object is
// reached through gc export data in a dependent package, where the
// types.Object identity differs but the structure does not.
type FactKey struct {
	Pkg  string // import path
	Obj  string // object key, "" for a package fact
	Type string // fact type, e.g. "*lint.LockSet"
}

// ObjectKey renders the structural key for obj. It covers the object kinds
// facts are attached to (package-level funcs, vars, types, and methods);
// other objects get a best-effort name.
func ObjectKey(obj types.Object) string {
	if f, ok := obj.(*types.Func); ok {
		if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
			t := sig.Recv().Type()
			ptr := ""
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
				ptr = "*"
			}
			if n, ok := t.(*types.Named); ok {
				return "(" + ptr + n.Obj().Name() + ")." + f.Name()
			}
		}
	}
	return obj.Name()
}

// pkgKey normalizes an import path for fact addressing. Under `go vet` the
// test variant of a package is type-checked as "path [path.test]"; facts
// written by that unit and read back by its dependents must agree on the
// key, and the bracketed suffix would also split it from the plain unit, so
// it is stripped.
func pkgKey(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		return path[:i]
	}
	return path
}

// FactStore holds the facts of every unit analyzed (or imported) so far.
// One store is shared across an entire standalone run, packages analyzed in
// dependency order; under the unitchecker protocol each invocation seeds a
// fresh store from the dependency .vetx files and serializes the result for
// its own importers.
type FactStore struct {
	mu    sync.Mutex
	facts map[FactKey]Fact
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{facts: make(map[FactKey]Fact)}
}

func factType(f Fact) string { return reflect.TypeOf(f).String() }

// RegisterFactTypes makes the concrete fact types of the analyzers known to
// gob so stores containing them can be encoded and decoded. Call once per
// process before Encode/Decode.
func RegisterFactTypes(analyzers []*Analyzer) {
	for _, a := range analyzers {
		for _, f := range a.FactTypes {
			gob.Register(f)
		}
	}
}

func (s *FactStore) put(pkg, obj string, fact Fact) {
	s.mu.Lock()
	s.facts[FactKey{Pkg: pkgKey(pkg), Obj: obj, Type: factType(fact)}] = fact
	s.mu.Unlock()
}

// get copies the stored fact (if any) into the pointed-to value of fact.
func (s *FactStore) get(pkg, obj string, fact Fact) bool {
	s.mu.Lock()
	stored, ok := s.facts[FactKey{Pkg: pkgKey(pkg), Obj: obj, Type: factType(fact)}]
	s.mu.Unlock()
	if !ok {
		return false
	}
	dv := reflect.ValueOf(fact)
	sv := reflect.ValueOf(stored)
	if dv.Kind() != reflect.Ptr || sv.Kind() != reflect.Ptr || dv.Type() != sv.Type() {
		return false
	}
	dv.Elem().Set(sv.Elem())
	return true
}

// storeEntry is the gob wire form of one fact.
type storeEntry struct {
	Key  FactKey
	Fact Fact
}

// Encode serializes the full store. Each unit re-exports the facts it
// imported along with its own, so a dependent unit only needs the .vetx
// files of its direct imports to see the transitive closure.
func (s *FactStore) Encode() ([]byte, error) {
	s.mu.Lock()
	entries := make([]storeEntry, 0, len(s.facts))
	for k, f := range s.facts {
		entries = append(entries, storeEntry{Key: k, Fact: f})
	}
	s.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i].Key, entries[j].Key
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		if a.Obj != b.Obj {
			return a.Obj < b.Obj
		}
		return a.Type < b.Type
	})
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(entries); err != nil {
		return nil, fmt.Errorf("encoding facts: %v", err)
	}
	return buf.Bytes(), nil
}

// Decode merges serialized facts into the store. Empty input (the .vetx
// file of a unit that exported nothing, or of a run of an older tool
// version) merges nothing and is not an error.
func (s *FactStore) Decode(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	var entries []storeEntry
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&entries); err != nil {
		return fmt.Errorf("decoding facts: %v", err)
	}
	s.mu.Lock()
	for _, e := range entries {
		s.facts[e.Key] = e.Fact
	}
	s.mu.Unlock()
	return nil
}

// Len reports the number of stored facts.
func (s *FactStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.facts)
}

// ExportObjectFact attaches fact to obj (a function, method, var, or type
// of the package under analysis).
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if p.Facts == nil || obj == nil || obj.Pkg() == nil {
		return
	}
	p.Facts.put(obj.Pkg().Path(), ObjectKey(obj), fact)
}

// ImportObjectFact copies the fact of the given type attached to obj — by
// this unit or by the unit that analyzed obj's declaring package — into
// fact, reporting whether one was found.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	if p.Facts == nil || obj == nil || obj.Pkg() == nil {
		return false
	}
	return p.Facts.get(obj.Pkg().Path(), ObjectKey(obj), fact)
}

// ExportPackageFact attaches fact to the package under analysis.
func (p *Pass) ExportPackageFact(fact Fact) {
	if p.Facts == nil || p.Pkg == nil {
		return
	}
	p.Facts.put(p.Pkg.Path(), "", fact)
}

// ImportPackageFact copies the package-level fact of the given type for pkg
// (typically an import of the package under analysis) into fact.
func (p *Pass) ImportPackageFact(pkg *types.Package, fact Fact) bool {
	if p.Facts == nil || pkg == nil {
		return false
	}
	return p.Facts.get(pkg.Path(), "", fact)
}
