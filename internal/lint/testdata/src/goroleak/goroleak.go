// Fixture for the goroleak analyzer: `go` statements whose bodies provably
// never terminate, and the termination shapes that clear them.
package goroleak

import (
	"context"
	"os"
	"sync"
)

// spinLit spawns a bare busy loop: nothing can ever stop it.
func spinLit() {
	go func() { // want `no provable termination path`
		for {
		}
	}()
}

// blockLit spawns select{}: blocked forever by construction.
func blockLit() {
	go func() { // want `no provable termination path`
		select {}
	}()
}

// run never returns; spawnRun is flagged at the spawn site, where the stop
// signal would have to be threaded in.
func run() {
	for {
	}
}

func spawnRun() {
	go run() // want `spawns run, which never returns`
}

// viaCall never returns because it unconditionally calls run; spawning it
// is flagged through the NeverReturns fixpoint.
func viaCall() {
	run()
}

func spawnViaCall() {
	go viaCall() // want `spawns viaCall, which never returns`
}

// selectBreakTrap is the classic mistake: `break` inside a select case
// exits the select, not the for, so the loop is still unconditional.
func selectBreakTrap(ch chan int) {
	go func() { // want `no provable termination path`
		for {
			select {
			case <-ch:
				break
			}
		}
	}()
}

// ctxLoop exits when the context is cancelled: terminates.
func ctxLoop(ctx context.Context, ch chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-ch:
			}
		}
	}()
}

// labeledBreak exits the outer loop from inside the select: terminates.
func labeledBreak(ch chan int) {
	go func() {
	loop:
		for {
			select {
			case v := <-ch:
				if v == 0 {
					break loop
				}
			}
		}
	}()
}

// bounded runs a conditional loop: terminates.
func bounded(n int) {
	go func() {
		for i := 0; i < n; i++ {
		}
	}()
}

// accounted is WaitGroup-accounted: Wait() surfaces it at join points, so
// the spawn is exempt even though the loop is unconditional.
func accounted(wg *sync.WaitGroup, ch chan int) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			<-ch
		}
	}()
}

// fatalLoop ends the process from inside the loop: not a leak.
func fatalLoop(ch chan error) {
	go func() {
		for {
			if err := <-ch; err != nil {
				os.Exit(1)
			}
		}
	}()
}
