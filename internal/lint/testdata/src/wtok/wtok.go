// Fixture for the walltime analyzer, negative case: "wtok" is not a
// restricted package, so wall-clock reads are fine here (CLI entry points,
// benchmarks, and infrastructure legitimately use real time).
package wtok

import (
	"math/rand"
	"time"
)

func stamp() time.Time {
	return time.Now()
}

func wait() {
	time.Sleep(time.Millisecond)
}

func jitter() float64 {
	return rand.Float64()
}
