// Fixture for the lockorder analyzer: acquisition-order cycles within one
// package. Classes are named by field identity, so the want patterns match
// on the type and field names.
package lockorder

import "sync"

type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }
type C struct{ mu sync.RWMutex }
type D struct{ mu sync.Mutex }
type E struct{ mu sync.Mutex }
type F struct{ mu sync.Mutex }
type G struct{ mu sync.Mutex }

// orderAB and orderBA acquire the same two classes in opposite orders: the
// classic AB/BA inversion. The cycle is reported once, at the first edge
// that closes it.
func orderAB(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock() // want `lock-order cycle: .*lockorder\.A\.mu → .*lockorder\.B\.mu → .*lockorder\.A\.mu`
	b.mu.Unlock()
	a.mu.Unlock()
}

func orderBA(a *A, b *B) {
	b.mu.Lock()
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Unlock()
}

// nestedSameClass locks two instances of one class: whichever runtime pair
// the instances are, the classes alias, so this deadlocks the moment x and
// y are the same object (or two goroutines hold them in opposite roles).
func nestedSameClass(x, y *A) {
	x.mu.Lock()
	y.mu.Lock() // want `acquired while an instance of it is already held`
	y.mu.Unlock()
	x.mu.Unlock()
}

// lockE acquires E internally; holdDcallE orders D before E through the
// call, holdEcallD orders them directly the other way. The cycle closes at
// the call site — an interprocedural edge, not a visible Lock.
func lockE(e *E) {
	e.mu.Lock()
	e.mu.Unlock()
}

func holdDcallE(d *D, e *E) {
	d.mu.Lock()
	lockE(e) // want `lock-order cycle: .*lockorder\.D\.mu → .*lockorder\.E\.mu → .*lockorder\.D\.mu`
	d.mu.Unlock()
}

func holdEcallD(d *D, e *E) {
	e.mu.Lock()
	d.mu.Lock()
	d.mu.Unlock()
	e.mu.Unlock()
}

// consistent1 and consistent2 nest F before G on every path: an edge, but
// no cycle, so no diagnostic.
func consistent1(f *F, g *G) {
	f.mu.Lock()
	g.mu.Lock()
	g.mu.Unlock()
	f.mu.Unlock()
}

func consistent2(f *F, g *G) {
	f.mu.Lock()
	g.mu.Lock()
	g.mu.Unlock()
	f.mu.Unlock()
}

// sequentialRev acquires G then F — the reverse of consistent1/2 — but only
// after releasing G: no overlap, no edge, no cycle.
func sequentialRev(f *F, g *G) {
	g.mu.Lock()
	g.mu.Unlock()
	f.mu.Lock()
	f.mu.Unlock()
}

// readNested read-locks two instances of one RWMutex class: readers share,
// so the self-edge is not a deadlock and is not reported.
func readNested(x, y *C) {
	x.mu.RLock()
	y.mu.RLock()
	y.mu.RUnlock()
	x.mu.RUnlock()
}

type H struct {
	mu sync.Mutex
	fn func()
}

func (h *H) lockH() {
	h.mu.Lock()
	h.mu.Unlock()
}

// register stores a callback that will acquire h.mu — later, on another
// stack. Constructing the closure while holding the lock orders nothing;
// without escaping-closure handling this would be a phantom self-cycle.
func (h *H) register() {
	h.mu.Lock()
	h.fn = func() { h.lockH() }
	h.mu.Unlock()
}
