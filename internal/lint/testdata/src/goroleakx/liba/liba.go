// Fixture dependency for the cross-package goroleak test: a function that
// provably never returns, exported to dependents as a NeverReturns fact.
package liba

// Forever blocks until process exit.
func Forever() {
	select {}
}

// Bounded returns; no fact is exported for it.
func Bounded(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += i
	}
	return total
}
