// Fixture for the cross-package goroleak test: spawning liba.Forever is
// flagged at the spawn site, through the imported NeverReturns fact — the
// loop is not visible in this package.
package libb

import "repro/internal/lint/testdata/src/goroleakx/liba"

// SpawnForever leaks: the spawned function never returns and no stop signal
// can reach it.
func SpawnForever() {
	go liba.Forever() // want `spawns Forever, which never returns`
}

// SpawnBounded terminates; no diagnostic.
func SpawnBounded() {
	go func() {
		_ = liba.Bounded(100)
	}()
}
