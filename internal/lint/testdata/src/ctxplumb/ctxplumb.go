// Fixture for the ctxplumb analyzer: context-free HTTP requests and
// context.Background inside request paths.
package ctxplumb

import (
	"context"
	"net/http"
)

func fetchBad(url string) (*http.Response, error) {
	return http.Get(url) // want `http\.Get sends a request with no context`
}

func buildBad(url string) (*http.Request, error) {
	return http.NewRequest("GET", url, nil) // want `http\.NewRequest sends a request with no context`
}

func handleBad(ctx context.Context) context.Context {
	_ = ctx
	return context.Background() // want `context\.Background\(\) inside a function that receives a context`
}

func handlerBad(w http.ResponseWriter, r *http.Request) {
	ctx := context.TODO() // want `context\.TODO\(\) inside a function that receives a context`
	_ = ctx
	_ = w
}

// workerBad: the literal itself has no context parameter, but it closes
// over a function that does — the caller's deadline is still the one lost.
func workerBad(ctx context.Context) {
	go func() {
		c := context.Background() // want `context\.Background\(\) inside a function that receives a context`
		_ = c
	}()
	_ = ctx
}

func fetchGood(ctx context.Context, client *http.Client, url string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, "GET", url, nil)
	if err != nil {
		return nil, err
	}
	return client.Do(req)
}

// setupGood has no incoming context: starting from Background is the only
// option for top-level wiring.
func setupGood() context.Context {
	return context.Background()
}

func handlerGood(w http.ResponseWriter, r *http.Request) {
	req, _ := http.NewRequestWithContext(r.Context(), "GET", "http://upstream/x", nil)
	_ = req
	_ = w
}
