// Fixture for the walltime analyzer, positive cases. The directory is named
// "delay" so the package path matches a restricted simulation package.
package delay

import (
	"math/rand"
	"time"
)

func stamp() time.Time {
	return time.Now() // want `time\.Now reads the wall clock`
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time\.Since reads the wall clock`
}

func wait() {
	time.Sleep(time.Second) // want `time\.Sleep reads the wall clock`
}

func pace(done chan struct{}) {
	t := time.NewTicker(time.Second) // want `time\.NewTicker reads the wall clock`
	defer t.Stop()
	select {
	case <-t.C:
	case <-done:
	}
}

func jitter() float64 {
	return rand.Float64() // want `rand\.Float64 uses the global math/rand source`
}

// okUses: pure time arithmetic, constants, and the seeded constructor path
// (what internal/rng wraps) are all fine.
func okUses(t time.Time) time.Time {
	r := rand.New(rand.NewSource(1))
	_ = r.Float64()
	return t.Add(time.Second)
}
