// Fixture for the //lint:allow driver: one properly suppressed finding, one
// directive naming an unknown analyzer, one directive with no reason. The
// driver test asserts on lint.Run's post-suppression findings directly.
package directives

import "sync"

type hub struct {
	mu sync.Mutex
	ch chan int
}

// allowedSend carries a reasoned directive: the locksend finding on the
// send must be suppressed.
func (h *hub) allowedSend() {
	h.mu.Lock()
	defer h.mu.Unlock()
	//lint:allow locksend fixture exercises suppression of a known analyzer
	h.ch <- 1
}

// unknownAnalyzer misspells the analyzer name: the directive itself must be
// flagged AND the send must still be reported.
func (h *hub) unknownAnalyzer() {
	h.mu.Lock()
	defer h.mu.Unlock()
	//lint:allow locksnd typo'd analyzer name
	h.ch <- 2
}

// missingReason gives no reason: the directive must be flagged and the send
// still reported.
func (h *hub) missingReason() {
	h.mu.Lock()
	defer h.mu.Unlock()
	//lint:allow locksend
	h.ch <- 3
}

// staleAllow suppresses nothing — no lock is held here — so the directive
// itself must be flagged as stale.
func (h *hub) staleAllow() {
	//lint:allow locksend the finding this once covered was fixed
	h.ch <- 4
}

// externalAllow names the compiler-assisted analyzer: a valid name, and
// exempt from this driver's stale check (cmd/escapecheck matches it).
func externalAllow() []byte {
	//lint:allow hotpathescape deliberate fixture allocation
	return make([]byte, 1)
}
