// Fixture for the walltime analyzer over the control plane. The directory is
// named "control" so the package path matches the restricted set: rate-limit
// refills, quota windows, and usage-rollup day keys must read the injected
// clock, or tenancy tests driven by a clock.Virtual would mix time bases.
package control

import "time"

type clock interface {
	Now() time.Time
}

type limiter struct {
	clk  clock
	last time.Time
}

func (l *limiter) allowBad() bool {
	elapsed := time.Since(l.last) // want `time\.Since reads the wall clock`
	return elapsed > time.Second
}

func (l *limiter) allowGood() bool {
	now := l.clk.Now()
	elapsed := now.Sub(l.last)
	l.last = now
	return elapsed > time.Second
}

func usageDayBad() string {
	return time.Now().UTC().Format("2006-01-02") // want `time\.Now reads the wall clock`
}

func usageDayGood(clk clock) string {
	return clk.Now().UTC().Format("2006-01-02")
}

func retryAfterOK(d time.Duration) time.Duration {
	// Pure duration arithmetic never touches the wall clock.
	if d < time.Second {
		d = time.Second
	}
	return d
}
