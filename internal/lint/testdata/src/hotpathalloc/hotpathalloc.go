// Fixture for the hotpathalloc analyzer: allocation-heavy constructs inside
// //livesim:hotpath functions.
package hotpathalloc

import "fmt"

//livesim:hotpath
func encodeBad(id string, seq int) []byte {
	key := fmt.Sprintf("%s/%d", id, seq) // want `fmt\.Sprintf allocates on the encodeBad hot path`
	return []byte(key)                   // want `\[\]byte\(string\) copies the payload on the encodeBad hot path`
}

//livesim:hotpath
func decodeBad(b []byte) string {
	return string(b) // want `string\(\[\]byte\) copies the payload on the decodeBad hot path`
}

//livesim:hotpath
func encodeClosureBad() []byte {
	var out []byte
	flush := func() {
		out = append(out, 0) // want `append to "out" captured by a closure on the encodeClosureBad hot path`
	}
	flush()
	return out
}

// encodeOK is not annotated: the same constructs are fine off the hot path.
func encodeOK(id string, seq int) []byte {
	return []byte(fmt.Sprintf("%s/%d", id, seq))
}

// encodeGood stays within the budget: append to a local (not captured),
// numeric conversions, caller-owned buffer.
//
//livesim:hotpath
func encodeGood(dst []byte, seq uint64) []byte {
	dst = append(dst, byte(seq))
	return dst
}
