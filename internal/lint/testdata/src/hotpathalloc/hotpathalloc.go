// Fixture for the hotpathalloc analyzer: allocation-heavy constructs inside
// //livesim:hotpath functions.
package hotpathalloc

import "fmt"

//livesim:hotpath
func encodeBad(id string, seq int) []byte {
	key := fmt.Sprintf("%s/%d", id, seq) // want `fmt\.Sprintf allocates on the encodeBad hot path`
	return []byte(key)                   // want `\[\]byte\(string\) copies the payload on the encodeBad hot path`
}

//livesim:hotpath
func decodeBad(b []byte) string {
	return string(b) // want `string\(\[\]byte\) copies the payload on the decodeBad hot path`
}

//livesim:hotpath
func encodeClosureBad() []byte {
	var out []byte
	flush := func() {
		out = append(out, 0) // want `append to "out" captured by a closure on the encodeClosureBad hot path`
	}
	flush()
	return out
}

// encodeOK is not annotated: the same constructs are fine off the hot path.
func encodeOK(id string, seq int) []byte {
	return []byte(fmt.Sprintf("%s/%d", id, seq))
}

// encodeGood stays within the budget: append to a local (not captured),
// numeric conversions, caller-owned buffer.
//
//livesim:hotpath
func encodeGood(dst []byte, seq uint64) []byte {
	dst = append(dst, byte(seq))
	return dst
}

// Timer-wheel-shaped cases: a per-shard bucket expiring timers through
// callbacks, as the event engine's fire path does.

type timer struct {
	owner uint64
	fn    func()
}

type bucket struct {
	timers  []timer
	expired []timer
}

// fireBad drains a slot but labels each fire with Sprintf and hands the
// expired batch to a closure that appends through the captured slice.
//
//livesim:hotpath
func (b *bucket) fireBad(tick int64) []string {
	var labels []string
	collect := func(t timer) {
		labels = append(labels, fmt.Sprintf("t%d@%d", t.owner, tick)) // want `append to "labels" captured by a closure on the fireBad hot path` `fmt\.Sprintf allocates on the fireBad hot path`
	}
	for _, t := range b.timers {
		collect(t)
	}
	return labels
}

// fireGood drains the same slot within budget: the expired batch reuses a
// scratch slice owned by the bucket, callbacks run directly, and the slot is
// recycled by re-slicing.
//
//livesim:hotpath
func (b *bucket) fireGood() {
	b.expired = append(b.expired[:0], b.timers...)
	b.timers = b.timers[:0]
	for i := range b.expired {
		b.expired[i].fn()
	}
}
