// Fixture for ctxplumb's ignored-context check, which is scoped to the CDN
// data-plane packages: a request-path function that declares a context it
// never consults cannot honor cancellation before acquiring locks.
package cdn

import (
	"context"
	"sync"
)

type store struct {
	mu sync.Mutex
	n  int
}

func (s *store) chunkListBad(_ context.Context, id string) int { // want `chunkListBad declares a context\.Context it ignores`
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n + len(id)
}

func freeFuncBad(_ context.Context) {} // want `freeFuncBad declares a context\.Context it ignores`

func (s *store) chunkListGood(ctx context.Context, id string) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n + len(id), nil
}

// noCtx takes no context at all — nothing to flag.
func noCtx(id string) int { return len(id) }
