// Fixture for the locksend analyzer: blocking operations under a held
// sync.Mutex. Mirrors the rtmp fan-out shapes from DESIGN.md §5a.
package locksend

import (
	"net/http"
	"sync"
	"time"
)

type hub struct {
	mu      sync.Mutex
	viewers []chan int
}

type other struct {
	mu sync.Mutex
}

// badSend is the original fan-out bug: per-viewer sends inside the
// membership lock serialize every viewer behind the slowest one.
func (h *hub) badSend(v int) {
	h.mu.Lock()
	for _, ch := range h.viewers {
		ch <- v // want `channel send while h\.mu is held`
	}
	h.mu.Unlock()
}

// goodSnapshot is the fix: copy membership under the lock, send after.
func (h *hub) goodSnapshot(v int) {
	h.mu.Lock()
	snap := make([]chan int, len(h.viewers))
	copy(snap, h.viewers)
	h.mu.Unlock()
	for _, ch := range snap {
		ch <- v
	}
}

// badDefer holds the lock to function end, so the send is still under it.
func (h *hub) badDefer(ch chan int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	ch <- 1 // want `channel send while h\.mu is held`
}

func (h *hub) badSleep() {
	h.mu.Lock()
	time.Sleep(time.Millisecond) // want `time\.Sleep while h\.mu is held`
	h.mu.Unlock()
}

func (h *hub) badHTTP(url string) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	resp, err := http.Get(url) // want `network I/O \(http\.Get\) while h\.mu is held`
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

func (h *hub) badNested(o *other) {
	h.mu.Lock()
	o.mu.Lock() // want `acquiring o\.mu while h\.mu is held`
	o.mu.Unlock()
	h.mu.Unlock()
}

// badSelect blocks in a comm clause: even with a default the send case is a
// send attempt under the lock.
func (h *hub) badSelect(ch chan int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	select {
	case ch <- 1: // want `channel send while h\.mu is held`
	default:
	}
}

// goodSelect sends after the unlock.
func (h *hub) goodSelect(ch chan int) {
	h.mu.Lock()
	h.mu.Unlock()
	select {
	case ch <- 1:
	default:
	}
}

// goodGoroutine: the spawned body runs after this function returns the
// lock; function literals are separate analysis roots.
func (h *hub) goodGoroutine(ch chan int) {
	h.mu.Lock()
	go func() {
		ch <- 1
	}()
	h.mu.Unlock()
}

type rwhub struct {
	mu      sync.RWMutex
	viewers []chan int
}

// badReadSend: a read lock still blocks writers, so sends under RLock
// serialize the fan-out behind the slowest viewer exactly like Lock does.
func (h *rwhub) badReadSend(v int) {
	h.mu.RLock()
	for _, ch := range h.viewers {
		ch <- v // want `channel send while h\.mu is held`
	}
	h.mu.RUnlock()
}

// goodReadSnapshot releases the read lock before sending.
func (h *rwhub) goodReadSnapshot(v int) {
	h.mu.RLock()
	snap := make([]chan int, len(h.viewers))
	copy(snap, h.viewers)
	h.mu.RUnlock()
	for _, ch := range snap {
		ch <- v
	}
}

type embedded struct {
	sync.Mutex
	ch chan int
}

// badEmbedded: the promoted e.Lock() and the explicit e.Mutex path are the
// same lock — both normalize to the embedded field — so the send is under
// it however the pair is spelled.
func (e *embedded) badEmbedded() {
	e.Lock()
	e.ch <- 1 // want `channel send while e\.Mutex is held`
	e.Mutex.Unlock()
}

// goodEmbedded: the explicit unlock releases the promoted lock before the
// send; without normalization the mismatched spellings would leave a
// phantom held lock.
func (e *embedded) goodEmbedded() {
	e.Lock()
	e.Mutex.Unlock()
	e.ch <- 1
}
