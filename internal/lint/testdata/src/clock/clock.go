// Fixture for the walltime analyzer over the clock package itself: the wheel
// and Virtual engines define simulated time, so any wall-clock read inside
// them silently desynchronizes a run. The directory is named "clock" so the
// package path matches the restricted set.
package clock

import "time"

type shard struct {
	tick int64
}

// badTick reads the wall clock to stamp a simulated tick.
func (s *shard) badTick() time.Time {
	s.tick++
	return time.Now() // want `time\.Now reads the wall clock`
}

// badDrain paces a simulated drain off a real timer.
func badDrain(done chan struct{}) {
	t := time.NewTimer(time.Millisecond) // want `time\.NewTimer reads the wall clock`
	defer t.Stop()
	select {
	case <-t.C:
	case <-done:
	}
}

// goodTick derives the tick's time from the epoch and resolution alone —
// pure arithmetic, exactly what the wheel does.
func goodTick(epoch time.Time, res time.Duration, tick int64) time.Time {
	return epoch.Add(res * time.Duration(tick))
}
