// Fixture for the walltime analyzer over the viewer-simulation package: the
// wheel and goroutine engines must produce byte-identical days from a seed,
// so every draw must come from a keyed rng stream and every timestamp from
// the simulated clock. The directory is named "viewersim" so the package path
// matches the restricted set.
package viewersim

import (
	"math/rand"
	"time"
)

// badJitter draws a viewer's poll phase from the global source: two runs of
// the same seed would diverge.
func badJitter(interval time.Duration) time.Duration {
	return time.Duration(rand.Float64() * float64(interval)) // want `rand\.Float64 uses the global math/rand source`
}

// badThrottle paces simulated deliveries against the host clock.
func badThrottle() {
	time.Sleep(time.Millisecond) // want `time\.Sleep reads the wall clock`
}

// goodPhase derives the same jitter from a seeded source — the constructor
// path internal/rng wraps — and pure duration arithmetic.
func goodPhase(seed int64, interval time.Duration) time.Duration {
	r := rand.New(rand.NewSource(seed))
	return time.Duration(r.Float64() * float64(interval))
}
