// Fixture for the atomiccounter analyzer: variables touched both through
// sync/atomic and with plain reads/writes in the same package.
package atomiccounter

import "sync/atomic"

type stats struct {
	frames int64
	bytes  int64
}

func (s *stats) inc() {
	atomic.AddInt64(&s.frames, 1)
	atomic.AddInt64(&s.bytes, 100)
}

func (s *stats) report() int64 {
	return s.frames // want `frames is accessed with sync/atomic at`
}

func (s *stats) reset() {
	s.frames = 0 // want `frames is accessed with sync/atomic at`
	atomic.StoreInt64(&s.bytes, 0)
}

var hits int64

func bump() {
	atomic.AddInt64(&hits, 1)
}

func read() int64 {
	return hits // want `hits is accessed with sync/atomic at`
}

// goodStats keeps one discipline: every access is atomic, nothing flagged.
type goodStats struct {
	n int64
}

func (g *goodStats) inc()       { atomic.AddInt64(&g.n, 1) }
func (g *goodStats) get() int64 { return atomic.LoadInt64(&g.n) }

// plainOnly is never touched atomically, so plain access is fine.
var plainOnly int64

func plainBump() {
	plainOnly++
}
