// Fixture for the cross-package lockorder test: this package closes an
// AB/BA inversion against liba. The hub→registry edge exists only through
// liba's exported LockSet fact on Refresh — without fact propagation the
// cycle is invisible.
package libb

import (
	"sync"

	"repro/internal/lint/testdata/src/lockorderx/liba"
)

// Hub holds its own lock.
type Hub struct {
	mu sync.Mutex
}

// Sync orders hub before registry: the edge comes from Refresh's imported
// LockSet fact, not from any Lock visible in this package.
func (h *Hub) Sync(r *liba.Registry) {
	h.mu.Lock()
	r.Refresh() // want `lock-order cycle: .*libb\.Hub\.mu → .*liba\.Registry\.Mutex → .*libb\.Hub\.mu`
	h.mu.Unlock()
}

// Rebalance orders registry before hub, directly, via the promoted Lock.
func (h *Hub) Rebalance(r *liba.Registry) {
	r.Lock()
	h.mu.Lock()
	h.mu.Unlock()
	r.Unlock()
}
