// Fixture dependency for the cross-package lockorder test: a registry whose
// lock is embedded (so dependents acquire it directly via the promoted
// Lock) and a method that acquires it internally (so dependents inherit the
// class only through this package's exported LockSet fact).
package liba

import "sync"

// Registry guards a counter with an embedded mutex.
type Registry struct {
	sync.Mutex
	n int
}

// Refresh acquires the registry lock internally; nothing in a dependent
// package's source shows the acquisition — only the fact does.
func (r *Registry) Refresh() {
	r.Lock()
	defer r.Unlock()
	r.n++
}
