package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
)

// Lockorder builds a whole-program lock-acquisition graph and flags cycles.
// Two locks acquired in the order A→B on one code path and B→A on another
// can deadlock the moment both paths run concurrently — and unlike a data
// race, -race only reports it if a soak happens to interleave the two paths
// at the same instant. The million-viewer engine (DESIGN.md §10) made that
// lottery unwinnable: this analyzer makes the ordering a static invariant.
//
// Locks are classified by field identity — "repro/internal/cdn.Edge.mu" —
// so every instance of a type shares a class; a cycle between classes is a
// potential deadlock between some pair of instances. Within each function
// the held-set is tracked statement by statement (the locksend machinery's
// rules: defer Unlock holds to return, branches fork the set). Acquisitions
// observed while a lock is held become graph edges; calls made while a lock
// is held add edges to everything the callee may transitively acquire,
// which is where the cross-package facts come in:
//
//   - each function exports a LockSet fact: the lock classes it may
//     acquire, directly or through callees (same-package call graphs are
//     closed by fixpoint; imported callees contribute their fact);
//   - each package exports a LockGraph fact: its own edges merged with the
//     graphs of its imports, so a dependent unit sees the transitive
//     closure through its direct imports alone.
//
// A cycle is reported once, at an acquisition or call site in the package
// that closes it, with the full chain — every edge's source position — in
// the diagnostic, so an AB/BA inversion spanning internal/cdn and
// internal/control reads as a deadlock scenario, not a single line number.
var Lockorder = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "builds the whole-program lock-acquisition graph across packages " +
		"(via facts) and reports cycles — potential AB/BA deadlocks — with " +
		"the full acquisition chain",
	Run:       runLockorder,
	FactTypes: []analysis.Fact{(*LockSet)(nil), (*LockGraph)(nil)},
}

// LockSet is the object fact exported for every analyzed function: the lock
// classes the function may acquire, transitively through its callees.
type LockSet struct {
	Locks []string
}

// AFact marks LockSet as a fact.
func (*LockSet) AFact() {}

// LockEdge records "To was acquired while From was held", with the source
// position and function that established the order (Site), and whether both
// ends were read locks (read-read self-edges are not deadlocks).
type LockEdge struct {
	From, To string
	Site     string // "func at file:line: detail"
	ReadOnly bool   // both acquisitions were RLocks
}

// LockGraph is the package fact: every edge established by this package and
// its transitive imports.
type LockGraph struct {
	Edges []LockEdge
}

// AFact marks LockGraph as a fact.
func (*LockGraph) AFact() {}

// lockAcq is one acquisition event inside a function body.
type lockAcq struct {
	class string
	read  bool
	pos   token.Pos
}

// lockCall is a call made while locks were held, or a call that contributes
// the callee's lockset to the caller's.
type lockCall struct {
	callee *types.Func
	held   []lockAcq // snapshot of locks held at the call site
	pos    token.Pos
}

// fnInfo is the per-function summary the fixpoint runs over.
type fnInfo struct {
	obj      *types.Func
	name     string
	acquires map[string]bool // direct acquisitions (any held state)
	calls    []lockCall
	edges    []rawEdge // intra-function held→acquired edges
	// extCalls are held-across-call sites inside escaping closures and `go`
	// bodies: they produce graph edges (phase 3) but do not contribute the
	// callee's lockset to this function (phase 2) — the closure runs on
	// another stack at another time, so constructing it orders nothing.
	extCalls []lockCall
}

// rawEdge is an edge with its in-package report position still attached.
type rawEdge struct {
	LockEdge
	pos token.Pos
}

func runLockorder(pass *analysis.Pass) (interface{}, error) {
	lo := &lockorderPass{
		pass:   pass,
		byObj:  make(map[*types.Func]*fnInfo),
		shared: newLockTracker(pass),
	}

	// Phase 1: per-function summaries, in declaration order.
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			info := &fnInfo{obj: obj, name: fd.Name.Name, acquires: make(map[string]bool)}
			lo.collect(info, fd.Body.List, nil)
			lo.fns = append(lo.fns, info)
			if obj != nil {
				lo.byObj[obj] = info
			}
		}
	}

	// Phase 2: close same-package locksets by fixpoint; imported callees
	// contribute their LockSet fact once (facts are already transitive).
	closure := make(map[*fnInfo]map[string]bool, len(lo.fns))
	for _, fn := range lo.fns {
		set := make(map[string]bool, len(fn.acquires))
		for c := range fn.acquires {
			set[c] = true
		}
		for _, call := range fn.calls {
			for _, c := range lo.importedLocks(call.callee) {
				set[c] = true
			}
		}
		closure[fn] = set
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range lo.fns {
			for _, call := range fn.calls {
				callee, ok := lo.byObj[call.callee]
				if !ok {
					continue
				}
				for c := range closure[callee] {
					if !closure[fn][c] {
						closure[fn][c] = true
						changed = true
					}
				}
			}
		}
	}

	// Phase 3: edges from held-across-call sites, now that callee locksets
	// are complete.
	var own []rawEdge
	for _, fn := range lo.fns {
		own = append(own, fn.edges...)
		for _, call := range append(fn.calls, fn.extCalls...) {
			if len(call.held) == 0 {
				continue
			}
			acq := lo.calleeLocks(call.callee, closure)
			if len(acq) == 0 {
				continue
			}
			site := fmt.Sprintf("%s at %s: calls %s", fn.name, lo.pass.Position(call.pos), call.callee.Name())
			for _, h := range call.held {
				for _, c := range acq {
					own = append(own, rawEdge{
						LockEdge: LockEdge{From: h.class, To: c, Site: site},
						pos:      call.pos,
					})
				}
			}
		}
	}

	// Phase 4: export facts — per-function locksets and the merged graph.
	for _, fn := range lo.fns {
		if fn.obj == nil || len(closure[fn]) == 0 {
			continue
		}
		pass.ExportObjectFact(fn.obj, &LockSet{Locks: sortedKeys(closure[fn])})
	}
	merged := dedupEdges(own)
	seenDep := make(map[string]bool)
	for _, imp := range pass.Pkg.Imports() {
		var g LockGraph
		if pass.ImportPackageFact(imp, &g) && !seenDep[imp.Path()] {
			seenDep[imp.Path()] = true
			for _, e := range g.Edges {
				merged = append(merged, rawEdge{LockEdge: e})
			}
		}
	}
	merged = dedupEdges(merged)
	if len(merged) > 0 {
		g := &LockGraph{Edges: make([]LockEdge, len(merged))}
		for i, e := range merged {
			g.Edges[i] = e.LockEdge
		}
		pass.ExportPackageFact(g)
	}

	// Phase 5: report each cycle the current package closes, once.
	lo.reportCycles(merged)
	return nil, nil
}

type lockorderPass struct {
	pass   *analysis.Pass
	fns    []*fnInfo
	byObj  map[*types.Func]*fnInfo
	shared *lockTracker
}

// importedLocks returns the lockset fact of a callee declared in another
// package (nil for same-package callees, which the fixpoint handles).
func (lo *lockorderPass) importedLocks(callee *types.Func) []string {
	if callee == nil || callee.Pkg() == nil || callee.Pkg() == lo.pass.Pkg {
		return nil
	}
	var ls LockSet
	if lo.pass.ImportObjectFact(callee, &ls) {
		return ls.Locks
	}
	return nil
}

// calleeLocks returns everything callee may acquire, from the same-package
// closure or the imported fact.
func (lo *lockorderPass) calleeLocks(callee *types.Func, closure map[*fnInfo]map[string]bool) []string {
	if fn, ok := lo.byObj[callee]; ok {
		return sortedKeys(closure[fn])
	}
	return lo.importedLocks(callee)
}

// collect walks a statement list maintaining the held-lock stack, recording
// direct acquisitions, intra-function edges, and calls with their held
// snapshot. It mirrors locksend's control-flow rules: branches fork the
// held set, defer Unlock holds to function return, `go` bodies run with an
// empty held set (but their acquisitions still count toward the enclosing
// function's lockset only when not spawned — a spawned goroutine's locks
// are taken on another stack at another time).
func (lo *lockorderPass) collect(info *fnInfo, stmts []ast.Stmt, held []lockAcq) []lockAcq {
	for _, stmt := range stmts {
		if es, ok := stmt.(*ast.ExprStmt); ok {
			if call, ok := es.X.(*ast.CallExpr); ok {
				if op, ok := lo.shared.mutexOp(call); ok {
					if cls, clsOK := lo.shared.lockClass(call); clsOK {
						if op.acquire {
							acq := lockAcq{class: cls, read: op.read, pos: call.Pos()}
							info.acquires[cls] = true
							for _, h := range held {
								site := fmt.Sprintf("%s at %s: acquires %s", info.name, lo.pass.Position(call.Pos()), cls)
								info.edges = append(info.edges, rawEdge{
									LockEdge: LockEdge{From: h.class, To: cls, Site: site, ReadOnly: h.read && op.read},
									pos:      call.Pos(),
								})
							}
							held = append(held, acq)
						} else {
							for i := len(held) - 1; i >= 0; i-- {
								if held[i].class == cls {
									held = append(held[:i:i], held[i+1:]...)
									break
								}
							}
						}
						continue
					}
					// Unclassifiable mutex (local or parameter): it cannot
					// alias a field class, so it neither holds nor edges.
					continue
				}
			}
		}
		if ds, ok := stmt.(*ast.DeferStmt); ok {
			if op, ok := lo.shared.mutexOp(ds.Call); ok && !op.acquire {
				continue // deferred unlock: lock stays held to return
			}
		}
		held = lo.collectStmt(info, stmt, held)
	}
	return held
}

// collectStmt descends into one statement; compound statements fork the
// held set so a branch's unlock does not leak past the branch.
func (lo *lockorderPass) collectStmt(info *fnInfo, stmt ast.Stmt, held []lockAcq) []lockAcq {
	fork := func() []lockAcq { return append([]lockAcq(nil), held...) }
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		lo.collect(info, s.List, fork())
	case *ast.IfStmt:
		if s.Init != nil {
			lo.collectStmt(info, s.Init, held)
		}
		lo.scanExpr(info, s.Cond, held)
		lo.collect(info, s.Body.List, fork())
		if s.Else != nil {
			lo.collectStmt(info, s.Else, fork())
		}
	case *ast.ForStmt:
		if s.Init != nil {
			lo.collectStmt(info, s.Init, held)
		}
		if s.Cond != nil {
			lo.scanExpr(info, s.Cond, held)
		}
		lo.collect(info, s.Body.List, fork())
	case *ast.RangeStmt:
		lo.scanExpr(info, s.X, held)
		lo.collect(info, s.Body.List, fork())
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				lo.collect(info, cc.Body, fork())
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				lo.collect(info, cc.Body, fork())
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				lo.collect(info, cc.Body, fork())
			}
		}
	case *ast.LabeledStmt:
		held = lo.collectStmt(info, s.Stmt, held)
	case *ast.GoStmt:
		// The spawned body runs on its own stack with nothing held, and
		// its acquisitions are not the spawner's: a caller holding a lock
		// across this `go` statement does not order itself before them.
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			lo.collectEscaping(info, info.name+".go-func", lit)
		}
	case *ast.DeferStmt:
		// Deferred work runs at return; locks deferred-unlocked are treated
		// as held until then, so scanning the call here would double-count.
		// A deferred closure's own acquisitions still count.
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			lo.collect(info, lit.Body.List, nil)
		}
	default:
		lo.scanStmt(info, stmt, held)
	}
	return held
}

// scanStmt scans a leaf statement for calls and acquisitions (which may
// appear in expressions: `x := s.get()` calls under the held set).
func (lo *lockorderPass) scanStmt(info *fnInfo, stmt ast.Stmt, held []lockAcq) {
	lo.scanNode(info, stmt, held)
}

func (lo *lockorderPass) scanExpr(info *fnInfo, expr ast.Expr, held []lockAcq) {
	if expr != nil {
		lo.scanNode(info, expr, held)
	}
}

// collectEscaping summarizes a function literal that escapes the current
// control flow (`go` body, stored callback): its internal lock-order edges
// are real program edges, and calls it makes while holding its own locks
// still produce edges (extCalls), but its lockset does not accrue to the
// enclosing function — creating a closure acquires nothing.
func (lo *lockorderPass) collectEscaping(info *fnInfo, name string, lit *ast.FuncLit) {
	sub := &fnInfo{obj: info.obj, name: name, acquires: make(map[string]bool)}
	lo.collect(sub, lit.Body.List, nil)
	info.edges = append(info.edges, sub.edges...)
	for _, call := range append(sub.calls, sub.extCalls...) {
		if len(call.held) > 0 {
			info.extCalls = append(info.extCalls, call)
		}
	}
}

// scanNode records every call in the subtree. An immediately-invoked
// function literal runs here, under the current held set; any other literal
// escapes and is summarized by collectEscaping.
func (lo *lockorderPass) scanNode(info *fnInfo, n ast.Node, held []lockAcq) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			lo.collectEscaping(info, info.name+".func", e)
			return false
		case *ast.CallExpr:
			if lit, ok := e.Fun.(*ast.FuncLit); ok {
				lo.collect(info, lit.Body.List, append([]lockAcq(nil), held...))
				for _, arg := range e.Args {
					lo.scanNode(info, arg, held)
				}
				return false
			}
			if op, ok := lo.shared.mutexOp(e); ok {
				if cls, clsOK := lo.shared.lockClass(e); clsOK && op.acquire {
					info.acquires[cls] = true
					for _, h := range held {
						site := fmt.Sprintf("%s at %s: acquires %s", info.name, lo.pass.Position(e.Pos()), cls)
						info.edges = append(info.edges, rawEdge{
							LockEdge: LockEdge{From: h.class, To: cls, Site: site, ReadOnly: h.read && op.read},
							pos:      e.Pos(),
						})
					}
				}
				return true
			}
			if callee := lo.callee(e); callee != nil {
				info.calls = append(info.calls, lockCall{
					callee: callee,
					held:   append([]lockAcq(nil), held...),
					pos:    e.Pos(),
				})
			}
		}
		return true
	})
}

// callee resolves the static *types.Func a call targets, nil for builtins,
// function values, and type conversions.
func (lo *lockorderPass) callee(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := lo.pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// reportCycles finds, for every edge this package contributed, a path back
// from its target to its source in the merged graph; edge + path is a
// cycle. Each distinct cycle (by its set of lock classes) is reported once,
// at the contributing edge's position.
func (lo *lockorderPass) reportCycles(merged []rawEdge) {
	adj := make(map[string][]LockEdge)
	for _, e := range merged {
		adj[e.From] = append(adj[e.From], e.LockEdge)
	}
	reported := make(map[string]bool)
	for _, e := range merged {
		if e.pos == token.NoPos {
			continue // a dependency's edge: its own unit reports it
		}
		if e.From == e.To {
			if e.ReadOnly {
				continue // nested RLocks of one class: shared, not a cycle
			}
			key := "self:" + e.From
			if reported[key] {
				continue
			}
			reported[key] = true
			lo.pass.Reportf(e.pos,
				"lock-order cycle: %s is acquired while an instance of it is already held (%s); recursive or paired acquisition of one lock class deadlocks the moment both are the same instance",
				e.To, e.Site)
			continue
		}
		path := shortestPath(adj, e.To, e.From)
		if path == nil {
			continue
		}
		cycle := append([]LockEdge{e.LockEdge}, path...)
		key := cycleKey(cycle)
		if reported[key] {
			continue
		}
		reported[key] = true
		var b strings.Builder
		fmt.Fprintf(&b, "lock-order cycle: %s", cycle[0].From)
		for _, ce := range cycle {
			fmt.Fprintf(&b, " → %s", ce.To)
		}
		b.WriteString("; ")
		for i, ce := range cycle {
			if i > 0 {
				b.WriteString("; ")
			}
			fmt.Fprintf(&b, "%s→%s in %s", ce.From, ce.To, ce.Site)
		}
		b.WriteString(" — opposite acquisition orders can deadlock; pick one order (DESIGN.md §8)")
		lo.pass.Reportf(e.pos, "%s", b.String())
	}
}

// shortestPath BFSes from src to dst and returns the edge path, nil if
// unreachable. Deterministic: neighbors are explored in insertion order,
// which is declaration order for own edges and fact order for imported.
func shortestPath(adj map[string][]LockEdge, src, dst string) []LockEdge {
	type item struct {
		node string
		path []LockEdge
	}
	queue := []item{{node: src}}
	visited := map[string]bool{src: true}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range adj[cur.node] {
			if visited[e.To] {
				continue
			}
			next := append(append([]LockEdge(nil), cur.path...), e)
			if e.To == dst {
				return next
			}
			visited[e.To] = true
			queue = append(queue, item{node: e.To, path: next})
		}
	}
	return nil
}

func cycleKey(cycle []LockEdge) string {
	classes := make([]string, 0, len(cycle))
	for _, e := range cycle {
		classes = append(classes, e.From)
	}
	sort.Strings(classes)
	return strings.Join(classes, "→")
}

// dedupEdges keeps the first edge per (From, To), preserving order; a
// non-ReadOnly duplicate overrides a ReadOnly one so shared/exclusive
// classification stays conservative.
func dedupEdges(edges []rawEdge) []rawEdge {
	idx := make(map[[2]string]int)
	var out []rawEdge
	for _, e := range edges {
		k := [2]string{e.From, e.To}
		if i, ok := idx[k]; ok {
			if out[i].ReadOnly && !e.ReadOnly {
				out[i] = e
			}
			continue
		}
		idx[k] = len(out)
		out = append(out, e)
	}
	return out
}

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
