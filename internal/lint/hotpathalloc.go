package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// hotpathDirective marks a function as allocation-budgeted. The PR 3 alloc
// regression tests (wire zero-alloc framing, rtmp 2-allocs/frame fan-out,
// cdn RawChunkList warm polls) pin the budget at runtime; this analyzer
// catches the obvious regressions at vet time, with position information,
// before a benchmark has to.
const hotpathDirective = "livesim:hotpath"

// Hotpathalloc flags allocation-heavy constructs inside functions annotated
// with //livesim:hotpath: fmt.Sprintf/Errorf/Sprint/Sprintln (always
// allocate, format parsing on every call), []byte(string) and string([]byte)
// conversions (copy the payload — the wire format works in []byte
// end-to-end precisely to avoid this), and append through a closure-captured
// variable (forces the slice header, and usually the backing array, to
// escape to the heap).
var Hotpathalloc = &analysis.Analyzer{
	Name: "hotpathalloc",
	Doc: "flags fmt.Sprintf/Errorf, []byte(string)/string([]byte) " +
		"conversions, and closure-captured append in //livesim:hotpath " +
		"functions (the zero-alloc delivery fast paths)",
	Run: runHotpathalloc,
}

var fmtAllocFuncs = map[string]bool{
	"Sprintf":  true,
	"Errorf":   true,
	"Sprint":   true,
	"Sprintln": true,
}

func runHotpathalloc(pass *analysis.Pass) (interface{}, error) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !isHotpath(fn) {
				continue
			}
			checkHotpathBody(pass, fn)
		}
	}
	return nil, nil
}

// isHotpath reports whether the function's doc comment carries the
// //livesim:hotpath directive.
func isHotpath(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.HasPrefix(strings.TrimPrefix(c.Text, "//"), hotpathDirective) {
			return true
		}
	}
	return false
}

func checkHotpathBody(pass *analysis.Pass, fn *ast.FuncDecl) {
	// Track the FuncLit nesting stack so append targets can be classified
	// as captured (declared outside the literal they are appended to in).
	var litStack []*ast.FuncLit
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			litStack = append(litStack, e)
			ast.Inspect(e.Body, walk)
			litStack = litStack[:len(litStack)-1]
			return false
		case *ast.CallExpr:
			checkHotpathCall(pass, fn, e, litStack)
		}
		return true
	}
	ast.Inspect(fn.Body, walk)
}

func checkHotpathCall(pass *analysis.Pass, fn *ast.FuncDecl, call *ast.CallExpr, litStack []*ast.FuncLit) {
	// fmt.Sprintf / fmt.Errorf family.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if f, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok &&
			f.Pkg() != nil && f.Pkg().Path() == "fmt" && fmtAllocFuncs[f.Name()] {
			pass.Reportf(call.Pos(),
				"fmt.%s allocates on the %s hot path; precompute the string or use strconv.Append* into a reused buffer",
				f.Name(), fn.Name.Name)
			return
		}
	}

	// []byte(string) / string([]byte) conversions.
	if len(call.Args) == 1 {
		if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
			to, from := tv.Type, pass.TypesInfo.Types[call.Args[0]].Type
			if from != nil {
				switch {
				case isByteSlice(to) && isString(from):
					pass.Reportf(call.Pos(),
						"[]byte(string) copies the payload on the %s hot path; keep the data as []byte end-to-end (wire format works in bytes)",
						fn.Name.Name)
				case isString(to) && isByteSlice(from):
					pass.Reportf(call.Pos(),
						"string([]byte) copies the payload on the %s hot path; compare/slice the []byte directly or intern the value off the hot path",
						fn.Name.Name)
				}
			}
		}
	}

	// append whose destination is captured by the enclosing closure.
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" && len(litStack) > 0 {
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin && len(call.Args) > 0 {
			if target, ok := call.Args[0].(*ast.Ident); ok {
				obj := pass.TypesInfo.Uses[target]
				lit := litStack[len(litStack)-1]
				if obj != nil && (obj.Pos() < lit.Pos() || obj.Pos() > lit.End()) {
					pass.Reportf(call.Pos(),
						"append to %q captured by a closure on the %s hot path forces a heap escape; pass the slice in and return it, or hoist the append out of the closure",
						target.Name, fn.Name.Name)
				}
			}
		}
	}
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
