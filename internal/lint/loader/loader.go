// Package loader type-checks this module's packages for the lint suite
// without golang.org/x/tools/go/packages (unavailable offline). It shells
// out to `go list -export -json -deps`, which compiles dependencies into the
// build cache and reports the export-data file of every package in the
// import graph; the module's own packages are then parsed from source and
// type-checked with the standard library's gc-export-data importer.
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Name       string
	Dir        string
	Fset       *token.FileSet
	Syntax     []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// ListPkg is the subset of `go list -json` output the loader consumes.
type ListPkg struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	Error      *struct{ Err string }
}

// List runs `go list -e -export -json -deps` in dir and decodes the JSON
// stream: every package in the import graph of patterns, dependencies
// first, each with the path of its gc export-data file. Exported for
// cmd/escapecheck, which feeds the Export files to `go tool compile` as an
// importcfg.
func List(dir string, patterns ...string) ([]*ListPkg, error) {
	return list(dir, patterns)
}

// list runs `go list -export -json -deps` in dir and decodes the JSON stream.
func list(dir string, patterns []string) ([]*ListPkg, error) {
	args := append([]string{"list", "-e", "-export", "-json", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	var pkgs []*ListPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(ListPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter satisfies types.Importer by reading gc export data located
// by an import-path → file map (built from `go list -export`).
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}

// NewInfo returns a types.Info with every map the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// Load lists patterns (relative to dir, e.g. "./...") and returns the
// type-checked module packages, dependency order preserved. Dependencies —
// standard library included — are imported from export data, so no source
// beyond the module's own is parsed.
func Load(dir string, patterns ...string) ([]*Package, error) {
	lps, err := list(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(lps))
	for _, lp := range lps {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)

	var out []*Package
	for _, lp := range lps {
		if lp.DepOnly || lp.Standard || len(lp.GoFiles) == 0 {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("%s: %s", lp.ImportPath, lp.Error.Err)
		}
		var files []string
		for _, f := range lp.GoFiles {
			files = append(files, filepath.Join(lp.Dir, f))
		}
		pkg, err := check(fset, lp.ImportPath, lp.Dir, files, imp)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// LoadDir type-checks a single directory of Go files that sits outside the
// module build graph (analysistest fixtures under testdata). Imports are
// resolved by running `go list -export` on the fixture's import set, so
// fixtures may import the standard library and this module's packages.
func LoadDir(dir string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("loader: no Go files in %s", dir)
	}

	// Discover the fixture's imports with a syntax-only parse, then ask the
	// go tool for their export data.
	fset := token.NewFileSet()
	importSet := make(map[string]bool)
	for _, f := range files {
		af, err := parser.ParseFile(fset, f, nil, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, im := range af.Imports {
			importSet[strings.Trim(im.Path.Value, `"`)] = true
		}
	}
	exports := make(map[string]string)
	if len(importSet) > 0 {
		var pats []string
		for p := range importSet {
			pats = append(pats, p)
		}
		lps, err := list(dir, pats)
		if err != nil {
			return nil, err
		}
		for _, lp := range lps {
			if lp.Export != "" {
				exports[lp.ImportPath] = lp.Export
			}
		}
	}
	fset = token.NewFileSet()
	return check(fset, dirImportPath(dir), dir, files, exportImporter(fset, exports))
}

// dirImportPath resolves the module import path of a directory (testdata
// packages included — the go tool only skips testdata when expanding
// wildcards, not for explicit arguments). Cross-package facts are keyed by
// import path, so a fixture package analyzed from source must carry the
// same path its dependents see in export data; the directory base name is
// only a fallback for directories outside any module.
func dirImportPath(dir string) string {
	// list emits dependencies first, so the directory's own package is the
	// last entry.
	lps, err := list(dir, []string{"."})
	if err == nil && len(lps) > 0 && lps[len(lps)-1].ImportPath != "" {
		return lps[len(lps)-1].ImportPath
	}
	return filepath.Base(dir)
}

// check parses files and type-checks them as one package.
func check(fset *token.FileSet, path, dir string, files []string, imp types.Importer) (*Package, error) {
	var syntax []*ast.File
	for _, f := range files {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		syntax = append(syntax, af)
	}
	info := NewInfo()
	conf := &types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	return &Package{
		ImportPath: path,
		Name:       tpkg.Name(),
		Dir:        dir,
		Fset:       fset,
		Syntax:     syntax,
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}
