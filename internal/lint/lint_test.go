package lint_test

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysistest"
	"repro/internal/lint/loader"
)

func TestLocksend(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Locksend, "locksend")
}

func TestWalltime(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Walltime, "delay")
}

// TestWalltimeUnrestricted: the same constructs in a package outside the
// simulation set produce no diagnostics (the fixture has no want comments).
func TestWalltimeUnrestricted(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Walltime, "wtok")
}

// TestWalltimeClock: the clock engines themselves may not read the wall
// clock — only Real does, behind reasoned //lint:allow suppressions.
func TestWalltimeClock(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Walltime, "clock")
}

// TestWalltimeViewersim: the viewer event engine's determinism contract bans
// the global rand source and host-clock pacing.
func TestWalltimeViewersim(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Walltime, "viewersim")
}

// TestWalltimeControl: the control plane's tenancy layer (rate-limiter
// refills, quota windows, usage-day keys) must follow the injected clock.
func TestWalltimeControl(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Walltime, "control")
}

func TestAtomiccounter(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Atomiccounter, "atomiccounter")
}

func TestHotpathalloc(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Hotpathalloc, "hotpathalloc")
}

func TestCtxplumb(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Ctxplumb, "ctxplumb")
}

// TestCtxplumbIgnoredCtx: in the CDN data-plane packages (matched by final
// import-path element) a function may not blank its context parameter.
func TestCtxplumbIgnoredCtx(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Ctxplumb, "cdn")
}

func TestLockorder(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Lockorder, "lockorder")
}

// TestLockorderCrossPackage seeds an AB/BA inversion across two fixture
// packages: the hub→registry edge exists only through liba's LockSet fact
// on Refresh, round-tripped through the gob wire format between packages.
func TestLockorderCrossPackage(t *testing.T) {
	analysistest.RunSuite(t, "testdata", lint.Lockorder,
		filepath.Join("lockorderx", "liba"), filepath.Join("lockorderx", "libb"))
}

func TestGoroleak(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Goroleak, "goroleak")
}

// TestGoroleakCrossPackage spawns a forever-blocking function declared in a
// dependency: the spawn is flagged via the imported NeverReturns fact.
func TestGoroleakCrossPackage(t *testing.T) {
	analysistest.RunSuite(t, "testdata", lint.Goroleak,
		filepath.Join("goroleakx", "liba"), filepath.Join("goroleakx", "libb"))
}

// TestAllowDirectives drives lint.Run over the directives fixture and checks
// the suppression contract: a reasoned //lint:allow <analyzer> silences that
// analyzer on the next line; a directive naming an unknown analyzer or
// carrying no reason is itself a finding and suppresses nothing.
func TestAllowDirectives(t *testing.T) {
	pkg, err := loader.LoadDir(filepath.Join("testdata", "src", "directives"))
	if err != nil {
		t.Fatalf("loading directives fixture: %v", err)
	}
	findings, err := lint.Run(pkg, lint.Analyzers())
	if err != nil {
		t.Fatalf("lint.Run: %v", err)
	}
	for _, f := range findings {
		t.Logf("finding: %s", f)
	}

	count := func(analyzer, substr string) int {
		n := 0
		for _, f := range findings {
			if f.Analyzer == analyzer && strings.Contains(f.Message, substr) {
				n++
			}
		}
		return n
	}

	// The properly suppressed send (h.ch <- 1) must not appear: exactly the
	// two unsuppressed sends survive.
	if got := count("locksend", "channel send"); got != 2 {
		t.Errorf("want 2 unsuppressed locksend findings, got %d", got)
	}
	// The typo'd analyzer name is flagged, with the known names listed.
	if got := count("lintdirective", `unknown analyzer "locksnd"`); got != 1 {
		t.Errorf("want 1 unknown-analyzer directive finding, got %d", got)
	}
	if got := count("lintdirective", "locksend, walltime"); got != 1 {
		t.Errorf("unknown-analyzer finding should list known analyzers, got %d matches", got)
	}
	// The reasonless directive is flagged.
	if got := count("lintdirective", "has no reason"); got != 1 {
		t.Errorf("want 1 missing-reason directive finding, got %d", got)
	}
	// The directive that suppressed nothing is stale — itself a finding.
	if got := count("lintdirective", "stale //lint:allow locksend"); got != 1 {
		t.Errorf("want 1 stale-directive finding, got %d", got)
	}
	// The hotpathescape directive is valid (external analyzer) and exempt
	// from this driver's stale check: no finding for it.
	if got := count("lintdirective", "//lint:allow hotpathescape"); got != 0 {
		t.Errorf("want 0 findings about the hotpathescape directive, got %d", got)
	}
	if got := len(findings); got != 5 {
		t.Errorf("want 5 findings total (2 sends + 3 directive diagnostics), got %d", got)
	}
}

// TestSuiteNames pins the analyzer names the //lint:allow directives and the
// CI job reference: renaming one silently orphans every suppression.
func TestSuiteNames(t *testing.T) {
	want := []string{"locksend", "walltime", "atomiccounter", "hotpathalloc", "ctxplumb", "lockorder", "goroleak"}
	as := lint.Analyzers()
	if len(as) != len(want) {
		t.Fatalf("want %d analyzers, got %d", len(want), len(as))
	}
	for i, a := range as {
		if a.Name != want[i] {
			t.Errorf("analyzer %d: want name %q, got %q", i, want[i], a.Name)
		}
		if a.Doc == "" {
			t.Errorf("analyzer %q has no doc", a.Name)
		}
	}
}
