package lint_test

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysistest"
	"repro/internal/lint/loader"
)

func TestLocksend(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Locksend, "locksend")
}

func TestWalltime(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Walltime, "delay")
}

// TestWalltimeUnrestricted: the same constructs in a package outside the
// simulation set produce no diagnostics (the fixture has no want comments).
func TestWalltimeUnrestricted(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Walltime, "wtok")
}

// TestWalltimeClock: the clock engines themselves may not read the wall
// clock — only Real does, behind reasoned //lint:allow suppressions.
func TestWalltimeClock(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Walltime, "clock")
}

// TestWalltimeViewersim: the viewer event engine's determinism contract bans
// the global rand source and host-clock pacing.
func TestWalltimeViewersim(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Walltime, "viewersim")
}

func TestAtomiccounter(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Atomiccounter, "atomiccounter")
}

func TestHotpathalloc(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Hotpathalloc, "hotpathalloc")
}

func TestCtxplumb(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Ctxplumb, "ctxplumb")
}

// TestCtxplumbIgnoredCtx: in the CDN data-plane packages (matched by final
// import-path element) a function may not blank its context parameter.
func TestCtxplumbIgnoredCtx(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Ctxplumb, "cdn")
}

// TestAllowDirectives drives lint.Run over the directives fixture and checks
// the suppression contract: a reasoned //lint:allow <analyzer> silences that
// analyzer on the next line; a directive naming an unknown analyzer or
// carrying no reason is itself a finding and suppresses nothing.
func TestAllowDirectives(t *testing.T) {
	pkg, err := loader.LoadDir(filepath.Join("testdata", "src", "directives"))
	if err != nil {
		t.Fatalf("loading directives fixture: %v", err)
	}
	findings, err := lint.Run(pkg, lint.Analyzers())
	if err != nil {
		t.Fatalf("lint.Run: %v", err)
	}
	for _, f := range findings {
		t.Logf("finding: %s", f)
	}

	count := func(analyzer, substr string) int {
		n := 0
		for _, f := range findings {
			if f.Analyzer == analyzer && strings.Contains(f.Message, substr) {
				n++
			}
		}
		return n
	}

	// The properly suppressed send (h.ch <- 1) must not appear: exactly the
	// two unsuppressed sends survive.
	if got := count("locksend", "channel send"); got != 2 {
		t.Errorf("want 2 unsuppressed locksend findings, got %d", got)
	}
	// The typo'd analyzer name is flagged, with the known names listed.
	if got := count("lintdirective", `unknown analyzer "locksnd"`); got != 1 {
		t.Errorf("want 1 unknown-analyzer directive finding, got %d", got)
	}
	if got := count("lintdirective", "locksend, walltime"); got != 1 {
		t.Errorf("unknown-analyzer finding should list known analyzers, got %d matches", got)
	}
	// The reasonless directive is flagged.
	if got := count("lintdirective", "has no reason"); got != 1 {
		t.Errorf("want 1 missing-reason directive finding, got %d", got)
	}
	if got := len(findings); got != 4 {
		t.Errorf("want 4 findings total (2 sends + 2 directive diagnostics), got %d", got)
	}
}

// TestSuiteNames pins the analyzer names the //lint:allow directives and the
// CI job reference: renaming one silently orphans every suppression.
func TestSuiteNames(t *testing.T) {
	want := []string{"locksend", "walltime", "atomiccounter", "hotpathalloc", "ctxplumb"}
	as := lint.Analyzers()
	if len(as) != len(want) {
		t.Fatalf("want %d analyzers, got %d", len(want), len(as))
	}
	for i, a := range as {
		if a.Name != want[i] {
			t.Errorf("analyzer %d: want name %q, got %q", i, want[i], a.Name)
		}
		if a.Doc == "" {
			t.Errorf("analyzer %q has no doc", a.Name)
		}
	}
}
