package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// walltimePackages are the simulation and delivery packages whose results
// must be reproducible from a seed: the trace-driven buffering study (§6)
// and the delay decomposition (§4.2–4.3) are meaningless if a run's outcome
// depends on the host's wall clock or the global math/rand source. These
// packages must take time from internal/clock and randomness from
// internal/rng. clock itself is restricted — a stray time.Now inside the
// wheel or Virtual engines would silently desynchronize simulated time (only
// Real touches the wall clock, behind reasoned //lint:allow suppressions) —
// as is viewersim, whose cross-engine byte-equality contract dies the moment
// an event draws from anything but its seeded stream. control is restricted
// too: quota windows, rate-limiter refills, and usage-rollup day keys must
// follow the injected clock or tenancy tests against a clock.Virtual would
// silently mix time bases. Matching is by the final import-path element.
var walltimePackages = map[string]bool{
	"netsim":      true,
	"delay":       true,
	"player":      true,
	"workload":    true,
	"experiments": true,
	"rtmp":        true,
	"cdn":         true,
	"hls":         true,
	"metrics":     true,
	"clock":       true,
	"viewersim":   true,
	"control":     true,
}

// walltimeFuncs are the time package entry points that read or schedule off
// the wall clock. time.Time methods (Sub, Add, Before…) are pure and fine.
var walltimeFuncs = map[string]string{
	"Now":       "clock.Clock.Now",
	"Since":     "clock.Clock.Now + Time.Sub",
	"Until":     "clock.Clock.Now + Time.Sub",
	"Sleep":     "clock.Clock.Sleep",
	"NewTimer":  "clock.Clock.After",
	"After":     "clock.Clock.After",
	"AfterFunc": "clock.Clock.After",
	"Tick":      "a clock.Clock.After loop",
	"NewTicker": "a clock.Clock.After loop",
}

// mathRandOK are math/rand names that do not touch the global source: the
// constructor path (rand.New(rand.NewSource(seed))) is exactly what
// internal/rng wraps, and the types come along with it.
var mathRandOK = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// Walltime flags direct wall-clock and global-randomness use in the
// simulation/delivery packages listed above.
var Walltime = &analysis.Analyzer{
	Name: "walltime",
	Doc: "flags time.Now/Sleep/timers and global math/rand in simulation and " +
		"delivery packages; these must go through internal/clock and " +
		"internal/rng so a seed fully determines a run",
	Run: runWalltime,
}

func runWalltime(pass *analysis.Pass) (interface{}, error) {
	if !walltimePackages[pathBase(pass.Pkg.Path())] {
		return nil, nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			switch obj.Pkg().Path() {
			case "time":
				if repl, bad := walltimeFuncs[obj.Name()]; bad && isPkgFunc(obj) {
					pass.Reportf(sel.Pos(),
						"time.%s reads the wall clock; use %s so simulated runs stay deterministic",
						obj.Name(), repl)
				}
			case "math/rand", "math/rand/v2":
				if isPkgFunc(obj) && !mathRandOK[obj.Name()] {
					pass.Reportf(sel.Pos(),
						"rand.%s uses the global math/rand source; use a seeded internal/rng.Rand so runs are reproducible",
						obj.Name())
				}
			}
			return true
		})
	}
	return nil, nil
}

// isPkgFunc reports whether obj is a package-level function (as opposed to a
// method, whose receiver carries its own explicitly-seeded state).
func isPkgFunc(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// pathBase returns the final element of an import path.
func pathBase(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}
