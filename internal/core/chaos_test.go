package core

import (
	"context"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/control"
	"repro/internal/faults"
	"repro/internal/geo"
	"repro/internal/hls"
	"repro/internal/media"
	"repro/internal/metrics"
	"repro/internal/pubsub"
	"repro/internal/resilience"
	"repro/internal/rng"
	"repro/internal/rtmp"
	"repro/internal/testutil"
)

// chaosConnRecorder captures the viewer's raw RTMP conns so the test can
// force a deterministic mid-stream reset on top of the random fault rates.
type chaosConnRecorder struct {
	mu    sync.Mutex
	conns []net.Conn
}

func (r *chaosConnRecorder) wrap(c net.Conn) net.Conn {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.conns = append(r.conns, c)
	return c
}

func (r *chaosConnRecorder) kill(i int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if i >= len(r.conns) {
		return false
	}
	r.conns[i].Close()
	return true
}

// TestPlatformChaosSoak runs one full broadcast through the assembled
// platform with faults injected on every hop — origin↔edge pulls (store
// errors + latency), viewer↔edge HLS fetches (HTTP errors, latency,
// truncated bodies), viewer↔hub pubsub calls (HTTP errors + latency), and
// the viewer's RTMP transport (latency, partial reads, resets, plus one
// deterministic mid-stream reset) — and checks the resilience layer absorbs
// all of it: the broadcast completes, the edge serves stale chunklists while
// the origin is fully down, the RTMP viewer resumes past the reset, the HLS
// viewer's stall ratio stays bounded, and no goroutines leak.
func TestPlatformChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak under -short")
	}

	// Leak check registered before startPlatform so it runs after p.Stop
	// (t.Cleanup is LIFO).
	testutil.CheckGoroutines(t)

	// Origin↔edge hop: every upstream store an edge pulls from fails 15%
	// of calls and delays 10% (the §5.3 WAN hop under loss).
	upFaults := faults.New(faults.Config{
		Seed:        42,
		ErrorRate:   0.15,
		LatencyRate: 0.10,
		LatencyMin:  500 * time.Microsecond,
		LatencyMax:  2 * time.Millisecond,
	})
	fastRetry := resilience.Policy{MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}
	p := startPlatform(t, PlatformConfig{
		ChunkDuration:   200 * time.Millisecond,
		RTMPViewerLimit: 2,
		WrapUpstream:    upFaults.Store,
		EdgeRetry:       resilience.Policy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond},
		EdgeBreaker:     resilience.BreakerConfig{FailureThreshold: 4, OpenFor: 60 * time.Millisecond},
	})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	cc := &control.Client{BaseURL: p.ControlURL()}

	uid, err := cc.Register(ctx, "chaos")
	if err != nil {
		t.Fatal(err)
	}
	ashburn := geo.Location{City: "Ashburn", Lat: 39.04, Lon: -77.49}
	grant, err := cc.StartBroadcast(ctx, uid, ashburn)
	if err != nil {
		t.Fatal(err)
	}

	pub, err := rtmp.Publish(ctx, grant.RTMPAddr, grant.BroadcastID, grant.Token, nil)
	if err != nil {
		t.Fatal(err)
	}

	// RTMP viewer over a lossy last-mile link (§5.2): random latency,
	// partial reads and resets, plus one deterministic reset below.
	viewerFaults := faults.New(faults.Config{
		Seed:            9,
		LatencyRate:     0.05,
		LatencyMin:      200 * time.Microsecond,
		LatencyMax:      time.Millisecond,
		ResetRate:       0.02,
		PartialReadRate: 0.10,
	})
	rec := &chaosConnRecorder{}
	vg, err := cc.Join(ctx, 100, grant.BroadcastID, ashburn)
	if err != nil {
		t.Fatal(err)
	}
	if vg.Protocol != control.ProtoRTMP {
		t.Fatalf("first viewer protocol = %s, want RTMP", vg.Protocol)
	}
	rv, err := rtmp.SubscribeResilient(ctx, vg.RTMPAddr, grant.BroadcastID, "", rtmp.ReconnectConfig{
		Options: rtmp.ViewerOptions{WrapConn: func(c net.Conn) net.Conn {
			return rec.wrap(viewerFaults.Conn(c))
		}},
		Backoff:       resilience.Policy{BaseDelay: 2 * time.Millisecond, MaxDelay: 10 * time.Millisecond},
		MaxReconnects: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rv.Close()

	var rtmpSeqs []uint64
	rtmpDone := make(chan struct{})
	go func() {
		defer close(rtmpDone)
		killed := false
		for rf := range rv.Frames() {
			rtmpSeqs = append(rtmpSeqs, rf.Frame.Seq)
			if !killed && len(rtmpSeqs) == 15 {
				killed = rec.kill(0)
			}
		}
	}()

	// Publisher: 100 frames, encoder-clocked so chunks close every 5
	// frames, real-time paced so the chaos windows overlap the stream.
	const totalFrames = 100
	framesPerChunk := int(200 * time.Millisecond / media.FrameDuration)
	totalChunks := totalFrames / framesPerChunk
	pubErr := make(chan error, 1)
	go func() {
		enc := media.NewEncoder(media.EncoderConfig{}, rng.New(3))
		base := time.Now()
		for i := 0; i < totalFrames; i++ {
			f := enc.Next(base.Add(time.Duration(i) * media.FrameDuration))
			if err := pub.Send(&f); err != nil {
				pubErr <- fmt.Errorf("send frame %d: %w", i, err)
				return
			}
			time.Sleep(4 * time.Millisecond)
		}
		pubErr <- pub.End()
	}()

	// HLS viewer polls the nearest edge through a faulty HTTP transport:
	// errors, latency spikes and truncated bodies on the §4.3 fetch path.
	edge := p.Topo.NearestEdge(ashburn)
	edgeURL := p.EdgeURL(edge)
	hlsFaults := faults.New(faults.Config{
		Seed:            7,
		ErrorRate:       0.10,
		LatencyRate:     0.10,
		LatencyMin:      500 * time.Microsecond,
		LatencyMax:      2 * time.Millisecond,
		PartialReadRate: 0.05,
	})
	hc := &hls.Client{
		BaseURL:    edgeURL,
		HTTPClient: hlsFaults.Client(nil),
		Timeout:    2 * time.Second,
		Retry:      fastRetry,
		Metrics:    p.Metrics(),
	}
	// Wait for the first chunk to reach the edge before starting the
	// poller (Poll treats not-found as terminal).
	warm := &hls.Client{BaseURL: edgeURL, Retry: fastRetry}
	warmDeadline := time.Now().Add(10 * time.Second)
	for {
		cl, err := warm.FetchChunkList(ctx, grant.BroadcastID, 0)
		if err == nil && len(cl.Chunks) > 0 {
			break
		}
		if time.Now().After(warmDeadline) {
			t.Fatalf("edge never served the first chunk: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	var chunksSeen atomic.Int64
	hlsEnded := make(chan struct{})
	hlsPollErr := make(chan error, 1)
	go func() {
		err := hc.Poll(ctx, grant.BroadcastID, hls.PollerConfig{
			Interval:  25 * time.Millisecond,
			PreBuffer: 400 * time.Millisecond,
			OnChunk:   func(ev hls.ChunkEvent) { chunksSeen.Add(1) },
			OnEnd:     func() { close(hlsEnded) },
		})
		hlsPollErr <- err
	}()

	// Pubsub hop under HTTP faults: publish comments and hearts while a
	// long-poll consumer drains the channel.
	psFaults := faults.New(faults.Config{
		Seed:        8,
		ErrorRate:   0.10,
		LatencyRate: 0.10,
		LatencyMin:  500 * time.Microsecond,
		LatencyMax:  2 * time.Millisecond,
	})
	mc := &pubsub.Client{
		BaseURL:         p.MessageURL(),
		HTTPClient:      psFaults.Client(nil),
		Timeout:         2 * time.Second,
		LongPollTimeout: 10 * time.Second,
		Retry:           fastRetry,
	}
	const totalEvents = 12
	var eventsSeen atomic.Int64
	psDone := make(chan error, 1)
	go func() {
		var since uint64
		for {
			evs, closed, err := mc.Events(ctx, grant.BroadcastID, since, true)
			if err != nil {
				psDone <- err
				return
			}
			eventsSeen.Add(int64(len(evs)))
			since += uint64(len(evs))
			if closed {
				psDone <- nil
				return
			}
		}
	}()
	for i := 0; i < totalEvents; i++ {
		ev := pubsub.Event{UserID: fmt.Sprintf("u%d", 100+i%3), Kind: pubsub.KindHeart}
		if i%2 == 0 {
			ev.Kind = pubsub.KindComment
			ev.Text = fmt.Sprintf("msg %d", i)
		}
		if _, err := mc.Publish(ctx, grant.BroadcastID, ev); err != nil {
			t.Fatalf("publish event %d: %v", i, err)
		}
	}

	// Origin-down window: once the stream is mid-flight, fail 100% of
	// upstream pulls. The edges must keep answering polls from their stale
	// cached chunklists instead of propagating errors (§4.3 degradation).
	waitFor(t, 10*time.Second, "mid-stream chunks", func() bool { return chunksSeen.Load() >= 8 })
	downCfg := upFaults.Config()
	downCfg.ErrorRate = 1
	upFaults.SetConfig(downCfg)
	staleSum := func() int64 { return counterSum(p, "cdn_stale_serves_total") }
	staleBefore := staleSum()
	waitFor(t, 5*time.Second, "stale serves while origin down", func() bool { return staleSum() > staleBefore })
	// With the origin unreachable a direct poll must still succeed.
	clean := &hls.Client{BaseURL: edgeURL}
	if cl, err := clean.FetchChunkList(ctx, grant.BroadcastID, 0); err != nil {
		t.Fatalf("poll while origin down: %v (want stale chunklist)", err)
	} else if len(cl.Chunks) == 0 {
		t.Fatal("stale chunklist is empty")
	}
	upFaults.SetConfig(faults.Config{
		ErrorRate:   0.15,
		LatencyRate: 0.10,
		LatencyMin:  500 * time.Microsecond,
		LatencyMax:  2 * time.Millisecond,
	})

	// The broadcast must complete end-to-end despite everything above.
	select {
	case err := <-pubErr:
		if err != nil {
			t.Fatalf("publisher: %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("publisher never finished")
	}
	select {
	case <-hlsEnded:
	case <-time.After(15 * time.Second):
		t.Fatalf("HLS poller never saw the end marker (chunks seen: %d/%d)", chunksSeen.Load(), totalChunks)
	}
	if err := <-hlsPollErr; err != nil {
		t.Fatalf("HLS poll: %v", err)
	}
	select {
	case <-rtmpDone:
	case <-time.After(15 * time.Second):
		buf := make([]byte, 1<<20)
		buf = buf[:runtime.Stack(buf, true)]
		t.Fatalf("RTMP viewer frame channel never closed\n%s", buf)
	}
	select {
	case err := <-psDone:
		if err != nil {
			t.Fatalf("pubsub consumer: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("pubsub consumer never saw channel close (events: %d/%d)", eventsSeen.Load(), totalEvents)
	}

	// RTMP viewer: resumed past the deterministic reset, stream strictly
	// ordered, stall ratio bounded (gaps during redials allowed).
	if err := rv.Err(); err != nil {
		t.Fatalf("resilient viewer terminal err = %v, want clean end", err)
	}
	if rv.Reconnects() < 1 {
		t.Fatalf("Reconnects = %d, want ≥ 1 after forced reset", rv.Reconnects())
	}
	for i := 1; i < len(rtmpSeqs); i++ {
		if rtmpSeqs[i] <= rtmpSeqs[i-1] {
			t.Fatalf("seq %d after %d: duplicate or reordered frame", rtmpSeqs[i], rtmpSeqs[i-1])
		}
	}
	if len(rtmpSeqs) < totalFrames/2 {
		t.Fatalf("RTMP viewer stall ratio too high: received %d/%d frames", len(rtmpSeqs), totalFrames)
	}
	if last := rtmpSeqs[len(rtmpSeqs)-1]; last < 60 {
		t.Fatalf("RTMP viewer never caught up after reset: last seq %d", last)
	}

	// HLS viewer: bounded stall ratio — at least 80% of chunks observed
	// (the poller catches up from the chunklist after the down window).
	if got := chunksSeen.Load(); got < int64(totalChunks*8/10) {
		t.Fatalf("HLS viewer saw %d/%d chunks", got, totalChunks)
	}
	// Pubsub: retries make delivery exact, not just eventual — injected
	// transport errors fire before the request is forwarded, so retried
	// publishes never duplicate.
	if got := eventsSeen.Load(); got != totalEvents {
		t.Fatalf("pubsub consumer saw %d/%d events", got, totalEvents)
	}

	// The run only counts if the injectors actually fired on every hop.
	for name, inj := range map[string]*faults.Injector{
		"origin-edge": upFaults, "hls": hlsFaults, "pubsub": psFaults, "rtmp-conn": viewerFaults,
	} {
		if inj.Stats().Total() == 0 {
			t.Errorf("%s injector never fired — chaos run is vacuous", name)
		}
	}

	// Every paper delay component must have registered observations in the
	// platform's shared registry by the end of the soak: chunking at the
	// origins, origin→edge on upstream pulls, polling and buffering at the
	// HLS viewer (Fig. 11's decomposition, live rather than simulated).
	snap := p.Metrics().Snapshot()
	histCount := func(name string) int64 {
		var n int64
		for _, h := range snap.Histograms {
			if h.Name == name {
				n += h.Count
			}
		}
		return n
	}
	for _, name := range []string{
		metrics.DelayChunking,
		metrics.DelayOriginEdge,
		metrics.DelayPolling,
		metrics.DelayBuffering,
	} {
		if histCount(name) == 0 {
			t.Errorf("histogram %s has no observations after chaos soak", name)
		}
	}

	// Control-plane accounting converges.
	waitFor(t, 5*time.Second, "live count drains", func() bool { return p.Ctrl.LiveCount() == 0 })
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
