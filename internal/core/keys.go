package core

import "crypto/ed25519"

// generateKeys wraps Ed25519 key generation for platform tests and helpers.
func generateKeys() (ed25519.PublicKey, ed25519.PrivateKey, error) {
	return ed25519.GenerateKey(nil)
}
