package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/control"
	"repro/internal/geo"
	"repro/internal/hls"
	"repro/internal/media"
	"repro/internal/rng"
	"repro/internal/rtmp"
)

// TestRTMPFullFallsBackToHLS exercises the §4.1 overflow path end-to-end:
// once the origin's RTMP cap is reached, a direct RTMP attempt is refused
// with "full" and the viewer consumes the same broadcast over HLS.
func TestRTMPFullFallsBackToHLS(t *testing.T) {
	p := startPlatform(t, PlatformConfig{
		ChunkDuration:   time.Second,
		RTMPViewerLimit: 1,
	})
	ctx := context.Background()
	cc := &control.Client{BaseURL: p.ControlURL()}
	uid, _ := cc.Register(ctx, "b")
	loc := geo.Location{City: "Ashburn", Lat: 39.04, Lon: -77.49}
	grant, err := cc.StartBroadcast(ctx, uid, loc)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := rtmp.Publish(ctx, grant.RTMPAddr, grant.BroadcastID, grant.Token, nil)
	if err != nil {
		t.Fatal(err)
	}

	// First viewer takes the single RTMP slot at the origin.
	g1, err := cc.Join(ctx, 101, grant.BroadcastID, loc)
	if err != nil || g1.Protocol != control.ProtoRTMP {
		t.Fatalf("first join = %+v, %v", g1, err)
	}
	v1, err := rtmp.Subscribe(ctx, g1.RTMPAddr, grant.BroadcastID, "", rtmp.ViewerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer v1.Close()

	// A client that ignores the control plane's HLS routing and tries
	// RTMP anyway (the paper documents exactly these circumvention
	// hacks) is refused by the origin itself.
	if _, err := rtmp.Subscribe(ctx, g1.RTMPAddr, grant.BroadcastID, "", rtmp.ViewerOptions{}); !errors.Is(err, rtmp.ErrFull) {
		t.Fatalf("cap bypass attempt error = %v, want ErrFull", err)
	}

	// The legitimate second viewer is routed to HLS and can watch.
	g2, err := cc.Join(ctx, 102, grant.BroadcastID, loc)
	if err != nil || g2.Protocol != control.ProtoHLS {
		t.Fatalf("second join = %+v, %v", g2, err)
	}
	enc := media.NewEncoder(media.EncoderConfig{}, rng.New(1))
	base := time.Now()
	for i := 0; i < 30; i++ {
		f := enc.Next(base.Add(time.Duration(i) * media.FrameDuration))
		if err := pub.Send(&f); err != nil {
			t.Fatal(err)
		}
	}
	hc := &hls.Client{BaseURL: g2.HLSBaseURL}
	deadline := time.Now().Add(3 * time.Second)
	for {
		cl, err := hc.FetchChunkList(ctx, grant.BroadcastID, 0)
		if err == nil && len(cl.Chunks) >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("HLS fallback never produced chunks: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	pub.End()
}

// TestPlatformFullCatalog boots the complete 8-origin/23-edge platform to
// make sure the full Figure 9 deployment assembles and serves.
func TestPlatformFullCatalog(t *testing.T) {
	p := NewPlatform(PlatformConfig{ChunkDuration: time.Second})
	if err := p.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer p.Stop()
	if len(p.Topo.Origins) != 8 || len(p.Topo.Edges) != 23 {
		t.Fatalf("topology = %d/%d", len(p.Topo.Origins), len(p.Topo.Edges))
	}
	ctx := context.Background()
	cc := &control.Client{BaseURL: p.ControlURL()}
	uid, _ := cc.Register(ctx, "b")
	// A broadcaster in Tokyo must land on the Tokyo origin; a viewer in
	// Paris must be served by the Paris edge.
	grant, err := cc.StartBroadcast(ctx, uid, geo.Location{City: "Tokyo", Lat: 35.68, Lon: 139.69})
	if err != nil {
		t.Fatal(err)
	}
	if grant.OriginID != "wowza-tokyo" {
		t.Fatalf("origin = %s", grant.OriginID)
	}
	g, err := cc.Join(ctx, 7, grant.BroadcastID, geo.Location{City: "Paris", Lat: 48.86, Lon: 2.35})
	if err != nil {
		t.Fatal(err)
	}
	if want := "/edge/fastly-paris/hls"; len(g.HLSBaseURL) == 0 || !contains(g.HLSBaseURL, want) {
		t.Fatalf("HLS URL = %q, want suffix %q", g.HLSBaseURL, want)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
