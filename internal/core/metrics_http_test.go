package core

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/testutil"
)

// TestPlatformMetricsEndpoints scrapes the assembled platform's /metrics and
// /debug/vars endpoints and checks every subsystem registered its instruments
// in the shared registry: RTMP ingest counters, CDN cache counters and the
// per-site breaker gauge, the paper's delay-component histograms, the fleet
// state gauges, and the pubsub hub counters.
func TestPlatformMetricsEndpoints(t *testing.T) {
	testutil.CheckGoroutines(t)
	p := startPlatform(t, PlatformConfig{ChunkDuration: time.Second})

	resp, err := http.Get(p.BaseURL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics status = %d", resp.StatusCode)
	}
	var snap metrics.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decode /metrics: %v", err)
	}

	names := make(map[string]bool)
	for _, c := range snap.Counters {
		names[c.Name] = true
	}
	for _, g := range snap.Gauges {
		names[g.Name] = true
	}
	for _, h := range snap.Histograms {
		names[h.Name] = true
	}
	for _, want := range []string{
		"rtmp_frames_in_total",
		"rtmp_frames_out_total",
		"rtmp_active_viewers",
		"rtmp_push_latency_seconds",
		"cdn_list_hits_total",
		"cdn_chunk_pulls_total",
		"cdn_breakers_open",
		"cdn_origin_chunks_total",
		metrics.DelayChunking,
		metrics.DelayOriginEdge,
		"fleet_nodes",
		"pubsub_publishes_total",
		"pubsub_channels",
	} {
		if !names[want] {
			t.Errorf("/metrics missing instrument %q", want)
		}
	}

	// The fleet gauges must account for every node: 2 origins + 3 edges,
	// all healthy at boot.
	var healthy int64
	for _, g := range snap.Gauges {
		if g.Name == "fleet_nodes" && g.Labels["state"] == "healthy" {
			healthy = g.Value
		}
	}
	if healthy != 5 {
		t.Errorf("fleet_nodes{state=healthy} = %d, want 5", healthy)
	}

	// The flat expvar-style view serves the same series as float64s.
	vresp, err := http.Get(p.BaseURL() + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer vresp.Body.Close()
	if vresp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/vars status = %d", vresp.StatusCode)
	}
	var vars map[string]float64
	if err := json.NewDecoder(vresp.Body).Decode(&vars); err != nil {
		t.Fatalf("decode /debug/vars: %v", err)
	}
	if len(vars) == 0 {
		t.Fatal("/debug/vars is empty")
	}
	found := false
	for k := range vars {
		if k == "pubsub_publishes_total" {
			found = true
		}
	}
	if !found {
		t.Error("/debug/vars missing pubsub_publishes_total")
	}
}
