package core

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/control"
	"repro/internal/faults"
	"repro/internal/geo"
	"repro/internal/health"
	"repro/internal/hls"
	"repro/internal/journal"
	"repro/internal/media"
	"repro/internal/resilience"
	"repro/internal/rng"
	"repro/internal/rtmp"
	"repro/internal/testutil"
)

// TestPlatformOriginCrashRecoverySoak crashes the ingest origin mid-broadcast
// — with a torn journal tail for good measure — while 50 failover-polling
// viewers watch, then restarts it and requires the whole system to stitch the
// broadcast back together: the resilient publisher redials and resumes by
// sequence on the same broadcast ID, journal replay rehydrates every sealed
// chunk (discarding the corrupted tail record), edges re-register for
// invalidation, and every viewer receives every chunk exactly once, in order,
// through the end marker. The detector must walk the origin down and back to
// healthy, and the recovery/journal instruments must all move.
func TestPlatformOriginCrashRecoverySoak(t *testing.T) {
	if testing.Short() {
		t.Skip("origin crash-recovery soak under -short")
	}
	testutil.CheckGoroutines(t)

	// Per-site in-memory journals, held by the test so the corruption hook
	// can tear the crashed origin's tail while it is down. Build invokes the
	// provider synchronously inside NewPlatform, so the map is complete (and
	// never written again) before any goroutine reads it.
	journals := make(map[string]*journal.Mem)
	p := startPlatform(t, PlatformConfig{
		ChunkDuration:   200 * time.Millisecond,
		RTMPViewerLimit: 1, // push every test viewer onto the HLS path
		Journal: func(siteID string) journal.Backend {
			m := journal.NewMem()
			journals[siteID] = m
			return m
		},
		EdgeRetry: resilience.Policy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond},
		// Fast detector so kill → down → healthy fits the soak: 25 ms beats,
		// suspect after 2 silent intervals, down after 4 (~100 ms).
		Health: health.Config{HeartbeatInterval: 25 * time.Millisecond},
	})
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	cc := &control.Client{BaseURL: p.ControlURL()}

	uid, err := cc.Register(ctx, "crash-recovery")
	if err != nil {
		t.Fatal(err)
	}
	ashburn := geo.Location{City: "Ashburn", Lat: 39.04, Lon: -77.49}
	grant, err := cc.StartBroadcast(ctx, uid, ashburn)
	if err != nil {
		t.Fatal(err)
	}
	originID := grant.OriginID
	if journals[originID] == nil {
		t.Fatalf("no journal backend for assigned origin %s", originID)
	}

	// Resilient publisher: the Resolve hook re-reads the origin's current
	// RTMP address before each redial, since a restart may re-listen on a
	// fresh port. The frame buffer comfortably exceeds frames-per-chunk, so
	// every frame past the journal's replay floor is on hand for resend.
	pub, err := rtmp.PublishResilient(ctx, grant.RTMPAddr, grant.BroadcastID, grant.Token, rtmp.PublishResilientConfig{
		Resolve:       func() string { return p.RTMPAddr(originID) },
		Backoff:       resilience.Policy{BaseDelay: 5 * time.Millisecond, MaxDelay: 50 * time.Millisecond},
		MaxReconnects: -1, // the origin stays down for several backoff rounds
		BufferFrames:  1024,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Publisher: 150 frames at 8 ms pace (30 chunks at 5 frames per 200 ms
	// chunk). Sends stall inside the redial loop while the origin is down,
	// then resume — so the crash always lands mid-broadcast.
	const totalFrames = 150
	framesPerChunk := int(200 * time.Millisecond / media.FrameDuration)
	totalChunks := totalFrames / framesPerChunk
	pubErr := make(chan error, 1)
	go func() {
		enc := media.NewEncoder(media.EncoderConfig{}, rng.New(33))
		base := time.Now()
		for i := 0; i < totalFrames; i++ {
			f := enc.Next(base.Add(time.Duration(i) * media.FrameDuration))
			if err := pub.Send(ctx, &f); err != nil {
				pubErr <- fmt.Errorf("send frame %d: %w", i, err)
				return
			}
			time.Sleep(8 * time.Millisecond)
		}
		pubErr <- pub.End(ctx)
	}()

	// Wait for the first chunk to reach the nearest edge before starting
	// viewers, so a not-yet-ingested broadcast is not mistaken for a gone one.
	servingEdge := p.Topo.NearestEdge(ashburn)
	warm := &hls.Client{BaseURL: p.EdgeURL(servingEdge), Retry: resilience.Policy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}}
	waitFor(t, 10*time.Second, "first chunk at the edge", func() bool {
		cl, err := warm.FetchChunkList(ctx, grant.BroadcastID, 0)
		return err == nil && len(cl.Chunks) > 0
	})

	// 50 failover-polling viewers. No background fault injection this time —
	// the origin crash is the chaos — so the delivery invariant is exact:
	// every viewer sees every chunk exactly once, in order.
	const viewers = 50
	type viewerRun struct {
		fp    *hls.FailoverPoller
		seqs  []uint64
		ended atomic.Bool
		mu    sync.Mutex
	}
	runs := make([]*viewerRun, viewers)
	viewerErrs := make(chan error, viewers)
	minSeen := func() int {
		m := int(^uint(0) >> 1)
		for _, vr := range runs {
			vr.mu.Lock()
			n := len(vr.seqs)
			vr.mu.Unlock()
			if n < m {
				m = n
			}
		}
		return m
	}
	for i := 0; i < viewers; i++ {
		vr := &viewerRun{}
		runs[i] = vr
		cfg := hls.FailoverConfig{
			Resolve: func(ctx context.Context) (string, error) {
				return cc.ResolveEdge(ctx, grant.BroadcastID, ashburn)
			},
			NewClient: func(baseURL string) *hls.Client {
				return &hls.Client{
					BaseURL:       baseURL,
					Timeout:       2 * time.Second,
					Retry:         resilience.Policy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond},
					RetryAfterCap: 5 * time.Millisecond,
				}
			},
			Poller: hls.PollerConfig{
				Interval: 20 * time.Millisecond,
				OnChunk: func(ev hls.ChunkEvent) {
					vr.mu.Lock()
					vr.seqs = append(vr.seqs, ev.Ref.Seq)
					vr.mu.Unlock()
				},
				OnEnd: func() { vr.ended.Store(true) },
			},
			FailureThreshold: 2,
			MaxFailovers:     -1,
			Backoff:          resilience.Policy{BaseDelay: 2 * time.Millisecond, MaxDelay: 10 * time.Millisecond},
		}
		vr.fp = hls.NewFailoverPoller(grant.BroadcastID, cfg)
		go func(vr *viewerRun) { viewerErrs <- vr.fp.Run(ctx) }(vr)
	}

	// The crash, orchestrated by the seeded scheduler: wait until viewers are
	// mid-stream, kill the ingest origin, tear the last bytes off its journal
	// while it is down (a torn write at the moment of the crash), hold it
	// down long enough for the detector to notice, restart.
	waitFor(t, 15*time.Second, "viewers mid-stream before the crash", func() bool { return minSeen() >= 6 })
	targetIdx := -1
	targets := make([]faults.CrashTarget, len(p.Topo.Origins))
	for i, o := range p.Topo.Origins {
		id := o.Site().ID
		if id == originID {
			targetIdx = i
		}
		targets[i] = faults.TargetFuncs{
			KillFn:    func() error { return p.KillOrigin(id) },
			RestartFn: func() error { return p.RestartOrigin(id) },
		}
	}
	if targetIdx < 0 {
		t.Fatalf("assigned origin %s not in topology", originID)
	}
	cs := faults.NewCrashScheduler(faults.CrashPlan{
		Target:   targetIdx,
		Downtime: 600 * time.Millisecond,
		Corrupt:  func(int) { journals[originID].CorruptTail(3) },
	}, targets)
	schedErr := make(chan error, 1)
	go func() { schedErr <- cs.Run(ctx) }()

	// While the origin is down: the detector walks it to down, and the
	// broadcast record at the control plane stays live — the broadcast is
	// interrupted, never force-ended.
	waitFor(t, 5*time.Second, "detector marks the crashed origin down", func() bool {
		st, ok := p.Health.State("origin:" + originID)
		return ok && st == health.StateDown
	})
	if n := p.Ctrl.LiveCount(); n != 1 {
		t.Errorf("live count during the outage = %d, want 1 (crash must not end the broadcast)", n)
	}

	select {
	case err := <-schedErr:
		if err != nil {
			t.Fatalf("crash scheduler: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("crash scheduler never completed")
	}
	if st := cs.Stats(); st.Crashes != 1 || st.Restarts != 1 {
		t.Fatalf("scheduler stats = %+v, want one crash and one restart", st)
	}
	waitFor(t, 5*time.Second, "detector walks the restarted origin back to healthy", func() bool {
		st, ok := p.Health.State("origin:" + originID)
		return ok && st == health.StateHealthy
	})

	// The broadcast completes end-to-end across the crash.
	select {
	case err := <-pubErr:
		if err != nil {
			t.Fatalf("publisher: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("publisher never finished")
	}
	if pub.Reconnects() == 0 {
		t.Error("publisher never reconnected despite the origin crash")
	}
	for i := 0; i < viewers; i++ {
		select {
		case err := <-viewerErrs:
			if err != nil {
				t.Fatalf("failover viewer: %v", err)
			}
		case <-time.After(60 * time.Second):
			t.Fatalf("a failover viewer never terminated (min chunks seen: %d/%d)", minSeen(), totalChunks)
		}
	}

	// The recovery invariant: every viewer saw the end marker and every chunk
	// sequence exactly once, in order — zero gaps, zero duplicates, across
	// the crash and the journal-replayed re-seal.
	for i, vr := range runs {
		if !vr.ended.Load() {
			t.Errorf("viewer %d never saw the end marker", i)
		}
		vr.mu.Lock()
		seqs := append([]uint64(nil), vr.seqs...)
		vr.mu.Unlock()
		if len(seqs) != totalChunks {
			t.Errorf("viewer %d saw %d chunks, want exactly %d", i, len(seqs), totalChunks)
			continue
		}
		for j, s := range seqs {
			if s != uint64(j) {
				t.Errorf("viewer %d: seq %d at position %d — gap or duplicate", i, s, j)
				break
			}
		}
	}

	// Recovery and journal instruments all moved: the crash appended records
	// before it, replay consumed them after it, and the torn tail was
	// detected and discarded.
	snap := p.Metrics().Snapshot()
	counter := func(name string) int64 {
		for _, c := range snap.Counters {
			if c.Name == name && c.Labels["site"] == originID {
				return c.Value
			}
		}
		return -1
	}
	for _, want := range []string{
		"journal_appends_total",
		"journal_batches_total",
		"journal_replayed_records_total",
	} {
		if v := counter(want); v <= 0 {
			t.Errorf("%s{site=%s} = %d, want > 0", want, originID, v)
		}
	}
	if v := counter("journal_corrupt_tails_total"); v < 1 {
		t.Errorf("journal_corrupt_tails_total{site=%s} = %d, want >= 1 (the tail was torn)", originID, v)
	}
	var recovered bool
	for _, h := range snap.Histograms {
		if h.Name == "origin_recovery_seconds" && h.Count >= 1 {
			recovered = true
		}
	}
	if !recovered {
		t.Error("origin_recovery_seconds histogram never observed a recovery")
	}

	// The same series are published over /metrics.
	resp, err := http.Get(p.BaseURL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"origin_recovery_seconds", "journal_replayed_records_total", "journal_corrupt_tails_total"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing series %q", want)
		}
	}

	waitFor(t, 5*time.Second, "live count drains", func() bool { return p.Ctrl.LiveCount() == 0 })
}
