// Package core assembles the complete platform of Figure 8 into a runnable
// system on real sockets: control plane (HTTPS analog), Wowza-like RTMP
// origins, Fastly-like HLS edges, and the PubNub-like message hub. It is the
// thing the paper measured, rebuilt — the crawler, the examples, the
// security demonstration and the Fig. 14 scalability benchmark all run
// against a Platform.
package core

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/cdn"
	"repro/internal/control"
	"repro/internal/geo"
	"repro/internal/health"
	"repro/internal/hls"
	"repro/internal/journal"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/pubsub"
	"repro/internal/resilience"
	"repro/internal/rtmp"
	"repro/internal/security"
)

// PlatformConfig configures a Platform.
type PlatformConfig struct {
	// OriginSites/EdgeSites default to the paper's full catalogs. Tests
	// and small demos can pass reduced sets.
	OriginSites []geo.Datacenter
	EdgeSites   []geo.Datacenter
	// ChunkDuration for HLS (default 3 s).
	ChunkDuration time.Duration
	// RTMPViewerLimit routes joins beyond it to HLS (default 100, §4.1);
	// it is enforced both at the control plane and at the origins.
	RTMPViewerLimit int
	// CommenterCap bounds commenters per broadcast (default 100, §2.1);
	// negative means unlimited.
	CommenterCap int
	// Net, when set, injects WAN latency into edge pulls.
	Net *netsim.Model
	// DisableGateway turns off the §5.3 relay structure.
	DisableGateway bool
	// Retention garbage-collects ended broadcasts (origin chunks, edge
	// caches, message channels) this long after they end; zero keeps
	// everything (small demos, tests).
	Retention time.Duration
	// APIRate, when set, throttles the control API per client host — the
	// limits the paper's crawler ran into (§3.1). Whitelisted hosts are
	// exempt, like the paper's measurement range.
	APIRate *control.RateLimiterConfig
	// UsageFlushInterval is how often the platform rolls the per-tenant
	// delivery meters into journaled daily usage records (and thus how much
	// metered usage a control crash can leave pending — the meters survive
	// and flush after recovery). Zero means 5 s.
	UsageFlushInterval time.Duration
	// WrapUpstream, when set, intercepts every store an edge pulls from.
	// The chaos tests pass a faults.Injector wrapper here to exercise the
	// origin↔edge hop under loss.
	WrapUpstream func(hls.Store) hls.Store
	// EdgeRetry and EdgeBreaker tune the edges' resilience layer; zero
	// values use the edge defaults.
	EdgeRetry   resilience.Policy
	EdgeBreaker resilience.BreakerConfig
	// Health tunes the fleet-health registry (heartbeat period, miss
	// thresholds); the zero value uses the health defaults.
	Health health.Config
	// EdgeMaxInflight/EdgeQueueDepth/EdgeQueueWait configure every edge's
	// load-shedding gate; zero EdgeMaxInflight disables shedding.
	EdgeMaxInflight int
	EdgeQueueDepth  int
	EdgeQueueWait   time.Duration
	// EdgeShedRetryAfter is the Retry-After hint shed responses carry.
	EdgeShedRetryAfter time.Duration
	// Seed drives global-list sampling.
	Seed uint64
	// Metrics is the shared registry every subsystem registers its
	// instruments in; nil means NewPlatform creates one. Start serves it
	// at /metrics (typed snapshot) and /debug/vars (flat expvar-style map).
	Metrics *metrics.Registry
	// Journal provides each origin's write-ahead log backend keyed by site
	// ID (journal.NewMem for tests, journal.OpenFile for deployments). The
	// control plane journals onto Journal("control"). Required for
	// KillOrigin/RestartOrigin and KillControl/RestartControl to recover
	// state; nil disables journaling.
	Journal func(siteID string) journal.Backend
	// Partitions, when set, is the link-cut registry the platform's
	// network boundaries consult (DESIGN.md §6.3's partition matrix):
	// node→control heartbeats stop crossing a cut "<role>:<site>"→
	// "control" or role-level "<role>"→"control" link, and the origin
	// auth path degrades to cached grants behind a cut "origin"→"control"
	// link. Nil disables partition injection.
	Partitions *netsim.Partitions
}

// Platform is the assembled, runnable livestreaming service.
type Platform struct {
	cfg     PlatformConfig
	Topo    *cdn.Topology
	Ctrl    *control.Service
	Hub     *pubsub.Hub
	Health  *health.Registry
	metrics *metrics.Registry

	// AuthCache is the degraded-mode grant cache fronting Ctrl on the
	// origin auth path: publishers and viewers the control plane already
	// admitted keep reconnecting through a control crash or partition.
	AuthCache *control.AuthCache

	mu         sync.Mutex
	rtmpAddrs  map[string]string // origin ID → listen address
	rtmpsAddrs map[string]string // origin ID → TLS listen address
	originByID map[string]*cdn.Origin
	tlsCreds   *security.TLSCredentials
	limiter    *control.RateLimiter
	endedAt    map[string]time.Time // broadcast → end time, for the janitor
	// pendingEnds are broadcasts whose data-plane end raced a control
	// outage: ForceEnd answered ErrUnavailable, so the end is replayed
	// after RestartControl — without this a broadcast whose publisher
	// disconnected mid-outage would stay live at the control plane forever.
	pendingEnds map[string]bool
	httpLn      net.Listener
	httpSrv     *http.Server
	cancel      context.CancelFunc
	runCtx      context.Context // the Start context; RestartOrigin re-listens under it
	started     bool

	recovery *metrics.Histogram // origin_recovery_seconds
}

// NewPlatform wires the components; call Start to open sockets.
func NewPlatform(cfg PlatformConfig) *Platform {
	p := &Platform{
		cfg:        cfg,
		rtmpAddrs:  make(map[string]string),
		rtmpsAddrs: make(map[string]string),
		originByID: make(map[string]*cdn.Origin),
		endedAt:    make(map[string]time.Time),
	}
	if cfg.APIRate != nil {
		p.limiter = control.NewRateLimiter(*cfg.APIRate)
	}
	p.metrics = cfg.Metrics
	if p.metrics == nil {
		p.metrics = metrics.NewRegistry()
	}
	p.Hub = pubsub.NewHub(cfg.CommenterCap)
	p.Hub.UseRegistry(p.metrics)
	// TLS credentials back the RTMPS (private broadcast) listeners; the
	// CA travels to clients via the authenticated control channel.
	creds, err := security.GenerateTLS()
	if err == nil {
		p.tlsCreds = creds
	}
	routes := control.Routes{
		AssignOrigin: p.assignOrigin,
		AssignEdge:   p.assignEdge,
		// MessageURL is filled in Start once the listener is up;
		// the closure-based routes read live state instead.
	}
	if p.tlsCreds != nil {
		routes.RTMPSAddr = p.rtmpsAddr
		routes.TLSCertPEM = p.tlsCreds.CertPEM
	}
	ctrlCfg := control.Config{
		RTMPViewerLimit: cfg.RTMPViewerLimit,
		Seed:            cfg.Seed,
		Routes:          routes,
		Metrics:         p.metrics,
	}
	if cfg.Journal != nil {
		ctrlCfg.Journal = cfg.Journal("control")
	}
	p.Ctrl = control.NewService(ctrlCfg)
	// Origins authorize against the cache, not the service directly: a
	// control crash or an origin→control partition downgrades auth to
	// cached grants instead of rejecting every reconnect.
	p.AuthCache = control.NewAuthCache(control.AuthCacheConfig{
		Service: p.Ctrl,
		Metrics: p.metrics,
		Gate: func() error {
			return cfg.Partitions.Check(cdn.RoleOrigin, "control")
		},
	})
	p.pendingEnds = make(map[string]bool)
	p.Topo = cdn.Build(cdn.TopologyConfig{
		OriginSites:    cfg.OriginSites,
		EdgeSites:      cfg.EdgeSites,
		ChunkDuration:  cfg.ChunkDuration,
		Retention:      cfg.Retention,
		ViewerCap:      valueOr(cfg.RTMPViewerLimit, control.DefaultRTMPViewerLimit),
		Auth:           p.AuthCache,
		OnBroadcastEnd: p.forceEnd,
		TenantOf:       p.Ctrl.TenantOf,
		// The adapters return untyped nil for untenanted broadcasts so the
		// data plane's interface nil-checks actually skip the metering (a
		// typed-nil *TenantMeter inside the interface would not).
		TenantFrameUsage: func(id string) rtmp.FrameUsage {
			if m := p.Ctrl.Meter(id); m != nil {
				return m
			}
			return nil
		},
		TenantChunkUsage: func(id string) cdn.ChunkUsage {
			if m := p.Ctrl.Meter(id); m != nil {
				return m
			}
			return nil
		},
		Net:            cfg.Net,
		DisableGateway: cfg.DisableGateway,
		WrapUpstream:   cfg.WrapUpstream,
		EdgeRetry:      cfg.EdgeRetry,
		EdgeBreaker:    cfg.EdgeBreaker,

		EdgeMaxInflight:    cfg.EdgeMaxInflight,
		EdgeQueueDepth:     cfg.EdgeQueueDepth,
		EdgeQueueWait:      cfg.EdgeQueueWait,
		EdgeShedRetryAfter: cfg.EdgeShedRetryAfter,
		Metrics:            p.metrics,
		Journal:            cfg.Journal,
	})
	p.recovery = p.metrics.Histogram("origin_recovery_seconds", recoveryBuckets)
	for _, o := range p.Topo.Origins {
		p.originByID[o.Site().ID] = o
	}
	// Fleet health: every node heartbeats into the registry (the loop
	// starts in Start); assignment routing consults node eligibility, so
	// joins and failover re-resolves skip suspect/down/draining nodes.
	hc := cfg.Health
	if hc.Metrics == nil {
		hc.Metrics = p.metrics
	}
	p.Health = health.NewRegistry(hc)
	for _, o := range p.Topo.Origins {
		p.Health.Register(healthNodeID(cdn.RoleOrigin, o.Site().ID))
	}
	for _, e := range p.Topo.Edges {
		p.Health.Register(healthNodeID(cdn.RoleEdge, e.Site().ID))
	}
	p.Topo.SetEligibility(func(role, siteID string) bool {
		return p.Health.Eligible(healthNodeID(role, siteID))
	})
	p.Ctrl.OnStart(func(id, originID string) {
		if o, ok := p.originByID[originID]; ok {
			p.Topo.AssignBroadcast(id, o)
		}
		p.Hub.Open(id)
	})
	p.Ctrl.OnEnd(func(id string) {
		p.Hub.Close(id)
		if cfg.Retention > 0 {
			p.mu.Lock()
			p.endedAt[id] = time.Now()
			p.mu.Unlock()
		}
	})
	return p
}

// healthNodeID names a node in the registry: "edge:<site>" / "origin:<site>".
func healthNodeID(role, siteID string) string { return role + ":" + siteID }

// forceEnd propagates a data-plane broadcast end (publisher disconnect,
// origin timeout) to the control plane. When control is unavailable the end
// is parked in pendingEnds and replayed by RestartControl — delivery already
// stopped, only the control record lags.
func (p *Platform) forceEnd(id string) {
	err := p.Ctrl.ForceEnd(id)
	if errors.Is(err, control.ErrUnavailable) {
		p.mu.Lock()
		p.pendingEnds[id] = true
		p.mu.Unlock()
	}
}

// KillControl crashes the control plane: the journal writer drains what was
// acknowledged, volatile state is wiped, and every API call answers 503
// until RestartControl. Live delivery continues — origins keep admitting
// cached publishers/viewers through the AuthCache and edges keep serving
// chunks; only new broadcasts and fresh joins need the control plane.
func (p *Platform) KillControl() {
	p.Ctrl.Crash()
}

// RestartControl recovers the control plane from its journal (torn tails
// truncated, recovery latency lands in control_recovery_seconds) and then
// replays the broadcast ends that raced the outage, so nothing stays
// falsely live. Ends are flushed in sorted order for determinism.
func (p *Platform) RestartControl() {
	p.Ctrl.Recover()
	p.mu.Lock()
	ends := make([]string, 0, len(p.pendingEnds))
	for id := range p.pendingEnds {
		ends = append(ends, id)
	}
	p.pendingEnds = make(map[string]bool)
	p.mu.Unlock()
	sort.Strings(ends)
	for _, id := range ends {
		p.forceEnd(id)
	}
}

// heartbeats beats every live node into the registry each interval. A killed
// edge stops beating — exactly what a crashed process looks like from the
// control plane — so the miss-count detector degrades it to suspect and then
// down without any special-casing.
func (p *Platform) heartbeats(ctx context.Context) {
	ticker := time.NewTicker(p.Health.Interval())
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		for _, o := range p.Topo.Origins {
			if o.Killed() || p.partitionedFromControl(cdn.RoleOrigin, o.Site().ID) {
				continue
			}
			p.Health.Heartbeat(healthNodeID(cdn.RoleOrigin, o.Site().ID))
		}
		for _, e := range p.Topo.Edges {
			if e.Killed() || p.partitionedFromControl(cdn.RoleEdge, e.Site().ID) {
				continue
			}
			p.Health.Heartbeat(healthNodeID(cdn.RoleEdge, e.Site().ID))
		}
	}
}

// partitionedFromControl reports whether a node's heartbeat path to the
// control plane is cut — at role granularity ("edge"→"control") or node
// granularity ("edge:sfo"→"control"). A partitioned node keeps serving
// traffic; it only looks dead to the health detector, exactly the
// false-suspicion an asymmetric partition produces in the paper's topology.
func (p *Platform) partitionedFromControl(role, siteID string) bool {
	return p.cfg.Partitions.IsCut(role, "control") ||
		p.cfg.Partitions.IsCut(healthNodeID(role, siteID), "control")
}

// recoveryBuckets resolve origin crash-recovery time: journal replay plus
// re-listen, expected in the milliseconds for in-memory backends and tens of
// milliseconds for file-backed journals of realistic size.
var recoveryBuckets = []time.Duration{
	time.Millisecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	25 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	250 * time.Millisecond,
	time.Second,
	5 * time.Second,
}

// OriginByID returns the origin at the given site, or nil.
func (p *Platform) OriginByID(siteID string) *cdn.Origin {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.originByID[siteID]
}

// KillOrigin crashes an origin process: its RTMP server aborts (publishers
// and viewers see a dead transport, never a clean end), its journal writer
// drains what was already acknowledged, its volatile broadcast state is
// dropped, and it stops heartbeating — so the detector walks it healthy →
// suspect → down and assignment routing skips it. Broadcast records at the
// control plane stay live: the broadcast is interrupted, not ended.
func (p *Platform) KillOrigin(siteID string) error {
	o := p.OriginByID(siteID)
	if o == nil {
		return fmt.Errorf("core: no origin %q", siteID)
	}
	o.Crash()
	return nil
}

// RestartOrigin recovers a crashed origin: journal replay rehydrates every
// live broadcast and sealed chunk (damaged tails are discarded), the fresh
// RTMP server re-listens — on the previous address when the port is still
// free, an ephemeral one otherwise — edges re-register for invalidation,
// and heartbeats resume so the health detector walks it back to healthy.
// The wall-clock cost lands in the origin_recovery_seconds histogram.
func (p *Platform) RestartOrigin(siteID string) error {
	o := p.OriginByID(siteID)
	if o == nil {
		return fmt.Errorf("core: no origin %q", siteID)
	}
	if !o.Killed() {
		return nil
	}
	start := time.Now()
	o.Recover()
	p.mu.Lock()
	ctx := p.runCtx
	prevAddr := p.rtmpAddrs[siteID]
	prevTLS := p.rtmpsAddrs[siteID]
	p.mu.Unlock()
	if ctx == nil {
		return fmt.Errorf("core: platform not started")
	}
	srv := o.RTMP()
	ln, err := srv.Listen(ctx, prevAddr)
	if err != nil {
		// The old port may still be in TIME_WAIT or taken; an ephemeral
		// port works because the control plane re-resolves addresses on
		// every assignment.
		if ln, err = srv.Listen(ctx, "127.0.0.1:0"); err != nil {
			return fmt.Errorf("core: origin %s re-listen: %w", siteID, err)
		}
	}
	p.mu.Lock()
	p.rtmpAddrs[siteID] = ln.Addr().String()
	p.mu.Unlock()
	if p.tlsCreds != nil && prevTLS != "" {
		tln, err := srv.ListenTLS(ctx, prevTLS, p.tlsCreds.ServerConfig())
		if err != nil {
			if tln, err = srv.ListenTLS(ctx, "127.0.0.1:0", p.tlsCreds.ServerConfig()); err != nil {
				return fmt.Errorf("core: origin %s rtmps re-listen: %w", siteID, err)
			}
		}
		p.mu.Lock()
		p.rtmpsAddrs[siteID] = tln.Addr().String()
		p.mu.Unlock()
	}
	p.Topo.AttachEdges(o)
	p.Health.Heartbeat(healthNodeID(cdn.RoleOrigin, siteID))
	p.recovery.Observe(time.Since(start))
	return nil
}

// EdgeByID returns the edge at the given site, or nil.
func (p *Platform) EdgeByID(siteID string) *cdn.Edge {
	for _, e := range p.Topo.Edges {
		if e.Site().ID == siteID {
			return e
		}
	}
	return nil
}

// KillEdge crashes an edge: it refuses all traffic and stops heartbeating,
// so the detector walks it healthy → suspect → down and assignment routing
// skips it. Viewers mid-stream see 5xx and fail over.
func (p *Platform) KillEdge(siteID string) error {
	e := p.EdgeByID(siteID)
	if e == nil {
		return fmt.Errorf("core: no edge %q", siteID)
	}
	e.Kill()
	return nil
}

// DrainEdge gracefully winds an edge down: new assignments stop immediately
// (registry state Draining), inflight requests finish, and every response
// the edge keeps serving carries the drain hint that pushes viewers to
// re-resolve onto a sibling.
func (p *Platform) DrainEdge(siteID string) error {
	e := p.EdgeByID(siteID)
	if e == nil {
		return fmt.Errorf("core: no edge %q", siteID)
	}
	e.Drain()
	p.Health.SetDraining(healthNodeID(cdn.RoleEdge, e.Site().ID), true)
	return nil
}

// janitor periodically garbage-collects ended broadcasts: origin chunk
// stores (origin.Sweep), edge caches, message channels, and topology
// assignments.
func (p *Platform) janitor(ctx context.Context) {
	interval := p.cfg.Retention / 2
	if interval < time.Second {
		interval = time.Second
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		p.SweepEnded(time.Now())
	}
}

// SweepEnded removes all state for broadcasts that ended more than the
// retention period before now. It returns how many broadcasts were
// collected. Exposed for tests and manual operation.
func (p *Platform) SweepEnded(now time.Time) int {
	if p.cfg.Retention == 0 {
		return 0
	}
	p.mu.Lock()
	var expired []string
	for id, at := range p.endedAt {
		if now.Sub(at) > p.cfg.Retention {
			expired = append(expired, id)
			delete(p.endedAt, id)
		}
	}
	p.mu.Unlock()
	for _, o := range p.Topo.Origins {
		o.Sweep(now)
	}
	for _, id := range expired {
		for _, e := range p.Topo.Edges {
			e.Evict(id)
		}
		p.Hub.Remove(id)
		p.Topo.ReleaseBroadcast(id)
	}
	if p.limiter != nil {
		p.limiter.Sweep(10 * p.cfg.Retention)
	}
	// Per-tenant join buckets share the sweep cadence with the per-client
	// API buckets.
	p.Ctrl.Sweep(10 * p.cfg.Retention)
	return len(expired)
}

// usageFlusher periodically rolls the per-tenant delivery meters into
// journaled daily usage records; a final flush runs at Stop so clean
// shutdowns account everything delivered.
func (p *Platform) usageFlusher(ctx context.Context) {
	interval := p.cfg.UsageFlushInterval
	if interval <= 0 {
		interval = 5 * time.Second
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			p.Ctrl.FlushUsage()
		}
	}
}

func valueOr(v, def int) int {
	if v == 0 {
		return def
	}
	return v
}

func (p *Platform) assignOrigin(loc geo.Location) (string, string) {
	o := p.Topo.NearestOrigin(loc)
	p.mu.Lock()
	addr := p.rtmpAddrs[o.Site().ID]
	p.mu.Unlock()
	return o.Site().ID, addr
}

func (p *Platform) assignEdge(broadcastID string, loc geo.Location) string {
	e := p.Topo.NearestEdge(loc)
	return p.EdgeURL(e)
}

func (p *Platform) rtmpsAddr(originID string) string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rtmpsAddrs[originID]
}

// Start opens one RTMP listener per origin and a single HTTP listener
// multiplexing the control API (/api), the message hub (/channel), and
// every edge (/edge/{id}/hls). All sockets bind loopback ephemeral ports.
func (p *Platform) Start(ctx context.Context) error {
	p.mu.Lock()
	if p.started {
		p.mu.Unlock()
		return fmt.Errorf("core: platform already started")
	}
	p.started = true
	p.mu.Unlock()

	ctx, cancel := context.WithCancel(ctx)
	p.mu.Lock()
	p.cancel = cancel
	p.runCtx = ctx
	p.mu.Unlock()

	for _, o := range p.Topo.Origins {
		ln, err := o.RTMP().Listen(ctx, "127.0.0.1:0")
		if err != nil {
			cancel()
			return fmt.Errorf("core: origin %s: %w", o.Site().ID, err)
		}
		p.mu.Lock()
		p.rtmpAddrs[o.Site().ID] = ln.Addr().String()
		p.mu.Unlock()
		if p.tlsCreds != nil {
			tln, err := o.RTMP().ListenTLS(ctx, "127.0.0.1:0", p.tlsCreds.ServerConfig())
			if err != nil {
				cancel()
				return fmt.Errorf("core: origin %s rtmps: %w", o.Site().ID, err)
			}
			p.mu.Lock()
			p.rtmpsAddrs[o.Site().ID] = tln.Addr().String()
			p.mu.Unlock()
		}
	}

	mux := http.NewServeMux()
	var apiHandler http.Handler = control.Handler("/api", p.Ctrl)
	if p.limiter != nil {
		apiHandler = p.limiter.Wrap(apiHandler)
	}
	mux.Handle("/api/", apiHandler)
	mux.Handle("/channel/", pubsub.Handler("/channel", p.Hub))
	mux.Handle("/fleet", health.Handler(p.Health))
	mux.Handle("/metrics", metrics.Handler(p.metrics))
	mux.Handle("/debug/vars", metrics.VarsHandler(p.metrics))
	for _, e := range p.Topo.Edges {
		prefix := "/edge/" + e.Site().ID + "/hls"
		mux.Handle(prefix+"/", hls.Handler(prefix, e))
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		cancel()
		return fmt.Errorf("core: http listen: %w", err)
	}
	p.mu.Lock()
	p.httpLn = ln
	p.httpSrv = &http.Server{Handler: mux}
	p.mu.Unlock()
	p.Ctrl.SetMessageURL("http://" + ln.Addr().String() + "/channel")
	if p.cfg.Retention > 0 {
		go p.janitor(ctx)
	}
	go p.usageFlusher(ctx)
	go p.heartbeats(ctx)
	go p.Health.Run(ctx)
	go func() {
		p.httpSrv.Serve(ln)
	}()
	go func() {
		<-ctx.Done()
		p.httpSrv.Close()
	}()
	return nil
}

// Stop tears the platform down.
func (p *Platform) Stop() {
	p.mu.Lock()
	cancel := p.cancel
	srv := p.httpSrv
	p.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	if srv != nil {
		srv.Close()
	}
	for _, o := range p.Topo.Origins {
		// Close (not RTMP().Close()) also drains the origin's journal
		// writer, so everything acknowledged before shutdown is durable.
		o.Close()
	}
	// Final usage flush before the control journal writer drains, so a clean
	// shutdown accounts every delivered frame and chunk.
	p.Ctrl.FlushUsage()
	p.Ctrl.Close()
}

// BaseURL returns the platform's HTTP root.
func (p *Platform) BaseURL() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.httpLn == nil {
		return ""
	}
	return "http://" + p.httpLn.Addr().String()
}

// ControlURL returns the control API base (for control.Client).
func (p *Platform) ControlURL() string { return p.BaseURL() + "/api" }

// MessageURL returns the pubsub base (for pubsub.Client).
func (p *Platform) MessageURL() string { return p.BaseURL() + "/channel" }

// EdgeURL returns the HLS base URL of an edge (for hls.Client).
func (p *Platform) EdgeURL(e *cdn.Edge) string {
	return p.BaseURL() + "/edge/" + e.Site().ID + "/hls"
}

// RTMPAddr returns an origin's listener address.
func (p *Platform) RTMPAddr(originID string) string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rtmpAddrs[originID]
}

// OriginFor exposes the ingest origin serving a broadcast.
func (p *Platform) OriginFor(broadcastID string) (*cdn.Origin, bool) {
	return p.Topo.OriginFor(broadcastID)
}

// Stats aggregates origin RTMP counters across the platform.
func (p *Platform) Stats() (framesIn, framesOut int64) {
	for _, o := range p.Topo.Origins {
		framesIn += o.RTMP().Stats().FramesIn
		framesOut += o.RTMP().Stats().FramesOut
	}
	return framesIn, framesOut
}

// Metrics returns the platform's shared instrument registry — the one
// every origin, edge, hub, and health gauge registers in, served at
// /metrics once the platform starts.
func (p *Platform) Metrics() *metrics.Registry { return p.metrics }

var _ rtmp.Auth = control.Auth{}            // the control plane satisfies origin auth
var _ rtmp.Auth = (*control.AuthCache)(nil) // …and so does its degraded-mode cache
