package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/control"
	"repro/internal/faults"
	"repro/internal/geo"
	"repro/internal/health"
	"repro/internal/hls"
	"repro/internal/media"
	"repro/internal/resilience"
	"repro/internal/rng"
	"repro/internal/rtmp"
	"repro/internal/testutil"
)

// TestPlatformFleetChaosSoak drives one broadcast through the assembled
// platform while the fleet degrades around the viewers: the edge serving
// them is killed outright (crash), the failover target is later drained
// (graceful wind-down), and an overload burst forces load shedding — all at
// a 10% background fault rate on the HLS path. Every failover-polling viewer
// must still receive chunks through end-of-stream with strictly increasing
// sequence numbers (gaps allowed, duplicates never), the detector must walk
// the killed edge to Down and hold the drained one at Draining, and the
// Sheds / Failovers / HeartbeatMisses counters must all move.
func TestPlatformFleetChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet chaos soak under -short")
	}
	testutil.CheckGoroutines(t)

	// Origin↔edge hop at a 10% background fault rate, with a test-controlled
	// gate in front: closing the gate parks one pull upstream so the
	// overload phase can pin the target edge's only inflight slot
	// deterministically.
	upGate := &upstreamGate{arrived: make(chan struct{}, 1)}
	upFaults := faults.New(faults.Config{
		Seed:        43,
		ErrorRate:   0.10,
		LatencyRate: 0.05,
		LatencyMin:  200 * time.Microsecond,
		LatencyMax:  time.Millisecond,
	})
	p := startPlatform(t, PlatformConfig{
		ChunkDuration:   200 * time.Millisecond,
		RTMPViewerLimit: 1, // push every test viewer onto the HLS path
		WrapUpstream: func(s hls.Store) hls.Store {
			return &gatedStore{inner: upFaults.Store(s), g: upGate}
		},
		EdgeRetry: resilience.Policy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond},
		// Fast detector so kill → down fits the soak: 25 ms beats, suspect
		// after 2 silent intervals, down after 4 (~100 ms).
		Health: health.Config{HeartbeatInterval: 25 * time.Millisecond},
		// Shed hint kept tiny; viewer clients cap their Retry-After honor
		// anyway.
		EdgeShedRetryAfter: 10 * time.Millisecond,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	cc := &control.Client{BaseURL: p.ControlURL()}

	uid, err := cc.Register(ctx, "fleet-chaos")
	if err != nil {
		t.Fatal(err)
	}
	ashburn := geo.Location{City: "Ashburn", Lat: 39.04, Lon: -77.49}
	grant, err := cc.StartBroadcast(ctx, uid, ashburn)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := rtmp.Publish(ctx, grant.RTMPAddr, grant.BroadcastID, grant.Token, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Publisher: 150 frames at 8 ms pace (~1.2 s of wall time, 30 chunks
	// at 5 frames per 200 ms chunk) so the kill, overload, and drain
	// phases all land mid-stream.
	const totalFrames = 150
	framesPerChunk := int(200 * time.Millisecond / media.FrameDuration)
	totalChunks := totalFrames / framesPerChunk
	pubErr := make(chan error, 1)
	go func() {
		enc := media.NewEncoder(media.EncoderConfig{}, rng.New(21))
		base := time.Now()
		for i := 0; i < totalFrames; i++ {
			f := enc.Next(base.Add(time.Duration(i) * media.FrameDuration))
			if err := pub.Send(&f); err != nil {
				pubErr <- fmt.Errorf("send frame %d: %w", i, err)
				return
			}
			time.Sleep(8 * time.Millisecond)
		}
		pubErr <- pub.End()
	}()

	// Identify the fleet: viewers near Ashburn land on fastly-ashburn,
	// fail over to fastly-london when it dies, and migrate to fastly-tokyo
	// when london drains.
	servingEdge := p.EdgeByID("fastly-ashburn")
	failoverEdge := p.EdgeByID("fastly-london")
	lastEdge := p.EdgeByID("fastly-tokyo")
	if servingEdge == nil || failoverEdge == nil || lastEdge == nil {
		t.Fatal("expected small-site edge fleet missing")
	}
	if got := p.Topo.NearestEdge(ashburn); got != servingEdge {
		t.Fatalf("NearestEdge(ashburn) = %s", got.Site().ID)
	}

	// Wait for the first chunk to reach the serving edge before starting
	// viewers, so a not-yet-ingested broadcast is not mistaken for a gone
	// one.
	warm := &hls.Client{BaseURL: p.EdgeURL(servingEdge), Retry: resilience.Policy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}}
	waitFor(t, 10*time.Second, "first chunk at the edge", func() bool {
		cl, err := warm.FetchChunkList(ctx, grant.BroadcastID, 0)
		return err == nil && len(cl.Chunks) > 0
	})

	// Three failover-polling viewers, each with its own 10% fault injector
	// on the viewer↔edge HTTP hop and a control-plane re-resolve loop.
	const viewers = 3
	type viewerRun struct {
		fp    *hls.FailoverPoller
		seqs  []uint64
		ended atomic.Bool
		mu    sync.Mutex
	}
	runs := make([]*viewerRun, viewers)
	viewerInjectors := make([]*faults.Injector, viewers)
	viewerErrs := make(chan error, viewers)
	minSeen := func() int {
		m := int(^uint(0) >> 1)
		for _, vr := range runs {
			vr.mu.Lock()
			n := len(vr.seqs)
			vr.mu.Unlock()
			if n < m {
				m = n
			}
		}
		return m
	}
	for i := 0; i < viewers; i++ {
		vr := &viewerRun{}
		runs[i] = vr
		inj := faults.New(faults.Config{
			Seed:        100 + uint64(i),
			ErrorRate:   0.10, // the 10% background fault rate
			LatencyRate: 0.05,
			LatencyMin:  200 * time.Microsecond,
			LatencyMax:  time.Millisecond,
		})
		viewerInjectors[i] = inj
		cfg := hls.FailoverConfig{
			Resolve: func(ctx context.Context) (string, error) {
				return cc.ResolveEdge(ctx, grant.BroadcastID, ashburn)
			},
			NewClient: func(baseURL string) *hls.Client {
				return &hls.Client{
					BaseURL:       baseURL,
					HTTPClient:    inj.Client(nil),
					Timeout:       2 * time.Second,
					Retry:         resilience.Policy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond},
					RetryAfterCap: 5 * time.Millisecond,
				}
			},
			Poller: hls.PollerConfig{
				Interval: 15 * time.Millisecond,
				OnChunk: func(ev hls.ChunkEvent) {
					vr.mu.Lock()
					vr.seqs = append(vr.seqs, ev.Ref.Seq)
					vr.mu.Unlock()
				},
				OnEnd: func() { vr.ended.Store(true) },
			},
			FailureThreshold: 2,
			MaxFailovers:     -1, // the re-resolve may hand back a dying edge for a few beats
			Backoff:          resilience.Policy{BaseDelay: 2 * time.Millisecond, MaxDelay: 10 * time.Millisecond},
		}
		vr.fp = hls.NewFailoverPoller(grant.BroadcastID, cfg)
		go func(vr *viewerRun) { viewerErrs <- vr.fp.Run(ctx) }(vr)
	}

	// Phase 1 — kill the serving edge mid-broadcast. Its heartbeats stop,
	// the detector walks it suspect → down, Join/ResolveEdge stop handing
	// it out, and every viewer fails over.
	waitFor(t, 10*time.Second, "viewers mid-stream before the kill", func() bool { return minSeen() >= 4 })
	if err := p.KillEdge(servingEdge.Site().ID); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "detector marks the killed edge down", func() bool {
		st, ok := p.Health.State("edge:fastly-ashburn")
		return ok && st == health.StateDown
	})
	waitFor(t, 5*time.Second, "assignment moves off the killed edge", func() bool {
		return p.Topo.NearestEdge(ashburn) == failoverEdge
	})

	// Phase 2 — overload the failover edge: clamp it to one inflight
	// request with a single queue slot, park a chunk fetch on the gated
	// upstream so that slot stays pinned, then fire 40 concurrent fetches.
	// All of them must be shed with the overload error.
	waitFor(t, 10*time.Second, "viewers resumed on the failover edge", func() bool { return minSeen() >= 8 })
	failoverEdge.SetLimits(1, 1, time.Millisecond)
	upGate.block()
	holderDone := make(chan struct{})
	go func() {
		defer close(holderDone)
		// An uncached far-future chunk forces an upstream pull, which parks
		// on the gate while holding the edge's only inflight slot.
		_, _ = failoverEdge.Chunk(ctx, grant.BroadcastID, 1<<40)
	}()
	select {
	case <-upGate.arrived:
	case <-time.After(5 * time.Second):
		t.Fatal("slot-pinning fetch never reached the gated upstream")
	}
	var burstSheds, burstOK atomic.Int64
	var burst sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < 40; i++ {
		burst.Add(1)
		go func() {
			defer burst.Done()
			<-start
			_, err := failoverEdge.ChunkList(ctx, grant.BroadcastID)
			switch {
			case errors.Is(err, hls.ErrOverloaded):
				burstSheds.Add(1)
			case err == nil:
				burstOK.Add(1)
			}
		}()
	}
	close(start)
	burst.Wait()
	failoverEdge.SetLimits(0, 0, 0) // lift the clamp so viewers recover
	upGate.open()
	select {
	case <-holderDone:
	case <-time.After(5 * time.Second):
		t.Fatal("slot-pinning fetch never returned after the gate opened")
	}
	if burstSheds.Load() == 0 {
		t.Fatalf("overload burst produced no sheds (ok=%d)", burstOK.Load())
	}
	if metricCounter(p, "cdn_sheds_total", failoverEdge.Site().ID) == 0 {
		t.Fatal("edge cdn_sheds_total counter never moved during the overload phase")
	}

	// Phase 3 — drain the failover edge. It keeps serving but hints every
	// response; viewers migrate to the last healthy sibling without losing
	// the stream.
	waitFor(t, 10*time.Second, "viewers past the overload phase", func() bool { return minSeen() >= 12 })
	if err := p.DrainEdge(failoverEdge.Site().ID); err != nil {
		t.Fatal(err)
	}
	if st, ok := p.Health.State("edge:fastly-london"); !ok || st != health.StateDraining {
		t.Fatalf("drained edge state = %v, want draining", st)
	}
	waitFor(t, 5*time.Second, "assignment moves off the draining edge", func() bool {
		return p.Topo.NearestEdge(ashburn) == lastEdge
	})

	// The broadcast completes end-to-end despite the fleet churn.
	select {
	case err := <-pubErr:
		if err != nil {
			t.Fatalf("publisher: %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("publisher never finished")
	}
	for i := 0; i < viewers; i++ {
		select {
		case err := <-viewerErrs:
			if err != nil {
				t.Fatalf("failover viewer: %v", err)
			}
		case <-time.After(20 * time.Second):
			t.Fatalf("a failover viewer never terminated (min chunks seen: %d/%d)", minSeen(), totalChunks)
		}
	}

	// Every viewer: end marker seen, strictly increasing sequences (no
	// dupes, no reordering), and at least 80% chunk coverage.
	var totalFailovers, totalDrainHints int64
	for i, vr := range runs {
		if !vr.ended.Load() {
			t.Errorf("viewer %d never saw the end marker", i)
		}
		vr.mu.Lock()
		seqs := append([]uint64(nil), vr.seqs...)
		vr.mu.Unlock()
		for j := 1; j < len(seqs); j++ {
			if seqs[j] <= seqs[j-1] {
				t.Errorf("viewer %d: seq %d after %d — duplicate or reordered", i, seqs[j], seqs[j-1])
			}
		}
		if len(seqs) < totalChunks*8/10 {
			t.Errorf("viewer %d saw %d/%d chunks", i, len(seqs), totalChunks)
		}
		totalFailovers += vr.fp.Failovers()
		totalDrainHints += vr.fp.DrainHints()
	}
	if totalFailovers == 0 {
		t.Error("no viewer ever failed over despite a killed and a drained edge")
	}
	if totalDrainHints == 0 {
		t.Error("no viewer ever saw a drain hint from the draining edge")
	}

	// Fleet-health counters and terminal states.
	if p.Health.Stats().HeartbeatMisses.Load() == 0 {
		t.Error("HeartbeatMisses never moved despite a killed edge")
	}
	if st, _ := p.Health.State("edge:fastly-ashburn"); st != health.StateDown {
		t.Errorf("killed edge final state = %v, want down", st)
	}
	if st, _ := p.Health.State("edge:fastly-london"); st != health.StateDraining {
		t.Errorf("drained edge final state = %v, want draining", st)
	}
	if st, _ := p.Health.State("edge:fastly-tokyo"); st != health.StateHealthy {
		t.Errorf("surviving edge state = %v, want healthy", st)
	}

	// The background injectors actually fired — the soak was not vacuous.
	injected := upFaults.Stats().Total()
	for _, inj := range viewerInjectors {
		injected += inj.Stats().Total()
	}
	if injected == 0 {
		t.Error("fault injectors never fired — chaos run is vacuous")
	}

	// The /fleet endpoint publishes the same picture.
	resp, err := http.Get(p.BaseURL() + "/fleet")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var fleet struct {
		Nodes []struct {
			ID    string `json:"id"`
			State string `json:"state"`
		} `json:"nodes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&fleet); err != nil {
		t.Fatal(err)
	}
	states := make(map[string]string, len(fleet.Nodes))
	for _, n := range fleet.Nodes {
		states[n.ID] = n.State
	}
	if states["edge:fastly-ashburn"] != "down" || states["edge:fastly-london"] != "draining" {
		t.Errorf("/fleet states = %v", states)
	}

	waitFor(t, 5*time.Second, "live count drains", func() bool { return p.Ctrl.LiveCount() == 0 })
}

// upstreamGate lets the fleet soak park upstream pulls on demand: while
// blocked, any store call waits (signalling arrival once) until the gate
// reopens or the caller's context ends.
type upstreamGate struct {
	mu      sync.Mutex
	blocked chan struct{} // non-nil → calls park until it closes
	arrived chan struct{} // capacity 1; signalled when a call parks
}

func (g *upstreamGate) block() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.blocked = make(chan struct{})
}

func (g *upstreamGate) open() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.blocked != nil {
		close(g.blocked)
		g.blocked = nil
	}
}

func (g *upstreamGate) wait(ctx context.Context) error {
	g.mu.Lock()
	ch := g.blocked
	g.mu.Unlock()
	if ch == nil {
		return nil
	}
	select {
	case g.arrived <- struct{}{}:
	default:
	}
	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// gatedStore interposes the gate in front of an upstream store.
type gatedStore struct {
	inner hls.Store
	g     *upstreamGate
}

func (s *gatedStore) ChunkList(ctx context.Context, id string) (*media.ChunkList, error) {
	if err := s.g.wait(ctx); err != nil {
		return nil, err
	}
	return s.inner.ChunkList(ctx, id)
}

func (s *gatedStore) Chunk(ctx context.Context, id string, seq uint64) (*media.Chunk, error) {
	if err := s.g.wait(ctx); err != nil {
		return nil, err
	}
	return s.inner.Chunk(ctx, id, seq)
}
