package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/control"
	"repro/internal/geo"
	"repro/internal/hls"
	"repro/internal/media"
	"repro/internal/pubsub"
	"repro/internal/rng"
	"repro/internal/rtmp"
)

// smallSites keeps integration tests to 2 origins + 3 edges.
func smallSites() ([]geo.Datacenter, []geo.Datacenter) {
	w := geo.WowzaSites()
	f := geo.FastlySites()
	return []geo.Datacenter{w[0], w[4]}, []geo.Datacenter{f[8], f[16], f[11]}
}

// metricCounter reads one labelled counter series from the platform registry
// — the way tests observe per-site CDN counters now that edges expose no
// bespoke stats snapshot.
func metricCounter(p *Platform, name, site string) int64 {
	for _, c := range p.Metrics().Snapshot().Counters {
		if c.Name == name && c.Labels["site"] == site {
			return c.Value
		}
	}
	return 0
}

// counterSum totals a counter across every site label.
func counterSum(p *Platform, name string) int64 {
	var n int64
	for _, c := range p.Metrics().Snapshot().Counters {
		if c.Name == name {
			n += c.Value
		}
	}
	return n
}

func startPlatform(t *testing.T, cfg PlatformConfig) *Platform {
	t.Helper()
	if cfg.OriginSites == nil {
		cfg.OriginSites, cfg.EdgeSites = smallSites()
	}
	p := NewPlatform(cfg)
	if err := p.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Stop)
	return p
}

func TestPlatformEndToEnd(t *testing.T) {
	p := startPlatform(t, PlatformConfig{
		ChunkDuration:   time.Second,
		RTMPViewerLimit: 2,
	})
	ctx := context.Background()
	cc := &control.Client{BaseURL: p.ControlURL()}

	// Register a broadcaster and start a broadcast near Ashburn.
	uid, err := cc.Register(ctx, "alice")
	if err != nil {
		t.Fatal(err)
	}
	ashburn := geo.Location{City: "Ashburn", Lat: 39.04, Lon: -77.49}
	grant, err := cc.StartBroadcast(ctx, uid, ashburn)
	if err != nil {
		t.Fatal(err)
	}
	if grant.OriginID != "wowza-ashburn" {
		t.Fatalf("assigned origin %s, want wowza-ashburn", grant.OriginID)
	}
	if grant.RTMPAddr == "" || grant.MessageURL == "" {
		t.Fatalf("incomplete grant: %+v", grant)
	}

	// Publish 60 frames (2.4 s of video at 1 s chunks → 2 full chunks).
	pub, err := rtmp.Publish(ctx, grant.RTMPAddr, grant.BroadcastID, grant.Token, nil)
	if err != nil {
		t.Fatal(err)
	}
	enc := media.NewEncoder(media.EncoderConfig{}, rng.New(1))
	base := time.Now()

	// Two RTMP viewers join first, then a third must be routed to HLS.
	var rtmpViewers []*rtmp.Viewer
	for i := 0; i < 2; i++ {
		vg, err := cc.Join(ctx, uint64(100+i), grant.BroadcastID, ashburn)
		if err != nil {
			t.Fatal(err)
		}
		if vg.Protocol != control.ProtoRTMP {
			t.Fatalf("viewer %d protocol = %s", i, vg.Protocol)
		}
		v, err := rtmp.Subscribe(ctx, vg.RTMPAddr, grant.BroadcastID, "", rtmp.ViewerOptions{})
		if err != nil {
			t.Fatal(err)
		}
		defer v.Close()
		rtmpViewers = append(rtmpViewers, v)
	}
	hlsGrant, err := cc.Join(ctx, 999, grant.BroadcastID, ashburn)
	if err != nil {
		t.Fatal(err)
	}
	if hlsGrant.Protocol != control.ProtoHLS || hlsGrant.HLSBaseURL == "" {
		t.Fatalf("3rd viewer grant = %+v, want HLS", hlsGrant)
	}

	for i := 0; i < 60; i++ {
		f := enc.Next(base.Add(time.Duration(i) * media.FrameDuration))
		if err := pub.Send(&f); err != nil {
			t.Fatal(err)
		}
	}

	// Comments and hearts through the message hub.
	mc := &pubsub.Client{BaseURL: hlsGrant.MessageURL}
	if _, err := mc.Publish(ctx, grant.BroadcastID, pubsub.Event{UserID: "u100", Kind: pubsub.KindComment, Text: "hi"}); err != nil {
		t.Fatal(err)
	}
	if _, err := mc.Publish(ctx, grant.BroadcastID, pubsub.Event{UserID: "u999", Kind: pubsub.KindHeart}); err != nil {
		t.Fatal(err)
	}

	// HLS viewer fetches chunks from its assigned edge.
	hc := &hls.Client{BaseURL: hlsGrant.HLSBaseURL}
	var cl *media.ChunkList
	deadline := time.Now().Add(3 * time.Second)
	for {
		cl, err = hc.FetchChunkList(ctx, grant.BroadcastID, 0)
		if err == nil && len(cl.Chunks) >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("edge never served chunks: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	chunk, err := hc.FetchChunk(ctx, grant.BroadcastID, cl.Chunks[0].Seq)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunk.Frames) != 25 {
		t.Fatalf("chunk frames = %d, want 25", len(chunk.Frames))
	}

	// End the broadcast; RTMP viewers see the end, control marks it.
	if err := pub.End(); err != nil {
		t.Fatal(err)
	}
	for i, v := range rtmpViewers {
		n := 0
		for range v.Frames() {
			n++
		}
		if n != 60 {
			t.Fatalf("RTMP viewer %d received %d/60 frames", i, n)
		}
	}
	deadline = time.Now().Add(2 * time.Second)
	for {
		info, err := cc.Info(ctx, grant.BroadcastID)
		if err == nil && !info.Live {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("broadcast still live after publisher ended")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Message channel closed with events intact.
	evs, closed, err := mc.Events(ctx, grant.BroadcastID, 0, false)
	if err != nil || !closed || len(evs) != 2 {
		t.Fatalf("events after end: %v closed=%v n=%d", err, closed, len(evs))
	}
}

func TestPlatformRejectsBadToken(t *testing.T) {
	p := startPlatform(t, PlatformConfig{ChunkDuration: time.Second})
	ctx := context.Background()
	cc := &control.Client{BaseURL: p.ControlURL()}
	uid, _ := cc.Register(ctx, "mallory")
	grant, err := cc.StartBroadcast(ctx, uid, geo.Location{City: "X"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rtmp.Publish(ctx, grant.RTMPAddr, grant.BroadcastID, "forged-token", nil); err == nil {
		t.Fatal("forged token accepted at origin")
	}
}

func TestPlatformGlobalListAndCrawlability(t *testing.T) {
	p := startPlatform(t, PlatformConfig{ChunkDuration: time.Second})
	ctx := context.Background()
	cc := &control.Client{BaseURL: p.ControlURL()}
	uid, _ := cc.Register(ctx, "b")
	var grants []control.BroadcastGrant
	for i := 0; i < 5; i++ {
		g, err := cc.StartBroadcast(ctx, uid, geo.Location{City: "X"})
		if err != nil {
			t.Fatal(err)
		}
		grants = append(grants, g)
	}
	list, err := cc.GlobalList(ctx)
	if err != nil || len(list) != 5 {
		t.Fatalf("global list = %d, %v", len(list), err)
	}
	for _, g := range grants {
		if err := cc.EndBroadcast(ctx, g.BroadcastID, g.Token); err != nil {
			t.Fatal(err)
		}
	}
	list, _ = cc.GlobalList(ctx)
	if len(list) != 0 {
		t.Fatalf("list after ends = %d", len(list))
	}
}

func TestPlatformDoubleStartFails(t *testing.T) {
	p := startPlatform(t, PlatformConfig{})
	if err := p.Start(context.Background()); err == nil {
		t.Fatal("double Start accepted")
	}
}

func TestPlatformSignedBroadcast(t *testing.T) {
	p := startPlatform(t, PlatformConfig{ChunkDuration: time.Second})
	ctx := context.Background()
	cc := &control.Client{BaseURL: p.ControlURL()}
	uid, _ := cc.Register(ctx, "signer")
	grant, err := cc.StartBroadcast(ctx, uid, geo.Location{City: "X"})
	if err != nil {
		t.Fatal(err)
	}
	pub, priv, err := func() ([]byte, []byte, error) {
		pk, sk, err := generateKeys()
		return pk, sk, err
	}()
	if err != nil {
		t.Fatal(err)
	}
	if err := cc.RegisterPublicKey(ctx, grant.BroadcastID, grant.Token, pub); err != nil {
		t.Fatal(err)
	}
	publisher, err := rtmp.Publish(ctx, grant.RTMPAddr, grant.BroadcastID, grant.Token, priv)
	if err != nil {
		t.Fatal(err)
	}
	viewerKey, err := cc.PublicKey(ctx, grant.BroadcastID)
	if err != nil {
		t.Fatal(err)
	}
	view, err := rtmp.Subscribe(ctx, grant.RTMPAddr, grant.BroadcastID, "", rtmp.ViewerOptions{PubKey: viewerKey})
	if err != nil {
		t.Fatal(err)
	}
	defer view.Close()
	enc := media.NewEncoder(media.EncoderConfig{}, rng.New(2))
	for i := 0; i < 5; i++ {
		f := enc.Next(time.Now())
		if err := publisher.Send(&f); err != nil {
			t.Fatal(err)
		}
	}
	publisher.End()
	n := 0
	for rf := range view.Frames() {
		if !rf.Verified {
			t.Fatal("platform-signed frame failed viewer verification")
		}
		n++
	}
	if n != 5 {
		t.Fatalf("received %d/5 signed frames", n)
	}
	if errors.Is(err, context.Canceled) {
		t.Fatal("unexpected cancellation")
	}
}
