package core

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/control"
	"repro/internal/geo"
	"repro/internal/hls"
	"repro/internal/journal"
	"repro/internal/media"
	"repro/internal/resilience"
	"repro/internal/rng"
	"repro/internal/rtmp"
	"repro/internal/testutil"
)

// tenantCounterSum totals a per-tenant-labelled counter across every site.
func tenantCounterSum(p *Platform, name, tenant string) int64 {
	var n int64
	for _, c := range p.Metrics().Snapshot().Counters {
		if c.Name == name && c.Labels["tenant"] == tenant {
			n += c.Value
		}
	}
	return n
}

// usageTotals sums a tenant's flushed rollups across days.
func usageTotals(t *testing.T, s *control.Service, tenantID string) (frames, chunks, bytes int64) {
	t.Helper()
	days, err := s.Usage(tenantID)
	if err != nil {
		t.Fatalf("Usage(%s): %v", tenantID, err)
	}
	for _, d := range days {
		frames += d.Frames
		chunks += d.Chunks
		bytes += d.Bytes
	}
	return
}

// TestPlatformNoisyNeighborSoak is the tenancy acceptance soak: one
// over-quota tenant hammers key-authenticated joins at far above its plan
// rate while two compliant tenants stream to HLS viewers. The loud tenant
// must be throttled at exactly its token-bucket plan limit (and, once its
// daily bytes are spent, by the quota check); the compliant tenants' viewers
// must see every chunk exactly once; and after a mid-soak control crash and
// recovery the per-tenant usage rollups must equal the delivered counts the
// data-plane instruments observed — byte for byte, for all three tenants.
func TestPlatformNoisyNeighborSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("noisy-neighbor tenancy soak under -short")
	}
	testutil.CheckGoroutines(t)

	journals := make(map[string]*journal.Mem)
	p := startPlatform(t, PlatformConfig{
		ChunkDuration:   200 * time.Millisecond,
		RTMPViewerLimit: 1, // first join per broadcast is RTMP, the rest HLS
		Journal: func(siteID string) journal.Backend {
			m := journal.NewMem()
			journals[siteID] = m
			return m
		},
		EdgeRetry:          resilience.Policy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond},
		UsageFlushInterval: 25 * time.Millisecond,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	admin := &control.Client{BaseURL: p.ControlURL()}
	ashburn := geo.Location{City: "Ashburn", Lat: 39.04, Lon: -77.49}

	// Three tenants: two compliant with roomy plans, one loud with a tight
	// join rate and a daily byte quota it is guaranteed to blow through.
	const loudRPS, loudBurst = 20.0, 5.0
	tA, err := admin.CreateTenant(ctx, "compliant-a", control.Plan{Name: "pro", MaxJoinRPS: 500, DailyBytesQuota: 1 << 40})
	if err != nil {
		t.Fatal(err)
	}
	tB, err := admin.CreateTenant(ctx, "compliant-b", control.Plan{Name: "pro", MaxJoinRPS: 500, DailyBytesQuota: 1 << 40})
	if err != nil {
		t.Fatal(err)
	}
	loud, err := admin.CreateTenant(ctx, "loud", control.Plan{Name: "free", MaxJoinRPS: loudRPS, JoinBurst: loudBurst, DailyBytesQuota: 4000})
	if err != nil {
		t.Fatal(err)
	}
	keyA, err := admin.IssueAPIKey(ctx, tA.ID)
	if err != nil {
		t.Fatal(err)
	}
	keyB, err := admin.IssueAPIKey(ctx, tB.ID)
	if err != nil {
		t.Fatal(err)
	}
	keyL, err := admin.IssueAPIKey(ctx, loud.ID)
	if err != nil {
		t.Fatal(err)
	}
	cA := &control.Client{BaseURL: admin.BaseURL, APIKey: keyA}
	cB := &control.Client{BaseURL: admin.BaseURL, APIKey: keyB}
	cL := &control.Client{BaseURL: admin.BaseURL, APIKey: keyL}

	alice, err := admin.Register(ctx, "alice")
	if err != nil {
		t.Fatal(err)
	}
	bob, err := admin.Register(ctx, "bob")
	if err != nil {
		t.Fatal(err)
	}
	lou, err := admin.Register(ctx, "lou")
	if err != nil {
		t.Fatal(err)
	}
	carol, err := admin.Register(ctx, "carol")
	if err != nil {
		t.Fatal(err)
	}

	grantA, err := cA.StartBroadcast(ctx, alice, ashburn)
	if err != nil {
		t.Fatal(err)
	}
	grantB, err := cB.StartBroadcast(ctx, bob, ashburn)
	if err != nil {
		t.Fatal(err)
	}
	grantL, err := cL.StartBroadcast(ctx, lou, ashburn)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []struct{ bcast, tenant string }{
		{grantA.BroadcastID, tA.ID}, {grantB.BroadcastID, tB.ID}, {grantL.BroadcastID, loud.ID},
	} {
		if got := p.Ctrl.TenantOf(want.bcast); got != want.tenant {
			t.Fatalf("TenantOf(%s) = %q, want %q", want.bcast, got, want.tenant)
		}
	}

	// Connect all three publishers before any viewer subscribes so the
	// origins know the broadcasts; frames start flowing only after the RTMP
	// viewer below is attached, keeping its exactly-once check full-stream.
	pubA, err := rtmp.Publish(ctx, grantA.RTMPAddr, grantA.BroadcastID, grantA.Token, nil)
	if err != nil {
		t.Fatal(err)
	}
	pubB, err := rtmp.Publish(ctx, grantB.RTMPAddr, grantB.BroadcastID, grantB.Token, nil)
	if err != nil {
		t.Fatal(err)
	}
	pubL, err := rtmp.Publish(ctx, grantL.RTMPAddr, grantL.BroadcastID, grantL.Token, nil)
	if err != nil {
		t.Fatal(err)
	}

	// ---- Noisy neighbor, phase 1: hammer joins far above the plan rate. ----
	// Nothing has been delivered yet, so the byte quota is untouched and the
	// admissions measure the token bucket alone: at most burst + rps·elapsed
	// joins pass; everything else must come back 429 as a QuotaError.
	var admitted, throttled int
	hammerStart := time.Now()
	for time.Since(hammerStart) < 1100*time.Millisecond {
		_, err := cL.Join(ctx, lou, grantL.BroadcastID, ashburn)
		switch {
		case err == nil:
			admitted++
		case errors.Is(err, control.ErrQuotaExceeded):
			throttled++
			var qe *control.QuotaError
			if !errors.As(err, &qe) || qe.RetryAfterHint() < time.Second {
				t.Fatalf("throttled join err = %v, want QuotaError with >=1s hint", err)
			}
		default:
			t.Fatalf("hammer join: %v", err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	elapsed := time.Since(hammerStart).Seconds()
	bound := int(loudBurst+loudRPS*elapsed) + 2
	if admitted > bound {
		t.Errorf("loud tenant: %d joins admitted in %.2fs, token bucket allows at most %d", admitted, elapsed, bound)
	}
	if admitted < int(loudBurst) {
		t.Errorf("loud tenant: %d joins admitted, want at least the burst depth %.0f", admitted, loudBurst)
	}
	if throttled == 0 {
		t.Error("loud tenant was never throttled despite hammering at ~500 joins/s")
	}

	// Compliant tenants are untouched by the hammering: their joins admit.
	if _, err := cB.Join(ctx, carol, grantB.BroadcastID, ashburn); err != nil {
		t.Fatalf("compliant join during the hammer: %v", err)
	}

	// Tenant A's first viewer rides RTMP, so frame fan-out metering is
	// exercised alongside chunk serves.
	vg, err := cA.Join(ctx, carol, grantA.BroadcastID, ashburn)
	if err != nil {
		t.Fatal(err)
	}
	if vg.Protocol != control.ProtoRTMP {
		t.Fatalf("first viewer protocol = %s, want RTMP", vg.Protocol)
	}
	rv, err := rtmp.SubscribeResilient(ctx, vg.RTMPAddr, grantA.BroadcastID, "", rtmp.ReconnectConfig{
		Backoff:       resilience.Policy{BaseDelay: 2 * time.Millisecond, MaxDelay: 10 * time.Millisecond},
		MaxReconnects: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rv.Close()
	var rtmpSeqs []uint64
	rtmpDone := make(chan struct{})
	go func() {
		defer close(rtmpDone)
		for rf := range rv.Frames() {
			rtmpSeqs = append(rtmpSeqs, rf.Frame.Seq)
		}
	}()

	// Publishers: all three tenants stream 150 frames.
	const totalFrames = 150
	framesPerChunk := int(200 * time.Millisecond / media.FrameDuration)
	totalChunks := totalFrames / framesPerChunk
	publish := func(pub *rtmp.Publisher, seed uint64) chan error {
		errc := make(chan error, 1)
		go func() {
			enc := media.NewEncoder(media.EncoderConfig{}, rng.New(seed))
			base := time.Now()
			for i := 0; i < totalFrames; i++ {
				f := enc.Next(base.Add(time.Duration(i) * media.FrameDuration))
				if err := pub.Send(&f); err != nil {
					errc <- fmt.Errorf("send frame %d: %w", i, err)
					return
				}
				time.Sleep(8 * time.Millisecond)
			}
			errc <- pub.End()
		}()
		return errc
	}
	pubErrA := publish(pubA, 33)
	pubErrB := publish(pubB, 44)
	pubErrL := publish(pubL, 55)

	servingEdge := p.Topo.NearestEdge(ashburn)
	warm := &hls.Client{BaseURL: p.EdgeURL(servingEdge), Retry: resilience.Policy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}}
	for _, id := range []string{grantA.BroadcastID, grantB.BroadcastID, grantL.BroadcastID} {
		id := id
		waitFor(t, 10*time.Second, "first chunk at the edge for "+id, func() bool {
			cl, err := warm.FetchChunkList(ctx, id, 0)
			return err == nil && len(cl.Chunks) > 0
		})
	}

	// Compliant viewers: six per tenant, resolving through the control API.
	const viewersPerTenant = 6
	runsA, errsA := launchSoakViewers(ctx, viewersPerTenant, grantA.BroadcastID, func(ctx context.Context) (string, error) {
		return admin.ResolveEdge(ctx, grantA.BroadcastID, ashburn)
	})
	runsB, errsB := launchSoakViewers(ctx, viewersPerTenant, grantB.BroadcastID, func(ctx context.Context) (string, error) {
		return admin.ResolveEdge(ctx, grantB.BroadcastID, ashburn)
	})
	// One viewer on the loud tenant's stream pulls chunks so its metered
	// bytes march toward the 4000-byte daily quota.
	runsL, errsL := launchSoakViewers(ctx, 1, grantL.BroadcastID, func(ctx context.Context) (string, error) {
		return admin.ResolveEdge(ctx, grantL.BroadcastID, ashburn)
	})

	// ---- Mid-soak control crash. ----
	waitFor(t, 15*time.Second, "compliant viewers mid-stream before the crash", func() bool {
		return minChunksSeen(runsA) >= 4 && minChunksSeen(runsB) >= 4
	})
	p.KillControl()

	// Tenancy fails closed during the outage: no auth verdicts from wiped
	// state, just 503.
	if _, err := cL.Join(ctx, lou, grantL.BroadcastID, ashburn); !errors.Is(err, control.ErrUnavailable) {
		t.Fatalf("key-authed join during the outage = %v, want ErrUnavailable", err)
	}
	if _, err := admin.Usage(ctx, loud.ID); !errors.Is(err, control.ErrUnavailable) {
		t.Fatalf("usage during the outage = %v, want ErrUnavailable", err)
	}
	// Delivery — and per-tenant metering — never stalls.
	beforeA, beforeB := minChunksSeen(runsA), minChunksSeen(runsB)
	waitFor(t, 15*time.Second, "chunks flowing through the outage", func() bool {
		return minChunksSeen(runsA) >= beforeA+2 && minChunksSeen(runsB) >= beforeB+2
	})

	p.RestartControl()

	// Replay rebuilt the tenancy state: rows, plans, keys, attribution.
	recovered, err := p.Ctrl.TenantInfo(loud.ID)
	if err != nil || recovered.Plan.MaxJoinRPS != loudRPS || recovered.Plan.DailyBytesQuota != 4000 {
		t.Fatalf("recovered loud tenant = %+v, err %v", recovered, err)
	}
	if got := p.Ctrl.TenantOf(grantA.BroadcastID); got != tA.ID {
		t.Fatalf("TenantOf after recovery = %q, want %q", got, tA.ID)
	}

	// ---- Noisy neighbor, phase 2: the daily byte quota. ----
	// The loud viewer keeps pulling chunks; once the flushed + pending bytes
	// cross the 4000-byte quota, joins that clear the rate limiter are
	// rejected by the quota check with a day-boundary Retry-After.
	waitFor(t, 30*time.Second, "loud tenant over its daily byte quota", func() bool {
		_, err := p.Ctrl.JoinKey(keyL, lou, grantL.BroadcastID, ashburn)
		var qe *control.QuotaError
		return errors.As(err, &qe) && qe.Reason == "daily delivered-bytes quota"
	})
	// The failover-resolve path sees the same 429, with the hint a
	// FailoverPoller would pace its backoff on.
	_, err = admin.ResolveEdge(ctx, grantL.BroadcastID, ashburn)
	var qe *control.QuotaError
	if !errors.As(err, &qe) || qe.RetryAfterHint() < time.Second {
		t.Fatalf("over-quota ResolveEdge = %v, want QuotaError with >=1s hint", err)
	}
	// Compliant tenants still admit joins and resolves.
	if _, err := cA.Join(ctx, carol, grantA.BroadcastID, ashburn); err != nil {
		t.Fatalf("compliant join after quota trip: %v", err)
	}
	if _, err := admin.ResolveEdge(ctx, grantB.BroadcastID, ashburn); err != nil {
		t.Fatalf("compliant resolve after quota trip: %v", err)
	}

	// ---- Drain: broadcasts end, viewers finish, exactly once. ----
	for _, pe := range []chan error{pubErrA, pubErrB, pubErrL} {
		select {
		case err := <-pe:
			if err != nil {
				t.Fatalf("publisher: %v", err)
			}
		case <-time.After(60 * time.Second):
			t.Fatal("a publisher never finished")
		}
	}
	drain := func(name string, n int, errs chan error, runs []*soakViewer) {
		for i := 0; i < n; i++ {
			select {
			case err := <-errs:
				if err != nil {
					t.Fatalf("%s viewer: %v", name, err)
				}
			case <-time.After(60 * time.Second):
				t.Fatalf("a %s viewer never terminated (min chunks seen: %d/%d)", name, minChunksSeen(runs), totalChunks)
			}
		}
	}
	drain("tenant-a", viewersPerTenant, errsA, runsA)
	drain("tenant-b", viewersPerTenant, errsB, runsB)
	drain("loud", 1, errsL, runsL)
	assertExactlyOnce(t, runsA, totalChunks)
	assertExactlyOnce(t, runsB, totalChunks)
	select {
	case <-rtmpDone:
	case <-time.After(60 * time.Second):
		t.Fatal("RTMP viewer never saw the stream end")
	}
	if len(rtmpSeqs) != totalFrames {
		t.Errorf("RTMP viewer saw %d frames, want exactly %d", len(rtmpSeqs), totalFrames)
	}
	for j, s := range rtmpSeqs {
		if s != uint64(j) {
			t.Errorf("RTMP viewer: frame seq %d at position %d — gap or duplicate", s, j)
			break
		}
	}

	// ---- Usage rollups equal delivered counts, across the crash. ----
	// Meters survive Crash (data-plane accumulators) and flushes journal
	// absolute day totals, so after a final flush every tenant's rollups must
	// match the per-tenant delivery instruments exactly.
	p.Ctrl.FlushUsage()
	for _, tn := range []control.Tenant{tA, tB, loud} {
		frames, chunks, bytes := usageTotals(t, p.Ctrl, tn.ID)
		wantFrames := tenantCounterSum(p, "rtmp_tenant_frames_out_total", tn.ID)
		wantChunks := tenantCounterSum(p, "cdn_tenant_chunks_out_total", tn.ID)
		wantBytes := tenantCounterSum(p, "rtmp_tenant_bytes_out_total", tn.ID) +
			tenantCounterSum(p, "cdn_tenant_bytes_out_total", tn.ID)
		if frames != wantFrames || chunks != wantChunks || bytes != wantBytes {
			t.Errorf("tenant %s rollups = (frames %d, chunks %d, bytes %d), delivered instruments say (%d, %d, %d)",
				tn.ID, frames, chunks, bytes, wantFrames, wantChunks, wantBytes)
		}
	}
	// Floors: tenant A delivered its full stream to the RTMP viewer and
	// every chunk to six HLS viewers; the loud tenant really went over quota.
	framesA, chunksA, _ := usageTotals(t, p.Ctrl, tA.ID)
	if framesA < totalFrames {
		t.Errorf("tenant A metered %d frames, want >= %d", framesA, totalFrames)
	}
	if chunksA < int64(viewersPerTenant*totalChunks) {
		t.Errorf("tenant A metered %d chunk serves, want >= %d", chunksA, viewersPerTenant*totalChunks)
	}
	_, _, bytesL := usageTotals(t, p.Ctrl, loud.ID)
	if bytesL < 4000 {
		t.Errorf("loud tenant metered %d bytes, expected its 4000-byte quota spent", bytesL)
	}
	// The /usage endpoint serves the same rollups over the wire.
	days, err := admin.Usage(ctx, tA.ID)
	if err != nil {
		t.Fatal(err)
	}
	var httpBytes int64
	for _, d := range days {
		httpBytes += d.Bytes
	}
	_, _, svcBytes := usageTotals(t, p.Ctrl, tA.ID)
	if httpBytes != svcBytes {
		t.Errorf("/usage bytes = %d, service says %d", httpBytes, svcBytes)
	}

	waitFor(t, 5*time.Second, "live count drains", func() bool { return p.Ctrl.LiveCount() == 0 })
}
