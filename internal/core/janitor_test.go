package core

import (
	"context"
	"errors"
	"net/http"
	"testing"
	"time"

	"repro/internal/control"
	"repro/internal/geo"
	"repro/internal/hls"
	"repro/internal/media"
	"repro/internal/rng"
	"repro/internal/rtmp"
)

// TestSweepEndedCollectsBroadcastState: after retention, ended broadcasts
// disappear from origins, edges, the message hub and the topology map.
func TestSweepEndedCollectsBroadcastState(t *testing.T) {
	p := startPlatform(t, PlatformConfig{
		ChunkDuration: time.Second,
		Retention:     time.Minute,
	})
	ctx := context.Background()
	cc := &control.Client{BaseURL: p.ControlURL()}
	uid, _ := cc.Register(ctx, "b")
	loc := geo.Location{City: "Ashburn", Lat: 39.04, Lon: -77.49}
	grant, err := cc.StartBroadcast(ctx, uid, loc)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := rtmp.Publish(ctx, grant.RTMPAddr, grant.BroadcastID, grant.Token, nil)
	if err != nil {
		t.Fatal(err)
	}
	enc := media.NewEncoder(media.EncoderConfig{}, rng.New(1))
	base := time.Now()
	for i := 0; i < 30; i++ {
		f := enc.Next(base.Add(time.Duration(i) * media.FrameDuration))
		pub.Send(&f)
	}
	pub.End()

	// Wait for end to propagate, then prime an edge cache.
	deadline := time.Now().Add(2 * time.Second)
	var vg control.ViewerGrant
	for {
		info, err := cc.Info(ctx, grant.BroadcastID)
		if err == nil && !info.Live {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("broadcast never ended")
		}
		time.Sleep(5 * time.Millisecond)
	}
	vg, err = func() (control.ViewerGrant, error) {
		// Join fails after end; use the edge URL route directly.
		return control.ViewerGrant{HLSBaseURL: p.EdgeURL(p.Topo.NearestEdge(loc))}, nil
	}()
	if err != nil {
		t.Fatal(err)
	}
	hc := &hls.Client{BaseURL: vg.HLSBaseURL}
	if _, err := hc.FetchChunkList(ctx, grant.BroadcastID, 0); err != nil {
		t.Fatalf("replay before sweep: %v", err)
	}

	// Before retention expires: nothing collected.
	if n := p.SweepEnded(time.Now()); n != 0 {
		t.Fatalf("premature sweep collected %d", n)
	}
	// After retention: everything goes.
	if n := p.SweepEnded(time.Now().Add(2 * time.Minute)); n != 1 {
		t.Fatalf("sweep collected %d, want 1", n)
	}
	if _, err := hc.FetchChunkList(ctx, grant.BroadcastID, 0); !errors.Is(err, hls.ErrNotFound) {
		t.Fatalf("swept broadcast still served: %v", err)
	}
	if _, ok := p.Topo.OriginFor(grant.BroadcastID); ok {
		t.Fatal("topology assignment survived sweep")
	}
}

// TestAPIRateLimiting: the control API throttles a greedy client but not a
// whitelisted one — the paper's crawler situation.
func TestAPIRateLimiting(t *testing.T) {
	p := startPlatform(t, PlatformConfig{
		ChunkDuration: time.Second,
		APIRate: &control.RateLimiterConfig{
			RequestsPerSecond: 0.001,
			Burst:             3,
			Whitelist:         nil, // loopback NOT whitelisted: everything throttles
		},
	})
	url := p.ControlURL() + "/global"
	codes := []int{}
	for i := 0; i < 5; i++ {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		codes = append(codes, resp.StatusCode)
	}
	throttled := 0
	for _, c := range codes {
		if c == http.StatusTooManyRequests {
			throttled++
		}
	}
	if throttled != 2 {
		t.Fatalf("codes = %v, want exactly 2 throttled", codes)
	}

	// Whitelisted platform: the same burst sails through.
	p2 := startPlatform(t, PlatformConfig{
		ChunkDuration: time.Second,
		APIRate: &control.RateLimiterConfig{
			RequestsPerSecond: 0.001,
			Burst:             1,
			Whitelist:         []string{"127.0.0.1"},
		},
	})
	for i := 0; i < 10; i++ {
		resp, err := http.Get(p2.ControlURL() + "/global")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("whitelisted request %d got %d", i, resp.StatusCode)
		}
	}
}
