package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/control"
	"repro/internal/faults"
	"repro/internal/geo"
	"repro/internal/health"
	"repro/internal/hls"
	"repro/internal/journal"
	"repro/internal/media"
	"repro/internal/netsim"
	"repro/internal/resilience"
	"repro/internal/rng"
	"repro/internal/rtmp"
	"repro/internal/testutil"
)

// soakViewers runs n HLS failover-polling viewers against a broadcast and
// returns the per-viewer runs plus a floor function over chunks seen — the
// shared machinery of the control-outage and partition soaks.
type soakViewer struct {
	fp    *hls.FailoverPoller
	seqs  []uint64
	ended atomic.Bool
	mu    sync.Mutex
}

func launchSoakViewers(ctx context.Context, n int, broadcastID string, resolve func(context.Context) (string, error)) ([]*soakViewer, chan error) {
	runs := make([]*soakViewer, n)
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		vr := &soakViewer{}
		runs[i] = vr
		cfg := hls.FailoverConfig{
			Resolve: resolve,
			NewClient: func(baseURL string) *hls.Client {
				return &hls.Client{
					BaseURL:       baseURL,
					Timeout:       2 * time.Second,
					Retry:         resilience.Policy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond},
					RetryAfterCap: 5 * time.Millisecond,
				}
			},
			Poller: hls.PollerConfig{
				Interval: 20 * time.Millisecond,
				OnChunk: func(ev hls.ChunkEvent) {
					vr.mu.Lock()
					vr.seqs = append(vr.seqs, ev.Ref.Seq)
					vr.mu.Unlock()
				},
				OnEnd: func() { vr.ended.Store(true) },
			},
			FailureThreshold: 2,
			MaxFailovers:     -1,
			Backoff:          resilience.Policy{BaseDelay: 2 * time.Millisecond, MaxDelay: 10 * time.Millisecond},
		}
		vr.fp = hls.NewFailoverPoller(broadcastID, cfg)
		go func(vr *soakViewer) { errs <- vr.fp.Run(ctx) }(vr)
	}
	return runs, errs
}

func minChunksSeen(runs []*soakViewer) int {
	m := int(^uint(0) >> 1)
	for _, vr := range runs {
		vr.mu.Lock()
		n := len(vr.seqs)
		vr.mu.Unlock()
		if n < m {
			m = n
		}
	}
	return m
}

// assertExactlyOnce requires every viewer to have seen the end marker and
// every chunk sequence 0..total-1 exactly once, in order.
func assertExactlyOnce(t *testing.T, runs []*soakViewer, total int) {
	t.Helper()
	for i, vr := range runs {
		if !vr.ended.Load() {
			t.Errorf("viewer %d never saw the end marker", i)
		}
		vr.mu.Lock()
		seqs := append([]uint64(nil), vr.seqs...)
		vr.mu.Unlock()
		if len(seqs) != total {
			t.Errorf("viewer %d saw %d chunks, want exactly %d", i, len(seqs), total)
			continue
		}
		for j, s := range seqs {
			if s != uint64(j) {
				t.Errorf("viewer %d: seq %d at position %d — gap or duplicate", i, s, j)
				break
			}
		}
	}
}

// TestPlatformControlCrashRecoverySoak kills the control plane mid-broadcast
// — with a torn journal tail — while HLS viewers poll and an RTMP viewer
// watches, and requires live delivery to keep flowing: the data plane never
// consults control per chunk, degraded clients serve cached edge mappings and
// queue joins, a broadcast that ends during the outage is parked and replayed
// after recovery, and the recovered control plane rehydrates every broadcast
// from its journal without ending anything falsely.
func TestPlatformControlCrashRecoverySoak(t *testing.T) {
	if testing.Short() {
		t.Skip("control crash-recovery soak under -short")
	}
	testutil.CheckGoroutines(t)

	journals := make(map[string]*journal.Mem)
	p := startPlatform(t, PlatformConfig{
		ChunkDuration:   200 * time.Millisecond,
		RTMPViewerLimit: 1, // one RTMP viewer, everyone else on HLS
		Journal: func(siteID string) journal.Backend {
			m := journal.NewMem()
			journals[siteID] = m
			return m
		},
		EdgeRetry: resilience.Policy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond},
		Health:    health.Config{HeartbeatInterval: 25 * time.Millisecond},
	})
	if journals["control"] == nil {
		t.Fatal("no journal backend for the control plane")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	cc := &control.Client{BaseURL: p.ControlURL()}
	ashburn := geo.Location{City: "Ashburn", Lat: 39.04, Lon: -77.49}

	// All registrations happen while control is up; the outage tests the
	// already-admitted population, which is the §4.1 steady state.
	alice, err := cc.Register(ctx, "alice")
	if err != nil {
		t.Fatal(err)
	}
	bob, err := cc.Register(ctx, "bob")
	if err != nil {
		t.Fatal(err)
	}
	carol, err := cc.Register(ctx, "carol")
	if err != nil {
		t.Fatal(err)
	}
	dave, err := cc.Register(ctx, "dave")
	if err != nil {
		t.Fatal(err)
	}

	grant, err := cc.StartBroadcast(ctx, alice, ashburn)
	if err != nil {
		t.Fatal(err)
	}
	grant2, err := cc.StartBroadcast(ctx, bob, ashburn)
	if err != nil {
		t.Fatal(err)
	}

	// Publishers. b1 streams across the whole soak; b2 is short and ends
	// during the outage, exercising the parked-end replay.
	pub, err := rtmp.Publish(ctx, grant.RTMPAddr, grant.BroadcastID, grant.Token, nil)
	if err != nil {
		t.Fatal(err)
	}

	// RTMP viewer: joins while control is up — before any frame flows, so
	// its exactly-once check covers the full stream — then must ride
	// through the outage on its established connection.
	vg, err := cc.Join(ctx, carol, grant.BroadcastID, ashburn)
	if err != nil {
		t.Fatal(err)
	}
	if vg.Protocol != control.ProtoRTMP {
		t.Fatalf("first viewer protocol = %s, want RTMP", vg.Protocol)
	}
	rv, err := rtmp.SubscribeResilient(ctx, vg.RTMPAddr, grant.BroadcastID, "", rtmp.ReconnectConfig{
		Backoff:       resilience.Policy{BaseDelay: 2 * time.Millisecond, MaxDelay: 10 * time.Millisecond},
		MaxReconnects: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rv.Close()
	var rtmpSeqs []uint64
	rtmpDone := make(chan struct{})
	go func() {
		defer close(rtmpDone)
		for rf := range rv.Frames() {
			rtmpSeqs = append(rtmpSeqs, rf.Frame.Seq)
		}
	}()
	pub2, err := rtmp.Publish(ctx, grant2.RTMPAddr, grant2.BroadcastID, grant2.Token, nil)
	if err != nil {
		t.Fatal(err)
	}
	enc2 := media.NewEncoder(media.EncoderConfig{}, rng.New(7))
	base2 := time.Now()
	for i := 0; i < 10; i++ {
		f := enc2.Next(base2.Add(time.Duration(i) * media.FrameDuration))
		if err := pub2.Send(&f); err != nil {
			t.Fatalf("b2 send frame %d: %v", i, err)
		}
	}

	const totalFrames = 150
	framesPerChunk := int(200 * time.Millisecond / media.FrameDuration)
	totalChunks := totalFrames / framesPerChunk
	pubErr := make(chan error, 1)
	go func() {
		enc := media.NewEncoder(media.EncoderConfig{}, rng.New(33))
		base := time.Now()
		for i := 0; i < totalFrames; i++ {
			f := enc.Next(base.Add(time.Duration(i) * media.FrameDuration))
			if err := pub.Send(&f); err != nil {
				pubErr <- fmt.Errorf("send frame %d: %w", i, err)
				return
			}
			time.Sleep(8 * time.Millisecond)
		}
		pubErr <- pub.End()
	}()

	// Degraded-mode resolver shared by every HLS viewer — warm it while
	// control is up so the outage has a cache to serve from.
	rc := control.NewResolverCache(control.ResolverCacheConfig{
		Client:  cc,
		Metrics: p.Metrics(),
		Breaker: resilience.BreakerConfig{FailureThreshold: 2, OpenFor: 5 * time.Millisecond},
	})
	if _, err := rc.ResolveEdge(ctx, grant.BroadcastID, ashburn); err != nil {
		t.Fatal(err)
	}

	servingEdge := p.Topo.NearestEdge(ashburn)
	warm := &hls.Client{BaseURL: p.EdgeURL(servingEdge), Retry: resilience.Policy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}}
	waitFor(t, 10*time.Second, "first chunk at the edge", func() bool {
		cl, err := warm.FetchChunkList(ctx, grant.BroadcastID, 0)
		return err == nil && len(cl.Chunks) > 0
	})

	const viewers = 20
	runs, viewerErrs := launchSoakViewers(ctx, viewers, grant.BroadcastID, func(ctx context.Context) (string, error) {
		return rc.ResolveEdge(ctx, grant.BroadcastID, ashburn)
	})

	// The outage: crash control mid-broadcast and tear its journal tail —
	// the torn write of the crash moment.
	waitFor(t, 15*time.Second, "viewers mid-stream before the crash", func() bool { return minChunksSeen(runs) >= 6 })
	p.KillControl()
	journals["control"].CorruptTail(3)

	// Direct API calls answer 503/ErrUnavailable...
	if _, err := cc.ResolveEdge(ctx, grant.BroadcastID, ashburn); !errors.Is(err, control.ErrUnavailable) {
		t.Fatalf("ResolveEdge during the outage = %v, want ErrUnavailable", err)
	}
	// ...while the degraded resolver serves the cached mapping and queues
	// the join it cannot confirm.
	if url, err := rc.ResolveEdge(ctx, grant.BroadcastID, ashburn); err != nil || url == "" {
		t.Fatalf("degraded ResolveEdge = (%q, %v), want the cached edge", url, err)
	}
	if g, degraded, err := rc.Join(ctx, dave, grant.BroadcastID, ashburn); err != nil || !degraded {
		t.Fatalf("degraded Join = (%+v, %v, %v), want a synthetic degraded grant", g, degraded, err)
	} else if g.Protocol != control.ProtoHLS || g.HLSBaseURL == "" {
		t.Fatalf("degraded grant = %+v, want cached HLS", g)
	}
	if n := rc.QueuedJoins(); n != 1 {
		t.Fatalf("queued joins during the outage = %d, want 1", n)
	}

	// b2 ends while control is down: the data plane stops immediately, and
	// the control-plane end parks for replay.
	if err := pub2.End(); err != nil {
		t.Fatalf("b2 end: %v", err)
	}
	waitFor(t, 5*time.Second, "b2's end parked for replay", func() bool {
		p.mu.Lock()
		n := len(p.pendingEnds)
		p.mu.Unlock()
		return n == 1
	})

	// Live delivery never stalls: both HLS and RTMP progress while control
	// is down.
	before := minChunksSeen(runs)
	waitFor(t, 15*time.Second, "chunks flowing through the outage", func() bool {
		return minChunksSeen(runs) >= before+3
	})

	p.RestartControl()

	// Recovery: journal replay rehydrates both broadcasts, then the parked
	// end lands — b1 live, b2 dead, nothing falsely ended either way.
	waitFor(t, 5*time.Second, "live count settles to b1 only", func() bool { return p.Ctrl.LiveCount() == 1 })
	if flushed := rc.FlushJoins(ctx); flushed != 1 {
		t.Errorf("FlushJoins = %d, want 1", flushed)
	}
	if n := rc.QueuedJoins(); n != 0 {
		t.Errorf("queued joins after flush = %d, want 0", n)
	}

	// The broadcast completes end-to-end across the outage.
	select {
	case err := <-pubErr:
		if err != nil {
			t.Fatalf("publisher: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("publisher never finished")
	}
	for i := 0; i < viewers; i++ {
		select {
		case err := <-viewerErrs:
			if err != nil {
				t.Fatalf("failover viewer: %v", err)
			}
		case <-time.After(60 * time.Second):
			t.Fatalf("a failover viewer never terminated (min chunks seen: %d/%d)", minChunksSeen(runs), totalChunks)
		}
	}
	assertExactlyOnce(t, runs, totalChunks)
	select {
	case <-rtmpDone:
	case <-time.After(60 * time.Second):
		t.Fatal("RTMP viewer never saw the stream end")
	}
	if len(rtmpSeqs) != totalFrames {
		t.Errorf("RTMP viewer saw %d frames, want exactly %d", len(rtmpSeqs), totalFrames)
	}
	for j, s := range rtmpSeqs {
		if s != uint64(j) {
			t.Errorf("RTMP viewer: frame seq %d at position %d — gap or duplicate", s, j)
			break
		}
	}

	// Instruments: recovery latency observed, the torn tail detected, the
	// journal replayed, and the degraded paths counted.
	var recovered bool
	for _, h := range p.Metrics().Snapshot().Histograms {
		if h.Name == "control_recovery_seconds" && h.Count >= 1 {
			recovered = true
		}
	}
	if !recovered {
		t.Error("control_recovery_seconds histogram never observed a recovery")
	}
	if v := metricCounter(p, "journal_corrupt_tails_total", "control"); v < 1 {
		t.Errorf("journal_corrupt_tails_total{site=control} = %d, want >= 1", v)
	}
	if v := metricCounter(p, "journal_replayed_records_total", "control"); v <= 0 {
		t.Errorf("journal_replayed_records_total{site=control} = %d, want > 0", v)
	}
	if v := counterSum(p, "control_unavailable_total"); v <= 0 {
		t.Errorf("control_unavailable_total = %d, want > 0", v)
	}
	if v := counterSum(p, "control_stale_served_total"); v <= 0 {
		t.Errorf("control_stale_served_total = %d, want > 0", v)
	}

	waitFor(t, 5*time.Second, "live count drains", func() bool { return p.Ctrl.LiveCount() == 0 })
}

// TestPlatformControlEdgePartitionSoak cuts the serving edge's heartbeat path
// to the control plane mid-broadcast — asymmetrically, the way real routing
// failures land — and simultaneously partitions the origins from control. The
// health detector must walk the unreachable nodes down (they look dead from
// control), yet delivery never stalls: viewers keep pulling chunks from the
// "down" edge, the origin admits a new RTMP viewer from its grant cache, and
// the broadcast is never falsely ended. Healing walks everything back.
func TestPlatformControlEdgePartitionSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("control↔edge partition soak under -short")
	}
	testutil.CheckGoroutines(t)

	parts := netsim.NewPartitions()
	p := startPlatform(t, PlatformConfig{
		ChunkDuration:   200 * time.Millisecond,
		RTMPViewerLimit: 2, // two RTMP viewers: one pre-cut, one mid-cut
		Partitions:      parts,
		EdgeRetry:       resilience.Policy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond},
		Health:          health.Config{HeartbeatInterval: 25 * time.Millisecond},
	})
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	cc := &control.Client{BaseURL: p.ControlURL()}
	ashburn := geo.Location{City: "Ashburn", Lat: 39.04, Lon: -77.49}

	alice, err := cc.Register(ctx, "alice")
	if err != nil {
		t.Fatal(err)
	}
	carol, err := cc.Register(ctx, "carol")
	if err != nil {
		t.Fatal(err)
	}
	dave, err := cc.Register(ctx, "dave")
	if err != nil {
		t.Fatal(err)
	}
	grant, err := cc.StartBroadcast(ctx, alice, ashburn)
	if err != nil {
		t.Fatal(err)
	}

	const totalFrames = 150
	framesPerChunk := int(200 * time.Millisecond / media.FrameDuration)
	totalChunks := totalFrames / framesPerChunk
	pub, err := rtmp.Publish(ctx, grant.RTMPAddr, grant.BroadcastID, grant.Token, nil)
	if err != nil {
		t.Fatal(err)
	}

	// RTMP viewer 1 subscribes before any frame flows, so its exactly-once
	// check covers the full stream. Its authorize also warms the origin's
	// grant cache for the (broadcast, viewer) key viewer 2 reuses mid-cut.
	vg, err := cc.Join(ctx, carol, grant.BroadcastID, ashburn)
	if err != nil {
		t.Fatal(err)
	}
	if vg.Protocol != control.ProtoRTMP {
		t.Fatalf("first viewer protocol = %s, want RTMP", vg.Protocol)
	}
	rv, err := rtmp.SubscribeResilient(ctx, vg.RTMPAddr, grant.BroadcastID, "", rtmp.ReconnectConfig{
		Backoff:       resilience.Policy{BaseDelay: 2 * time.Millisecond, MaxDelay: 10 * time.Millisecond},
		MaxReconnects: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rv.Close()
	var rtmpSeqs []uint64
	rtmpDone := make(chan struct{})
	go func() {
		defer close(rtmpDone)
		for rf := range rv.Frames() {
			rtmpSeqs = append(rtmpSeqs, rf.Frame.Seq)
		}
	}()

	pubErr := make(chan error, 1)
	go func() {
		enc := media.NewEncoder(media.EncoderConfig{}, rng.New(33))
		base := time.Now()
		for i := 0; i < totalFrames; i++ {
			f := enc.Next(base.Add(time.Duration(i) * media.FrameDuration))
			if err := pub.Send(&f); err != nil {
				pubErr <- fmt.Errorf("send frame %d: %w", i, err)
				return
			}
			time.Sleep(8 * time.Millisecond)
		}
		pubErr <- pub.End()
	}()

	servingEdge := p.Topo.NearestEdge(ashburn)
	edgeNode := healthNodeID("edge", servingEdge.Site().ID)
	warm := &hls.Client{BaseURL: p.EdgeURL(servingEdge), Retry: resilience.Policy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}}
	waitFor(t, 10*time.Second, "first chunk at the edge", func() bool {
		cl, err := warm.FetchChunkList(ctx, grant.BroadcastID, 0)
		return err == nil && len(cl.Chunks) > 0
	})

	const viewers = 20
	runs, viewerErrs := launchSoakViewers(ctx, viewers, grant.BroadcastID, func(ctx context.Context) (string, error) {
		return cc.ResolveEdge(ctx, grant.BroadcastID, ashburn)
	})

	// The partition, orchestrated by the seeded scheduler: the serving
	// edge's heartbeat link to control goes dark in one direction only.
	waitFor(t, 15*time.Second, "viewers mid-stream before the cut", func() bool { return minChunksSeen(runs) >= 6 })
	links := make([]netsim.Link, len(p.Topo.Edges))
	planned := -1
	for i, e := range p.Topo.Edges {
		links[i] = netsim.Link{From: healthNodeID("edge", e.Site().ID), To: "control"}
		if e.Site().ID == servingEdge.Site().ID {
			planned = i
		}
	}
	if planned < 0 {
		t.Fatal("serving edge not in topology")
	}
	ps := faults.NewPartitionScheduler(faults.PartitionPlan{
		Link:     planned,
		Duration: 1200 * time.Millisecond,
	}, parts, links)
	schedErr := make(chan error, 1)
	go func() { schedErr <- ps.Run(ctx) }()

	// The origins lose control too — the role-level link gates both their
	// heartbeats and the auth path's live lookups.
	parts.Cut("origin", "control")

	// From control's side the partitioned nodes look dead...
	waitFor(t, 5*time.Second, "detector marks the partitioned edge down", func() bool {
		st, ok := p.Health.State(edgeNode)
		return ok && st == health.StateDown
	})
	// ...but a viewer-side join still lands (viewer→control is healthy) and
	// the origin admits it from its grant cache, never reaching control.
	vg2, err := cc.Join(ctx, dave, grant.BroadcastID, ashburn)
	if err != nil {
		t.Fatalf("join during the partition: %v", err)
	}
	if vg2.Protocol != control.ProtoRTMP {
		t.Fatalf("second viewer protocol = %s, want RTMP", vg2.Protocol)
	}
	rv2, err := rtmp.SubscribeResilient(ctx, vg2.RTMPAddr, grant.BroadcastID, "", rtmp.ReconnectConfig{
		Backoff:       resilience.Policy{BaseDelay: 2 * time.Millisecond, MaxDelay: 10 * time.Millisecond},
		MaxReconnects: -1,
	})
	if err != nil {
		t.Fatalf("subscribe during the partition: %v", err)
	}
	defer rv2.Close()
	var rtmp2Mu sync.Mutex
	var rtmp2Seqs []uint64
	rtmp2Done := make(chan struct{})
	go func() {
		defer close(rtmp2Done)
		for rf := range rv2.Frames() {
			rtmp2Mu.Lock()
			rtmp2Seqs = append(rtmp2Seqs, rf.Frame.Seq)
			rtmp2Mu.Unlock()
		}
	}()
	if v := counterSum(p, "control_stale_served_total"); v <= 0 {
		t.Errorf("control_stale_served_total = %d, want > 0 (mid-cut admit must come from the cache)", v)
	}

	// Delivery keeps flowing from the "down" edge, and the broadcast is
	// never falsely ended.
	before := minChunksSeen(runs)
	waitFor(t, 15*time.Second, "chunks flowing through the partition", func() bool {
		return minChunksSeen(runs) >= before+3
	})
	if n := p.Ctrl.LiveCount(); n != 1 {
		t.Errorf("live count during the partition = %d, want 1 (partition must not end the broadcast)", n)
	}

	select {
	case err := <-schedErr:
		if err != nil {
			t.Fatalf("partition scheduler: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("partition scheduler never completed")
	}
	parts.Heal("origin", "control")
	if st := ps.Stats(); st.Cuts != 1 || st.Heals != 1 {
		t.Fatalf("scheduler stats = %+v, want one cut and one heal", st)
	}
	waitFor(t, 5*time.Second, "detector walks the healed edge back to healthy", func() bool {
		st, ok := p.Health.State(edgeNode)
		return ok && st == health.StateHealthy
	})

	// The broadcast completes end-to-end across the partition.
	select {
	case err := <-pubErr:
		if err != nil {
			t.Fatalf("publisher: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("publisher never finished")
	}
	for i := 0; i < viewers; i++ {
		select {
		case err := <-viewerErrs:
			if err != nil {
				t.Fatalf("failover viewer: %v", err)
			}
		case <-time.After(60 * time.Second):
			t.Fatalf("a failover viewer never terminated (min chunks seen: %d/%d)", minChunksSeen(runs), totalChunks)
		}
	}
	assertExactlyOnce(t, runs, totalChunks)
	select {
	case <-rtmpDone:
	case <-time.After(60 * time.Second):
		t.Fatal("RTMP viewer 1 never saw the stream end")
	}
	if len(rtmpSeqs) != totalFrames {
		t.Errorf("RTMP viewer 1 saw %d frames, want exactly %d", len(rtmpSeqs), totalFrames)
	}
	for j, s := range rtmpSeqs {
		if s != uint64(j) {
			t.Errorf("RTMP viewer 1: frame seq %d at position %d — gap or duplicate", s, j)
			break
		}
	}
	select {
	case <-rtmp2Done:
	case <-time.After(60 * time.Second):
		t.Fatal("RTMP viewer 2 never saw the stream end")
	}
	// Viewer 2 joined mid-stream: its view must be gapless and duplicate-
	// free from its first frame onward.
	rtmp2Mu.Lock()
	seqs2 := append([]uint64(nil), rtmp2Seqs...)
	rtmp2Mu.Unlock()
	if len(seqs2) == 0 {
		t.Error("RTMP viewer 2 never received a frame")
	}
	for j := 1; j < len(seqs2); j++ {
		if seqs2[j] != seqs2[j-1]+1 {
			t.Errorf("RTMP viewer 2: seq %d follows %d — gap or duplicate", seqs2[j], seqs2[j-1])
			break
		}
	}

	waitFor(t, 5*time.Second, "live count drains", func() bool { return p.Ctrl.LiveCount() == 0 })
}
