package core

import (
	"context"
	"errors"
	"io"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/control"
	"repro/internal/geo"
	"repro/internal/media"
	"repro/internal/rng"
	"repro/internal/rtmp"
	"repro/internal/security"
)

// TestPrivateBroadcastOverRTMPS exercises the §2.1/§7.2 private-broadcast
// path: invite-only access, per-viewer tokens, and TLS transport with the
// CA delivered over the control channel.
func TestPrivateBroadcastOverRTMPS(t *testing.T) {
	p := startPlatform(t, PlatformConfig{ChunkDuration: time.Second})
	ctx := context.Background()
	cc := &control.Client{BaseURL: p.ControlURL()}

	host, _ := cc.Register(ctx, "host")
	friend, _ := cc.Register(ctx, "friend")
	stranger, _ := cc.Register(ctx, "stranger")

	grant, err := cc.StartPrivateBroadcast(ctx, host, geo.Location{City: "Ashburn", Lat: 39, Lon: -77}, []uint64{friend})
	if err != nil {
		t.Fatal(err)
	}
	if !grant.Private || grant.RTMPSAddr == "" || len(grant.CAPEM) == 0 {
		t.Fatalf("grant = %+v, want RTMPS + CA", grant)
	}
	if grant.RTMPAddr != "" {
		t.Fatal("private grant leaked a plaintext RTMP address")
	}

	// Private broadcasts never show on the public global list.
	list, err := cc.GlobalList(ctx)
	if err != nil || len(list) != 0 {
		t.Fatalf("private broadcast listed publicly: %v, %v", list, err)
	}

	tlsCfg, err := security.ClientConfigFromPEM(grant.CAPEM)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := rtmp.PublishTLS(ctx, grant.RTMPSAddr, grant.BroadcastID, grant.Token, nil, tlsCfg)
	if err != nil {
		t.Fatal(err)
	}

	// The invited friend joins; the stranger is refused at the control
	// plane; a forged viewer token is refused at the origin.
	vg, err := cc.Join(ctx, friend, grant.BroadcastID, geo.Location{})
	if err != nil || vg.Protocol != control.ProtoRTMPS || vg.ViewerToken == "" {
		t.Fatalf("friend join = %+v, %v", vg, err)
	}
	if _, err := cc.Join(ctx, stranger, grant.BroadcastID, geo.Location{}); !errors.Is(err, control.ErrNotInvited) {
		t.Fatalf("stranger join err = %v, want ErrNotInvited", err)
	}
	if _, err := rtmp.SubscribeTLS(ctx, vg.RTMPSAddr, grant.BroadcastID, "forged", rtmp.ViewerOptions{}, tlsCfg); err == nil {
		t.Fatal("forged viewer token accepted at origin")
	}

	viewer, err := rtmp.SubscribeTLS(ctx, vg.RTMPSAddr, grant.BroadcastID, vg.ViewerToken, rtmp.ViewerOptions{}, tlsCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer viewer.Close()

	enc := media.NewEncoder(media.EncoderConfig{}, rng.New(5))
	for i := 0; i < 10; i++ {
		f := enc.Next(time.Now())
		if err := pub.Send(&f); err != nil {
			t.Fatal(err)
		}
	}
	pub.End()
	n := 0
	for range viewer.Frames() {
		n++
	}
	if n != 10 {
		t.Fatalf("private viewer received %d/10 frames over TLS", n)
	}
}

// TestRTMPSDefeatsProtocolMITM shows the §7.2 transport defense: the
// protocol-aware interceptor that silently rewrites plaintext RTMP cannot
// even parse RTMPS traffic — the attack degrades to a visible outage.
func TestRTMPSDefeatsProtocolMITM(t *testing.T) {
	p := startPlatform(t, PlatformConfig{ChunkDuration: time.Second})
	ctx := context.Background()
	cc := &control.Client{BaseURL: p.ControlURL()}
	host, _ := cc.Register(ctx, "host")
	grant, err := cc.StartPrivateBroadcast(ctx, host, geo.Location{City: "Ashburn", Lat: 39, Lon: -77}, nil)
	if err != nil {
		t.Fatal(err)
	}
	tlsCfg, err := security.ClientConfigFromPEM(grant.CAPEM)
	if err != nil {
		t.Fatal(err)
	}

	// The §7.1 interceptor sits on the broadcaster's network.
	mitm := security.NewInterceptor(security.InterceptorConfig{
		Target: grant.RTMPSAddr, Tamper: security.BlackFrames(), TamperSigned: true,
	})
	mctx, cancel := context.WithCancel(ctx)
	defer cancel()
	mln, err := mitm.Listen(mctx, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer mitm.Close()

	// The victim connects "through" the attacker. TLS verification is
	// against the platform CA, and the attacker cannot read or rewrite
	// frames inside the tunnel; its protocol parser chokes on
	// ciphertext and the session dies — no silent tampering.
	tlsCfg.ServerName = "localhost"
	_, err = rtmp.PublishTLS(ctx, mln.Addr().String(), grant.BroadcastID, grant.Token, nil, tlsCfg)
	if err == nil {
		t.Fatal("publish succeeded through a parsing MITM — TLS bytes were parseable?")
	}
	if mitm.Stats().FramesTampered.Load() != 0 {
		t.Fatal("MITM claims to have tampered TLS frames")
	}
}

// TestRTMPSSurvivesPassthroughRelay confirms the failure is specifically
// the attacker's: a byte-level relay (no parsing, no tampering possible)
// carries RTMPS fine.
func TestRTMPSSurvivesPassthroughRelay(t *testing.T) {
	p := startPlatform(t, PlatformConfig{ChunkDuration: time.Second})
	ctx := context.Background()
	cc := &control.Client{BaseURL: p.ControlURL()}
	host, _ := cc.Register(ctx, "host")
	grant, err := cc.StartPrivateBroadcast(ctx, host, geo.Location{City: "Ashburn", Lat: 39, Lon: -77}, nil)
	if err != nil {
		t.Fatal(err)
	}
	tlsCfg, err := security.ClientConfigFromPEM(grant.CAPEM)
	if err != nil {
		t.Fatal(err)
	}
	tlsCfg.ServerName = "localhost"

	relayAddr, tampered := startByteRelay(t, grant.RTMPSAddr)
	pub, err := rtmp.PublishTLS(ctx, relayAddr, grant.BroadcastID, grant.Token, nil, tlsCfg)
	if err != nil {
		t.Fatalf("publish through passive relay: %v", err)
	}
	enc := media.NewEncoder(media.EncoderConfig{}, rng.New(6))
	for i := 0; i < 5; i++ {
		f := enc.Next(time.Now())
		if err := pub.Send(&f); err != nil {
			t.Fatal(err)
		}
	}
	pub.End()
	if tampered.Load() != 0 {
		t.Fatal("byte relay should not alter anything")
	}
}

// startByteRelay forwards raw bytes both ways without interpretation.
func startByteRelay(t *testing.T, target string) (string, *atomic.Int64) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	var tampered atomic.Int64
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				up, err := net.Dial("tcp", target)
				if err != nil {
					return
				}
				defer up.Close()
				done := make(chan struct{}, 2)
				go func() { io.Copy(up, c); done <- struct{}{} }()
				go func() { io.Copy(c, up); done <- struct{}{} }()
				<-done
			}(c)
		}
	}()
	return ln.Addr().String(), &tampered
}
