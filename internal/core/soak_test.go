package core

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/control"
	"repro/internal/geo"
	"repro/internal/media"
	"repro/internal/rng"
	"repro/internal/rtmp"
	"repro/internal/testutil"
)

// TestPlatformSoak drives many concurrent broadcasts with RTMP viewers
// through the full platform and checks conservation: every viewer of every
// broadcast receives exactly the frames pushed after it subscribed, and the
// control plane's accounting matches.
func TestPlatformSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test under -short")
	}
	testutil.CheckGoroutines(t)
	const (
		nBroadcasts     = 24
		framesPerBcast  = 40
		viewersPerBcast = 3
	)
	p := startPlatform(t, PlatformConfig{ChunkDuration: time.Second})
	ctx := context.Background()
	cc := &control.Client{BaseURL: p.ControlURL()}
	cities := geo.CityCatalog()

	var wg sync.WaitGroup
	errs := make(chan error, nBroadcasts*(viewersPerBcast+1))
	for b := 0; b < nBroadcasts; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			uid, err := cc.Register(ctx, fmt.Sprintf("soak-%d", b))
			if err != nil {
				errs <- err
				return
			}
			grant, err := cc.StartBroadcast(ctx, uid, cities[b%len(cities)])
			if err != nil {
				errs <- err
				return
			}
			pub, err := rtmp.Publish(ctx, grant.RTMPAddr, grant.BroadcastID, grant.Token, nil)
			if err != nil {
				errs <- err
				return
			}

			// Viewers subscribe BEFORE any frame is pushed, so each
			// must see the complete stream.
			var vwg sync.WaitGroup
			for v := 0; v < viewersPerBcast; v++ {
				viewer, err := rtmp.Subscribe(ctx, grant.RTMPAddr, grant.BroadcastID, "", rtmp.ViewerOptions{})
				if err != nil {
					errs <- err
					return
				}
				vwg.Add(1)
				go func(viewer *rtmp.Viewer, v int) {
					defer vwg.Done()
					defer viewer.Close()
					n := 0
					for range viewer.Frames() {
						n++
					}
					if n != framesPerBcast {
						errs <- fmt.Errorf("broadcast %d viewer %d: %d/%d frames", b, v, n, framesPerBcast)
					}
				}(viewer, v)
			}

			enc := media.NewEncoder(media.EncoderConfig{}, rng.New(uint64(b)))
			for i := 0; i < framesPerBcast; i++ {
				f := enc.Next(time.Now())
				if err := pub.Send(&f); err != nil {
					errs <- err
					return
				}
			}
			if err := pub.End(); err != nil {
				errs <- err
				return
			}
			vwg.Wait()
		}(b)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Control-plane accounting: all broadcasts ended, all joins recorded.
	deadline := time.Now().Add(3 * time.Second)
	for p.Ctrl.LiveCount() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d broadcasts still live", p.Ctrl.LiveCount())
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Origin counters: frames in = broadcasts × frames; frames out =
	// frames in × viewers (every viewer subscribed before frame 1).
	in, out := p.Stats()
	if in != nBroadcasts*framesPerBcast {
		t.Fatalf("frames in = %d, want %d", in, nBroadcasts*framesPerBcast)
	}
	if out != in*viewersPerBcast {
		t.Fatalf("frames out = %d, want %d", out, in*viewersPerBcast)
	}
}
