package health

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/testutil"
)

func testRegistry(t *testing.T) (*Registry, *clock.Virtual) {
	t.Helper()
	vc := clock.NewVirtual(time.Unix(1_700_000_000, 0))
	r := NewRegistry(Config{
		HeartbeatInterval: time.Second,
		SuspectMisses:     2,
		DownMisses:        4,
		Clock:             vc,
	})
	return r, vc
}

func TestDetectorLifecycle(t *testing.T) {
	testutil.CheckGoroutines(t)
	r, vc := testRegistry(t)
	r.Register("edge:a")

	if st, ok := r.State("edge:a"); !ok || st != StateHealthy {
		t.Fatalf("fresh node state = %v, %v; want healthy", st, ok)
	}

	// One silent interval: still healthy (below the suspect threshold).
	vc.Advance(1500 * time.Millisecond)
	if st, _ := r.State("edge:a"); st != StateHealthy {
		t.Fatalf("after 1 miss state = %v, want healthy", st)
	}

	// Two silent intervals: suspect — no longer eligible for assignment.
	vc.Advance(time.Second)
	if st, _ := r.State("edge:a"); st != StateSuspect {
		t.Fatalf("after 2 misses state = %v, want suspect", st)
	}
	if r.Eligible("edge:a") {
		t.Fatal("suspect node still eligible")
	}

	// Four silent intervals: down.
	vc.Advance(2 * time.Second)
	if st, _ := r.State("edge:a"); st != StateDown {
		t.Fatalf("after 4 misses state = %v, want down", st)
	}
	if got := r.Stats().HeartbeatMisses.Load(); got < 4 {
		t.Fatalf("HeartbeatMisses = %d, want ≥ 4", got)
	}

	// A beat recovers the node.
	r.Heartbeat("edge:a")
	if st, _ := r.State("edge:a"); st != StateHealthy {
		t.Fatalf("after recovery state = %v, want healthy", st)
	}
	if !r.Eligible("edge:a") {
		t.Fatal("recovered node not eligible")
	}
	if got := r.Stats().Recoveries.Load(); got != 1 {
		t.Fatalf("Recoveries = %d, want 1", got)
	}
}

func TestDrainingIsSticky(t *testing.T) {
	r, vc := testRegistry(t)
	r.Register("edge:a")
	r.SetDraining("edge:a", true)

	// Neither beats nor silence move a draining node.
	r.Heartbeat("edge:a")
	if st, _ := r.State("edge:a"); st != StateDraining {
		t.Fatalf("state after beat = %v, want draining", st)
	}
	vc.Advance(10 * time.Second)
	if st, _ := r.State("edge:a"); st != StateDraining {
		t.Fatalf("state after silence = %v, want draining", st)
	}
	if r.Eligible("edge:a") {
		t.Fatal("draining node eligible for assignment")
	}

	// Undrain returns it to rotation with a fresh beat.
	r.SetDraining("edge:a", false)
	if st, _ := r.State("edge:a"); st != StateHealthy {
		t.Fatalf("state after undrain = %v, want healthy", st)
	}
}

func TestUnknownNodeEligible(t *testing.T) {
	r, _ := testRegistry(t)
	if !r.Eligible("edge:never-registered") {
		t.Fatal("unknown node must stay eligible (unwired registry must not empty the fleet)")
	}
}

func TestStateChangeCallback(t *testing.T) {
	testutil.CheckGoroutines(t)
	vc := clock.NewVirtual(time.Unix(1_700_000_000, 0))
	type change struct {
		id       string
		from, to State
	}
	var seen []change
	r := NewRegistry(Config{
		HeartbeatInterval: time.Second,
		Clock:             vc,
		OnStateChange: func(id string, from, to State) {
			seen = append(seen, change{id, from, to})
		},
	})
	r.Register("origin:w")
	vc.Advance(5 * time.Second)
	r.Check()
	r.Heartbeat("origin:w")
	want := []change{
		{"origin:w", StateHealthy, StateDown},
		{"origin:w", StateDown, StateHealthy},
	}
	if len(seen) != len(want) {
		t.Fatalf("transitions = %+v, want %+v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("transition %d = %+v, want %+v", i, seen[i], want[i])
		}
	}
}

func TestSnapshotAndHandler(t *testing.T) {
	testutil.CheckGoroutines(t)
	r, vc := testRegistry(t)
	r.Register("edge:a")
	r.Register("edge:b")
	r.SetDraining("edge:b", true)
	vc.Advance(2 * time.Second) // edge:a → suspect

	snap := r.Snapshot()
	if len(snap) != 2 || snap[0].ID != "edge:a" || snap[1].ID != "edge:b" {
		t.Fatalf("snapshot order/content wrong: %+v", snap)
	}
	if snap[0].State != StateSuspect || snap[1].State != StateDraining {
		t.Fatalf("snapshot states = %v/%v, want suspect/draining", snap[0].State, snap[1].State)
	}

	rec := httptest.NewRecorder()
	Handler(r).ServeHTTP(rec, httptest.NewRequest("GET", "/fleet", nil))
	if rec.Code != 200 {
		t.Fatalf("fleet handler status %d", rec.Code)
	}
	var out struct {
		Nodes []struct {
			ID    string `json:"id"`
			State string `json:"state"`
		} `json:"nodes"`
		HeartbeatMisses int64 `json:"heartbeat_misses"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Nodes) != 2 || out.Nodes[0].State != "suspect" || out.Nodes[1].State != "draining" {
		t.Fatalf("fleet JSON = %s", rec.Body.String())
	}
	if out.HeartbeatMisses == 0 {
		t.Fatal("fleet JSON reports zero heartbeat misses after a silent window")
	}
}
