package health

import (
	"encoding/json"
	"net/http"
	"time"
)

// nodeJSON is the wire view of one node.
type nodeJSON struct {
	ID       string    `json:"id"`
	State    string    `json:"state"`
	LastBeat time.Time `json:"last_beat"`
	Misses   int       `json:"misses,omitempty"`
}

type fleetJSON struct {
	Nodes           []nodeJSON `json:"nodes"`
	Heartbeats      int64      `json:"heartbeats"`
	HeartbeatMisses int64      `json:"heartbeat_misses"`
	Transitions     int64      `json:"transitions"`
	Recoveries      int64      `json:"recoveries"`
}

// Handler serves the fleet state as JSON — the operator's view of the
// registry (GET only).
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		snap := r.Snapshot()
		out := fleetJSON{
			Nodes:           make([]nodeJSON, 0, len(snap)),
			Heartbeats:      r.Stats().Heartbeats.Load(),
			HeartbeatMisses: r.Stats().HeartbeatMisses.Load(),
			Transitions:     r.Stats().Transitions.Load(),
			Recoveries:      r.Stats().Recoveries.Load(),
		}
		for _, n := range snap {
			out.Nodes = append(out.Nodes, nodeJSON{
				ID: n.ID, State: n.State.String(), LastBeat: n.LastBeat, Misses: n.Misses,
			})
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(out); err != nil {
			_ = err // response already started
		}
	})
}
