// Package health is the fleet-health subsystem of the delivery path: a
// control-plane registry that edges and origins heartbeat into, a miss-count
// failure detector that publishes per-node state, and the drain lifecycle
// operators use to take a node out of rotation without stranding viewers.
// The paper's system survives because Fastly is a *fleet* — viewers are
// mapped to the nearest healthy datacenter and silently remapped when one
// degrades (§4.1). Twitch-scale measurement work (Zhang & Liu) and the
// low-latency survey (Bentaleb et al.) both identify exactly this server-side
// failover as the dominant availability lever in live delivery.
package health

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/metrics"
)

// State is a node's position in the fleet-health lifecycle.
type State int32

// The four node states. Healthy nodes take new assignments; a Suspect node
// (missed a beat or two) keeps its current viewers but gets no new ones;
// Down nodes are failed over away from; Draining nodes are deliberately
// winding down — they serve inflight work and hint viewers to migrate.
const (
	StateHealthy State = iota
	StateSuspect
	StateDown
	StateDraining
)

// String returns the lowercase state name.
func (s State) String() string {
	switch s {
	case StateHealthy:
		return "healthy"
	case StateSuspect:
		return "suspect"
	case StateDown:
		return "down"
	case StateDraining:
		return "draining"
	}
	return "unknown"
}

// Config tunes the Registry's failure detector.
type Config struct {
	// HeartbeatInterval is the expected beat period. Zero means 1 s.
	HeartbeatInterval time.Duration
	// SuspectMisses is how many consecutive intervals a node may miss
	// before Healthy degrades to Suspect. Zero means 2.
	SuspectMisses int
	// DownMisses is how many consecutive missed intervals declare a node
	// Down. Zero means 4. Must be ≥ SuspectMisses to be meaningful.
	DownMisses int
	// Clock defaults to the real clock; tests drive a virtual one.
	Clock clock.Clock
	// OnStateChange, when set, is invoked (outside the registry lock) for
	// every transition — the platform uses it to log failovers.
	OnStateChange func(nodeID string, from, to State)
	// Metrics is the registry the fleet-state gauges register in; nil means
	// a private registry. One "fleet_nodes" gauge per lifecycle state,
	// labelled state=healthy|suspect|down|draining, evaluated at snapshot
	// time from the node table.
	Metrics *metrics.Registry
}

func (c Config) withDefaults() Config {
	if c.HeartbeatInterval == 0 {
		c.HeartbeatInterval = time.Second
	}
	if c.SuspectMisses == 0 {
		c.SuspectMisses = 2
	}
	if c.DownMisses == 0 {
		c.DownMisses = 4
	}
	if c.DownMisses < c.SuspectMisses {
		c.DownMisses = c.SuspectMisses
	}
	if c.Clock == nil {
		c.Clock = clock.NewReal()
	}
	return c
}

// Stats count detector activity.
type Stats struct {
	// Heartbeats is the total beats received.
	Heartbeats atomic.Int64
	// HeartbeatMisses counts missed heartbeat intervals as the detector
	// observes them (each silent interval counts once).
	HeartbeatMisses atomic.Int64
	// Transitions counts every state change, including recoveries.
	Transitions atomic.Int64
	// Recoveries counts Suspect/Down → Healthy transitions.
	Recoveries atomic.Int64
}

// Node is a point-in-time public view of one registered node.
type Node struct {
	ID       string
	State    State
	LastBeat time.Time
	// Misses is the consecutive missed intervals the detector has counted
	// since the last beat.
	Misses int
}

type node struct {
	id            string
	state         State
	lastBeat      time.Time
	countedMisses int
}

// Registry tracks the fleet. One Registry serves both tiers; node IDs are
// caller-chosen (the platform uses "edge:<site>" / "origin:<site>").
type Registry struct {
	cfg   Config
	clock clock.Clock
	stats Stats

	mu    sync.Mutex
	nodes map[string]*node
}

// NewRegistry builds a Registry.
func NewRegistry(cfg Config) *Registry {
	cfg = cfg.withDefaults()
	r := &Registry{
		cfg:   cfg,
		clock: cfg.Clock,
		nodes: make(map[string]*node),
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	for _, st := range []State{StateHealthy, StateSuspect, StateDown, StateDraining} {
		st := st
		reg.GaugeFunc("fleet_nodes", func() int64 { return r.countState(st) },
			metrics.L("state", st.String()))
	}
	return r
}

// countState counts nodes currently in state s. It reads the raw node table
// (no detector sweep): the Run loop already sweeps every half interval, and
// a metrics scrape must not fire OnStateChange callbacks as a side effect.
func (r *Registry) countState(s State) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var n int64
	for _, nd := range r.nodes {
		if nd.state == s {
			n++
		}
	}
	return n
}

// Stats exposes the detector counters.
func (r *Registry) Stats() *Stats { return &r.stats }

// Interval returns the configured heartbeat period.
func (r *Registry) Interval() time.Duration { return r.cfg.HeartbeatInterval }

// Register adds a node in the Healthy state with an implicit first beat.
// Registering an existing node is a no-op.
func (r *Registry) Register(nodeID string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[nodeID]; ok {
		return
	}
	r.nodes[nodeID] = &node{id: nodeID, state: StateHealthy, lastBeat: r.clock.Now()}
}

// Heartbeat records a beat. A Suspect or Down node that beats again recovers
// to Healthy; Draining is sticky — a deliberate drain is not undone by the
// node still being alive (that is the point of a graceful drain).
func (r *Registry) Heartbeat(nodeID string) {
	r.stats.Heartbeats.Add(1)
	r.mu.Lock()
	n, ok := r.nodes[nodeID]
	if !ok {
		n = &node{id: nodeID, state: StateHealthy}
		r.nodes[nodeID] = n
	}
	n.lastBeat = r.clock.Now()
	n.countedMisses = 0
	var change func()
	if n.state == StateSuspect || n.state == StateDown {
		from := n.state
		n.state = StateHealthy
		r.stats.Transitions.Add(1)
		r.stats.Recoveries.Add(1)
		if cb := r.cfg.OnStateChange; cb != nil {
			change = func() { cb(nodeID, from, StateHealthy) }
		}
	}
	r.mu.Unlock()
	if change != nil {
		change()
	}
}

// SetDraining marks a node Draining (true) or returns it to Healthy (false).
// Draining overrides the detector: the node is deliberately out of rotation.
func (r *Registry) SetDraining(nodeID string, draining bool) {
	r.mu.Lock()
	n, ok := r.nodes[nodeID]
	if !ok {
		n = &node{id: nodeID, lastBeat: r.clock.Now()}
		r.nodes[nodeID] = n
	}
	target := StateDraining
	if !draining {
		target = StateHealthy
		n.lastBeat = r.clock.Now()
		n.countedMisses = 0
	}
	var change func()
	if n.state != target {
		from := n.state
		n.state = target
		r.stats.Transitions.Add(1)
		if cb := r.cfg.OnStateChange; cb != nil {
			change = func() { cb(nodeID, from, target) }
		}
	}
	r.mu.Unlock()
	if change != nil {
		change()
	}
}

// State returns a node's current state, running the detector against the
// clock so a silent node reads Suspect/Down even between Check sweeps.
func (r *Registry) State(nodeID string) (State, bool) {
	r.Check()
	r.mu.Lock()
	defer r.mu.Unlock()
	n, ok := r.nodes[nodeID]
	if !ok {
		return StateHealthy, false
	}
	return n.state, true
}

// Eligible reports whether a node may take new assignments: it must be known
// and Healthy. Unknown nodes are eligible — a registry that was never wired
// must not take the whole fleet out of rotation.
func (r *Registry) Eligible(nodeID string) bool {
	st, ok := r.State(nodeID)
	return !ok || st == StateHealthy
}

// Check runs one detector sweep: every non-draining node that has been
// silent for whole heartbeat intervals accrues misses and degrades to
// Suspect and then Down at the configured thresholds. It returns the number
// of state transitions applied.
func (r *Registry) Check() int {
	now := r.clock.Now()
	var changes []func()
	transitions := 0
	r.mu.Lock()
	for _, n := range r.nodes {
		if n.state == StateDraining {
			continue
		}
		misses := int(now.Sub(n.lastBeat) / r.cfg.HeartbeatInterval)
		if misses > n.countedMisses {
			r.stats.HeartbeatMisses.Add(int64(misses - n.countedMisses))
			n.countedMisses = misses
		}
		target := n.state
		switch {
		case misses >= r.cfg.DownMisses:
			target = StateDown
		case misses >= r.cfg.SuspectMisses:
			target = StateSuspect
		}
		// The detector only degrades; recovery happens on Heartbeat.
		if target != n.state && target > n.state && target != StateDraining {
			from := n.state
			n.state = target
			transitions++
			r.stats.Transitions.Add(1)
			if cb := r.cfg.OnStateChange; cb != nil {
				id, to := n.id, target
				changes = append(changes, func() { cb(id, from, to) })
			}
		}
	}
	r.mu.Unlock()
	for _, fn := range changes {
		fn()
	}
	return transitions
}

// Snapshot returns every node's view, sorted by ID, after a detector sweep.
func (r *Registry) Snapshot() []Node {
	r.Check()
	r.mu.Lock()
	out := make([]Node, 0, len(r.nodes))
	for _, n := range r.nodes {
		out = append(out, Node{ID: n.id, State: n.state, LastBeat: n.lastBeat, Misses: n.countedMisses})
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Run sweeps the detector every half heartbeat interval until ctx is done —
// the monitor loop the platform starts alongside its heartbeaters.
func (r *Registry) Run(ctx context.Context) {
	interval := r.cfg.HeartbeatInterval / 2
	if interval <= 0 {
		interval = r.cfg.HeartbeatInterval
	}
	for {
		if err := r.clock.Sleep(ctx, interval); err != nil {
			return
		}
		r.Check()
	}
}
