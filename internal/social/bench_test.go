package social

import "testing"

func BenchmarkGenerate(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Nodes = 10_000
	cfg.Communities = 50
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		Generate(cfg)
	}
}

func BenchmarkComputeMetrics(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Nodes = 10_000
	cfg.Communities = 50
	g := Generate(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ComputeMetrics(g, MetricsOptions{Seed: uint64(i + 1), ClusteringSample: 500, PathSources: 8})
	}
}

func BenchmarkFollowersOf(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Nodes = 10_000
	cfg.Communities = 50
	g := Generate(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.FollowersOf()
	}
}
