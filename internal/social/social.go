// Package social models Periscope's follow graph (§3.2, Table 2, Fig. 7).
// The paper crawled follower/followee lists for 12M users and found a graph
// of asymmetric links: average degree 38.6, clustering 0.130, average path
// 3.74, and negative assortativity (−0.057) like Twitter's.
//
// We substitute a generative model: directed preferential attachment (which
// yields the hub-dominated, negatively assortative structure of one-to-many
// follow relationships) plus triad closure (for clustering), plus a small
// celebrity cohort with enormous follower counts (Fig. 7's x-axis reaches
// 10^6 followers). Metrics are computed the standard way so Table 2's row
// can be regenerated from the synthetic graph.
package social

import (
	"fmt"
	"sort"

	"repro/internal/rng"
	"repro/internal/stats"
)

// Graph is a directed follow graph: an edge u→v means u follows v.
// Node IDs are dense ints in [0, N).
type Graph struct {
	out [][]int32
	in  []int32 // in-degree (follower count)
}

// Config parameterizes Generate.
type Config struct {
	// Nodes is the user count. The paper's graph has 12M; the default
	// experiment scale uses 120K (1:100).
	Nodes int
	// EdgesPerNode is the mean out-degree of a joining node (≈19 gives
	// the paper's 38.6 total average degree).
	EdgesPerNode int
	// TriadProb is the probability a new edge closes a triangle through
	// an existing followee instead of attaching preferentially, tuning
	// the clustering coefficient.
	TriadProb float64
	// CelebrityFraction of the earliest nodes get a large attachment
	// boost, producing the 10^5–10^6-follower tail of Fig. 7.
	CelebrityFraction float64
	// UniformMix is the probability a non-triad edge attaches to a
	// uniformly random node instead of preferentially. It tempers hub
	// dominance, lengthening paths and softening disassortativity
	// toward the paper's mild −0.057.
	UniformMix float64
	// Communities partitions users into interest groups; CommunityBias
	// is the probability a non-triad edge stays inside the node's own
	// community. Community structure lengthens paths, raises
	// clustering, and softens disassortativity — real social graphs
	// (and Table 2's numbers) need it. Zero disables.
	Communities   int
	CommunityBias float64
	// Seed drives generation.
	Seed uint64
}

// DefaultConfig returns the calibration used for Table 2 at 1:100 scale,
// chosen so the synthetic graph reproduces the paper's measured Periscope
// row: avg degree 38.6, clustering 0.130, avg path 3.74, assortativity
// −0.057 (measured on this config: 38.5 / 0.095 / 3.27 / −0.070).
func DefaultConfig() Config {
	return Config{
		Nodes:             120_000,
		EdgesPerNode:      20,
		TriadProb:         0.50,
		CelebrityFraction: 0.0002,
		UniformMix:        0.70,
		Communities:       600,
		CommunityBias:     0.80,
		Seed:              1,
	}
}

// Generate builds a follow graph.
func Generate(cfg Config) *Graph {
	if cfg.Nodes <= 0 {
		panic("social: Generate with no nodes")
	}
	if cfg.EdgesPerNode <= 0 {
		cfg.EdgesPerNode = 19
	}
	src := rng.New(cfg.Seed)
	g := &Graph{
		out: make([][]int32, cfg.Nodes),
		in:  make([]int32, cfg.Nodes),
	}
	// Community assignment: node v's interest group. Members arrive
	// interleaved (v mod K) so every community has early members to
	// attach to.
	commOf := func(v int32) int {
		if cfg.Communities <= 1 {
			return 0
		}
		return int(v) % cfg.Communities
	}
	commPools := make([][]int32, max(cfg.Communities, 1))
	// pool holds one entry per received follow, so uniform sampling from
	// it is preferential attachment on in-degree. Celebrities are seeded
	// with extra pool mass.
	pool := make([]int32, 0, cfg.Nodes*cfg.EdgesPerNode+16)
	nCeleb := int(float64(cfg.Nodes) * cfg.CelebrityFraction)
	if nCeleb < 1 {
		nCeleb = 1
	}
	addPool := func(t int32) {
		pool = append(pool, t)
		if cfg.Communities > 1 {
			c := commOf(t)
			commPools[c] = append(commPools[c], t)
		}
	}
	seed := cfg.EdgesPerNode + 1
	if seed > cfg.Nodes {
		seed = cfg.Nodes
	}
	if cfg.Communities > 1 && seed < 2*cfg.Communities {
		seed = 2 * cfg.Communities
		if seed > cfg.Nodes {
			seed = cfg.Nodes
		}
	}
	// Seed core so early sampling works in every community.
	for v := 0; v < seed; v++ {
		for u := 0; u < seed; u++ {
			if u != v && src.Bool(float64(cfg.EdgesPerNode)/float64(seed)) {
				g.addEdge(int32(u), int32(v))
				addPool(int32(v))
			}
		}
	}
	// Celebrity boost: early nodes get extra attachment mass, modelling
	// off-platform fame (Ellen DeGeneres with >1M followers, §3.2).
	for c := 0; c < nCeleb; c++ {
		boost := 40 + src.Intn(160)
		for i := 0; i < boost; i++ {
			addPool(int32(c % seed))
		}
	}
	for v := seed; v < cfg.Nodes; v++ {
		// Out-degree varies around the mean: many lurkers follow few,
		// a minority follows many (geometric-ish draw).
		m := 1 + int(src.Exp(float64(cfg.EdgesPerNode-1)))
		if m > 4*cfg.EdgesPerNode {
			m = 4 * cfg.EdgesPerNode
		}
		chosen := make(map[int32]bool, m)
		for len(chosen) < m {
			var target int32
			switch {
			case len(g.out[v]) > 0 && src.Bool(cfg.TriadProb):
				// Triad closure: follow a followee of a followee.
				via := g.out[v][src.Intn(len(g.out[v]))]
				if len(g.out[via]) == 0 {
					continue
				}
				target = g.out[via][src.Intn(len(g.out[via]))]
			case cfg.Communities > 1 && src.Bool(cfg.CommunityBias):
				// Stay inside the node's interest community.
				comm := commOf(int32(v))
				if cfg.UniformMix > 0 && src.Bool(cfg.UniformMix) {
					// Uniform member of the community below v.
					n := (v - 1 - comm) / cfg.Communities
					if n < 0 {
						continue
					}
					target = int32(comm + cfg.Communities*src.Intn(n+1))
				} else {
					cp := commPools[comm]
					if len(cp) == 0 {
						continue
					}
					target = cp[src.Intn(len(cp))]
				}
			case cfg.UniformMix > 0 && src.Bool(cfg.UniformMix):
				target = int32(src.Intn(v))
			default:
				target = pool[src.Intn(len(pool))]
			}
			if target == int32(v) || chosen[target] {
				// Fall back to a uniform node to guarantee
				// progress in degenerate corners.
				target = int32(src.Intn(cfg.Nodes))
				if target == int32(v) || chosen[target] {
					continue
				}
			}
			chosen[target] = true
			g.addEdge(int32(v), target)
			addPool(target)
		}
	}
	return g
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func (g *Graph) addEdge(u, v int32) {
	g.out[u] = append(g.out[u], v)
	g.in[v]++
}

// N returns the node count.
func (g *Graph) N() int { return len(g.out) }

// Edges returns the directed edge count.
func (g *Graph) Edges() int {
	n := 0
	for _, adj := range g.out {
		n += len(adj)
	}
	return n
}

// Followers returns node v's follower count (in-degree).
func (g *Graph) Followers(v int) int { return int(g.in[v]) }

// Followees returns node v's out-neighbors (the users v follows).
func (g *Graph) Followees(v int) []int32 { return g.out[v] }

// FollowerCounts returns every node's follower count.
func (g *Graph) FollowerCounts() []int {
	out := make([]int, len(g.in))
	for i, d := range g.in {
		out[i] = int(d)
	}
	return out
}

// FollowersOf materializes the reverse adjacency (follower lists), used by
// the notification model: when v broadcasts, followers of v are notified.
func (g *Graph) FollowersOf() [][]int32 {
	rev := make([][]int32, len(g.out))
	for i := range rev {
		rev[i] = make([]int32, 0, g.in[i])
	}
	for u, adj := range g.out {
		for _, v := range adj {
			rev[v] = append(rev[v], int32(u))
		}
	}
	return rev
}

// Metrics are the Table 2 statistics.
type Metrics struct {
	Nodes         int
	Edges         int
	AvgDegree     float64 // 2E/N, both directions as in the paper's table
	Clustering    float64 // mean local clustering on the undirected view
	AvgPath       float64 // mean shortest path on the undirected view
	Assortativity float64 // degree correlation across undirected edges
}

// MetricsOptions bound the sampling cost on large graphs.
type MetricsOptions struct {
	// ClusteringSample caps nodes used for local clustering (default 2000).
	ClusteringSample int
	// PathSources caps BFS sources for average path length (default 32).
	PathSources int
	// Seed drives sampling.
	Seed uint64
}

// ComputeMetrics measures the graph.
func ComputeMetrics(g *Graph, opts MetricsOptions) Metrics {
	if opts.ClusteringSample == 0 {
		opts.ClusteringSample = 2000
	}
	if opts.PathSources == 0 {
		opts.PathSources = 32
	}
	src := rng.New(opts.Seed)
	und := undirected(g)
	m := Metrics{Nodes: g.N(), Edges: g.Edges()}
	m.AvgDegree = 2 * float64(m.Edges) / float64(m.Nodes)
	m.Clustering = clustering(und, src, opts.ClusteringSample)
	m.AvgPath = avgPath(und, src, opts.PathSources)
	m.Assortativity = assortativity(und)
	return m
}

// undirected builds deduplicated undirected adjacency.
func undirected(g *Graph) [][]int32 {
	adj := make([][]int32, g.N())
	for u, outs := range g.out {
		for _, v := range outs {
			adj[u] = append(adj[u], v)
			adj[v] = append(adj[v], int32(u))
		}
	}
	for i := range adj {
		a := adj[i]
		sort.Slice(a, func(x, y int) bool { return a[x] < a[y] })
		dedup := a[:0]
		var prev int32 = -1
		for _, v := range a {
			if v != prev && v != int32(i) {
				dedup = append(dedup, v)
				prev = v
			}
		}
		adj[i] = dedup
	}
	return adj
}

func clustering(adj [][]int32, src *rng.Source, sample int) float64 {
	n := len(adj)
	idx := src.Perm(n)
	total, count := 0.0, 0
	for _, v := range idx {
		if count >= sample {
			break
		}
		neigh := adj[v]
		k := len(neigh)
		if k < 2 {
			continue
		}
		set := make(map[int32]bool, k)
		for _, u := range neigh {
			set[u] = true
		}
		links := 0
		for _, u := range neigh {
			for _, w := range adj[u] {
				if w > u && set[w] {
					links++
				}
			}
		}
		total += 2 * float64(links) / float64(k*(k-1))
		count++
	}
	if count == 0 {
		return 0
	}
	return total / float64(count)
}

func avgPath(adj [][]int32, src *rng.Source, sources int) float64 {
	n := len(adj)
	if n == 0 {
		return 0
	}
	var sum, cnt float64
	dist := make([]int32, n)
	queue := make([]int32, 0, n)
	for s := 0; s < sources; s++ {
		start := int32(src.Intn(n))
		for i := range dist {
			dist[i] = -1
		}
		dist[start] = 0
		queue = append(queue[:0], start)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, u := range adj[v] {
				if dist[u] < 0 {
					dist[u] = dist[v] + 1
					queue = append(queue, u)
				}
			}
		}
		for _, d := range dist {
			if d > 0 {
				sum += float64(d)
				cnt++
			}
		}
	}
	if cnt == 0 {
		return 0
	}
	return sum / cnt
}

func assortativity(adj [][]int32) float64 {
	var xs, ys []float64
	for u, neigh := range adj {
		du := float64(len(neigh))
		for _, v := range neigh {
			if int32(u) < v { // count each undirected edge once, both ways
				dv := float64(len(adj[v]))
				xs = append(xs, du, dv)
				ys = append(ys, dv, du)
			}
		}
	}
	return stats.PearsonR(xs, ys)
}

// ReferenceRow is a published social-graph row for Table 2 context.
type ReferenceRow struct {
	Network       string
	Nodes         string
	Edges         string
	AvgDegree     float64
	Clustering    float64
	AvgPath       float64
	Assortativity float64
}

// PaperReferenceRows returns the Facebook [46] and Twitter [36] rows the
// paper compares against, plus its measured Periscope row.
func PaperReferenceRows() []ReferenceRow {
	return []ReferenceRow{
		{Network: "Periscope (paper)", Nodes: "12M", Edges: "231M", AvgDegree: 38.6, Clustering: 0.130, AvgPath: 3.74, Assortativity: -0.057},
		{Network: "Facebook [46]", Nodes: "1.22M", Edges: "121M", AvgDegree: 199.6, Clustering: 0.175, AvgPath: 5.13, Assortativity: 0.17},
		{Network: "Twitter [36]", Nodes: "1.62M", Edges: "11.3M", AvgDegree: 13.99, Clustering: 0.065, AvgPath: 6.49, Assortativity: -0.19},
	}
}

// Table2 renders the measured metrics next to the paper's reference rows.
func Table2(m Metrics) *stats.Table {
	t := &stats.Table{
		Title:   "Table 2: Basic statistics of the social graphs",
		Headers: []string{"Network", "Nodes", "Edges", "Avg.Degree", "Cluster.Coef.", "Avg.Path", "Assort."},
	}
	t.AddRow("Periscope (reproduced)",
		stats.FormatCount(int64(m.Nodes)), stats.FormatCount(int64(m.Edges)),
		fmt.Sprintf("%.1f", m.AvgDegree), fmt.Sprintf("%.3f", m.Clustering),
		fmt.Sprintf("%.2f", m.AvgPath), fmt.Sprintf("%.3f", m.Assortativity))
	for _, r := range PaperReferenceRows() {
		t.AddRow(r.Network, r.Nodes, r.Edges,
			fmt.Sprintf("%.1f", r.AvgDegree), fmt.Sprintf("%.3f", r.Clustering),
			fmt.Sprintf("%.2f", r.AvgPath), fmt.Sprintf("%.3f", r.Assortativity))
	}
	return t
}
