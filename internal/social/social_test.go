package social

import (
	"sort"
	"strings"
	"testing"
)

// smallConfig keeps unit tests fast; calibration checks use a larger graph.
func smallConfig() Config {
	return Config{Nodes: 3000, EdgesPerNode: 10, TriadProb: 0.25, CelebrityFraction: 0.001, Seed: 7}
}

func TestGenerateBasicShape(t *testing.T) {
	cfg := smallConfig()
	g := Generate(cfg)
	if g.N() != cfg.Nodes {
		t.Fatalf("N = %d", g.N())
	}
	e := g.Edges()
	expect := cfg.Nodes * cfg.EdgesPerNode
	if e < expect/2 || e > expect*2 {
		t.Fatalf("edges = %d, want ≈%d", e, expect)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(smallConfig())
	b := Generate(smallConfig())
	if a.Edges() != b.Edges() {
		t.Fatal("same seed produced different graphs")
	}
	for v := 0; v < a.N(); v += 97 {
		if a.Followers(v) != b.Followers(v) {
			t.Fatal("same seed produced different degrees")
		}
	}
}

func TestNoSelfLoopsOrDuplicates(t *testing.T) {
	g := Generate(smallConfig())
	for u := 0; u < g.N(); u++ {
		seen := map[int32]bool{}
		for _, v := range g.Followees(u) {
			if v == int32(u) {
				t.Fatalf("self loop at %d", u)
			}
			if seen[v] {
				t.Fatalf("duplicate edge %d→%d", u, v)
			}
			seen[v] = true
		}
	}
}

func TestFollowerCountsHeavyTail(t *testing.T) {
	g := Generate(smallConfig())
	counts := g.FollowerCounts()
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	// A hub-dominated graph: the top node has far more followers than
	// the median node (Fig. 7's celebrity effect).
	median := counts[len(counts)/2]
	if counts[0] < 20*max(median, 1) {
		t.Fatalf("top followers = %d, median = %d: no heavy tail", counts[0], median)
	}
}

func TestFollowersOfConsistent(t *testing.T) {
	g := Generate(Config{Nodes: 500, EdgesPerNode: 5, Seed: 3})
	rev := g.FollowersOf()
	for v := range rev {
		if len(rev[v]) != g.Followers(v) {
			t.Fatalf("node %d: reverse list %d != in-degree %d", v, len(rev[v]), g.Followers(v))
		}
	}
	// Spot-check edge symmetry.
	for u := 0; u < g.N(); u += 31 {
		for _, v := range g.Followees(u) {
			found := false
			for _, w := range rev[v] {
				if w == int32(u) {
					found = true
				}
			}
			if !found {
				t.Fatalf("edge %d→%d missing from reverse adjacency", u, v)
			}
		}
	}
}

func TestMetricsMatchPaperShape(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration graph too large for -short")
	}
	cfg := DefaultConfig()
	cfg.Nodes = 30_000
	cfg.Communities = 150 // keep community size ≈200 at the smaller scale
	g := Generate(cfg)
	m := ComputeMetrics(g, MetricsOptions{Seed: 2})
	// Targets from Table 2's Periscope row. Degree is structural.
	if m.AvgDegree < 30 || m.AvgDegree > 48 {
		t.Fatalf("avg degree = %v, want ≈38.6", m.AvgDegree)
	}
	// Clustering well above random (Twitter's 0.065) but near 0.13.
	if m.Clustering < 0.05 || m.Clustering > 0.30 {
		t.Fatalf("clustering = %v, want ≈0.13", m.Clustering)
	}
	// Short average paths (hub-dominated small world).
	if m.AvgPath < 2.5 || m.AvgPath > 5.5 {
		t.Fatalf("avg path = %v, want ≈3.74", m.AvgPath)
	}
	// Negative assortativity like Twitter, not positive like Facebook,
	// and mild like the paper's -0.057.
	if m.Assortativity >= 0 {
		t.Fatalf("assortativity = %v, want negative (paper: -0.057)", m.Assortativity)
	}
	if m.Assortativity < -0.25 {
		t.Fatalf("assortativity = %v, implausibly disassortative", m.Assortativity)
	}
}

func TestComputeMetricsSmall(t *testing.T) {
	g := Generate(Config{Nodes: 200, EdgesPerNode: 4, Seed: 9})
	m := ComputeMetrics(g, MetricsOptions{ClusteringSample: 100, PathSources: 8, Seed: 1})
	if m.Nodes != 200 || m.Edges == 0 {
		t.Fatalf("metrics = %+v", m)
	}
	if m.AvgPath <= 0 {
		t.Fatal("no path lengths measured")
	}
	if m.Clustering < 0 || m.Clustering > 1 {
		t.Fatalf("clustering out of range: %v", m.Clustering)
	}
	if m.Assortativity < -1 || m.Assortativity > 1 {
		t.Fatalf("assortativity out of range: %v", m.Assortativity)
	}
}

func TestTable2Renders(t *testing.T) {
	m := Metrics{Nodes: 120000, Edges: 2300000, AvgDegree: 38.3, Clustering: 0.12, AvgPath: 3.5, Assortativity: -0.06}
	out := Table2(m).String()
	for _, want := range []string{"Periscope (reproduced)", "Facebook [46]", "Twitter [36]", "38.3", "-0.060"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func TestPaperReferenceRows(t *testing.T) {
	rows := PaperReferenceRows()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Assortativity >= 0 || rows[2].Assortativity >= 0 {
		t.Fatal("Periscope and Twitter must be negatively assortative")
	}
	if rows[1].Assortativity <= 0 {
		t.Fatal("Facebook must be positively assortative")
	}
}

func TestGeneratePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Generate(0 nodes) did not panic")
		}
	}()
	Generate(Config{})
}
