// Package workload generates the broadcast/viewer/interaction corpora that
// stand in for the paper's crawled datasets (§3): 19.6M Periscope broadcasts
// over 3 months and 164K Meerkat broadcasts over 1 month. Generation is
// distribution-calibrated: every per-broadcast distribution the paper reports
// (duration, viewers, hearts, comments, per-user activity, follower/viewer
// correlation) is modelled 1:1, while the overall volume is scaled by a
// configurable factor (default 1:100) so the corpus fits a laptop run.
//
// The paper's aggregate anchors at full scale:
//
//	Periscope: 19.6M broadcasts / 1.85M broadcasters / 705M views
//	           (482M mobile by 7.65M registered viewers, rest web),
//	           daily broadcasts tripling over 3 months, Android-launch
//	           jump after May 26, weekly weekend peaks (Fig. 1–2).
//	Meerkat:   164K broadcasts / 57K broadcasters / 3.8M views, daily
//	           volume halving over the month, 60% zero-viewer (Fig. 4).
package workload

import (
	"math"
	"time"

	"repro/internal/clock"
	"repro/internal/rng"
)

// Profile describes one service's workload shape.
type Profile struct {
	Name  string
	Start time.Time
	Days  int
	// BaseDaily is the day-0 expected broadcast count (already scaled).
	BaseDaily float64
	// Growth is the multiplicative change in daily volume across the
	// whole window (Periscope ≈3.3, Meerkat ≈0.45).
	Growth float64
	// AndroidLaunchDay adds a one-time LaunchBoost to all days ≥ it; -1
	// disables (Meerkat).
	AndroidLaunchDay int
	LaunchBoost      float64
	// WeeklyAmplitude modulates volume ±amplitude through the week with
	// the weekend peak / Monday trough the paper observed; 0 disables.
	WeeklyAmplitude float64
	// DowntimeDays emulate crawler outages (the paper lost ~4.5% of
	// Aug 7–9): observed volume on these days is scaled by DowntimeKeep.
	DowntimeDays []int
	DowntimeKeep float64

	// DurationMedian/DurationSigma parameterize lognormal broadcast
	// length; MaxDuration truncates (Fig. 3: 85% < 10 min).
	DurationMedian time.Duration
	DurationSigma  float64
	MaxDuration    time.Duration

	// ZeroViewerProb is the chance a broadcast gets no viewers at all
	// (Meerkat: 0.6, Periscope: ≈0.01, Fig. 4).
	ZeroViewerProb float64
	// ViewBase/ViewSigma parameterize the lognormal base audience;
	// FollowerJoinRate adds followers × rate notification joins (Fig. 7).
	ViewBase         float64
	ViewSigma        float64
	FollowerJoinRate float64
	// MobileShare is the fraction of views from registered mobile users
	// (Periscope: 482M/705M ≈ 0.68); the rest are anonymous web views.
	MobileShare float64

	// EngagementProb is the chance a viewed broadcast receives any
	// hearts/comments; HeartsPerViewer the mean hearts each viewer of an
	// engaged broadcast sends; CommentsPerCommenter likewise (Fig. 5).
	EngagementProb       float64
	HeartsPerViewer      float64
	CommentsPerCommenter float64
	// CommenterCap is the 100-commenter policy bound (§2.1).
	CommenterCap int

	// BroadcasterPool / ViewerPool are user-pool sizes (already scaled);
	// activity over them is Zipf-skewed (Fig. 6).
	BroadcasterPool int
	ViewerPool      int
	// BroadcasterZipf/ViewerZipf are the activity skew exponents.
	BroadcasterZipf float64
	ViewerZipf      float64
	// ViewerParticipation is the fraction of the registered pool that
	// ever views (Periscope: 7.65M of 12M ≈ 0.64); zero means 1.0.
	ViewerParticipation float64
	// FameCorrelation is the probability a broadcast's activity rank
	// maps to the equally-famous graph node instead of a random one:
	// celebrities broadcast somewhat more than average (Fig. 7's upper
	// tail) but prolific streamers are mostly ordinary users.
	FameCorrelation float64
}

// PeriscopeStart is the first day of the paper's Periscope window.
var PeriscopeStart = clock.Epoch // May 15, 2015

// MeerkatStart is the first day of the paper's Meerkat window (May 12).
var MeerkatStart = clock.Epoch.AddDate(0, 0, -3)

// Periscope returns the Periscope profile at 1/scale volume (scale=100 is
// the default experiment size; scale=1 reproduces full paper volume).
func Periscope(scale float64) Profile {
	if scale <= 0 {
		scale = 100
	}
	return Profile{
		Name:  "Periscope",
		Start: PeriscopeStart,
		Days:  98, // May 15 – Aug 20
		// Calibrated so the 98-day total ≈ 19.6M/scale with growth,
		// launch boost and weekly modulation applied.
		BaseDaily:            86_000 / scale,
		Growth:               3.3,
		AndroidLaunchDay:     11, // May 26 Android launch
		LaunchBoost:          1.25,
		WeeklyAmplitude:      0.15,
		DowntimeDays:         []int{84, 85}, // Aug 7–9 crawler bug
		DowntimeKeep:         0.55,
		DurationMedian:       200 * time.Second,
		DurationSigma:        1.15,
		MaxDuration:          24 * time.Hour,
		ZeroViewerProb:       0.01,
		ViewBase:             10.5,
		ViewSigma:            1.45,
		FollowerJoinRate:     0.17,
		MobileShare:          0.68,
		EngagementProb:       0.55,
		HeartsPerViewer:      12,
		CommentsPerCommenter: 1.3,
		CommenterCap:         100,
		BroadcasterPool:      int(2_400_000 / scale),
		ViewerPool:           int(12_000_000 / scale),
		BroadcasterZipf:      0.92,
		ViewerZipf:           1.0,
		ViewerParticipation:  0.64, // 7.65M unique viewers of 12M users
		FameCorrelation:      0.10,
	}
}

// Meerkat returns the Meerkat profile at 1/scale volume.
func Meerkat(scale float64) Profile {
	if scale <= 0 {
		scale = 100
	}
	return Profile{
		Name:                 "Meerkat",
		Start:                MeerkatStart,
		Days:                 34, // May 12 – Jun 15
		BaseDaily:            7_200 / scale,
		Growth:               0.45,
		AndroidLaunchDay:     -1,
		WeeklyAmplitude:      0.08,
		DurationMedian:       150 * time.Second,
		DurationSigma:        1.55, // more skewed: few long broadcasts (Fig. 3)
		MaxDuration:          24 * time.Hour,
		ZeroViewerProb:       0.60, // Fig. 4: most Meerkat broadcasts unviewed
		ViewBase:             23,   // conditional on having viewers
		ViewSigma:            1.3,
		FollowerJoinRate:     0,
		MobileShare:          0.82, // 3.1M of 3.8M views by registered users
		EngagementProb:       0.45,
		HeartsPerViewer:      5,
		CommentsPerCommenter: 0.9,
		CommenterCap:         0, // Meerkat used Tweets; no hard cap observed
		BroadcasterPool:      int(70_000 / scale),
		ViewerPool:           int(250_000 / scale),
		BroadcasterZipf:      0.75,
		ViewerZipf:           0.9,
		ViewerParticipation:  0.73, // 183K unique viewers of ~250K users
	}
}

// DailyRate returns the expected broadcast volume for a day index, with
// growth, launch boost and weekly modulation applied (crawler downtime is
// an observation effect and is applied separately).
func (p Profile) DailyRate(day int) float64 {
	if day < 0 || day >= p.Days {
		return 0
	}
	rate := p.BaseDaily * math.Pow(p.Growth, float64(day)/float64(p.Days-1))
	if p.AndroidLaunchDay >= 0 && day >= p.AndroidLaunchDay {
		rate *= p.LaunchBoost
	}
	if p.WeeklyAmplitude > 0 {
		rate *= 1 + p.WeeklyAmplitude*weeklyShape(p.Start.AddDate(0, 0, day).Weekday())
	}
	return rate
}

// weeklyShape is +1 at the weekend peak and ≈−1 at the Monday trough the
// paper observed in Figure 1.
func weeklyShape(d time.Weekday) float64 {
	switch d {
	case time.Saturday, time.Sunday:
		return 1
	case time.Monday:
		return -1
	case time.Tuesday:
		return -0.6
	case time.Wednesday:
		return -0.25
	case time.Thursday:
		return 0.1
	case time.Friday:
		return 0.5
	}
	return 0
}

// Broadcast is one generated broadcast's aggregate record — the same fields
// the paper's crawler stored (§3.1), minus per-viewer identities which are
// folded into the per-user activity tallies.
type Broadcast struct {
	ID          uint64
	Broadcaster int32 // index into the broadcaster pool / social graph
	Day         int16
	Start       time.Time
	Duration    time.Duration
	Viewers     int32 // total views incl. anonymous web
	MobileViews int32
	Hearts      int32
	Comments    int32
	Followers   int32 // broadcaster's follower count at generation time
	Observed    bool  // false for broadcasts lost to crawler downtime
}

// DayStats aggregates one day (Fig. 1 and Fig. 2 series).
type DayStats struct {
	Date               time.Time
	Broadcasts         int
	ObservedBroadcasts int
	ActiveBroadcasters int
	ActiveViewers      int
}

// Dataset is a generated corpus.
type Dataset struct {
	Profile    Profile
	Broadcasts []Broadcast
	Days       []DayStats
	// ViewsByUser / CreatesByUser tally per-user activity (Fig. 6).
	ViewsByUser   []int32
	CreatesByUser []int32
	TotalViews    int64
	MobileViews   int64
}

// UniqueBroadcasters counts users with ≥1 broadcast.
func (d *Dataset) UniqueBroadcasters() int {
	n := 0
	for _, c := range d.CreatesByUser {
		if c > 0 {
			n++
		}
	}
	return n
}

// UniqueViewers counts registered users with ≥1 view.
func (d *Dataset) UniqueViewers() int {
	n := 0
	for _, c := range d.ViewsByUser {
		if c > 0 {
			n++
		}
	}
	return n
}

// Generate builds a corpus. followers gives each broadcaster-pool index a
// follower count (from social.Graph.FollowerCounts); nil means no social
// notification effect (the Meerkat case, §3.1).
func Generate(p Profile, followers []int, seed uint64) *Dataset {
	src := rng.New(seed)
	bcastZipf := rng.NewZipf(src.Split("broadcaster"), p.BroadcasterPool, p.BroadcasterZipf)
	// Activity rank and social fame are distinct orderings: the most
	// prolific broadcasters are not generally the most followed (the
	// celebrity of Fig. 7 broadcasts occasionally to a huge audience;
	// the daily streamer has few followers). A seeded permutation maps
	// activity ranks onto graph nodes.
	fameOf := src.Split("fame-perm").Perm(p.BroadcasterPool)
	participating := p.ViewerPool
	if p.ViewerParticipation > 0 && p.ViewerParticipation < 1 {
		participating = int(float64(p.ViewerPool) * p.ViewerParticipation)
		if participating < 1 {
			participating = 1
		}
	}
	viewZipf := rng.NewZipf(src.Split("viewer"), participating, p.ViewerZipf)
	durSrc := src.Split("duration")
	viewSrc := src.Split("views")
	engSrc := src.Split("engagement")
	daySrc := src.Split("days")

	ds := &Dataset{
		Profile:       p,
		ViewsByUser:   make([]int32, p.ViewerPool),
		CreatesByUser: make([]int32, p.BroadcasterPool),
	}
	var id uint64
	dayViewerSet := make(map[int32]struct{}, 4096)
	dayBcasterSet := make(map[int32]struct{}, 4096)

	for day := 0; day < p.Days; day++ {
		n := daySrc.Poisson(p.DailyRate(day))
		stats := DayStats{Date: p.Start.AddDate(0, 0, day), Broadcasts: n}
		clearSet(dayViewerSet)
		clearSet(dayBcasterSet)
		keep := 1.0
		for _, dd := range p.DowntimeDays {
			if dd == day {
				keep = p.DowntimeKeep
			}
		}
		for i := 0; i < n; i++ {
			id++
			b := Broadcast{ID: id, Day: int16(day), Observed: daySrc.Bool(keep)}
			rank := bcastZipf.Draw()
			if p.FameCorrelation > 0 && daySrc.Bool(p.FameCorrelation) {
				b.Broadcaster = int32(rank) // famous AND prolific
			} else {
				b.Broadcaster = int32(fameOf[rank])
			}
			ds.CreatesByUser[b.Broadcaster]++
			dayBcasterSet[b.Broadcaster] = struct{}{}
			if followers != nil && int(b.Broadcaster) < len(followers) {
				b.Followers = int32(followers[b.Broadcaster])
			}
			b.Start = stats.Date.Add(time.Duration(daySrc.Float64() * 24 * float64(time.Hour)))
			b.Duration = drawDuration(p, durSrc)
			b.Viewers, b.MobileViews = drawViews(p, viewSrc, int(b.Followers))
			// Assign mobile views to registered users (Fig. 6 tallies).
			for v := int32(0); v < b.MobileViews; v++ {
				u := int32(viewZipf.Draw())
				ds.ViewsByUser[u]++
				dayViewerSet[u] = struct{}{}
			}
			b.Hearts, b.Comments = drawEngagement(p, engSrc, int(b.Viewers))
			ds.TotalViews += int64(b.Viewers)
			ds.MobileViews += int64(b.MobileViews)
			if b.Observed {
				stats.ObservedBroadcasts++
			}
			ds.Broadcasts = append(ds.Broadcasts, b)
		}
		stats.ActiveViewers = len(dayViewerSet)
		stats.ActiveBroadcasters = len(dayBcasterSet)
		ds.Days = append(ds.Days, stats)
	}
	return ds
}

func clearSet(m map[int32]struct{}) {
	for k := range m {
		delete(m, k)
	}
}

// DrawDuration samples one broadcast duration from the profile's truncated
// lognormal (Fig. 3). Exported so trace-driven simulators (viewersim) draw
// from exactly the distribution Generate uses.
func (p Profile) DrawDuration(src *rng.Source) time.Duration { return drawDuration(p, src) }

// DrawViews samples one broadcast's total and mobile view counts, including
// the zero-viewer probability and the follower notification effect (Fig. 7).
func (p Profile) DrawViews(src *rng.Source, followers int) (total, mobile int32) {
	return drawViews(p, src, followers)
}

func drawDuration(p Profile, src *rng.Source) time.Duration {
	d := time.Duration(float64(p.DurationMedian) * src.LogNormal(0, p.DurationSigma))
	if d < 5*time.Second {
		d = 5 * time.Second
	}
	if p.MaxDuration > 0 && d > p.MaxDuration {
		d = p.MaxDuration
	}
	return d
}

func drawViews(p Profile, src *rng.Source, followers int) (total, mobile int32) {
	if src.Bool(p.ZeroViewerProb) {
		return 0, 0
	}
	base := p.ViewBase * src.LogNormal(0, p.ViewSigma)
	social := float64(followers) * p.FollowerJoinRate * src.LogNormal(0, 0.5)
	v := base + social
	if v < 1 {
		v = 1
	}
	total = int32(v)
	mobile = int32(float64(total) * p.MobileShare)
	if mobile < 1 {
		mobile = 1
	}
	if mobile > total {
		mobile = total
	}
	return total, mobile
}

func drawEngagement(p Profile, src *rng.Source, viewers int) (hearts, comments int32) {
	if viewers == 0 || !src.Bool(p.EngagementProb) {
		return 0, 0
	}
	h := float64(viewers) * src.Exp(p.HeartsPerViewer)
	hearts = int32(h)
	commenters := viewers
	if p.CommenterCap > 0 && commenters > p.CommenterCap {
		commenters = p.CommenterCap
	}
	c := float64(commenters) * src.Exp(p.CommentsPerCommenter)
	comments = int32(c)
	return hearts, comments
}
