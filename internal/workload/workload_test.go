package workload

import (
	"sort"
	"testing"
	"time"

	"repro/internal/social"
	"repro/internal/stats"

	"repro/internal/testutil"
)

// testFollowers builds a small follower-count array with a heavy tail.
func testFollowers(n int) []int {
	g := social.Generate(social.Config{
		Nodes: n, EdgesPerNode: 10, TriadProb: 0.2, CelebrityFraction: 0.001, Seed: 3,
	})
	return g.FollowerCounts()
}

// genSmall generates a fast, reduced-scale Periscope corpus for unit tests.
func genSmall(t *testing.T) *Dataset {
	t.Helper()
	p := Periscope(1000) // 1:1000 scale ≈ 20K broadcasts
	return Generate(p, testFollowers(p.BroadcasterPool), 42)
}

func TestPeriscopeTotalsMatchScaledPaper(t *testing.T) {
	testutil.CheckGoroutines(t)
	ds := genSmall(t)
	// Paper: 19.6M broadcasts at 1:1000 → ≈19.6K.
	n := len(ds.Broadcasts)
	if n < 14_000 || n > 27_000 {
		t.Fatalf("broadcasts = %d, want ≈19.6K at 1:1000", n)
	}
	// Paper: 705M views → ≈705K; allow a generous band.
	if ds.TotalViews < 350_000 || ds.TotalViews > 1_400_000 {
		t.Fatalf("views = %d, want ≈705K at 1:1000", ds.TotalViews)
	}
	// Mobile share ≈ 0.68 (482M/705M).
	share := float64(ds.MobileViews) / float64(ds.TotalViews)
	if share < 0.60 || share > 0.76 {
		t.Fatalf("mobile share = %v, want ≈0.68", share)
	}
}

func TestPeriscopeGrowthTriples(t *testing.T) {
	testutil.CheckGoroutines(t)
	ds := genSmall(t)
	firstWeek, lastWeek := 0, 0
	for d := 0; d < 7; d++ {
		firstWeek += ds.Days[d].Broadcasts
		lastWeek += ds.Days[len(ds.Days)-1-d].Broadcasts
	}
	ratio := float64(lastWeek) / float64(firstWeek)
	// Paper: >300% growth over 3 months (Fig. 1).
	if ratio < 2.5 || ratio > 6.5 {
		t.Fatalf("weekly growth ratio = %v, want ≈3–4x", ratio)
	}
}

func TestMeerkatDecline(t *testing.T) {
	testutil.CheckGoroutines(t)
	p := Meerkat(10) // 1:10 scale ≈ 16K broadcasts for a stable signal
	ds := Generate(p, nil, 7)
	firstWeek, lastWeek := 0, 0
	for d := 0; d < 7; d++ {
		firstWeek += ds.Days[d].Broadcasts
		lastWeek += ds.Days[len(ds.Days)-1-d].Broadcasts
	}
	// Paper: volume nearly halves over the month (Fig. 1).
	ratio := float64(lastWeek) / float64(firstWeek)
	if ratio < 0.3 || ratio > 0.75 {
		t.Fatalf("decline ratio = %v, want ≈0.5", ratio)
	}
}

func TestWeeklyPattern(t *testing.T) {
	testutil.CheckGoroutines(t)
	p := Periscope(100)
	// Compare average Monday rate to average weekend rate from the model
	// itself (deterministic, no sampling noise).
	var monday, weekend, mondayN, weekendN float64
	for d := 20; d < p.Days; d++ { // skip pre-launch regime
		switch p.Start.AddDate(0, 0, d).Weekday() {
		case time.Monday:
			monday += p.DailyRate(d)
			mondayN++
		case time.Saturday, time.Sunday:
			weekend += p.DailyRate(d)
			weekendN++
		}
	}
	if weekend/weekendN <= monday/mondayN {
		t.Fatal("weekend rate not above Monday trough (Fig. 1)")
	}
}

func TestAndroidLaunchJump(t *testing.T) {
	testutil.CheckGoroutines(t)
	p := Periscope(100)
	before := p.DailyRate(p.AndroidLaunchDay - 1)
	after := p.DailyRate(p.AndroidLaunchDay + 1)
	// Remove the weekly modulation by comparing same weekday ±7.
	beforeW := p.DailyRate(p.AndroidLaunchDay - 7)
	afterW := p.DailyRate(p.AndroidLaunchDay + 7)
	if after <= before && afterW <= beforeW {
		t.Fatal("no Android-launch jump at day 11")
	}
}

func TestDurationCDF(t *testing.T) {
	testutil.CheckGoroutines(t)
	ds := genSmall(t)
	var durs []float64
	for _, b := range ds.Broadcasts {
		durs = append(durs, b.Duration.Minutes())
	}
	cdf := stats.NewCDF(durs)
	// Paper Fig. 3: 85% of broadcasts last under 10 minutes.
	p10 := cdf.At(10)
	if p10 < 0.78 || p10 > 0.92 {
		t.Fatalf("P(duration<10min) = %v, want ≈0.85", p10)
	}
	if cdf.Quantile(1) > 24*60 {
		t.Fatal("duration exceeded 24h cap")
	}
}

func TestMeerkatZeroViewerShare(t *testing.T) {
	testutil.CheckGoroutines(t)
	ds := Generate(Meerkat(10), nil, 9)
	zero := 0
	for _, b := range ds.Broadcasts {
		if b.Viewers == 0 {
			zero++
		}
	}
	frac := float64(zero) / float64(len(ds.Broadcasts))
	// Paper Fig. 4: ≈60% of Meerkat broadcasts have no viewers.
	if frac < 0.55 || frac > 0.65 {
		t.Fatalf("zero-viewer fraction = %v, want ≈0.60", frac)
	}
}

func TestPeriscopeViewersMostlyNonZero(t *testing.T) {
	testutil.CheckGoroutines(t)
	ds := genSmall(t)
	zero := 0
	for _, b := range ds.Broadcasts {
		if b.Viewers == 0 {
			zero++
		}
	}
	if frac := float64(zero) / float64(len(ds.Broadcasts)); frac > 0.05 {
		t.Fatalf("Periscope zero-viewer fraction = %v, want ≈0.01", frac)
	}
}

func TestViewerHeavyTail(t *testing.T) {
	testutil.CheckGoroutines(t)
	ds := genSmall(t)
	var views []float64
	for _, b := range ds.Broadcasts {
		views = append(views, float64(b.Viewers))
	}
	sort.Float64s(views)
	maxV := views[len(views)-1]
	median := views[len(views)/2]
	// Fig. 4: most popular broadcasts draw orders of magnitude more
	// viewers than the median.
	if maxV < 50*median {
		t.Fatalf("max/median viewers = %v/%v: tail too light", maxV, median)
	}
}

func TestEngagementShape(t *testing.T) {
	testutil.CheckGoroutines(t)
	ds := genSmall(t)
	withHearts, over1kHearts, withComments := 0, 0, 0
	var maxHearts int32
	for _, b := range ds.Broadcasts {
		if b.Hearts > 0 {
			withHearts++
		}
		if b.Hearts > 1000 {
			over1kHearts++
		}
		if b.Comments > 0 {
			withComments++
		}
		if b.Hearts > maxHearts {
			maxHearts = b.Hearts
		}
		if b.Viewers == 0 && (b.Hearts > 0 || b.Comments > 0) {
			t.Fatal("unviewed broadcast has interactions")
		}
	}
	n := len(ds.Broadcasts)
	// Fig. 5: a minority of broadcasts are highly interactive; about 10%
	// of Periscope broadcasts get >1000 hearts.
	frac1k := float64(over1kHearts) / float64(n)
	if frac1k < 0.02 || frac1k > 0.25 {
		t.Fatalf("P(hearts>1000) = %v, want ≈0.10", frac1k)
	}
	if withHearts == n || withHearts == 0 {
		t.Fatalf("hearts coverage degenerate: %d/%d", withHearts, n)
	}
	if withComments == 0 {
		t.Fatal("no comments generated")
	}
}

func TestUserActivitySkew(t *testing.T) {
	testutil.CheckGoroutines(t)
	ds := genSmall(t)
	var views []float64
	for _, v := range ds.ViewsByUser {
		if v > 0 {
			views = append(views, float64(v))
		}
	}
	sort.Float64s(views)
	// Fig. 6: the most active 15% of viewers watch ~10x the median —
	// measured as the mean view count of the top 15% over the median.
	median := views[len(views)/2]
	var topSum float64
	top := views[int(float64(len(views))*0.85):]
	for _, v := range top {
		topSum += v
	}
	if ratio := topSum / float64(len(top)) / median; ratio < 5 {
		t.Fatalf("top-15%%-mean/median = %v, want ≈10", ratio)
	}
}

func TestFollowerViewerCorrelation(t *testing.T) {
	testutil.CheckGoroutines(t)
	ds := genSmall(t)
	var fs, vs []float64
	for _, b := range ds.Broadcasts {
		if b.Followers > 0 && b.Viewers > 0 {
			fs = append(fs, float64(b.Followers))
			vs = append(vs, float64(b.Viewers))
		}
	}
	rho := stats.SpearmanRho(fs, vs)
	// Fig. 7: more followers → more viewers.
	if rho < 0.2 {
		t.Fatalf("follower/viewer rank correlation = %v, want clearly positive", rho)
	}
}

func TestViewerBroadcasterRatio(t *testing.T) {
	testutil.CheckGoroutines(t)
	ds := genSmall(t)
	var ratios []float64
	for _, d := range ds.Days[30:] { // post-launch regime
		if d.ActiveBroadcasters > 0 {
			ratios = append(ratios, float64(d.ActiveViewers)/float64(d.ActiveBroadcasters))
		}
	}
	mean := stats.Mean(ratios)
	// Fig. 2: viewer:broadcaster ≈ 10:1.
	if mean < 3 || mean > 25 {
		t.Fatalf("daily viewer:broadcaster ratio = %v, want ≈10", mean)
	}
}

func TestDowntimeReducesObserved(t *testing.T) {
	testutil.CheckGoroutines(t)
	ds := genSmall(t)
	for _, dd := range ds.Profile.DowntimeDays {
		day := ds.Days[dd]
		if day.Broadcasts == 0 {
			continue
		}
		frac := float64(day.ObservedBroadcasts) / float64(day.Broadcasts)
		if frac > 0.8 {
			t.Fatalf("downtime day %d observed %v of broadcasts, want ≈0.55", dd, frac)
		}
	}
	// Non-downtime days observe everything.
	if ds.Days[10].ObservedBroadcasts != ds.Days[10].Broadcasts {
		t.Fatal("normal day lost observations")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	testutil.CheckGoroutines(t)
	p := Periscope(2000)
	f := testFollowers(p.BroadcasterPool)
	a := Generate(p, f, 5)
	b := Generate(p, f, 5)
	if len(a.Broadcasts) != len(b.Broadcasts) || a.TotalViews != b.TotalViews {
		t.Fatal("same seed produced different corpora")
	}
	for i := range a.Broadcasts {
		if a.Broadcasts[i] != b.Broadcasts[i] {
			t.Fatalf("broadcast %d differs", i)
		}
	}
}

func TestUniqueCountsScale(t *testing.T) {
	testutil.CheckGoroutines(t)
	ds := genSmall(t)
	ub := ds.UniqueBroadcasters()
	uv := ds.UniqueViewers()
	// Paper at 1:1000: 1.85K broadcasters, 7.65K registered viewers.
	if ub < 900 || ub > 2400 {
		t.Fatalf("unique broadcasters = %d, want ≈1.85K at 1:1000", ub)
	}
	if uv < 3500 || uv > 12000 {
		t.Fatalf("unique viewers = %d, want ≈7.65K at 1:1000", uv)
	}
}

// testFollowersB builds follower counts without a *testing.T (for benches).
func testFollowersB(n int) []int {
	g := social.Generate(social.Config{
		Nodes: n, EdgesPerNode: 10, TriadProb: 0.2, CelebrityFraction: 0.001, Seed: 3,
	})
	return g.FollowerCounts()
}
