package workload

import "testing"

func BenchmarkGeneratePeriscope(b *testing.B) {
	p := Periscope(2000) // ≈10K broadcasts per iteration
	f := testFollowersB(p.BroadcasterPool)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Generate(p, f, uint64(i+1))
	}
}

func BenchmarkGenerateMeerkat(b *testing.B) {
	p := Meerkat(100)
	for i := 0; i < b.N; i++ {
		Generate(p, nil, uint64(i+1))
	}
}

func BenchmarkDailyRate(b *testing.B) {
	p := Periscope(100)
	for i := 0; i < b.N; i++ {
		p.DailyRate(i % p.Days)
	}
}
