package clock

import (
	"context"
	"math"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// WheelConfig parameterizes a sharded timer wheel.
type WheelConfig struct {
	// Epoch is the wheel's start time; zero means clock.Epoch.
	Epoch time.Time
	// Shards is the number of independent timer shards, one worker
	// goroutine each. Zero means min(GOMAXPROCS, 8). Timers are
	// FNV-hashed onto shards by owner key, so all timers of one owner
	// fire on one shard and the owner's state needs no locking.
	Shards int
	// Resolution is the tick width: every deadline is rounded up to the
	// next tick boundary. Zero means 10 ms — coarse enough that a full
	// simulated day is ~8.6M ticks, fine enough that a 2.8 s poll
	// interval quantizes below 0.4% error.
	Resolution time.Duration
	// Slots is the number of wheel slots per shard (rounded up to a
	// power of two; zero means 512). Deadlines within Slots×Resolution
	// of now go to an O(1) slot bucket; farther deadlines wait in a
	// per-shard overflow heap.
	Slots int
}

// Wheel is a sharded hashed timer wheel: the scheduler behind the
// million-viewer event engine (internal/viewersim). Like Virtual it is a
// discrete-event virtual clock — time advances only through Advance /
// RunUntil / Run — but it is built for volume where Virtual is built for
// strict global ordering:
//
//   - Schedule/Stop/Reset are O(1) for near deadlines (a doubly-linked slot
//     bucket) and O(log overflow) for far ones, against a per-shard mutex
//     instead of one global lock.
//   - Timer nodes are pooled per shard; steady-state scheduling allocates
//     nothing.
//   - Now is lock-free: a single atomic tick counter, readable from any
//     callback or foreign goroutine.
//   - Ticks with work on several shards fire those shards' batches in
//     parallel on persistent per-shard workers.
//
// The determinism contract is correspondingly weaker than Virtual's: within
// one (shard, tick) batch, callbacks run in a reproducible order (overflow
// arrivals by schedule order, then bucket FIFO), but callbacks of different
// shards due at the same tick run concurrently. Engines that need
// reproducible results must pin each mutable object to one owner key and
// make all cross-owner effects commutative (atomic counters, histogram
// adds) — the discipline internal/viewersim follows.
//
// Callbacks must not block on the wheel's own time (Sleep/After inside a
// callback deadlocks the driving goroutine, exactly as with Virtual).
type Wheel struct {
	epoch   time.Time
	res     time.Duration
	slots   int
	mask    int64
	nowTick atomic.Int64
	fired   atomic.Int64
	shards  []*wheelShard

	fireWG sync.WaitGroup // open fire dispatches during one tick

	runMu  sync.Mutex // serializes Advance/RunUntil/Run drivers
	busy   []*wheelShard
	closed bool

	workerWG sync.WaitGroup
}

// wheelShard is one independently locked timer domain. The padding keeps
// neighbouring shards' mutexes off one cache line.
type wheelShard struct {
	w        *Wheel
	mu       sync.Mutex
	buckets  []wheelBucket
	occ      []uint64 // occupancy bitmap over buckets
	overflow nodeHeap
	free     *timerNode
	batch    []*timerNode // reusable detach buffer for fire
	seq      uint64
	pending  int
	work     chan int64
	_        [64]byte
}

type wheelBucket struct {
	head, tail *timerNode
}

// NewWheel builds the wheel and starts its per-shard workers. Callers own a
// Close when done; an un-Closed wheel leaks its worker goroutines.
func NewWheel(cfg WheelConfig) *Wheel {
	if cfg.Epoch.IsZero() {
		cfg.Epoch = Epoch
	}
	if cfg.Resolution <= 0 {
		cfg.Resolution = 10 * time.Millisecond
	}
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
		if cfg.Shards > 8 {
			cfg.Shards = 8
		}
	}
	if cfg.Slots <= 0 {
		cfg.Slots = 512
	}
	slots := 64 // bitmap scan works in whole 64-bit words
	for slots < cfg.Slots {
		slots <<= 1
	}
	w := &Wheel{
		epoch:  cfg.Epoch,
		res:    cfg.Resolution,
		slots:  slots,
		mask:   int64(slots - 1),
		shards: make([]*wheelShard, cfg.Shards),
		busy:   make([]*wheelShard, 0, cfg.Shards),
	}
	for i := range w.shards {
		s := &wheelShard{
			w:       w,
			buckets: make([]wheelBucket, slots),
			occ:     make([]uint64, slots/64),
			work:    make(chan int64),
		}
		w.shards[i] = s
		w.workerWG.Add(1)
		go func() {
			defer w.workerWG.Done()
			for tick := range s.work {
				s.fire(tick, w.timeOf(tick))
				w.fireWG.Done()
			}
		}()
	}
	return w
}

// Close stops the worker goroutines. The wheel must not be driven or
// scheduled against afterwards.
func (w *Wheel) Close() {
	w.runMu.Lock()
	defer w.runMu.Unlock()
	if w.closed {
		return
	}
	w.closed = true
	for _, s := range w.shards {
		close(s.work)
	}
	w.workerWG.Wait()
}

// Now implements Clock. It is lock-free — one atomic load — so the hottest
// callbacks and foreign goroutines (the real-socket fidelity slice's
// metrics, cdn stamps) can read time without contending with scheduling.
func (w *Wheel) Now() time.Time {
	return w.epoch.Add(time.Duration(w.nowTick.Load()) * w.res)
}

// Shards returns the shard count (the engine sizes its worker-local state
// from it).
func (w *Wheel) Shards() int { return len(w.shards) }

// Resolution returns the tick width.
func (w *Wheel) Resolution() time.Duration { return w.res }

// Fired returns the total number of callbacks dispatched so far.
func (w *Wheel) Fired() int64 { return w.fired.Load() }

// timeOf converts a tick index to clock time.
func (w *Wheel) timeOf(tick int64) time.Time {
	return w.epoch.Add(time.Duration(tick) * w.res)
}

// tickOf converts an absolute time to the last tick at or before it.
func (w *Wheel) tickOf(t time.Time) int64 {
	d := t.Sub(w.epoch) // saturates at ±2^63-1 ns for distant times
	if d < 0 {
		return 0
	}
	return int64(d / w.res)
}

// shardOf hashes an owner key onto a shard with FNV-1a over its 8 bytes.
func (w *Wheel) shardOf(owner uint64) *wheelShard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < 8; i++ {
		h ^= owner & 0xff
		h *= prime64
		owner >>= 8
	}
	return w.shards[h%uint64(len(w.shards))]
}

// Schedule registers fn to run d after the wheel's current time, on the
// shard owning the given key, and returns a cancellable handle. The
// deadline is rounded up to the next tick boundary. Zero and negative
// delays fire at the current tick — during a drive, that means later in the
// same tick's drain.
//
//livesim:hotpath — one mutex, pooled node, no allocation in steady state.
func (w *Wheel) Schedule(owner uint64, d time.Duration, fn func(now time.Time)) Timer {
	if d < 0 {
		d = 0
	}
	now := w.nowTick.Load()
	tick := now + int64((d+w.res-1)/w.res)
	return w.shardOf(owner).schedule(owner, tick, fn)
}

// ScheduleAt registers fn at an absolute time, rounded up to a tick.
func (w *Wheel) ScheduleAt(owner uint64, at time.Time, fn func(now time.Time)) Timer {
	d := at.Sub(w.Now())
	return w.Schedule(owner, d, fn)
}

// schedule inserts a node due at tick (already clamped ≥ the current tick
// at computation time) into a slot bucket or the overflow heap.
//
//livesim:hotpath
func (s *wheelShard) schedule(owner uint64, tick int64, fn func(now time.Time)) Timer {
	s.mu.Lock()
	n := s.free
	if n != nil {
		s.free = n.next
		n.next = nil
	} else {
		//lint:allow hotpathescape free-list miss only; fired and stopped nodes recycle through s.free
		n = &timerNode{heapIx: -1}
	}
	s.seq++
	n.at = s.w.timeOf(tick)
	n.tick = tick
	n.seq = s.seq
	n.owner = owner
	n.fn = fn
	s.insertLocked(n)
	s.pending++
	t := Timer{n: n, gen: n.gen, s: s}
	s.mu.Unlock()
	return t
}

//livesim:hotpath
func (s *wheelShard) insertLocked(n *timerNode) {
	now := s.w.nowTick.Load()
	if n.tick < now {
		// The driver advanced past the deadline between the caller's
		// tick computation and this insert; fire at the current tick.
		n.tick = now
		n.at = s.w.timeOf(now)
	}
	if n.tick-now < int64(s.w.slots) {
		slot := n.tick & s.w.mask
		b := &s.buckets[slot]
		n.prev = b.tail
		n.next = nil
		if b.tail != nil {
			b.tail.next = n
		} else {
			b.head = n
		}
		b.tail = n
		s.occ[slot>>6] |= 1 << uint(slot&63)
		return
	}
	s.overflow.push(n)
}

// unlinkLocked removes a pending node from wherever it sits (bucket or
// overflow heap). The caller must hold s.mu and own a valid generation.
func (s *wheelShard) unlinkLocked(n *timerNode) {
	if n.heapIx >= 0 {
		s.overflow.remove(n.heapIx)
		return
	}
	slot := n.tick & s.w.mask
	b := &s.buckets[slot]
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		b.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		b.tail = n.prev
	}
	n.next, n.prev = nil, nil
	if b.head == nil {
		s.occ[slot>>6] &^= 1 << uint(slot&63)
	}
}

func (s *wheelShard) releaseLocked(n *timerNode) {
	n.gen++
	n.fn = nil
	n.prev = nil
	n.next = s.free
	s.free = n
}

// stopTimer implements timerSched.
func (s *wheelShard) stopTimer(n *timerNode, gen uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n.gen != gen {
		return false
	}
	s.unlinkLocked(n)
	s.pending--
	s.releaseLocked(n)
	return true
}

// resetTimer implements timerSched.
func (s *wheelShard) resetTimer(n *timerNode, gen uint64, d time.Duration) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n.gen != gen {
		return false
	}
	if d < 0 {
		d = 0
	}
	s.unlinkLocked(n)
	now := s.w.nowTick.Load()
	n.tick = now + int64((d+s.w.res-1)/s.w.res)
	n.at = s.w.timeOf(n.tick)
	s.seq++
	n.seq = s.seq
	s.insertLocked(n)
	return true
}

// due returns the earliest tick this shard has work for, or math.MaxInt64.
func (s *wheelShard) due(now int64) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	best := int64(math.MaxInt64)
	if len(s.overflow) > 0 {
		best = s.overflow[0].tick
	}
	if t := s.nextBucketTickLocked(now); t < best {
		best = t
	}
	return best
}

// nextBucketTickLocked scans the occupancy bitmap for the first occupied
// slot at or after now, wrapping once around the wheel.
//
//livesim:hotpath
func (s *wheelShard) nextBucketTickLocked(now int64) int64 {
	slots := s.w.slots
	slot0 := int(now & s.w.mask)
	w0 := slot0 >> 6
	off := uint(slot0 & 63)
	words := slots >> 6
	// First word: bits at or above slot0 cover [now, next word boundary).
	if x := s.occ[w0] >> off; x != 0 {
		return now + int64(bits.TrailingZeros64(x))
	}
	for i := 1; i <= words; i++ {
		wi := (w0 + i) % words
		x := s.occ[wi]
		if i == words {
			// Back at the first word after a full wrap: only the
			// bits strictly below slot0 remain unseen.
			x &= 1<<off - 1
		}
		if x != 0 {
			slot := wi<<6 + bits.TrailingZeros64(x)
			delta := slot - slot0
			if delta <= 0 {
				delta += slots
			}
			return now + int64(delta)
		}
	}
	return math.MaxInt64
}

// fire runs every callback due at tick on this shard: overflow arrivals
// first (schedule order), then the slot bucket FIFO. Nodes are detached and
// generation-bumped under the lock, callbacks run outside it, and the nodes
// return to the freelist in one batch.
//
//livesim:hotpath
func (s *wheelShard) fire(tick int64, now time.Time) {
	s.mu.Lock()
	batch := s.batch[:0]
	for len(s.overflow) > 0 && s.overflow[0].tick <= tick {
		n := s.overflow.pop()
		n.gen++
		batch = append(batch, n)
	}
	slot := tick & s.w.mask
	b := &s.buckets[slot]
	for n := b.head; n != nil; n = n.next {
		n.gen++
		batch = append(batch, n)
	}
	b.head, b.tail = nil, nil
	s.occ[slot>>6] &^= 1 << uint(slot&63)
	s.pending -= len(batch)
	s.mu.Unlock()

	for _, n := range batch {
		n.fn(now)
	}
	s.w.fired.Add(int64(len(batch)))

	s.mu.Lock()
	for i, n := range batch {
		n.fn = nil
		n.prev = nil
		n.next = s.free
		s.free = n
		batch[i] = nil
	}
	s.batch = batch[:0]
	s.mu.Unlock()
}

// Pending returns the number of scheduled, unfired timers.
func (w *Wheel) Pending() int {
	total := 0
	for _, s := range w.shards {
		s.mu.Lock()
		total += s.pending
		s.mu.Unlock()
	}
	return total
}

// RunUntil executes every timer with a deadline ≤ t, then sets the clock to
// t. Ticks where only one shard has work fire inline on the calling
// goroutine; ticks with work on several shards fan out to the per-shard
// workers and barrier before the clock moves again.
func (w *Wheel) RunUntil(t time.Time) {
	w.runMu.Lock()
	defer w.runMu.Unlock()
	w.runLocked(w.tickOf(t))
	if limit := w.tickOf(t); w.nowTick.Load() < limit {
		w.nowTick.Store(limit)
	}
}

// Run executes timers until none remain, returning the final clock time.
func (w *Wheel) Run() time.Time {
	w.runMu.Lock()
	defer w.runMu.Unlock()
	w.runLocked(math.MaxInt64)
	return w.Now()
}

// Advance moves the clock forward by d, firing every timer due in the
// window, and returns the new current time.
func (w *Wheel) Advance(d time.Duration) time.Time {
	w.RunUntil(w.Now().Add(d))
	return w.Now()
}

func (w *Wheel) runLocked(limit int64) {
	for {
		next := int64(math.MaxInt64)
		busy := w.busy[:0]
		now := w.nowTick.Load()
		for _, s := range w.shards {
			d := s.due(now)
			if d < next {
				next = d
				busy = busy[:0]
			}
			if d == next && d != math.MaxInt64 {
				busy = append(busy, s)
			}
		}
		w.busy = busy // retain the grown backing array for the next pass
		if next == math.MaxInt64 || next > limit {
			return
		}
		if next < now {
			// A racing external Schedule targeted an already-passed
			// tick; fire it at the current tick.
			next = now
		}
		w.nowTick.Store(next)
		at := w.timeOf(next)
		if len(busy) == 1 {
			busy[0].fire(next, at)
			continue
		}
		w.fireWG.Add(len(busy))
		for _, s := range busy {
			s.work <- next
		}
		w.fireWG.Wait()
	}
}

// Sleep implements Clock, for components written against the interface. As
// with Virtual, someone else must drive the wheel forward.
func (w *Wheel) Sleep(ctx context.Context, d time.Duration) error {
	done := make(chan struct{})
	w.Schedule(0, d, func(time.Time) { close(done) })
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-done:
		return nil
	}
}

// After implements Clock.
func (w *Wheel) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	w.Schedule(0, d, func(now time.Time) { ch <- now })
	return ch
}
