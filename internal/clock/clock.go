// Package clock provides the time substrate shared by every component of the
// reproduction: a Clock interface with a real implementation backed by the
// operating system and a deterministic virtual implementation driven by a
// discrete-event queue.
//
// The paper's large-scale experiments are trace-driven simulations; those run
// on the VirtualClock so that a seed fully determines the outcome. The
// real-socket platform (examples, crawler, security demo) runs on the
// RealClock.
package clock

import (
	"context"
	"sync"
	"time"
)

// Clock abstracts time for both the live platform and the simulator.
// Timestamps are absolute; the virtual clock starts at a configurable epoch.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// Sleep blocks until d has elapsed on this clock or ctx is done.
	// It returns ctx.Err() if the context ended first, else nil.
	Sleep(ctx context.Context, d time.Duration) error
	// After returns a channel that delivers the clock time once d has
	// elapsed. The channel has capacity 1 and is never closed.
	After(d time.Duration) <-chan time.Time
}

// Real is a Clock backed by the operating system.
type Real struct{}

// NewReal returns the real-time clock.
func NewReal() Real { return Real{} }

// Now implements Clock.
func (Real) Now() time.Time {
	//lint:allow walltime Real is the wall-clock boundary everything else injects
	return time.Now()
}

// Sleep implements Clock.
func (Real) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	//lint:allow walltime Real is the wall-clock boundary everything else injects
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time {
	//lint:allow walltime Real is the wall-clock boundary everything else injects
	return time.After(d)
}

// Virtual is a deterministic discrete-event clock. Time advances only through
// Run, RunUntil, Step, or Advance, which execute scheduled events in
// timestamp order. It is safe for concurrent scheduling, but event execution
// is single-threaded: determinism is the point. Event nodes are pooled, and
// every Schedule/ScheduleAt returns a cancellable Timer handle, so the heap
// allocates nothing in steady state.
type Virtual struct {
	mu     sync.Mutex
	now    time.Time
	seq    uint64
	events nodeHeap
	free   *timerNode // recycled nodes, linked through next
}

// Epoch is the default start time for virtual clocks: the first day of the
// paper's Periscope measurement window (May 15, 2015 UTC).
var Epoch = time.Date(2015, time.May, 15, 0, 0, 0, 0, time.UTC)

// NewVirtual returns a virtual clock starting at the given epoch.
// A zero epoch means clock.Epoch.
func NewVirtual(epoch time.Time) *Virtual {
	if epoch.IsZero() {
		epoch = Epoch
	}
	return &Virtual{now: epoch}
}

// Now implements Clock.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Schedule registers fn to run when the clock reaches v.Now().Add(d) and
// returns a handle that can Stop or Reset it. Negative delays run at the
// current time, after already-queued events for that instant.
func (v *Virtual) Schedule(d time.Duration, fn func(now time.Time)) Timer {
	v.mu.Lock()
	defer v.mu.Unlock()
	if d < 0 {
		d = 0
	}
	return v.scheduleLocked(v.now.Add(d), fn)
}

// ScheduleAt registers fn to run at absolute time at. Times in the past run
// at the current instant.
func (v *Virtual) ScheduleAt(at time.Time, fn func(now time.Time)) Timer {
	v.mu.Lock()
	defer v.mu.Unlock()
	if at.Before(v.now) {
		at = v.now
	}
	return v.scheduleLocked(at, fn)
}

func (v *Virtual) scheduleLocked(at time.Time, fn func(now time.Time)) Timer {
	n := v.free
	if n != nil {
		v.free = n.next
		n.next = nil
	} else {
		n = &timerNode{heapIx: -1}
	}
	v.seq++
	n.at = at
	n.seq = v.seq
	n.fn = fn
	v.events.push(n)
	return Timer{n: n, gen: n.gen, s: v}
}

// releaseLocked invalidates every outstanding handle to n and returns it to
// the freelist.
func (v *Virtual) releaseLocked(n *timerNode) {
	n.gen++
	n.fn = nil
	n.next = v.free
	n.prev = nil
	v.free = n
}

// stopTimer implements timerSched.
func (v *Virtual) stopTimer(n *timerNode, gen uint64) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	if n.gen != gen || n.heapIx < 0 {
		return false
	}
	v.events.remove(n.heapIx)
	v.releaseLocked(n)
	return true
}

// resetTimer implements timerSched.
func (v *Virtual) resetTimer(n *timerNode, gen uint64, d time.Duration) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	if n.gen != gen || n.heapIx < 0 {
		return false
	}
	if d < 0 {
		d = 0
	}
	n.at = v.now.Add(d)
	v.seq++
	n.seq = v.seq
	v.events.fix(n.heapIx)
	return true
}

// step pops and runs the earliest event if it is at or before limit.
// It reports whether an event ran.
func (v *Virtual) step(limit time.Time) bool {
	v.mu.Lock()
	if len(v.events) == 0 {
		v.mu.Unlock()
		return false
	}
	n := v.events[0]
	if n.at.After(limit) {
		v.mu.Unlock()
		return false
	}
	v.events.pop()
	at, fn := n.at, n.fn
	v.now = at
	v.releaseLocked(n)
	v.mu.Unlock()
	fn(at)
	return true
}

// Step executes the single earliest pending event if its timestamp is at or
// before limit, reporting whether one ran. It is the building block external
// drivers (the viewersim goroutine-reference coordinator) use to interleave
// event execution with their own scheduling.
func (v *Virtual) Step(limit time.Time) bool { return v.step(limit) }

// Run executes all events until the queue drains, returning the final time.
func (v *Virtual) Run() time.Time {
	for v.step(maxTime) {
	}
	return v.Now()
}

// RunUntil executes events with timestamps ≤ t, then sets the clock to t.
func (v *Virtual) RunUntil(t time.Time) {
	for v.step(t) {
	}
	v.mu.Lock()
	if v.now.Before(t) {
		v.now = t
	}
	v.mu.Unlock()
}

// Advance moves the clock forward by d, executing every event due in the
// window, and returns the new current time.
func (v *Virtual) Advance(d time.Duration) time.Time {
	v.mu.Lock()
	target := v.now.Add(d)
	v.mu.Unlock()
	v.RunUntil(target)
	return v.Now()
}

// Pending returns the number of queued events.
func (v *Virtual) Pending() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.events)
}

// Sleep implements Clock. On a virtual clock, Sleep can only be called from
// inside event callbacks indirectly; direct callers receive an immediate
// schedule at now+d and must drive the clock themselves. To keep the
// simulator single-threaded, virtual Sleep registers a wakeup and busy-waits
// are avoided by the event-driven style: most simulator code uses Schedule
// directly. Sleep is provided so components written against Clock still work
// under a test harness that advances time from another goroutine.
func (v *Virtual) Sleep(ctx context.Context, d time.Duration) error {
	done := make(chan struct{})
	v.Schedule(d, func(time.Time) { close(done) })
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-done:
		return nil
	}
}

// After implements Clock.
func (v *Virtual) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	v.Schedule(d, func(now time.Time) { ch <- now })
	return ch
}

var maxTime = time.Unix(1<<62, 0)
