package clock

import (
	"context"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestVirtualStartsAtEpoch(t *testing.T) {
	v := NewVirtual(time.Time{})
	if !v.Now().Equal(Epoch) {
		t.Fatalf("Now() = %v, want %v", v.Now(), Epoch)
	}
}

func TestVirtualCustomEpoch(t *testing.T) {
	e := time.Date(2020, 1, 2, 3, 4, 5, 0, time.UTC)
	v := NewVirtual(e)
	if !v.Now().Equal(e) {
		t.Fatalf("Now() = %v, want %v", v.Now(), e)
	}
}

func TestVirtualScheduleOrdering(t *testing.T) {
	v := NewVirtual(time.Time{})
	var got []int
	v.Schedule(3*time.Second, func(time.Time) { got = append(got, 3) })
	v.Schedule(1*time.Second, func(time.Time) { got = append(got, 1) })
	v.Schedule(2*time.Second, func(time.Time) { got = append(got, 2) })
	v.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestVirtualEqualTimesFIFO(t *testing.T) {
	v := NewVirtual(time.Time{})
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		v.Schedule(time.Second, func(time.Time) { got = append(got, i) })
	}
	v.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("equal-time events out of schedule order: %v", got)
		}
	}
}

func TestVirtualNestedScheduling(t *testing.T) {
	v := NewVirtual(time.Time{})
	var fired int
	var recur func(now time.Time)
	recur = func(now time.Time) {
		fired++
		if fired < 5 {
			v.Schedule(time.Second, recur)
		}
	}
	v.Schedule(time.Second, recur)
	end := v.Run()
	if fired != 5 {
		t.Fatalf("fired = %d, want 5", fired)
	}
	if want := Epoch.Add(5 * time.Second); !end.Equal(want) {
		t.Fatalf("end = %v, want %v", end, want)
	}
}

func TestVirtualRunUntil(t *testing.T) {
	v := NewVirtual(time.Time{})
	var fired []int
	v.Schedule(1*time.Second, func(time.Time) { fired = append(fired, 1) })
	v.Schedule(5*time.Second, func(time.Time) { fired = append(fired, 5) })
	v.RunUntil(Epoch.Add(2 * time.Second))
	if len(fired) != 1 || fired[0] != 1 {
		t.Fatalf("fired = %v, want [1]", fired)
	}
	if got := v.Now(); !got.Equal(Epoch.Add(2 * time.Second)) {
		t.Fatalf("Now() = %v, want epoch+2s", got)
	}
	if v.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", v.Pending())
	}
}

func TestVirtualAdvance(t *testing.T) {
	v := NewVirtual(time.Time{})
	count := 0
	v.Schedule(time.Second, func(time.Time) { count++ })
	v.Schedule(3*time.Second, func(time.Time) { count++ })
	now := v.Advance(2 * time.Second)
	if count != 1 {
		t.Fatalf("count = %d, want 1", count)
	}
	if !now.Equal(Epoch.Add(2 * time.Second)) {
		t.Fatalf("now = %v", now)
	}
}

func TestVirtualScheduleAtPast(t *testing.T) {
	v := NewVirtual(time.Time{})
	v.Advance(10 * time.Second)
	ran := false
	v.ScheduleAt(Epoch, func(now time.Time) {
		ran = true
		if now.Before(Epoch.Add(10 * time.Second)) {
			t.Errorf("past event ran at %v, before current time", now)
		}
	})
	v.Run()
	if !ran {
		t.Fatal("past-scheduled event never ran")
	}
}

func TestVirtualNegativeDelay(t *testing.T) {
	v := NewVirtual(time.Time{})
	ran := false
	v.Schedule(-time.Second, func(time.Time) { ran = true })
	v.Run()
	if !ran {
		t.Fatal("negative-delay event never ran")
	}
	if !v.Now().Equal(Epoch) {
		t.Fatalf("clock moved backwards: %v", v.Now())
	}
}

func TestVirtualSleepFromOtherGoroutine(t *testing.T) {
	v := NewVirtual(time.Time{})
	var wg sync.WaitGroup
	wg.Add(1)
	errCh := make(chan error, 1)
	go func() {
		defer wg.Done()
		errCh <- v.Sleep(context.Background(), 5*time.Second)
	}()
	// Drive the clock until the sleeper's wakeup is queued and executed.
	for v.Pending() == 0 {
		time.Sleep(time.Millisecond)
	}
	v.Run()
	wg.Wait()
	if err := <-errCh; err != nil {
		t.Fatalf("Sleep returned %v", err)
	}
}

func TestVirtualSleepCancellation(t *testing.T) {
	v := NewVirtual(time.Time{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := v.Sleep(ctx, time.Hour); err != context.Canceled {
		t.Fatalf("Sleep = %v, want context.Canceled", err)
	}
}

func TestVirtualAfter(t *testing.T) {
	v := NewVirtual(time.Time{})
	ch := v.After(3 * time.Second)
	v.Run()
	select {
	case now := <-ch:
		if !now.Equal(Epoch.Add(3 * time.Second)) {
			t.Fatalf("After delivered %v", now)
		}
	default:
		t.Fatal("After channel empty after Run")
	}
}

func TestRealSleepRespectsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := NewReal()
	if err := r.Sleep(ctx, time.Hour); err != context.Canceled {
		t.Fatalf("Sleep = %v, want context.Canceled", err)
	}
}

func TestRealSleepZero(t *testing.T) {
	r := NewReal()
	if err := r.Sleep(context.Background(), 0); err != nil {
		t.Fatalf("Sleep(0) = %v", err)
	}
}

func TestRealNowAdvances(t *testing.T) {
	r := NewReal()
	a := r.Now()
	time.Sleep(time.Millisecond)
	if !r.Now().After(a) {
		t.Fatal("real clock did not advance")
	}
}

// Property: for any set of non-negative delays, events execute in
// non-decreasing timestamp order and the clock never runs backwards.
func TestVirtualMonotonicProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		v := NewVirtual(time.Time{})
		var times []time.Time
		for _, d := range delays {
			v.Schedule(time.Duration(d)*time.Millisecond, func(now time.Time) {
				times = append(times, now)
			})
		}
		v.Run()
		if len(times) != len(delays) {
			return false
		}
		for i := 1; i < len(times); i++ {
			if times[i].Before(times[i-1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Advance by the sum of parts equals advancing once by the total.
func TestVirtualAdvanceAdditiveProperty(t *testing.T) {
	f := func(parts []uint8) bool {
		v1 := NewVirtual(time.Time{})
		v2 := NewVirtual(time.Time{})
		var total time.Duration
		for _, p := range parts {
			d := time.Duration(p) * time.Millisecond
			total += d
			v1.Advance(d)
		}
		v2.Advance(total)
		return v1.Now().Equal(v2.Now())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
