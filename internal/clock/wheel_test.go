package clock

import (
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"
)

func newTestWheel(t *testing.T, cfg WheelConfig) *Wheel {
	t.Helper()
	w := NewWheel(cfg)
	t.Cleanup(w.Close)
	return w
}

func TestWheelStartsAtEpoch(t *testing.T) {
	w := newTestWheel(t, WheelConfig{})
	if !w.Now().Equal(Epoch) {
		t.Fatalf("Now() = %v, want %v", w.Now(), Epoch)
	}
}

func TestWheelFiresInTickOrder(t *testing.T) {
	w := newTestWheel(t, WheelConfig{Shards: 1, Resolution: 10 * time.Millisecond})
	var got []time.Duration
	for _, d := range []time.Duration{50 * time.Millisecond, 10 * time.Millisecond, 30 * time.Millisecond} {
		d := d
		w.Schedule(1, d, func(now time.Time) { got = append(got, now.Sub(Epoch)) })
	}
	w.Run()
	want := []time.Duration{10 * time.Millisecond, 30 * time.Millisecond, 50 * time.Millisecond}
	if len(got) != len(want) {
		t.Fatalf("fired %d timers, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fire %d at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestWheelRoundsUpToResolution(t *testing.T) {
	w := newTestWheel(t, WheelConfig{Shards: 1, Resolution: 10 * time.Millisecond})
	var at time.Time
	w.Schedule(1, 14*time.Millisecond, func(now time.Time) { at = now })
	w.Run()
	if want := Epoch.Add(20 * time.Millisecond); !at.Equal(want) {
		t.Fatalf("fired at %v, want %v (rounded up)", at, want)
	}
}

func TestWheelOverflowBeyondWindow(t *testing.T) {
	// 64 slots × 10 ms = 640 ms window: far timers must take the
	// overflow heap and still fire at the right time.
	w := newTestWheel(t, WheelConfig{Shards: 1, Resolution: 10 * time.Millisecond, Slots: 64})
	var order []string
	w.Schedule(1, 5*time.Second, func(time.Time) { order = append(order, "far") })
	w.Schedule(1, 100*time.Millisecond, func(time.Time) { order = append(order, "near") })
	if got := w.Pending(); got != 2 {
		t.Fatalf("Pending = %d, want 2", got)
	}
	end := w.Run()
	if want := Epoch.Add(5 * time.Second); !end.Equal(want) {
		t.Fatalf("Run ended at %v, want %v", end, want)
	}
	if len(order) != 2 || order[0] != "near" || order[1] != "far" {
		t.Fatalf("fire order = %v", order)
	}
}

func TestWheelSameTickFIFOAndOwnerAffinity(t *testing.T) {
	w := newTestWheel(t, WheelConfig{Shards: 4, Resolution: time.Millisecond})
	const owner = 7
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		w.Schedule(owner, 5*time.Millisecond, func(time.Time) { got = append(got, i) })
	}
	w.Run()
	// One owner → one shard → strict FIFO within the tick, and no data
	// race on got even with four shards configured.
	for i, v := range got {
		if v != i {
			t.Fatalf("same-tick fire order broken at %d: %v", i, got[:i+1])
		}
	}
	if len(got) != 100 {
		t.Fatalf("fired %d, want 100", len(got))
	}
}

func TestWheelStop(t *testing.T) {
	w := newTestWheel(t, WheelConfig{Shards: 1, Resolution: 10 * time.Millisecond, Slots: 64})
	fired := 0
	near := w.Schedule(1, 50*time.Millisecond, func(time.Time) { fired++ })
	far := w.Schedule(1, time.Minute, func(time.Time) { fired++ })
	keep := w.Schedule(1, 70*time.Millisecond, func(time.Time) { fired++ })
	if !near.Stop() || !far.Stop() {
		t.Fatal("Stop on pending timers returned false")
	}
	if near.Stop() {
		t.Fatal("second Stop returned true")
	}
	w.Run()
	if fired != 1 {
		t.Fatalf("fired %d callbacks, want 1 (only keep)", fired)
	}
	if keep.Stop() {
		t.Fatal("Stop after firing returned true")
	}
}

func TestWheelReset(t *testing.T) {
	w := newTestWheel(t, WheelConfig{Shards: 1, Resolution: 10 * time.Millisecond})
	var at time.Time
	tm := w.Schedule(1, 20*time.Millisecond, func(now time.Time) { at = now })
	if !tm.Reset(200 * time.Millisecond) {
		t.Fatal("Reset on pending timer returned false")
	}
	w.Run()
	if want := Epoch.Add(200 * time.Millisecond); !at.Equal(want) {
		t.Fatalf("fired at %v, want %v", at, want)
	}
	if tm.Reset(time.Second) {
		t.Fatal("Reset after firing returned true")
	}
}

func TestWheelZeroTimerHandle(t *testing.T) {
	var tm Timer
	if tm.Stop() || tm.Reset(time.Second) {
		t.Fatal("zero Timer must be inert")
	}
}

func TestWheelNodePoolingReuses(t *testing.T) {
	w := newTestWheel(t, WheelConfig{Shards: 1, Resolution: time.Millisecond})
	// Warm one node, then measure steady-state schedule+fire cycles.
	w.Schedule(1, time.Millisecond, func(time.Time) {})
	w.Run()
	allocs := testing.AllocsPerRun(100, func() {
		w.Schedule(1, time.Millisecond, func(time.Time) {})
		w.Run()
	})
	if allocs > 0.5 {
		t.Fatalf("steady-state schedule+fire allocates %.1f objects/op, want 0", allocs)
	}
}

func TestWheelRescheduleFromCallback(t *testing.T) {
	w := newTestWheel(t, WheelConfig{Shards: 2, Resolution: 10 * time.Millisecond})
	var ticks []time.Duration
	var loop func(now time.Time)
	loop = func(now time.Time) {
		ticks = append(ticks, now.Sub(Epoch))
		if len(ticks) < 5 {
			w.Schedule(3, 30*time.Millisecond, loop)
		}
	}
	w.Schedule(3, 30*time.Millisecond, loop)
	w.Run()
	if len(ticks) != 5 {
		t.Fatalf("looped %d times, want 5", len(ticks))
	}
	for i, d := range ticks {
		if want := time.Duration(i+1) * 30 * time.Millisecond; d != want {
			t.Fatalf("iteration %d at +%v, want +%v", i, d, want)
		}
	}
}

func TestWheelRunUntilSetsNow(t *testing.T) {
	w := newTestWheel(t, WheelConfig{Shards: 1})
	fired := false
	w.Schedule(1, time.Hour, func(time.Time) { fired = true })
	w.RunUntil(Epoch.Add(30 * time.Minute))
	if fired {
		t.Fatal("timer beyond the limit fired")
	}
	if want := Epoch.Add(30 * time.Minute); !w.Now().Equal(want) {
		t.Fatalf("Now = %v, want %v", w.Now(), want)
	}
	w.RunUntil(Epoch.Add(2 * time.Hour))
	if !fired {
		t.Fatal("timer within the limit did not fire")
	}
}

func TestWheelNowLockFreeDuringRun(t *testing.T) {
	// Foreign goroutines may read Now while callbacks fire; under -race
	// this checks the atomic-epoch claim.
	w := newTestWheel(t, WheelConfig{Shards: 4, Resolution: time.Millisecond})
	for owner := uint64(0); owner < 64; owner++ {
		for i := 0; i < 50; i++ {
			w.Schedule(owner, time.Duration(i)*time.Millisecond, func(time.Time) {})
		}
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	for g := 0; g < 2; g++ {
		go func() {
			defer wg.Done()
			last := w.Now()
			for {
				select {
				case <-done:
					return
				default:
				}
				now := w.Now()
				if now.Before(last) {
					t.Error("Now went backwards")
					return
				}
				last = now
			}
		}()
	}
	w.Run()
	close(done)
	wg.Wait()
}

func TestWheelSleepAndAfter(t *testing.T) {
	w := newTestWheel(t, WheelConfig{Shards: 1, Resolution: 10 * time.Millisecond})
	ch := w.After(50 * time.Millisecond)
	go w.Advance(time.Second)
	at := <-ch
	if want := Epoch.Add(50 * time.Millisecond); !at.Equal(want) {
		t.Fatalf("After delivered %v, want %v", at, want)
	}
}

// firing is one observed callback dispatch, for equivalence comparison.
type firing struct {
	owner uint64
	id    int
	at    time.Duration
}

// wheelHarness adapts Wheel and Virtual to one scheduling surface so the
// same randomized workload can drive both.
type schedHarness struct {
	schedule func(owner uint64, d time.Duration, fn func(time.Time)) Timer
	run      func()
	now      func() time.Time
}

// TestWheelVirtualEquivalence drives an identical randomized timer workload
// — schedules from callbacks, stops, resets, near and far deadlines, all at
// resolution multiples — through the Virtual heap and through wheels with 1
// and 4 shards, and requires every owner's observed firing sequence
// (id + timestamp) to be identical. This is the contract that lets
// internal/viewersim treat the two schedulers as interchangeable.
func TestWheelVirtualEquivalence(t *testing.T) {
	const res = 10 * time.Millisecond
	// lcg steps a deterministic pseudo-random state; each owner carries
	// its own so callback-driven draws stay identical no matter how the
	// wheel interleaves owners across shards.
	lcg := func(state *uint64, n int) int {
		*state = *state*6364136223846793005 + 1442695040888963407
		return int((*state >> 33) % uint64(n))
	}
	type ownerState struct {
		state  uint64
		nextID int
		fired  []firing
	}
	workload := func(h schedHarness) map[uint64][]firing {
		const owners = 16
		states := make([]*ownerState, owners)
		var tick func(o *ownerState, idx uint64) func(time.Time)
		tick = func(o *ownerState, idx uint64) func(time.Time) {
			id := o.nextID
			o.nextID++
			return func(now time.Time) {
				o.fired = append(o.fired, firing{idx, id, now.Sub(Epoch)})
				if lcg(&o.state, 100) < 40 {
					h.schedule(idx, time.Duration(1+lcg(&o.state, 200))*res, tick(o, idx))
				}
			}
		}
		// Setup runs single-threaded and identically for both engines.
		setup := uint64(0x9e3779b97f4a7c15)
		for owner := uint64(0); owner < owners; owner++ {
			o := &ownerState{state: owner*0x9e3779b9 + 1}
			states[owner] = o
			var cancels []Timer
			for i := 0; i < 30; i++ {
				d := time.Duration(1+lcg(&setup, 1000)) * res // spans bucket window and overflow
				tm := h.schedule(owner, d, tick(o, owner))
				if lcg(&setup, 100) < 20 {
					cancels = append(cancels, tm)
				} else if lcg(&setup, 100) < 10 {
					tm.Reset(time.Duration(1+lcg(&setup, 500)) * res)
				}
			}
			for _, tm := range cancels {
				tm.Stop()
			}
		}
		h.run()
		got := map[uint64][]firing{}
		for owner, o := range states {
			got[uint64(owner)] = o.fired
		}
		return got
	}

	virtual := func() map[uint64][]firing {
		v := NewVirtual(time.Time{})
		return workload(schedHarness{
			schedule: func(owner uint64, d time.Duration, fn func(time.Time)) Timer {
				return v.Schedule(d, fn)
			},
			run: func() { v.Run() },
			now: v.Now,
		})
	}
	wheel := func(shards int) map[uint64][]firing {
		w := NewWheel(WheelConfig{Shards: shards, Resolution: res, Slots: 128})
		defer w.Close()
		return workload(schedHarness{
			schedule: w.Schedule,
			run:      func() { w.Run() },
			now:      w.Now,
		})
	}

	ref := virtual()
	for _, shards := range []int{1, 4} {
		got := wheel(shards)
		if len(got) != len(ref) {
			t.Fatalf("shards=%d: %d owners fired, want %d", shards, len(got), len(ref))
		}
		for owner, want := range ref {
			have := got[owner]
			if len(have) != len(want) {
				t.Fatalf("shards=%d owner=%d: %d firings, want %d", shards, owner, len(have), len(want))
			}
			for i := range want {
				if have[i] != want[i] {
					t.Fatalf("shards=%d owner=%d firing %d: got %+v, want %+v",
						shards, owner, i, have[i], want[i])
				}
			}
		}
	}
}

// TestWheelEquivalenceFuzzSeeds runs a smaller version of the equivalence
// workload across several seeds, comparing the multiset of (owner, time)
// firings between Virtual and a 4-shard wheel.
func TestWheelEquivalenceFuzzSeeds(t *testing.T) {
	const res = 10 * time.Millisecond
	run := func(seed uint64, h schedHarness) []string {
		var mu sync.Mutex
		var fired []string
		state := seed
		rnd := func(n int) int {
			state = state*6364136223846793005 + 1442695040888963407
			return int((state >> 33) % uint64(n))
		}
		for owner := uint64(0); owner < 8; owner++ {
			owner := owner
			for i := 0; i < 40; i++ {
				i := i
				h.schedule(owner, time.Duration(1+rnd(300))*res, func(now time.Time) {
					mu.Lock()
					fired = append(fired, fmt.Sprintf("%d/%d@%v", owner, i, now.Sub(Epoch)))
					mu.Unlock()
				})
			}
		}
		h.run()
		sort.Strings(fired)
		return fired
	}
	for seed := uint64(1); seed <= 5; seed++ {
		v := NewVirtual(time.Time{})
		ref := run(seed, schedHarness{
			schedule: func(o uint64, d time.Duration, fn func(time.Time)) Timer { return v.Schedule(d, fn) },
			run:      func() { v.Run() },
		})
		w := NewWheel(WheelConfig{Shards: 4, Resolution: res, Slots: 64})
		got := run(seed, schedHarness{schedule: w.Schedule, run: func() { w.Run() }})
		w.Close()
		if len(got) != len(ref) {
			t.Fatalf("seed %d: %d firings vs %d", seed, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("seed %d firing %d: %s vs %s", seed, i, got[i], ref[i])
			}
		}
	}
}

func TestVirtualTimerStopReset(t *testing.T) {
	v := NewVirtual(time.Time{})
	fired := 0
	a := v.Schedule(time.Second, func(time.Time) { fired++ })
	b := v.Schedule(2*time.Second, func(time.Time) { fired++ })
	c := v.Schedule(3*time.Second, func(time.Time) { fired++ })
	if !a.Stop() {
		t.Fatal("Stop pending returned false")
	}
	if a.Stop() {
		t.Fatal("double Stop returned true")
	}
	if !b.Reset(5 * time.Second) {
		t.Fatal("Reset pending returned false")
	}
	end := v.Run()
	if fired != 2 {
		t.Fatalf("fired %d, want 2", fired)
	}
	if want := v.Now(); !end.Equal(want) {
		t.Fatalf("Run returned %v, want %v", end, want)
	}
	if want := Epoch.Add(5 * time.Second); !v.Now().Equal(want) {
		t.Fatalf("final time %v, want %v (reset deadline)", v.Now(), want)
	}
	if c.Stop() || b.Reset(time.Second) {
		t.Fatal("handles must be dead after firing")
	}
}

func TestVirtualPooledNodesAreGenerationSafe(t *testing.T) {
	v := NewVirtual(time.Time{})
	first := v.Schedule(time.Second, func(time.Time) {})
	v.Run()
	// The node is back on the freelist; this schedule reuses it.
	reused := v.Schedule(time.Second, func(time.Time) {})
	if first.Stop() {
		t.Fatal("stale handle stopped a reused node")
	}
	if !reused.Stop() {
		t.Fatal("fresh handle failed to stop")
	}
	if v.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0", v.Pending())
	}
}

func TestVirtualScheduleSteadyStateAllocs(t *testing.T) {
	v := NewVirtual(time.Time{})
	v.Schedule(time.Millisecond, func(time.Time) {})
	v.Run()
	allocs := testing.AllocsPerRun(100, func() {
		v.Schedule(time.Millisecond, func(time.Time) {})
		v.Run()
	})
	if allocs > 0.5 {
		t.Fatalf("steady-state Virtual schedule+fire allocates %.1f objects/op, want 0", allocs)
	}
}
