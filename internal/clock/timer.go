package clock

import "time"

// timerNode is the pooled scheduling record shared by the Virtual clock's
// event heap and the Wheel's slot buckets / overflow heaps. Nodes are
// intrusive: they carry their own doubly-linked bucket links and their heap
// index, so moving a timer between a bucket, a heap and the freelist never
// allocates. A node is owned by exactly one scheduler (a Virtual or one
// wheel shard) for its whole life; the owning scheduler's mutex guards every
// field.
type timerNode struct {
	next, prev *timerNode // bucket list links; next doubles as the freelist link
	heapIx     int        // index in the owning heap, -1 when not heaped
	at         time.Time  // absolute deadline on the owning clock
	tick       int64      // wheel deadline in resolution ticks (wheel only)
	seq        uint64     // schedule order, tie-break for equal deadlines
	gen        uint64     // generation; bumped whenever the node is detached
	owner      uint64     // shard-affinity key (wheel only)
	fn         func(now time.Time)
}

// timerSched is the private contract a Timer handle uses to reach back into
// the scheduler that issued it.
type timerSched interface {
	stopTimer(n *timerNode, gen uint64) bool
	resetTimer(n *timerNode, gen uint64, d time.Duration) bool
}

// Timer is a cancellable handle to one scheduled callback, returned by
// Virtual.Schedule/ScheduleAt and Wheel.Schedule/ScheduleAt. The zero Timer
// is valid and inert. Handles are single-shot: once the callback has been
// dispatched (or the timer stopped), Stop and Reset return false and the
// underlying node may be reused for an unrelated timer — a generation
// counter makes stale handles safe, so Timer values can be kept, copied and
// dropped freely without coordination.
type Timer struct {
	n   *timerNode
	gen uint64
	s   timerSched
}

// Stop cancels the timer. It reports true if the callback was still pending
// and will now never run, false if it already ran, was already stopped, or
// the handle is zero.
func (t Timer) Stop() bool {
	if t.s == nil {
		return false
	}
	return t.s.stopTimer(t.n, t.gen)
}

// Reset reschedules a still-pending timer to fire d from the scheduler's
// current time, keeping its callback, and reports whether it succeeded.
// A false return means the timer already fired or was stopped; re-arm it
// with a fresh Schedule call in that case.
func (t Timer) Reset(d time.Duration) bool {
	if t.s == nil {
		return false
	}
	return t.s.resetTimer(t.n, t.gen, d)
}

// nodeHeap is a binary min-heap of timer nodes ordered by (at, seq),
// maintaining heapIx so arbitrary removal (Stop) is O(log n). It is written
// out rather than layered on container/heap to keep the wheel's overflow
// path free of interface dispatch.
type nodeHeap []*timerNode

func nodeLess(a, b *timerNode) bool {
	if !a.at.Equal(b.at) {
		return a.at.Before(b.at)
	}
	return a.seq < b.seq
}

func (h *nodeHeap) push(n *timerNode) {
	*h = append(*h, n)
	n.heapIx = len(*h) - 1
	h.up(n.heapIx)
}

func (h *nodeHeap) pop() *timerNode {
	s := *h
	n := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s[0].heapIx = 0
	s[last] = nil
	*h = s[:last]
	if last > 0 {
		h.down(0)
	}
	n.heapIx = -1
	return n
}

// remove detaches the node at index i.
func (h *nodeHeap) remove(i int) {
	s := *h
	n := s[i]
	last := len(s) - 1
	if i != last {
		s[i] = s[last]
		s[i].heapIx = i
	}
	s[last] = nil
	*h = s[:last]
	if i < last {
		h.down(i)
		h.up(i)
	}
	n.heapIx = -1
}

// fix restores heap order after s[i].at changed in place.
func (h *nodeHeap) fix(i int) {
	h.down(i)
	h.up(i)
}

func (h nodeHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !nodeLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		h[i].heapIx = i
		h[parent].heapIx = parent
		i = parent
	}
}

func (h nodeHeap) down(i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		small := l
		if r := l + 1; r < n && nodeLess(h[r], h[l]) {
			small = r
		}
		if !nodeLess(h[small], h[i]) {
			break
		}
		h[i], h[small] = h[small], h[i]
		h[i].heapIx = i
		h[small].heapIx = small
		i = small
	}
}
