// Package rng supplies the deterministic randomness used throughout the
// reproduction. Every stochastic component (workload generators, network
// jitter, graph construction) draws from an rng.Source seeded explicitly, so
// a (seed, parameters) pair fully determines an experiment.
//
// The generator is PCG-XSH-RR (64/32) with a 64-bit stream selector; Split
// derives independent child streams so concurrent components never share
// state.
package rng

import "math"

// Source is a deterministic pseudo-random source with distribution helpers.
// It is not safe for concurrent use; derive per-goroutine children with
// Split.
type Source struct {
	state uint64
	inc   uint64
}

// New returns a Source seeded from seed on the default stream.
func New(seed uint64) *Source {
	return NewStream(seed, 0xda3e39cb94b95bdb)
}

// NewStream returns a Source on an explicit stream; distinct streams with the
// same seed are statistically independent.
func NewStream(seed, stream uint64) *Source {
	s := &Source{inc: (stream << 1) | 1}
	s.state = 0
	s.next()
	s.state += seed
	s.next()
	return s
}

// Split derives a child source whose stream is keyed by label. Children are
// independent of the parent and of each other for distinct labels.
func (s *Source) Split(label string) *Source {
	h := uint64(14695981039346656037) // FNV-64 offset basis
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	return NewStream(s.Uint64(), h)
}

func (s *Source) next() uint32 {
	old := s.state
	s.state = old*6364136223846793005 + s.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return (xorshifted >> rot) | (xorshifted << ((-rot) & 31))
}

// Uint64 returns a uniformly distributed 64-bit value.
func (s *Source) Uint64() uint64 {
	return uint64(s.next())<<32 | uint64(s.next())
}

// Uint32 returns a uniformly distributed 32-bit value.
func (s *Source) Uint32() uint32 { return s.next() }

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.Uint64n(uint64(n)))
}

// Uint64n returns a uniform value in [0, n) using Lemire rejection.
func (s *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	// Avoid modulo bias: rejection sample on the top range.
	threshold := -n % n
	for {
		v := s.Uint64()
		if v >= threshold {
			return v % n
		}
	}
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool { return s.Float64() < p }

// Exp returns an exponentially distributed value with the given mean.
func (s *Source) Exp(mean float64) float64 {
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	return -mean * math.Log(u)
}

// Normal returns a normally distributed value (Box–Muller).
func (s *Source) Normal(mean, stddev float64) float64 {
	var u, v float64
	for u == 0 {
		u = s.Float64()
	}
	v = s.Float64()
	z := math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
	return mean + stddev*z
}

// LogNormal returns exp(Normal(mu, sigma)); mu and sigma parameterize the
// underlying normal, not the resulting distribution's mean.
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.Normal(mu, sigma))
}

// Pareto returns a Pareto(xm, alpha) draw: xm * U^(-1/alpha), values ≥ xm.
func (s *Source) Pareto(xm, alpha float64) float64 {
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	return xm * math.Pow(u, -1/alpha)
}

// Poisson returns a Poisson draw with the given mean, using inversion for
// small means and normal approximation above 500 (workload day counts never
// need exact tails there).
func (s *Source) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 500 {
		v := s.Normal(mean, math.Sqrt(mean))
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= s.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Zipf draws from a bounded Zipf distribution over {0, …, n-1} with exponent
// alpha > 0 (probability of rank r proportional to 1/(r+1)^alpha). It uses a
// precomputed CDF; construct once via NewZipf for repeated draws.
type Zipf struct {
	cdf []float64
	src *Source
}

// NewZipf builds a Zipf sampler over n ranks with exponent alpha.
func NewZipf(src *Source, n int, alpha float64) *Zipf {
	if n <= 0 {
		panic("rng: NewZipf with non-positive n")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), alpha)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, src: src}
}

// Draw returns a rank in [0, n).
func (z *Zipf) Draw() int {
	u := z.src.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Shuffle permutes the first n elements using swap, Fisher–Yates style.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	s.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}
