package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("sources with equal seeds diverged at draw %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	a := parent.Split("workload")
	parent2 := New(7)
	b := parent2.Split("workload")
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split is not deterministic for equal seed+label")
		}
	}
	c := New(7).Split("workload")
	d := New(7).Split("netsim")
	diff := false
	for i := 0; i < 10; i++ {
		if c.Uint64() != d.Uint64() {
			diff = true
		}
	}
	if !diff {
		t.Fatal("distinct labels produced identical streams")
	}
}

func TestIntnRange(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		v := s.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d out of range", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	s := New(9)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(11)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ≈0.5", mean)
	}
}

func TestExpMean(t *testing.T) {
	s := New(13)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += s.Exp(3.0)
	}
	mean := sum / n
	if math.Abs(mean-3.0) > 0.1 {
		t.Fatalf("exponential mean = %v, want ≈3", mean)
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(17)
	const n = 100000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Normal(5, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-5) > 0.05 {
		t.Fatalf("normal mean = %v, want ≈5", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.05 {
		t.Fatalf("normal stddev = %v, want ≈2", math.Sqrt(variance))
	}
}

func TestParetoLowerBound(t *testing.T) {
	s := New(19)
	for i := 0; i < 10000; i++ {
		if v := s.Pareto(2, 1.5); v < 2 {
			t.Fatalf("Pareto(2,1.5) = %v below xm", v)
		}
	}
}

func TestPoissonMean(t *testing.T) {
	s := New(23)
	for _, mean := range []float64{0.5, 4, 40, 800} {
		const n = 20000
		sum := 0
		for i := 0; i < n; i++ {
			sum += s.Poisson(mean)
		}
		got := float64(sum) / n
		if math.Abs(got-mean) > mean*0.05+0.05 {
			t.Fatalf("Poisson(%v) sample mean = %v", mean, got)
		}
	}
}

func TestPoissonZeroAndNegative(t *testing.T) {
	s := New(29)
	if s.Poisson(0) != 0 || s.Poisson(-1) != 0 {
		t.Fatal("Poisson of non-positive mean should be 0")
	}
}

func TestZipfSkew(t *testing.T) {
	s := New(31)
	z := NewZipf(s, 1000, 1.0)
	counts := make([]int, 1000)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Draw()]++
	}
	if counts[0] <= counts[10] || counts[10] <= counts[500] {
		t.Fatalf("Zipf not monotone-skewed: c0=%d c10=%d c500=%d",
			counts[0], counts[10], counts[500])
	}
	// Rank 0 should dominate: p(0) = 1/H_1000 ≈ 0.133.
	frac := float64(counts[0]) / n
	if frac < 0.10 || frac > 0.17 {
		t.Fatalf("Zipf rank-0 frequency = %v, want ≈0.133", frac)
	}
}

func TestZipfRange(t *testing.T) {
	s := New(37)
	z := NewZipf(s, 10, 2)
	for i := 0; i < 10000; i++ {
		v := z.Draw()
		if v < 0 || v >= 10 {
			t.Fatalf("Zipf draw %d out of range", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(41)
	p := s.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm produced invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

// Property: Uint64n always lands inside its bound.
func TestUint64nBoundProperty(t *testing.T) {
	s := New(43)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		return s.Uint64n(n) < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: Bool(0) never true, Bool(1) always true.
func TestBoolExtremesProperty(t *testing.T) {
	s := New(47)
	for i := 0; i < 1000; i++ {
		if s.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !s.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}
