package netsim

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// This file models network partitions on top of the WAN delay model: a
// registry of directed links that are currently cut. The paper's deployment
// spans control plane, origins, edges, and viewers across providers
// (§4.1); the links between those roles can fail independently — and
// asymmetrically, since routing problems routinely break one direction
// while the reverse path still carries traffic. Components consult the
// registry at their network boundaries (HTTP transports, heartbeat loops),
// so a cut link fails fast and deterministically instead of hanging on a
// real socket.

// ErrPartitioned is the terminal error a cut link produces.
var ErrPartitioned = errors.New("netsim: link partitioned")

// Link is one directed edge in the partition graph, named by role or node
// ("viewer"→"control", "edge:sfo"→"origin:nyc").
type Link struct {
	From, To string
}

// Partitions tracks which directed links are cut. The zero value and the
// nil pointer both mean "nothing is cut", so components can hold an
// optional *Partitions and skip the feature entirely when unwired.
type Partitions struct {
	mu  sync.RWMutex
	cut map[Link]bool
}

// NewPartitions returns an empty registry.
func NewPartitions() *Partitions {
	return &Partitions{cut: make(map[Link]bool)}
}

// Cut severs the directed link from→to. Idempotent.
func (p *Partitions) Cut(from, to string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cut == nil {
		p.cut = make(map[Link]bool)
	}
	p.cut[Link{From: from, To: to}] = true
}

// CutBoth severs both directions between a and b — the symmetric partition.
func (p *Partitions) CutBoth(a, b string) {
	p.Cut(a, b)
	p.Cut(b, a)
}

// Heal restores the directed link from→to. Idempotent.
func (p *Partitions) Heal(from, to string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.cut, Link{From: from, To: to})
}

// HealBoth restores both directions between a and b.
func (p *Partitions) HealBoth(a, b string) {
	p.Heal(a, b)
	p.Heal(b, a)
}

// HealAll restores every link.
func (p *Partitions) HealAll() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.cut = make(map[Link]bool)
}

// IsCut reports whether the directed link from→to is severed. Nil-safe: a
// nil registry never cuts anything.
func (p *Partitions) IsCut(from, to string) bool {
	if p == nil {
		return false
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.cut[Link{From: from, To: to}]
}

// Check returns ErrPartitioned (wrapped with the link names) when from→to
// is cut, nil otherwise. Nil-safe like IsCut.
func (p *Partitions) Check(from, to string) error {
	if p.IsCut(from, to) {
		return fmt.Errorf("%w: %s -> %s", ErrPartitioned, from, to)
	}
	return nil
}

// Links returns the currently cut links, sorted for deterministic output.
func (p *Partitions) Links() []Link {
	if p == nil {
		return nil
	}
	p.mu.RLock()
	out := make([]Link, 0, len(p.cut))
	for l := range p.cut {
		out = append(out, l)
	}
	p.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}
