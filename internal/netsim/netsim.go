// Package netsim models wide-area network latency for the reproduction. The
// paper measured a planet-scale deployment; we replace the physical WAN with
// a distance-based delay model: great-circle propagation at fiber speed with
// route inflation, lognormal queueing jitter, bandwidth-dependent
// serialization, and last-mile access profiles (§4.3's "stable WiFi" setup
// and its degraded variants).
//
// All randomness comes from an explicit rng.Source, so delays are
// reproducible under a seed in virtual-time experiments. In real-socket mode
// the same model produces the sleep durations injected on loopback.
package netsim

import (
	"time"

	"repro/internal/geo"
	"repro/internal/rng"
)

// Params configures the WAN model. NewModel applies defaults for zero fields.
type Params struct {
	// FiberKmPerMs is signal speed in fiber (~200 km/ms = 2/3 c).
	FiberKmPerMs float64
	// RouteInflation scales great-circle distance to realistic routed
	// path length (typically 1.5–2.0 on the public Internet).
	RouteInflation float64
	// JitterSigma is the sigma of the lognormal multiplicative jitter on
	// one-way delay.
	JitterSigma float64
	// ProcessingDelay is fixed per-hop server processing time.
	ProcessingDelay time.Duration
	// BackboneBytesPerSec is the inter-datacenter transfer bandwidth.
	BackboneBytesPerSec float64
}

// DefaultParams returns the calibrated model used by the experiments.
func DefaultParams() Params {
	return Params{
		FiberKmPerMs:        200,
		RouteInflation:      1.7,
		JitterSigma:         0.25,
		ProcessingDelay:     2 * time.Millisecond,
		BackboneBytesPerSec: 50e6, // 400 Mbit/s effective DC-to-DC
	}
}

// Model produces WAN delays. Not safe for concurrent use; Split the
// underlying source per goroutine.
type Model struct {
	p   Params
	src *rng.Source
}

// NewModel builds a Model, filling zero Params fields with defaults.
func NewModel(p Params, src *rng.Source) *Model {
	d := DefaultParams()
	if p.FiberKmPerMs == 0 {
		p.FiberKmPerMs = d.FiberKmPerMs
	}
	if p.RouteInflation == 0 {
		p.RouteInflation = d.RouteInflation
	}
	if p.JitterSigma == 0 {
		p.JitterSigma = d.JitterSigma
	}
	if p.ProcessingDelay == 0 {
		p.ProcessingDelay = d.ProcessingDelay
	}
	if p.BackboneBytesPerSec == 0 {
		p.BackboneBytesPerSec = d.BackboneBytesPerSec
	}
	return &Model{p: p, src: src}
}

// Propagation returns the deterministic one-way propagation delay between
// two locations (no jitter): routed distance over fiber speed plus
// processing.
func (m *Model) Propagation(a, b geo.Location) time.Duration {
	km := geo.DistanceKm(a, b) * m.p.RouteInflation
	ms := km / m.p.FiberKmPerMs
	return time.Duration(ms*float64(time.Millisecond)) + m.p.ProcessingDelay
}

// OneWay returns a jittered one-way delay between two locations.
func (m *Model) OneWay(a, b geo.Location) time.Duration {
	base := m.Propagation(a, b)
	mult := m.src.LogNormal(0, m.p.JitterSigma)
	return time.Duration(float64(base) * mult)
}

// RTT returns a jittered round-trip time.
func (m *Model) RTT(a, b geo.Location) time.Duration {
	return m.OneWay(a, b) + m.OneWay(b, a)
}

// Transfer returns the time to move size bytes from a to b over the
// backbone: one jittered one-way delay plus serialization at backbone
// bandwidth. Callers add handshake RTTs explicitly where protocols need
// them.
func (m *Model) Transfer(a, b geo.Location, size int) time.Duration {
	ser := time.Duration(float64(size) / m.p.BackboneBytesPerSec * float64(time.Second))
	return m.OneWay(a, b) + ser
}

// AccessProfile models the viewer or broadcaster last-mile link (§4.3 used
// stable WiFi; we also provide LTE and congested profiles for robustness
// experiments).
type AccessProfile struct {
	Name string
	// Base is the median one-way last-mile latency.
	Base time.Duration
	// JitterSigma is lognormal sigma on the base.
	JitterSigma float64
	// LossBurstProb is the chance a given packet hits a delay burst
	// (retransmission / deep queue), adding BurstPenalty.
	LossBurstProb float64
	BurstPenalty  time.Duration
	// BytesPerSec is last-mile bandwidth.
	BytesPerSec float64
}

// The canonical access profiles.
var (
	WiFi = AccessProfile{
		Name: "wifi", Base: 8 * time.Millisecond, JitterSigma: 0.3,
		LossBurstProb: 0.002, BurstPenalty: 80 * time.Millisecond,
		BytesPerSec: 4e6,
	}
	LTE = AccessProfile{
		Name: "lte", Base: 45 * time.Millisecond, JitterSigma: 0.45,
		LossBurstProb: 0.01, BurstPenalty: 200 * time.Millisecond,
		BytesPerSec: 1.5e6,
	}
	Congested = AccessProfile{
		Name: "congested", Base: 90 * time.Millisecond, JitterSigma: 0.7,
		LossBurstProb: 0.05, BurstPenalty: 600 * time.Millisecond,
		BytesPerSec: 400e3,
	}
)

// LastMile returns a jittered last-mile delay for a payload of size bytes
// under profile p.
func (m *Model) LastMile(p AccessProfile, size int) time.Duration {
	d := time.Duration(float64(p.Base) * m.src.LogNormal(0, p.JitterSigma))
	if p.BytesPerSec > 0 {
		d += time.Duration(float64(size) / p.BytesPerSec * float64(time.Second))
	}
	if m.src.Bool(p.LossBurstProb) {
		d += time.Duration(float64(p.BurstPenalty) * m.src.LogNormal(0, 0.3))
	}
	return d
}

// UploadPattern models broadcaster frame-release behaviour. The paper found
// ~10% of broadcasts suffer bursty uploading that produces >5 s buffering
// tails (Fig. 16b); Bursty reproduces that by holding frames and releasing
// them in clumps.
type UploadPattern struct {
	// BurstProb is the chance a broadcast is a bursty uploader.
	BurstProb float64
	// BurstHold is the mean time a bursty uploader accumulates frames
	// before flushing them at once.
	BurstHold time.Duration
}

// DefaultUploadPattern matches the Fig. 16 tail: ~10% bursty broadcasters.
func DefaultUploadPattern() UploadPattern {
	return UploadPattern{BurstProb: 0.10, BurstHold: 3 * time.Second}
}

// IsBursty draws whether a broadcast follows the bursty pattern.
func (m *Model) IsBursty(p UploadPattern) bool { return m.src.Bool(p.BurstProb) }

// BurstHold draws the accumulate-then-flush interval for a bursty uploader.
func (m *Model) BurstHold(p UploadPattern) time.Duration {
	return time.Duration(m.src.Exp(float64(p.BurstHold)))
}
