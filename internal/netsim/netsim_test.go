package netsim

import (
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/rng"
	"repro/internal/stats"

	"repro/internal/testutil"
)

func locs() (geo.Location, geo.Location, geo.Location) {
	ashburn := geo.Location{City: "Ashburn", Lat: 39.04, Lon: -77.49}
	sanjose := geo.Location{City: "San Jose", Lat: 37.34, Lon: -121.89}
	sydney := geo.Location{City: "Sydney", Lat: -33.87, Lon: 151.21}
	return ashburn, sanjose, sydney
}

func TestPropagationScalesWithDistance(t *testing.T) {
	testutil.CheckGoroutines(t)
	m := NewModel(Params{}, rng.New(1))
	a, sj, syd := locs()
	near := m.Propagation(a, sj)
	far := m.Propagation(a, syd)
	if near >= far {
		t.Fatalf("near (%v) >= far (%v)", near, far)
	}
	// Ashburn–San Jose ≈ 3800 km routed → ≈19 ms + processing.
	if near < 10*time.Millisecond || near > 60*time.Millisecond {
		t.Fatalf("transcontinental propagation = %v, implausible", near)
	}
	// Ashburn–Sydney ≈ 15700 km great-circle → >100 ms one-way.
	if far < 100*time.Millisecond {
		t.Fatalf("transpacific propagation = %v, implausible", far)
	}
}

func TestPropagationSelf(t *testing.T) {
	testutil.CheckGoroutines(t)
	m := NewModel(Params{}, rng.New(1))
	a, _, _ := locs()
	d := m.Propagation(a, a)
	if d != DefaultParams().ProcessingDelay {
		t.Fatalf("self propagation = %v, want processing only", d)
	}
}

func TestOneWayJitterDistribution(t *testing.T) {
	testutil.CheckGoroutines(t)
	m := NewModel(Params{}, rng.New(2))
	a, sj, _ := locs()
	base := m.Propagation(a, sj)
	var xs []float64
	for i := 0; i < 5000; i++ {
		xs = append(xs, float64(m.OneWay(a, sj)))
	}
	s := stats.Summarize(xs)
	// Lognormal(0, 0.25) has median 1, so the sample median should sit
	// near the deterministic base.
	if ratio := s.Median / float64(base); ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("median/base = %v, want ≈1", ratio)
	}
	if s.Min <= 0 {
		t.Fatal("one-way delay must be positive")
	}
	if s.StdDev == 0 {
		t.Fatal("jitter produced no variance")
	}
}

func TestRTTGreaterThanOneWay(t *testing.T) {
	testutil.CheckGoroutines(t)
	m := NewModel(Params{}, rng.New(3))
	a, _, syd := locs()
	for i := 0; i < 100; i++ {
		if m.RTT(a, syd) <= m.Propagation(a, syd) {
			t.Fatal("RTT fell below one-way propagation")
		}
	}
}

func TestTransferGrowsWithSize(t *testing.T) {
	testutil.CheckGoroutines(t)
	m := NewModel(Params{JitterSigma: 1e-9}, rng.New(4))
	a, sj, _ := locs()
	small := m.Transfer(a, sj, 1_000)
	big := m.Transfer(a, sj, 50_000_000)
	if big <= small {
		t.Fatalf("transfer(50MB)=%v <= transfer(1KB)=%v", big, small)
	}
	// 50 MB at 50 MB/s ≈ 1 s serialization.
	if big-small < 900*time.Millisecond {
		t.Fatalf("serialization delta = %v, want ≈1s", big-small)
	}
}

func TestLastMileProfilesOrdered(t *testing.T) {
	testutil.CheckGoroutines(t)
	m := NewModel(Params{}, rng.New(5))
	mean := func(p AccessProfile) float64 {
		var sum float64
		for i := 0; i < 3000; i++ {
			sum += float64(m.LastMile(p, 1400))
		}
		return sum / 3000
	}
	wifi, lte, cong := mean(WiFi), mean(LTE), mean(Congested)
	if !(wifi < lte && lte < cong) {
		t.Fatalf("profile ordering broken: wifi=%v lte=%v congested=%v", wifi, lte, cong)
	}
}

func TestLastMilePositive(t *testing.T) {
	testutil.CheckGoroutines(t)
	m := NewModel(Params{}, rng.New(6))
	for i := 0; i < 1000; i++ {
		if m.LastMile(Congested, 100000) <= 0 {
			t.Fatal("non-positive last-mile delay")
		}
	}
}

func TestBurstyFraction(t *testing.T) {
	testutil.CheckGoroutines(t)
	m := NewModel(Params{}, rng.New(7))
	p := DefaultUploadPattern()
	n := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		if m.IsBursty(p) {
			n++
		}
	}
	frac := float64(n) / trials
	if frac < 0.08 || frac > 0.12 {
		t.Fatalf("bursty fraction = %v, want ≈0.10 (paper Fig. 16b)", frac)
	}
}

func TestBurstHoldMean(t *testing.T) {
	testutil.CheckGoroutines(t)
	m := NewModel(Params{}, rng.New(8))
	p := DefaultUploadPattern()
	var sum time.Duration
	const trials = 20000
	for i := 0; i < trials; i++ {
		sum += m.BurstHold(p)
	}
	mean := sum / trials
	if mean < 2700*time.Millisecond || mean > 3300*time.Millisecond {
		t.Fatalf("burst hold mean = %v, want ≈3s", mean)
	}
}

func TestModelDeterminism(t *testing.T) {
	testutil.CheckGoroutines(t)
	a, _, syd := locs()
	m1 := NewModel(Params{}, rng.New(9))
	m2 := NewModel(Params{}, rng.New(9))
	for i := 0; i < 100; i++ {
		if m1.OneWay(a, syd) != m2.OneWay(a, syd) {
			t.Fatal("identical seeds produced different delays")
		}
	}
}

func TestDefaultsFilled(t *testing.T) {
	testutil.CheckGoroutines(t)
	m := NewModel(Params{FiberKmPerMs: 100}, rng.New(10))
	if m.p.FiberKmPerMs != 100 {
		t.Fatal("explicit param overwritten")
	}
	if m.p.RouteInflation == 0 || m.p.JitterSigma == 0 || m.p.BackboneBytesPerSec == 0 {
		t.Fatal("zero params not defaulted")
	}
}
