package netsim

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/geo"
	"repro/internal/rng"

	"repro/internal/testutil"
)

func normLoc(lat, lon float64) geo.Location {
	if math.IsNaN(lat) || math.IsInf(lat, 0) {
		lat = 0
	}
	if math.IsNaN(lon) || math.IsInf(lon, 0) {
		lon = 0
	}
	return geo.Location{Lat: math.Mod(lat, 90), Lon: math.Mod(lon, 180)}
}

// Property: every delay the model produces is positive, and the
// deterministic propagation component is symmetric and triangle-bounded by
// the direct great-circle path (route inflation applies uniformly).
func TestModelDelayProperties(t *testing.T) {
	testutil.CheckGoroutines(t)
	m := NewModel(Params{}, rng.New(99))
	f := func(lat1, lon1, lat2, lon2 float64, size uint16) bool {
		a, b := normLoc(lat1, lon1), normLoc(lat2, lon2)
		prop := m.Propagation(a, b)
		if prop <= 0 {
			return false
		}
		if m.Propagation(b, a) != prop {
			return false // deterministic part must be symmetric
		}
		if m.OneWay(a, b) <= 0 || m.RTT(a, b) <= 0 {
			return false
		}
		return m.Transfer(a, b, int(size)) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: last-mile delay is positive for every profile and grows with
// payload size in expectation.
func TestLastMileProperties(t *testing.T) {
	testutil.CheckGoroutines(t)
	m := NewModel(Params{}, rng.New(100))
	for _, p := range []AccessProfile{WiFi, LTE, Congested} {
		var small, large float64
		const n = 400
		for i := 0; i < n; i++ {
			s := m.LastMile(p, 1000)
			l := m.LastMile(p, 1_000_000)
			if s <= 0 || l <= 0 {
				t.Fatalf("%s: non-positive delay", p.Name)
			}
			small += s.Seconds()
			large += l.Seconds()
		}
		if large <= small {
			t.Fatalf("%s: 1MB mean (%v) not above 1KB mean (%v)", p.Name, large/n, small/n)
		}
	}
}
