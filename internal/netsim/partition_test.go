package netsim

import (
	"errors"
	"sync"
	"testing"
)

func TestPartitionsDirectedCuts(t *testing.T) {
	p := NewPartitions()
	if p.IsCut("a", "b") {
		t.Fatal("fresh registry cut a->b")
	}
	p.Cut("a", "b")
	if !p.IsCut("a", "b") {
		t.Fatal("a->b not cut after Cut")
	}
	if p.IsCut("b", "a") {
		t.Fatal("asymmetric cut severed the reverse direction")
	}
	if err := p.Check("a", "b"); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("Check = %v, want ErrPartitioned", err)
	}
	if err := p.Check("b", "a"); err != nil {
		t.Fatalf("reverse Check = %v, want nil", err)
	}
	p.Heal("a", "b")
	if p.IsCut("a", "b") {
		t.Fatal("a->b still cut after Heal")
	}
}

func TestPartitionsSymmetricAndHealAll(t *testing.T) {
	p := NewPartitions()
	p.CutBoth("control", "edge")
	p.Cut("viewer", "control")
	if !p.IsCut("control", "edge") || !p.IsCut("edge", "control") {
		t.Fatal("CutBoth missed a direction")
	}
	links := p.Links()
	if len(links) != 3 {
		t.Fatalf("Links = %v, want 3 cuts", links)
	}
	// Sorted: deterministic across runs.
	want := []Link{
		{From: "control", To: "edge"},
		{From: "edge", To: "control"},
		{From: "viewer", To: "control"},
	}
	for i, l := range links {
		if l != want[i] {
			t.Fatalf("Links[%d] = %v, want %v", i, l, want[i])
		}
	}
	p.HealBoth("control", "edge")
	if p.IsCut("control", "edge") || p.IsCut("edge", "control") {
		t.Fatal("HealBoth missed a direction")
	}
	p.HealAll()
	if len(p.Links()) != 0 {
		t.Fatalf("Links after HealAll = %v", p.Links())
	}
}

func TestPartitionsNilAndZeroValueSafe(t *testing.T) {
	var nilP *Partitions
	if nilP.IsCut("a", "b") {
		t.Fatal("nil registry cut a link")
	}
	if err := nilP.Check("a", "b"); err != nil {
		t.Fatalf("nil Check = %v", err)
	}
	if nilP.Links() != nil {
		t.Fatal("nil Links != nil")
	}
	var zero Partitions
	if zero.IsCut("a", "b") {
		t.Fatal("zero-value registry cut a link")
	}
	zero.Cut("a", "b")
	if !zero.IsCut("a", "b") {
		t.Fatal("zero-value registry ignored Cut")
	}
}

func TestPartitionsConcurrentAccess(t *testing.T) {
	p := NewPartitions()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				switch j % 4 {
				case 0:
					p.CutBoth("control", "edge")
				case 1:
					p.IsCut("control", "edge")
				case 2:
					p.HealBoth("control", "edge")
				case 3:
					p.Links()
				}
			}
		}(i)
	}
	wg.Wait()
}
