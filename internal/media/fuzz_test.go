package media

import (
	"bytes"
	"testing"
	"time"
)

// Fuzz targets run their seed corpus under `go test` and can be extended
// with `go test -fuzz=FuzzUnmarshalFrame ./internal/media`.

func FuzzUnmarshalFrame(f *testing.F) {
	good := MarshalFrame(nil, &Frame{Seq: 1, CapturedAt: time.Unix(5, 0), Keyframe: true, Payload: []byte{1, 2, 3}})
	signed := MarshalFrame(nil, &Frame{Seq: 2, Payload: []byte{9}, Sig: bytes.Repeat([]byte{7}, FrameSigSize)})
	f.Add(good)
	f.Add(signed)
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, n, err := UnmarshalFrame(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d", n, len(data))
		}
		// Whatever parses must re-marshal to the consumed bytes.
		out := MarshalFrame(nil, &fr)
		if !bytes.Equal(out, data[:n]) {
			t.Fatalf("re-marshal mismatch: %x vs %x", out, data[:n])
		}
	})
}

func FuzzUnmarshalChunk(f *testing.F) {
	c := &Chunk{Seq: 3, Frames: []Frame{
		{Seq: 0, Payload: []byte{1}},
		{Seq: 1, Payload: []byte{2, 3}, Sig: bytes.Repeat([]byte{1}, FrameSigSize)},
	}}
	f.Add(MarshalChunk(c))
	f.Add([]byte{})
	f.Add(make([]byte, 12))
	f.Fuzz(func(t *testing.T, data []byte) {
		chunk, err := UnmarshalChunk(data)
		if err != nil {
			return
		}
		// Re-marshal must be accepted again with identical structure.
		again, err := UnmarshalChunk(MarshalChunk(chunk))
		if err != nil {
			t.Fatalf("re-marshal rejected: %v", err)
		}
		if again.Seq != chunk.Seq || len(again.Frames) != len(chunk.Frames) {
			t.Fatal("re-marshal structure mismatch")
		}
	})
}

func FuzzParseChunkList(f *testing.F) {
	cl := &ChunkList{BroadcastID: "b", Version: 3}
	cl.Append(ChunkRef{Seq: 1, Duration: 3 * time.Second, URI: "u"})
	f.Add(cl.Marshal())
	f.Add([]byte("#EXTM3U\n"))
	f.Add([]byte("#EXTM3U\n#EXTINF:nope\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		parsed, err := ParseChunkList(data)
		if err != nil {
			return
		}
		// Parsed playlists must survive a marshal/parse roundtrip.
		again, err := ParseChunkList(parsed.Marshal())
		if err != nil {
			t.Fatalf("roundtrip rejected: %v", err)
		}
		if again.Version != parsed.Version || len(again.Chunks) != len(parsed.Chunks) {
			t.Fatal("roundtrip structure mismatch")
		}
	})
}
