package media

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ChunkRef is one entry in a chunk list: enough for a viewer to decide
// whether the chunk is new and to fetch it.
type ChunkRef struct {
	Seq      uint64
	Duration time.Duration
	URI      string
}

// ChunkList is the HLS playlist analog: the rolling window of recent chunks
// a viewer polls for (§4.1). Version increments on every update so edges can
// detect staleness.
type ChunkList struct {
	BroadcastID string
	Version     uint64
	// Ended marks the broadcast as finished (HLS endlist).
	Ended  bool
	Chunks []ChunkRef
}

// WindowSize is how many trailing chunks a list advertises, as live HLS
// playlists do.
const WindowSize = 6

// Append adds a chunk reference, trimming to WindowSize, and bumps Version.
func (cl *ChunkList) Append(ref ChunkRef) {
	cl.Chunks = append(cl.Chunks, ref)
	if len(cl.Chunks) > WindowSize {
		cl.Chunks = cl.Chunks[len(cl.Chunks)-WindowSize:]
	}
	cl.Version++
}

// Latest returns the newest chunk reference and whether one exists.
func (cl *ChunkList) Latest() (ChunkRef, bool) {
	if len(cl.Chunks) == 0 {
		return ChunkRef{}, false
	}
	return cl.Chunks[len(cl.Chunks)-1], true
}

// NewerThan returns the refs with Seq strictly greater than seq.
func (cl *ChunkList) NewerThan(seq uint64) []ChunkRef {
	var out []ChunkRef
	for _, r := range cl.Chunks {
		if r.Seq > seq {
			out = append(out, r)
		}
	}
	return out
}

// Clone returns a deep copy safe to hand across goroutines.
func (cl *ChunkList) Clone() *ChunkList {
	cp := *cl
	cp.Chunks = append([]ChunkRef(nil), cl.Chunks...)
	return &cp
}

// Marshal renders the list in an m3u8-like text format:
//
//	#EXTM3U
//	#X-BROADCAST:<id>
//	#X-VERSION:<n>
//	#EXTINF:<seconds>,<seq>
//	<uri>
//	...
//	#EXT-X-ENDLIST          (only when ended)
func (cl *ChunkList) Marshal() []byte {
	var b strings.Builder
	b.WriteString("#EXTM3U\n")
	fmt.Fprintf(&b, "#X-BROADCAST:%s\n", cl.BroadcastID)
	fmt.Fprintf(&b, "#X-VERSION:%d\n", cl.Version)
	for _, c := range cl.Chunks {
		fmt.Fprintf(&b, "#EXTINF:%.3f,%d\n%s\n", c.Duration.Seconds(), c.Seq, c.URI)
	}
	if cl.Ended {
		b.WriteString("#EXT-X-ENDLIST\n")
	}
	return []byte(b.String())
}

// ParseChunkList parses the Marshal format.
func ParseChunkList(data []byte) (*ChunkList, error) {
	lines := strings.Split(string(data), "\n")
	if len(lines) == 0 || strings.TrimSpace(lines[0]) != "#EXTM3U" {
		return nil, fmt.Errorf("media: missing #EXTM3U header")
	}
	cl := &ChunkList{}
	var pending *ChunkRef
	for _, raw := range lines[1:] {
		line := strings.TrimSpace(raw)
		switch {
		case line == "":
		case strings.HasPrefix(line, "#X-BROADCAST:"):
			cl.BroadcastID = strings.TrimPrefix(line, "#X-BROADCAST:")
		case strings.HasPrefix(line, "#X-VERSION:"):
			v, err := strconv.ParseUint(strings.TrimPrefix(line, "#X-VERSION:"), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("media: bad version: %w", err)
			}
			cl.Version = v
		case strings.HasPrefix(line, "#EXTINF:"):
			body := strings.TrimPrefix(line, "#EXTINF:")
			parts := strings.SplitN(body, ",", 2)
			if len(parts) != 2 {
				return nil, fmt.Errorf("media: bad EXTINF %q", line)
			}
			secs, err := strconv.ParseFloat(parts[0], 64)
			if err != nil {
				return nil, fmt.Errorf("media: bad EXTINF duration: %w", err)
			}
			seq, err := strconv.ParseUint(parts[1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("media: bad EXTINF seq: %w", err)
			}
			pending = &ChunkRef{Seq: seq, Duration: time.Duration(secs * float64(time.Second))}
		case line == "#EXT-X-ENDLIST":
			cl.Ended = true
		case strings.HasPrefix(line, "#"):
			// Unknown tag: ignore for forward compatibility.
		default:
			if pending == nil {
				return nil, fmt.Errorf("media: URI %q without EXTINF", line)
			}
			pending.URI = line
			cl.Chunks = append(cl.Chunks, *pending)
			pending = nil
		}
	}
	if pending != nil {
		return nil, fmt.Errorf("media: EXTINF without URI")
	}
	return cl, nil
}
