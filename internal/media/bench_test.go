package media

import (
	"testing"
	"time"

	"repro/internal/rng"
)

func benchFrame() Frame {
	enc := NewEncoder(EncoderConfig{}, rng.New(1))
	return enc.Next(time.Unix(0, 0))
}

func BenchmarkMarshalFrame(b *testing.B) {
	f := benchFrame()
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = MarshalFrame(buf[:0], &f)
	}
	_ = buf
}

func BenchmarkUnmarshalFrame(b *testing.B) {
	f := benchFrame()
	data := MarshalFrame(nil, &f)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := UnmarshalFrame(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChunkerAdd(b *testing.B) {
	enc := NewEncoder(EncoderConfig{}, rng.New(2))
	frames := make([]Frame, 75)
	for i := range frames {
		frames[i] = enc.Next(time.Unix(0, int64(i)*int64(FrameDuration)))
	}
	b.ResetTimer()
	ck := NewChunker(0)
	for i := 0; i < b.N; i++ {
		ck.Add(frames[i%75])
	}
}

func BenchmarkMarshalChunk(b *testing.B) {
	enc := NewEncoder(EncoderConfig{}, rng.New(3))
	ck := NewChunker(0)
	var chunk *Chunk
	for i := 0; chunk == nil; i++ {
		chunk = ck.Add(enc.Next(time.Unix(0, int64(i))))
	}
	b.SetBytes(int64(chunk.Size()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MarshalChunk(chunk)
	}
}

func BenchmarkParseChunkList(b *testing.B) {
	cl := &ChunkList{BroadcastID: "bench"}
	for i := 0; i < WindowSize; i++ {
		cl.Append(ChunkRef{Seq: uint64(i), Duration: 3 * time.Second, URI: "/hls/bench/chunk/0"})
	}
	data := cl.Marshal()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseChunkList(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncoderNext(b *testing.B) {
	enc := NewEncoder(EncoderConfig{}, rng.New(4))
	now := time.Unix(0, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		enc.Next(now)
	}
}
