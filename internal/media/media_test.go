package media

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/rng"
)

func TestFramesPerChunk(t *testing.T) {
	if n := FramesPerChunk(3 * time.Second); n != 75 {
		t.Fatalf("3s chunk = %d frames, want 75 (paper §5.2)", n)
	}
	if n := FramesPerChunk(0); n != 1 {
		t.Fatalf("zero duration should clamp to 1, got %d", n)
	}
}

func TestChunkerFillsAt75(t *testing.T) {
	ck := NewChunker(0)
	base := time.Unix(1000, 0)
	var chunks []*Chunk
	for i := 0; i < 200; i++ {
		f := Frame{Seq: uint64(i), CapturedAt: base.Add(time.Duration(i) * FrameDuration)}
		if c := ck.Add(f); c != nil {
			chunks = append(chunks, c)
		}
	}
	if len(chunks) != 2 {
		t.Fatalf("got %d chunks from 200 frames, want 2", len(chunks))
	}
	if chunks[0].Seq != 0 || chunks[1].Seq != 1 {
		t.Fatalf("chunk seqs = %d, %d", chunks[0].Seq, chunks[1].Seq)
	}
	if len(chunks[0].Frames) != 75 {
		t.Fatalf("chunk has %d frames", len(chunks[0].Frames))
	}
	if d := chunks[0].Duration(); d != 3*time.Second {
		t.Fatalf("chunk duration = %v", d)
	}
	if got := chunks[0].FirstCapturedAt(); !got.Equal(base) {
		t.Fatalf("first capture = %v", got)
	}
	rem := ck.Flush()
	if rem == nil || len(rem.Frames) != 50 || rem.Seq != 2 {
		t.Fatalf("flush = %+v", rem)
	}
	if ck.Flush() != nil {
		t.Fatal("double flush returned a chunk")
	}
}

func TestChunkerCustomDuration(t *testing.T) {
	ck := NewChunker(1 * time.Second)
	if ck.FramesPerChunkCount() != 25 {
		t.Fatalf("1s chunker = %d frames", ck.FramesPerChunkCount())
	}
}

func TestEncoderBitrate(t *testing.T) {
	e := NewEncoder(EncoderConfig{BitsPerSec: 500_000}, rng.New(1))
	var total int
	const n = 750 // 30 s of video
	now := time.Unix(0, 0)
	keyframes := 0
	for i := 0; i < n; i++ {
		f := e.Next(now.Add(time.Duration(i) * FrameDuration))
		if f.Seq != uint64(i) {
			t.Fatalf("seq = %d, want %d", f.Seq, i)
		}
		total += len(f.Payload)
		if f.Keyframe {
			keyframes++
		}
	}
	bps := float64(total) * 8 / 30
	if bps < 350_000 || bps > 700_000 {
		t.Fatalf("effective bitrate = %v, want ≈500k", bps)
	}
	if keyframes != 10 {
		t.Fatalf("keyframes = %d in 750 frames, want 10", keyframes)
	}
}

func TestEncoderKeyframesLarger(t *testing.T) {
	e := NewEncoder(EncoderConfig{}, rng.New(2))
	now := time.Unix(0, 0)
	var keySum, deltaSum, keyN, deltaN float64
	for i := 0; i < 1500; i++ {
		f := e.Next(now)
		if f.Keyframe {
			keySum += float64(len(f.Payload))
			keyN++
		} else {
			deltaSum += float64(len(f.Payload))
			deltaN++
		}
	}
	if keySum/keyN < 3*(deltaSum/deltaN) {
		t.Fatalf("keyframes not materially larger: key=%v delta=%v", keySum/keyN, deltaSum/deltaN)
	}
}

func TestFrameRoundtrip(t *testing.T) {
	f := Frame{
		Seq:        42,
		CapturedAt: time.Unix(12345, 67890).UTC(),
		Keyframe:   true,
		Payload:    []byte{1, 2, 3, 4, 5},
	}
	buf := MarshalFrame(nil, &f)
	got, used, err := UnmarshalFrame(buf)
	if err != nil {
		t.Fatal(err)
	}
	if used != len(buf) {
		t.Fatalf("used %d of %d bytes", used, len(buf))
	}
	if got.Seq != f.Seq || !got.CapturedAt.Equal(f.CapturedAt) ||
		got.Keyframe != f.Keyframe || !bytes.Equal(got.Payload, f.Payload) {
		t.Fatalf("roundtrip mismatch: %+v vs %+v", got, f)
	}
}

func TestFrameStreamRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	e := NewEncoder(EncoderConfig{}, rng.New(3))
	now := time.Unix(500, 0).UTC()
	var sent []Frame
	for i := 0; i < 10; i++ {
		f := e.Next(now.Add(time.Duration(i) * FrameDuration))
		sent = append(sent, f)
		if err := WriteFrame(&buf, &f); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Seq != sent[i].Seq || !bytes.Equal(got.Payload, sent[i].Payload) {
			t.Fatalf("frame %d mismatch", i)
		}
	}
}

func TestUnmarshalFrameErrors(t *testing.T) {
	if _, _, err := UnmarshalFrame([]byte{1, 2, 3}); err == nil {
		t.Fatal("short header accepted")
	}
	f := Frame{Payload: []byte{1}}
	buf := MarshalFrame(nil, &f)
	if _, _, err := UnmarshalFrame(buf[:len(buf)-1]); err == nil {
		t.Fatal("truncated payload accepted")
	}
	// Oversized length prefix must be rejected, not allocated.
	bad := MarshalFrame(nil, &Frame{})
	bad[17], bad[18], bad[19], bad[20] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, _, err := UnmarshalFrame(bad); err != ErrFrameTooLarge {
		t.Fatalf("oversized frame error = %v", err)
	}
}

func TestChunkRoundtrip(t *testing.T) {
	e := NewEncoder(EncoderConfig{}, rng.New(4))
	ck := NewChunker(1 * time.Second)
	now := time.Unix(0, 0).UTC()
	var chunk *Chunk
	for i := 0; chunk == nil; i++ {
		chunk = ck.Add(e.Next(now.Add(time.Duration(i) * FrameDuration)))
	}
	data := MarshalChunk(chunk)
	got, err := UnmarshalChunk(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != chunk.Seq || len(got.Frames) != len(chunk.Frames) {
		t.Fatalf("chunk roundtrip: %d frames vs %d", len(got.Frames), len(chunk.Frames))
	}
	for i := range got.Frames {
		if !bytes.Equal(got.Frames[i].Payload, chunk.Frames[i].Payload) {
			t.Fatalf("frame %d payload mismatch", i)
		}
	}
	if got.Size() != chunk.Size() {
		t.Fatal("size mismatch after roundtrip")
	}
}

func TestUnmarshalChunkErrors(t *testing.T) {
	if _, err := UnmarshalChunk([]byte{1}); err == nil {
		t.Fatal("short chunk accepted")
	}
	bad := make([]byte, 12)
	bad[8], bad[9], bad[10], bad[11] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, err := UnmarshalChunk(bad); err == nil {
		t.Fatal("implausible frame count accepted")
	}
}

// Property: frame marshal/unmarshal is a lossless roundtrip.
func TestFrameRoundtripProperty(t *testing.T) {
	f := func(seq uint64, nanos int64, key bool, payload []byte) bool {
		in := Frame{Seq: seq, CapturedAt: time.Unix(0, nanos).UTC(), Keyframe: key, Payload: payload}
		buf := MarshalFrame(nil, &in)
		out, used, err := UnmarshalFrame(buf)
		if err != nil || used != len(buf) {
			return false
		}
		return out.Seq == in.Seq && out.CapturedAt.Equal(in.CapturedAt) &&
			out.Keyframe == in.Keyframe && bytes.Equal(out.Payload, in.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
