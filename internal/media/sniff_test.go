package media

import (
	"testing"
	"time"
)

// TestSniffFrameAgreesWithUnmarshal checks the zero-copy validator accepts
// exactly what UnmarshalFrame accepts, and reports the same consumed length.
func TestSniffFrameAgreesWithUnmarshal(t *testing.T) {
	frames := []Frame{
		{Seq: 1, CapturedAt: time.Unix(3, 4), Payload: []byte("abc")},
		{Seq: 2, CapturedAt: time.Unix(5, 6), Keyframe: true, Payload: make([]byte, 1024)},
		{Seq: 3, CapturedAt: time.Unix(7, 8), Payload: []byte("signed"), Sig: make([]byte, FrameSigSize)},
	}
	for _, f := range frames {
		data := MarshalFrame(nil, &f)
		// Trailing garbage must not change the consumed length.
		data = append(data, 0xee, 0xee)
		n, err := SniffFrame(data)
		if err != nil {
			t.Fatalf("SniffFrame(seq %d): %v", f.Seq, err)
		}
		_, un, err := UnmarshalFrame(data)
		if err != nil {
			t.Fatalf("UnmarshalFrame(seq %d): %v", f.Seq, err)
		}
		if n != un {
			t.Fatalf("seq %d: SniffFrame consumed %d, UnmarshalFrame %d", f.Seq, n, un)
		}
	}
}

// TestSniffFrameRejects mirrors UnmarshalFrame's failure cases.
func TestSniffFrameRejects(t *testing.T) {
	good := MarshalFrame(nil, &Frame{Seq: 9, CapturedAt: time.Unix(1, 2), Payload: []byte("xyz")})

	if _, err := SniffFrame(good[:frameHeaderSize-1]); err == nil {
		t.Fatal("short header accepted")
	}
	if _, err := SniffFrame(good[:len(good)-1]); err == nil {
		t.Fatal("truncated payload accepted")
	}
	bad := append([]byte(nil), good...)
	bad[16] |= 0x80
	if _, err := SniffFrame(bad); err == nil {
		t.Fatal("unknown flags accepted")
	}
	huge := append([]byte(nil), good...)
	huge[17], huge[18], huge[19], huge[20] = 0xff, 0xff, 0xff, 0xff
	if _, err := SniffFrame(huge); err != ErrFrameTooLarge {
		t.Fatalf("oversize err = %v, want ErrFrameTooLarge", err)
	}
}

// TestSniffFrameAllocFree locks in the zero-allocation property the fan-out
// path depends on.
func TestSniffFrameAllocFree(t *testing.T) {
	data := MarshalFrame(nil, &Frame{Seq: 1, CapturedAt: time.Unix(0, 1), Payload: make([]byte, 2048)})
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := SniffFrame(data); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("SniffFrame allocs/op = %.1f, want 0", allocs)
	}
}
