package media

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestChunkListAppendWindow(t *testing.T) {
	cl := &ChunkList{BroadcastID: "b1"}
	for i := 0; i < 10; i++ {
		cl.Append(ChunkRef{Seq: uint64(i), Duration: 3 * time.Second, URI: "chunk"})
	}
	if len(cl.Chunks) != WindowSize {
		t.Fatalf("window = %d, want %d", len(cl.Chunks), WindowSize)
	}
	if cl.Chunks[0].Seq != 4 || cl.Chunks[len(cl.Chunks)-1].Seq != 9 {
		t.Fatalf("window contents wrong: %+v", cl.Chunks)
	}
	if cl.Version != 10 {
		t.Fatalf("version = %d, want 10", cl.Version)
	}
}

func TestChunkListLatest(t *testing.T) {
	cl := &ChunkList{}
	if _, ok := cl.Latest(); ok {
		t.Fatal("empty list reported a latest chunk")
	}
	cl.Append(ChunkRef{Seq: 7})
	ref, ok := cl.Latest()
	if !ok || ref.Seq != 7 {
		t.Fatalf("Latest = %+v, %v", ref, ok)
	}
}

func TestChunkListNewerThan(t *testing.T) {
	cl := &ChunkList{}
	for i := 0; i < 5; i++ {
		cl.Append(ChunkRef{Seq: uint64(i)})
	}
	newer := cl.NewerThan(2)
	if len(newer) != 2 || newer[0].Seq != 3 || newer[1].Seq != 4 {
		t.Fatalf("NewerThan(2) = %+v", newer)
	}
	if got := cl.NewerThan(100); len(got) != 0 {
		t.Fatalf("NewerThan(100) = %+v", got)
	}
}

func TestChunkListCloneIsDeep(t *testing.T) {
	cl := &ChunkList{BroadcastID: "b"}
	cl.Append(ChunkRef{Seq: 1})
	cp := cl.Clone()
	cl.Append(ChunkRef{Seq: 2})
	if len(cp.Chunks) != 1 {
		t.Fatal("clone shares backing storage with original")
	}
}

func TestChunkListMarshalRoundtrip(t *testing.T) {
	cl := &ChunkList{BroadcastID: "bcast-123", Version: 42, Ended: true}
	cl.Chunks = []ChunkRef{
		{Seq: 10, Duration: 3 * time.Second, URI: "/hls/bcast-123/chunk/10"},
		{Seq: 11, Duration: 2800 * time.Millisecond, URI: "/hls/bcast-123/chunk/11"},
	}
	got, err := ParseChunkList(cl.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.BroadcastID != cl.BroadcastID || got.Version != cl.Version || !got.Ended {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Chunks) != 2 {
		t.Fatalf("chunks = %d", len(got.Chunks))
	}
	for i := range got.Chunks {
		if got.Chunks[i].Seq != cl.Chunks[i].Seq ||
			got.Chunks[i].URI != cl.Chunks[i].URI ||
			got.Chunks[i].Duration != cl.Chunks[i].Duration {
			t.Fatalf("chunk %d mismatch: %+v vs %+v", i, got.Chunks[i], cl.Chunks[i])
		}
	}
}

func TestParseChunkListErrors(t *testing.T) {
	cases := []string{
		"",
		"not a playlist",
		"#EXTM3U\n#X-VERSION:abc\n",
		"#EXTM3U\n#EXTINF:bad\nuri\n",
		"#EXTM3U\n#EXTINF:1.0,notanum\nuri\n",
		"#EXTM3U\nuri-without-extinf\n",
		"#EXTM3U\n#EXTINF:1.0,5\n",
	}
	for _, in := range cases {
		if _, err := ParseChunkList([]byte(in)); err == nil {
			t.Fatalf("ParseChunkList(%q) accepted invalid input", in)
		}
	}
}

func TestParseChunkListIgnoresUnknownTags(t *testing.T) {
	in := "#EXTM3U\n#X-BROADCAST:b\n#EXT-X-FUTURE-TAG:yes\n#EXTINF:3.000,0\nuri\n"
	cl, err := ParseChunkList([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(cl.Chunks) != 1 {
		t.Fatalf("chunks = %d", len(cl.Chunks))
	}
}

// Property: any list built through Append survives a marshal/parse roundtrip.
func TestChunkListRoundtripProperty(t *testing.T) {
	f := func(seqs []uint16, ended bool) bool {
		cl := &ChunkList{BroadcastID: "prop", Ended: ended}
		for i, s := range seqs {
			cl.Append(ChunkRef{
				Seq:      uint64(s),
				Duration: time.Duration(i%5+1) * time.Second,
				URI:      "chunk-" + strings.Repeat("x", i%3+1),
			})
		}
		got, err := ParseChunkList(cl.Marshal())
		if err != nil {
			return false
		}
		if got.Version != cl.Version || got.Ended != cl.Ended || len(got.Chunks) != len(cl.Chunks) {
			return false
		}
		for i := range got.Chunks {
			if got.Chunks[i] != cl.Chunks[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
