// Package media models the video data plane of the reproduction: 40 ms
// frames carrying broadcaster-side capture timestamps in keyframe metadata
// (the paper reads timestamp ① / ⑤ from exactly this metadata, §4.3), the
// 3-second chunks HLS operates on, chunk lists, and a compact binary wire
// codec used by the RTMP-like protocol.
package media

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/rng"
)

// FrameDuration is the length of one video frame (§4.1: ≈40 ms, 25 fps).
const FrameDuration = 40 * time.Millisecond

// DefaultChunkDuration is the chunk length the paper observed for >85.9% of
// HLS broadcasts (§5.2): 3 s = 75 frames.
const DefaultChunkDuration = 3 * time.Second

// FramesPerChunk converts a chunk duration to a frame count.
func FramesPerChunk(chunk time.Duration) int {
	n := int(chunk / FrameDuration)
	if n < 1 {
		n = 1
	}
	return n
}

// Frame is one unit of the RTMP data path.
type Frame struct {
	// Seq is the frame sequence number within its broadcast, from 0.
	Seq uint64
	// CapturedAt is the broadcaster-device capture timestamp. For
	// keyframes it is embedded in metadata on the wire, mirroring how the
	// paper extracted ① and ⑤; for delta frames it travels in the header
	// of our protocol (a simplification that does not affect delay
	// accounting, which only reads keyframe timestamps).
	CapturedAt time.Time
	// Keyframe marks an intra-coded frame.
	Keyframe bool
	// Payload is the (synthetic) encoded video data.
	Payload []byte
	// Sig optionally carries the §7.2 Ed25519 signature over the frame's
	// unsigned wire bytes. It rides inside chunks so HLS viewers can
	// verify integrity end-to-end, exactly as the paper's countermeasure
	// proposes ("Wowza can securely forward the broadcaster's public key
	// to each viewer, and they can verify the integrity of the stream").
	Sig []byte
}

// UnsignedBytes returns the frame's wire form without its signature — the
// exact bytes the §7.2 signature covers.
func (f *Frame) UnsignedBytes() []byte {
	cp := *f
	cp.Sig = nil
	return MarshalFrame(nil, &cp)
}

// Chunk is a group of consecutive frames — the HLS data unit.
type Chunk struct {
	// Seq is the chunk sequence number within its broadcast, from 0.
	Seq uint64
	// Frames are the member frames in order.
	Frames []Frame
}

// Duration returns the play time covered by the chunk.
func (c *Chunk) Duration() time.Duration {
	return time.Duration(len(c.Frames)) * FrameDuration
}

// Size returns the total payload bytes in the chunk.
func (c *Chunk) Size() int {
	n := 0
	for i := range c.Frames {
		n += len(c.Frames[i].Payload)
	}
	return n
}

// FirstCapturedAt returns the capture time of the chunk's first frame, the
// timestamp the paper uses for chunk-level delay (⑤).
func (c *Chunk) FirstCapturedAt() time.Time {
	if len(c.Frames) == 0 {
		return time.Time{}
	}
	return c.Frames[0].CapturedAt
}

// Chunker assembles frames into fixed-duration chunks, the Wowza-side
// process that creates HLS chunking delay (⑦−⑥ in Fig. 10).
type Chunker struct {
	perChunk int
	next     uint64
	pending  []Frame
}

// NewChunker returns a Chunker producing chunks of the given duration.
// Zero means DefaultChunkDuration.
func NewChunker(chunkDur time.Duration) *Chunker {
	if chunkDur == 0 {
		chunkDur = DefaultChunkDuration
	}
	return &Chunker{perChunk: FramesPerChunk(chunkDur)}
}

// Add appends a frame and returns a completed chunk when one fills, else
// nil. The returned chunk owns its frame slice.
func (ck *Chunker) Add(f Frame) *Chunk {
	ck.pending = append(ck.pending, f)
	if len(ck.pending) < ck.perChunk {
		return nil
	}
	return ck.flush()
}

// Flush returns any partial chunk (e.g. at broadcast end), or nil.
func (ck *Chunker) Flush() *Chunk {
	if len(ck.pending) == 0 {
		return nil
	}
	return ck.flush()
}

func (ck *Chunker) flush() *Chunk {
	c := &Chunk{Seq: ck.next, Frames: ck.pending}
	ck.next++
	ck.pending = nil
	return c
}

// FramesPerChunkCount exposes the configured chunk size in frames.
func (ck *Chunker) FramesPerChunkCount() int { return ck.perChunk }

// SkipTo advances the next chunk sequence to at least seq. A recovering
// origin calls it after journal replay so chunks sealed post-restart continue
// the pre-crash numbering instead of restarting from 0.
func (ck *Chunker) SkipTo(seq uint64) {
	if seq > ck.next {
		ck.next = seq
	}
}

// Encoder synthesizes a frame stream with a realistic size profile: a
// configurable bitrate, periodic keyframes several times larger than delta
// frames, and lognormal size variation.
type Encoder struct {
	seq         uint64
	bytesPerFrm float64
	keyInterval int
	keyMultiple float64
	sizeJitter  float64
	src         *rng.Source
	sinceKey    int
}

// EncoderConfig parameterizes an Encoder.
type EncoderConfig struct {
	// BitsPerSec is the target video bitrate (default 500 kbit/s, typical
	// of 2015 mobile livestreams).
	BitsPerSec float64
	// KeyframeInterval is frames between keyframes (default 75 = one per
	// 3 s chunk, which lets every chunk start with a keyframe).
	KeyframeInterval int
	// KeyframeMultiple is the size ratio keyframe:delta (default 6).
	KeyframeMultiple float64
	// SizeJitterSigma is lognormal sigma on frame size (default 0.2).
	SizeJitterSigma float64
}

// NewEncoder builds an Encoder; zero config fields take defaults.
func NewEncoder(cfg EncoderConfig, src *rng.Source) *Encoder {
	if cfg.BitsPerSec == 0 {
		cfg.BitsPerSec = 500_000
	}
	if cfg.KeyframeInterval == 0 {
		cfg.KeyframeInterval = FramesPerChunk(DefaultChunkDuration)
	}
	if cfg.KeyframeMultiple == 0 {
		cfg.KeyframeMultiple = 6
	}
	if cfg.SizeJitterSigma == 0 {
		cfg.SizeJitterSigma = 0.2
	}
	fps := float64(time.Second / FrameDuration)
	return &Encoder{
		bytesPerFrm: cfg.BitsPerSec / 8 / fps,
		keyInterval: cfg.KeyframeInterval,
		keyMultiple: cfg.KeyframeMultiple,
		sizeJitter:  cfg.SizeJitterSigma,
		src:         src,
	}
}

// Next produces the next frame with the given capture timestamp.
func (e *Encoder) Next(capturedAt time.Time) Frame {
	key := e.sinceKey == 0
	e.sinceKey++
	if e.sinceKey >= e.keyInterval {
		e.sinceKey = 0
	}
	// Keep the average frame size at bytesPerFrm: deltas shrink to
	// compensate for keyframe inflation.
	k := float64(e.keyInterval)
	deltaShare := k / (k - 1 + e.keyMultiple)
	size := e.bytesPerFrm * deltaShare
	if key {
		size *= e.keyMultiple
	}
	size *= e.src.LogNormal(0, e.sizeJitter)
	if size < 16 {
		size = 16
	}
	f := Frame{
		Seq:        e.seq,
		CapturedAt: capturedAt,
		Keyframe:   key,
		Payload:    make([]byte, int(size)),
	}
	// Fill a recognizable pattern so tampering tests can detect rewrites.
	for i := range f.Payload {
		f.Payload[i] = byte(f.Seq + uint64(i))
	}
	e.seq++
	return f
}

// --- Wire codec -----------------------------------------------------------

// Frame wire layout (big-endian):
//
//	seq        uint64
//	capturedAt int64 (UnixNano)
//	flags      uint8 (bit0 = keyframe, bit1 = signed)
//	payloadLen uint32
//	payload    [payloadLen]byte
//	sig        [64]byte (only when bit1 set)
const frameHeaderSize = 8 + 8 + 1 + 4

// FrameSigSize is the embedded Ed25519 signature length.
const FrameSigSize = 64

// MaxFramePayload bounds a decoded payload to keep a corrupted or malicious
// length prefix from exhausting memory.
const MaxFramePayload = 16 << 20

// ErrFrameTooLarge is returned when a length prefix exceeds MaxFramePayload.
var ErrFrameTooLarge = errors.New("media: frame payload exceeds limit")

// MarshalFrame appends the wire form of f to dst and returns the result.
// A frame with a 64-byte Sig is marshalled with the signed flag; any other
// Sig length is ignored.
func MarshalFrame(dst []byte, f *Frame) []byte {
	var hdr [frameHeaderSize]byte
	binary.BigEndian.PutUint64(hdr[0:8], f.Seq)
	binary.BigEndian.PutUint64(hdr[8:16], uint64(f.CapturedAt.UnixNano()))
	signed := len(f.Sig) == FrameSigSize
	if f.Keyframe {
		hdr[16] |= 1
	}
	if signed {
		hdr[16] |= 2
	}
	binary.BigEndian.PutUint32(hdr[17:21], uint32(len(f.Payload)))
	dst = append(dst, hdr[:]...)
	dst = append(dst, f.Payload...)
	if signed {
		dst = append(dst, f.Sig...)
	}
	return dst
}

// SniffFrame validates the wire form of a frame without copying its payload
// or signature — the zero-allocation check the fan-out hot path uses when no
// tap or verification needs the decoded frame. It returns the encoded length.
func SniffFrame(data []byte) (int, error) {
	if len(data) < frameHeaderSize {
		return 0, fmt.Errorf("media: short frame header: %d bytes", len(data))
	}
	if data[16]&^3 != 0 {
		return 0, fmt.Errorf("media: unknown frame flags %#x", data[16])
	}
	plen := binary.BigEndian.Uint32(data[17:21])
	if plen > MaxFramePayload {
		return 0, ErrFrameTooLarge
	}
	total := frameHeaderSize + int(plen)
	if data[16]&2 != 0 {
		total += FrameSigSize
	}
	if len(data) < total {
		return 0, fmt.Errorf("media: short frame payload: have %d want %d", len(data), total)
	}
	return total, nil
}

// UnmarshalFrame parses one frame from data, returning the frame and the
// number of bytes consumed. The returned frame owns its payload and
// signature (they are copied out of data).
func UnmarshalFrame(data []byte) (Frame, int, error) {
	total, err := SniffFrame(data)
	if err != nil {
		return Frame{}, 0, err
	}
	plen := binary.BigEndian.Uint32(data[17:21])
	signed := data[16]&2 != 0
	f := Frame{
		Seq:        binary.BigEndian.Uint64(data[0:8]),
		CapturedAt: time.Unix(0, int64(binary.BigEndian.Uint64(data[8:16]))).UTC(),
		Keyframe:   data[16]&1 != 0,
		Payload:    append([]byte(nil), data[frameHeaderSize:frameHeaderSize+int(plen)]...),
	}
	if signed {
		f.Sig = append([]byte(nil), data[frameHeaderSize+int(plen):total]...)
	}
	return f, total, nil
}

// WriteFrame writes f to w in wire form.
func WriteFrame(w io.Writer, f *Frame) error {
	buf := MarshalFrame(nil, f)
	_, err := w.Write(buf)
	return err
}

// ReadFrame reads one frame from r.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err
	}
	if hdr[16]&^3 != 0 {
		return Frame{}, fmt.Errorf("media: unknown frame flags %#x", hdr[16])
	}
	plen := binary.BigEndian.Uint32(hdr[17:21])
	if plen > MaxFramePayload {
		return Frame{}, ErrFrameTooLarge
	}
	payload := make([]byte, plen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return Frame{}, fmt.Errorf("media: reading payload: %w", err)
	}
	f := Frame{
		Seq:        binary.BigEndian.Uint64(hdr[0:8]),
		CapturedAt: time.Unix(0, int64(binary.BigEndian.Uint64(hdr[8:16]))).UTC(),
		Keyframe:   hdr[16]&1 != 0,
		Payload:    payload,
	}
	if hdr[16]&2 != 0 {
		f.Sig = make([]byte, FrameSigSize)
		if _, err := io.ReadFull(r, f.Sig); err != nil {
			return Frame{}, fmt.Errorf("media: reading signature: %w", err)
		}
	}
	return f, nil
}

// MarshalChunk encodes a chunk: seq, frame count, then each frame.
func MarshalChunk(c *Chunk) []byte {
	buf := make([]byte, 12, 12+c.Size()+len(c.Frames)*frameHeaderSize)
	binary.BigEndian.PutUint64(buf[0:8], c.Seq)
	binary.BigEndian.PutUint32(buf[8:12], uint32(len(c.Frames)))
	for i := range c.Frames {
		buf = MarshalFrame(buf, &c.Frames[i])
	}
	return buf
}

// UnmarshalChunk decodes a chunk produced by MarshalChunk.
func UnmarshalChunk(data []byte) (*Chunk, error) {
	if len(data) < 12 {
		return nil, fmt.Errorf("media: short chunk header: %d bytes", len(data))
	}
	c := &Chunk{Seq: binary.BigEndian.Uint64(data[0:8])}
	n := binary.BigEndian.Uint32(data[8:12])
	if n > 1<<20 {
		return nil, fmt.Errorf("media: implausible frame count %d", n)
	}
	off := 12
	for i := uint32(0); i < n; i++ {
		f, used, err := UnmarshalFrame(data[off:])
		if err != nil {
			return nil, fmt.Errorf("media: frame %d: %w", i, err)
		}
		c.Frames = append(c.Frames, f)
		off += used
	}
	return c, nil
}
