// Package delay implements the paper's end-to-end delay methodology
// (§4.2–§4.3, Fig. 10): trace-driven simulation of every numbered timestamp
// on the RTMP (①–④) and HLS (⑤–⑰) paths. Broadcast traces (frame arrivals
// at the origin, chunk readiness) are generated with the netsim WAN model;
// client-side behaviour — edge pulls triggered by viewer polls, periodic
// viewer polling, last-mile download, and player buffering — is then
// replayed over the traces exactly as the paper's own simulations did.
package delay

import (
	"time"

	"repro/internal/geo"
	"repro/internal/media"
	"repro/internal/netsim"
	"repro/internal/player"
	"repro/internal/rng"
)

// Components is the Figure 11 decomposition of end-to-end delay.
type Components struct {
	Upload       time.Duration // ②−① / ⑥−⑤
	Chunking     time.Duration // ⑦−⑥ (HLS only)
	Wowza2Fastly time.Duration // ⑪−⑦ (HLS only)
	Polling      time.Duration // ⑭−⑪ (HLS only)
	LastMile     time.Duration // ③−② / ⑮−⑭
	Buffering    time.Duration // ④−③ / ⑯−⑮
}

// Total sums the components.
func (c Components) Total() time.Duration {
	return c.Upload + c.Chunking + c.Wowza2Fastly + c.Polling + c.LastMile + c.Buffering
}

// TraceConfig parameterizes one simulated broadcast's CDN-side trace.
type TraceConfig struct {
	// Duration of the broadcast (content time).
	Duration time.Duration
	// ChunkDuration for HLS assembly (default 3 s).
	ChunkDuration time.Duration
	// Broadcaster is the uploader's location; Origin the ingest site.
	Broadcaster geo.Location
	Origin      geo.Datacenter
	// Upload is the broadcaster's last-mile profile (§4.3 used WiFi).
	Upload netsim.AccessProfile
	// Bursty enables the accumulate-and-flush upload pathology behind
	// Fig. 16(b)'s long tail; BurstHold is the mean flush interval.
	Bursty    bool
	BurstHold time.Duration
	// FrameBytes approximates per-frame payload for serialization delay
	// (default 2500 B ≈ 500 kbit/s at 25 fps).
	FrameBytes int
	// DeviceDelay is the capture→send latency of the phone's encoding
	// pipeline (default 150 ms), part of the paper's upload component.
	DeviceDelay time.Duration
}

// Trace is the CDN-side record of one broadcast: what the paper's passive
// crawlers captured for 16,013 broadcasts.
type Trace struct {
	// Captured[i] is frame i's device capture time (① / ⑤).
	Captured []time.Time
	// OriginAt[i] is frame i's arrival at the origin (② / ⑥).
	OriginAt []time.Time
	// Chunks lists chunk-level events.
	Chunks []ChunkTrace
	// ChunkDuration used for assembly.
	ChunkDuration time.Duration
}

// ChunkTrace is one chunk's origin-side record.
type ChunkTrace struct {
	Seq           int
	FirstCaptured time.Time // ⑤ of the chunk's first frame
	FirstOriginAt time.Time // ⑥
	ReadyAt       time.Time // ⑦: all member frames arrived, chunk assembled
	Bytes         int
}

// GenTrace simulates the broadcaster→origin leg and chunk assembly.
func GenTrace(cfg TraceConfig, model *netsim.Model, src *rng.Source) *Trace {
	if cfg.ChunkDuration == 0 {
		cfg.ChunkDuration = media.DefaultChunkDuration
	}
	if cfg.FrameBytes == 0 {
		cfg.FrameBytes = 2500
	}
	if cfg.BurstHold == 0 {
		cfg.BurstHold = 3 * time.Second
	}
	if cfg.DeviceDelay == 0 {
		cfg.DeviceDelay = 150 * time.Millisecond
	}
	nFrames := int(cfg.Duration / media.FrameDuration)
	if nFrames < 1 {
		nFrames = 1
	}
	tr := &Trace{ChunkDuration: cfg.ChunkDuration}
	start := time.Time{}.Add(time.Hour) // arbitrary epoch; only deltas matter
	// Bursty uploaders accumulate frames and flush at irregular
	// (exponential) intervals — the §6 pathology behind Fig. 16(b)'s
	// long buffering tail.
	var nextFlush time.Time
	if cfg.Bursty {
		nextFlush = start.Add(time.Duration(src.Exp(float64(cfg.BurstHold))))
	}
	var prevArrival time.Time
	for i := 0; i < nFrames; i++ {
		captured := start.Add(time.Duration(i) * media.FrameDuration)
		released := captured
		if cfg.Bursty {
			for nextFlush.Before(captured) {
				nextFlush = nextFlush.Add(time.Duration(src.Exp(float64(cfg.BurstHold))))
			}
			released = nextFlush
		}
		arrival := released.
			Add(cfg.DeviceDelay).
			Add(model.LastMile(cfg.Upload, cfg.FrameBytes)).
			Add(model.OneWay(cfg.Broadcaster, cfg.Origin.Location))
		// TCP delivers in order: a delayed frame delays its successors.
		if arrival.Before(prevArrival) {
			arrival = prevArrival
		}
		prevArrival = arrival
		tr.Captured = append(tr.Captured, captured)
		tr.OriginAt = append(tr.OriginAt, arrival)
	}
	perChunk := media.FramesPerChunk(cfg.ChunkDuration)
	for c := 0; c*perChunk < nFrames; c++ {
		lo := c * perChunk
		hi := lo + perChunk
		if hi > nFrames {
			hi = nFrames
		}
		tr.Chunks = append(tr.Chunks, ChunkTrace{
			Seq:           c,
			FirstCaptured: tr.Captured[lo],
			FirstOriginAt: tr.OriginAt[lo],
			ReadyAt:       tr.OriginAt[hi-1],
			Bytes:         (hi - lo) * cfg.FrameBytes,
		})
	}
	return tr
}

// EdgePath describes the origin→edge leg for one viewer's edge (§5.3).
type EdgePath struct {
	Edge geo.Datacenter
	// Gateway, when non-nil, relays the pull through the origin's
	// co-located edge, adding GatewayOverhead coordination time — the
	// paper's explanation for the Figure 15 co-location gap.
	Gateway         *geo.Datacenter
	GatewayOverhead time.Duration
	// TriggerPollInterval is the polling cadence of the *first* HLS
	// viewer, whose poll triggers the origin pull (⑨). The paper's
	// crawler used 0.1 s to isolate ⑪−⑦.
	TriggerPollInterval time.Duration
	// TriggerPollPhase offsets the trigger poller's schedule.
	TriggerPollPhase time.Duration
}

// EdgeArrivals computes ⑪ (chunk available at the edge) for every chunk.
func EdgeArrivals(tr *Trace, origin geo.Datacenter, path EdgePath, model *netsim.Model) []time.Time {
	if path.TriggerPollInterval <= 0 {
		path.TriggerPollInterval = 100 * time.Millisecond
	}
	out := make([]time.Time, 0, len(tr.Chunks))
	var prev time.Time
	for _, ch := range tr.Chunks {
		// ⑧: origin notifies the edge to expire its chunklist.
		invalidAt := ch.ReadyAt.Add(model.OneWay(origin.Location, path.Edge.Location))
		// ⑨: first viewer poll after expiry triggers the pull.
		pollAt := nextPoll(invalidAt, path.TriggerPollInterval, path.TriggerPollPhase)
		// ⑩/⑪: the edge fetches the fresh chunk.
		var arrival time.Time
		if path.Gateway != nil {
			// Origin hands the chunk to its co-located gateway,
			// which coordinates distribution to the remote edge.
			arrival = pollAt.
				Add(model.RTT(path.Edge.Location, path.Gateway.Location)).
				Add(path.GatewayOverhead).
				Add(model.Transfer(path.Gateway.Location, path.Edge.Location, ch.Bytes))
		} else {
			arrival = pollAt.
				Add(model.RTT(path.Edge.Location, origin.Location)).
				Add(model.Transfer(origin.Location, path.Edge.Location, ch.Bytes))
		}
		if arrival.Before(prev) {
			arrival = prev
		}
		prev = arrival
		out = append(out, arrival)
	}
	return out
}

func nextPoll(after time.Time, interval, phase time.Duration) time.Time {
	base := time.Time{}.Add(phase)
	since := after.Sub(base)
	n := since / interval
	if base.Add(n * interval).Before(after) {
		n++
	}
	return base.Add(n * interval)
}

// PollObservations simulates one HLS viewer polling the edge at the given
// interval and phase: for each chunk it returns the poll time that first
// observes it (⑭). This is the Figures 12/13 machinery.
func PollObservations(edgeAt []time.Time, interval, phase time.Duration) []time.Time {
	out := make([]time.Time, 0, len(edgeAt))
	for _, at := range edgeAt {
		out = append(out, nextPoll(at, interval, phase))
	}
	return out
}

// PollingDelays returns ⑭−⑪ per chunk.
func PollingDelays(edgeAt, seenAt []time.Time) []time.Duration {
	out := make([]time.Duration, len(edgeAt))
	for i := range edgeAt {
		out[i] = seenAt[i].Sub(edgeAt[i])
	}
	return out
}

// ViewerConfig describes the watching client.
type ViewerConfig struct {
	Location geo.Location
	// LastMile is the viewer's access profile.
	LastMile netsim.AccessProfile
	// PollInterval is the HLS client's chunklist cadence (Periscope:
	// 2–2.8 s, §5.2); ignored for RTMP.
	PollInterval time.Duration
	PollPhase    time.Duration
	// PreBuffer is the player's P (§6): Periscope ships ≈1 s for RTMP
	// and 9 s for HLS.
	PreBuffer time.Duration
}

// RTMPItems turns a trace into per-frame player items for an RTMP viewer,
// returning the items plus per-frame ② and ③ for component accounting.
func RTMPItems(tr *Trace, origin geo.Datacenter, v ViewerConfig, model *netsim.Model) ([]player.Item, []time.Time) {
	items := make([]player.Item, 0, len(tr.OriginAt))
	recvAt := make([]time.Time, 0, len(tr.OriginAt))
	var prev time.Time
	for i, at := range tr.OriginAt {
		arrive := at.
			Add(model.OneWay(origin.Location, v.Location)).
			Add(model.LastMile(v.LastMile, 2500))
		if arrive.Before(prev) {
			arrive = prev
		}
		prev = arrive
		items = append(items, player.Item{
			Seq:      uint64(i),
			Duration: media.FrameDuration,
			ArriveAt: arrive,
		})
		recvAt = append(recvAt, arrive)
	}
	return items, recvAt
}

// HLSItems turns edge arrivals into per-chunk player items for an HLS
// viewer, returning items plus ⑭ (list seen) and ⑮ (chunk downloaded).
func HLSItems(tr *Trace, edgeAt []time.Time, v ViewerConfig, model *netsim.Model) ([]player.Item, []time.Time, []time.Time) {
	if v.PollInterval <= 0 {
		v.PollInterval = 2800 * time.Millisecond
	}
	seenAt := PollObservations(edgeAt, v.PollInterval, v.PollPhase)
	items := make([]player.Item, 0, len(edgeAt))
	fetchedAt := make([]time.Time, 0, len(edgeAt))
	var prev time.Time
	for i, seen := range seenAt {
		fetched := seen.Add(model.LastMile(v.LastMile, tr.Chunks[i].Bytes))
		if fetched.Before(prev) {
			fetched = prev
		}
		prev = fetched
		dur := tr.ChunkDuration
		items = append(items, player.Item{Seq: uint64(i), Duration: dur, ArriveAt: fetched})
		fetchedAt = append(fetchedAt, fetched)
	}
	return items, seenAt, fetchedAt
}

func meanDur(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return sum / time.Duration(len(ds))
}

// RTMPComponents measures the Figure 11 RTMP row for one trace and viewer.
func RTMPComponents(tr *Trace, origin geo.Datacenter, v ViewerConfig, model *netsim.Model) Components {
	items, recvAt := RTMPItems(tr, origin, v, model)
	var up, lm []time.Duration
	for i := range tr.OriginAt {
		up = append(up, tr.OriginAt[i].Sub(tr.Captured[i]))
		lm = append(lm, recvAt[i].Sub(tr.OriginAt[i]))
	}
	res := player.Simulate(items, player.Config{PreBuffer: v.PreBuffer})
	return Components{
		Upload:    meanDur(up),
		LastMile:  meanDur(lm),
		Buffering: res.MeanBufferingDelay,
	}
}

// HLSComponents measures the Figure 11 HLS row for one trace, edge path and
// viewer. Chunk-level delays reference the chunk's first frame, as in the
// paper.
func HLSComponents(tr *Trace, origin geo.Datacenter, path EdgePath, v ViewerConfig, model *netsim.Model) Components {
	edgeAt := EdgeArrivals(tr, origin, path, model)
	items, seenAt, fetchedAt := HLSItems(tr, edgeAt, v, model)
	var up, chunking, w2f, polling, lm []time.Duration
	for i, ch := range tr.Chunks {
		up = append(up, ch.FirstOriginAt.Sub(ch.FirstCaptured))
		chunking = append(chunking, ch.ReadyAt.Sub(ch.FirstOriginAt))
		w2f = append(w2f, edgeAt[i].Sub(ch.ReadyAt))
		polling = append(polling, seenAt[i].Sub(edgeAt[i]))
		lm = append(lm, fetchedAt[i].Sub(seenAt[i]))
	}
	res := player.Simulate(items, player.Config{PreBuffer: v.PreBuffer})
	return Components{
		Upload:       meanDur(up),
		Chunking:     meanDur(chunking),
		Wowza2Fastly: meanDur(w2f),
		Polling:      meanDur(polling),
		LastMile:     meanDur(lm),
		Buffering:    res.MeanBufferingDelay,
	}
}
