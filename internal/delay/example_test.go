package delay_test

import (
	"fmt"

	"repro/internal/delay"
)

// ExampleRunControlled reproduces the paper's §4.3 controlled experiment
// and prints the Figure 11 headline: HLS pays roughly an order of magnitude
// more end-to-end delay than RTMP, dominated by client buffering.
func ExampleRunControlled() {
	rtmp, hls := delay.RunControlled(delay.ControlledConfig{Seed: 42})
	fmt.Printf("RTMP total ≈ %.0fs, HLS total ≈ %.0fs\n",
		rtmp.Total().Seconds(), hls.Total().Seconds())
	fmt.Printf("HLS dominated by buffering: %v\n",
		hls.Buffering > hls.Chunking && hls.Chunking > hls.Polling)
	// Output:
	// RTMP total ≈ 1s, HLS total ≈ 10s
	// HLS dominated by buffering: true
}
