package delay

import (
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/media"
	"repro/internal/netsim"
	"repro/internal/rng"
	"repro/internal/stats"
)

func testSetup(seed uint64) (*netsim.Model, *rng.Source, geo.Datacenter) {
	src := rng.New(seed)
	model := netsim.NewModel(netsim.Params{}, src.Split("net"))
	origin := geo.Nearest(geo.Location{City: "SF", Lat: 37.77, Lon: -122.42}, geo.WowzaSites())
	return model, src, origin
}

func sfTrace(t *testing.T, seed uint64, dur time.Duration, bursty bool) (*Trace, *netsim.Model, geo.Datacenter) {
	t.Helper()
	model, src, origin := testSetup(seed)
	tr := GenTrace(TraceConfig{
		Duration:    dur,
		Broadcaster: geo.Location{City: "SF", Lat: 37.77, Lon: -122.42},
		Origin:      origin,
		Upload:      netsim.WiFi,
		Bursty:      bursty,
	}, model, src)
	return tr, model, origin
}

func TestGenTraceShape(t *testing.T) {
	tr, _, _ := sfTrace(t, 1, 30*time.Second, false)
	if len(tr.Captured) != 750 {
		t.Fatalf("frames = %d, want 750 (30s at 25fps)", len(tr.Captured))
	}
	if len(tr.Chunks) != 10 {
		t.Fatalf("chunks = %d, want 10", len(tr.Chunks))
	}
	for i := 1; i < len(tr.OriginAt); i++ {
		if tr.OriginAt[i].Before(tr.OriginAt[i-1]) {
			t.Fatal("origin arrivals out of order (TCP must deliver in order)")
		}
	}
	for i, ch := range tr.Chunks {
		if ch.Seq != i {
			t.Fatalf("chunk seq %d at index %d", ch.Seq, i)
		}
		if ch.ReadyAt.Before(ch.FirstOriginAt) {
			t.Fatal("chunk ready before its first frame arrived")
		}
		// Chunking delay ≈ chunk duration (⑦−⑥ ≈ 3 s, §5.1).
		d := ch.ReadyAt.Sub(ch.FirstOriginAt)
		if d < 2*time.Second || d > 5*time.Second {
			t.Fatalf("chunking delay = %v, want ≈3s", d)
		}
	}
}

func TestGenTraceUploadDelayPlausible(t *testing.T) {
	tr, _, _ := sfTrace(t, 2, 10*time.Second, false)
	var ups []float64
	for i := range tr.Captured {
		ups = append(ups, tr.OriginAt[i].Sub(tr.Captured[i]).Seconds())
	}
	mean := stats.Mean(ups)
	// Device (150 ms) + WiFi + short WAN: the paper's upload bar ≈ 0.2 s.
	if mean < 0.12 || mean > 0.6 {
		t.Fatalf("mean upload delay = %vs, want ≈0.2s", mean)
	}
}

func TestBurstyTraceHasLargerBacklog(t *testing.T) {
	smooth, _, _ := sfTrace(t, 3, 30*time.Second, false)
	bursty, _, _ := sfTrace(t, 3, 30*time.Second, true)
	maxDelay := func(tr *Trace) time.Duration {
		var m time.Duration
		for i := range tr.Captured {
			if d := tr.OriginAt[i].Sub(tr.Captured[i]); d > m {
				m = d
			}
		}
		return m
	}
	if maxDelay(bursty) < 2*maxDelay(smooth) {
		t.Fatalf("bursty upload max delay %v not clearly above smooth %v",
			maxDelay(bursty), maxDelay(smooth))
	}
}

func TestEdgeArrivalsOrdering(t *testing.T) {
	tr, model, origin := sfTrace(t, 4, 60*time.Second, false)
	edge := geo.Nearest(origin.Location, geo.FastlySites())
	at := EdgeArrivals(tr, origin, EdgePath{Edge: edge}, model)
	if len(at) != len(tr.Chunks) {
		t.Fatalf("edge arrivals = %d, want %d", len(at), len(tr.Chunks))
	}
	for i := range at {
		if at[i].Before(tr.Chunks[i].ReadyAt) {
			t.Fatal("chunk at edge before ready at origin")
		}
		if i > 0 && at[i].Before(at[i-1]) {
			t.Fatal("edge arrivals out of order")
		}
	}
}

func TestGatewayAddsDelay(t *testing.T) {
	tr, model, origin := sfTrace(t, 5, 60*time.Second, false)
	edge := geo.Datacenter{ID: "far", Location: geo.Location{City: "London", Lat: 51.5, Lon: -0.13}}
	gw := geo.Nearest(origin.Location, geo.FastlySites())

	model2 := netsim.NewModel(netsim.Params{JitterSigma: 1e-9}, rng.New(5))
	direct := EdgeArrivals(tr, origin, EdgePath{Edge: edge}, model2)
	model3 := netsim.NewModel(netsim.Params{JitterSigma: 1e-9}, rng.New(5))
	relayed := EdgeArrivals(tr, origin, EdgePath{Edge: edge, Gateway: &gw, GatewayOverhead: DefaultGatewayOverhead}, model3)
	var dSum, rSum time.Duration
	for i := range direct {
		dSum += direct[i].Sub(tr.Chunks[i].ReadyAt)
		rSum += relayed[i].Sub(tr.Chunks[i].ReadyAt)
	}
	if rSum <= dSum {
		t.Fatalf("gateway relay not slower: %v vs %v", rSum, dSum)
	}
	_ = model
}

func TestPollingDelayMeanHalfInterval(t *testing.T) {
	// With chunk arrivals incommensurate to the poll interval, the mean
	// polling delay ≈ interval/2 (Fig. 12's 2 s and 4 s cases).
	tr, model, origin := sfTrace(t, 6, 5*time.Minute, false)
	edge := geo.Nearest(origin.Location, geo.FastlySites())
	edgeAt := EdgeArrivals(tr, origin, EdgePath{Edge: edge}, model)
	for _, interval := range []time.Duration{2 * time.Second, 4 * time.Second} {
		var means []float64
		for phase := 0; phase < 20; phase++ {
			seen := PollObservations(edgeAt, interval, time.Duration(phase)*interval/20)
			ds := PollingDelays(edgeAt, seen)
			var s float64
			for _, d := range ds {
				if d < 0 {
					t.Fatal("negative polling delay")
				}
				s += d.Seconds()
			}
			means = append(means, s/float64(len(ds)))
		}
		m := stats.Mean(means)
		want := interval.Seconds() / 2
		if m < want*0.6 || m > want*1.4 {
			t.Fatalf("interval %v: mean polling delay %vs, want ≈%vs", interval, m, want)
		}
	}
}

func TestPolling3sResonance(t *testing.T) {
	// Fig. 12: with a 3 s interval matching the 3 s chunk cadence, the
	// per-broadcast mean polling delay varies widely across broadcasts
	// (phase lock) — much wider than for 2 s or 4 s.
	spread := func(interval time.Duration) float64 {
		var means []float64
		for b := 0; b < 30; b++ {
			tr, model, origin := sfTrace(t, uint64(100+b), 4*time.Minute, false)
			edge := geo.Nearest(origin.Location, geo.FastlySites())
			edgeAt := EdgeArrivals(tr, origin, EdgePath{Edge: edge}, model)
			phase := time.Duration(b) * interval / 30
			seen := PollObservations(edgeAt, interval, phase)
			ds := PollingDelays(edgeAt, seen)
			var s float64
			for _, d := range ds {
				s += d.Seconds()
			}
			means = append(means, s/float64(len(ds)))
		}
		return stats.StdDev(means)
	}
	if s3, s2 := spread(3*time.Second), spread(2*time.Second); s3 <= s2 {
		t.Fatalf("3s polling spread (%v) not above 2s spread (%v): no resonance", s3, s2)
	}
}

func TestRTMPComponentsShape(t *testing.T) {
	tr, model, origin := sfTrace(t, 7, time.Minute, false)
	v := ViewerConfig{
		Location:  geo.Location{City: "SF", Lat: 37.77, Lon: -122.42},
		LastMile:  netsim.WiFi,
		PreBuffer: time.Second,
	}
	c := RTMPComponents(tr, origin, v, model)
	if c.Chunking != 0 || c.Wowza2Fastly != 0 || c.Polling != 0 {
		t.Fatalf("RTMP has HLS components: %+v", c)
	}
	if c.Upload <= 0 || c.LastMile <= 0 || c.Buffering <= 0 {
		t.Fatalf("non-positive components: %+v", c)
	}
	// Paper Fig. 11: RTMP end-to-end ≈ 1.4 s.
	total := c.Total()
	if total < 500*time.Millisecond || total > 3*time.Second {
		t.Fatalf("RTMP total = %v, want ≈1.4s", total)
	}
}

func TestHLSComponentsShape(t *testing.T) {
	tr, model, origin := sfTrace(t, 8, 2*time.Minute, false)
	edge := geo.Nearest(origin.Location, geo.FastlySites())
	v := ViewerConfig{
		Location:     geo.Location{City: "SF", Lat: 37.77, Lon: -122.42},
		LastMile:     netsim.WiFi,
		PollInterval: 2800 * time.Millisecond,
		PreBuffer:    9 * time.Second,
	}
	c := HLSComponents(tr, origin, EdgePath{Edge: edge}, v, model)
	// Paper Fig. 11 ordering: buffering > chunking > polling > W2F.
	if !(c.Buffering > c.Chunking && c.Chunking > c.Polling && c.Polling > c.Wowza2Fastly) {
		t.Fatalf("HLS component ordering wrong: %+v", c)
	}
	// Chunking ≈ 3 s.
	if c.Chunking < 2*time.Second || c.Chunking > 4*time.Second {
		t.Fatalf("chunking = %v, want ≈3s", c.Chunking)
	}
	// Total ≈ 11.7 s.
	if c.Total() < 7*time.Second || c.Total() > 17*time.Second {
		t.Fatalf("HLS total = %v, want ≈11.7s", c.Total())
	}
}

func TestRunControlledMatchesFig11(t *testing.T) {
	r, h := RunControlled(ControlledConfig{Seed: 9, Repetitions: 5, BroadcastDuration: 90 * time.Second})
	if r.Total() >= h.Total() {
		t.Fatalf("RTMP (%v) not faster than HLS (%v)", r.Total(), h.Total())
	}
	ratio := float64(h.Total()) / float64(r.Total())
	// Paper: 11.7s / 1.4s ≈ 8.4×; accept a broad band.
	if ratio < 4 || ratio > 16 {
		t.Fatalf("HLS/RTMP ratio = %v, want ≈8", ratio)
	}
	// HLS buffering is the single largest component (6.9 s of 11.7 s).
	if !(h.Buffering > h.Chunking && h.Buffering > h.Polling && h.Buffering > h.Upload) {
		t.Fatalf("buffering not dominant: %+v", h)
	}
}

func TestChunkDurationMatchesMedia(t *testing.T) {
	tr, _, _ := sfTrace(t, 10, 30*time.Second, false)
	if tr.ChunkDuration != media.DefaultChunkDuration {
		t.Fatalf("chunk duration = %v", tr.ChunkDuration)
	}
}
