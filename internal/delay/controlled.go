package delay

import (
	"time"

	"repro/internal/geo"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/rng"
)

// DefaultGatewayOverhead is the extra coordination delay of the gateway
// relay, calibrated to the >0.25 s gap the paper measures between co-located
// and nearby datacenter pairs (Fig. 15, §5.3).
const DefaultGatewayOverhead = 250 * time.Millisecond

// ControlledConfig reproduces the §4.3 controlled experiment: one
// broadcaster, one RTMP viewer, one HLS viewer, stable WiFi, repeated runs.
type ControlledConfig struct {
	// Repetitions averages this many runs (the paper used 10).
	Repetitions int
	// BroadcastDuration per run (content time).
	BroadcastDuration time.Duration
	// ChunkDuration for HLS (default 3 s).
	ChunkDuration time.Duration
	// PollInterval of the HLS viewer (default 2.8 s, §5.2 upper bound).
	PollInterval time.Duration
	// RTMPPreBuffer / HLSPreBuffer are the client P values (defaults 1 s
	// and 9 s, the shipped Periscope configuration, §6).
	RTMPPreBuffer time.Duration
	HLSPreBuffer  time.Duration
	// Broadcaster / Viewer locations; defaults put both in San Francisco
	// with the San Jose origin and edge (the paper's lab setting keeps
	// the WAN short).
	Broadcaster geo.Location
	Viewer      geo.Location
	// Access profiles; default WiFi on both ends.
	UploadProfile netsim.AccessProfile
	ViewerProfile netsim.AccessProfile
	// Seed drives all randomness.
	Seed uint64
	// Metrics, when set, receives one observation per run into each of the
	// six per-component delay histograms, labelled proto=rtmp|hls — the same
	// series the live platform populates, so the controlled experiment and
	// the running system share one instrument catalog. Nil uses a private
	// registry.
	Metrics *metrics.Registry
}

func (c ControlledConfig) withDefaults() ControlledConfig {
	if c.Repetitions == 0 {
		c.Repetitions = 10
	}
	if c.BroadcastDuration == 0 {
		c.BroadcastDuration = 2 * time.Minute
	}
	if c.PollInterval == 0 {
		c.PollInterval = 2800 * time.Millisecond
	}
	if c.RTMPPreBuffer == 0 {
		c.RTMPPreBuffer = time.Second
	}
	if c.HLSPreBuffer == 0 {
		c.HLSPreBuffer = 9 * time.Second
	}
	zero := geo.Location{}
	if c.Broadcaster == zero {
		c.Broadcaster = geo.Location{City: "San Francisco", Continent: geo.NorthAmerica, Lat: 37.77, Lon: -122.42}
	}
	if c.Viewer == zero {
		c.Viewer = geo.Location{City: "San Francisco", Continent: geo.NorthAmerica, Lat: 37.77, Lon: -122.42}
	}
	if c.UploadProfile.Name == "" {
		c.UploadProfile = netsim.WiFi
	}
	if c.ViewerProfile.Name == "" {
		c.ViewerProfile = netsim.WiFi
	}
	return c
}

// RunControlled executes the controlled experiment and returns the averaged
// RTMP and HLS component breakdowns — the two bars of Figure 11. Per-run
// component delays are observed into the registry's delay histograms
// (proto=rtmp / proto=hls); the returned averages are read back from those
// instruments, so the harness has no accumulator state of its own.
func RunControlled(cfg ControlledConfig) (rtmpAvg, hlsAvg Components) {
	cfg = cfg.withDefaults()
	src := rng.New(cfg.Seed)
	origin := geo.Nearest(cfg.Broadcaster, geo.WowzaSites())
	edge := geo.Nearest(cfg.Viewer, geo.FastlySites())
	gw := gatewayFor(origin)

	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	rHists := NewComponentHists(reg, "rtmp")
	hHists := NewComponentHists(reg, "hls")
	for rep := 0; rep < cfg.Repetitions; rep++ {
		model := netsim.NewModel(netsim.Params{}, src.Split("rep"))
		tr := GenTrace(TraceConfig{
			Duration:      cfg.BroadcastDuration,
			ChunkDuration: cfg.ChunkDuration,
			Broadcaster:   cfg.Broadcaster,
			Origin:        origin,
			Upload:        cfg.UploadProfile,
		}, model, src)

		rtmpView := ViewerConfig{
			Location:  cfg.Viewer,
			LastMile:  cfg.ViewerProfile,
			PreBuffer: cfg.RTMPPreBuffer,
		}
		rHists.Observe(RTMPComponents(tr, origin, rtmpView, model))

		path := EdgePath{Edge: edge, GatewayOverhead: DefaultGatewayOverhead}
		if gw != nil && !geo.CoLocated(*gw, edge) {
			path.Gateway = gw
		}
		hlsView := ViewerConfig{
			Location:     cfg.Viewer,
			LastMile:     cfg.ViewerProfile,
			PollInterval: cfg.PollInterval,
			PollPhase:    time.Duration(src.Float64() * float64(cfg.PollInterval)),
			PreBuffer:    cfg.HLSPreBuffer,
		}
		hHists.Observe(HLSComponents(tr, origin, path, hlsView, model))
	}
	return rHists.Means(), hHists.Means()
}

func gatewayFor(origin geo.Datacenter) *geo.Datacenter {
	for _, e := range geo.FastlySites() {
		if geo.CoLocated(e, origin) {
			e := e
			return &e
		}
	}
	return nil
}

// ComponentHists bundles the six per-component delay histograms for one
// protocol — the shared accounting surface of RunControlled and the
// viewersim engines. A shared registry may carry observations from earlier
// runs (the platform's live traffic, a prior RunControlled), so each
// histogram's count and sum are recorded at construction and Means reports
// the delta — the average over exactly this experiment's observations.
type ComponentHists struct {
	hists [6]*metrics.Histogram
	base  [6]histBase
}

type histBase struct {
	count int64
	sum   time.Duration
}

// NewComponentHists registers (or re-attaches to) the six delay-component
// histograms labelled proto=<proto> and snapshots their current totals as
// the Means baseline.
func NewComponentHists(reg *metrics.Registry, proto string) *ComponentHists {
	l := metrics.L("proto", proto)
	names := [6]string{
		metrics.DelayUpload,
		metrics.DelayChunking,
		metrics.DelayOriginEdge,
		metrics.DelayPolling,
		metrics.DelayLastMile,
		metrics.DelayBuffering,
	}
	ch := &ComponentHists{}
	for i, name := range names {
		h := reg.Histogram(name, metrics.DelayBuckets, l)
		ch.hists[i] = h
		ch.base[i] = histBase{count: h.Count(), sum: h.Sum()}
	}
	return ch
}

// Observe records one value into each component histogram.
func (ch *ComponentHists) Observe(c Components) {
	vals := [6]time.Duration{c.Upload, c.Chunking, c.Wowza2Fastly, c.Polling, c.LastMile, c.Buffering}
	for i, h := range ch.hists {
		h.Observe(vals[i])
	}
}

// Means returns the per-component averages over the observations made since
// construction.
func (ch *ComponentHists) Means() Components {
	var vals [6]time.Duration
	for i, h := range ch.hists {
		n := h.Count() - ch.base[i].count
		if n > 0 {
			vals[i] = (h.Sum() - ch.base[i].sum) / time.Duration(n)
		}
	}
	return Components{
		Upload:       vals[0],
		Chunking:     vals[1],
		Wowza2Fastly: vals[2],
		Polling:      vals[3],
		LastMile:     vals[4],
		Buffering:    vals[5],
	}
}
