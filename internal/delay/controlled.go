package delay

import (
	"time"

	"repro/internal/geo"
	"repro/internal/netsim"
	"repro/internal/rng"
)

// DefaultGatewayOverhead is the extra coordination delay of the gateway
// relay, calibrated to the >0.25 s gap the paper measures between co-located
// and nearby datacenter pairs (Fig. 15, §5.3).
const DefaultGatewayOverhead = 250 * time.Millisecond

// ControlledConfig reproduces the §4.3 controlled experiment: one
// broadcaster, one RTMP viewer, one HLS viewer, stable WiFi, repeated runs.
type ControlledConfig struct {
	// Repetitions averages this many runs (the paper used 10).
	Repetitions int
	// BroadcastDuration per run (content time).
	BroadcastDuration time.Duration
	// ChunkDuration for HLS (default 3 s).
	ChunkDuration time.Duration
	// PollInterval of the HLS viewer (default 2.8 s, §5.2 upper bound).
	PollInterval time.Duration
	// RTMPPreBuffer / HLSPreBuffer are the client P values (defaults 1 s
	// and 9 s, the shipped Periscope configuration, §6).
	RTMPPreBuffer time.Duration
	HLSPreBuffer  time.Duration
	// Broadcaster / Viewer locations; defaults put both in San Francisco
	// with the San Jose origin and edge (the paper's lab setting keeps
	// the WAN short).
	Broadcaster geo.Location
	Viewer      geo.Location
	// Access profiles; default WiFi on both ends.
	UploadProfile netsim.AccessProfile
	ViewerProfile netsim.AccessProfile
	// Seed drives all randomness.
	Seed uint64
}

func (c ControlledConfig) withDefaults() ControlledConfig {
	if c.Repetitions == 0 {
		c.Repetitions = 10
	}
	if c.BroadcastDuration == 0 {
		c.BroadcastDuration = 2 * time.Minute
	}
	if c.PollInterval == 0 {
		c.PollInterval = 2800 * time.Millisecond
	}
	if c.RTMPPreBuffer == 0 {
		c.RTMPPreBuffer = time.Second
	}
	if c.HLSPreBuffer == 0 {
		c.HLSPreBuffer = 9 * time.Second
	}
	zero := geo.Location{}
	if c.Broadcaster == zero {
		c.Broadcaster = geo.Location{City: "San Francisco", Continent: geo.NorthAmerica, Lat: 37.77, Lon: -122.42}
	}
	if c.Viewer == zero {
		c.Viewer = geo.Location{City: "San Francisco", Continent: geo.NorthAmerica, Lat: 37.77, Lon: -122.42}
	}
	if c.UploadProfile.Name == "" {
		c.UploadProfile = netsim.WiFi
	}
	if c.ViewerProfile.Name == "" {
		c.ViewerProfile = netsim.WiFi
	}
	return c
}

// RunControlled executes the controlled experiment and returns the averaged
// RTMP and HLS component breakdowns — the two bars of Figure 11.
func RunControlled(cfg ControlledConfig) (rtmpAvg, hlsAvg Components) {
	cfg = cfg.withDefaults()
	src := rng.New(cfg.Seed)
	origin := geo.Nearest(cfg.Broadcaster, geo.WowzaSites())
	edge := geo.Nearest(cfg.Viewer, geo.FastlySites())
	gw := gatewayFor(origin)

	var rSum, hSum Components
	for rep := 0; rep < cfg.Repetitions; rep++ {
		model := netsim.NewModel(netsim.Params{}, src.Split("rep"))
		tr := GenTrace(TraceConfig{
			Duration:      cfg.BroadcastDuration,
			ChunkDuration: cfg.ChunkDuration,
			Broadcaster:   cfg.Broadcaster,
			Origin:        origin,
			Upload:        cfg.UploadProfile,
		}, model, src)

		rtmpView := ViewerConfig{
			Location:  cfg.Viewer,
			LastMile:  cfg.ViewerProfile,
			PreBuffer: cfg.RTMPPreBuffer,
		}
		rSum = addComponents(rSum, RTMPComponents(tr, origin, rtmpView, model))

		path := EdgePath{Edge: edge, GatewayOverhead: DefaultGatewayOverhead}
		if gw != nil && !geo.CoLocated(*gw, edge) {
			path.Gateway = gw
		}
		hlsView := ViewerConfig{
			Location:     cfg.Viewer,
			LastMile:     cfg.ViewerProfile,
			PollInterval: cfg.PollInterval,
			PollPhase:    time.Duration(src.Float64() * float64(cfg.PollInterval)),
			PreBuffer:    cfg.HLSPreBuffer,
		}
		hSum = addComponents(hSum, HLSComponents(tr, origin, path, hlsView, model))
	}
	n := time.Duration(cfg.Repetitions)
	return divComponents(rSum, n), divComponents(hSum, n)
}

func gatewayFor(origin geo.Datacenter) *geo.Datacenter {
	for _, e := range geo.FastlySites() {
		if geo.CoLocated(e, origin) {
			e := e
			return &e
		}
	}
	return nil
}

func addComponents(a, b Components) Components {
	return Components{
		Upload:       a.Upload + b.Upload,
		Chunking:     a.Chunking + b.Chunking,
		Wowza2Fastly: a.Wowza2Fastly + b.Wowza2Fastly,
		Polling:      a.Polling + b.Polling,
		LastMile:     a.LastMile + b.LastMile,
		Buffering:    a.Buffering + b.Buffering,
	}
}

func divComponents(a Components, n time.Duration) Components {
	return Components{
		Upload:       a.Upload / n,
		Chunking:     a.Chunking / n,
		Wowza2Fastly: a.Wowza2Fastly / n,
		Polling:      a.Polling / n,
		LastMile:     a.LastMile / n,
		Buffering:    a.Buffering / n,
	}
}
