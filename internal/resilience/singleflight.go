package resilience

import "sync"

// Group collapses concurrent calls with the same key into a single
// execution whose result every caller shares — the guard against the §5.2
// polling storm where N viewers hitting an edge with an expired chunklist
// would otherwise each pull the origin independently.
type Group[V any] struct {
	mu sync.Mutex
	m  map[string]*flightCall[V]
}

type flightCall[V any] struct {
	done chan struct{}
	val  V
	err  error
	dups int
}

// Do runs fn for key unless a call for the same key is already in flight,
// in which case it waits for and shares that call's result. shared reports
// whether the result was produced by another caller's execution.
func (g *Group[V]) Do(key string, fn func() (V, error)) (v V, err error, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall[V])
	}
	if c, ok := g.m[key]; ok {
		c.dups++
		g.mu.Unlock()
		<-c.done
		return c.val, c.err, true
	}
	c := &flightCall[V]{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()
	g.mu.Lock()
	delete(g.m, key)
	dups := c.dups
	g.mu.Unlock()
	close(c.done)
	return c.val, c.err, dups > 0
}
