// Package resilience supplies the failure-handling primitives the delivery
// path needs to keep working under the loss the paper's traces show it
// routinely operates under (§5.2 bursty uploads, §4.3 chunk roll-out):
// context-aware retry with jittered exponential backoff, a per-upstream
// circuit breaker, and a single-flight group that collapses concurrent
// identical pulls into one upstream request. Bentaleb et al. and the
// Peroni–Gorinsky pipeline survey both identify this layer — not the happy
// path — as what separates a latency model from a production system.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Policy bounds a retry loop. The zero value retries 3 times with a 10 ms
// base delay doubling to a 1 s cap and ±50% jitter.
type Policy struct {
	// MaxAttempts is the total number of attempts (first try included).
	// Zero means 3; 1 disables retries.
	MaxAttempts int
	// BaseDelay is the wait before the first retry. Zero means 10 ms.
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth. Zero means 1 s.
	MaxDelay time.Duration
	// Multiplier grows the delay between retries. Zero means 2.
	Multiplier float64
	// Jitter is the fraction of each delay randomized symmetrically
	// around it (0.5 → delay uniform in [0.5d, 1.5d]). Negative disables
	// jitter; zero means 0.5.
	Jitter float64
	// Rand supplies jitter uniforms in [0,1). Nil uses a process-global
	// seeded source; tests inject deterministic values.
	Rand func() float64
	// Sleep overrides the wait between attempts; nil sleeps on the real
	// clock, honouring ctx. Tests use it to run retry loops instantly.
	Sleep func(ctx context.Context, d time.Duration) error
}

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 3
	}
	if p.BaseDelay == 0 {
		p.BaseDelay = 10 * time.Millisecond
	}
	if p.MaxDelay == 0 {
		p.MaxDelay = time.Second
	}
	if p.Multiplier == 0 {
		p.Multiplier = 2
	}
	if p.Jitter == 0 {
		p.Jitter = 0.5
	} else if p.Jitter < 0 {
		p.Jitter = 0
	}
	if p.Rand == nil {
		p.Rand = defaultRand
	}
	if p.Sleep == nil {
		p.Sleep = SleepCtx
	}
	return p
}

// defaultRand is a mutex-guarded xorshift64*, seeded constantly so retry
// timing is reproducible run to run (the fault injector, not the backoff,
// is the experiment's randomness).
var defaultRand = func() func() float64 {
	var mu sync.Mutex
	state := uint64(0x9e3779b97f4a7c15)
	return func() float64 {
		mu.Lock()
		state ^= state >> 12
		state ^= state << 25
		state ^= state >> 27
		v := state * 0x2545f4914f6cdd1d
		mu.Unlock()
		return float64(v>>11) / (1 << 53)
	}
}()

// SleepCtx sleeps for d or until ctx is done, returning ctx.Err() when
// interrupted.
func SleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// permanentError marks an error that must not be retried.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps err so Retry returns it immediately instead of retrying —
// for terminal conditions like hls.ErrNotFound, where retrying an absent
// broadcast only adds load to a struggling origin.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err was marked with Permanent.
func IsPermanent(err error) bool {
	var pe *permanentError
	return errors.As(err, &pe)
}

// Delay returns the backoff before retry attempt n (n=0 → before the first
// retry), jittered. Exposed so reconnect loops can share the schedule.
func (p Policy) Delay(n int) time.Duration {
	p = p.withDefaults()
	d := float64(p.BaseDelay)
	for i := 0; i < n; i++ {
		d *= p.Multiplier
		if d >= float64(p.MaxDelay) {
			d = float64(p.MaxDelay)
			break
		}
	}
	if d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	if p.Jitter > 0 {
		d *= 1 + p.Jitter*(2*p.Rand()-1)
	}
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}

// Retry runs op until it succeeds, returns a Permanent error, exhausts the
// policy, or ctx is done. The last error is returned, wrapped with the
// attempt count when the budget ran out.
func Retry(ctx context.Context, p Policy, op func(ctx context.Context) error) error {
	p = p.withDefaults()
	var lastErr error
	for attempt := 0; attempt < p.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		err := op(ctx)
		if err == nil {
			return nil
		}
		var pe *permanentError
		if errors.As(err, &pe) {
			return pe.err
		}
		lastErr = err
		// Only the parent context ending stops the loop: a per-attempt
		// deadline expiring inside op (a hung upstream) is exactly the
		// transient condition retries exist for.
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if attempt == p.MaxAttempts-1 {
			break
		}
		if serr := p.Sleep(ctx, p.Delay(attempt)); serr != nil {
			return serr
		}
	}
	return fmt.Errorf("resilience: %d attempts: %w", p.MaxAttempts, lastErr)
}

// RetryValue is Retry for operations returning a value.
func RetryValue[T any](ctx context.Context, p Policy, op func(ctx context.Context) (T, error)) (T, error) {
	var out T
	err := Retry(ctx, p, func(ctx context.Context) error {
		v, err := op(ctx)
		if err == nil {
			out = v
		}
		return err
	})
	return out, err
}
