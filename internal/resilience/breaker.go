package resilience

import (
	"errors"
	"sync"
	"time"
)

// ErrOpen is returned by Breaker.Allow while the circuit is open: the
// upstream has failed repeatedly and callers should fail fast (or serve
// stale) instead of queueing more doomed requests behind it.
var ErrOpen = errors.New("resilience: circuit open")

// BreakerState is the classic three-state circuit model.
type BreakerState int

// Breaker states.
const (
	Closed BreakerState = iota
	Open
	HalfOpen
)

// String implements fmt.Stringer.
func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// BreakerConfig tunes a Breaker. The zero value opens after 5 consecutive
// failures and probes again after 1 s.
type BreakerConfig struct {
	// FailureThreshold is the consecutive-failure count that opens the
	// circuit. Zero means 5.
	FailureThreshold int
	// OpenFor is how long the circuit stays open before a half-open
	// probe is admitted. Zero means 1 s.
	OpenFor time.Duration
	// Now is the clock; nil means time.Now. Tests inject a fake.
	Now func() time.Time
}

// Breaker is a concurrency-safe circuit breaker guarding one upstream.
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    BreakerState
	failures int
	openedAt time.Time
	probing  bool
	opens    int64
}

// NewBreaker builds a Breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.FailureThreshold == 0 {
		cfg.FailureThreshold = 5
	}
	if cfg.OpenFor == 0 {
		cfg.OpenFor = time.Second
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Breaker{cfg: cfg}
}

// State returns the current state (advancing open→half-open on timeout).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.advanceLocked()
	return b.state
}

// Opens returns how many times the circuit has opened.
func (b *Breaker) Opens() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}

func (b *Breaker) advanceLocked() {
	if b.state == Open && b.cfg.Now().Sub(b.openedAt) >= b.cfg.OpenFor {
		b.state = HalfOpen
		b.probing = false
	}
}

// Allow reports whether a request may proceed. In half-open state exactly
// one probe is admitted at a time; its Report decides the next state.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.advanceLocked()
	switch b.state {
	case Open:
		return ErrOpen
	case HalfOpen:
		if b.probing {
			return ErrOpen
		}
		b.probing = true
	}
	return nil
}

// Report records the outcome of a request admitted by Allow.
func (b *Breaker) Report(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err == nil {
		b.state = Closed
		b.failures = 0
		b.probing = false
		return
	}
	switch b.state {
	case HalfOpen:
		b.trip()
	default:
		b.failures++
		if b.failures >= b.cfg.FailureThreshold {
			b.trip()
		}
	}
}

func (b *Breaker) trip() {
	b.state = Open
	b.openedAt = b.cfg.Now()
	b.failures = 0
	b.probing = false
	b.opens++
}

// Do runs op under the breaker: fail-fast with ErrOpen when open, otherwise
// run and report.
func (b *Breaker) Do(op func() error) error {
	if err := b.Allow(); err != nil {
		return err
	}
	err := op()
	b.Report(err)
	return err
}
