package resilience

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// instant makes a policy that never sleeps on the real clock, recording the
// delays it would have waited.
func instant(p Policy, delays *[]time.Duration) Policy {
	var mu sync.Mutex
	p.Sleep = func(ctx context.Context, d time.Duration) error {
		mu.Lock()
		*delays = append(*delays, d)
		mu.Unlock()
		return ctx.Err()
	}
	return p
}

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	var delays []time.Duration
	p := instant(Policy{MaxAttempts: 5, BaseDelay: time.Millisecond}, &delays)
	calls := 0
	err := Retry(context.Background(), p, func(context.Context) error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	if len(delays) != 2 {
		t.Fatalf("slept %d times, want 2", len(delays))
	}
}

func TestRetryExhaustsBudget(t *testing.T) {
	var delays []time.Duration
	p := instant(Policy{MaxAttempts: 4, BaseDelay: time.Millisecond}, &delays)
	calls := 0
	sentinel := errors.New("still down")
	err := Retry(context.Background(), p, func(context.Context) error {
		calls++
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want wrapped sentinel", err)
	}
	if calls != 4 {
		t.Fatalf("calls = %d, want 4", calls)
	}
}

func TestRetryPermanentStopsImmediately(t *testing.T) {
	var delays []time.Duration
	p := instant(Policy{MaxAttempts: 5}, &delays)
	calls := 0
	sentinel := errors.New("not found")
	err := Retry(context.Background(), p, func(context.Context) error {
		calls++
		return Permanent(sentinel)
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
	if IsPermanent(err) {
		t.Fatal("Permanent wrapper leaked to caller")
	}
}

func TestRetryHonoursContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	p := Policy{MaxAttempts: 10, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond}
	err := Retry(ctx, p, func(context.Context) error {
		calls++
		if calls == 2 {
			cancel()
		}
		return errors.New("transient")
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 2 {
		t.Fatalf("calls = %d, want 2", calls)
	}
}

func TestRetryDelaysGrowExponentiallyAndCap(t *testing.T) {
	p := Policy{
		MaxAttempts: 6,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    50 * time.Millisecond,
		Multiplier:  2,
		Jitter:      -1, // disable for exact schedule
	}
	want := []time.Duration{
		10 * time.Millisecond,
		20 * time.Millisecond,
		40 * time.Millisecond,
		50 * time.Millisecond,
		50 * time.Millisecond,
	}
	for n, w := range want {
		if got := p.Delay(n); got != w {
			t.Fatalf("Delay(%d) = %v, want %v", n, got, w)
		}
	}
}

func TestRetryJitterBounds(t *testing.T) {
	p := Policy{BaseDelay: 100 * time.Millisecond, Jitter: 0.5}
	for i := 0; i < 100; i++ {
		d := p.Delay(0)
		if d < 50*time.Millisecond || d > 150*time.Millisecond {
			t.Fatalf("jittered delay %v outside [50ms, 150ms]", d)
		}
	}
}

func TestRetryValue(t *testing.T) {
	var delays []time.Duration
	p := instant(Policy{MaxAttempts: 3}, &delays)
	calls := 0
	v, err := RetryValue(context.Background(), p, func(context.Context) (int, error) {
		calls++
		if calls < 2 {
			return 0, errors.New("transient")
		}
		return 42, nil
	})
	if err != nil || v != 42 {
		t.Fatalf("RetryValue = %d, %v", v, err)
	}
}

func TestBreakerOpensAndRecovers(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBreaker(BreakerConfig{
		FailureThreshold: 3,
		OpenFor:          time.Second,
		Now:              func() time.Time { return now },
	})
	boom := errors.New("boom")
	// Three consecutive failures trip the circuit.
	for i := 0; i < 3; i++ {
		if err := b.Do(func() error { return boom }); !errors.Is(err, boom) {
			t.Fatalf("attempt %d: %v", i, err)
		}
	}
	if b.State() != Open {
		t.Fatalf("state = %v, want open", b.State())
	}
	if err := b.Do(func() error { return nil }); !errors.Is(err, ErrOpen) {
		t.Fatalf("open circuit admitted a call: %v", err)
	}
	if b.Opens() != 1 {
		t.Fatalf("Opens = %d", b.Opens())
	}

	// After the open window a probe is admitted; failure re-opens.
	now = now.Add(time.Second)
	if b.State() != HalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	if err := b.Do(func() error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("probe: %v", err)
	}
	if b.State() != Open {
		t.Fatalf("state after failed probe = %v, want open", b.State())
	}

	// Next window: successful probe closes the circuit.
	now = now.Add(time.Second)
	if err := b.Do(func() error { return nil }); err != nil {
		t.Fatalf("probe: %v", err)
	}
	if b.State() != Closed {
		t.Fatalf("state after good probe = %v, want closed", b.State())
	}
	if err := b.Do(func() error { return nil }); err != nil {
		t.Fatalf("closed circuit refused a call: %v", err)
	}
}

func TestBreakerHalfOpenAdmitsOneProbe(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBreaker(BreakerConfig{
		FailureThreshold: 1,
		OpenFor:          time.Second,
		Now:              func() time.Time { return now },
	})
	b.Do(func() error { return errors.New("boom") })
	now = now.Add(time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("first probe refused: %v", err)
	}
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatal("second concurrent probe admitted")
	}
	b.Report(nil)
	if b.State() != Closed {
		t.Fatalf("state = %v", b.State())
	}
}

func TestBreakerSuccessResetsFailureCount(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailureThreshold: 3})
	boom := errors.New("boom")
	for i := 0; i < 10; i++ {
		b.Do(func() error { return boom })
		b.Do(func() error { return boom })
		b.Do(func() error { return nil }) // resets the streak
	}
	if b.State() != Closed {
		t.Fatalf("interleaved successes still tripped the breaker: %v", b.State())
	}
}

func TestSingleFlightCollapsesConcurrentCalls(t *testing.T) {
	var g Group[int]
	var executions atomic.Int64
	gate := make(chan struct{})
	const n = 50
	var wg sync.WaitGroup
	results := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err, _ := g.Do("key", func() (int, error) {
				executions.Add(1)
				<-gate
				return 7, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	// Let every goroutine reach Do before releasing the one execution.
	for executions.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond)
	close(gate)
	wg.Wait()
	if got := executions.Load(); got != 1 {
		t.Fatalf("executions = %d, want 1", got)
	}
	for i, v := range results {
		if v != 7 {
			t.Fatalf("caller %d got %d", i, v)
		}
	}
}

func TestSingleFlightDistinctKeysRunIndependently(t *testing.T) {
	var g Group[string]
	var wg sync.WaitGroup
	var executions atomic.Int64
	for _, k := range []string{"a", "b", "c"} {
		wg.Add(1)
		go func(k string) {
			defer wg.Done()
			v, err, _ := g.Do(k, func() (string, error) {
				executions.Add(1)
				return k, nil
			})
			if err != nil || v != k {
				t.Errorf("Do(%q) = %q, %v", k, v, err)
			}
		}(k)
	}
	wg.Wait()
	if executions.Load() != 3 {
		t.Fatalf("executions = %d, want 3", executions.Load())
	}
}

func TestSingleFlightErrorShared(t *testing.T) {
	var g Group[int]
	boom := errors.New("boom")
	_, err, _ := g.Do("k", func() (int, error) { return 0, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// The key is released after the call: a new Do executes again.
	v, err, _ := g.Do("k", func() (int, error) { return 1, nil })
	if err != nil || v != 1 {
		t.Fatalf("second Do = %d, %v", v, err)
	}
}
