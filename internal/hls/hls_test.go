package hls

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/media"
	"repro/internal/rng"
	"repro/internal/testutil"
)

// memStore is an in-memory Store for tests.
type memStore struct {
	mu     sync.Mutex
	lists  map[string]*media.ChunkList
	chunks map[string]map[uint64]*media.Chunk
}

func newMemStore() *memStore {
	return &memStore{
		lists:  make(map[string]*media.ChunkList),
		chunks: make(map[string]map[uint64]*media.Chunk),
	}
}

func (m *memStore) add(id string, c *media.Chunk) {
	m.mu.Lock()
	defer m.mu.Unlock()
	cl, ok := m.lists[id]
	if !ok {
		cl = &media.ChunkList{BroadcastID: id}
		m.lists[id] = cl
		m.chunks[id] = make(map[uint64]*media.Chunk)
	}
	cl.Append(media.ChunkRef{
		Seq:      c.Seq,
		Duration: c.Duration(),
		URI:      fmt.Sprintf("/hls/%s/chunk/%d", id, c.Seq),
	})
	m.chunks[id][c.Seq] = c
}

func (m *memStore) end(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if cl, ok := m.lists[id]; ok {
		cl.Ended = true
		cl.Version++
	}
}

func (m *memStore) ChunkList(_ context.Context, id string) (*media.ChunkList, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	cl, ok := m.lists[id]
	if !ok {
		return nil, ErrNotFound
	}
	return cl.Clone(), nil
}

func (m *memStore) Chunk(_ context.Context, id string, seq uint64) (*media.Chunk, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.chunks[id][seq]
	if !ok {
		return nil, ErrNotFound
	}
	return c, nil
}

func makeChunks(n int) []*media.Chunk {
	enc := media.NewEncoder(media.EncoderConfig{}, rng.New(5))
	ck := media.NewChunker(time.Second)
	base := time.Now()
	var out []*media.Chunk
	i := 0
	for len(out) < n {
		if c := ck.Add(enc.Next(base.Add(time.Duration(i) * media.FrameDuration))); c != nil {
			out = append(out, c)
		}
		i++
	}
	return out
}

func startHLS(t *testing.T) (*memStore, *Client) {
	t.Helper()
	store := newMemStore()
	srv := httptest.NewServer(Handler("/hls", store))
	t.Cleanup(srv.Close)
	return store, &Client{BaseURL: srv.URL + "/hls"}
}

func TestFetchChunkListAndChunk(t *testing.T) {
	testutil.CheckGoroutines(t)
	store, client := startHLS(t)
	chunks := makeChunks(3)
	for _, c := range chunks {
		store.add("b1", c)
	}
	ctx := context.Background()
	cl, err := client.FetchChunkList(ctx, "b1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cl.Chunks) != 3 || cl.Version != 3 {
		t.Fatalf("chunklist = %+v", cl)
	}
	got, err := client.FetchChunk(ctx, "b1", 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 1 || len(got.Frames) != len(chunks[1].Frames) {
		t.Fatalf("chunk roundtrip mismatch: %+v", got.Seq)
	}
}

func TestFetchNotFound(t *testing.T) {
	_, client := startHLS(t)
	ctx := context.Background()
	if _, err := client.FetchChunkList(ctx, "missing", 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("chunklist err = %v", err)
	}
	if _, err := client.FetchChunk(ctx, "missing", 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("chunk err = %v", err)
	}
}

func TestConditionalFetch(t *testing.T) {
	store, client := startHLS(t)
	store.add("b1", makeChunks(1)[0])
	ctx := context.Background()
	cl, err := client.FetchChunkList(ctx, "b1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.FetchChunkList(ctx, "b1", cl.Version); !errors.Is(err, ErrNotModified) {
		t.Fatalf("conditional fetch err = %v, want ErrNotModified", err)
	}
	// A stale version still gets the full list.
	if _, err := client.FetchChunkList(ctx, "b1", cl.Version+100); err != nil {
		t.Fatalf("mismatched version fetch err = %v", err)
	}
}

func TestHandlerRejectsBadRequests(t *testing.T) {
	store := newMemStore()
	srv := httptest.NewServer(Handler("/hls", store))
	defer srv.Close()
	cases := []struct {
		method, path string
		want         int
	}{
		{http.MethodPost, "/hls/b1/chunklist.m3u8", http.StatusMethodNotAllowed},
		{http.MethodGet, "/other/b1/chunklist.m3u8", http.StatusNotFound},
		{http.MethodGet, "/hls/b1/chunk/notanumber", http.StatusBadRequest},
		{http.MethodGet, "/hls/b1/bogus", http.StatusNotFound},
		{http.MethodGet, "/hls/b1/chunk/1/extra", http.StatusNotFound},
	}
	for _, tc := range cases {
		req, _ := http.NewRequest(tc.method, srv.URL+tc.path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Fatalf("%s %s = %d, want %d", tc.method, tc.path, resp.StatusCode, tc.want)
		}
	}
}

func TestPollReceivesChunksInOrder(t *testing.T) {
	testutil.CheckGoroutines(t)
	store, client := startHLS(t)
	chunks := makeChunks(5)
	store.add("b1", chunks[0])

	var mu sync.Mutex
	var seqs []uint64
	done := make(chan error, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	go func() {
		done <- client.Poll(ctx, "b1", PollerConfig{
			Interval: 10 * time.Millisecond,
			OnChunk: func(ev ChunkEvent) {
				mu.Lock()
				seqs = append(seqs, ev.Ref.Seq)
				mu.Unlock()
				if ev.Chunk == nil {
					t.Error("missing chunk data")
				}
				if ev.PolledAt.After(ev.ListFetchedAt) || ev.ListFetchedAt.After(ev.FetchedAt) {
					t.Error("timestamps out of order")
				}
			},
		})
	}()

	for _, c := range chunks[1:] {
		time.Sleep(25 * time.Millisecond)
		store.add("b1", c)
	}
	time.Sleep(25 * time.Millisecond)
	store.end("b1")

	if err := <-done; err != nil {
		t.Fatalf("Poll returned %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seqs) != 5 {
		t.Fatalf("observed %d chunks, want 5: %v", len(seqs), seqs)
	}
	for i, s := range seqs {
		if s != uint64(i) {
			t.Fatalf("chunks out of order: %v", seqs)
		}
	}
}

func TestPollEndCallback(t *testing.T) {
	testutil.CheckGoroutines(t)
	store, client := startHLS(t)
	store.add("b1", makeChunks(1)[0])
	store.end("b1")
	ended := false
	err := client.Poll(context.Background(), "b1", PollerConfig{
		Interval: 5 * time.Millisecond,
		ListOnly: true,
		OnEnd:    func() { ended = true },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ended {
		t.Fatal("OnEnd not called")
	}
}

func TestPollUnknownBroadcast(t *testing.T) {
	_, client := startHLS(t)
	err := client.Poll(context.Background(), "missing", PollerConfig{Interval: time.Millisecond})
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("Poll err = %v, want ErrNotFound", err)
	}
}

func TestPollContextCancel(t *testing.T) {
	testutil.CheckGoroutines(t)
	store, client := startHLS(t)
	store.add("b1", makeChunks(1)[0])
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	err := client.Poll(ctx, "b1", PollerConfig{Interval: 5 * time.Millisecond, ListOnly: true})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Poll err = %v, want context.Canceled", err)
	}
}

func TestPollListOnlySkipsDownloads(t *testing.T) {
	testutil.CheckGoroutines(t)
	store, client := startHLS(t)
	store.add("b1", makeChunks(1)[0])
	store.end("b1")
	err := client.Poll(context.Background(), "b1", PollerConfig{
		Interval: time.Millisecond,
		ListOnly: true,
		OnChunk: func(ev ChunkEvent) {
			if ev.Chunk != nil {
				t.Error("list-only poll downloaded a chunk")
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
}
