package hls

import (
	"context"

	"repro/internal/media"
)

// RemoteStore adapts a Client to the Store interface, letting an edge cache
// pull from an origin (or a gateway edge) over real HTTP instead of
// in-process calls — the deployment shape of the actual Wowza→Fastly path.
type RemoteStore struct {
	Client *Client
}

// ChunkList implements Store.
func (r RemoteStore) ChunkList(ctx context.Context, broadcastID string) (*media.ChunkList, error) {
	return r.Client.FetchChunkList(ctx, broadcastID, 0)
}

// Chunk implements Store.
func (r RemoteStore) Chunk(ctx context.Context, broadcastID string, seq uint64) (*media.Chunk, error) {
	return r.Client.FetchChunk(ctx, broadcastID, seq)
}
