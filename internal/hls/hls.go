// Package hls implements the HLS-like half of the delivery path (§4.1):
// chunklists served over HTTP, binary chunk downloads, and the viewer-side
// periodic poller. HLS trades latency for scalability — viewers poll instead
// of holding per-viewer server state, which is why Periscope routes every
// viewer beyond the first ~100 here.
package hls

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/media"
	"repro/internal/resilience"
)

// ErrNotFound is returned by stores for unknown broadcasts or chunks.
var ErrNotFound = errors.New("hls: not found")

// Store supplies chunklists and chunks for serving. Implementations are the
// CDN origin (authoritative) and edge caches.
type Store interface {
	// ChunkList returns the current chunklist for a broadcast.
	ChunkList(ctx context.Context, broadcastID string) (*media.ChunkList, error)
	// Chunk returns one chunk of a broadcast.
	Chunk(ctx context.Context, broadcastID string, seq uint64) (*media.Chunk, error)
}

// VersionHeader carries the chunklist version so pollers and edges can
// detect staleness without parsing.
const VersionHeader = "X-Chunklist-Version"

// Handler serves the HLS HTTP surface over a Store:
//
//	GET {prefix}/{broadcastID}/chunklist.m3u8
//	GET {prefix}/{broadcastID}/chunk/{seq}
//
// The prefix must not end in '/'.
func Handler(prefix string, store Store) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		rest, ok := strings.CutPrefix(r.URL.Path, prefix+"/")
		if !ok {
			http.NotFound(w, r)
			return
		}
		parts := strings.Split(rest, "/")
		switch {
		case len(parts) == 2 && parts[1] == "chunklist.m3u8":
			serveChunkList(w, r, store, parts[0])
		case len(parts) == 3 && parts[1] == "chunk":
			seq, err := strconv.ParseUint(parts[2], 10, 64)
			if err != nil {
				http.Error(w, "bad chunk seq", http.StatusBadRequest)
				return
			}
			serveChunk(w, r, store, parts[0], seq)
		default:
			http.NotFound(w, r)
		}
	})
}

func serveChunkList(w http.ResponseWriter, r *http.Request, store Store, id string) {
	cl, err := store.ChunkList(r.Context(), id)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, ErrNotFound) {
			status = http.StatusNotFound
		}
		http.Error(w, err.Error(), status)
		return
	}
	// Conditional fetch: a poller or edge that already has this version
	// gets an empty 304, the paper's "chunklist not yet expired" case.
	if v := r.URL.Query().Get("have_version"); v != "" {
		if have, err := strconv.ParseUint(v, 10, 64); err == nil && have == cl.Version {
			w.Header().Set(VersionHeader, strconv.FormatUint(cl.Version, 10))
			w.WriteHeader(http.StatusNotModified)
			return
		}
	}
	w.Header().Set("Content-Type", "application/vnd.apple.mpegurl")
	w.Header().Set(VersionHeader, strconv.FormatUint(cl.Version, 10))
	w.Write(cl.Marshal())
}

func serveChunk(w http.ResponseWriter, r *http.Request, store Store, id string, seq uint64) {
	c, err := store.Chunk(r.Context(), id, seq)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, ErrNotFound) {
			status = http.StatusNotFound
		}
		http.Error(w, err.Error(), status)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(media.MarshalChunk(c))
}

// Client fetches chunklists and chunks from an HLS server.
type Client struct {
	// BaseURL is the server root including prefix, e.g.
	// "http://edge1:8080/hls".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// Timeout bounds each request as a per-attempt deadline (default
	// 10 s), so a hung origin can no longer block a viewer poll forever.
	Timeout time.Duration
	// Retry bounds transient-failure retries per fetch with jittered
	// backoff; the zero value makes 3 attempts. MaxAttempts 1 disables
	// retries.
	Retry resilience.Policy
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return 10 * time.Second
}

// ErrNotModified reports a conditional chunklist fetch that matched.
var ErrNotModified = errors.New("hls: chunklist not modified")

// FetchChunkList downloads the playlist, retrying transient failures with
// backoff under a per-attempt deadline. If haveVersion is non-zero it is
// sent as a conditional and ErrNotModified is returned on a match.
func (c *Client) FetchChunkList(ctx context.Context, broadcastID string, haveVersion uint64) (*media.ChunkList, error) {
	url := fmt.Sprintf("%s/%s/chunklist.m3u8", c.BaseURL, broadcastID)
	if haveVersion != 0 {
		url += "?have_version=" + strconv.FormatUint(haveVersion, 10)
	}
	return resilience.RetryValue(ctx, c.Retry, func(ctx context.Context) (*media.ChunkList, error) {
		ctx, cancel := context.WithTimeout(ctx, c.timeout())
		defer cancel()
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return nil, resilience.Permanent(err)
		}
		resp, err := c.http().Do(req)
		if err != nil {
			return nil, fmt.Errorf("hls: fetch chunklist: %w", err)
		}
		defer resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
		case http.StatusNotModified:
			return nil, resilience.Permanent(ErrNotModified)
		case http.StatusNotFound:
			return nil, resilience.Permanent(ErrNotFound)
		default:
			return nil, fmt.Errorf("hls: chunklist status %d", resp.StatusCode)
		}
		data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		if err != nil {
			// A truncated body (dropped edge connection) is transient.
			return nil, fmt.Errorf("hls: chunklist body: %w", err)
		}
		return media.ParseChunkList(data)
	})
}

// FetchChunk downloads one chunk, retrying transient failures with backoff
// under a per-attempt deadline.
func (c *Client) FetchChunk(ctx context.Context, broadcastID string, seq uint64) (*media.Chunk, error) {
	url := fmt.Sprintf("%s/%s/chunk/%d", c.BaseURL, broadcastID, seq)
	return resilience.RetryValue(ctx, c.Retry, func(ctx context.Context) (*media.Chunk, error) {
		ctx, cancel := context.WithTimeout(ctx, c.timeout())
		defer cancel()
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return nil, resilience.Permanent(err)
		}
		resp, err := c.http().Do(req)
		if err != nil {
			return nil, fmt.Errorf("hls: fetch chunk: %w", err)
		}
		defer resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
		case http.StatusNotFound:
			return nil, resilience.Permanent(ErrNotFound)
		default:
			return nil, fmt.Errorf("hls: chunk status %d", resp.StatusCode)
		}
		data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
		if err != nil {
			return nil, fmt.Errorf("hls: chunk body: %w", err)
		}
		return media.UnmarshalChunk(data)
	})
}

// ChunkEvent describes one newly observed chunk, with the timestamps the
// paper's measurement methodology records (§4.3).
type ChunkEvent struct {
	Ref media.ChunkRef
	// Chunk is the downloaded data (nil when the poller runs list-only).
	Chunk *media.Chunk
	// PolledAt is when the poll that discovered the chunk was issued (⑨/⑭).
	PolledAt time.Time
	// ListFetchedAt is when the updated chunklist arrived.
	ListFetchedAt time.Time
	// FetchedAt is when the chunk download finished (⑫/⑮).
	FetchedAt time.Time
}

// PollerConfig tunes a Poller.
type PollerConfig struct {
	// Interval between chunklist polls. Periscope clients use 2–2.8 s
	// (§5.2); the paper's measurement crawler uses 100 ms.
	Interval time.Duration
	// ListOnly skips chunk downloads (crawler mode measuring only
	// chunklist freshness).
	ListOnly bool
	// OnChunk receives every newly observed chunk in order.
	OnChunk func(ev ChunkEvent)
	// OnEnd fires once when the playlist carries the end marker.
	OnEnd func()
}

// Poll runs the periodic polling loop until the broadcast ends or ctx is
// done. It returns nil on a clean end-of-broadcast.
func (c *Client) Poll(ctx context.Context, broadcastID string, cfg PollerConfig) error {
	if cfg.Interval <= 0 {
		cfg.Interval = 2 * time.Second
	}
	var lastSeq uint64
	var haveAny bool
	var version uint64
	ticker := time.NewTicker(cfg.Interval)
	defer ticker.Stop()
	for {
		polledAt := time.Now()
		cl, err := c.FetchChunkList(ctx, broadcastID, version)
		switch {
		case err == nil:
			listAt := time.Now()
			version = cl.Version
			for _, ref := range cl.Chunks {
				if haveAny && ref.Seq <= lastSeq {
					continue
				}
				ev := ChunkEvent{Ref: ref, PolledAt: polledAt, ListFetchedAt: listAt}
				if !cfg.ListOnly {
					chunk, err := c.FetchChunk(ctx, broadcastID, ref.Seq)
					if err != nil {
						if ctx.Err() != nil {
							return ctx.Err()
						}
						continue
					}
					ev.Chunk = chunk
					ev.FetchedAt = time.Now()
				} else {
					ev.FetchedAt = listAt
				}
				lastSeq, haveAny = ref.Seq, true
				if cfg.OnChunk != nil {
					cfg.OnChunk(ev)
				}
			}
			if cl.Ended {
				if cfg.OnEnd != nil {
					cfg.OnEnd()
				}
				return nil
			}
		case errors.Is(err, ErrNotModified):
			// Nothing new; poll again next tick.
		case errors.Is(err, ErrNotFound):
			return err
		default:
			if ctx.Err() != nil {
				return ctx.Err()
			}
			// Transient error: keep polling.
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
		}
	}
}
