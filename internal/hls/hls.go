// Package hls implements the HLS-like half of the delivery path (§4.1):
// chunklists served over HTTP, binary chunk downloads, and the viewer-side
// periodic poller. HLS trades latency for scalability — viewers poll instead
// of holding per-viewer server state, which is why Periscope routes every
// viewer beyond the first ~100 here.
package hls

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/media"
	"repro/internal/metrics"
	"repro/internal/resilience"
)

// ErrNotFound is returned by stores for unknown broadcasts or chunks.
var ErrNotFound = errors.New("hls: not found")

// ErrOverloaded reports that the server shed the request (HTTP 503/429) —
// the admission-control answer an edge over its inflight cap gives instead
// of queueing unboundedly. Clients treat it as a failover trigger.
var ErrOverloaded = errors.New("hls: overloaded")

// OverloadedError carries the server's Retry-After hint alongside
// ErrOverloaded; errors.Is(err, ErrOverloaded) matches it.
type OverloadedError struct {
	// RetryAfter is how long the server asked us to back off; zero when
	// the response carried no (parsable) Retry-After header.
	RetryAfter time.Duration
}

// Error implements error.
func (e *OverloadedError) Error() string {
	if e.RetryAfter > 0 {
		return fmt.Sprintf("hls: overloaded (retry after %s)", e.RetryAfter)
	}
	return "hls: overloaded"
}

// Is matches ErrOverloaded.
func (e *OverloadedError) Is(target error) bool { return target == ErrOverloaded }

// Drainer is implemented by stores that can be gracefully drained. While
// draining, the Handler stamps every response with DrainingHeader so
// attached viewers migrate to a sibling edge before shutdown.
type Drainer interface {
	Draining() bool
}

// DrainingHeader marks responses from a draining edge.
const DrainingHeader = "X-Edge-Draining"

// RetryAfterHeader is the standard backoff hint on 503/429 responses.
const RetryAfterHeader = "Retry-After"

// Store supplies chunklists and chunks for serving. Implementations are the
// CDN origin (authoritative) and edge caches.
type Store interface {
	// ChunkList returns the current chunklist for a broadcast.
	ChunkList(ctx context.Context, broadcastID string) (*media.ChunkList, error)
	// Chunk returns one chunk of a broadcast.
	Chunk(ctx context.Context, broadcastID string, seq uint64) (*media.Chunk, error)
}

// RawChunkList is a pre-marshalled chunklist: the m3u8 bytes plus the
// version the HTTP surface needs without parsing them back. Data is shared
// with the store's cache and must not be modified.
type RawChunkList struct {
	Version uint64
	Data    []byte
}

// RawLister is an optional Store extension. Stores that cache the marshalled
// chunklist implement it so the handler answers polls without re-serializing
// the playlist on every request.
type RawLister interface {
	ChunkListRaw(ctx context.Context, broadcastID string) (RawChunkList, error)
}

// VersionHeader carries the chunklist version so pollers and edges can
// detect staleness without parsing.
const VersionHeader = "X-Chunklist-Version"

// contentTypeM3U8 is the chunklist Content-Type as a ready-made header
// value: assigning it directly (the key is already canonical) spares
// serveChunkList the []string http.Header.Set builds on every poll.
var contentTypeM3U8 = []string{"application/vnd.apple.mpegurl"}

// Handler serves the HLS HTTP surface over a Store:
//
//	GET {prefix}/{broadcastID}/chunklist.m3u8
//	GET {prefix}/{broadcastID}/chunk/{seq}
//
// The prefix must not end in '/'.
func Handler(prefix string, store Store) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		if d, ok := store.(Drainer); ok && d.Draining() {
			w.Header().Set(DrainingHeader, "1")
		}
		rest, ok := strings.CutPrefix(r.URL.Path, prefix+"/")
		if !ok {
			http.NotFound(w, r)
			return
		}
		parts := strings.Split(rest, "/")
		switch {
		case len(parts) == 2 && parts[1] == "chunklist.m3u8":
			serveChunkList(w, r, store, parts[0])
		case len(parts) == 3 && parts[1] == "chunk":
			seq, err := strconv.ParseUint(parts[2], 10, 64)
			if err != nil {
				http.Error(w, "bad chunk seq", http.StatusBadRequest)
				return
			}
			serveChunk(w, r, store, parts[0], seq)
		default:
			http.NotFound(w, r)
		}
	})
}

// writeStoreError maps store errors onto the HTTP surface: not-found → 404,
// shed → 503 + Retry-After (the load-shedding contract viewers key off),
// everything else → 500.
func writeStoreError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, ErrOverloaded):
		status = http.StatusServiceUnavailable
		secs := int64(1)
		var oe *OverloadedError
		if errors.As(err, &oe) {
			secs = int64((oe.RetryAfter + time.Second - 1) / time.Second)
			if secs < 0 {
				secs = 0
			}
		}
		w.Header().Set(RetryAfterHeader, strconv.FormatInt(secs, 10))
	}
	http.Error(w, err.Error(), status)
}

// serveChunkList answers the steady stream of viewer polls — the edge's
// hottest HTTP path (one hit per viewer per chunk interval).
//
//livesim:hotpath
func serveChunkList(w http.ResponseWriter, r *http.Request, store Store, id string) {
	var version uint64
	var marshal func() []byte
	if rl, ok := store.(RawLister); ok {
		// Fast path: the store already holds the marshalled bytes.
		//lint:allow hotpathescape inlined r.Context() fallback is the zero-size context.backgroundCtx; zero bytes allocated
		raw, err := rl.ChunkListRaw(r.Context(), id)
		if err != nil {
			writeStoreError(w, err)
			return
		}
		version = raw.Version
		marshal = func() []byte { return raw.Data }
	} else {
		//lint:allow hotpathescape inlined r.Context() fallback is the zero-size context.backgroundCtx; zero bytes allocated
		cl, err := store.ChunkList(r.Context(), id)
		if err != nil {
			writeStoreError(w, err)
			return
		}
		version = cl.Version
		marshal = cl.Marshal
	}
	// Conditional fetch: a poller or edge that already has this version
	// gets an empty 304, the paper's "chunklist not yet expired" case.
	if v := r.URL.Query().Get("have_version"); v != "" {
		if have, err := strconv.ParseUint(v, 10, 64); err == nil && have == version {
			//lint:allow hotpathescape http.Header stores each value as a fresh []string; one slice per response is inherent to net/http
			w.Header().Set(VersionHeader, strconv.FormatUint(version, 10))
			w.WriteHeader(http.StatusNotModified)
			return
		}
	}
	w.Header()["Content-Type"] = contentTypeM3U8
	//lint:allow hotpathescape http.Header stores each value as a fresh []string; one slice per response is inherent to net/http
	w.Header().Set(VersionHeader, strconv.FormatUint(version, 10))
	w.Write(marshal())
}

func serveChunk(w http.ResponseWriter, r *http.Request, store Store, id string, seq uint64) {
	c, err := store.Chunk(r.Context(), id, seq)
	if err != nil {
		writeStoreError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(media.MarshalChunk(c))
}

// Client fetches chunklists and chunks from an HLS server.
type Client struct {
	// BaseURL is the server root including prefix, e.g.
	// "http://edge1:8080/hls".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// Timeout bounds each request as a per-attempt deadline (default
	// 10 s), so a hung origin can no longer block a viewer poll forever.
	Timeout time.Duration
	// Retry bounds transient-failure retries per fetch with jittered
	// backoff; the zero value makes 3 attempts. MaxAttempts 1 disables
	// retries.
	Retry resilience.Policy
	// RetryAfterCap bounds how long a server's Retry-After hint is honored
	// (default 30 s) so a hostile or buggy header cannot park the client.
	RetryAfterCap time.Duration
	// OnDrainHint, when set, is invoked every time a response carries the
	// edge-draining header — the failover poller uses it to migrate off a
	// draining edge between polls.
	OnDrainHint func()
	// Clock times poll events and the poll interval; nil means the real
	// clock. The trace-driven buffering study (§6) injects clock.Virtual
	// so ChunkEvent timestamps are seed-determined.
	Clock clock.Clock
	// Metrics is the registry the client's poll instruments register in
	// (observed poll gaps, last-mile chunk fetches, pre-buffer fill); nil
	// means a private registry. Set it to the platform registry to fold
	// client-side delay components into the same scrape as the server
	// side.
	Metrics *metrics.Registry

	// metricsOnce guards lazy registration: instruments appear on first
	// poll, so a Client struct literal stays valid with no constructor.
	metricsOnce sync.Once
	m           *clientMetrics
}

// clientMetrics instrument the poll loop with the paper's client-side delay
// components: polling (observed inter-poll gap, §4.3), last-mile (chunk
// transfer to the player, §4.2), and buffering (time to fill the player's
// pre-buffer, §6).
type clientMetrics struct {
	polls        *metrics.Counter
	intervalConf *metrics.Gauge
	polling      *metrics.Histogram
	lastMile     *metrics.Histogram
	buffering    *metrics.Histogram
}

func (c *Client) metrics() *clientMetrics {
	c.metricsOnce.Do(func() {
		reg := c.Metrics
		if reg == nil {
			reg = metrics.NewRegistry()
		}
		c.m = &clientMetrics{
			polls:        reg.Counter("hls_polls_total"),
			intervalConf: reg.Gauge("hls_poll_interval_configured_ms"),
			polling:      reg.Histogram(metrics.DelayPolling, metrics.DelayBuckets),
			lastMile:     reg.Histogram(metrics.DelayLastMile, metrics.DelayBuckets),
			buffering:    reg.Histogram(metrics.DelayBuffering, metrics.DelayBuckets),
		}
	})
	return c.m
}

// clock returns the configured time source, defaulting to the real clock.
func (c *Client) clock() clock.Clock {
	if c.Clock != nil {
		return c.Clock
	}
	return clock.Real{}
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return 10 * time.Second
}

func (c *Client) retryAfterCap() time.Duration {
	if c.RetryAfterCap > 0 {
		return c.RetryAfterCap
	}
	return 30 * time.Second
}

// sleep waits on the retry policy's injected sleeper when set (tests run
// instantly), else the real clock.
func (c *Client) sleep(ctx context.Context, d time.Duration) error {
	if c.Retry.Sleep != nil {
		return c.Retry.Sleep(ctx, d)
	}
	return resilience.SleepCtx(ctx, d)
}

// parseRetryAfter reads a Retry-After header: delta-seconds or an HTTP date
// (interpreted against now, the caller's clock). Returns 0 for absent or
// unparsable values.
func parseRetryAfter(v string, now time.Time) time.Duration {
	if v == "" {
		return 0
	}
	if secs, err := strconv.ParseInt(v, 10, 64); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if at, err := http.ParseTime(v); err == nil {
		if d := at.Sub(now); d > 0 {
			return d
		}
	}
	return 0
}

// shed handles a 503/429 response: honor the server's Retry-After (capped,
// on the retry loop's context — not the expired attempt deadline), then
// report ErrOverloaded so the retry loop or failover poller reacts.
func (c *Client) shed(ctx context.Context, resp *http.Response) error {
	d := parseRetryAfter(resp.Header.Get(RetryAfterHeader), c.clock().Now())
	if wait := min(d, c.retryAfterCap()); wait > 0 {
		if err := c.sleep(ctx, wait); err != nil {
			return resilience.Permanent(err)
		}
	}
	return &OverloadedError{RetryAfter: d}
}

// observe surfaces response-level hints (the drain header) to the session.
func (c *Client) observe(resp *http.Response) {
	if c.OnDrainHint != nil && resp.Header.Get(DrainingHeader) != "" {
		c.OnDrainHint()
	}
}

// ErrNotModified reports a conditional chunklist fetch that matched.
var ErrNotModified = errors.New("hls: chunklist not modified")

// FetchChunkList downloads the playlist, retrying transient failures with
// backoff under a per-attempt deadline. If haveVersion is non-zero it is
// sent as a conditional and ErrNotModified is returned on a match.
func (c *Client) FetchChunkList(ctx context.Context, broadcastID string, haveVersion uint64) (*media.ChunkList, error) {
	url := fmt.Sprintf("%s/%s/chunklist.m3u8", c.BaseURL, broadcastID)
	if haveVersion != 0 {
		url += "?have_version=" + strconv.FormatUint(haveVersion, 10)
	}
	return resilience.RetryValue(ctx, c.Retry, func(ctx context.Context) (*media.ChunkList, error) {
		reqCtx, cancel := context.WithTimeout(ctx, c.timeout())
		defer cancel()
		req, err := http.NewRequestWithContext(reqCtx, http.MethodGet, url, nil)
		if err != nil {
			return nil, resilience.Permanent(err)
		}
		resp, err := c.http().Do(req)
		if err != nil {
			return nil, fmt.Errorf("hls: fetch chunklist: %w", err)
		}
		defer resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			c.observe(resp)
		case http.StatusNotModified:
			c.observe(resp)
			return nil, resilience.Permanent(ErrNotModified)
		case http.StatusNotFound:
			return nil, resilience.Permanent(ErrNotFound)
		case http.StatusServiceUnavailable, http.StatusTooManyRequests:
			return nil, c.shed(ctx, resp)
		default:
			return nil, fmt.Errorf("hls: chunklist status %d", resp.StatusCode)
		}
		data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		if err != nil {
			// A truncated body (dropped edge connection) is transient.
			return nil, fmt.Errorf("hls: chunklist body: %w", err)
		}
		return media.ParseChunkList(data)
	})
}

// FetchChunk downloads one chunk, retrying transient failures with backoff
// under a per-attempt deadline.
func (c *Client) FetchChunk(ctx context.Context, broadcastID string, seq uint64) (*media.Chunk, error) {
	url := fmt.Sprintf("%s/%s/chunk/%d", c.BaseURL, broadcastID, seq)
	return resilience.RetryValue(ctx, c.Retry, func(ctx context.Context) (*media.Chunk, error) {
		reqCtx, cancel := context.WithTimeout(ctx, c.timeout())
		defer cancel()
		req, err := http.NewRequestWithContext(reqCtx, http.MethodGet, url, nil)
		if err != nil {
			return nil, resilience.Permanent(err)
		}
		resp, err := c.http().Do(req)
		if err != nil {
			return nil, fmt.Errorf("hls: fetch chunk: %w", err)
		}
		defer resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			c.observe(resp)
		case http.StatusNotFound:
			return nil, resilience.Permanent(ErrNotFound)
		case http.StatusServiceUnavailable, http.StatusTooManyRequests:
			return nil, c.shed(ctx, resp)
		default:
			return nil, fmt.Errorf("hls: chunk status %d", resp.StatusCode)
		}
		data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
		if err != nil {
			return nil, fmt.Errorf("hls: chunk body: %w", err)
		}
		return media.UnmarshalChunk(data)
	})
}

// ChunkEvent describes one newly observed chunk, with the timestamps the
// paper's measurement methodology records (§4.3).
type ChunkEvent struct {
	Ref media.ChunkRef
	// Chunk is the downloaded data (nil when the poller runs list-only).
	Chunk *media.Chunk
	// PolledAt is when the poll that discovered the chunk was issued (⑨/⑭).
	PolledAt time.Time
	// ListFetchedAt is when the updated chunklist arrived.
	ListFetchedAt time.Time
	// FetchedAt is when the chunk download finished (⑫/⑮).
	FetchedAt time.Time
}

// PollerConfig tunes a Poller.
type PollerConfig struct {
	// Interval between chunklist polls. Periscope clients use 2–2.8 s
	// (§5.2); the paper's measurement crawler uses 100 ms.
	Interval time.Duration
	// ListOnly skips chunk downloads (crawler mode measuring only
	// chunklist freshness).
	ListOnly bool
	// OnChunk receives every newly observed chunk in order.
	OnChunk func(ev ChunkEvent)
	// OnEnd fires once when the playlist carries the end marker.
	OnEnd func()
	// PreBuffer models the player's startup buffer (§6: Periscope's HLS
	// player waits for ~9 s of content, and playback stalls trace back to
	// this fill time). When the cumulative content delivered first reaches
	// PreBuffer, the wall time since the first chunk arrived is observed
	// into the delay_buffering_seconds histogram. Zero disables the
	// observation.
	PreBuffer time.Duration
}

// pollState is the cross-poll viewer position: highest delivered chunk seq
// and last seen chunklist version. The failover poller carries one pollState
// across edges so a migrated session resumes from where it left off — no
// duplicate deliveries, gaps allowed.
type pollState struct {
	lastSeq uint64
	haveAny bool
	version uint64
	// lastPolledAt times the observed inter-poll gap (the paper's polling
	// delay component); zero until the first poll.
	lastPolledAt time.Time
	// buffered / firstFetchAt / bufferObserved drive the one-shot
	// pre-buffer fill observation (PollerConfig.PreBuffer).
	buffered       time.Duration
	firstFetchAt   time.Time
	bufferObserved bool
}

// pollOnce performs one poll: a conditional chunklist fetch followed by
// delivery of every not-yet-seen chunk. A matched conditional (nothing new)
// is a successful no-op poll. It reports whether the end marker was seen.
func (c *Client) pollOnce(ctx context.Context, broadcastID string, cfg *PollerConfig, st *pollState) (ended bool, err error) {
	m := c.metrics()
	polledAt := c.clock().Now()
	m.polls.Inc()
	if !st.lastPolledAt.IsZero() {
		// The observed poll gap — what the paper calls the polling delay
		// component (§4.3): a fresh chunk waits on average half this gap
		// before any client learns of it.
		m.polling.Observe(polledAt.Sub(st.lastPolledAt))
	}
	st.lastPolledAt = polledAt
	cl, err := c.FetchChunkList(ctx, broadcastID, st.version)
	if err != nil {
		if errors.Is(err, ErrNotModified) {
			return false, nil
		}
		return false, err
	}
	listAt := c.clock().Now()
	st.version = cl.Version
	for _, ref := range cl.Chunks {
		if st.haveAny && ref.Seq <= st.lastSeq {
			continue
		}
		ev := ChunkEvent{Ref: ref, PolledAt: polledAt, ListFetchedAt: listAt}
		if !cfg.ListOnly {
			fetchStart := c.clock().Now()
			chunk, err := c.FetchChunk(ctx, broadcastID, ref.Seq)
			if err != nil {
				if ctx.Err() != nil {
					return false, ctx.Err()
				}
				continue
			}
			ev.Chunk = chunk
			ev.FetchedAt = c.clock().Now()
			// Last-mile: edge→player transfer for this chunk.
			m.lastMile.Observe(ev.FetchedAt.Sub(fetchStart))
		} else {
			ev.FetchedAt = listAt
		}
		st.lastSeq, st.haveAny = ref.Seq, true
		if cfg.PreBuffer > 0 && !st.bufferObserved {
			if st.firstFetchAt.IsZero() {
				st.firstFetchAt = ev.FetchedAt
			}
			st.buffered += ref.Duration
			if st.buffered >= cfg.PreBuffer {
				st.bufferObserved = true
				m.buffering.Observe(ev.FetchedAt.Sub(st.firstFetchAt))
			}
		}
		if cfg.OnChunk != nil {
			cfg.OnChunk(ev)
		}
	}
	if cl.Ended {
		if cfg.OnEnd != nil {
			cfg.OnEnd()
		}
		return true, nil
	}
	return false, nil
}

// Poll runs the periodic polling loop until the broadcast ends or ctx is
// done. It returns nil on a clean end-of-broadcast.
func (c *Client) Poll(ctx context.Context, broadcastID string, cfg PollerConfig) error {
	if cfg.Interval <= 0 {
		cfg.Interval = 2 * time.Second
	}
	// Configured interval sits next to the observed-gap histogram so a
	// scrape can read configured vs. observed directly (§5.2's 2–2.8 s).
	c.metrics().intervalConf.Set(int64(cfg.Interval / time.Millisecond))
	var st pollState
	clk := c.clock()
	for {
		ended, err := c.pollOnce(ctx, broadcastID, &cfg, &st)
		switch {
		case err == nil:
			if ended {
				return nil
			}
		case errors.Is(err, ErrNotFound):
			return err
		default:
			if ctx.Err() != nil {
				return ctx.Err()
			}
			// Transient error: keep polling.
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-clk.After(cfg.Interval):
		}
	}
}
