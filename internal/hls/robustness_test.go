package hls

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/media"
	"repro/internal/resilience"
	"repro/internal/testutil"
)

// sleepRecorder captures the durations a client was told to sleep without
// actually sleeping, so Retry-After handling is observable and instant.
type sleepRecorder struct {
	mu     sync.Mutex
	sleeps []time.Duration
}

func (r *sleepRecorder) sleep(_ context.Context, d time.Duration) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sleeps = append(r.sleeps, d)
	return nil
}

func (r *sleepRecorder) all() []time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]time.Duration(nil), r.sleeps...)
}

func instantRetry(rec *sleepRecorder) resilience.Policy {
	return resilience.Policy{BaseDelay: time.Millisecond, MaxDelay: time.Millisecond, Sleep: rec.sleep}
}

// shedOnce wraps a handler, answering the first n requests with 503 +
// Retry-After before letting traffic through.
func shedOnce(h http.Handler, n int, retryAfter string) http.Handler {
	var served atomic.Int64
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if served.Add(1) <= int64(n) {
			w.Header().Set(RetryAfterHeader, retryAfter)
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		h.ServeHTTP(w, r)
	})
}

func TestClientHonorsRetryAfterOn503(t *testing.T) {
	store := newMemStore()
	for _, c := range makeChunks(2) {
		store.add("b1", c)
	}
	srv := httptest.NewServer(shedOnce(Handler("/hls", store), 1, "2"))
	defer srv.Close()

	rec := &sleepRecorder{}
	client := &Client{BaseURL: srv.URL + "/hls", Retry: instantRetry(rec)}
	cl, err := client.FetchChunkList(context.Background(), "b1", 0)
	if err != nil {
		t.Fatalf("FetchChunkList after shed = %v, want success on retry", err)
	}
	if len(cl.Chunks) != 2 {
		t.Fatalf("chunks = %d, want 2", len(cl.Chunks))
	}
	var sawHint bool
	for _, d := range rec.all() {
		if d == 2*time.Second {
			sawHint = true
		}
	}
	if !sawHint {
		t.Fatalf("sleeps = %v, want a 2s Retry-After honor", rec.all())
	}
}

func TestClientHonorsRetryAfterHTTPDateAnd429(t *testing.T) {
	store := newMemStore()
	for _, c := range makeChunks(1) {
		store.add("b1", c)
	}
	date := time.Now().Add(3 * time.Second).UTC().Format(http.TimeFormat)
	var served atomic.Int64
	inner := Handler("/hls", store)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if served.Add(1) == 1 {
			w.Header().Set(RetryAfterHeader, date)
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	rec := &sleepRecorder{}
	client := &Client{BaseURL: srv.URL + "/hls", Retry: instantRetry(rec)}
	if _, err := client.FetchChunkList(context.Background(), "b1", 0); err != nil {
		t.Fatalf("FetchChunkList = %v", err)
	}
	var sawDate bool
	for _, d := range rec.all() {
		// The date is ~3s out; clock skew between formatting and parsing
		// makes the exact value fuzzy.
		if d > time.Second && d <= 3*time.Second {
			sawDate = true
		}
	}
	if !sawDate {
		t.Fatalf("sleeps = %v, want ~3s from HTTP-date Retry-After", rec.all())
	}
}

func TestClientCapsHostileRetryAfter(t *testing.T) {
	store := newMemStore()
	for _, c := range makeChunks(1) {
		store.add("b1", c)
	}
	srv := httptest.NewServer(shedOnce(Handler("/hls", store), 1, "86400"))
	defer srv.Close()

	rec := &sleepRecorder{}
	client := &Client{
		BaseURL:       srv.URL + "/hls",
		Retry:         instantRetry(rec),
		RetryAfterCap: 4 * time.Second,
	}
	if _, err := client.FetchChunkList(context.Background(), "b1", 0); err != nil {
		t.Fatalf("FetchChunkList = %v", err)
	}
	for _, d := range rec.all() {
		if d > 4*time.Second {
			t.Fatalf("slept %v, want Retry-After capped at 4s", d)
		}
	}
}

func TestShedIsTerminalWhenPersistent(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(RetryAfterHeader, "1")
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	rec := &sleepRecorder{}
	client := &Client{BaseURL: srv.URL + "/hls", Retry: instantRetry(rec)}
	_, err := client.FetchChunkList(context.Background(), "b1", 0)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	var oe *OverloadedError
	if !errors.As(err, &oe) || oe.RetryAfter != time.Second {
		t.Fatalf("err = %#v, want OverloadedError carrying the 1s hint", err)
	}
}

// overloadedStore makes the handler side of shedding observable: every call
// reports an OverloadedError, which must surface as 503 + Retry-After.
type overloadedStore struct{ retryAfter time.Duration }

func (s *overloadedStore) ChunkList(context.Context, string) (*media.ChunkList, error) {
	return nil, &OverloadedError{RetryAfter: s.retryAfter}
}

func (s *overloadedStore) Chunk(context.Context, string, uint64) (*media.Chunk, error) {
	return nil, &OverloadedError{RetryAfter: s.retryAfter}
}

func TestHandlerMapsOverloadTo503RetryAfter(t *testing.T) {
	srv := httptest.NewServer(Handler("/hls", &overloadedStore{retryAfter: 2500 * time.Millisecond}))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/hls/b1/chunklist.m3u8")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	// 2.5s must round up: a client sleeping 2s would come back early.
	if got := resp.Header.Get(RetryAfterHeader); got != "3" {
		t.Fatalf("Retry-After = %q, want %q", got, "3")
	}
}

// drainingStore flags itself as draining so the handler decorates responses.
type drainingStore struct {
	Store
	draining atomic.Bool
}

func (s *drainingStore) Draining() bool { return s.draining.Load() }

func TestHandlerSetsDrainHeaderAndClientFiresHint(t *testing.T) {
	mem := newMemStore()
	for _, c := range makeChunks(2) {
		mem.add("b1", c)
	}
	ds := &drainingStore{Store: mem}
	srv := httptest.NewServer(Handler("/hls", ds))
	defer srv.Close()

	var hints atomic.Int64
	client := &Client{BaseURL: srv.URL + "/hls", OnDrainHint: func() { hints.Add(1) }}
	if _, err := client.FetchChunkList(context.Background(), "b1", 0); err != nil {
		t.Fatal(err)
	}
	if hints.Load() != 0 {
		t.Fatalf("drain hint fired while not draining")
	}
	ds.draining.Store(true)
	if _, err := client.FetchChunkList(context.Background(), "b1", 0); err != nil {
		t.Fatal(err)
	}
	if hints.Load() == 0 {
		t.Fatalf("drain hint never fired on a draining edge")
	}
}

// edgePair spins up two HLS servers over one shared store — stand-ins for
// sibling edges caching the same broadcast — plus a resolver that hands out
// whichever is currently preferred.
type edgePair struct {
	store    *memStore
	a, b     *httptest.Server
	preferB  atomic.Bool
	resolves atomic.Int64
}

func newEdgePair(t *testing.T, wrapA func(http.Handler) http.Handler) *edgePair {
	t.Helper()
	p := &edgePair{store: newMemStore()}
	ha := http.Handler(Handler("/hls", p.store))
	if wrapA != nil {
		ha = wrapA(ha)
	}
	p.a = httptest.NewServer(ha)
	p.b = httptest.NewServer(Handler("/hls", p.store))
	t.Cleanup(p.a.Close)
	t.Cleanup(p.b.Close)
	return p
}

func (p *edgePair) resolve(context.Context) (string, error) {
	p.resolves.Add(1)
	if p.preferB.Load() {
		return p.b.URL + "/hls", nil
	}
	return p.a.URL + "/hls", nil
}

func fastFailoverCfg(p *edgePair, onChunk func(ChunkEvent)) FailoverConfig {
	return FailoverConfig{
		Resolve: p.resolve,
		NewClient: func(baseURL string) *Client {
			return &Client{
				BaseURL: baseURL,
				Retry:   resilience.Policy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond},
			}
		},
		Poller:  PollerConfig{Interval: 5 * time.Millisecond, OnChunk: onChunk},
		Backoff: resilience.Policy{BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond},
	}
}

func TestFailoverPollerResumesOnSiblingEdge(t *testing.T) {
	testutil.CheckGoroutines(t)
	// Edge A starts healthy, then turns into a hard 500 — the viewer must
	// migrate to edge B and resume from the last delivered sequence.
	var broken atomic.Bool
	p := newEdgePair(t, func(h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if broken.Load() {
				http.Error(w, "edge down", http.StatusInternalServerError)
				return
			}
			h.ServeHTTP(w, r)
		})
	})
	chunks := makeChunks(10)
	for _, c := range chunks[:4] {
		p.store.add("b1", c)
	}

	var mu sync.Mutex
	var seqs []uint64
	fp := NewFailoverPoller("b1", fastFailoverCfg(p, func(ev ChunkEvent) {
		mu.Lock()
		seqs = append(seqs, ev.Ref.Seq)
		n := len(seqs)
		mu.Unlock()
		if n == 3 {
			broken.Store(true)
			p.preferB.Store(true)
		}
	}))

	done := make(chan error, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	go func() { done <- fp.Run(ctx) }()

	// Keep feeding the shared store while the viewer migrates, then end.
	for _, c := range chunks[4:] {
		time.Sleep(10 * time.Millisecond)
		p.store.add("b1", c)
	}
	time.Sleep(20 * time.Millisecond)
	p.store.end("b1")

	if err := <-done; err != nil {
		t.Fatalf("Run = %v, want clean end after failover", err)
	}
	if fp.Failovers() < 1 {
		t.Fatalf("Failovers = %d, want ≥ 1", fp.Failovers())
	}
	if fp.BaseURL() != p.b.URL+"/hls" {
		t.Fatalf("BaseURL = %q, want the sibling edge %q", fp.BaseURL(), p.b.URL+"/hls")
	}
	mu.Lock()
	defer mu.Unlock()
	for i := 1; i < len(seqs); i++ {
		if seqs[i] <= seqs[i-1] {
			t.Fatalf("seq %d after %d: duplicate or reordered across failover", seqs[i], seqs[i-1])
		}
	}
	// Everything was in the shared store, so no gaps either: full coverage.
	if len(seqs) != len(chunks) {
		t.Fatalf("delivered %d chunks, want %d (seqs=%v)", len(seqs), len(chunks), seqs)
	}
}

func TestFailoverPollerTreatsShedAsFailover(t *testing.T) {
	testutil.CheckGoroutines(t)
	// Edge A sheds every request; the viewer must move to B immediately.
	p := newEdgePair(t, func(http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set(RetryAfterHeader, "0")
			w.WriteHeader(http.StatusServiceUnavailable)
		})
	})
	for _, c := range makeChunks(3) {
		p.store.add("b1", c)
	}
	p.store.end("b1")

	var got atomic.Int64
	cfg := fastFailoverCfg(p, func(ChunkEvent) { got.Add(1) })
	fp := NewFailoverPoller("b1", cfg)
	// Once A sheds, prefer B on the re-resolve (the control plane would
	// steer new lookups away from an overloaded edge the same way).
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- fp.Run(ctx) }()
	go func() {
		for p.resolves.Load() < 1 {
			time.Sleep(time.Millisecond)
		}
		p.preferB.Store(true)
	}()
	if err := <-done; err != nil {
		t.Fatalf("Run = %v, want clean end via sibling edge", err)
	}
	if fp.Overloads() < 1 {
		t.Fatalf("Overloads = %d, want ≥ 1", fp.Overloads())
	}
	if fp.Failovers() < 1 {
		t.Fatalf("Failovers = %d, want ≥ 1", fp.Failovers())
	}
	if got.Load() != 3 {
		t.Fatalf("chunks delivered = %d, want 3", got.Load())
	}
}

func TestFailoverPollerMigratesOffDrainingEdge(t *testing.T) {
	testutil.CheckGoroutines(t)
	mem := newMemStore()
	ds := &drainingStore{Store: mem}
	p := &edgePair{store: mem}
	p.a = httptest.NewServer(Handler("/hls", ds))
	p.b = httptest.NewServer(Handler("/hls", mem))
	t.Cleanup(p.a.Close)
	t.Cleanup(p.b.Close)

	chunks := makeChunks(6)
	for _, c := range chunks[:2] {
		mem.add("b1", c)
	}

	var mu sync.Mutex
	var seqs []uint64
	fp := NewFailoverPoller("b1", fastFailoverCfg(p, func(ev ChunkEvent) {
		mu.Lock()
		seqs = append(seqs, ev.Ref.Seq)
		n := len(seqs)
		mu.Unlock()
		if n == 2 {
			// Drain edge A; the hint header must push the viewer to B.
			ds.draining.Store(true)
			p.preferB.Store(true)
		}
	}))
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- fp.Run(ctx) }()

	for _, c := range chunks[2:] {
		time.Sleep(10 * time.Millisecond)
		mem.add("b1", c)
	}
	time.Sleep(20 * time.Millisecond)
	mem.end("b1")

	if err := <-done; err != nil {
		t.Fatalf("Run = %v, want clean end after drain migration", err)
	}
	if fp.DrainHints() < 1 {
		t.Fatalf("DrainHints = %d, want ≥ 1", fp.DrainHints())
	}
	if fp.Failovers() < 1 {
		t.Fatalf("Failovers = %d, want ≥ 1 (viewer migrated)", fp.Failovers())
	}
	if fp.BaseURL() != p.b.URL+"/hls" {
		t.Fatalf("BaseURL = %q, want drained viewer on %q", fp.BaseURL(), p.b.URL+"/hls")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seqs) != len(chunks) {
		t.Fatalf("delivered %d chunks, want %d", len(seqs), len(chunks))
	}
}

func TestFailoverPollerGivesUpWhenBroadcastGone(t *testing.T) {
	testutil.CheckGoroutines(t)
	p := newEdgePair(t, nil) // store is empty: every edge 404s
	cfg := fastFailoverCfg(p, nil)
	fp := NewFailoverPoller("missing", cfg)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err := fp.Run(ctx)
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("Run = %v, want ErrNotFound after consecutive edges agree", err)
	}
	// One retry round at most: two edges agreeing is terminal, not budget
	// exhaustion.
	if fp.Failovers() > 2 {
		t.Fatalf("Failovers = %d, want ≤ 2 for a missing broadcast", fp.Failovers())
	}
}

func TestFailoverPollerExhaustsBudget(t *testing.T) {
	testutil.CheckGoroutines(t)
	// Every edge hard-fails; the poller must stop at MaxFailovers and
	// surface the last error rather than looping forever.
	p := newEdgePair(t, nil)
	srvErr := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	})
	p.a.Config.Handler = srvErr
	p.b.Config.Handler = srvErr

	cfg := fastFailoverCfg(p, nil)
	cfg.FailureThreshold = 1
	cfg.MaxFailovers = 2
	fp := NewFailoverPoller("b1", cfg)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err := fp.Run(ctx)
	if err == nil || errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Run = %v, want terminal upstream error within budget", err)
	}
	if fp.Failovers() != 2 {
		t.Fatalf("Failovers = %d, want exactly MaxFailovers=2", fp.Failovers())
	}
}

// TestFailoverPollerRetriesTransientResolve is the regression test for the
// bug where a control-plane resolve failure consumed the failover budget:
// with MaxFailovers=1 and five consecutive resolve failures before the first
// success, the old loop died with "failover budget exhausted" before ever
// reaching an edge. Resolve retries must ride their own capped backoff,
// leave the budget untouched, and count zero failovers.
func TestFailoverPollerRetriesTransientResolve(t *testing.T) {
	testutil.CheckGoroutines(t)
	p := newEdgePair(t, nil)
	for _, c := range makeChunks(3) {
		p.store.add("b1", c)
	}
	p.store.end("b1")

	var calls atomic.Int64
	cfg := fastFailoverCfg(p, nil)
	cfg.MaxFailovers = 1
	cfg.Resolve = func(ctx context.Context) (string, error) {
		if calls.Add(1) <= 5 {
			return "", errors.New("control plane down")
		}
		return p.resolve(ctx)
	}
	fp := NewFailoverPoller("b1", cfg)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := fp.Run(ctx); err != nil {
		t.Fatalf("Run = %v, want clean end despite transient resolve failures", err)
	}
	if fp.Failovers() != 0 {
		t.Fatalf("Failovers = %d, want 0: resolve retries must not consume the budget", fp.Failovers())
	}
	if fp.ResolveRetries() != 5 {
		t.Fatalf("ResolveRetries = %d, want 5", fp.ResolveRetries())
	}
	if fp.LastSeq() == 0 {
		t.Fatal("no chunks delivered")
	}
}

// TestFailoverPollerResolveRetriesAreBounded: with no cached edge and a
// control plane that never answers, the session must stop after
// ResolveRetries attempts — capped backoff, not an infinite loop.
func TestFailoverPollerResolveRetriesAreBounded(t *testing.T) {
	testutil.CheckGoroutines(t)
	p := newEdgePair(t, nil)
	var calls atomic.Int64
	cfg := fastFailoverCfg(p, nil)
	cfg.ResolveRetries = 4
	cfg.Resolve = func(ctx context.Context) (string, error) {
		calls.Add(1)
		return "", errors.New("control plane down")
	}
	fp := NewFailoverPoller("b1", cfg)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := fp.Run(ctx); err == nil || errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Run = %v, want the resolve error after bounded retries", err)
	}
	if got := calls.Load(); got != 4 {
		t.Fatalf("resolve attempts = %d, want exactly ResolveRetries=4", got)
	}
}

// TestFailoverPollerFallsBackToCachedEdgeDuringOutage: a session that has
// already resolved once keeps streaming from its last-known edge when a
// mid-session failover coincides with a control outage.
func TestFailoverPollerFallsBackToCachedEdgeDuringOutage(t *testing.T) {
	testutil.CheckGoroutines(t)
	// Edge A sheds a burst of polls mid-stream (outlasting the client's
	// internal retry budget), forcing a failover round while the control
	// plane is down: the session must fall back to the cached mapping for A
	// and finish the stream there.
	var shed atomic.Int64
	p := newEdgePair(t, func(h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if strings.HasSuffix(r.URL.Path, ".m3u8") && shed.Load() > 0 {
				shed.Add(-1)
				w.Header().Set(RetryAfterHeader, "0")
				w.WriteHeader(http.StatusServiceUnavailable)
				return
			}
			h.ServeHTTP(w, r)
		})
	})
	chunks := makeChunks(6)
	for _, c := range chunks[:3] {
		p.store.add("b1", c)
	}

	var controlDown atomic.Bool
	var mu sync.Mutex
	var seqs []uint64
	cfg := fastFailoverCfg(p, func(ev ChunkEvent) {
		mu.Lock()
		seqs = append(seqs, ev.Ref.Seq)
		n := len(seqs)
		mu.Unlock()
		if n == 2 {
			controlDown.Store(true)
			shed.Store(3)
		}
	})
	inner := cfg.Resolve
	cfg.Resolve = func(ctx context.Context) (string, error) {
		if controlDown.Load() {
			return "", errors.New("control plane down")
		}
		return inner(ctx)
	}
	fp := NewFailoverPoller("b1", cfg)

	done := make(chan error, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	go func() { done <- fp.Run(ctx) }()

	for _, c := range chunks[3:] {
		time.Sleep(10 * time.Millisecond)
		p.store.add("b1", c)
	}
	time.Sleep(20 * time.Millisecond)
	p.store.end("b1")

	if err := <-done; err != nil {
		t.Fatalf("Run = %v, want clean end via cached-edge fallback", err)
	}
	if fp.StaleResolves() < 1 {
		t.Fatalf("StaleResolves = %d, want ≥ 1", fp.StaleResolves())
	}
	if fp.BaseURL() != p.a.URL+"/hls" {
		t.Fatalf("BaseURL = %q, want the cached edge %q", fp.BaseURL(), p.a.URL+"/hls")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seqs) != len(chunks) {
		t.Fatalf("delivered %d chunks, want %d (seqs=%v)", len(seqs), len(chunks), seqs)
	}
}

// TestFailoverPollerStopsOnPermanentResolve: an authoritative rejection from
// a healthy control plane must surface immediately, not retry.
func TestFailoverPollerStopsOnPermanentResolve(t *testing.T) {
	testutil.CheckGoroutines(t)
	terminal := errors.New("no such broadcast")
	var calls atomic.Int64
	fp := NewFailoverPoller("b1", FailoverConfig{
		Resolve: func(ctx context.Context) (string, error) {
			calls.Add(1)
			return "", resilience.Permanent(terminal)
		},
		Backoff: resilience.Policy{BaseDelay: time.Millisecond, MaxDelay: time.Millisecond},
	})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := fp.Run(ctx); !errors.Is(err, terminal) {
		t.Fatalf("Run = %v, want the permanent resolve error", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("resolve attempts = %d, want 1 for a permanent error", calls.Load())
	}
}

// quotaHintErr mimics control.QuotaError over the resolve path: a transient
// rejection carrying a server-computed Retry-After.
type quotaHintErr struct{ hint time.Duration }

func (e *quotaHintErr) Error() string                 { return "quota exceeded" }
func (e *quotaHintErr) RetryAfterHint() time.Duration { return e.hint }

// TestFailoverResolveHonorsRetryAfterHint: a 429 resolve rejection with a
// Retry-After longer than the backoff delay must pace the retry on the
// server's hint — retrying sooner than the quota window reopens is wasted
// load.
func TestFailoverResolveHonorsRetryAfterHint(t *testing.T) {
	var calls atomic.Int64
	fp := NewFailoverPoller("b1", FailoverConfig{
		Resolve: func(ctx context.Context) (string, error) {
			if calls.Add(1) == 1 {
				return "", &quotaHintErr{hint: 60 * time.Millisecond}
			}
			return "http://edge-1/hls", nil
		},
		Backoff: resilience.Policy{BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond},
	})
	start := time.Now()
	url, err := fp.resolveEdge(context.Background())
	if err != nil || url != "http://edge-1/hls" {
		t.Fatalf("resolveEdge = (%q, %v)", url, err)
	}
	if elapsed := time.Since(start); elapsed < 55*time.Millisecond {
		t.Fatalf("retry after %v, want the 60ms Retry-After hint honored", elapsed)
	}
	if calls.Load() != 2 {
		t.Fatalf("resolve attempts = %d, want 2", calls.Load())
	}
}

// TestFailoverResolveHintKeepsSessionCancelable: even a huge hint (a spent
// daily quota) leaves the session responsive to cancellation — the sleep is
// context-bounded, and the hint itself is capped at maxRetryAfterHint.
func TestFailoverResolveHintKeepsSessionCancelable(t *testing.T) {
	fp := NewFailoverPoller("b1", FailoverConfig{
		Resolve: func(ctx context.Context) (string, error) {
			return "", &quotaHintErr{hint: 10 * time.Hour}
		},
		Backoff: resilience.Policy{BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond},
	})
	ctx, cancel := context.WithTimeout(context.Background(), 80*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := fp.resolveEdge(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("resolveEdge = %v, want DeadlineExceeded", err)
	}
	elapsed := time.Since(start)
	if elapsed < 60*time.Millisecond || elapsed > maxRetryAfterHint {
		t.Fatalf("canceled after %v, want ~80ms (sleeping on the capped hint)", elapsed)
	}
}
