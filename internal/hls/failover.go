package hls

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/metrics"
	"repro/internal/resilience"
)

// FailoverConfig tunes a FailoverPoller.
type FailoverConfig struct {
	// Resolve asks the control plane which edge to poll. It is called once
	// at startup and again on every failover, so a remapped viewer lands
	// on whatever the fleet currently considers the nearest healthy edge.
	// Required.
	Resolve func(ctx context.Context) (baseURL string, err error)
	// NewClient builds the per-edge client; nil uses a plain Client. Tests
	// inject fault-carrying transports here.
	NewClient func(baseURL string) *Client
	// Poller is the inner polling configuration (Interval, OnChunk, OnEnd,
	// ListOnly).
	Poller PollerConfig
	// FailureThreshold is how many consecutive failed polls against one
	// edge trigger a failover. Zero means 3. Overload (503) and a poisoned
	// edge (404 for a broadcast the session has already played) fail over
	// immediately regardless.
	FailureThreshold int
	// MaxFailovers bounds edge switches across the session. Zero means 8;
	// negative means unlimited. Control-plane resolve failures do NOT
	// consume this budget — they are retried separately (see
	// ResolveRetries), so a control outage cannot exhaust a session's
	// tolerance for actual edge failures.
	MaxFailovers int
	// ResolveRetries bounds consecutive resolve attempts (with capped
	// backoff) when the control plane is failing and no last-known edge is
	// cached; a session that has already resolved once falls back to its
	// cached edge instead of burning retries. Zero means 6; negative means
	// unlimited. Resolve errors marked resilience.Permanent (authoritative
	// rejections like "no such broadcast") are never retried.
	ResolveRetries int
	// Backoff schedules the wait between failover rounds; the zero value
	// uses the resilience defaults.
	Backoff resilience.Policy
	// Clock is handed to the default per-edge client (a custom NewClient
	// sets its own); nil means the real clock.
	Clock clock.Clock
	// Metrics is the registry the session's failover counters register in,
	// and is handed to the default per-edge client; nil means a private
	// registry.
	Metrics *metrics.Registry
}

// failoverMetrics are the registered instruments behind the accessor
// methods; shared across sessions registered against one registry.
type failoverMetrics struct {
	failovers      *metrics.Counter
	overloads      *metrics.Counter
	drainHints     *metrics.Counter
	resolveRetries *metrics.Counter
	staleResolves  *metrics.Counter
}

// FailoverPoller is an HLS viewer session that survives edge failures: when
// the assigned edge sheds it (503 + Retry-After), hints that it is draining,
// goes dark (repeated 5xx/timeouts), or loses the broadcast, the session
// re-queries the control plane and resumes polling a sibling edge from the
// last delivered chunk sequence — duplicates never, gaps allowed. It is the
// HLS mirror of rtmp.SubscribeResilient, reproducing the silent viewer
// remapping the paper observed Fastly's fleet performing (§4.1).
type FailoverPoller struct {
	broadcastID string
	cfg         FailoverConfig
	m           *failoverMetrics

	lastSeq atomic.Uint64
	baseURL atomic.Value // string: the edge currently polled
}

// NewFailoverPoller builds a session for one broadcast. Call Run to poll.
func NewFailoverPoller(broadcastID string, cfg FailoverConfig) *FailoverPoller {
	if cfg.FailureThreshold <= 0 {
		cfg.FailureThreshold = 3
	}
	if cfg.MaxFailovers == 0 {
		cfg.MaxFailovers = 8
	}
	if cfg.ResolveRetries == 0 {
		cfg.ResolveRetries = 6
	}
	if cfg.Poller.Interval <= 0 {
		cfg.Poller.Interval = 2 * time.Second
	}
	if cfg.NewClient == nil {
		cfg.NewClient = func(baseURL string) *Client {
			return &Client{BaseURL: baseURL, Clock: cfg.Clock, Metrics: cfg.Metrics}
		}
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	return &FailoverPoller{
		broadcastID: broadcastID,
		cfg:         cfg,
		m: &failoverMetrics{
			failovers:      reg.Counter("hls_failovers_total"),
			overloads:      reg.Counter("hls_overloads_total"),
			drainHints:     reg.Counter("hls_drain_hints_total"),
			resolveRetries: reg.Counter("hls_resolve_retries_total"),
			staleResolves:  reg.Counter("hls_stale_resolves_total"),
		},
	}
}

// Failovers returns how many times the session switched edges (resolve
// rounds after the first). With a shared FailoverConfig.Metrics registry the
// counter aggregates across every session registered against it.
func (fp *FailoverPoller) Failovers() int64 { return fp.m.failovers.Value() }

// Overloads returns how many polls were answered with a shed (503/429).
func (fp *FailoverPoller) Overloads() int64 { return fp.m.overloads.Value() }

// DrainHints returns how many edges hinted the session away mid-stream.
func (fp *FailoverPoller) DrainHints() int64 { return fp.m.drainHints.Value() }

// ResolveRetries returns how many control-plane resolve calls failed
// transiently and were retried (or absorbed by the cached-edge fallback).
func (fp *FailoverPoller) ResolveRetries() int64 { return fp.m.resolveRetries.Value() }

// StaleResolves returns how many failover rounds fell back to the cached
// last-known edge because the control plane was unreachable.
func (fp *FailoverPoller) StaleResolves() int64 { return fp.m.staleResolves.Value() }

// LastSeq returns the highest chunk sequence delivered so far.
func (fp *FailoverPoller) LastSeq() uint64 { return fp.lastSeq.Load() }

// BaseURL returns the edge the session is currently polling ("" before the
// first resolve).
func (fp *FailoverPoller) BaseURL() string {
	if v, ok := fp.baseURL.Load().(string); ok {
		return v
	}
	return ""
}

// Run polls until the broadcast ends (nil), ctx is done, or the failover
// budget is exhausted (the last edge error). It is synchronous, like
// Client.Poll; callers wanting a background session run it in a goroutine.
func (fp *FailoverPoller) Run(ctx context.Context) error {
	if fp.cfg.Resolve == nil {
		return errors.New("hls: FailoverConfig.Resolve is required")
	}
	var st pollState
	rounds := 0       // resolve rounds consumed (first one is free)
	notFoundRuns := 0 // consecutive edges answering 404
	var lastErr error
	for {
		if rounds > 0 {
			if fp.cfg.MaxFailovers >= 0 && rounds > fp.cfg.MaxFailovers {
				if lastErr == nil {
					lastErr = errors.New("hls: failover budget exhausted")
				}
				return fmt.Errorf("hls: %d failovers: %w", rounds-1, lastErr)
			}
			if err := resilience.SleepCtx(ctx, fp.cfg.Backoff.Delay(rounds-1)); err != nil {
				return err
			}
			fp.m.failovers.Inc()
		}
		rounds++

		baseURL, err := fp.resolveEdge(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return fmt.Errorf("hls: resolve edge: %w", err)
		}
		fp.baseURL.Store(baseURL)
		client := fp.cfg.NewClient(baseURL)
		var draining atomic.Bool
		client.OnDrainHint = func() {
			if !draining.Swap(true) {
				fp.m.drainHints.Inc()
			}
		}

		ended, err := fp.pollEdge(ctx, client, &st, &draining, &notFoundRuns)
		if ended {
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if errors.Is(err, ErrNotFound) && notFoundRuns >= 2 {
			// Two distinct edges in a row say the broadcast does not
			// exist: believe them rather than thrashing the fleet.
			return err
		}
		if err != nil {
			lastErr = err
		}
	}
}

// resolveEdge asks the control plane for an edge, retrying transient
// failures with capped backoff. A resolve failure is a control-plane
// problem, not an edge problem, so it never consumes the failover budget or
// counts as a failover; and a session that has already streamed holds a
// last-known edge, so after the first failed attempt it degrades to that
// cached mapping (counted in hls_stale_resolves_total) instead of blocking
// the viewer on a dead control plane. Permanent-marked errors return
// immediately — the control plane answered, and the answer was no.
func (fp *FailoverPoller) resolveEdge(ctx context.Context) (string, error) {
	for n := 0; ; n++ {
		baseURL, err := fp.cfg.Resolve(ctx)
		if err == nil {
			return baseURL, nil
		}
		if ctx.Err() != nil {
			return "", ctx.Err()
		}
		if resilience.IsPermanent(err) {
			return "", err
		}
		fp.m.resolveRetries.Inc()
		if cached := fp.BaseURL(); cached != "" {
			fp.m.staleResolves.Inc()
			return cached, nil
		}
		if fp.cfg.ResolveRetries > 0 && n+1 >= fp.cfg.ResolveRetries {
			return "", err
		}
		delay := fp.cfg.Backoff.Delay(n)
		// A server-provided Retry-After (a 429 quota rejection from the
		// control plane) overrides a shorter backoff: retrying sooner than
		// the quota window reopens is guaranteed wasted load. Capped so a
		// day-long quota wait cannot park the session for hours.
		var h RetryAfterHinter
		if errors.As(err, &h) {
			if hint := h.RetryAfterHint(); hint > delay {
				if hint > maxRetryAfterHint {
					hint = maxRetryAfterHint
				}
				delay = hint
			}
		}
		if err := resilience.SleepCtx(ctx, delay); err != nil {
			return "", err
		}
	}
}

// RetryAfterHinter is implemented by resolve errors that carry a
// server-provided wait (control.QuotaError over the wire or in-process); the
// resolve loop honors the hint in place of a shorter backoff delay.
type RetryAfterHinter interface {
	RetryAfterHint() time.Duration
}

// maxRetryAfterHint caps honored Retry-After hints; a spent daily quota
// should degrade the session to retries on this cadence, not freeze it.
const maxRetryAfterHint = 5 * time.Second

// pollEdge runs the poll loop against one edge until the broadcast ends, a
// failover trigger fires (returning the triggering error), or ctx is done.
func (fp *FailoverPoller) pollEdge(ctx context.Context, client *Client, st *pollState, draining *atomic.Bool, notFoundRuns *int) (bool, error) {
	clk := client.clock()
	consecFails := 0
	for {
		ended, err := client.pollOnce(ctx, fp.broadcastID, &fp.cfg.Poller, st)
		fp.lastSeq.Store(st.lastSeq)
		switch {
		case err == nil:
			*notFoundRuns = 0
			consecFails = 0
			if ended {
				return true, nil
			}
			if draining.Load() {
				// The edge asked us to leave; migrate between polls so
				// nothing is dropped.
				return false, nil
			}
		case errors.Is(err, ErrNotFound):
			// This edge cannot resolve the broadcast (poisoned cache,
			// released assignment, or a genuinely absent stream — the
			// caller distinguishes via the consecutive-edge count).
			*notFoundRuns++
			return false, err
		case errors.Is(err, ErrOverloaded):
			// Shed: the edge told us to go elsewhere. Retry-After was
			// already honored inside the client.
			fp.m.overloads.Inc()
			return false, err
		default:
			if ctx.Err() != nil {
				return false, ctx.Err()
			}
			consecFails++
			if consecFails >= fp.cfg.FailureThreshold {
				return false, err
			}
		}
		select {
		case <-ctx.Done():
			return false, ctx.Err()
		case <-clk.After(fp.cfg.Poller.Interval):
		}
	}
}
