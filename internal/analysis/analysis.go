// Package analysis turns crawler output (trace records) into the paper's §3
// statistics, completing the measurement pipeline: cmd/livesim runs the
// platform, cmd/crawl captures it, and this package computes daily series,
// duration/viewer/interaction CDFs, and per-user activity — the same
// analyses the paper ran over its 19.6M-broadcast corpus.
package analysis

import (
	"sort"
	"time"

	"repro/internal/stats"
	"repro/internal/trace"
)

// DatasetStats is the Table 1 row computed from crawled records.
type DatasetStats struct {
	Broadcasts    int
	Broadcasters  int
	TotalJoins    int
	UniqueViewers int
	Comments      int
	Hearts        int
	FirstStart    time.Time
	LastEnd       time.Time
}

// Summarize computes Table 1 aggregates over records.
func Summarize(recs []trace.BroadcastRecord) DatasetStats {
	var s DatasetStats
	bcasters := map[string]bool{}
	viewers := map[string]bool{}
	for _, r := range recs {
		s.Broadcasts++
		bcasters[r.Broadcaster] = true
		s.TotalJoins += len(r.Joins)
		for _, j := range r.Joins {
			viewers[j.UserID] = true
		}
		for _, e := range r.Events {
			switch e.Kind {
			case "comment":
				s.Comments++
			case "heart":
				s.Hearts++
			}
		}
		if s.FirstStart.IsZero() || r.StartedAt.Before(s.FirstStart) {
			s.FirstStart = r.StartedAt
		}
		if r.EndedAt.After(s.LastEnd) {
			s.LastEnd = r.EndedAt
		}
	}
	s.Broadcasters = len(bcasters)
	s.UniqueViewers = len(viewers)
	return s
}

// DailyCounts is one day of the Figure 1/2 series.
type DailyCounts struct {
	Date         time.Time
	Broadcasts   int
	Broadcasters int
	Viewers      int
}

// DailySeries buckets records by start day (UTC), producing the Fig. 1/2
// series from crawled data.
func DailySeries(recs []trace.BroadcastRecord) []DailyCounts {
	type day struct {
		n        int
		bcasters map[string]bool
		viewers  map[string]bool
	}
	days := map[time.Time]*day{}
	for _, r := range recs {
		if r.StartedAt.IsZero() {
			continue
		}
		k := r.StartedAt.UTC().Truncate(24 * time.Hour)
		d, ok := days[k]
		if !ok {
			d = &day{bcasters: map[string]bool{}, viewers: map[string]bool{}}
			days[k] = d
		}
		d.n++
		d.bcasters[r.Broadcaster] = true
		for _, j := range r.Joins {
			d.viewers[j.UserID] = true
		}
	}
	out := make([]DailyCounts, 0, len(days))
	for k, d := range days {
		out = append(out, DailyCounts{Date: k, Broadcasts: d.n, Broadcasters: len(d.bcasters), Viewers: len(d.viewers)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Date.Before(out[j].Date) })
	return out
}

// DurationCDF builds the Fig. 3 CDF (minutes) from crawled records; records
// without an end timestamp are skipped.
func DurationCDF(recs []trace.BroadcastRecord) *stats.CDF {
	var xs []float64
	for _, r := range recs {
		if r.EndedAt.IsZero() || r.StartedAt.IsZero() {
			continue
		}
		xs = append(xs, r.EndedAt.Sub(r.StartedAt).Minutes())
	}
	return stats.NewCDF(xs)
}

// ViewersCDF builds the Fig. 4 CDF (joins per broadcast).
func ViewersCDF(recs []trace.BroadcastRecord) *stats.CDF {
	var xs []float64
	for _, r := range recs {
		xs = append(xs, float64(len(r.Joins)))
	}
	return stats.NewCDF(xs)
}

// InteractionCDFs builds the Fig. 5 CDFs (comments, hearts per broadcast).
func InteractionCDFs(recs []trace.BroadcastRecord) (comments, hearts *stats.CDF) {
	var cs, hs []float64
	for _, r := range recs {
		var c, h float64
		for _, e := range r.Events {
			switch e.Kind {
			case "comment":
				c++
			case "heart":
				h++
			}
		}
		cs = append(cs, c)
		hs = append(hs, h)
	}
	return stats.NewCDF(cs), stats.NewCDF(hs)
}

// UserActivity tallies the Fig. 6 distributions: broadcasts viewed and
// created per user.
func UserActivity(recs []trace.BroadcastRecord) (views, creates map[string]int) {
	views = map[string]int{}
	creates = map[string]int{}
	for _, r := range recs {
		creates[r.Broadcaster]++
		for _, j := range r.Joins {
			views[j.UserID]++
		}
	}
	return views, creates
}

// DelayStats aggregates crawler delay records per kind.
type DelayStats struct {
	Kind   string
	N      int
	Mean   time.Duration
	P50    time.Duration
	P95    time.Duration
	StdDev time.Duration
}

// SummarizeDelays computes per-kind delay statistics from the §4.3 crawler
// observations.
func SummarizeDelays(recs []trace.DelayRecord) []DelayStats {
	byKind := map[string][]float64{}
	for _, r := range recs {
		if r.Delay > 0 {
			byKind[r.Kind] = append(byKind[r.Kind], float64(r.Delay))
		}
	}
	kinds := make([]string, 0, len(byKind))
	for k := range byKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	out := make([]DelayStats, 0, len(kinds))
	for _, k := range kinds {
		xs := byKind[k]
		s := stats.Summarize(xs)
		out = append(out, DelayStats{
			Kind:   k,
			N:      s.N,
			Mean:   time.Duration(s.Mean),
			P50:    time.Duration(stats.Quantile(xs, 0.5)),
			P95:    time.Duration(stats.Quantile(xs, 0.95)),
			StdDev: time.Duration(s.StdDev),
		})
	}
	return out
}
