package analysis

import (
	"testing"
	"time"

	"repro/internal/trace"
)

var day0 = time.Date(2015, 5, 15, 0, 0, 0, 0, time.UTC)

func sampleRecords() []trace.BroadcastRecord {
	return []trace.BroadcastRecord{
		{
			BroadcastID: "b1", Broadcaster: "alice",
			StartedAt: day0.Add(10 * time.Hour),
			EndedAt:   day0.Add(10*time.Hour + 5*time.Minute),
			Joins: []trace.Join{
				{UserID: "v1", At: day0.Add(10 * time.Hour)},
				{UserID: "v2", At: day0.Add(10 * time.Hour)},
			},
			Events: []trace.Event{
				{UserID: "v1", Kind: "comment", At: day0},
				{UserID: "v2", Kind: "heart", At: day0},
				{UserID: "v2", Kind: "heart", At: day0},
			},
		},
		{
			BroadcastID: "b2", Broadcaster: "alice",
			StartedAt: day0.Add(26 * time.Hour), // next day
			EndedAt:   day0.Add(26*time.Hour + 20*time.Minute),
			Joins:     []trace.Join{{UserID: "v1", At: day0.Add(26 * time.Hour)}},
		},
		{
			BroadcastID: "b3", Broadcaster: "bob",
			StartedAt: day0.Add(27 * time.Hour),
			EndedAt:   day0.Add(27*time.Hour + time.Minute),
		},
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize(sampleRecords())
	if s.Broadcasts != 3 || s.Broadcasters != 2 {
		t.Fatalf("summary = %+v", s)
	}
	if s.TotalJoins != 3 || s.UniqueViewers != 2 {
		t.Fatalf("joins = %d unique = %d", s.TotalJoins, s.UniqueViewers)
	}
	if s.Comments != 1 || s.Hearts != 2 {
		t.Fatalf("comments = %d hearts = %d", s.Comments, s.Hearts)
	}
	if !s.FirstStart.Equal(day0.Add(10 * time.Hour)) {
		t.Fatalf("first start = %v", s.FirstStart)
	}
}

func TestDailySeries(t *testing.T) {
	days := DailySeries(sampleRecords())
	if len(days) != 2 {
		t.Fatalf("days = %d", len(days))
	}
	if days[0].Broadcasts != 1 || days[1].Broadcasts != 2 {
		t.Fatalf("series = %+v", days)
	}
	if days[1].Broadcasters != 2 {
		t.Fatalf("day 2 broadcasters = %d", days[1].Broadcasters)
	}
	if !days[0].Date.Before(days[1].Date) {
		t.Fatal("series not sorted")
	}
}

func TestDurationCDF(t *testing.T) {
	cdf := DurationCDF(sampleRecords())
	if cdf.N() != 3 {
		t.Fatalf("N = %d", cdf.N())
	}
	if got := cdf.At(10); got < 0.66 || got > 0.67 {
		t.Fatalf("P(<10min) = %v, want 2/3", got)
	}
}

func TestViewersCDF(t *testing.T) {
	cdf := ViewersCDF(sampleRecords())
	if cdf.At(0) < 0.33 || cdf.At(0) > 0.34 {
		t.Fatalf("zero-viewer share = %v, want 1/3", cdf.At(0))
	}
}

func TestInteractionCDFs(t *testing.T) {
	comments, hearts := InteractionCDFs(sampleRecords())
	if comments.N() != 3 || hearts.N() != 3 {
		t.Fatal("CDF sizes wrong")
	}
	if hearts.Quantile(1) != 2 {
		t.Fatalf("max hearts = %v", hearts.Quantile(1))
	}
}

func TestUserActivity(t *testing.T) {
	views, creates := UserActivity(sampleRecords())
	if views["v1"] != 2 || views["v2"] != 1 {
		t.Fatalf("views = %v", views)
	}
	if creates["alice"] != 2 || creates["bob"] != 1 {
		t.Fatalf("creates = %v", creates)
	}
}

func TestSummarizeDelays(t *testing.T) {
	recs := []trace.DelayRecord{
		{Kind: "frame", Delay: 100 * time.Millisecond},
		{Kind: "frame", Delay: 300 * time.Millisecond},
		{Kind: "chunk", Delay: 5 * time.Second},
		{Kind: "chunk", Delay: 7 * time.Second},
		{Kind: "chunk", Delay: 0}, // skipped
	}
	out := SummarizeDelays(recs)
	if len(out) != 2 {
		t.Fatalf("kinds = %d", len(out))
	}
	if out[0].Kind != "chunk" || out[0].N != 2 {
		t.Fatalf("chunk stats = %+v", out[0])
	}
	if out[0].Mean != 6*time.Second {
		t.Fatalf("chunk mean = %v", out[0].Mean)
	}
	if out[1].Kind != "frame" || out[1].Mean != 200*time.Millisecond {
		t.Fatalf("frame stats = %+v", out[1])
	}
}

func TestEmptyInputs(t *testing.T) {
	if s := Summarize(nil); s.Broadcasts != 0 {
		t.Fatal("non-zero summary from empty input")
	}
	if d := DailySeries(nil); len(d) != 0 {
		t.Fatal("non-empty series from empty input")
	}
	if out := SummarizeDelays(nil); len(out) != 0 {
		t.Fatal("non-empty delay stats from empty input")
	}
}
