package analysis

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/control"
	"repro/internal/core"
	"repro/internal/crawler"
	"repro/internal/geo"
	"repro/internal/media"
	"repro/internal/pubsub"
	"repro/internal/rng"
	"repro/internal/rtmp"
	"repro/internal/trace"
)

// TestFullMeasurementPipeline exercises the complete paper workflow in one
// process: run the platform, crawl it, persist JSONL, re-read and analyze —
// the livesim→crawl→analyze toolchain.
func TestFullMeasurementPipeline(t *testing.T) {
	w := geo.WowzaSites()
	f := geo.FastlySites()
	p := core.NewPlatform(core.PlatformConfig{
		OriginSites:   []geo.Datacenter{w[0]},
		EdgeSites:     []geo.Datacenter{f[8]},
		ChunkDuration: time.Second,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := p.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer p.Stop()
	cc := &control.Client{BaseURL: p.ControlURL()}

	// Persist crawler output as JSONL, as cmd/crawl does.
	var mu sync.Mutex
	var bbuf, dbuf bytes.Buffer
	bw := trace.NewWriter(&bbuf)
	dw := trace.NewWriter(&dbuf)
	cr, err := crawler.New(crawler.Config{
		Control:       cc,
		ListInterval:  15 * time.Millisecond,
		TapRTMP:       true,
		WatchMessages: true,
		OnBroadcast: func(r trace.BroadcastRecord) {
			mu.Lock()
			bw.Write(r)
			mu.Unlock()
		},
		OnDelay: func(r trace.DelayRecord) {
			mu.Lock()
			dw.Write(r)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	crawlCtx, crawlCancel := context.WithCancel(ctx)
	crawlDone := make(chan struct{})
	go func() { cr.Run(crawlCtx); close(crawlDone) }()

	// Two broadcasts with interactions.
	for b := 0; b < 2; b++ {
		uid, _ := cc.Register(ctx, "bcaster")
		grant, err := cc.StartBroadcast(ctx, uid, geo.Location{City: "Ashburn", Lat: 39, Lon: -77})
		if err != nil {
			t.Fatal(err)
		}
		pub, err := rtmp.Publish(ctx, grant.RTMPAddr, grant.BroadcastID, grant.Token, nil)
		if err != nil {
			t.Fatal(err)
		}
		enc := media.NewEncoder(media.EncoderConfig{}, rng.New(uint64(b)))
		mc := &pubsub.Client{BaseURL: grant.MessageURL}
		for i := 0; i < 40; i++ {
			fr := enc.Next(time.Now())
			if err := pub.Send(&fr); err != nil {
				t.Fatal(err)
			}
			if i == 20 {
				mc.Publish(ctx, grant.BroadcastID, pubsub.Event{UserID: "v1", Kind: pubsub.KindHeart})
			}
			time.Sleep(2 * time.Millisecond)
		}
		pub.End()
	}

	// Wait for the crawler to finish both records.
	deadline := time.Now().Add(15 * time.Second)
	for cr.Stats().BroadcastsDone.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("crawler finished %d/2 broadcasts", cr.Stats().BroadcastsDone.Load())
		}
		time.Sleep(20 * time.Millisecond)
	}
	crawlCancel()
	<-crawlDone
	mu.Lock()
	bw.Flush()
	dw.Flush()
	mu.Unlock()

	// Re-read the persisted JSONL and analyze.
	recs, err := trace.ReadBroadcasts(&bbuf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("records = %d", len(recs))
	}
	sum := Summarize(recs)
	if sum.Broadcasts != 2 || sum.Hearts != 2 {
		t.Fatalf("summary = %+v", sum)
	}
	days := DailySeries(recs)
	if len(days) != 1 || days[0].Broadcasts != 2 {
		t.Fatalf("daily series = %+v", days)
	}
	if cdf := DurationCDF(recs); cdf.N() != 2 {
		t.Fatalf("duration CDF N = %d", cdf.N())
	}

	drecs, err := trace.ReadDelays(&dbuf)
	if err != nil {
		t.Fatal(err)
	}
	if len(drecs) == 0 {
		t.Fatal("no delay records")
	}
	ds := SummarizeDelays(drecs)
	if len(ds) != 1 || ds[0].Kind != "frame" || ds[0].Mean <= 0 {
		t.Fatalf("delay stats = %+v", ds)
	}
}
