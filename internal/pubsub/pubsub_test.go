package pubsub

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/testutil"
)

func TestPublishAndRead(t *testing.T) {
	h := NewHub(0)
	h.Open("b1")
	ev, err := h.Publish("b1", Event{UserID: "u1", Kind: KindComment, Text: "hi"})
	if err != nil {
		t.Fatal(err)
	}
	if ev.Seq != 1 || ev.BroadcastID != "b1" || ev.At.IsZero() {
		t.Fatalf("stored event = %+v", ev)
	}
	h.Publish("b1", Event{UserID: "u2", Kind: KindHeart})
	evs, closed, err := h.EventsSince("b1", 0)
	if err != nil || closed {
		t.Fatalf("EventsSince: %v closed=%v", err, closed)
	}
	if len(evs) != 2 || evs[0].Kind != KindComment || evs[1].Kind != KindHeart {
		t.Fatalf("events = %+v", evs)
	}
	evs, _, _ = h.EventsSince("b1", 1)
	if len(evs) != 1 || evs[0].Seq != 2 {
		t.Fatalf("incremental read = %+v", evs)
	}
}

func TestPublishNoChannel(t *testing.T) {
	h := NewHub(0)
	if _, err := h.Publish("missing", Event{Kind: KindHeart}); !errors.Is(err, ErrNoChannel) {
		t.Fatalf("err = %v", err)
	}
	if _, _, err := h.EventsSince("missing", 0); !errors.Is(err, ErrNoChannel) {
		t.Fatalf("err = %v", err)
	}
}

func TestCommenterCap(t *testing.T) {
	h := NewHub(3)
	h.Open("b1")
	for i := 0; i < 3; i++ {
		u := fmt.Sprintf("u%d", i)
		if _, err := h.Publish("b1", Event{UserID: u, Kind: KindComment, Text: "x"}); err != nil {
			t.Fatalf("commenter %d rejected: %v", i, err)
		}
	}
	if _, err := h.Publish("b1", Event{UserID: "u99", Kind: KindComment}); !errors.Is(err, ErrNotCommenter) {
		t.Fatalf("4th commenter err = %v", err)
	}
	// Existing commenters can keep commenting.
	if _, err := h.Publish("b1", Event{UserID: "u0", Kind: KindComment}); err != nil {
		t.Fatalf("existing commenter rejected: %v", err)
	}
	// Hearts are never capped (§2.1: all viewers can send hearts).
	if _, err := h.Publish("b1", Event{UserID: "u99", Kind: KindHeart}); err != nil {
		t.Fatalf("heart rejected: %v", err)
	}
	if h.CanComment("b1", "u99") {
		t.Fatal("capped user reported as commenter")
	}
	if !h.CanComment("b1", "u0") {
		t.Fatal("existing commenter reported as capped")
	}
}

func TestUnlimitedCap(t *testing.T) {
	h := NewHub(-1)
	h.Open("b1")
	for i := 0; i < 200; i++ {
		if _, err := h.Publish("b1", Event{UserID: fmt.Sprintf("u%d", i), Kind: KindComment}); err != nil {
			t.Fatalf("comment %d rejected: %v", i, err)
		}
	}
}

func TestDefaultCapIs100(t *testing.T) {
	h := NewHub(0)
	h.Open("b1")
	for i := 0; i < DefaultCommenterCap; i++ {
		if _, err := h.Publish("b1", Event{UserID: fmt.Sprintf("u%d", i), Kind: KindComment}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := h.Publish("b1", Event{UserID: "overflow", Kind: KindComment}); !errors.Is(err, ErrNotCommenter) {
		t.Fatalf("101st commenter err = %v", err)
	}
}

func TestWaitWakesOnPublish(t *testing.T) {
	testutil.CheckGoroutines(t)
	h := NewHub(0)
	h.Open("b1")
	got := make(chan []Event, 1)
	go func() {
		evs, _, err := h.Wait(context.Background(), "b1", 0)
		if err != nil {
			t.Errorf("Wait: %v", err)
		}
		got <- evs
	}()
	time.Sleep(10 * time.Millisecond)
	h.Publish("b1", Event{UserID: "u1", Kind: KindHeart})
	select {
	case evs := <-got:
		if len(evs) != 1 || evs[0].Kind != KindHeart {
			t.Fatalf("woke with %+v", evs)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Wait never woke")
	}
}

func TestWaitWakesOnClose(t *testing.T) {
	testutil.CheckGoroutines(t)
	h := NewHub(0)
	h.Open("b1")
	done := make(chan bool, 1)
	go func() {
		_, closed, err := h.Wait(context.Background(), "b1", 0)
		if err != nil {
			t.Errorf("Wait: %v", err)
		}
		done <- closed
	}()
	time.Sleep(10 * time.Millisecond)
	h.Close("b1")
	select {
	case closed := <-done:
		if !closed {
			t.Fatal("Wait returned without closed flag")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Wait never woke on close")
	}
}

func TestWaitContextCancel(t *testing.T) {
	h := NewHub(0)
	h.Open("b1")
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, _, err := h.Wait(ctx, "b1", 0)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
}

func TestPublishAfterCloseFails(t *testing.T) {
	h := NewHub(0)
	h.Open("b1")
	h.Close("b1")
	if _, err := h.Publish("b1", Event{Kind: KindHeart}); !errors.Is(err, ErrNoChannel) {
		t.Fatalf("publish after close err = %v", err)
	}
	// Events remain readable after close.
	if _, closed, err := h.EventsSince("b1", 0); err != nil || !closed {
		t.Fatalf("read after close: %v closed=%v", err, closed)
	}
}

func TestCounts(t *testing.T) {
	h := NewHub(0)
	h.Open("b1")
	for i := 0; i < 3; i++ {
		h.Publish("b1", Event{UserID: "u1", Kind: KindHeart})
	}
	h.Publish("b1", Event{UserID: "u1", Kind: KindComment, Text: "x"})
	c, hearts := h.Counts("b1")
	if c != 1 || hearts != 3 {
		t.Fatalf("counts = %d comments, %d hearts", c, hearts)
	}
}

func TestHTTPRoundtrip(t *testing.T) {
	testutil.CheckGoroutines(t)
	h := NewHub(2)
	h.Open("b1")
	srv := httptest.NewServer(Handler("/channel", h))
	defer srv.Close()
	client := &Client{BaseURL: srv.URL + "/channel"}
	ctx := context.Background()

	ev, err := client.Publish(ctx, "b1", Event{UserID: "u1", Kind: KindComment, Text: "hello"})
	if err != nil {
		t.Fatal(err)
	}
	if ev.Seq != 1 {
		t.Fatalf("seq = %d", ev.Seq)
	}
	client.Publish(ctx, "b1", Event{UserID: "u2", Kind: KindComment})
	if _, err := client.Publish(ctx, "b1", Event{UserID: "u3", Kind: KindComment}); !errors.Is(err, ErrNotCommenter) {
		t.Fatalf("cap not enforced over HTTP: %v", err)
	}
	evs, closed, err := client.Events(ctx, "b1", 0, false)
	if err != nil || closed {
		t.Fatalf("Events: %v", err)
	}
	if len(evs) != 2 {
		t.Fatalf("events = %d", len(evs))
	}
	if _, _, err := client.Events(ctx, "missing", 0, false); !errors.Is(err, ErrNoChannel) {
		t.Fatalf("missing channel err = %v", err)
	}
}

func TestHTTPLongPoll(t *testing.T) {
	testutil.CheckGoroutines(t)
	h := NewHub(0)
	h.Open("b1")
	srv := httptest.NewServer(Handler("/channel", h))
	defer srv.Close()
	client := &Client{BaseURL: srv.URL + "/channel"}

	got := make(chan int, 1)
	go func() {
		evs, _, err := client.Events(context.Background(), "b1", 0, true)
		if err != nil {
			t.Errorf("long poll: %v", err)
		}
		got <- len(evs)
	}()
	time.Sleep(20 * time.Millisecond)
	h.Publish("b1", Event{UserID: "u1", Kind: KindHeart})
	select {
	case n := <-got:
		if n != 1 {
			t.Fatalf("long poll returned %d events", n)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("long poll never returned")
	}
}

// waitResult carries one Wait return across the goroutine boundary.
type waitResult struct {
	evs    []Event
	closed bool
	err    error
}

// startWaiters parks n Wait calls on a channel and returns their results
// channel plus a gate that confirms all n are actually blocked (parked
// waiters registered, not racing the wake).
func startWaiters(h *Hub, id string, n int) chan waitResult {
	results := make(chan waitResult, n)
	for i := 0; i < n; i++ {
		go func() {
			evs, closed, err := h.Wait(context.Background(), id, 0)
			results <- waitResult{evs: evs, closed: closed, err: err}
		}()
	}
	// Wait until all n are parked in ch.waiters.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		ch, err := h.channel(id)
		if err != nil {
			break // channel already gone; waiters error out on their own
		}
		ch.mu.Lock()
		parked := len(ch.waiters)
		ch.mu.Unlock()
		if parked >= n {
			break
		}
		time.Sleep(time.Millisecond)
	}
	return results
}

// TestWaitWokenByClose: a mid-wait Close must wake every parked waiter with
// closed=true — no waiting out the context.
func TestWaitWokenByClose(t *testing.T) {
	testutil.CheckGoroutines(t)
	h := NewHub(0)
	h.Open("b1")
	results := startWaiters(h, "b1", 3)
	h.Close("b1")
	for i := 0; i < 3; i++ {
		select {
		case r := <-results:
			if r.err != nil || !r.closed {
				t.Fatalf("waiter %d: (closed=%v, err=%v), want clean closed wake", i, r.closed, r.err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("waiter %d still parked after Close", i)
		}
	}
}

// TestWaitWokenByRemove is the regression test for Remove leaking parked
// waiters: deleting a channel mid-wait must wake every waiter, which then
// surfaces ErrNoChannel — not block until its context expires.
func TestWaitWokenByRemove(t *testing.T) {
	testutil.CheckGoroutines(t)
	h := NewHub(0)
	h.Open("b1")
	results := startWaiters(h, "b1", 3)
	h.Remove("b1")
	for i := 0; i < 3; i++ {
		select {
		case r := <-results:
			if !errors.Is(r.err, ErrNoChannel) {
				t.Fatalf("waiter %d: err = %v, want ErrNoChannel after Remove", i, r.err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("waiter %d still parked after Remove: leaked until ctx expiry", i)
		}
	}
}

// TestWaitCancelledByContext: context cancellation frees a parked waiter
// without disturbing the channel, and the goroutine does not leak.
func TestWaitCancelledByContext(t *testing.T) {
	testutil.CheckGoroutines(t)
	h := NewHub(0)
	h.Open("b1")
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := h.Wait(ctx, "b1", 0)
		done <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		ch, _ := h.channel("b1")
		ch.mu.Lock()
		parked := len(ch.waiters)
		ch.mu.Unlock()
		if parked > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Wait after cancel = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled waiter never returned")
	}
	// The channel still works for everyone else.
	if _, err := h.Publish("b1", Event{UserID: "u1", Kind: KindHeart}); err != nil {
		t.Fatalf("publish after cancelled wait: %v", err)
	}
}

// TestWaitCloseRemoveHammer drives Wait against concurrent Publish, Close,
// and Remove across many channels; under -race this is the lock-ordering
// check, and CheckGoroutines asserts nothing stays parked.
func TestWaitCloseRemoveHammer(t *testing.T) {
	testutil.CheckGoroutines(t)
	h := NewHub(-1)
	const channels = 8
	const waitersPerChannel = 4
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	done := make(chan struct{}, channels*waitersPerChannel)
	for c := 0; c < channels; c++ {
		id := fmt.Sprintf("b%d", c)
		h.Open(id)
		for w := 0; w < waitersPerChannel; w++ {
			go func(id string) {
				var since uint64
				for {
					evs, closed, err := h.Wait(ctx, id, since)
					if err != nil || closed {
						done <- struct{}{}
						return
					}
					since += uint64(len(evs))
				}
			}(id)
		}
	}
	for c := 0; c < channels; c++ {
		id := fmt.Sprintf("b%d", c)
		go func(id string) {
			for i := 0; i < 20; i++ {
				h.Publish(id, Event{UserID: "u", Kind: KindHeart})
			}
			if id == "b0" || id == "b1" {
				h.Remove(id) // waiters must exit via ErrNoChannel
			} else {
				h.Close(id) // waiters must exit via closed=true
			}
		}(id)
	}
	for i := 0; i < channels*waitersPerChannel; i++ {
		select {
		case <-done:
		case <-ctx.Done():
			t.Fatalf("only %d/%d waiters exited: waiters leaked", i, channels*waitersPerChannel)
		}
	}
}
