// Package pubsub implements the message channel of the platform — the
// PubNub analog of Figure 8(c). Comments and hearts flow over HTTPS-style
// HTTP, separate from the video path, and are merged client-side by
// timestamp. Periscope's policy of allowing only the first ~100 viewers to
// comment (§2.1) is enforced here as a per-channel commenter cap; hearts are
// unlimited.
package pubsub

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/resilience"
)

// Kind distinguishes the two interaction types.
type Kind string

// Interaction kinds.
const (
	KindComment Kind = "comment"
	KindHeart   Kind = "heart"
)

// Event is one published interaction.
type Event struct {
	Seq         uint64    `json:"seq"`
	BroadcastID string    `json:"broadcast_id"`
	UserID      string    `json:"user_id"`
	Kind        Kind      `json:"kind"`
	Text        string    `json:"text,omitempty"`
	At          time.Time `json:"at"`
}

// ErrNotCommenter reports a comment from a user outside the commenter set.
var ErrNotCommenter = errors.New("pubsub: commenter cap reached")

// ErrNoChannel reports a publish or subscribe on a missing channel.
var ErrNoChannel = errors.New("pubsub: no such channel")

// DefaultCommenterCap is Periscope's observed comment limit (§2.1).
const DefaultCommenterCap = 100

// Hub is the in-process message service: one channel per broadcast.
type Hub struct {
	commenterCap int

	// m holds the registered instruments; an atomic pointer so UseRegistry
	// can swap registries after construction without racing publishers.
	m atomic.Pointer[hubMetrics]

	mu       sync.Mutex
	channels map[string]*channel
}

// hubMetrics are the hub's registered instruments: publish/deliver counters
// plus gauges for open channels and total buffered (retained) events — the
// channel-depth signal a capacity planner watches on the PubNub analog.
type hubMetrics struct {
	publishes *metrics.Counter
	delivers  *metrics.Counter
	channels  *metrics.Gauge
	buffered  *metrics.Gauge
}

func newHubMetrics(reg *metrics.Registry) *hubMetrics {
	return &hubMetrics{
		publishes: reg.Counter("pubsub_publishes_total"),
		delivers:  reg.Counter("pubsub_delivers_total"),
		channels:  reg.Gauge("pubsub_channels"),
		buffered:  reg.Gauge("pubsub_buffered_events"),
	}
}

type channel struct {
	mu         sync.Mutex
	seq        uint64
	events     []Event
	commenters map[string]bool
	waiters    []chan struct{}
	closed     bool
}

// NewHub returns a Hub with the given commenter cap; cap<0 means unlimited,
// cap==0 means DefaultCommenterCap.
func NewHub(commenterCap int) *Hub {
	if commenterCap == 0 {
		commenterCap = DefaultCommenterCap
	}
	h := &Hub{commenterCap: commenterCap, channels: make(map[string]*channel)}
	h.m.Store(newHubMetrics(metrics.NewRegistry()))
	return h
}

// UseRegistry re-registers the hub's instruments in reg, replacing the
// private registry NewHub installed. The platform calls it once at assembly;
// counts accumulated before the switch stay on the old registry.
func (h *Hub) UseRegistry(reg *metrics.Registry) {
	h.m.Store(newHubMetrics(reg))
}

// Open creates the channel for a broadcast. Opening twice is a no-op.
func (h *Hub) Open(broadcastID string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.channels[broadcastID]; !ok {
		h.channels[broadcastID] = &channel{commenters: make(map[string]bool)}
		h.m.Load().channels.Add(1)
	}
}

// Close marks a channel finished, waking all waiters. Events stay readable.
func (h *Hub) Close(broadcastID string) {
	h.mu.Lock()
	ch := h.channels[broadcastID]
	h.mu.Unlock()
	if ch == nil {
		return
	}
	ch.mu.Lock()
	ch.closed = true
	ch.wakeLocked()
	ch.mu.Unlock()
}

// Remove deletes a channel entirely.
func (h *Hub) Remove(broadcastID string) {
	h.mu.Lock()
	ch := h.channels[broadcastID]
	delete(h.channels, broadcastID)
	h.mu.Unlock()
	if ch == nil {
		return
	}
	// Count the retained events outside h.mu: ch.mu must never nest under
	// the hub lock (locksend invariant). Wake parked waiters too: the
	// channel is already unreachable through the hub, so an un-woken Wait
	// would block until its context expired — a goroutine leak for every
	// long-poll viewer on a garbage-collected broadcast. Woken waiters
	// re-lookup the channel and surface ErrNoChannel.
	ch.mu.Lock()
	buffered := len(ch.events)
	ch.wakeLocked()
	ch.mu.Unlock()
	m := h.m.Load()
	m.channels.Add(-1)
	m.buffered.Add(-int64(buffered))
}

func (h *Hub) channel(broadcastID string) (*channel, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	ch, ok := h.channels[broadcastID]
	if !ok {
		return nil, ErrNoChannel
	}
	return ch, nil
}

// Publish appends an interaction. Comments enforce the commenter cap: the
// first cap distinct users to comment join the commenter set; later users
// get ErrNotCommenter. The event's Seq and At (if zero) are assigned here.
func (h *Hub) Publish(broadcastID string, ev Event) (Event, error) {
	ch, err := h.channel(broadcastID)
	if err != nil {
		return Event{}, err
	}
	ch.mu.Lock()
	defer ch.mu.Unlock()
	if ch.closed {
		return Event{}, ErrNoChannel
	}
	if ev.Kind == KindComment && h.commenterCap > 0 {
		if !ch.commenters[ev.UserID] {
			if len(ch.commenters) >= h.commenterCap {
				return Event{}, ErrNotCommenter
			}
			ch.commenters[ev.UserID] = true
		}
	}
	ch.seq++
	ev.Seq = ch.seq
	ev.BroadcastID = broadcastID
	if ev.At.IsZero() {
		ev.At = time.Now()
	}
	ch.events = append(ch.events, ev)
	ch.wakeLocked()
	m := h.m.Load()
	m.publishes.Inc()
	m.buffered.Add(1)
	return ev, nil
}

// CanComment reports whether user may still comment on the channel.
func (h *Hub) CanComment(broadcastID, userID string) bool {
	ch, err := h.channel(broadcastID)
	if err != nil {
		return false
	}
	ch.mu.Lock()
	defer ch.mu.Unlock()
	if h.commenterCap <= 0 {
		return true
	}
	return ch.commenters[userID] || len(ch.commenters) < h.commenterCap
}

// EventsSince returns events with Seq > since and whether the channel is
// closed.
func (h *Hub) EventsSince(broadcastID string, since uint64) ([]Event, bool, error) {
	ch, err := h.channel(broadcastID)
	if err != nil {
		return nil, false, err
	}
	ch.mu.Lock()
	defer ch.mu.Unlock()
	evs := eventsAfterLocked(ch, since)
	h.m.Load().delivers.Add(int64(len(evs)))
	return evs, ch.closed, nil
}

func eventsAfterLocked(ch *channel, since uint64) []Event {
	// Events are in Seq order starting at 1, so the suffix is an index.
	if since >= uint64(len(ch.events)) {
		return nil
	}
	return append([]Event(nil), ch.events[since:]...)
}

// Wait blocks until the channel has events newer than since, is closed, or
// ctx is done, then returns the new events.
func (h *Hub) Wait(ctx context.Context, broadcastID string, since uint64) ([]Event, bool, error) {
	for {
		ch, err := h.channel(broadcastID)
		if err != nil {
			return nil, false, err
		}
		ch.mu.Lock()
		evs := eventsAfterLocked(ch, since)
		closed := ch.closed
		if len(evs) > 0 || closed {
			ch.mu.Unlock()
			h.m.Load().delivers.Add(int64(len(evs)))
			return evs, closed, nil
		}
		wake := make(chan struct{})
		ch.waiters = append(ch.waiters, wake)
		ch.mu.Unlock()
		select {
		case <-ctx.Done():
			return nil, false, ctx.Err()
		case <-wake:
		}
	}
}

func (ch *channel) wakeLocked() {
	for _, w := range ch.waiters {
		close(w)
	}
	ch.waiters = nil
}

// Counts returns (comments, hearts) totals for a broadcast.
func (h *Hub) Counts(broadcastID string) (comments, hearts int) {
	ch, err := h.channel(broadcastID)
	if err != nil {
		return 0, 0
	}
	ch.mu.Lock()
	defer ch.mu.Unlock()
	for _, ev := range ch.events {
		switch ev.Kind {
		case KindComment:
			comments++
		case KindHeart:
			hearts++
		}
	}
	return comments, hearts
}

// --- HTTP surface ----------------------------------------------------------

// Handler serves the hub over HTTP:
//
//	POST {prefix}/{broadcastID}/publish          body: Event JSON
//	GET  {prefix}/{broadcastID}/events?since=N[&wait=1]
func Handler(prefix string, hub *Hub) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rest, ok := strings.CutPrefix(r.URL.Path, prefix+"/")
		if !ok {
			http.NotFound(w, r)
			return
		}
		parts := strings.Split(rest, "/")
		if len(parts) != 2 {
			http.NotFound(w, r)
			return
		}
		id, op := parts[0], parts[1]
		switch {
		case op == "publish" && r.Method == http.MethodPost:
			var ev Event
			body, err := io.ReadAll(io.LimitReader(r.Body, 64<<10))
			if err != nil || json.Unmarshal(body, &ev) != nil {
				http.Error(w, "bad event", http.StatusBadRequest)
				return
			}
			stored, err := hub.Publish(id, ev)
			switch {
			case errors.Is(err, ErrNotCommenter):
				http.Error(w, err.Error(), http.StatusForbidden)
			case errors.Is(err, ErrNoChannel):
				http.Error(w, err.Error(), http.StatusNotFound)
			case err != nil:
				http.Error(w, err.Error(), http.StatusInternalServerError)
			default:
				writeJSON(w, stored)
			}
		case op == "events" && r.Method == http.MethodGet:
			since, _ := strconv.ParseUint(r.URL.Query().Get("since"), 10, 64)
			var evs []Event
			var closed bool
			var err error
			if r.URL.Query().Get("wait") == "1" {
				ctx, cancel := context.WithTimeout(r.Context(), 25*time.Second)
				defer cancel()
				evs, closed, err = hub.Wait(ctx, id, since)
				if errors.Is(err, context.DeadlineExceeded) {
					evs, err = nil, nil
				}
			} else {
				evs, closed, err = hub.EventsSince(id, since)
			}
			if errors.Is(err, ErrNoChannel) {
				http.Error(w, err.Error(), http.StatusNotFound)
				return
			}
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			writeJSON(w, struct {
				Events []Event `json:"events"`
				Closed bool    `json:"closed"`
			}{Events: evs, Closed: closed})
		default:
			http.NotFound(w, r)
		}
	})
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Response already started; nothing more to do.
		_ = err
	}
}

// Client talks to a remote hub.
type Client struct {
	// BaseURL includes the prefix, e.g. "http://msg:8080/channel".
	BaseURL    string
	HTTPClient *http.Client
	// Timeout bounds each non-waiting request as a per-attempt deadline
	// (default 10 s), so a hung hub can no longer block a client forever.
	Timeout time.Duration
	// LongPollTimeout bounds long-poll Events requests (default 40 s —
	// the server holds them up to 25 s before answering empty).
	LongPollTimeout time.Duration
	// Retry bounds transient-failure retries per call with jittered
	// backoff; the zero value makes 3 attempts. MaxAttempts 1 disables
	// retries. Note a Publish retried across a transport failure may
	// duplicate the event, exactly as a real client resubmitting would.
	Retry resilience.Policy
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) timeout(wait bool) time.Duration {
	if wait {
		if c.LongPollTimeout > 0 {
			return c.LongPollTimeout
		}
		return 40 * time.Second
	}
	if c.Timeout > 0 {
		return c.Timeout
	}
	return 10 * time.Second
}

// Publish sends one event, retrying transient transport failures.
func (c *Client) Publish(ctx context.Context, broadcastID string, ev Event) (Event, error) {
	body, err := json.Marshal(ev)
	if err != nil {
		return Event{}, err
	}
	url := fmt.Sprintf("%s/%s/publish", c.BaseURL, broadcastID)
	return resilience.RetryValue(ctx, c.Retry, func(ctx context.Context) (Event, error) {
		ctx, cancel := context.WithTimeout(ctx, c.timeout(false))
		defer cancel()
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, strings.NewReader(string(body)))
		if err != nil {
			return Event{}, resilience.Permanent(err)
		}
		resp, err := c.http().Do(req)
		if err != nil {
			return Event{}, fmt.Errorf("pubsub: publish: %w", err)
		}
		defer resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
		case http.StatusForbidden:
			return Event{}, resilience.Permanent(ErrNotCommenter)
		case http.StatusNotFound:
			return Event{}, resilience.Permanent(ErrNoChannel)
		default:
			return Event{}, fmt.Errorf("pubsub: publish status %d", resp.StatusCode)
		}
		var stored Event
		if err := json.NewDecoder(resp.Body).Decode(&stored); err != nil {
			return Event{}, fmt.Errorf("pubsub: publish body: %w", err)
		}
		return stored, nil
	})
}

// Events fetches events after since, retrying transient failures; wait
// enables server-side long polling.
func (c *Client) Events(ctx context.Context, broadcastID string, since uint64, wait bool) ([]Event, bool, error) {
	url := fmt.Sprintf("%s/%s/events?since=%d", c.BaseURL, broadcastID, since)
	if wait {
		url += "&wait=1"
	}
	type page struct {
		evs    []Event
		closed bool
	}
	out, err := resilience.RetryValue(ctx, c.Retry, func(ctx context.Context) (page, error) {
		ctx, cancel := context.WithTimeout(ctx, c.timeout(wait))
		defer cancel()
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return page{}, resilience.Permanent(err)
		}
		resp, err := c.http().Do(req)
		if err != nil {
			return page{}, fmt.Errorf("pubsub: events: %w", err)
		}
		defer resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
		case http.StatusNotFound:
			return page{}, resilience.Permanent(ErrNoChannel)
		default:
			return page{}, fmt.Errorf("pubsub: events status %d", resp.StatusCode)
		}
		var body struct {
			Events []Event `json:"events"`
			Closed bool    `json:"closed"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			return page{}, fmt.Errorf("pubsub: events body: %w", err)
		}
		return page{evs: body.Events, closed: body.Closed}, nil
	})
	if err != nil {
		return nil, false, err
	}
	return out.evs, out.closed, nil
}
