// Package cdn implements the two-tier video CDN the paper reverse-engineered
// (§4.1): a Wowza-like Origin that ingests RTMP, fans frames out to RTMP
// viewers, and assembles HLS chunks; and Fastly-like Edge caches that serve
// HLS viewers, pulling from the origin only when a viewer poll finds an
// expired chunklist — optionally through a co-located gateway edge, the
// §5.3 relay structure that explains the Figure 15 co-location gap.
package cdn

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/geo"
	"repro/internal/hls"
	"repro/internal/media"
	"repro/internal/metrics"
	"repro/internal/rtmp"
)

// Invalidator is notified when a broadcast's chunklist changes, the
// "Wowza notifies Fastly to expire its old chunklist" step (⑧ in Fig. 10).
type Invalidator interface {
	Invalidate(broadcastID string, version uint64)
}

// OriginConfig configures an Origin.
type OriginConfig struct {
	// Site is the datacenter this origin runs in.
	Site geo.Datacenter
	// ChunkDuration for HLS assembly; zero means the 3 s default.
	ChunkDuration time.Duration
	// RTMP configures the ingest/fan-out server. Tap and OnEnd are
	// chained: the origin installs its own and forwards to any set here.
	RTMP rtmp.ServerConfig
	// Retention keeps ended broadcasts queryable for this long before
	// Sweep removes them; zero means keep until Remove is called.
	Retention time.Duration
	// Clock is the time source for chunk-ready and broadcast-end stamps;
	// nil means the real clock. It is also handed to the embedded RTMP
	// server (unless RTMP.Clock is set explicitly) so the whole ingest
	// path shares one time base.
	Clock clock.Clock
	// Metrics is the registry the origin's instruments register in,
	// labelled by site, and is forwarded to the embedded RTMP server
	// (unless RTMP.Metrics is set explicitly); nil means a private
	// registry.
	Metrics *metrics.Registry
}

// originMetrics instrument chunk assembly: every closed chunk counts once
// and observes its content duration into the chunking histogram — the
// paper's "chunking" delay component (a frame waits up to one chunk
// duration, 3 s nominal, before it can appear in any chunklist).
type originMetrics struct {
	chunks   *metrics.Counter
	chunking *metrics.Histogram
}

func newOriginMetrics(reg *metrics.Registry, site string) *originMetrics {
	l := metrics.L("site", site)
	return &originMetrics{
		chunks:   reg.Counter("cdn_origin_chunks_total", l),
		chunking: reg.Histogram(metrics.DelayChunking, metrics.DelayBuckets, l),
	}
}

// Origin is the Wowza analog: RTMP ingest plus authoritative chunk store.
type Origin struct {
	cfg  OriginConfig
	m    *originMetrics
	rtmp *rtmp.Server

	mu      sync.Mutex
	streams map[string]*originStream
	edges   []Invalidator
	endedAt map[string]time.Time
}

type originStream struct {
	chunker *media.Chunker
	list    *media.ChunkList
	chunks  map[uint64]*media.Chunk
	// chunkReadyAt records when each chunk became available at the origin
	// (timestamp ⑦), consumed by measurement taps.
	chunkReadyAt map[uint64]time.Time
	// listRaw caches the marshalled list at listRawVersion, built lazily on
	// the first raw request after each update so repeated polls between
	// chunk appends share one serialization.
	listRaw        []byte
	listRawVersion uint64
}

// NewOrigin builds an Origin and its embedded RTMP server.
func NewOrigin(cfg OriginConfig) *Origin {
	if cfg.Clock == nil {
		cfg.Clock = clock.NewReal()
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	o := &Origin{
		cfg:     cfg,
		m:       newOriginMetrics(cfg.Metrics, cfg.Site.ID),
		streams: make(map[string]*originStream),
		endedAt: make(map[string]time.Time),
	}
	userTap := cfg.RTMP.Tap
	userEnd := cfg.RTMP.OnEnd
	rc := cfg.RTMP
	if rc.Clock == nil {
		rc.Clock = cfg.Clock
	}
	if rc.Metrics == nil {
		rc.Metrics = cfg.Metrics
		rc.MetricsLabels = []metrics.Label{metrics.L("site", cfg.Site.ID)}
	}
	rc.Tap = func(id string, f media.Frame, at time.Time) {
		o.ingest(id, f, at)
		if userTap != nil {
			userTap(id, f, at)
		}
	}
	rc.OnEnd = func(id string) {
		o.endBroadcast(id)
		if userEnd != nil {
			userEnd(id)
		}
	}
	o.rtmp = rtmp.NewServer(rc)
	return o
}

// RTMP exposes the embedded ingest/fan-out server.
func (o *Origin) RTMP() *rtmp.Server { return o.rtmp }

// Site returns the origin's datacenter.
func (o *Origin) Site() geo.Datacenter { return o.cfg.Site }

// RegisterEdge subscribes an edge (or any Invalidator) to chunklist expiry
// notifications.
func (o *Origin) RegisterEdge(e Invalidator) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.edges = append(o.edges, e)
}

// Ingest feeds one frame into the HLS chunker directly, bypassing the RTMP
// listener. The benchmark harness uses it to isolate viewer-serving cost;
// production traffic arrives through the RTMP tap, which calls it too.
func (o *Origin) Ingest(id string, f media.Frame, at time.Time) { o.ingest(id, f, at) }

// ingest feeds one accepted RTMP frame into the HLS chunker.
func (o *Origin) ingest(id string, f media.Frame, at time.Time) {
	o.mu.Lock()
	st, ok := o.streams[id]
	if !ok {
		st = &originStream{
			chunker:      media.NewChunker(o.cfg.ChunkDuration),
			list:         &media.ChunkList{BroadcastID: id},
			chunks:       make(map[uint64]*media.Chunk),
			chunkReadyAt: make(map[uint64]time.Time),
		}
		o.streams[id] = st
	}
	chunk := st.chunker.Add(f)
	var version uint64
	if chunk != nil {
		st.chunks[chunk.Seq] = chunk
		st.chunkReadyAt[chunk.Seq] = at
		st.list.Append(media.ChunkRef{
			Seq:      chunk.Seq,
			Duration: chunk.Duration(),
			URI:      fmt.Sprintf("/hls/%s/chunk/%d", id, chunk.Seq),
		})
		version = st.list.Version
	}
	o.mu.Unlock()
	if chunk != nil {
		o.m.chunks.Inc()
		o.m.chunking.Observe(chunk.Duration())
		o.notify(id, version)
	}
}

func (o *Origin) endBroadcast(id string) {
	o.mu.Lock()
	st, ok := o.streams[id]
	if !ok {
		o.mu.Unlock()
		return
	}
	var flushed time.Duration
	if chunk := st.chunker.Flush(); chunk != nil {
		st.chunks[chunk.Seq] = chunk
		st.chunkReadyAt[chunk.Seq] = o.cfg.Clock.Now()
		st.list.Append(media.ChunkRef{
			Seq:      chunk.Seq,
			Duration: chunk.Duration(),
			URI:      fmt.Sprintf("/hls/%s/chunk/%d", id, chunk.Seq),
		})
		flushed = chunk.Duration()
	}
	st.list.Ended = true
	st.list.Version++
	version := st.list.Version
	o.endedAt[id] = o.cfg.Clock.Now()
	o.mu.Unlock()
	if flushed > 0 {
		o.m.chunks.Inc()
		o.m.chunking.Observe(flushed)
	}
	o.notify(id, version)
}

func (o *Origin) notify(id string, version uint64) {
	o.mu.Lock()
	edges := append([]Invalidator(nil), o.edges...)
	o.mu.Unlock()
	for _, e := range edges {
		e.Invalidate(id, version)
	}
}

// ChunkList implements hls.Store.
func (o *Origin) ChunkList(_ context.Context, id string) (*media.ChunkList, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	st, ok := o.streams[id]
	if !ok {
		return nil, hls.ErrNotFound
	}
	return st.list.Clone(), nil
}

// ChunkListRaw implements hls.RawLister. The marshalled bytes are cached per
// list version, so the steady stream of polls between chunk appends reuses
// one serialization. The returned bytes are shared; callers must not modify
// them.
//
//livesim:hotpath
func (o *Origin) ChunkListRaw(_ context.Context, id string) (hls.RawChunkList, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	st, ok := o.streams[id]
	if !ok {
		return hls.RawChunkList{}, hls.ErrNotFound
	}
	if st.listRaw == nil || st.listRawVersion != st.list.Version {
		st.listRaw = st.list.Marshal()
		st.listRawVersion = st.list.Version
	}
	return hls.RawChunkList{Version: st.list.Version, Data: st.listRaw}, nil
}

// Chunk implements hls.Store.
func (o *Origin) Chunk(_ context.Context, id string, seq uint64) (*media.Chunk, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	st, ok := o.streams[id]
	if !ok {
		return nil, hls.ErrNotFound
	}
	c, ok := st.chunks[seq]
	if !ok {
		return nil, hls.ErrNotFound
	}
	return c, nil
}

// ChunkReadyAt returns when chunk seq became available at the origin
// (timestamp ⑦), for delay measurement.
func (o *Origin) ChunkReadyAt(id string, seq uint64) (time.Time, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	st, ok := o.streams[id]
	if !ok {
		return time.Time{}, false
	}
	t, ok := st.chunkReadyAt[seq]
	return t, ok
}

// Remove drops all state for a broadcast.
func (o *Origin) Remove(id string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	delete(o.streams, id)
	delete(o.endedAt, id)
}

// Sweep removes broadcasts that ended more than the retention period ago.
// It is a no-op when retention is unset. Returns the number removed.
func (o *Origin) Sweep(now time.Time) int {
	if o.cfg.Retention == 0 {
		return 0
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	n := 0
	for id, at := range o.endedAt {
		if now.Sub(at) > o.cfg.Retention {
			delete(o.streams, id)
			delete(o.endedAt, id)
			n++
		}
	}
	return n
}

// Live reports the number of active (not yet ended) broadcasts with chunks.
func (o *Origin) Live() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	n := 0
	for id := range o.streams {
		if _, ended := o.endedAt[id]; !ended {
			n++
		}
	}
	return n
}
