// Package cdn implements the two-tier video CDN the paper reverse-engineered
// (§4.1): a Wowza-like Origin that ingests RTMP, fans frames out to RTMP
// viewers, and assembles HLS chunks; and Fastly-like Edge caches that serve
// HLS viewers, pulling from the origin only when a viewer poll finds an
// expired chunklist — optionally through a co-located gateway edge, the
// §5.3 relay structure that explains the Figure 15 co-location gap.
package cdn

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/geo"
	"repro/internal/hls"
	"repro/internal/journal"
	"repro/internal/media"
	"repro/internal/metrics"
	"repro/internal/rtmp"
)

// ErrOriginDown reports a crashed origin. Unlike hls.ErrNotFound it is a
// transient condition: edges treat it like any upstream fault (retry,
// breaker, serve-stale) rather than a terminal "broadcast gone", and
// failover pollers keep polling until the origin recovers.
var ErrOriginDown = errors.New("cdn: origin down")

// Invalidator is notified when a broadcast's chunklist changes, the
// "Wowza notifies Fastly to expire its old chunklist" step (⑧ in Fig. 10).
type Invalidator interface {
	Invalidate(broadcastID string, version uint64)
}

// OriginConfig configures an Origin.
type OriginConfig struct {
	// Site is the datacenter this origin runs in.
	Site geo.Datacenter
	// ChunkDuration for HLS assembly; zero means the 3 s default.
	ChunkDuration time.Duration
	// RTMP configures the ingest/fan-out server. Tap and OnEnd are
	// chained: the origin installs its own and forwards to any set here.
	RTMP rtmp.ServerConfig
	// Retention keeps ended broadcasts queryable for this long before
	// Sweep removes them; zero means keep until Remove is called.
	Retention time.Duration
	// Clock is the time source for chunk-ready and broadcast-end stamps;
	// nil means the real clock. It is also handed to the embedded RTMP
	// server (unless RTMP.Clock is set explicitly) so the whole ingest
	// path shares one time base.
	Clock clock.Clock
	// Metrics is the registry the origin's instruments register in,
	// labelled by site, and is forwarded to the embedded RTMP server
	// (unless RTMP.Metrics is set explicitly); nil means a private
	// registry.
	Metrics *metrics.Registry
	// Journal, when set, is the write-ahead log backing crash recovery:
	// broadcast creates, chunk seals, and broadcast ends are appended
	// through a group-commit writer, and NewOrigin replays whatever the
	// backend already holds — so constructing an origin over a non-empty
	// journal is the restart path. Nil disables journaling (no recovery,
	// zero overhead).
	Journal journal.Backend
	// Logf sinks journal replay/append diagnostics; nil discards.
	Logf func(format string, args ...interface{})
}

// originMetrics instrument chunk assembly: every closed chunk counts once
// and observes its content duration into the chunking histogram — the
// paper's "chunking" delay component (a frame waits up to one chunk
// duration, 3 s nominal, before it can appear in any chunklist).
type originMetrics struct {
	chunks   *metrics.Counter
	chunking *metrics.Histogram
	// replayed counts journal records rehydrated at startup; corruptTails
	// counts restarts that found (and discarded) a damaged journal tail.
	replayed     *metrics.Counter
	corruptTails *metrics.Counter
}

func newOriginMetrics(reg *metrics.Registry, site string) *originMetrics {
	l := metrics.L("site", site)
	return &originMetrics{
		chunks:       reg.Counter("cdn_origin_chunks_total", l),
		chunking:     reg.Histogram(metrics.DelayChunking, metrics.DelayBuckets, l),
		replayed:     reg.Counter("journal_replayed_records_total", l),
		corruptTails: reg.Counter("journal_corrupt_tails_total", l),
	}
}

// Origin is the Wowza analog: RTMP ingest plus authoritative chunk store.
type Origin struct {
	cfg OriginConfig
	m   *originMetrics

	// crashed marks a killed origin: serving methods answer ErrOriginDown,
	// and the RTMP tap/end closures become no-ops so handler goroutines
	// unwinding during the crash cannot mutate (or journal) anything.
	crashed atomic.Bool

	mu      sync.Mutex
	rtmp    *rtmp.Server
	jw      *journal.Writer
	streams map[string]*originStream
	edges   []Invalidator
	endedAt map[string]time.Time
	// pending holds broadcasts rehydrated from the journal whose publisher
	// has not reconnected yet; viewers dialing them get the retryable
	// StatusUnavailable instead of the terminal not-found.
	pending map[string]bool
}

type originStream struct {
	chunker *media.Chunker
	list    *media.ChunkList
	chunks  map[uint64]*media.Chunk
	// chunkReadyAt records when each chunk became available at the origin
	// (timestamp ⑦), consumed by measurement taps.
	chunkReadyAt map[uint64]time.Time
	// listRaw caches the marshalled list at listRawVersion, built lazily on
	// the first raw request after each update so repeated polls between
	// chunk appends share one serialization.
	listRaw        []byte
	listRawVersion uint64
	// resumeFloor is the first frame sequence not covered by replayed
	// chunks — set only by journal recovery. A reconnecting publisher is
	// asked to resume here, and any frame below it is already inside a
	// sealed chunk, so ingest drops it rather than re-chunk it.
	resumeFloor uint64
}

// NewOrigin builds an Origin and its embedded RTMP server. When the config
// carries a journal backend, whatever it already holds is replayed first —
// so pointing a fresh Origin at a crashed one's journal is the restart path.
func NewOrigin(cfg OriginConfig) *Origin {
	if cfg.Clock == nil {
		cfg.Clock = clock.NewReal()
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...interface{}) {}
	}
	o := &Origin{
		cfg:     cfg,
		m:       newOriginMetrics(cfg.Metrics, cfg.Site.ID),
		streams: make(map[string]*originStream),
		endedAt: make(map[string]time.Time),
		pending: make(map[string]bool),
	}
	o.mu.Lock()
	o.openJournalLocked()
	o.rtmp = o.newRTMPServer()
	o.mu.Unlock()
	return o
}

// newRTMPServer builds the embedded ingest server with the origin's tap,
// end, resume, and pending hooks chained in front of any user-configured
// ones. Called at construction and again on Recover — an aborted rtmp.Server
// cannot be restarted, a crashed process's sockets are gone.
func (o *Origin) newRTMPServer() *rtmp.Server {
	userTap := o.cfg.RTMP.Tap
	userEnd := o.cfg.RTMP.OnEnd
	rc := o.cfg.RTMP
	if rc.Clock == nil {
		rc.Clock = o.cfg.Clock
	}
	if rc.Metrics == nil {
		rc.Metrics = o.cfg.Metrics
		rc.MetricsLabels = []metrics.Label{metrics.L("site", o.cfg.Site.ID)}
	}
	rc.Tap = func(id string, f media.Frame, at time.Time) {
		if o.crashed.Load() {
			return
		}
		o.ingest(id, f, at)
		if userTap != nil {
			userTap(id, f, at)
		}
	}
	rc.OnEnd = func(id string) {
		if o.crashed.Load() {
			// A crash is not an end of broadcast: the control plane must
			// keep the record live so the publisher can resume after
			// recovery.
			return
		}
		o.endBroadcast(id)
		if userEnd != nil {
			userEnd(id)
		}
	}
	rc.ResumeSeq = o.resumeSeqFor
	rc.Pending = o.pendingBroadcast
	return rtmp.NewServer(rc)
}

// openJournalLocked replays the configured journal backend into the stream
// table, truncates any damaged tail, and starts the group-commit writer.
// No-op without a backend.
func (o *Origin) openJournalLocked() {
	backend := o.cfg.Journal
	if backend == nil {
		return
	}
	data, err := backend.Load()
	if err != nil {
		o.cfg.Logf("origin %s: journal load: %v", o.cfg.Site.ID, err)
		data = nil
	}
	st, err := journal.Replay(data, o.applyRecordLocked)
	if err != nil {
		// applyRecordLocked never fails; a non-nil error would mean the
		// journal package broke its own contract.
		o.cfg.Logf("origin %s: journal replay: %v", o.cfg.Site.ID, err)
	}
	if st.TailCorrupt {
		// Discard the damaged tail before appending anything new: bytes
		// written after a corrupt region would be unreachable to every
		// future replay.
		o.m.corruptTails.Inc()
		o.cfg.Logf("origin %s: journal tail corrupt: discarding %d bytes after %d records",
			o.cfg.Site.ID, st.DiscardedBytes, st.Records)
		if err := backend.Truncate(int64(st.ValidBytes)); err != nil {
			o.cfg.Logf("origin %s: journal truncate: %v", o.cfg.Site.ID, err)
		}
	}
	o.m.replayed.Add(int64(st.Records))
	o.jw = journal.NewWriter(backend, journal.WriterConfig{
		Metrics: o.cfg.Metrics,
		Labels:  []metrics.Label{metrics.L("site", o.cfg.Site.ID)},
		Logf:    o.cfg.Logf,
	})
}

// applyRecordLocked rehydrates one journal record into the stream table.
func (o *Origin) applyRecordLocked(r journal.Record) error {
	id := r.BroadcastID
	switch r.Type {
	case journal.RecordCreate:
		if _, ok := o.streams[id]; !ok {
			o.streams[id] = o.newStreamLocked(id)
			o.pending[id] = true
		}
	case journal.RecordSeal:
		st, ok := o.streams[id]
		if !ok {
			st = o.newStreamLocked(id)
			o.streams[id] = st
			o.pending[id] = true
		}
		chunk, err := media.UnmarshalChunk(r.Payload)
		if err != nil {
			// A CRC-valid record with an undecodable payload is a writer
			// bug, not tail damage; skip it rather than abort recovery.
			o.cfg.Logf("origin %s: journal chunk %s: %v", o.cfg.Site.ID, id, err)
			return nil
		}
		st.chunks[chunk.Seq] = chunk
		st.chunkReadyAt[chunk.Seq] = o.cfg.Clock.Now()
		st.list.Append(media.ChunkRef{
			Seq:      chunk.Seq,
			Duration: chunk.Duration(),
			URI:      fmt.Sprintf("/hls/%s/chunk/%d", id, chunk.Seq),
		})
		st.chunker.SkipTo(chunk.Seq + 1)
		if n := len(chunk.Frames); n > 0 {
			st.resumeFloor = chunk.Frames[n-1].Seq + 1
		}
	case journal.RecordEnd:
		st, ok := o.streams[id]
		if !ok {
			return nil
		}
		st.list.Ended = true
		st.list.Version++
		o.endedAt[id] = o.cfg.Clock.Now()
		delete(o.pending, id)
	}
	return nil
}

func (o *Origin) newStreamLocked(id string) *originStream {
	return &originStream{
		chunker:      media.NewChunker(o.cfg.ChunkDuration),
		list:         &media.ChunkList{BroadcastID: id},
		chunks:       make(map[uint64]*media.Chunk),
		chunkReadyAt: make(map[uint64]time.Time),
	}
}

// resumeSeqFor answers the embedded RTMP server's resume query for a
// reconnecting broadcaster: the first frame sequence past everything the
// journal preserved. It also clears the pending flag — the publisher is
// back.
func (o *Origin) resumeSeqFor(id string) uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	delete(o.pending, id)
	st, ok := o.streams[id]
	if !ok {
		return 0
	}
	return st.resumeFloor
}

// pendingBroadcast reports whether id was rehydrated from the journal and is
// still waiting for its publisher.
func (o *Origin) pendingBroadcast(id string) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.pending[id]
}

// RTMP exposes the embedded ingest/fan-out server (the current one — a
// recovered origin builds a fresh server, old handles are dead).
func (o *Origin) RTMP() *rtmp.Server {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.rtmp
}

// Crash simulates the origin process dying: the RTMP server is aborted (no
// clean end-of-broadcast reaches anyone), the journal writer is drained and
// closed (everything acknowledged before the crash is durable — the fsync
// already happened), and all volatile state is dropped. The Origin object
// itself survives, answering ErrOriginDown, until Recover.
func (o *Origin) Crash() {
	if !o.crashed.CompareAndSwap(false, true) {
		return
	}
	o.mu.Lock()
	srv := o.rtmp
	jw := o.jw
	o.jw = nil
	o.mu.Unlock()
	srv.Abort()
	if jw != nil {
		jw.Close()
	}
	o.mu.Lock()
	o.streams = make(map[string]*originStream)
	o.endedAt = make(map[string]time.Time)
	o.pending = make(map[string]bool)
	o.edges = nil
	o.mu.Unlock()
}

// Killed reports whether the origin is crashed.
func (o *Origin) Killed() bool { return o.crashed.Load() }

// Close shuts down the origin gracefully: the RTMP server ends every
// broadcast cleanly and the journal writer drains. The inverse of Crash.
func (o *Origin) Close() error {
	o.mu.Lock()
	srv := o.rtmp
	jw := o.jw
	o.jw = nil
	o.mu.Unlock()
	err := srv.Close()
	if jw != nil {
		jw.Close()
	}
	return err
}

// Recover restarts a crashed origin: journal replay rebuilds every live
// broadcast and its sealed chunks, a fresh RTMP server is constructed (the
// caller re-listens and re-registers edges), and the origin serves again.
// No-op on a healthy origin.
func (o *Origin) Recover() {
	if !o.crashed.Load() {
		return
	}
	o.mu.Lock()
	o.openJournalLocked()
	o.rtmp = o.newRTMPServer()
	o.mu.Unlock()
	o.crashed.Store(false)
}

// Site returns the origin's datacenter.
func (o *Origin) Site() geo.Datacenter { return o.cfg.Site }

// RegisterEdge subscribes an edge (or any Invalidator) to chunklist expiry
// notifications.
func (o *Origin) RegisterEdge(e Invalidator) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.edges = append(o.edges, e)
}

// Ingest feeds one frame into the HLS chunker directly, bypassing the RTMP
// listener. The benchmark harness uses it to isolate viewer-serving cost;
// production traffic arrives through the RTMP tap, which calls it too.
func (o *Origin) Ingest(id string, f media.Frame, at time.Time) { o.ingest(id, f, at) }

// ingest feeds one accepted RTMP frame into the HLS chunker. Journal
// appends happen after the lock is released — they only enqueue onto the
// group-commit writer, and per-broadcast ordering holds because one handler
// goroutine serves each broadcast.
func (o *Origin) ingest(id string, f media.Frame, at time.Time) {
	o.mu.Lock()
	st, ok := o.streams[id]
	created := false
	if !ok {
		st = o.newStreamLocked(id)
		o.streams[id] = st
		created = true
	}
	if f.Seq < st.resumeFloor {
		// A resuming publisher replays from the journal floor; anything
		// below it is already inside a sealed, durable chunk.
		o.mu.Unlock()
		return
	}
	chunk := st.chunker.Add(f)
	var version uint64
	if chunk != nil {
		st.chunks[chunk.Seq] = chunk
		st.chunkReadyAt[chunk.Seq] = at
		st.list.Append(media.ChunkRef{
			Seq:      chunk.Seq,
			Duration: chunk.Duration(),
			URI:      fmt.Sprintf("/hls/%s/chunk/%d", id, chunk.Seq),
		})
		version = st.list.Version
	}
	jw := o.jw
	o.mu.Unlock()
	if jw != nil {
		if created {
			o.journalAppend(jw, journal.Record{Type: journal.RecordCreate, BroadcastID: id})
		}
		if chunk != nil {
			o.journalAppend(jw, journal.Record{Type: journal.RecordSeal, BroadcastID: id, Payload: media.MarshalChunk(chunk)})
		}
	}
	if chunk != nil {
		o.m.chunks.Inc()
		o.m.chunking.Observe(chunk.Duration())
		o.notify(id, version)
	}
}

func (o *Origin) journalAppend(jw *journal.Writer, r journal.Record) {
	if err := jw.Append(r); err != nil && !errors.Is(err, journal.ErrClosed) {
		o.cfg.Logf("origin %s: journal append: %v", o.cfg.Site.ID, err)
	}
}

func (o *Origin) endBroadcast(id string) {
	o.mu.Lock()
	st, ok := o.streams[id]
	if !ok {
		o.mu.Unlock()
		return
	}
	flushedChunk := st.chunker.Flush()
	if flushedChunk != nil {
		st.chunks[flushedChunk.Seq] = flushedChunk
		st.chunkReadyAt[flushedChunk.Seq] = o.cfg.Clock.Now()
		st.list.Append(media.ChunkRef{
			Seq:      flushedChunk.Seq,
			Duration: flushedChunk.Duration(),
			URI:      fmt.Sprintf("/hls/%s/chunk/%d", id, flushedChunk.Seq),
		})
	}
	st.list.Ended = true
	st.list.Version++
	version := st.list.Version
	o.endedAt[id] = o.cfg.Clock.Now()
	jw := o.jw
	o.mu.Unlock()
	if jw != nil {
		if flushedChunk != nil {
			o.journalAppend(jw, journal.Record{Type: journal.RecordSeal, BroadcastID: id, Payload: media.MarshalChunk(flushedChunk)})
		}
		o.journalAppend(jw, journal.Record{Type: journal.RecordEnd, BroadcastID: id})
	}
	if flushedChunk != nil {
		o.m.chunks.Inc()
		o.m.chunking.Observe(flushedChunk.Duration())
	}
	o.notify(id, version)
}

func (o *Origin) notify(id string, version uint64) {
	o.mu.Lock()
	edges := append([]Invalidator(nil), o.edges...)
	o.mu.Unlock()
	for _, e := range edges {
		e.Invalidate(id, version)
	}
}

// ChunkList implements hls.Store. A cancelled context is honored before the
// lock is taken, so callers abandoning a pull never queue on a contended
// origin.
func (o *Origin) ChunkList(ctx context.Context, id string) (*media.ChunkList, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if o.crashed.Load() {
		return nil, ErrOriginDown
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	st, ok := o.streams[id]
	if !ok {
		return nil, hls.ErrNotFound
	}
	return st.list.Clone(), nil
}

// ChunkListRaw implements hls.RawLister. The marshalled bytes are cached per
// list version, so the steady stream of polls between chunk appends reuses
// one serialization. The returned bytes are shared; callers must not modify
// them.
//
//livesim:hotpath
func (o *Origin) ChunkListRaw(ctx context.Context, id string) (hls.RawChunkList, error) {
	if err := ctx.Err(); err != nil {
		return hls.RawChunkList{}, err
	}
	if o.crashed.Load() {
		return hls.RawChunkList{}, ErrOriginDown
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	st, ok := o.streams[id]
	if !ok {
		return hls.RawChunkList{}, hls.ErrNotFound
	}
	if st.listRaw == nil || st.listRawVersion != st.list.Version {
		st.listRaw = st.list.Marshal()
		st.listRawVersion = st.list.Version
	}
	return hls.RawChunkList{Version: st.list.Version, Data: st.listRaw}, nil
}

// Chunk implements hls.Store. Like ChunkList, it honors cancellation before
// lock acquisition and answers ErrOriginDown while crashed.
func (o *Origin) Chunk(ctx context.Context, id string, seq uint64) (*media.Chunk, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if o.crashed.Load() {
		return nil, ErrOriginDown
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	st, ok := o.streams[id]
	if !ok {
		return nil, hls.ErrNotFound
	}
	c, ok := st.chunks[seq]
	if !ok {
		return nil, hls.ErrNotFound
	}
	return c, nil
}

// ChunkReadyAt returns when chunk seq became available at the origin
// (timestamp ⑦), for delay measurement.
func (o *Origin) ChunkReadyAt(id string, seq uint64) (time.Time, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	st, ok := o.streams[id]
	if !ok {
		return time.Time{}, false
	}
	t, ok := st.chunkReadyAt[seq]
	return t, ok
}

// Remove drops all state for a broadcast.
func (o *Origin) Remove(id string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	delete(o.streams, id)
	delete(o.endedAt, id)
}

// Sweep removes broadcasts that ended more than the retention period ago.
// It is a no-op when retention is unset. Returns the number removed.
func (o *Origin) Sweep(now time.Time) int {
	if o.cfg.Retention == 0 {
		return 0
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	n := 0
	for id, at := range o.endedAt {
		if now.Sub(at) > o.cfg.Retention {
			delete(o.streams, id)
			delete(o.endedAt, id)
			n++
		}
	}
	return n
}

// Live reports the number of active (not yet ended) broadcasts with chunks.
func (o *Origin) Live() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	n := 0
	for id := range o.streams {
		if _, ended := o.endedAt[id]; !ended {
			n++
		}
	}
	return n
}
