package cdn

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/hls"
)

// TestEdgePullsOverHTTP wires an edge to its origin across a real HTTP hop
// (the deployment shape of the Wowza→Fastly path) and verifies the full
// pull-through behaviour survives the network boundary.
func TestEdgePullsOverHTTP(t *testing.T) {
	origin := NewOrigin(OriginConfig{Site: site("o1", "X"), ChunkDuration: time.Second})
	originSrv := httptest.NewServer(hls.Handler("/hls", origin))
	defer originSrv.Close()

	remote := hls.RemoteStore{Client: &hls.Client{BaseURL: originSrv.URL + "/hls"}}
	edge := NewEdge(EdgeConfig{
		Site:    site("e1", "Y"),
		Resolve: func(string) (Upstream, error) { return Upstream{Store: remote}, nil },
	})
	origin.RegisterEdge(edge)

	feedFrames(origin, "b1", 60) // two 1s chunks
	ctx := context.Background()
	cl, err := edge.ChunkList(ctx, "b1")
	if err != nil {
		t.Fatal(err)
	}
	if len(cl.Chunks) != 2 {
		t.Fatalf("edge chunks over HTTP = %d, want 2", len(cl.Chunks))
	}
	c, err := edge.Chunk(ctx, "b1", 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.Seq != 1 || len(c.Frames) != 25 {
		t.Fatalf("chunk = seq %d, %d frames", c.Seq, len(c.Frames))
	}
	// Chunks were copied during the list pull: the fetch above was a hit.
	if edge.m.chunkHits.Value() != 1 {
		t.Fatalf("ChunkHits = %d", edge.m.chunkHits.Value())
	}

	// A second edge, served BY the first edge over HTTP: the gateway
	// relay across a real network boundary.
	gwSrv := httptest.NewServer(hls.Handler("/hls", edge))
	defer gwSrv.Close()
	far := NewEdge(EdgeConfig{
		Site: site("e2", "Z"),
		Resolve: func(string) (Upstream, error) {
			return Upstream{Store: hls.RemoteStore{Client: &hls.Client{BaseURL: gwSrv.URL + "/hls"}}}, nil
		},
	})
	origin.RegisterEdge(far)
	cl2, err := far.ChunkList(ctx, "b1")
	if err != nil {
		t.Fatal(err)
	}
	if len(cl2.Chunks) != 2 {
		t.Fatalf("relayed chunks = %d", len(cl2.Chunks))
	}
	if _, err := far.Chunk(ctx, "b1", 0); err != nil {
		t.Fatal(err)
	}
}
