package cdn

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/geo"
	"repro/internal/hls"
	"repro/internal/media"
)

// Upstream resolves which store an edge pulls a broadcast from: the origin
// directly (co-located/gateway edges) or another edge acting as gateway
// (§5.3). The returned TransferDelay, if non-nil, is slept before each pull
// to model the WAN hop in real-socket mode.
type Upstream struct {
	Store hls.Store
	// TransferDelay injects per-pull WAN latency; may be nil.
	TransferDelay func() time.Duration
}

// EdgeConfig configures an Edge.
type EdgeConfig struct {
	// Site is the edge's datacenter.
	Site geo.Datacenter
	// Resolve maps a broadcast to its upstream. Required.
	Resolve func(broadcastID string) (Upstream, error)
}

// EdgeStats count cache behaviour, the scalability currency of HLS.
type EdgeStats struct {
	ListHits    atomic.Int64 // polls served from the cached, fresh list
	ListPulls   atomic.Int64 // polls that triggered an upstream pull (⑩)
	ChunkHits   atomic.Int64
	ChunkPulls  atomic.Int64
	Invalidates atomic.Int64
}

// Edge is the Fastly analog: a pull-through cache for chunklists and chunks.
// A viewer poll that finds the cached chunklist expired triggers the
// upstream pull (⑨→⑩→⑪ in Fig. 10); chunks referenced by a fresh list are
// copied eagerly so subsequent polls are served locally.
type Edge struct {
	cfg   EdgeConfig
	stats EdgeStats

	mu    sync.Mutex
	cache map[string]*edgeEntry
}

type edgeEntry struct {
	list  *media.ChunkList
	stale bool
	// chunkArrivedAt records when each chunk was copied to this edge
	// (timestamp ⑪), for measurement.
	chunkArrivedAt map[uint64]time.Time
	chunks         map[uint64]*media.Chunk
}

// NewEdge builds an Edge.
func NewEdge(cfg EdgeConfig) *Edge {
	return &Edge{cfg: cfg, cache: make(map[string]*edgeEntry)}
}

// Site returns the edge's datacenter.
func (e *Edge) Site() geo.Datacenter { return e.cfg.Site }

// Stats exposes the cache counters.
func (e *Edge) Stats() *EdgeStats { return &e.stats }

// Invalidate implements Invalidator: it marks the cached list stale. The
// fresh copy is NOT fetched here — the paper's architecture defers that to
// the first subsequent viewer poll.
func (e *Edge) Invalidate(broadcastID string, version uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if ent, ok := e.cache[broadcastID]; ok {
		if ent.list == nil || version > ent.list.Version {
			ent.stale = true
		}
	}
	e.stats.Invalidates.Add(1)
}

// ChunkList implements hls.Store for viewers. A fresh cached list is served
// directly; a stale or missing one triggers the upstream pull.
func (e *Edge) ChunkList(ctx context.Context, id string) (*media.ChunkList, error) {
	e.mu.Lock()
	ent, ok := e.cache[id]
	if ok && ent.list != nil && !ent.stale {
		cl := ent.list.Clone()
		e.mu.Unlock()
		e.stats.ListHits.Add(1)
		return cl, nil
	}
	e.mu.Unlock()
	return e.pull(ctx, id)
}

// pull refreshes the cached list and eagerly copies new chunks.
func (e *Edge) pull(ctx context.Context, id string) (*media.ChunkList, error) {
	up, err := e.cfg.Resolve(id)
	if err != nil {
		return nil, err
	}
	if up.TransferDelay != nil {
		if err := sleepCtx(ctx, up.TransferDelay()); err != nil {
			return nil, err
		}
	}
	list, err := up.Store.ChunkList(ctx, id)
	if err != nil {
		return nil, err
	}
	e.stats.ListPulls.Add(1)

	// Copy chunks we do not have yet (the ⑪ transfer).
	e.mu.Lock()
	ent, ok := e.cache[id]
	if !ok {
		ent = &edgeEntry{
			chunks:         make(map[uint64]*media.Chunk),
			chunkArrivedAt: make(map[uint64]time.Time),
		}
		e.cache[id] = ent
	}
	var missing []media.ChunkRef
	for _, ref := range list.Chunks {
		if _, have := ent.chunks[ref.Seq]; !have {
			missing = append(missing, ref)
		}
	}
	e.mu.Unlock()

	for _, ref := range missing {
		if up.TransferDelay != nil {
			if err := sleepCtx(ctx, up.TransferDelay()); err != nil {
				return nil, err
			}
		}
		c, err := up.Store.Chunk(ctx, id, ref.Seq)
		if err != nil {
			continue // chunk may have rolled out of the origin window
		}
		e.stats.ChunkPulls.Add(1)
		e.mu.Lock()
		ent.chunks[ref.Seq] = c
		ent.chunkArrivedAt[ref.Seq] = time.Now()
		e.mu.Unlock()
	}

	e.mu.Lock()
	ent.list = list.Clone()
	ent.stale = false
	cl := ent.list.Clone()
	e.mu.Unlock()
	return cl, nil
}

// Chunk implements hls.Store for viewers, pulling through on miss.
func (e *Edge) Chunk(ctx context.Context, id string, seq uint64) (*media.Chunk, error) {
	e.mu.Lock()
	if ent, ok := e.cache[id]; ok {
		if c, ok := ent.chunks[seq]; ok {
			e.mu.Unlock()
			e.stats.ChunkHits.Add(1)
			return c, nil
		}
	}
	e.mu.Unlock()

	up, err := e.cfg.Resolve(id)
	if err != nil {
		return nil, err
	}
	if up.TransferDelay != nil {
		if err := sleepCtx(ctx, up.TransferDelay()); err != nil {
			return nil, err
		}
	}
	c, err := up.Store.Chunk(ctx, id, seq)
	if err != nil {
		return nil, err
	}
	e.stats.ChunkPulls.Add(1)
	e.mu.Lock()
	ent, ok := e.cache[id]
	if !ok {
		ent = &edgeEntry{
			chunks:         make(map[uint64]*media.Chunk),
			chunkArrivedAt: make(map[uint64]time.Time),
		}
		e.cache[id] = ent
	}
	ent.chunks[seq] = c
	ent.chunkArrivedAt[seq] = time.Now()
	e.mu.Unlock()
	return c, nil
}

// ChunkArrivedAt returns when chunk seq was copied to this edge (⑪).
func (e *Edge) ChunkArrivedAt(id string, seq uint64) (time.Time, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	ent, ok := e.cache[id]
	if !ok {
		return time.Time{}, false
	}
	t, ok := ent.chunkArrivedAt[seq]
	return t, ok
}

// Evict drops a broadcast from the cache.
func (e *Edge) Evict(id string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	delete(e.cache, id)
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
