package cdn

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/geo"
	"repro/internal/hls"
	"repro/internal/media"
	"repro/internal/metrics"
	"repro/internal/resilience"
)

// Upstream resolves which store an edge pulls a broadcast from: the origin
// directly (co-located/gateway edges) or another edge acting as gateway
// (§5.3). The returned TransferDelay, if non-nil, is slept before each pull
// to model the WAN hop in real-socket mode.
type Upstream struct {
	Store hls.Store
	// TransferDelay injects per-pull WAN latency; may be nil.
	TransferDelay func() time.Duration
}

// ChunkUsage sinks delivered-chunk counts for usage metering. The edge
// resolves one per cached broadcast at entry creation (cold path) and calls
// MeterChunks when a chunk is served — implementations must be
// allocation-free atomic accumulators (control.TenantMeter is the real one).
type ChunkUsage interface {
	MeterChunks(chunks, bytes int64)
}

// EdgeConfig configures an Edge.
type EdgeConfig struct {
	// Site is the edge's datacenter.
	Site geo.Datacenter
	// Resolve maps a broadcast to its upstream. Required.
	Resolve func(broadcastID string) (Upstream, error)
	// TenantOf maps a broadcast to its owning tenant ("" for untenanted).
	// Resolved on pull paths, never under a shard lock (it reaches into the
	// control plane, which takes its own mutex). Nil disables attribution.
	TenantOf func(broadcastID string) string
	// TenantUsage resolves the usage accumulator for a broadcast's tenant
	// (nil for untenanted). Same calling discipline as TenantOf.
	TenantUsage func(broadcastID string) ChunkUsage
	// Retry bounds upstream pull attempts on transient errors. The zero
	// value uses 3 attempts with a 5 ms base delay capped at 100 ms —
	// short enough that a viewer poll absorbs the retries.
	Retry resilience.Policy
	// Breaker tunes the per-broadcast upstream circuit breaker; the zero
	// value opens after 5 consecutive failures for 1 s.
	Breaker resilience.BreakerConfig
	// MaxInflight caps concurrently served store calls (chunklist and
	// chunk fetches combined). Zero or negative disables shedding — the
	// pre-fleet-health behaviour.
	MaxInflight int
	// QueueDepth bounds how many over-limit requests may wait for a slot
	// before new arrivals are shed immediately.
	QueueDepth int
	// QueueWait bounds how long a queued request waits for a slot before
	// being shed (default 100 ms).
	QueueWait time.Duration
	// ShedRetryAfter is the Retry-After hint attached to sheds (default
	// 1 s).
	ShedRetryAfter time.Duration
	// Clock is the time source for arrival stamps and queue waits; nil
	// means the real clock. Trace-driven simulations inject a
	// clock.Virtual so chunk arrival times are seed-determined.
	Clock clock.Clock
	// Metrics is the registry the edge's instruments register in, labelled
	// by site; nil means a private registry.
	Metrics *metrics.Registry
}

// edgeMetrics are the edge's registered cache instruments — the scalability
// currency of HLS — plus the origin→edge transfer histogram (the paper's
// Wowza2Fastly component). Observers read them through the registry
// (EdgeConfig.Metrics), labelled by site: cdn_list_hits_total (polls served
// from the cached, fresh list), cdn_list_pulls_total (polls that triggered an
// upstream pull, ⑩), cdn_chunk_pull_errors_total (chunk copies that failed
// during a list pull — e.g. the chunk rolled out of the origin window, §4.3 —
// leaving the entry stale so the next poll retries), cdn_stale_serves_total
// (polls answered from the last cached list because the upstream was
// unreachable, the graceful degradation real Fastly exhibits instead of a
// 5xx), cdn_pull_retries_total (pull attempts beyond each first try), and
// cdn_sheds_total (requests refused over the concurrency limit, served as
// 503 + Retry-After).
type edgeMetrics struct {
	listHits        *metrics.Counter
	listPulls       *metrics.Counter
	chunkHits       *metrics.Counter
	chunkPulls      *metrics.Counter
	invalidates     *metrics.Counter
	chunkPullErrors *metrics.Counter
	staleServes     *metrics.Counter
	pullRetries     *metrics.Counter
	sheds           *metrics.Counter
	originEdge      *metrics.Histogram
}

func newEdgeMetrics(reg *metrics.Registry, site string) *edgeMetrics {
	l := metrics.L("site", site)
	return &edgeMetrics{
		listHits:        reg.Counter("cdn_list_hits_total", l),
		listPulls:       reg.Counter("cdn_list_pulls_total", l),
		chunkHits:       reg.Counter("cdn_chunk_hits_total", l),
		chunkPulls:      reg.Counter("cdn_chunk_pulls_total", l),
		invalidates:     reg.Counter("cdn_invalidates_total", l),
		chunkPullErrors: reg.Counter("cdn_chunk_pull_errors_total", l),
		staleServes:     reg.Counter("cdn_stale_serves_total", l),
		pullRetries:     reg.Counter("cdn_pull_retries_total", l),
		sheds:           reg.Counter("cdn_sheds_total", l),
		originEdge:      reg.Histogram(metrics.DelayOriginEdge, metrics.DelayBuckets, l),
	}
}

// Edge is the Fastly analog: a pull-through cache for chunklists and chunks.
// A viewer poll that finds the cached chunklist expired triggers the
// upstream pull (⑨→⑩→⑪ in Fig. 10); chunks referenced by a fresh list are
// copied eagerly so subsequent polls are served locally. Pulls for the same
// broadcast are single-flighted, retried with backoff, guarded by a circuit
// breaker, and degrade to serving the stale cached list when the upstream
// stays unreachable.
type Edge struct {
	cfg EdgeConfig
	m   *edgeMetrics

	// flight collapses the poll stampede at chunklist expiry — N viewers
	// finding the list stale trigger one upstream pull, not N (§5.2).
	flight resilience.Group[*media.ChunkList]

	// state is the fleet lifecycle: active edges serve, draining edges
	// serve but hint viewers away, killed edges answer nothing.
	state atomic.Int32

	limit limiter

	// shards partition cache entries and breakers by broadcast ID so polls
	// for different broadcasts never contend on one mutex.
	shards [edgeShards]edgeShard
}

// edgeShards is the shard count; a power of two so the hash reduction is a
// mask.
const edgeShards = 16

// edgeShard holds the cache entries and circuit breakers for the broadcast
// IDs that hash to it, under its own mutex.
type edgeShard struct {
	mu       sync.Mutex
	cache    map[string]*edgeEntry
	breakers map[string]*resilience.Breaker
}

// shard maps a broadcast ID to its shard with inline FNV-1a (no allocation
// on the poll path).
func (e *Edge) shard(id string) *edgeShard {
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= 16777619
	}
	return &e.shards[h&(edgeShards-1)]
}

// Edge lifecycle states.
const (
	edgeActive int32 = iota
	edgeDraining
	edgeKilled
)

// ErrEdgeDown is what a killed edge answers every request with — the closest
// loopback analog of a crashed process (the HLS handler maps it to a generic
// 500, exactly what a viewer of a dying Fastly node would see).
var ErrEdgeDown = errors.New("cdn: edge down")

type edgeEntry struct {
	list  *media.ChunkList
	stale bool
	// listRaw is the marshalled form of list, built once when the pull
	// stores it so every poll between updates reuses the same bytes. It is
	// shared with in-flight responses and must never be mutated in place —
	// updates replace the slice.
	listRaw []byte
	// chunkArrivedAt records when each chunk was copied to this edge
	// (timestamp ⑪), for measurement.
	chunkArrivedAt map[uint64]time.Time
	chunks         map[uint64]*media.Chunk
	// Tenant attribution handles, resolved outside the shard lock on pull
	// paths and cached here so the chunk-serve path is atomic adds on cached
	// pointers — zero allocations per serve. All nil for untenanted
	// broadcasts (and until the control plane knows the broadcast; pulls
	// re-resolve, so attribution self-heals after a control recovery).
	tChunks *metrics.Counter
	tBytes  *metrics.Counter
	usage   ChunkUsage
}

// tenantTaps carries one broadcast's resolved attribution handles between
// the (lock-free) resolution and the shard-locked cache entry.
type tenantTaps struct {
	chunks *metrics.Counter
	bytes  *metrics.Counter
	delay  *metrics.Histogram
	usage  ChunkUsage
}

// resolveTenant resolves per-tenant attribution for a broadcast. MUST be
// called outside any shard lock: TenantOf/TenantUsage reach into the control
// plane, which takes its own mutex, and nesting that under a shard lock
// would order locks across layers.
func (e *Edge) resolveTenant(id string) tenantTaps {
	var t tenantTaps
	if e.cfg.TenantOf == nil {
		return t
	}
	tenant := e.cfg.TenantOf(id)
	if tenant == "" {
		return t
	}
	ls := []metrics.Label{metrics.L("site", e.cfg.Site.ID), metrics.L("tenant", tenant)}
	t.chunks = e.cfg.Metrics.Counter("cdn_tenant_chunks_out_total", ls...)
	t.bytes = e.cfg.Metrics.Counter("cdn_tenant_bytes_out_total", ls...)
	t.delay = e.cfg.Metrics.Histogram("cdn_tenant_origin_edge_seconds", metrics.DelayBuckets, ls...)
	if e.cfg.TenantUsage != nil {
		t.usage = e.cfg.TenantUsage(id)
	}
	return t
}

// setTapsLocked caches resolved attribution on the entry. Called with the
// shard lock held; no-op when the resolution came back empty, so an entry
// attributed once keeps its handles.
func (ent *edgeEntry) setTapsLocked(t tenantTaps) {
	if t.chunks == nil {
		return
	}
	ent.tChunks, ent.tBytes, ent.usage = t.chunks, t.bytes, t.usage
}

// NewEdge builds an Edge.
func NewEdge(cfg EdgeConfig) *Edge {
	if cfg.Retry.MaxAttempts == 0 {
		cfg.Retry.MaxAttempts = 3
	}
	if cfg.Retry.BaseDelay == 0 {
		cfg.Retry.BaseDelay = 5 * time.Millisecond
	}
	if cfg.Retry.MaxDelay == 0 {
		cfg.Retry.MaxDelay = 100 * time.Millisecond
	}
	if cfg.QueueWait <= 0 {
		cfg.QueueWait = 100 * time.Millisecond
	}
	if cfg.ShedRetryAfter <= 0 {
		cfg.ShedRetryAfter = time.Second
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.NewReal()
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	e := &Edge{cfg: cfg, m: newEdgeMetrics(cfg.Metrics, cfg.Site.ID)}
	for i := range e.shards {
		e.shards[i].cache = make(map[string]*edgeEntry)
		e.shards[i].breakers = make(map[string]*resilience.Breaker)
	}
	e.limit.clk = cfg.Clock
	e.limit.set(cfg.MaxInflight, cfg.QueueDepth, cfg.QueueWait)
	// Breaker state is derived at scrape time: the count of broadcasts whose
	// upstream circuit is not closed on this edge.
	cfg.Metrics.GaugeFunc("cdn_breakers_open", e.openBreakers, metrics.L("site", cfg.Site.ID))
	return e
}

// openBreakers counts per-broadcast circuit breakers that are open or
// half-open. Breaker pointers are collected under each shard lock and
// interrogated outside it, so no breaker lock nests inside a shard lock.
func (e *Edge) openBreakers() int64 {
	var n int64
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.Lock()
		brs := make([]*resilience.Breaker, 0, len(sh.breakers))
		for _, b := range sh.breakers {
			brs = append(brs, b)
		}
		sh.mu.Unlock()
		for _, b := range brs {
			if b.State() != resilience.Closed {
				n++
			}
		}
	}
	return n
}

// SetLimits retunes the concurrency cap at runtime (the chaos soak uses it
// to provoke an overload phase without rebuilding the platform). maxInflight
// ≤ 0 disables shedding; queued requests wait at most queueWait for a slot.
func (e *Edge) SetLimits(maxInflight, queueDepth int, queueWait time.Duration) {
	if queueWait <= 0 {
		queueWait = e.cfg.QueueWait
	}
	e.limit.set(maxInflight, queueDepth, queueWait)
}

// Drain moves the edge into draining: it keeps serving (and finishes
// inflight pulls) but every response carries the drain hint so viewers
// migrate to a sibling. Draining is sticky; only a killed edge is further
// degraded.
func (e *Edge) Drain() { e.state.CompareAndSwap(edgeActive, edgeDraining) }

// Draining implements hls.Drainer for the HTTP handler's hint header.
func (e *Edge) Draining() bool { return e.state.Load() == edgeDraining }

// Kill makes the edge refuse all traffic with ErrEdgeDown — the chaos
// harness's stand-in for a crashed node.
func (e *Edge) Kill() { e.state.Store(edgeKilled) }

// Killed reports whether the edge has been killed.
func (e *Edge) Killed() bool { return e.state.Load() == edgeKilled }

// Site returns the edge's datacenter.
func (e *Edge) Site() geo.Datacenter { return e.cfg.Site }

// breaker returns the circuit breaker guarding a broadcast's upstream.
func (e *Edge) breaker(id string) *resilience.Breaker {
	sh := e.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	b, ok := sh.breakers[id]
	if !ok {
		b = resilience.NewBreaker(e.cfg.Breaker)
		sh.breakers[id] = b
	}
	return b
}

// Invalidate implements Invalidator: it marks the cached list stale. The
// fresh copy is NOT fetched here — the paper's architecture defers that to
// the first subsequent viewer poll. Only invalidations that actually mark a
// cached, fresh entry stale are counted.
func (e *Edge) Invalidate(broadcastID string, version uint64) {
	sh := e.shard(broadcastID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ent, ok := sh.cache[broadcastID]
	if !ok {
		return
	}
	if ent.list != nil && version <= ent.list.Version {
		return
	}
	if !ent.stale {
		ent.stale = true
		e.m.invalidates.Inc()
	}
}

// limiter is the edge's admission gate: at most maxInflight store calls run
// concurrently, up to queueDepth more wait (bounded by queueWait) for a
// slot, and everything beyond that is shed on arrival. Limits are mutable at
// runtime; a release races safely with SetLimits because slots are handed
// directly to the oldest waiter.
type limiter struct {
	// clk times the queue wait; set once at construction, before any
	// acquire.
	clk clock.Clock

	mu          sync.Mutex
	maxInflight int
	queueDepth  int
	queueWait   time.Duration
	inflight    int
	waiters     []chan struct{}
	// releaseFn is the l.release method value, bound once so admitting a
	// request does not allocate a closure per call. It is written only on
	// the first set() (always before any acquire), so later lock-free reads
	// are ordered by the mutex.
	releaseFn func()
}

func (l *limiter) set(maxInflight, queueDepth int, queueWait time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.releaseFn == nil {
		l.releaseFn = l.release
	}
	l.maxInflight = maxInflight
	l.queueDepth = queueDepth
	l.queueWait = queueWait
}

// errShed distinguishes an admission refusal from upstream errors.
var errShed = errors.New("cdn: shed")

// acquire admits the caller or returns errShed. On success the caller must
// invoke the returned release exactly once.
func (l *limiter) acquire(ctx context.Context) (func(), error) {
	l.mu.Lock()
	if l.maxInflight <= 0 {
		l.inflight++
		l.mu.Unlock()
		return l.releaseFn, nil
	}
	if l.inflight < l.maxInflight {
		l.inflight++
		l.mu.Unlock()
		return l.releaseFn, nil
	}
	if len(l.waiters) >= l.queueDepth {
		l.mu.Unlock()
		return nil, errShed
	}
	ch := make(chan struct{})
	l.waiters = append(l.waiters, ch)
	wait := l.queueWait
	l.mu.Unlock()

	select {
	case <-ch:
		// A releasing caller handed us its slot (inflight already counts
		// us).
		return l.releaseFn, nil
	case <-l.clk.After(wait):
	case <-ctx.Done():
	}
	// Timed out or cancelled — unless the grant raced us, in which case we
	// own a slot and must either use it (timeout) or give it back (cancel).
	l.mu.Lock()
	for i, w := range l.waiters {
		if w == ch {
			l.waiters = append(l.waiters[:i], l.waiters[i+1:]...)
			l.mu.Unlock()
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			return nil, errShed
		}
	}
	l.mu.Unlock()
	if ctx.Err() != nil {
		l.release()
		return nil, ctx.Err()
	}
	return l.releaseFn, nil
}

func (l *limiter) release() {
	l.mu.Lock()
	defer l.mu.Unlock()
	// Hand the slot to the oldest waiter rather than decrementing, so a
	// queued request cannot be starved by a new arrival.
	if len(l.waiters) > 0 && l.inflight <= l.maxInflight {
		ch := l.waiters[0]
		l.waiters = l.waiters[1:]
		close(ch)
		return
	}
	l.inflight--
}

// admit runs the lifecycle and load-shedding gate shared by ChunkList and
// Chunk. It returns a release func on success; a shed surfaces as
// hls.OverloadedError so the HTTP layer answers 503 + Retry-After.
func (e *Edge) admit(ctx context.Context) (func(), error) {
	if e.state.Load() == edgeKilled {
		return nil, ErrEdgeDown
	}
	rel, err := e.limit.acquire(ctx)
	if errors.Is(err, errShed) {
		e.m.sheds.Inc()
		return nil, &hls.OverloadedError{RetryAfter: e.cfg.ShedRetryAfter}
	}
	if err != nil {
		return nil, err
	}
	return rel, nil
}

// ChunkList implements hls.Store for viewers. A fresh cached list is served
// directly; a stale or missing one triggers the upstream pull. When the
// upstream is unreachable the last cached list is served stale rather than
// surfacing the error to the player.
func (e *Edge) ChunkList(ctx context.Context, id string) (*media.ChunkList, error) {
	rel, err := e.admit(ctx)
	if err != nil {
		return nil, err
	}
	defer rel()
	return e.chunkList(ctx, id)
}

func (e *Edge) chunkList(ctx context.Context, id string) (*media.ChunkList, error) {
	sh := e.shard(id)
	sh.mu.Lock()
	ent, ok := sh.cache[id]
	if ok && ent.list != nil && !ent.stale {
		cl := ent.list.Clone()
		sh.mu.Unlock()
		e.m.listHits.Inc()
		return cl, nil
	}
	sh.mu.Unlock()
	return e.refresh(ctx, id)
}

// ChunkListRaw implements hls.RawLister: steady-state polls are answered
// with the marshalled bytes cached at pull time, so the serving path neither
// clones the list nor re-serializes it per request. The returned bytes are
// shared and must be treated as immutable.
//
//livesim:hotpath
func (e *Edge) ChunkListRaw(ctx context.Context, id string) (hls.RawChunkList, error) {
	rel, err := e.admit(ctx)
	if err != nil {
		return hls.RawChunkList{}, err
	}
	defer rel()

	sh := e.shard(id)
	sh.mu.Lock()
	if ent, ok := sh.cache[id]; ok && ent.list != nil && !ent.stale && ent.listRaw != nil {
		raw := hls.RawChunkList{Version: ent.list.Version, Data: ent.listRaw}
		sh.mu.Unlock()
		e.m.listHits.Inc()
		return raw, nil
	}
	sh.mu.Unlock()

	cl, err := e.refresh(ctx, id)
	if err != nil {
		return hls.RawChunkList{}, err
	}
	// Serve the bytes the pull cached when they match the list we got;
	// otherwise marshal once (e.g. a stale serve whose entry was evicted
	// meanwhile).
	sh.mu.Lock()
	if ent, ok := sh.cache[id]; ok && ent.list != nil && ent.list.Version == cl.Version && ent.listRaw != nil {
		raw := hls.RawChunkList{Version: cl.Version, Data: ent.listRaw}
		sh.mu.Unlock()
		return raw, nil
	}
	sh.mu.Unlock()
	return hls.RawChunkList{Version: cl.Version, Data: cl.Marshal()}, nil
}

// refresh is the shared miss path: concurrent polls that all find the list
// expired share one upstream pull (single-flight). Waiters inherit the
// pulling caller's outcome; each gets its own clone.
func (e *Edge) refresh(ctx context.Context, id string) (*media.ChunkList, error) {
	cl, err, shared := e.flight.Do(id, func() (*media.ChunkList, error) {
		return e.pull(ctx, id)
	})
	if err != nil {
		return nil, err
	}
	if shared {
		cl = cl.Clone()
	}
	return cl, nil
}

// pull refreshes the cached list with retries and the circuit breaker,
// falling back to the stale cached copy when the upstream stays down.
func (e *Edge) pull(ctx context.Context, id string) (*media.ChunkList, error) {
	br := e.breaker(id)
	var attempts atomic.Int64
	list, err := resilience.RetryValue(ctx, e.cfg.Retry, func(ctx context.Context) (*media.ChunkList, error) {
		if attempts.Add(1) > 1 {
			e.m.pullRetries.Inc()
		}
		if err := br.Allow(); err != nil {
			// Fail fast while the circuit is open; the stale fallback
			// below still answers the poll.
			return nil, resilience.Permanent(err)
		}
		l, err := e.pullUpstream(ctx, id)
		if errors.Is(err, hls.ErrNotFound) {
			// A NotFound is a valid answer from a healthy upstream,
			// not an upstream failure; don't trip the breaker or retry.
			br.Report(nil)
			return nil, resilience.Permanent(err)
		}
		br.Report(err)
		return l, err
	})
	if err == nil {
		return list, nil
	}
	if errors.Is(err, hls.ErrNotFound) {
		return nil, err
	}
	// Serve-stale-on-error: a viewer poll that finds the origin
	// unreachable gets the last cached chunklist instead of a 5xx.
	sh := e.shard(id)
	sh.mu.Lock()
	if ent, ok := sh.cache[id]; ok && ent.list != nil {
		cl := ent.list.Clone()
		sh.mu.Unlock()
		e.m.staleServes.Inc()
		return cl, nil
	}
	sh.mu.Unlock()
	return nil, err
}

// pullUpstream performs one pull attempt: fetch the list and eagerly copy
// new chunks. Chunk copies that fail are counted and leave the entry stale
// so the next poll retries them.
func (e *Edge) pullUpstream(ctx context.Context, id string) (*media.ChunkList, error) {
	up, err := e.cfg.Resolve(id)
	if err != nil {
		return nil, err
	}
	if up.TransferDelay != nil {
		if err := sleepCtx(ctx, up.TransferDelay()); err != nil {
			return nil, err
		}
	}
	list, err := up.Store.ChunkList(ctx, id)
	if err != nil {
		return nil, err
	}
	e.m.listPulls.Inc()

	// Copy chunks we do not have yet (the ⑪ transfer).
	taps := e.resolveTenant(id)
	sh := e.shard(id)
	sh.mu.Lock()
	ent, ok := sh.cache[id]
	if !ok {
		ent = &edgeEntry{
			chunks:         make(map[uint64]*media.Chunk),
			chunkArrivedAt: make(map[uint64]time.Time),
		}
		sh.cache[id] = ent
	}
	ent.setTapsLocked(taps)
	var missing []media.ChunkRef
	for _, ref := range list.Chunks {
		if _, have := ent.chunks[ref.Seq]; !have {
			missing = append(missing, ref)
		}
	}
	sh.mu.Unlock()

	failed := 0
	for _, ref := range missing {
		// The ⑪ transfer is the paper's Wowza→Fastly component: time from
		// starting the hop (including the modelled WAN delay) to having the
		// chunk bytes at this edge.
		copyStart := e.cfg.Clock.Now()
		if up.TransferDelay != nil {
			if err := sleepCtx(ctx, up.TransferDelay()); err != nil {
				return nil, err
			}
		}
		c, err := up.Store.Chunk(ctx, id, ref.Seq)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			// Chunk fetch failed (it may have rolled out of the origin
			// window, or the hop dropped it). Count the failure and
			// leave the entry stale below so the next poll retries,
			// instead of caching a list whose chunks are missing.
			e.m.chunkPullErrors.Inc()
			failed++
			continue
		}
		e.m.chunkPulls.Inc()
		sh.mu.Lock()
		ent.chunks[ref.Seq] = c
		arrived := e.cfg.Clock.Now()
		ent.chunkArrivedAt[ref.Seq] = arrived
		sh.mu.Unlock()
		e.m.originEdge.Observe(arrived.Sub(copyStart))
		if taps.delay != nil {
			taps.delay.Observe(arrived.Sub(copyStart))
		}
	}

	sh.mu.Lock()
	ent.list = list.Clone()
	// Marshal once per update; every poll until the next invalidation
	// serves these same bytes.
	ent.listRaw = ent.list.Marshal()
	ent.stale = failed > 0
	cl := ent.list.Clone()
	sh.mu.Unlock()
	return cl, nil
}

// Chunk implements hls.Store for viewers, pulling through on miss with
// retries under the broadcast's circuit breaker.
func (e *Edge) Chunk(ctx context.Context, id string, seq uint64) (*media.Chunk, error) {
	rel, err := e.admit(ctx)
	if err != nil {
		return nil, err
	}
	defer rel()
	return e.chunk(ctx, id, seq)
}

func (e *Edge) chunk(ctx context.Context, id string, seq uint64) (*media.Chunk, error) {
	sh := e.shard(id)
	sh.mu.Lock()
	if ent, ok := sh.cache[id]; ok {
		if c, ok := ent.chunks[seq]; ok {
			// Copy the attribution handles out before unlocking; the
			// metering itself (atomic adds) runs outside the shard lock.
			tChunks, tBytes, usage := ent.tChunks, ent.tBytes, ent.usage
			sh.mu.Unlock()
			e.m.chunkHits.Inc()
			meterChunkServe(tChunks, tBytes, usage, c)
			return c, nil
		}
	}
	sh.mu.Unlock()

	taps := e.resolveTenant(id)
	br := e.breaker(id)
	c, err := resilience.RetryValue(ctx, e.cfg.Retry, func(ctx context.Context) (*media.Chunk, error) {
		if err := br.Allow(); err != nil {
			return nil, resilience.Permanent(err)
		}
		fetchStart := e.cfg.Clock.Now()
		c, err := e.fetchChunk(ctx, id, seq)
		if errors.Is(err, hls.ErrNotFound) {
			br.Report(nil)
			return nil, resilience.Permanent(err)
		}
		br.Report(err)
		if err == nil {
			d := e.cfg.Clock.Now().Sub(fetchStart)
			e.m.originEdge.Observe(d)
			if taps.delay != nil {
				taps.delay.Observe(d)
			}
		}
		return c, err
	})
	if err != nil {
		return nil, err
	}
	e.m.chunkPulls.Inc()
	sh.mu.Lock()
	ent, ok := sh.cache[id]
	if !ok {
		ent = &edgeEntry{
			chunks:         make(map[uint64]*media.Chunk),
			chunkArrivedAt: make(map[uint64]time.Time),
		}
		sh.cache[id] = ent
	}
	ent.setTapsLocked(taps)
	ent.chunks[seq] = c
	ent.chunkArrivedAt[seq] = e.cfg.Clock.Now()
	sh.mu.Unlock()
	meterChunkServe(taps.chunks, taps.bytes, taps.usage, c)
	return c, nil
}

// meterChunkServe attributes one served chunk to its tenant: cached handles
// and atomic adds only, no allocations. No-op for untenanted broadcasts.
func meterChunkServe(chunks, bytes *metrics.Counter, usage ChunkUsage, c *media.Chunk) {
	if chunks == nil {
		return
	}
	n := int64(c.Size())
	chunks.Add(1)
	bytes.Add(n)
	if usage != nil {
		usage.MeterChunks(1, n)
	}
}

// fetchChunk performs one upstream chunk fetch attempt.
func (e *Edge) fetchChunk(ctx context.Context, id string, seq uint64) (*media.Chunk, error) {
	up, err := e.cfg.Resolve(id)
	if err != nil {
		return nil, err
	}
	if up.TransferDelay != nil {
		if err := sleepCtx(ctx, up.TransferDelay()); err != nil {
			return nil, err
		}
	}
	return up.Store.Chunk(ctx, id, seq)
}

// ChunkArrivedAt returns when chunk seq was copied to this edge (⑪).
func (e *Edge) ChunkArrivedAt(id string, seq uint64) (time.Time, bool) {
	sh := e.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ent, ok := sh.cache[id]
	if !ok {
		return time.Time{}, false
	}
	t, ok := ent.chunkArrivedAt[seq]
	return t, ok
}

// Evict drops a broadcast from the cache.
func (e *Edge) Evict(id string) {
	sh := e.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	delete(sh.cache, id)
	delete(sh.breakers, id)
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	return resilience.SleepCtx(ctx, d)
}
