package cdn

import (
	"sync"
	"time"

	"repro/internal/geo"
	"repro/internal/hls"
	"repro/internal/journal"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/resilience"
	"repro/internal/rtmp"
)

// Topology wires origins and edges into the paper's two-tier structure:
// every Wowza origin registers all Fastly edges for invalidation; each edge
// pulls either directly from the origin (when co-located) or through the
// origin's co-located gateway edge (§5.3's relay hypothesis, the source of
// the Figure 15 gap).
type Topology struct {
	Origins []*Origin
	Edges   []*Edge

	mu       sync.Mutex
	originOf map[string]*Origin // broadcastID → origin
	net      *netsim.Model
	useGW    bool
	wrapUp   func(hls.Store) hls.Store
	eligible func(role, siteID string) bool
}

// Roles passed to the eligibility predicate installed via SetEligibility.
const (
	RoleEdge   = "edge"
	RoleOrigin = "origin"
)

// TopologyConfig configures Build.
type TopologyConfig struct {
	// OriginSites and EdgeSites define the datacenters; defaults are the
	// paper's catalogs (geo.WowzaSites / geo.FastlySites).
	OriginSites []geo.Datacenter
	EdgeSites   []geo.Datacenter
	// ChunkDuration for HLS assembly at every origin.
	ChunkDuration time.Duration
	// ViewerCap is the per-broadcast RTMP cap at every origin (≈100).
	ViewerCap int
	// Auth validates RTMP handshakes at every origin (control.Auth in
	// the assembled platform); nil admits everyone.
	Auth rtmp.Auth
	// OnBroadcastEnd is invoked when any origin's broadcaster session
	// ends (the platform uses it to close the control-plane record).
	OnBroadcastEnd func(broadcastID string)
	// TenantOf maps a broadcast to its owning tenant ("" for untenanted);
	// threaded to every origin's RTMP server and every edge so delivery is
	// attributed per tenant (control.Service.TenantOf in the assembled
	// platform). Nil disables attribution.
	TenantOf func(broadcastID string) string
	// TenantFrameUsage and TenantChunkUsage resolve the usage accumulators
	// the RTMP fan-out and edge chunk-serve paths meter into.
	TenantFrameUsage func(broadcastID string) rtmp.FrameUsage
	TenantChunkUsage func(broadcastID string) ChunkUsage
	// Retention keeps ended broadcasts queryable at origins for this
	// long before Sweep removes them; zero keeps them indefinitely.
	Retention time.Duration
	// Net injects WAN transfer delays on origin↔edge pulls; nil disables
	// latency injection (pure functional mode).
	Net *netsim.Model
	// DisableGateway pulls every edge directly from the origin — the
	// ablation contrasting §5.3's relay structure.
	DisableGateway bool
	// WrapUpstream, when set, intercepts every upstream store an edge
	// pulls from — the seam the fault-injection harness uses to model
	// origin failures and WAN loss on the origin↔edge hop.
	WrapUpstream func(hls.Store) hls.Store
	// EdgeRetry tunes every edge's upstream pull retries (zero value →
	// edge defaults).
	EdgeRetry resilience.Policy
	// EdgeBreaker tunes every edge's per-broadcast circuit breaker (zero
	// value → resilience defaults).
	EdgeBreaker resilience.BreakerConfig
	// EdgeMaxInflight, EdgeQueueDepth, and EdgeQueueWait configure every
	// edge's load-shedding gate; zero EdgeMaxInflight disables shedding.
	EdgeMaxInflight int
	EdgeQueueDepth  int
	EdgeQueueWait   time.Duration
	// EdgeShedRetryAfter is the Retry-After hint edges attach to sheds.
	EdgeShedRetryAfter time.Duration
	// Seed drives latency jitter when Net is nil but injection is wanted.
	Seed uint64
	// Metrics is the shared registry every origin and edge registers its
	// instruments in (per-site labels keep the series apart); nil gives
	// each component a private registry.
	Metrics *metrics.Registry
	// Journal provides each origin's write-ahead log backend, keyed by
	// site ID — journal.NewMem for tests, journal.OpenFile for a real
	// deployment. Nil (or a nil return for a site) disables journaling
	// for that origin.
	Journal func(siteID string) journal.Backend
}

// Build assembles a Topology.
func Build(cfg TopologyConfig) *Topology {
	if cfg.OriginSites == nil {
		cfg.OriginSites = geo.WowzaSites()
	}
	if cfg.EdgeSites == nil {
		cfg.EdgeSites = geo.FastlySites()
	}
	t := &Topology{
		originOf: make(map[string]*Origin),
		net:      cfg.Net,
		useGW:    !cfg.DisableGateway,
		wrapUp:   cfg.WrapUpstream,
	}
	for _, site := range cfg.OriginSites {
		var backend journal.Backend
		if cfg.Journal != nil {
			backend = cfg.Journal(site.ID)
		}
		t.Origins = append(t.Origins, NewOrigin(OriginConfig{
			Site:          site,
			ChunkDuration: cfg.ChunkDuration,
			Retention:     cfg.Retention,
			Metrics:       cfg.Metrics,
			Journal:       backend,
			RTMP: rtmp.ServerConfig{
				ViewerCap:   cfg.ViewerCap,
				Auth:        cfg.Auth,
				OnEnd:       cfg.OnBroadcastEnd,
				TenantOf:    cfg.TenantOf,
				TenantUsage: cfg.TenantFrameUsage,
			},
		}))
	}
	for _, site := range cfg.EdgeSites {
		site := site
		edge := NewEdge(EdgeConfig{
			Site:           site,
			Resolve:        nil, // set below, needs the edge list
			Retry:          cfg.EdgeRetry,
			Breaker:        cfg.EdgeBreaker,
			MaxInflight:    cfg.EdgeMaxInflight,
			QueueDepth:     cfg.EdgeQueueDepth,
			QueueWait:      cfg.EdgeQueueWait,
			ShedRetryAfter: cfg.EdgeShedRetryAfter,
			Metrics:        cfg.Metrics,
			TenantOf:       cfg.TenantOf,
			TenantUsage:    cfg.TenantChunkUsage,
		})
		t.Edges = append(t.Edges, edge)
	}
	for _, edge := range t.Edges {
		edge := edge
		edge.cfg.Resolve = func(broadcastID string) (Upstream, error) {
			return t.resolve(edge, broadcastID)
		}
	}
	for _, o := range t.Origins {
		t.AttachEdges(o)
	}
	return t
}

// AttachEdges registers every edge with the origin for chunklist
// invalidation. Build calls it at assembly; the restart path calls it again
// after Recover, since a crash drops the origin's edge registrations along
// with the rest of its volatile state.
func (t *Topology) AttachEdges(o *Origin) {
	for _, e := range t.Edges {
		o.RegisterEdge(e)
	}
}

// AssignBroadcast records that a broadcast is ingested at the given origin.
// The control plane calls this when it routes a broadcaster.
func (t *Topology) AssignBroadcast(broadcastID string, o *Origin) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.originOf[broadcastID] = o
}

// ReleaseBroadcast forgets an assignment.
func (t *Topology) ReleaseBroadcast(broadcastID string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.originOf, broadcastID)
}

// OriginFor returns the ingest origin for a broadcast.
func (t *Topology) OriginFor(broadcastID string) (*Origin, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	o, ok := t.originOf[broadcastID]
	return o, ok
}

// SetEligibility installs the fleet-health predicate consulted by
// NearestOrigin and NearestEdge: nodes it rejects (suspect, down, draining)
// are skipped during assignment. A nil predicate — and the case where it
// rejects the whole fleet — falls back to plain nearest, so a misbehaving
// health feed degrades routing quality but never empties the CDN.
func (t *Topology) SetEligibility(fn func(role, siteID string) bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.eligible = fn
}

func (t *Topology) isEligible(role, siteID string) bool {
	t.mu.Lock()
	fn := t.eligible
	t.mu.Unlock()
	return fn == nil || fn(role, siteID)
}

// closer reports whether candidate at distance d beats the incumbent at
// bestD, breaking exact ties by smaller site ID so assignment is
// deterministic regardless of catalog order.
func closer(d, bestD float64, id, bestID string) bool {
	return d < bestD || (d == bestD && id < bestID)
}

// NearestOrigin returns the eligible origin closest to loc — the broadcaster
// assignment policy the paper observed (§5.3), filtered by fleet health.
func (t *Topology) NearestOrigin(loc geo.Location) *Origin {
	var best *Origin
	var bestD float64
	pick := func(onlyEligible bool) {
		for _, o := range t.Origins {
			if onlyEligible && !t.isEligible(RoleOrigin, o.Site().ID) {
				continue
			}
			d := geo.DistanceKm(loc, o.Site().Location)
			if best == nil || closer(d, bestD, o.Site().ID, best.Site().ID) {
				best, bestD = o, d
			}
		}
	}
	pick(true)
	if best == nil {
		pick(false)
	}
	return best
}

// NearestEdge returns the eligible edge closest to loc — the IP-anycast
// viewer routing (§5.3). Edges the health feed marks suspect, down, or
// draining are skipped so joins and failover re-resolves land on healthy
// siblings.
func (t *Topology) NearestEdge(loc geo.Location) *Edge {
	var best *Edge
	var bestD float64
	pick := func(onlyEligible bool) {
		for _, e := range t.Edges {
			if onlyEligible && !t.isEligible(RoleEdge, e.Site().ID) {
				continue
			}
			d := geo.DistanceKm(loc, e.Site().Location)
			if best == nil || closer(d, bestD, e.Site().ID, best.Site().ID) {
				best, bestD = e, d
			}
		}
	}
	pick(true)
	if best == nil {
		pick(false)
	}
	return best
}

// GatewayFor returns the edge co-located with the origin, or nil.
func (t *Topology) GatewayFor(o *Origin) *Edge {
	for _, e := range t.Edges {
		if geo.CoLocated(e.Site(), o.Site()) {
			return e
		}
	}
	return nil
}

// resolve computes the upstream path for edge→broadcast: direct to the
// origin when the edge is co-located (or is itself the gateway, or gateways
// are disabled), otherwise through the origin's gateway edge.
func (t *Topology) resolve(e *Edge, broadcastID string) (Upstream, error) {
	o, ok := t.OriginFor(broadcastID)
	if !ok {
		return Upstream{}, hls.ErrNotFound
	}
	gw := t.GatewayFor(o)
	// A killed or unhealthy gateway would take the whole relay path down
	// with it; fall back to pulling the origin direct instead.
	if gw != nil && gw != e && (gw.Killed() || !t.isEligible(RoleEdge, gw.Site().ID)) {
		gw = nil
	}
	direct := !t.useGW || gw == nil || gw == e || geo.CoLocated(e.Site(), o.Site())
	up := Upstream{}
	if direct {
		up = Upstream{
			Store:         o,
			TransferDelay: t.delayFn(e.Site().Location, o.Site().Location),
		}
	} else {
		// Relay: this edge pulls from the gateway edge, which in turn
		// pulls from the origin over its own (co-located, near-zero) hop.
		up = Upstream{
			Store:         gw,
			TransferDelay: t.delayFn(e.Site().Location, gw.Site().Location),
		}
	}
	if t.wrapUp != nil {
		up.Store = t.wrapUp(up.Store)
	}
	return up, nil
}

func (t *Topology) delayFn(a, b geo.Location) func() time.Duration {
	if t.net == nil {
		return nil
	}
	return func() time.Duration {
		t.mu.Lock()
		defer t.mu.Unlock()
		return t.net.RTT(a, b)
	}
}
