package cdn

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/hls"
	"repro/internal/media"
)

func siteAt(id string, lat, lon float64) geo.Datacenter {
	return geo.Datacenter{ID: id, Location: geo.Location{City: id, Lat: lat, Lon: lon}}
}

func TestNearestTieBreaksBySmallerSiteID(t *testing.T) {
	// Two sites mirrored east/west of the query point are exactly
	// equidistant; the smaller ID must win regardless of catalog order.
	topo := Build(TopologyConfig{
		OriginSites: []geo.Datacenter{siteAt("o-zulu", 0, 10), siteAt("o-alpha", 0, -10)},
		EdgeSites:   []geo.Datacenter{siteAt("e-zulu", 0, 10), siteAt("e-alpha", 0, -10)},
	})
	at := geo.Location{City: "mid", Lat: 0, Lon: 0}
	if o := topo.NearestOrigin(at); o.Site().ID != "o-alpha" {
		t.Fatalf("NearestOrigin tie = %s, want o-alpha", o.Site().ID)
	}
	if e := topo.NearestEdge(at); e.Site().ID != "e-alpha" {
		t.Fatalf("NearestEdge tie = %s, want e-alpha", e.Site().ID)
	}
}

func TestOriginForForgottenAfterRelease(t *testing.T) {
	topo := Build(TopologyConfig{
		OriginSites: []geo.Datacenter{siteAt("o1", 0, 0)},
		EdgeSites:   []geo.Datacenter{siteAt("e1", 0, 0)},
	})
	topo.AssignBroadcast("b1", topo.Origins[0])
	if o, ok := topo.OriginFor("b1"); !ok || o != topo.Origins[0] {
		t.Fatalf("OriginFor(b1) = %v, %v", o, ok)
	}
	topo.ReleaseBroadcast("b1")
	if _, ok := topo.OriginFor("b1"); ok {
		t.Fatal("OriginFor(b1) still set after ReleaseBroadcast")
	}
	// An edge resolving the released broadcast now gets NotFound.
	if _, err := topo.Edges[0].ChunkList(context.Background(), "b1"); !errors.Is(err, hls.ErrNotFound) {
		t.Fatalf("ChunkList after release = %v, want ErrNotFound", err)
	}
}

func TestNearestEdgeSkipsIneligibleNodes(t *testing.T) {
	topo := Build(TopologyConfig{
		OriginSites: []geo.Datacenter{siteAt("o-near", 0, 0), siteAt("o-far", 0, 40)},
		EdgeSites:   []geo.Datacenter{siteAt("e-near", 0, 0), siteAt("e-far", 0, 40)},
	})
	at := geo.Location{City: "here", Lat: 0, Lon: 1}

	// Healthy fleet: nearest wins.
	if e := topo.NearestEdge(at); e.Site().ID != "e-near" {
		t.Fatalf("NearestEdge = %s, want e-near", e.Site().ID)
	}

	// Mark the near nodes draining/down via the health predicate:
	// assignment must move to the farther, healthy siblings.
	bad := map[string]bool{"e-near": true, "o-near": true}
	var mu sync.Mutex
	topo.SetEligibility(func(role, siteID string) bool {
		mu.Lock()
		defer mu.Unlock()
		return !bad[siteID]
	})
	if e := topo.NearestEdge(at); e.Site().ID != "e-far" {
		t.Fatalf("NearestEdge with e-near ineligible = %s, want e-far", e.Site().ID)
	}
	if o := topo.NearestOrigin(at); o.Site().ID != "o-far" {
		t.Fatalf("NearestOrigin with o-near ineligible = %s, want o-far", o.Site().ID)
	}

	// Recovery: the near edge becomes eligible again and wins back.
	mu.Lock()
	delete(bad, "e-near")
	mu.Unlock()
	if e := topo.NearestEdge(at); e.Site().ID != "e-near" {
		t.Fatalf("NearestEdge after recovery = %s, want e-near", e.Site().ID)
	}
}

func TestNearestFallsBackWhenWholeFleetIneligible(t *testing.T) {
	topo := Build(TopologyConfig{
		OriginSites: []geo.Datacenter{siteAt("o1", 0, 0)},
		EdgeSites:   []geo.Datacenter{siteAt("e1", 0, 0), siteAt("e2", 0, 5)},
	})
	topo.SetEligibility(func(string, string) bool { return false })
	at := geo.Location{City: "here", Lat: 0, Lon: 0}
	// A health feed that rejects everything must degrade to plain nearest,
	// never to an empty assignment.
	if e := topo.NearestEdge(at); e == nil || e.Site().ID != "e1" {
		t.Fatalf("NearestEdge with empty fleet = %v, want nearest fallback e1", e)
	}
	if o := topo.NearestOrigin(at); o == nil {
		t.Fatal("NearestOrigin with empty fleet = nil, want nearest fallback")
	}
}

// blockingStore parks every call until released, letting tests hold an
// edge's inflight slots occupied.
type blockingStore struct {
	unblock chan struct{}
	list    *media.ChunkList
}

func (s *blockingStore) ChunkList(ctx context.Context, id string) (*media.ChunkList, error) {
	select {
	case <-s.unblock:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return s.list.Clone(), nil
}

func (s *blockingStore) Chunk(ctx context.Context, id string, seq uint64) (*media.Chunk, error) {
	select {
	case <-s.unblock:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return nil, hls.ErrNotFound
}

func TestEdgeShedsWhenOverCapacity(t *testing.T) {
	up := &blockingStore{unblock: make(chan struct{}), list: &media.ChunkList{BroadcastID: "b1"}}
	e := NewEdge(EdgeConfig{
		Site:           site("e1", "X"),
		Resolve:        func(string) (Upstream, error) { return Upstream{Store: up}, nil },
		MaxInflight:    1,
		QueueDepth:     1,
		QueueWait:      10 * time.Millisecond,
		ShedRetryAfter: 2 * time.Second,
	})

	ctx := context.Background()
	const callers = 8
	var (
		wg     sync.WaitGroup
		sheds  atomic.Int64
		others atomic.Int64
	)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Admission happens before the single-flight group, so even
			// same-broadcast callers each occupy a slot.
			_, err := e.ChunkList(ctx, "b1")
			switch {
			case errors.Is(err, hls.ErrOverloaded):
				var oe *hls.OverloadedError
				if !errors.As(err, &oe) || oe.RetryAfter != 2*time.Second {
					t.Errorf("shed err = %#v, want the configured Retry-After", err)
				}
				sheds.Add(1)
			case err != nil:
				others.Add(1)
			}
		}()
	}
	// Give the goroutines time to pile up, then release the upstream.
	time.Sleep(50 * time.Millisecond)
	close(up.unblock)
	wg.Wait()

	if sheds.Load() == 0 {
		t.Fatal("no caller was shed despite 8 concurrent calls against MaxInflight=1")
	}
	if got := e.m.sheds.Value(); got != sheds.Load() {
		t.Fatalf("cdn_sheds_total = %d, want %d", got, sheds.Load())
	}
	if others.Load() != 0 {
		t.Fatalf("%d callers saw non-shed errors", others.Load())
	}
}

func TestEdgeSetLimitsReenablesService(t *testing.T) {
	up := &blockingStore{unblock: make(chan struct{}), list: &media.ChunkList{BroadcastID: "b1"}}
	close(up.unblock) // never block
	e := NewEdge(EdgeConfig{
		Site:        site("e1", "X"),
		Resolve:     func(string) (Upstream, error) { return Upstream{Store: up}, nil },
		MaxInflight: 1,
		QueueDepth:  0,
		QueueWait:   time.Millisecond,
	})
	// Sequential calls fit within the cap.
	if _, err := e.ChunkList(context.Background(), "b1"); err != nil {
		t.Fatalf("under-limit call failed: %v", err)
	}
	// Lifting the cap entirely disables shedding.
	e.SetLimits(0, 0, 0)
	for i := 0; i < 5; i++ {
		if _, err := e.ChunkList(context.Background(), "b1"); err != nil {
			t.Fatalf("call %d after SetLimits(0,...) failed: %v", i, err)
		}
	}
}

func TestEdgeDrainAndKillLifecycle(t *testing.T) {
	up := &blockingStore{unblock: make(chan struct{}), list: &media.ChunkList{BroadcastID: "b1"}}
	close(up.unblock)
	e := NewEdge(EdgeConfig{
		Site:    site("e1", "X"),
		Resolve: func(string) (Upstream, error) { return Upstream{Store: up}, nil },
	})
	if e.Draining() || e.Killed() {
		t.Fatal("fresh edge not active")
	}

	// Draining edges keep serving — viewers migrate via the hint, they are
	// not cut off.
	e.Drain()
	if !e.Draining() {
		t.Fatal("Drain() did not mark the edge draining")
	}
	if _, err := e.ChunkList(context.Background(), "b1"); err != nil {
		t.Fatalf("draining edge refused a poll: %v", err)
	}

	// Killed edges refuse everything.
	e.Kill()
	if !e.Killed() || e.Draining() {
		t.Fatalf("Killed=%v Draining=%v after Kill", e.Killed(), e.Draining())
	}
	if _, err := e.ChunkList(context.Background(), "b1"); !errors.Is(err, ErrEdgeDown) {
		t.Fatalf("killed edge ChunkList err = %v, want ErrEdgeDown", err)
	}
	if _, err := e.Chunk(context.Background(), "b1", 0); !errors.Is(err, ErrEdgeDown) {
		t.Fatalf("killed edge Chunk err = %v, want ErrEdgeDown", err)
	}

	// Kill is terminal: Drain cannot resurrect it.
	e.Drain()
	if !e.Killed() {
		t.Fatal("Drain() after Kill() changed state")
	}
}

func TestRelayFallsBackToOriginWhenGatewayKilled(t *testing.T) {
	// Gateways are matched by city, so the gateway edge shares the
	// origin's city.
	gwSite := siteAt("e-gw", 0, 0)
	gwSite.Location.City = "o1"
	topo := Build(TopologyConfig{
		OriginSites: []geo.Datacenter{siteAt("o1", 0, 0)},
		EdgeSites:   []geo.Datacenter{gwSite, siteAt("e-far", 0, 40)},
	})
	o := topo.Origins[0]
	topo.AssignBroadcast("b1", o)
	feedFrames(o, "b1", 60)

	far := topo.Edges[1]
	if gw := topo.GatewayFor(o); gw != topo.Edges[0] {
		t.Fatalf("gateway = %v, want the co-located edge", gw)
	}
	// Healthy fleet: the far edge pulls through the relay.
	if _, err := far.ChunkList(context.Background(), "b1"); err != nil {
		t.Fatalf("relay pull: %v", err)
	}
	gwPulls := topo.Edges[0].m.listPulls.Value()
	if gwPulls == 0 {
		t.Fatal("gateway never pulled — relay path not exercised")
	}

	// Kill the gateway: the far edge must survive by pulling the origin
	// direct instead of dying with the relay.
	topo.Edges[0].Kill()
	far.Invalidate("b1", 99) // force a fresh pull
	if _, err := far.ChunkList(context.Background(), "b1"); err != nil {
		t.Fatalf("pull with killed gateway: %v, want direct-origin fallback", err)
	}
	if got := topo.Edges[0].m.listPulls.Value(); got != gwPulls {
		t.Fatalf("killed gateway pulled again (%d → %d)", gwPulls, got)
	}
}
