package cdn

import (
	"context"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/media"
	"repro/internal/rng"
)

// BenchmarkOriginIngest measures the per-frame cost of the chunking path —
// the server-side work RTMP ingest adds on top of fan-out.
func BenchmarkOriginIngest(b *testing.B) {
	o := NewOrigin(OriginConfig{Site: site("o", "X")})
	enc := media.NewEncoder(media.EncoderConfig{}, rng.New(1))
	frames := make([]media.Frame, 256)
	for i := range frames {
		frames[i] = enc.Next(time.Unix(0, int64(i)))
	}
	now := time.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Ingest("bench", frames[i%len(frames)], now)
	}
}

// BenchmarkEdgeCacheHit measures the steady-state HLS serving cost: a poll
// answered from the edge cache (the scalable case of Fig. 14).
func BenchmarkEdgeCacheHit(b *testing.B) {
	o := NewOrigin(OriginConfig{Site: site("o", "X"), ChunkDuration: time.Second})
	e := NewEdge(EdgeConfig{
		Site:    site("e", "Y"),
		Resolve: func(string) (Upstream, error) { return Upstream{Store: o}, nil },
	})
	o.RegisterEdge(e)
	feedFrames(o, "bench", 75)
	ctx := context.Background()
	if _, err := e.ChunkList(ctx, "bench"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.ChunkList(ctx, "bench"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEdgePull measures the expensive case: a poll that triggers the
// origin pull (cache invalidated every iteration).
func BenchmarkEdgePull(b *testing.B) {
	o := NewOrigin(OriginConfig{Site: site("o", "X"), ChunkDuration: time.Second})
	e := NewEdge(EdgeConfig{
		Site:    site("e", "Y"),
		Resolve: func(string) (Upstream, error) { return Upstream{Store: o}, nil },
	})
	feedFrames(o, "bench", 75)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Invalidate("bench", uint64(i+10))
		if _, err := e.ChunkList(ctx, "bench"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNearestSelection measures the anycast routing decision.
func BenchmarkNearestSelection(b *testing.B) {
	topo := Build(TopologyConfig{})
	locs := make([]struct{ lat, lon float64 }, 64)
	src := rng.New(3)
	for i := range locs {
		locs[i].lat = src.Float64()*160 - 80
		locs[i].lon = src.Float64()*360 - 180
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := locs[i%len(locs)]
		topo.NearestEdge(geo.Location{Lat: l.lat, Lon: l.lon})
	}
}
