package cdn

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/hls"
	"repro/internal/media"
	"repro/internal/resilience"
	"repro/internal/testutil"
)

// gatedStore blocks ChunkList calls on a gate so a test can pile concurrent
// pollers onto one in-flight pull, and counts upstream calls.
type gatedStore struct {
	inner     hls.Store
	gate      chan struct{} // pull blocks until closed
	entered   chan struct{} // closed when the first pull arrives
	enterOnce sync.Once
	listCalls atomic.Int64
}

func (g *gatedStore) ChunkList(ctx context.Context, id string) (*media.ChunkList, error) {
	g.listCalls.Add(1)
	g.enterOnce.Do(func() { close(g.entered) })
	select {
	case <-g.gate:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return g.inner.ChunkList(ctx, id)
}

func (g *gatedStore) Chunk(ctx context.Context, id string, seq uint64) (*media.Chunk, error) {
	return g.inner.Chunk(ctx, id, seq)
}

// flakyStore fails list and/or chunk fetches on demand.
type flakyStore struct {
	inner      hls.Store
	failLists  atomic.Bool
	failChunks atomic.Bool
	listErrs   atomic.Int64
	chunkErrs  atomic.Int64
}

type errUpstream struct{ msg string }

func (e *errUpstream) Error() string { return e.msg }

func (f *flakyStore) ChunkList(ctx context.Context, id string) (*media.ChunkList, error) {
	if f.failLists.Load() {
		f.listErrs.Add(1)
		return nil, &errUpstream{"upstream list unavailable"}
	}
	return f.inner.ChunkList(ctx, id)
}

func (f *flakyStore) Chunk(ctx context.Context, id string, seq uint64) (*media.Chunk, error) {
	if f.failChunks.Load() {
		f.chunkErrs.Add(1)
		return nil, &errUpstream{"upstream chunk unavailable"}
	}
	return f.inner.Chunk(ctx, id, seq)
}

func fastEdgeRetry() resilience.Policy {
	return resilience.Policy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}
}

// TestEdgePollStampedeSingleFlight drives 50 concurrent polls at an edge
// whose cache is empty: the single-flight group must collapse them into
// exactly one upstream pull (§5.2's chunklist-expiry stampede).
func TestEdgePollStampedeSingleFlight(t *testing.T) {
	testutil.CheckGoroutines(t)
	o := NewOrigin(OriginConfig{Site: site("o1", "X"), ChunkDuration: time.Second})
	feedFrames(o, "b1", 60)
	g := &gatedStore{inner: o, gate: make(chan struct{}), entered: make(chan struct{})}
	e := NewEdge(EdgeConfig{
		Site:    site("e1", "Y"),
		Resolve: func(string) (Upstream, error) { return Upstream{Store: g}, nil },
	})

	ctx := context.Background()
	const pollers = 50
	start := make(chan struct{})
	results := make(chan *media.ChunkList, pollers)
	errs := make(chan error, pollers)
	var wg sync.WaitGroup
	for i := 0; i < pollers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			cl, err := e.ChunkList(ctx, "b1")
			if err != nil {
				errs <- err
				return
			}
			results <- cl
		}()
	}
	close(start)
	// Hold the gate until the first pull is in flight and the remaining
	// pollers have had ample time to join it.
	<-g.entered
	time.Sleep(100 * time.Millisecond)
	close(g.gate)
	wg.Wait()
	close(errs)
	close(results)
	for err := range errs {
		t.Fatal(err)
	}
	if n := g.listCalls.Load(); n != 1 {
		t.Fatalf("upstream list pulls = %d, want 1 (stampede not collapsed)", n)
	}
	if n := e.m.listPulls.Value(); n != 1 {
		t.Fatalf("edge ListPulls = %d, want 1", n)
	}
	n := 0
	for cl := range results {
		if len(cl.Chunks) != 2 {
			t.Fatalf("poller got %d chunks, want 2", len(cl.Chunks))
		}
		n++
	}
	if n != pollers {
		t.Fatalf("%d/%d pollers got a list", n, pollers)
	}
}

// TestEdgeServesStaleWhenUpstreamDown checks the graceful-degradation path:
// with a cached list and a dead upstream, polls are answered from the stale
// copy instead of an error, and fresh pulls resume once the upstream heals
// and the breaker's open window elapses.
func TestEdgeServesStaleWhenUpstreamDown(t *testing.T) {
	testutil.CheckGoroutines(t)
	o := NewOrigin(OriginConfig{Site: site("o1", "X"), ChunkDuration: time.Second})
	feedFrames(o, "b1", 30) // one complete chunk
	f := &flakyStore{inner: o}
	e := NewEdge(EdgeConfig{
		Site:    site("e1", "Y"),
		Resolve: func(string) (Upstream, error) { return Upstream{Store: f}, nil },
		Retry:   fastEdgeRetry(),
		Breaker: resilience.BreakerConfig{FailureThreshold: 2, OpenFor: 20 * time.Millisecond},
	})
	ctx := context.Background()

	first, err := e.ChunkList(ctx, "b1")
	if err != nil {
		t.Fatal(err)
	}

	// New content arrives, the edge is invalidated, then the origin dies.
	feedFrames(o, "b1", 60)
	e.Invalidate("b1", first.Version+1)
	f.failLists.Store(true)

	for i := 0; i < 5; i++ {
		cl, err := e.ChunkList(ctx, "b1")
		if err != nil {
			t.Fatalf("poll %d with upstream down: %v (want stale list)", i, err)
		}
		if cl.Version != first.Version {
			t.Fatalf("poll %d version = %d, want stale %d", i, cl.Version, first.Version)
		}
	}
	if n := e.m.staleServes.Value(); n < 5 {
		t.Fatalf("StaleServes = %d, want ≥ 5", n)
	}
	if n := e.m.pullRetries.Value(); n == 0 {
		t.Fatal("no pull retries recorded while upstream was down")
	}
	// The breaker opened after the failure streak, so later polls failed
	// fast instead of re-hammering the dead upstream with retries.
	if f.listErrs.Load() >= 10 {
		t.Fatalf("upstream saw %d failed pulls for 5 polls — breaker never opened", f.listErrs.Load())
	}

	// Upstream heals; after the open window the next polls pull fresh.
	f.failLists.Store(false)
	time.Sleep(25 * time.Millisecond)
	deadline := time.Now().Add(time.Second)
	for {
		cl, err := e.ChunkList(ctx, "b1")
		if err != nil {
			t.Fatal(err)
		}
		if cl.Version > first.Version {
			if len(cl.Chunks) != 3 {
				t.Fatalf("recovered list has %d chunks, want 3", len(cl.Chunks))
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("edge never recovered a fresh list after upstream healed")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestEdgeChunkPullErrorLeavesStale checks the satellite fix: a failed chunk
// copy during a list pull is counted and leaves the entry stale, so the next
// poll pulls again instead of serving a list whose chunks are missing.
func TestEdgeChunkPullErrorLeavesStale(t *testing.T) {
	testutil.CheckGoroutines(t)
	o := NewOrigin(OriginConfig{Site: site("o1", "X"), ChunkDuration: time.Second})
	feedFrames(o, "b1", 30)
	f := &flakyStore{inner: o}
	e := NewEdge(EdgeConfig{
		Site:    site("e1", "Y"),
		Resolve: func(string) (Upstream, error) { return Upstream{Store: f}, nil },
		Retry:   fastEdgeRetry(),
	})
	ctx := context.Background()

	f.failChunks.Store(true)
	cl, err := e.ChunkList(ctx, "b1")
	if err != nil {
		t.Fatal(err)
	}
	if len(cl.Chunks) != 1 {
		t.Fatalf("chunks = %d, want 1", len(cl.Chunks))
	}
	if n := e.m.chunkPullErrors.Value(); n == 0 {
		t.Fatal("failed chunk copy not counted")
	}
	if n := e.m.chunkPulls.Value(); n != 0 {
		t.Fatalf("ChunkPulls = %d, want 0", n)
	}

	// The entry stayed stale: the next poll re-pulls and completes the
	// chunk copy once the upstream heals.
	f.failChunks.Store(false)
	if _, err := e.ChunkList(ctx, "b1"); err != nil {
		t.Fatal(err)
	}
	if n := e.m.listPulls.Value(); n != 2 {
		t.Fatalf("ListPulls = %d, want 2 (stale entry must re-pull)", n)
	}
	if n := e.m.chunkPulls.Value(); n != 1 {
		t.Fatalf("ChunkPulls = %d, want 1 after retry", n)
	}
	// Now the list is complete and fresh: the chunk serves from cache and
	// a third poll is a pure hit.
	if _, err := e.Chunk(ctx, "b1", 0); err != nil {
		t.Fatal(err)
	}
	if n := e.m.chunkHits.Value(); n != 1 {
		t.Fatalf("ChunkHits = %d, want 1", n)
	}
	if _, err := e.ChunkList(ctx, "b1"); err != nil {
		t.Fatal(err)
	}
	if n := e.m.listHits.Value(); n != 1 {
		t.Fatalf("ListHits = %d, want 1", n)
	}
}

// TestEdgeInvalidateCountsOnlyWhenMarkingStale checks the satellite fix:
// Invalidates counts only invalidations that actually flip a cached, fresh
// entry to stale — not no-ops on uncached broadcasts, already-seen versions,
// or already-stale entries.
func TestEdgeInvalidateCountsOnlyWhenMarkingStale(t *testing.T) {
	o := NewOrigin(OriginConfig{Site: site("o1", "X"), ChunkDuration: time.Second})
	feedFrames(o, "b1", 30)
	e := NewEdge(EdgeConfig{
		Site:    site("e1", "Y"),
		Resolve: func(string) (Upstream, error) { return Upstream{Store: o}, nil },
	})
	ctx := context.Background()

	// Not cached here: an invalidation for a broadcast this edge never
	// served must not count.
	e.Invalidate("b1", 1)
	e.Invalidate("nope", 1)
	if n := e.m.invalidates.Value(); n != 0 {
		t.Fatalf("Invalidates = %d before anything was cached, want 0", n)
	}

	cl, err := e.ChunkList(ctx, "b1")
	if err != nil {
		t.Fatal(err)
	}
	// Stale version replays (re-delivered invalidations) must not count.
	e.Invalidate("b1", cl.Version)
	e.Invalidate("b1", cl.Version-1)
	if n := e.m.invalidates.Value(); n != 0 {
		t.Fatalf("Invalidates = %d after old-version replays, want 0", n)
	}

	// A genuinely newer version marks the entry stale and counts once,
	// even when re-delivered.
	e.Invalidate("b1", cl.Version+1)
	e.Invalidate("b1", cl.Version+2)
	if n := e.m.invalidates.Value(); n != 1 {
		t.Fatalf("Invalidates = %d, want 1 (only the marking invalidation counts)", n)
	}
}
