package cdn

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/hls"
	"repro/internal/media"
	"repro/internal/netsim"
	"repro/internal/rng"
	"repro/internal/rtmp"
	"repro/internal/testutil"
)

func site(id, city string) geo.Datacenter {
	return geo.Datacenter{ID: id, Location: geo.Location{City: city, Lat: 1, Lon: 1}}
}

// feedFrames pushes n frames into an origin via its ingest tap path.
func feedFrames(o *Origin, id string, n int) {
	enc := media.NewEncoder(media.EncoderConfig{}, rng.New(7))
	base := time.Now()
	for i := 0; i < n; i++ {
		o.ingest(id, enc.Next(base.Add(time.Duration(i)*media.FrameDuration)), base.Add(time.Duration(i)*media.FrameDuration))
	}
}

func TestOriginChunksFrames(t *testing.T) {
	o := NewOrigin(OriginConfig{Site: site("o1", "X"), ChunkDuration: time.Second})
	feedFrames(o, "b1", 60) // 60 frames = 2.4 s → 2 complete 1 s chunks
	ctx := context.Background()
	cl, err := o.ChunkList(ctx, "b1")
	if err != nil {
		t.Fatal(err)
	}
	if len(cl.Chunks) != 2 {
		t.Fatalf("chunks = %d, want 2", len(cl.Chunks))
	}
	c, err := o.Chunk(ctx, "b1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Frames) != 25 {
		t.Fatalf("chunk frames = %d, want 25", len(c.Frames))
	}
	if _, ok := o.ChunkReadyAt("b1", 0); !ok {
		t.Fatal("missing chunk-ready timestamp")
	}
	if o.Live() != 1 {
		t.Fatalf("Live = %d", o.Live())
	}
}

func TestOriginEndFlushesPartialChunk(t *testing.T) {
	o := NewOrigin(OriginConfig{Site: site("o1", "X"), ChunkDuration: time.Second})
	feedFrames(o, "b1", 30)
	o.endBroadcast("b1")
	cl, err := o.ChunkList(context.Background(), "b1")
	if err != nil {
		t.Fatal(err)
	}
	if !cl.Ended {
		t.Fatal("list not marked ended")
	}
	if len(cl.Chunks) != 2 { // one full (25) + one partial (5)
		t.Fatalf("chunks = %d, want 2", len(cl.Chunks))
	}
	if o.Live() != 0 {
		t.Fatalf("Live = %d after end", o.Live())
	}
}

func TestOriginUnknownBroadcast(t *testing.T) {
	o := NewOrigin(OriginConfig{Site: site("o1", "X")})
	if _, err := o.ChunkList(context.Background(), "nope"); !errors.Is(err, hls.ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	if _, err := o.Chunk(context.Background(), "nope", 0); !errors.Is(err, hls.ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestOriginSweep(t *testing.T) {
	o := NewOrigin(OriginConfig{Site: site("o1", "X"), ChunkDuration: time.Second, Retention: time.Minute})
	feedFrames(o, "b1", 30)
	o.endBroadcast("b1")
	if n := o.Sweep(time.Now()); n != 0 {
		t.Fatalf("premature sweep removed %d", n)
	}
	if n := o.Sweep(time.Now().Add(2 * time.Minute)); n != 1 {
		t.Fatalf("sweep removed %d, want 1", n)
	}
	if _, err := o.ChunkList(context.Background(), "b1"); !errors.Is(err, hls.ErrNotFound) {
		t.Fatal("swept broadcast still present")
	}
}

func TestEdgePullOnFirstPoll(t *testing.T) {
	o := NewOrigin(OriginConfig{Site: site("o1", "X"), ChunkDuration: time.Second})
	e := NewEdge(EdgeConfig{
		Site:    site("e1", "Y"),
		Resolve: func(string) (Upstream, error) { return Upstream{Store: o}, nil },
	})
	o.RegisterEdge(e)
	feedFrames(o, "b1", 30)

	ctx := context.Background()
	cl, err := e.ChunkList(ctx, "b1")
	if err != nil {
		t.Fatal(err)
	}
	if len(cl.Chunks) != 1 {
		t.Fatalf("edge list chunks = %d", len(cl.Chunks))
	}
	if e.m.listPulls.Value() != 1 {
		t.Fatalf("ListPulls = %d", e.m.listPulls.Value())
	}
	// The pull copied the chunk eagerly; the chunk fetch must be a hit.
	if _, err := e.Chunk(ctx, "b1", 0); err != nil {
		t.Fatal(err)
	}
	if e.m.chunkHits.Value() != 1 || e.m.chunkPulls.Value() != 1 {
		t.Fatalf("hits=%d pulls=%d", e.m.chunkHits.Value(), e.m.chunkPulls.Value())
	}
	if _, ok := e.ChunkArrivedAt("b1", 0); !ok {
		t.Fatal("missing edge arrival timestamp")
	}
}

func TestEdgeServesCachedUntilInvalidated(t *testing.T) {
	o := NewOrigin(OriginConfig{Site: site("o1", "X"), ChunkDuration: time.Second})
	e := NewEdge(EdgeConfig{
		Site:    site("e1", "Y"),
		Resolve: func(string) (Upstream, error) { return Upstream{Store: o}, nil },
	})
	o.RegisterEdge(e)
	feedFrames(o, "b1", 30) // chunk 0, invalidation broadcast

	ctx := context.Background()
	if _, err := e.ChunkList(ctx, "b1"); err != nil {
		t.Fatal(err)
	}
	// Repeated polls before new content: all hits, no new pulls.
	for i := 0; i < 5; i++ {
		if _, err := e.ChunkList(ctx, "b1"); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.m.listPulls.Value(); got != 1 {
		t.Fatalf("ListPulls = %d, want 1", got)
	}
	if got := e.m.listHits.Value(); got != 5 {
		t.Fatalf("ListHits = %d, want 5", got)
	}

	// New chunk at origin → invalidation → next poll pulls.
	feedFrames(o, "b1", 30)
	cl, err := e.ChunkList(ctx, "b1")
	if err != nil {
		t.Fatal(err)
	}
	if got := e.m.listPulls.Value(); got != 2 {
		t.Fatalf("ListPulls after invalidate = %d, want 2", got)
	}
	if len(cl.Chunks) != 2 {
		t.Fatalf("chunks after refresh = %d", len(cl.Chunks))
	}
}

func TestEdgeUnknownBroadcast(t *testing.T) {
	e := NewEdge(EdgeConfig{
		Site:    site("e1", "Y"),
		Resolve: func(string) (Upstream, error) { return Upstream{}, hls.ErrNotFound },
	})
	if _, err := e.ChunkList(context.Background(), "nope"); !errors.Is(err, hls.ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestTopologyGatewayRelay(t *testing.T) {
	topo := Build(TopologyConfig{ChunkDuration: time.Second})
	if len(topo.Origins) != 8 || len(topo.Edges) != 23 {
		t.Fatalf("topology = %d origins, %d edges", len(topo.Origins), len(topo.Edges))
	}
	// Ashburn origin's gateway must be the Ashburn edge.
	var ashburn *Origin
	for _, o := range topo.Origins {
		if o.Site().ID == "wowza-ashburn" {
			ashburn = o
		}
	}
	gw := topo.GatewayFor(ashburn)
	if gw == nil || gw.Site().ID != "fastly-ashburn" {
		t.Fatalf("gateway for ashburn = %+v", gw)
	}
	// São Paulo origin has no gateway (no Fastly site in South America).
	for _, o := range topo.Origins {
		if o.Site().ID == "wowza-saopaulo" {
			if g := topo.GatewayFor(o); g != nil {
				t.Fatalf("São Paulo gateway = %s, want none", g.Site().ID)
			}
		}
	}

	// Wire a broadcast on the Ashburn origin and read it from Tokyo:
	// the pull must route via the gateway, populating its cache too.
	topo.AssignBroadcast("b1", ashburn)
	feedFrames(ashburn, "b1", 30)
	var tokyoEdge *Edge
	for _, e := range topo.Edges {
		if e.Site().ID == "fastly-tokyo" {
			tokyoEdge = e
		}
	}
	ctx := context.Background()
	cl, err := tokyoEdge.ChunkList(ctx, "b1")
	if err != nil {
		t.Fatal(err)
	}
	if len(cl.Chunks) != 1 {
		t.Fatalf("tokyo edge chunks = %d", len(cl.Chunks))
	}
	if gw.m.listPulls.Value() == 0 {
		t.Fatal("gateway was not used for the relay")
	}
}

func TestTopologyDisableGateway(t *testing.T) {
	topo := Build(TopologyConfig{ChunkDuration: time.Second, DisableGateway: true})
	var ashburn *Origin
	for _, o := range topo.Origins {
		if o.Site().ID == "wowza-ashburn" {
			ashburn = o
		}
	}
	gw := topo.GatewayFor(ashburn)
	topo.AssignBroadcast("b1", ashburn)
	feedFrames(ashburn, "b1", 30)
	var tokyoEdge *Edge
	for _, e := range topo.Edges {
		if e.Site().ID == "fastly-tokyo" {
			tokyoEdge = e
		}
	}
	if _, err := tokyoEdge.ChunkList(context.Background(), "b1"); err != nil {
		t.Fatal(err)
	}
	if gw.m.listPulls.Value() != 0 {
		t.Fatal("gateway used despite DisableGateway")
	}
}

func TestTopologyNearestSelection(t *testing.T) {
	topo := Build(TopologyConfig{})
	tokyo := geo.Location{City: "Tokyo", Lat: 35.68, Lon: 139.69}
	if o := topo.NearestOrigin(tokyo); o.Site().ID != "wowza-tokyo" {
		t.Fatalf("NearestOrigin(Tokyo) = %s", o.Site().ID)
	}
	if e := topo.NearestEdge(tokyo); e.Site().ID != "fastly-tokyo" {
		t.Fatalf("NearestEdge(Tokyo) = %s", e.Site().ID)
	}
}

func TestTopologyWithLatencyInjection(t *testing.T) {
	net := netsim.NewModel(netsim.Params{}, rng.New(11))
	topo := Build(TopologyConfig{ChunkDuration: time.Second, Net: net})
	var sydney *Origin
	for _, o := range topo.Origins {
		if o.Site().ID == "wowza-sydney" {
			sydney = o
		}
	}
	topo.AssignBroadcast("b1", sydney)
	feedFrames(sydney, "b1", 30)
	var londonEdge *Edge
	for _, e := range topo.Edges {
		if e.Site().ID == "fastly-london" {
			londonEdge = e
		}
	}
	start := time.Now()
	if _, err := londonEdge.ChunkList(context.Background(), "b1"); err != nil {
		t.Fatal(err)
	}
	// Sydney→London relay spans half the planet; injected latency must
	// be at least ~100 ms even with the gateway path.
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Fatalf("injected latency only %v", elapsed)
	}
}

func TestOriginEndToEndThroughRTMP(t *testing.T) {
	testutil.CheckGoroutines(t)
	// Full ingest path: a real RTMP publisher feeds the origin, the edge
	// serves the resulting chunks.
	o := NewOrigin(OriginConfig{Site: site("o1", "X"), ChunkDuration: time.Second})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ln, err := o.RTMP().Listen(ctx, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer o.RTMP().Close()

	pub, err := rtmp.Publish(ctx, ln.Addr().String(), "b1", "tok", nil)
	if err != nil {
		t.Fatal(err)
	}
	enc := media.NewEncoder(media.EncoderConfig{}, rng.New(12))
	base := time.Now()
	for i := 0; i < 30; i++ {
		f := enc.Next(base.Add(time.Duration(i) * media.FrameDuration))
		if err := pub.Send(&f); err != nil {
			t.Fatal(err)
		}
	}
	pub.End()

	deadline := time.Now().Add(2 * time.Second)
	for {
		cl, err := o.ChunkList(ctx, "b1")
		if err == nil && cl.Ended && len(cl.Chunks) == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("origin never assembled chunks: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
