package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCatalogSizes(t *testing.T) {
	if n := len(WowzaSites()); n != 8 {
		t.Fatalf("Wowza sites = %d, want 8 (paper §4.1)", n)
	}
	if n := len(FastlySites()); n != 23 {
		t.Fatalf("Fastly sites = %d, want 23 (paper §4.1)", n)
	}
}

func TestCatalogIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, dc := range append(WowzaSites(), FastlySites()...) {
		if seen[dc.ID] {
			t.Fatalf("duplicate datacenter ID %q", dc.ID)
		}
		seen[dc.ID] = true
	}
}

func TestDistanceKnownPairs(t *testing.T) {
	ny := Location{"New York", NorthAmerica, 40.71, -74.01}
	la := Location{"Los Angeles", NorthAmerica, 34.05, -118.24}
	d := DistanceKm(ny, la)
	if d < 3900 || d > 4000 {
		t.Fatalf("NY–LA distance = %v km, want ≈3940", d)
	}
	if d := DistanceKm(ny, ny); d != 0 {
		t.Fatalf("self-distance = %v", d)
	}
}

func TestDistanceSymmetric(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		norm := func(v, m float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Mod(v, m)
		}
		a := Location{Lat: norm(lat1, 90), Lon: norm(lon1, 180)}
		b := Location{Lat: norm(lat2, 90), Lon: norm(lon2, 180)}
		d1, d2 := DistanceKm(a, b), DistanceKm(b, a)
		return math.Abs(d1-d2) < 1e-6 && d1 >= 0 && d1 <= math.Pi*EarthRadiusKm+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNearestPicksCoLocated(t *testing.T) {
	tokyo := Location{"Tokyo", Asia, 35.68, 139.69}
	dc := Nearest(tokyo, FastlySites())
	if dc.ID != "fastly-tokyo" {
		t.Fatalf("Nearest(Tokyo) = %s", dc.ID)
	}
	dc = Nearest(tokyo, WowzaSites())
	if dc.ID != "wowza-tokyo" {
		t.Fatalf("Nearest(Tokyo, wowza) = %s", dc.ID)
	}
}

func TestNearestPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Nearest(empty) did not panic")
		}
	}()
	Nearest(Location{}, nil)
}

func TestCoLocationAuditMatchesPaper(t *testing.T) {
	audits := AuditCoLocation(WowzaSites(), FastlySites())
	sameCity, sameCont := 0, 0
	for _, a := range audits {
		if a.SameCity {
			sameCity++
		}
		if a.SameContinent {
			sameCont++
		}
	}
	// Paper §4.1: 6/8 Wowza DCs have a co-located Fastly DC in the same
	// city, 7/8 in the same continent; the exception is South America.
	if sameCity != 6 {
		t.Fatalf("same-city pairs = %d, want 6", sameCity)
	}
	if sameCont != 7 {
		t.Fatalf("same-continent pairs = %d, want 7", sameCont)
	}
	for _, a := range audits {
		if a.WowzaID == "wowza-saopaulo" && (a.SameCity || a.SameContinent) {
			t.Fatal("São Paulo should be the uncovered exception")
		}
	}
}

func TestClassify(t *testing.T) {
	w := WowzaSites()
	f := FastlySites()
	find := func(id string, sites []Datacenter) Datacenter {
		for _, dc := range sites {
			if dc.ID == id {
				return dc
			}
		}
		t.Fatalf("site %s not found", id)
		return Datacenter{}
	}
	cases := []struct {
		a, b Datacenter
		want DistanceClass
	}{
		{find("wowza-ashburn", w), find("fastly-ashburn", f), ClassCoLocated},
		{find("wowza-ashburn", w), find("fastly-newyork", f), ClassUnder500},
		{find("wowza-ashburn", w), find("fastly-sanjose", f), ClassUnder5000},
		{find("wowza-ashburn", w), find("fastly-london", f), ClassUnder10000},
		{find("wowza-sydney", w), find("fastly-london", f), ClassOver10000},
	}
	for _, tc := range cases {
		if got := Classify(tc.a, tc.b); got != tc.want {
			t.Fatalf("Classify(%s, %s) = %v, want %v", tc.a.ID, tc.b.ID, got, tc.want)
		}
	}
}

func TestDistanceClassString(t *testing.T) {
	if ClassCoLocated.String() != "Co-located (0km)" {
		t.Fatalf("unexpected label %q", ClassCoLocated.String())
	}
	if DistanceClass(99).String() == "" {
		t.Fatal("unknown class should still render")
	}
}

func TestCityCatalogNonEmptyAndDistinct(t *testing.T) {
	cities := CityCatalog()
	if len(cities) < 20 {
		t.Fatalf("city catalog too small: %d", len(cities))
	}
	seen := map[string]bool{}
	for _, c := range cities {
		if seen[c.City] {
			t.Fatalf("duplicate city %q", c.City)
		}
		seen[c.City] = true
		if c.Lat < -90 || c.Lat > 90 || c.Lon < -180 || c.Lon > 180 {
			t.Fatalf("city %q has invalid coordinates", c.City)
		}
	}
}

// Property: Nearest always returns a site no farther than any other site.
func TestNearestOptimalProperty(t *testing.T) {
	sites := FastlySites()
	f := func(lat, lon float64) bool {
		if math.IsNaN(lat) || math.IsNaN(lon) || math.IsInf(lat, 0) || math.IsInf(lon, 0) {
			return true
		}
		loc := Location{Lat: math.Mod(lat, 90), Lon: math.Mod(lon, 180)}
		best := Nearest(loc, sites)
		bd := DistanceKm(loc, best.Location)
		for _, dc := range sites {
			if DistanceKm(loc, dc.Location) < bd-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
