// Package geo models the geographic substrate of the reproduction: the
// datacenter catalog the paper mapped in Figure 9 (8 Wowza Amazon EC2 sites
// and the 23 Fastly POPs in use at measurement time), great-circle distance,
// and the nearest-datacenter (IP-anycast analog) selection Periscope uses for
// broadcasters and HLS viewers (§5.3).
package geo

import (
	"fmt"
	"math"
	"sort"
)

// Continent codes used in the catalog.
const (
	NorthAmerica = "NA"
	SouthAmerica = "SA"
	Europe       = "EU"
	Asia         = "AS"
	Oceania      = "OC"
)

// Location is a point on the globe.
type Location struct {
	City      string
	Continent string
	Lat, Lon  float64 // degrees
}

// Provider identifies which CDN a datacenter belongs to.
type Provider string

// The two CDNs in Periscope's video path (§4.1).
const (
	Wowza  Provider = "wowza"  // RTMP ingest + origin
	Fastly Provider = "fastly" // HLS edge
)

// Datacenter is one site in a CDN.
type Datacenter struct {
	ID       string
	Provider Provider
	Location Location
}

// EarthRadiusKm is the mean Earth radius.
const EarthRadiusKm = 6371.0

// DistanceKm returns the great-circle (haversine) distance between a and b.
func DistanceKm(a, b Location) float64 {
	const rad = math.Pi / 180
	lat1, lon1 := a.Lat*rad, a.Lon*rad
	lat2, lon2 := b.Lat*rad, b.Lon*rad
	dLat := lat2 - lat1
	dLon := lon2 - lon1
	h := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1)*math.Cos(lat2)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * EarthRadiusKm * math.Asin(math.Min(1, math.Sqrt(h)))
}

// WowzaSites returns the 8 Wowza EC2 datacenters the paper located via its
// 273-node PlanetLab experiment (§4.1). The catalog is fresh on every call;
// callers may mutate their copy.
func WowzaSites() []Datacenter {
	return []Datacenter{
		{ID: "wowza-ashburn", Provider: Wowza, Location: Location{"Ashburn", NorthAmerica, 39.04, -77.49}},
		{ID: "wowza-sanjose", Provider: Wowza, Location: Location{"San Jose", NorthAmerica, 37.34, -121.89}},
		{ID: "wowza-dublin", Provider: Wowza, Location: Location{"Dublin", Europe, 53.35, -6.26}},
		{ID: "wowza-frankfurt", Provider: Wowza, Location: Location{"Frankfurt", Europe, 50.11, 8.68}},
		{ID: "wowza-tokyo", Provider: Wowza, Location: Location{"Tokyo", Asia, 35.68, 139.69}},
		{ID: "wowza-singapore", Provider: Wowza, Location: Location{"Singapore", Asia, 1.35, 103.82}},
		{ID: "wowza-sydney", Provider: Wowza, Location: Location{"Sydney", Oceania, -33.87, 151.21}},
		{ID: "wowza-saopaulo", Provider: Wowza, Location: Location{"Sao Paulo", SouthAmerica, -23.55, -46.63}},
	}
}

// FastlySites returns the 23 Fastly POPs in use during the measurement window
// (before the December 2015 Perth/Wellington/São Paulo additions, which the
// paper notes are not covered).
func FastlySites() []Datacenter {
	mk := func(id, city, cont string, lat, lon float64) Datacenter {
		return Datacenter{ID: id, Provider: Fastly, Location: Location{city, cont, lat, lon}}
	}
	return []Datacenter{
		mk("fastly-sanjose", "San Jose", NorthAmerica, 37.34, -121.89),
		mk("fastly-losangeles", "Los Angeles", NorthAmerica, 34.05, -118.24),
		mk("fastly-seattle", "Seattle", NorthAmerica, 47.61, -122.33),
		mk("fastly-denver", "Denver", NorthAmerica, 39.74, -104.99),
		mk("fastly-dallas", "Dallas", NorthAmerica, 32.78, -96.80),
		mk("fastly-chicago", "Chicago", NorthAmerica, 41.88, -87.63),
		mk("fastly-atlanta", "Atlanta", NorthAmerica, 33.75, -84.39),
		mk("fastly-miami", "Miami", NorthAmerica, 25.76, -80.19),
		mk("fastly-ashburn", "Ashburn", NorthAmerica, 39.04, -77.49),
		mk("fastly-newyork", "New York", NorthAmerica, 40.71, -74.01),
		mk("fastly-toronto", "Toronto", NorthAmerica, 43.65, -79.38),
		mk("fastly-london", "London", Europe, 51.51, -0.13),
		mk("fastly-amsterdam", "Amsterdam", Europe, 52.37, 4.90),
		mk("fastly-frankfurt", "Frankfurt", Europe, 50.11, 8.68),
		mk("fastly-paris", "Paris", Europe, 48.86, 2.35),
		mk("fastly-stockholm", "Stockholm", Europe, 59.33, 18.07),
		mk("fastly-tokyo", "Tokyo", Asia, 35.68, 139.69),
		mk("fastly-osaka", "Osaka", Asia, 34.69, 135.50),
		mk("fastly-singapore", "Singapore", Asia, 1.35, 103.82),
		mk("fastly-hongkong", "Hong Kong", Asia, 22.32, 114.17),
		mk("fastly-sydney", "Sydney", Oceania, -33.87, 151.21),
		mk("fastly-brisbane", "Brisbane", Oceania, -27.47, 153.03),
		mk("fastly-auckland", "Auckland", Oceania, -36.85, 174.76),
	}
}

// Nearest returns the datacenter in sites closest to loc, modelling both
// Periscope's broadcaster→Wowza assignment and the Fastly IP-anycast viewer
// routing (§5.3). It panics on an empty catalog.
func Nearest(loc Location, sites []Datacenter) Datacenter {
	if len(sites) == 0 {
		panic("geo: Nearest on empty catalog")
	}
	best := sites[0]
	bestD := DistanceKm(loc, best.Location)
	for _, dc := range sites[1:] {
		if d := DistanceKm(loc, dc.Location); d < bestD {
			best, bestD = dc, d
		}
	}
	return best
}

// CoLocated reports whether two datacenters are in the same city — the
// relationship driving the Figure 15 gap and the gateway relay hypothesis.
func CoLocated(a, b Datacenter) bool {
	return a.Location.City == b.Location.City
}

// DistanceClass buckets a datacenter pair the way Figure 15 groups them.
type DistanceClass int

// Figure 15's five distance groups.
const (
	ClassCoLocated  DistanceClass = iota // same city
	ClassUnder500                        // (0, 500 km]
	ClassUnder5000                       // (500, 5000 km]
	ClassUnder10000                      // (5000, 10000 km]
	ClassOver10000                       // > 10000 km
)

// String implements fmt.Stringer with the paper's legend labels.
func (c DistanceClass) String() string {
	switch c {
	case ClassCoLocated:
		return "Co-located (0km)"
	case ClassUnder500:
		return "(0, 500km]"
	case ClassUnder5000:
		return "(500, 5,000km]"
	case ClassUnder10000:
		return "(5,000, 10,000km]"
	case ClassOver10000:
		return ">10,000km"
	default:
		return fmt.Sprintf("DistanceClass(%d)", int(c))
	}
}

// Classify returns the Figure 15 distance class of a datacenter pair.
func Classify(a, b Datacenter) DistanceClass {
	if CoLocated(a, b) {
		return ClassCoLocated
	}
	switch d := DistanceKm(a.Location, b.Location); {
	case d <= 500:
		return ClassUnder500
	case d <= 5000:
		return ClassUnder5000
	case d <= 10000:
		return ClassUnder10000
	default:
		return ClassOver10000
	}
}

// CoLocationAudit reports, for each Wowza site, whether a Fastly POP shares
// its city and whether one shares its continent — the §4.1 observation that
// 6/8 pairs are same-city and 7/8 same-continent.
type CoLocationAudit struct {
	WowzaID       string
	City          string
	SameCity      bool
	SameContinent bool
}

// AuditCoLocation runs the §4.1 co-location check over the two catalogs.
func AuditCoLocation(wowza, fastly []Datacenter) []CoLocationAudit {
	audits := make([]CoLocationAudit, 0, len(wowza))
	for _, w := range wowza {
		a := CoLocationAudit{WowzaID: w.ID, City: w.Location.City}
		for _, f := range fastly {
			if f.Location.City == w.Location.City {
				a.SameCity = true
			}
			if f.Location.Continent == w.Location.Continent {
				a.SameContinent = true
			}
		}
		audits = append(audits, a)
	}
	sort.Slice(audits, func(i, j int) bool { return audits[i].WowzaID < audits[j].WowzaID })
	return audits
}

// CityCatalog is a pool of user locations for workload generation: major
// cities weighted roughly by the 2015 Periscope user base (US-heavy, then
// Europe, Asia, Middle East).
func CityCatalog() []Location {
	return []Location{
		{"New York", NorthAmerica, 40.71, -74.01},
		{"Los Angeles", NorthAmerica, 34.05, -118.24},
		{"Chicago", NorthAmerica, 41.88, -87.63},
		{"Houston", NorthAmerica, 29.76, -95.37},
		{"San Francisco", NorthAmerica, 37.77, -122.42},
		{"Seattle", NorthAmerica, 47.61, -122.33},
		{"Toronto", NorthAmerica, 43.65, -79.38},
		{"Mexico City", NorthAmerica, 19.43, -99.13},
		{"London", Europe, 51.51, -0.13},
		{"Paris", Europe, 48.86, 2.35},
		{"Berlin", Europe, 52.52, 13.41},
		{"Madrid", Europe, 40.42, -3.70},
		{"Rome", Europe, 41.90, 12.50},
		{"Istanbul", Europe, 41.01, 28.98},
		{"Moscow", Europe, 55.76, 37.62},
		{"Dubai", Asia, 25.20, 55.27},
		{"Riyadh", Asia, 24.71, 46.68},
		{"Tokyo", Asia, 35.68, 139.69},
		{"Seoul", Asia, 37.57, 126.98},
		{"Jakarta", Asia, -6.21, 106.85},
		{"Mumbai", Asia, 19.08, 72.88},
		{"Singapore", Asia, 1.35, 103.82},
		{"Sydney", Oceania, -33.87, 151.21},
		{"Auckland", Oceania, -36.85, 174.76},
		{"Sao Paulo", SouthAmerica, -23.55, -46.63},
		{"Buenos Aires", SouthAmerica, -34.60, -58.38},
		{"Rio de Janeiro", SouthAmerica, -22.91, -43.17},
	}
}
