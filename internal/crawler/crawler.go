// Package crawler reimplements the paper's measurement apparatus (§3.1,
// §4.3) against the reproduced platform: a global-list crawler that samples
// the 50-random broadcast list at high frequency to capture every broadcast,
// per-broadcast monitors that join and record metadata (viewers, comments,
// hearts — never video content), an RTMP tap with a zero stream buffer that
// timestamps every pushed frame, and a 100 ms HLS poller that timestamps
// chunk availability. Output is trace records, anonymized before analysis.
package crawler

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/control"
	"repro/internal/geo"
	"repro/internal/hls"
	"repro/internal/pubsub"
	"repro/internal/rtmp"
	"repro/internal/trace"
)

// Config tunes the crawler.
type Config struct {
	// Control reaches the platform's control API. Required.
	Control *control.Client
	// ListInterval is the effective global-list sampling period. The
	// paper's per-account rate is 5 s; with 20 accounts the aggregate is
	// 250 ms (default).
	ListInterval time.Duration
	// CrawlerUser is the registered account the monitors join as.
	CrawlerUser uint64
	// Location of the crawler (affects edge assignment like any viewer).
	Location geo.Location
	// TapRTMP attaches a zero-buffer RTMP viewer to each broadcast and
	// emits per-frame delay records (§4.3 passive crawling).
	TapRTMP bool
	// TapHLS polls each broadcast's edge at HLSPollInterval and emits
	// per-chunk delay records.
	TapHLS bool
	// HLSPollInterval defaults to the paper's 100 ms.
	HLSPollInterval time.Duration
	// WatchMessages subscribes to the comment/heart channel.
	WatchMessages bool
	// OnBroadcast receives the finished record for every broadcast.
	OnBroadcast func(rec trace.BroadcastRecord)
	// OnDelay receives frame/chunk delay observations.
	OnDelay func(rec trace.DelayRecord)
	// Anonymizer pseudonymizes records before OnBroadcast; nil disables
	// (tests want raw IDs; production use mirrors the paper's IRB terms).
	Anonymizer *trace.Anonymizer
}

// Stats count crawler activity.
type Stats struct {
	ListPolls      atomic.Int64
	BroadcastsSeen atomic.Int64
	BroadcastsDone atomic.Int64
	FramesTapped   atomic.Int64
	ChunksTapped   atomic.Int64
}

// Crawler captures the platform's broadcast population.
type Crawler struct {
	cfg   Config
	stats Stats

	mu    sync.Mutex
	known map[string]bool
	wg    sync.WaitGroup
}

// New builds a Crawler.
func New(cfg Config) (*Crawler, error) {
	if cfg.Control == nil {
		return nil, errors.New("crawler: Control client required")
	}
	if cfg.ListInterval <= 0 {
		cfg.ListInterval = 250 * time.Millisecond
	}
	if cfg.HLSPollInterval <= 0 {
		cfg.HLSPollInterval = 100 * time.Millisecond
	}
	return &Crawler{cfg: cfg, known: make(map[string]bool)}, nil
}

// Stats exposes the counters.
func (c *Crawler) Stats() *Stats { return &c.stats }

// Run polls the global list until ctx is done, monitoring every broadcast
// it discovers. It returns after all monitors finish.
func (c *Crawler) Run(ctx context.Context) error {
	ticker := time.NewTicker(c.cfg.ListInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			c.wg.Wait()
			return ctx.Err()
		case <-ticker.C:
		}
		c.stats.ListPolls.Add(1)
		list, err := c.cfg.Control.GlobalList(ctx)
		if err != nil {
			if ctx.Err() != nil {
				c.wg.Wait()
				return ctx.Err()
			}
			continue // transient error: keep crawling
		}
		for _, b := range list {
			c.maybeMonitor(ctx, b)
		}
	}
}

func (c *Crawler) maybeMonitor(ctx context.Context, b control.Summary) {
	c.mu.Lock()
	if c.known[b.BroadcastID] {
		c.mu.Unlock()
		return
	}
	c.known[b.BroadcastID] = true
	c.mu.Unlock()
	c.stats.BroadcastsSeen.Add(1)
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		c.monitor(ctx, b)
	}()
}

// monitor joins one broadcast and records it until it ends.
func (c *Crawler) monitor(ctx context.Context, b control.Summary) {
	defer c.stats.BroadcastsDone.Add(1)
	rec := trace.BroadcastRecord{
		BroadcastID: b.BroadcastID,
		Broadcaster: fmt.Sprintf("user-%d", b.Broadcaster),
		StartedAt:   b.StartedAt,
	}
	grant, err := c.cfg.Control.Join(ctx, c.cfg.CrawlerUser, b.BroadcastID, c.cfg.Location)
	if err != nil {
		// Ended between discovery and join; record what we saw.
		c.finish(rec)
		return
	}

	var wg sync.WaitGroup
	var mu sync.Mutex // guards rec during concurrent taps

	if c.cfg.TapRTMP && grant.RTMPAddr != "" {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.tapRTMP(ctx, grant.RTMPAddr, b.BroadcastID)
		}()
	}
	if c.cfg.TapHLS && grant.HLSBaseURL != "" {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.tapHLS(ctx, grant.HLSBaseURL, b.BroadcastID)
		}()
	}
	if c.cfg.WatchMessages && grant.MessageURL != "" {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.watchMessages(ctx, grant.MessageURL, b.BroadcastID, &mu, &rec)
		}()
	}

	// Poll broadcast info until it ends; pick up viewer joins.
	ticker := time.NewTicker(c.cfg.ListInterval * 2)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			wg.Wait()
			c.finish(rec)
			return
		case <-ticker.C:
		}
		info, err := c.cfg.Control.Info(ctx, b.BroadcastID)
		if err != nil || !info.Live {
			if err == nil {
				rec.EndedAt = info.EndedAt
			}
			wg.Wait()
			c.finish(rec)
			return
		}
	}
}

func (c *Crawler) finish(rec trace.BroadcastRecord) {
	if c.cfg.OnBroadcast == nil {
		return
	}
	if c.cfg.Anonymizer != nil {
		rec = c.cfg.Anonymizer.AnonymizeRecord(rec)
	}
	c.cfg.OnBroadcast(rec)
}

// tapRTMP joins with a zero stream buffer so every frame is pushed the
// moment it is available (§4.3), recording per-frame delivery delay against
// the capture timestamp embedded in frame metadata.
func (c *Crawler) tapRTMP(ctx context.Context, addr, broadcastID string) {
	v, err := rtmp.Subscribe(ctx, addr, broadcastID, "", rtmp.ViewerOptions{BufferMs: 0})
	if err != nil {
		return
	}
	defer v.Close()
	for {
		select {
		case <-ctx.Done():
			return
		case rf, ok := <-v.Frames():
			if !ok {
				return
			}
			c.stats.FramesTapped.Add(1)
			if c.cfg.OnDelay != nil {
				c.cfg.OnDelay(trace.DelayRecord{
					BroadcastID: broadcastID,
					Kind:        "frame",
					Seq:         rf.Frame.Seq,
					CapturedAt:  rf.Frame.CapturedAt,
					OriginAt:    rf.ReceivedAt,
					Delay:       rf.ReceivedAt.Sub(rf.Frame.CapturedAt),
				})
			}
		}
	}
}

// tapHLS polls the chunklist at high frequency, triggering edge pulls
// immediately (the paper's crawler isolates the Wowza2Fastly delay this
// way) and records per-chunk availability.
func (c *Crawler) tapHLS(ctx context.Context, baseURL, broadcastID string) {
	client := &hls.Client{BaseURL: baseURL}
	_ = client.Poll(ctx, broadcastID, hls.PollerConfig{
		Interval: c.cfg.HLSPollInterval,
		OnChunk: func(ev hls.ChunkEvent) {
			c.stats.ChunksTapped.Add(1)
			if c.cfg.OnDelay == nil {
				return
			}
			rec := trace.DelayRecord{
				BroadcastID: broadcastID,
				Kind:        "chunk",
				Seq:         ev.Ref.Seq,
				EdgeAt:      ev.ListFetchedAt,
			}
			if ev.Chunk != nil {
				rec.CapturedAt = ev.Chunk.FirstCapturedAt()
				rec.Delay = ev.FetchedAt.Sub(rec.CapturedAt)
			}
			c.cfg.OnDelay(rec)
		},
	})
}

// watchMessages records comment/heart timelines (metadata only).
func (c *Crawler) watchMessages(ctx context.Context, baseURL, broadcastID string, mu *sync.Mutex, rec *trace.BroadcastRecord) {
	client := &pubsub.Client{BaseURL: baseURL}
	var since uint64
	for {
		evs, closed, err := client.Events(ctx, broadcastID, since, true)
		if err != nil {
			return
		}
		mu.Lock()
		for _, ev := range evs {
			since = ev.Seq
			rec.Events = append(rec.Events, trace.Event{
				UserID: ev.UserID,
				Kind:   string(ev.Kind),
				At:     ev.At,
			})
		}
		mu.Unlock()
		if closed {
			return
		}
	}
}
