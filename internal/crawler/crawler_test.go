package crawler

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/control"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/media"
	"repro/internal/pubsub"
	"repro/internal/rng"
	"repro/internal/rtmp"
	"repro/internal/testutil"
	"repro/internal/trace"
)

func startPlatform(t *testing.T) (*core.Platform, *control.Client) {
	t.Helper()
	// Registered before the Stop cleanup below so it runs after it
	// (t.Cleanup is LIFO): platform goroutines must be gone by then.
	testutil.CheckGoroutines(t)
	w := geo.WowzaSites()
	f := geo.FastlySites()
	p := core.NewPlatform(core.PlatformConfig{
		OriginSites:   []geo.Datacenter{w[0]},
		EdgeSites:     []geo.Datacenter{f[8]},
		ChunkDuration: time.Second,
	})
	if err := p.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Stop)
	return p, &control.Client{BaseURL: p.ControlURL()}
}

// runBroadcast publishes n frames then ends, sending a comment and a heart
// midway.
func runBroadcast(t *testing.T, cc *control.Client, n int) control.BroadcastGrant {
	t.Helper()
	ctx := context.Background()
	uid, err := cc.Register(ctx, "b")
	if err != nil {
		t.Fatal(err)
	}
	grant, err := cc.StartBroadcast(ctx, uid, geo.Location{City: "Ashburn", Lat: 39, Lon: -77})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		pub, err := rtmp.Publish(ctx, grant.RTMPAddr, grant.BroadcastID, grant.Token, nil)
		if err != nil {
			t.Errorf("publish: %v", err)
			return
		}
		enc := media.NewEncoder(media.EncoderConfig{}, rng.New(4))
		mc := &pubsub.Client{BaseURL: grant.MessageURL}
		for i := 0; i < n; i++ {
			f := enc.Next(time.Now())
			if err := pub.Send(&f); err != nil {
				t.Errorf("send: %v", err)
				return
			}
			if i == n/2 {
				mc.Publish(ctx, grant.BroadcastID, pubsub.Event{UserID: "u1", Kind: pubsub.KindComment, Text: "hi"})
				mc.Publish(ctx, grant.BroadcastID, pubsub.Event{UserID: "u2", Kind: pubsub.KindHeart})
			}
			time.Sleep(2 * time.Millisecond) // paced upload
		}
		pub.End()
	}()
	return grant
}

func TestCrawlerCapturesBroadcastLifecycle(t *testing.T) {
	_, cc := startPlatform(t)
	var mu sync.Mutex
	var recs []trace.BroadcastRecord
	var delays []trace.DelayRecord
	cr, err := New(Config{
		Control:         cc,
		ListInterval:    20 * time.Millisecond,
		TapRTMP:         true,
		TapHLS:          true,
		WatchMessages:   true,
		HLSPollInterval: 20 * time.Millisecond,
		OnBroadcast: func(r trace.BroadcastRecord) {
			mu.Lock()
			recs = append(recs, r)
			mu.Unlock()
		},
		OnDelay: func(r trace.DelayRecord) {
			mu.Lock()
			delays = append(delays, r)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	crawlDone := make(chan struct{})
	go func() {
		cr.Run(ctx)
		close(crawlDone)
	}()

	grant := runBroadcast(t, cc, 80) // 3.2 s of video → 3 chunks at 1 s

	// Wait for the crawler to finish monitoring the broadcast.
	deadline := time.After(15 * time.Second)
	for {
		mu.Lock()
		done := len(recs) > 0
		mu.Unlock()
		if done {
			break
		}
		select {
		case <-deadline:
			t.Fatal("crawler never finished the broadcast record")
		case <-time.After(20 * time.Millisecond):
		}
	}
	cancel()
	<-crawlDone

	mu.Lock()
	defer mu.Unlock()
	rec := recs[0]
	if rec.BroadcastID != grant.BroadcastID {
		t.Fatalf("record for %s, want %s", rec.BroadcastID, grant.BroadcastID)
	}
	if rec.StartedAt.IsZero() || rec.EndedAt.IsZero() {
		t.Fatalf("missing start/end timestamps: %+v", rec)
	}
	if len(rec.Events) != 2 {
		t.Fatalf("events = %d, want comment + heart", len(rec.Events))
	}

	frames, chunks := 0, 0
	for _, d := range delays {
		switch d.Kind {
		case "frame":
			frames++
			if d.Delay <= 0 {
				t.Fatal("non-positive frame delay")
			}
		case "chunk":
			chunks++
			if d.CapturedAt.IsZero() {
				t.Fatal("chunk record missing capture timestamp")
			}
		}
	}
	// The crawler joins after discovery, so it misses frames pushed
	// before its subscription — exactly like a late viewer on Periscope.
	if frames < 30 || frames > 80 {
		t.Fatalf("frames tapped = %d, want most of 80", frames)
	}
	if chunks < 2 {
		t.Fatalf("chunks tapped = %d, want ≥2", chunks)
	}
	if cr.Stats().BroadcastsSeen.Load() != 1 || cr.Stats().BroadcastsDone.Load() != 1 {
		t.Fatalf("stats = %+v", cr.Stats())
	}
}

func TestCrawlerCapturesAllConcurrentBroadcasts(t *testing.T) {
	_, cc := startPlatform(t)
	var mu sync.Mutex
	got := map[string]bool{}
	cr, err := New(Config{
		Control:      cc,
		ListInterval: 15 * time.Millisecond,
		OnBroadcast: func(r trace.BroadcastRecord) {
			mu.Lock()
			got[r.BroadcastID] = true
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { cr.Run(ctx); close(done) }()

	const nBcasts = 8
	var want []string
	for i := 0; i < nBcasts; i++ {
		g := runBroadcast(t, cc, 30)
		want = append(want, g.BroadcastID)
	}

	deadline := time.After(20 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n == nBcasts {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("crawler captured %d/%d broadcasts", n, nBcasts)
		case <-time.After(20 * time.Millisecond):
		}
	}
	cancel()
	<-done
	mu.Lock()
	defer mu.Unlock()
	for _, id := range want {
		if !got[id] {
			t.Fatalf("broadcast %s never captured", id)
		}
	}
}

func TestCrawlerAnonymizes(t *testing.T) {
	_, cc := startPlatform(t)
	var mu sync.Mutex
	var recs []trace.BroadcastRecord
	cr, err := New(Config{
		Control:      cc,
		ListInterval: 15 * time.Millisecond,
		Anonymizer:   trace.NewAnonymizer([]byte("irb-key")),
		OnBroadcast: func(r trace.BroadcastRecord) {
			mu.Lock()
			recs = append(recs, r)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { cr.Run(ctx); close(done) }()
	grant := runBroadcast(t, cc, 20)

	deadline := time.After(15 * time.Second)
	for {
		mu.Lock()
		n := len(recs)
		mu.Unlock()
		if n > 0 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("no record produced")
		case <-time.After(20 * time.Millisecond):
		}
	}
	cancel()
	<-done
	mu.Lock()
	defer mu.Unlock()
	if recs[0].BroadcastID == grant.BroadcastID {
		t.Fatal("broadcast ID not anonymized")
	}
	if len(recs[0].BroadcastID) != 16 {
		t.Fatalf("pseudonym length = %d", len(recs[0].BroadcastID))
	}
}

func TestNewRequiresControl(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("missing control client accepted")
	}
}
