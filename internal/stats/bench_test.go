package stats

import (
	"testing"

	"repro/internal/rng"
)

func benchSample(n int) []float64 {
	src := rng.New(1)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = src.LogNormal(0, 1.5)
	}
	return xs
}

func BenchmarkNewCDF(b *testing.B) {
	xs := benchSample(10_000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		NewCDF(xs)
	}
}

func BenchmarkCDFAt(b *testing.B) {
	c := NewCDF(benchSample(10_000))
	for i := 0; i < b.N; i++ {
		c.At(float64(i % 100))
	}
}

func BenchmarkSummarize(b *testing.B) {
	xs := benchSample(10_000)
	for i := 0; i < b.N; i++ {
		Summarize(xs)
	}
}

func BenchmarkSpearman(b *testing.B) {
	xs := benchSample(5_000)
	ys := benchSample(5_000)
	for i := 0; i < b.N; i++ {
		SpearmanRho(xs, ys)
	}
}
