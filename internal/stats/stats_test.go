package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeBasic(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Mean != 3 || s.Median != 3 || s.Sum != 15 {
		t.Fatalf("unexpected summary: %+v", s)
	}
	if math.Abs(s.StdDev-math.Sqrt(2)) > 1e-9 {
		t.Fatalf("stddev = %v, want sqrt(2)", s.StdDev)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Fatalf("empty summary N = %d", s.N)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	xs := []float64{0, 10}
	if q := Quantile(xs, 0.5); q != 5 {
		t.Fatalf("median of {0,10} = %v, want 5", q)
	}
	if q := Quantile(xs, 0); q != 0 {
		t.Fatalf("q0 = %v", q)
	}
	if q := Quantile(xs, 1); q != 10 {
		t.Fatalf("q1 = %v", q)
	}
}

func TestCDFAt(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {100, 1},
	}
	for _, tc := range cases {
		if got := c.At(tc.x); math.Abs(got-tc.want) > 1e-12 {
			t.Fatalf("At(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if c.At(5) != 0 || c.Quantile(0.5) != 0 || c.Points(10) != nil {
		t.Fatal("empty CDF should be all zero")
	}
}

func TestCDFPointsMonotone(t *testing.T) {
	c := NewCDF([]float64{5, 3, 9, 1, 7, 7, 2})
	pts := c.Points(20)
	if len(pts) != 20 {
		t.Fatalf("Points(20) len = %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].X < pts[i-1].X || pts[i].Y <= pts[i-1].Y {
			t.Fatalf("CDF points not monotone at %d: %+v", i, pts)
		}
	}
	if pts[len(pts)-1].Y != 1 {
		t.Fatalf("last probability = %v, want 1", pts[len(pts)-1].Y)
	}
}

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	if r := PearsonR(xs, ys); math.Abs(r-1) > 1e-12 {
		t.Fatalf("r = %v, want 1", r)
	}
	neg := []float64{8, 6, 4, 2}
	if r := PearsonR(xs, neg); math.Abs(r+1) > 1e-12 {
		t.Fatalf("r = %v, want -1", r)
	}
}

func TestPearsonDegenerate(t *testing.T) {
	if r := PearsonR([]float64{1, 1, 1}, []float64{1, 2, 3}); r != 0 {
		t.Fatalf("zero-variance r = %v", r)
	}
	if r := PearsonR([]float64{1}, []float64{1, 2}); r != 0 {
		t.Fatalf("mismatched r = %v", r)
	}
}

func TestSpearmanMonotone(t *testing.T) {
	xs := []float64{1, 10, 100, 1000}
	ys := []float64{2, 3, 50, 60}
	if rho := SpearmanRho(xs, ys); math.Abs(rho-1) > 1e-12 {
		t.Fatalf("rho = %v, want 1 for monotone data", rho)
	}
}

func TestSpearmanTies(t *testing.T) {
	xs := []float64{1, 1, 2, 2}
	ys := []float64{1, 1, 2, 2}
	if rho := SpearmanRho(xs, ys); math.Abs(rho-1) > 1e-12 {
		t.Fatalf("rho with ties = %v, want 1", rho)
	}
}

func TestHistogram(t *testing.T) {
	counts := Histogram([]float64{0.5, 1.5, 1.7, 2.5, -3, 99}, 0, 1, 3)
	if counts[0] != 2 || counts[1] != 2 || counts[2] != 2 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{Title: "T", Headers: []string{"App", "Views"}}
	tab.AddRow("Periscope", "705M")
	tab.AddRow("Meerkat", "3.8M")
	out := tab.String()
	for _, want := range []string{"T", "App", "Periscope", "705M", "Meerkat"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestFigureRendering(t *testing.T) {
	fig := &Figure{Title: "F", XLabel: "x", YLabel: "y"}
	fig.Add("s1", []Point{{1, 2}, {3, 4}})
	out := fig.String()
	for _, want := range []string{"# F", "series: s1", "1\t2", "3\t4"} {
		if !strings.Contains(out, want) {
			t.Fatalf("figure output missing %q:\n%s", want, out)
		}
	}
}

func TestFormatCount(t *testing.T) {
	cases := []struct {
		n    int64
		want string
	}{
		{999, "999"},
		{1000, "1K"},
		{164335, "164.3K"},
		{19600000, "19.6M"},
		{705000000, "705M"},
		{1500000000, "1.5B"},
	}
	for _, tc := range cases {
		if got := FormatCount(tc.n); got != tc.want {
			t.Fatalf("FormatCount(%d) = %q, want %q", tc.n, got, tc.want)
		}
	}
}

// Property: CDF.At is monotone non-decreasing and bounded by [0,1].
func TestCDFMonotoneProperty(t *testing.T) {
	f := func(xs []float64, a, b float64) bool {
		for i, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				xs[i] = 0
			}
		}
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			a, b = 0, 1
		}
		if a > b {
			a, b = b, a
		}
		c := NewCDF(xs)
		pa, pb := c.At(a), c.At(b)
		return pa >= 0 && pb <= 1 && pa <= pb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Quantile and At are approximately inverse on distinct samples.
func TestQuantileInverseProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) < 2 {
			return true
		}
		seen := map[float64]bool{}
		var xs []float64
		for _, r := range raw {
			v := float64(r)
			if !seen[v] {
				seen[v] = true
				xs = append(xs, v)
			}
		}
		if len(xs) < 2 {
			return true
		}
		sort.Float64s(xs)
		c := NewCDF(xs)
		// Interpolated quantiles invert the empirical CDF only up to a
		// 1/n discretization gap; they must also be monotone in q and
		// bounded by the sample extremes.
		slack := 1/float64(len(xs)) + 1e-9
		prev := math.Inf(-1)
		for q := 0.05; q <= 1.0; q += 0.05 {
			v := c.Quantile(q)
			if v < prev || v < xs[0] || v > xs[len(xs)-1] {
				return false
			}
			if c.At(v) < q-slack {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: histogram counts always sum to the sample size.
func TestHistogramTotalProperty(t *testing.T) {
	f := func(xs []float64) bool {
		for i, x := range xs {
			if math.IsNaN(x) {
				xs[i] = 0
			}
		}
		counts := Histogram(xs, -10, 2.5, 16)
		total := 0
		for _, c := range counts {
			total += c
		}
		return total == len(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
