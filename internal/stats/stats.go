// Package stats implements the descriptive statistics and rendering helpers
// used to regenerate the paper's tables and figures: empirical CDFs,
// percentiles, summary moments, correlation, and fixed-width table/series
// printers that mirror the rows the paper reports.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary holds the basic moments of a sample.
type Summary struct {
	N      int
	Min    float64
	Max    float64
	Mean   float64
	Median float64
	StdDev float64
	Sum    float64
}

// Summarize computes a Summary of xs. An empty sample yields a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var sum, sumSq float64
	for _, x := range sorted {
		sum += x
		sumSq += x * x
	}
	n := float64(len(sorted))
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Summary{
		N:      len(sorted),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Mean:   mean,
		Median: quantileSorted(sorted, 0.5),
		StdDev: math.Sqrt(variance),
		Sum:    sum,
	}
}

// Mean returns the arithmetic mean of xs, or 0 for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 1 {
		return 0
	}
	m := Mean(xs)
	var sq float64
	for _, x := range xs {
		d := x - m
		sq += d * d
	}
	return math.Sqrt(sq / float64(len(xs)))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs by linear interpolation.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// CDF is an empirical cumulative distribution function over a sample.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from xs. The input is copied.
func NewCDF(xs []float64) *CDF {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// N returns the sample size.
func (c *CDF) N() int { return len(c.sorted) }

// At returns P(X ≤ x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	idx := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(c.sorted))
}

// Quantile returns the q-quantile of the sample.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	return quantileSorted(c.sorted, q)
}

// Points samples the CDF at n evenly spaced probabilities in (0, 1],
// returning (value, probability) pairs suitable for plotting a CDF curve.
func (c *CDF) Points(n int) []Point {
	if n <= 0 || len(c.sorted) == 0 {
		return nil
	}
	pts := make([]Point, 0, n)
	for i := 1; i <= n; i++ {
		q := float64(i) / float64(n)
		pts = append(pts, Point{X: quantileSorted(c.sorted, q), Y: q})
	}
	return pts
}

// Point is a generic (x, y) pair in a rendered series.
type Point struct{ X, Y float64 }

// PearsonR returns the Pearson correlation coefficient of paired samples.
// It returns 0 when either sample has zero variance or lengths mismatch.
func PearsonR(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) == 0 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// SpearmanRho returns Spearman's rank correlation of paired samples,
// robust to the heavy-tailed magnitudes in follower/viewer data (Fig. 7).
func SpearmanRho(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) == 0 {
		return 0
	}
	return PearsonR(ranks(xs), ranks(ys))
}

func ranks(xs []float64) []float64 {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	r := make([]float64, len(xs))
	i := 0
	for i < len(idx) {
		j := i
		for j+1 < len(idx) && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j) / 2
		for k := i; k <= j; k++ {
			r[idx[k]] = avg
		}
		i = j + 1
	}
	return r
}

// Histogram buckets xs into bins of the given width starting at min,
// returning counts per bin; values ≥ min+width*len are clamped to the last.
func Histogram(xs []float64, min, width float64, bins int) []int {
	counts := make([]int, bins)
	if bins == 0 || width <= 0 {
		return counts
	}
	for _, x := range xs {
		b := int((x - min) / width)
		if b < 0 {
			b = 0
		}
		if b >= bins {
			b = bins - 1
		}
		counts[b]++
	}
	return counts
}

// Table renders labeled rows with aligned columns, in the spirit of the
// paper's Tables 1 and 2.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table as fixed-width text.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i == len(cells)-1 {
				b.WriteString(c) // no trailing padding
			} else {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 2 * (len(widths) - 1)
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Series is a named sequence of points, one line of a figure.
type Series struct {
	Name   string
	Points []Point
}

// Figure is a set of series with axis labels — the textual form of one of
// the paper's plots.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Add appends a series.
func (f *Figure) Add(name string, pts []Point) {
	f.Series = append(f.Series, Series{Name: name, Points: pts})
}

// String renders each series as "x y" rows grouped under its name, a format
// loadable by any plotting tool.
func (f *Figure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n# x: %s, y: %s\n", f.Title, f.XLabel, f.YLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "\n## series: %s\n", s.Name)
		for _, p := range s.Points {
			fmt.Fprintf(&b, "%g\t%g\n", p.X, p.Y)
		}
	}
	return b.String()
}

// FormatCount renders large counts the way the paper does (e.g. 19.6M, 164K).
func FormatCount(n int64) string {
	switch {
	case n >= 1_000_000_000:
		return trimZero(fmt.Sprintf("%.1fB", float64(n)/1e9))
	case n >= 1_000_000:
		return trimZero(fmt.Sprintf("%.1fM", float64(n)/1e6))
	case n >= 1_000:
		return trimZero(fmt.Sprintf("%.1fK", float64(n)/1e3))
	default:
		return fmt.Sprintf("%d", n)
	}
}

func trimZero(s string) string {
	return strings.Replace(s, ".0", "", 1)
}
