package stats_test

import (
	"fmt"

	"repro/internal/stats"
)

// ExampleCDF builds an empirical CDF the way every figure in the
// reproduction does.
func ExampleCDF() {
	durations := []float64{1, 2, 2, 3, 5, 8, 13, 40} // broadcast minutes
	cdf := stats.NewCDF(durations)
	fmt.Printf("P(duration < 10min) = %.2f\n", cdf.At(10))
	fmt.Printf("median = %.1f min\n", cdf.Quantile(0.5))
	// Output:
	// P(duration < 10min) = 0.75
	// median = 4.0 min
}

// ExampleTable renders paper-style rows.
func ExampleTable() {
	t := &stats.Table{
		Title:   "Example",
		Headers: []string{"App", "Broadcasts"},
	}
	t.AddRow("Periscope", stats.FormatCount(19_600_000))
	t.AddRow("Meerkat", stats.FormatCount(164_000))
	fmt.Print(t.String())
	// Output:
	// Example
	// App        Broadcasts
	// ---------------------
	// Periscope  19.6M
	// Meerkat    164K
}
