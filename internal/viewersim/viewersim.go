// Package viewersim is the million-viewer event engine: it replays a full
// day of the paper's Periscope workload (§3) through the reproduced CDN at
// configurable scale — down to Scale=1, the paper's own volume of ~200K
// broadcasts and several million views in one simulated day — on a single
// machine.
//
// Two engines share one simulation model:
//
//   - Engine "wheel" (the default) multiplexes every broadcast and viewer
//     onto the sharded timer wheel (clock.Wheel): per-viewer state machines
//     (join → poll/download → buffer → leave for HLS, join → frame-drain →
//     leave for RTMP) advance by timer callbacks, so a million concurrent
//     viewers cost a million pooled timer nodes instead of a million
//     goroutines doing loopback TCP.
//   - Engine "goroutine" is the reference implementation: one goroutine per
//     broadcast and per viewer, serialized over clock.Virtual by a
//     conservative coordinator. It exists to anchor the equivalence suite —
//     both engines draw every random variate from per-entity rng streams, so
//     a (seed, config) pair produces identical delay observations from
//     either engine.
//
// Delay accounting mirrors internal/delay's Fig. 10 timestamp methodology at
// chunk granularity: each broadcast gets a trace of chunk capture, origin
// arrival (⑥), chunk-ready (⑦), and edge-arrival (⑪) offsets generated with
// the netsim WAN model in the §4.3 controlled geometry (San Francisco
// broadcaster and viewers, nearest Wowza origin, nearest Fastly edge,
// gateway relay when they are not co-located), so the per-component
// histograms land on the same Fig. 11 shape the controlled experiment
// reproduces. The simulated majority exercises the real cdn.Origin ingest →
// Invalidate → cdn.Edge raw-chunklist fast path in process, while an
// optional slice of real-socket hls.Client / rtmp.Viewer instances (real.go)
// runs concurrently against loopback servers and reports into the same
// metrics registry.
package viewersim

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/delay"
	"repro/internal/geo"
	"repro/internal/media"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/workload"
)

// Config parameterizes one simulated day.
type Config struct {
	// Seed drives all randomness; a (Seed, Config) pair fully determines
	// the run's delay observations regardless of engine or shard count.
	Seed uint64
	// Scale divides the paper's workload volume (1 = full paper scale,
	// default 100 — the repo-wide convention).
	Scale float64
	// Day is the day index into the 98-day Periscope window (default 49,
	// mid-window, where the daily rate crosses the paper's average).
	Day int
	// DayFraction simulates only the first fraction of the day (default
	// 1.0). The scale-smoke CI target and Quick experiments shrink runs
	// with it instead of distorting Scale further.
	DayFraction float64
	// Broadcasts overrides the Poisson broadcast count when > 0.
	Broadcasts int
	// ViewersPerBroadcast overrides the per-broadcast view draw when > 0
	// (benchmarks use it to pin fan-out exactly).
	ViewersPerBroadcast int
	// BroadcastDuration overrides the lognormal duration draw when > 0.
	BroadcastDuration time.Duration
	// ViewerCap bounds simulated views per broadcast (0 = uncapped); the
	// -race smoke run uses it to bound event volume.
	ViewerCap int
	// Engine selects the scheduler: "wheel" (default) or "goroutine".
	Engine string
	// Shards / Resolution / Slots configure the wheel (zero = clock.Wheel
	// defaults). Ignored by the goroutine engine.
	Shards     int
	Resolution time.Duration
	Slots      int
	// ChunkDuration (default 3 s) and PollInterval (default 2.8 s) are the
	// paper's HLS parameters; RTMPCap is the 100-viewer RTMP limit (§2.1).
	ChunkDuration time.Duration
	PollInterval  time.Duration
	RTMPCap       int
	// RTMPPreBuffer / HLSPreBuffer are the player P values (§6 defaults:
	// 1 s and 9 s).
	RTMPPreBuffer time.Duration
	HLSPreBuffer  time.Duration
	// RealHLS / RealRTMP size the real-socket fidelity slice: that many
	// hls.Client pollers and rtmp.Viewer sessions watch a short loopback
	// broadcast concurrently with the simulated run, reporting into the
	// same registry. Zero disables the slice (and keeps the run's metrics
	// byte-deterministic).
	RealHLS  int
	RealRTMP int
	// RealDuration is the fidelity broadcast's length (default 2 s of
	// wall time).
	RealDuration time.Duration
	// Metrics receives the proto-labelled delay-component histograms (the
	// same six series RunControlled and the live platform fill) plus the
	// cdn instruments; nil uses a private registry.
	Metrics *metrics.Registry
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 100
	}
	if c.Day <= 0 {
		c.Day = 49
	}
	if c.DayFraction <= 0 || c.DayFraction > 1 {
		c.DayFraction = 1
	}
	if c.Engine == "" {
		c.Engine = "wheel"
	}
	if c.ChunkDuration <= 0 {
		c.ChunkDuration = media.DefaultChunkDuration
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 2800 * time.Millisecond
	}
	if c.RTMPCap <= 0 {
		c.RTMPCap = 100
	}
	if c.RTMPPreBuffer <= 0 {
		c.RTMPPreBuffer = time.Second
	}
	if c.HLSPreBuffer <= 0 {
		c.HLSPreBuffer = 9 * time.Second
	}
	if c.RealDuration <= 0 {
		c.RealDuration = 2 * time.Second
	}
	return c
}

// Summary is one run's aggregate outcome. Every field is a deterministic
// function of (Seed, Config) — wall-clock rates are deliberately left to the
// caller so summaries can be compared byte-for-byte across runs and engines
// (Events is the one engine-specific count: timer fires for the wheel,
// coordinator sleeps for the goroutine reference).
type Summary struct {
	Broadcasts int
	Views      int64
	RTMPViews  int64
	HLSViews   int64
	Chunks     int64
	Polls      int64
	Deliveries int64
	Events     int64
	// RTMP / HLS are the mean Fig. 11 component decompositions over every
	// finished view, read back from the registry histograms.
	RTMP delay.Components
	HLS  delay.Components
	// Start and End bound the run in simulated time.
	Start time.Time
	End   time.Time
	// Real-socket fidelity slice results (zero when disabled).
	RealHLS    int
	RealRTMP   int
	RealFrames int64
	RealPolls  int64
}

func (s *Summary) String() string {
	return fmt.Sprintf(
		"broadcasts=%d views=%d (rtmp=%d hls=%d) chunks=%d polls=%d deliveries=%d events=%d\n"+
			"rtmp: upload=%v lastmile=%v buffering=%v total=%v\n"+
			"hls:  upload=%v chunking=%v wowza2fastly=%v polling=%v lastmile=%v buffering=%v total=%v",
		s.Broadcasts, s.Views, s.RTMPViews, s.HLSViews, s.Chunks, s.Polls, s.Deliveries, s.Events,
		s.RTMP.Upload, s.RTMP.LastMile, s.RTMP.Buffering, s.RTMP.Total(),
		s.HLS.Upload, s.HLS.Chunking, s.HLS.Wowza2Fastly, s.HLS.Polling, s.HLS.LastMile, s.HLS.Buffering, s.HLS.Total())
}

// Run executes one simulated day under the configured engine and, when
// RealHLS/RealRTMP are set, the concurrent real-socket fidelity slice.
func Run(cfg Config) (*Summary, error) {
	cfg = cfg.withDefaults()
	w := buildWorld(cfg)
	s := newSim(cfg, w)

	var (
		real    *realResult
		realErr error
		realCh  chan struct{}
	)
	if cfg.RealHLS > 0 || cfg.RealRTMP > 0 {
		realCh = make(chan struct{})
		go func() {
			defer close(realCh)
			real, realErr = runReal(cfg, s.reg)
		}()
	}

	switch cfg.Engine {
	case "wheel":
		s.runWheel()
	case "goroutine":
		s.runReference()
	default:
		return nil, fmt.Errorf("viewersim: unknown engine %q (want wheel or goroutine)", cfg.Engine)
	}

	if realCh != nil {
		<-realCh
		if realErr != nil {
			return nil, fmt.Errorf("viewersim: real-socket slice: %w", realErr)
		}
	}

	sum := s.summary()
	if real != nil {
		sum.RealHLS = real.hlsViewers
		sum.RealRTMP = real.rtmpViewers
		sum.RealFrames = real.frames
		sum.RealPolls = real.polls
	}
	return sum, nil
}

// bcastSpec is one broadcast's pre-drawn shape. Everything event-time about
// a broadcast derives from the spec plus its keyed rng stream, so both
// engines materialize identical broadcasts in any order.
type bcastSpec struct {
	idx   int
	start time.Duration // offset from day start
	dur   time.Duration
	views int
	rtmp  int // the first rtmp joiners (by join time) use RTMP (§2.1)
}

// world is the immutable run setting: the drawn broadcast specs plus the
// §4.3 controlled geometry every trace and viewer uses.
type world struct {
	cfg      Config
	start    time.Time // absolute day start (the clock epoch)
	window   time.Duration
	specs    []bcastSpec
	bcaster  geo.Location
	viewer   geo.Location
	origin   geo.Datacenter
	edge     geo.Datacenter
	gateway  *geo.Datacenter
	perChunk int
}

// sanFrancisco matches delay.ControlledConfig's default lab placement.
var sanFrancisco = geo.Location{City: "San Francisco", Continent: geo.NorthAmerica, Lat: 37.77, Lon: -122.42}

func buildWorld(cfg Config) *world {
	prof := workload.Periscope(cfg.Scale)
	w := &world{
		cfg:      cfg,
		start:    prof.Start.AddDate(0, 0, cfg.Day),
		window:   time.Duration(cfg.DayFraction * 24 * float64(time.Hour)),
		bcaster:  sanFrancisco,
		viewer:   sanFrancisco,
		perChunk: media.FramesPerChunk(cfg.ChunkDuration),
	}
	w.origin = geo.Nearest(w.bcaster, geo.WowzaSites())
	w.edge = geo.Nearest(w.viewer, geo.FastlySites())
	// Gateway relay exactly as RunControlled wires it: the Fastly site
	// co-located with the origin fronts it, and the hop only exists when
	// that gateway is not the serving edge itself.
	for _, e := range geo.FastlySites() {
		if geo.CoLocated(e, w.origin) {
			if !geo.CoLocated(e, w.edge) {
				e := e
				w.gateway = &e
			}
			break
		}
	}

	src := rng.New(cfg.Seed).Split("viewersim")
	n := cfg.Broadcasts
	if n <= 0 {
		n = src.Poisson(prof.DailyRate(cfg.Day) * cfg.DayFraction)
	}
	w.specs = make([]bcastSpec, 0, n)
	for i := 0; i < n; i++ {
		sp := bcastSpec{idx: i}
		sp.start = time.Duration(src.Float64() * float64(w.window))
		if cfg.BroadcastDuration > 0 {
			sp.dur = cfg.BroadcastDuration
		} else {
			sp.dur = prof.DrawDuration(src)
		}
		if cfg.ViewersPerBroadcast > 0 {
			sp.views = cfg.ViewersPerBroadcast
		} else {
			// Followers are 0 here: the day engine models audience size
			// without the social-notification boost (no graph at this
			// layer), the workload package's Meerkat-style base draw.
			total, _ := prof.DrawViews(src, 0)
			sp.views = int(total)
		}
		if cfg.ViewerCap > 0 && sp.views > cfg.ViewerCap {
			sp.views = cfg.ViewerCap
		}
		sp.rtmp = sp.views
		if sp.rtmp > cfg.RTMPCap {
			sp.rtmp = cfg.RTMPCap
		}
		w.specs = append(w.specs, sp)
	}
	sort.Slice(w.specs, func(i, j int) bool {
		if w.specs[i].start != w.specs[j].start {
			return w.specs[i].start < w.specs[j].start
		}
		return w.specs[i].idx < w.specs[j].idx
	})
	return w
}

// mix64 is the SplitMix64 finalizer — a bijection on uint64, so the disjoint
// raw key spaces below stay disjoint after mixing while spreading adjacent
// indices across wheel shards and rng streams.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// bcastKey and viewerKey are both the wheel owner key (shard affinity: all
// of one entity's callbacks serialize) and the rng stream selector (draw
// independence). Raw inputs are disjoint by the low bit and mix64 is a
// bijection, so keys never collide across entities.
func bcastKey(idx int) uint64 { return mix64(uint64(idx) << 1) }

func viewerKey(bidx, vidx int) uint64 {
	return mix64((uint64(bidx)<<22|uint64(vidx)&(1<<21-1))<<1 | 1)
}

// nextAfter returns the first grid point phase + k*interval at or after
// `after` — the offset-space version of the delay package's nextPoll.
func nextAfter(after, interval, phase time.Duration) time.Duration {
	if after <= phase {
		return phase
	}
	k := (after - phase + interval - 1) / interval
	return phase + time.Duration(k)*interval
}
