package viewersim

import (
	"context"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cdn"
	"repro/internal/clock"
	"repro/internal/geo"
	"repro/internal/hls"
	"repro/internal/media"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/rtmp"
)

// realResult summarizes the fidelity slice.
type realResult struct {
	hlsViewers  int
	rtmpViewers int
	frames      int64
	polls       int64
}

// runReal is the protocol-fidelity slice: while the event engine simulates
// the day's millions of views in process, a configurable handful of real
// hls.Client pollers and rtmp.Viewer sessions watch one short loopback
// broadcast over actual sockets — RTMP publish into the origin's embedded
// ingest server, HLS over an httptest server fronting the edge — and report
// into the same metrics registry as the simulated majority. Its sites carry
// "real-" prefixed IDs so the cdn's site-labelled instruments stay separable
// from the simulation's.
func runReal(cfg Config, reg *metrics.Registry) (*realResult, error) {
	clk := clock.NewReal()
	originSite := geo.Nearest(sanFrancisco, geo.WowzaSites())
	originSite.ID = "real-" + originSite.ID
	edgeSite := geo.Nearest(sanFrancisco, geo.FastlySites())
	edgeSite.ID = "real-" + edgeSite.ID

	origin := cdn.NewOrigin(cdn.OriginConfig{
		Site:          originSite,
		ChunkDuration: cfg.ChunkDuration,
		Clock:         clk,
		Metrics:       reg,
	})
	defer origin.Close()
	edge := cdn.NewEdge(cdn.EdgeConfig{
		Site: edgeSite,
		Resolve: func(string) (cdn.Upstream, error) {
			return cdn.Upstream{Store: origin}, nil
		},
		Clock:   clk,
		Metrics: reg,
	})
	origin.RegisterEdge(edge)

	ctx, cancel := context.WithTimeout(context.Background(), cfg.RealDuration+5*time.Second)
	defer cancel()

	ln, err := origin.RTMP().Listen(ctx, "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	addr := ln.Addr().String()
	httpSrv := httptest.NewServer(hls.Handler("/hls", edge))
	defer httpSrv.Close()

	const id = "real-0"
	pub, err := rtmp.Publish(ctx, addr, id, "tok", nil)
	if err != nil {
		return nil, err
	}

	res := &realResult{hlsViewers: cfg.RealHLS, rtmpViewers: cfg.RealRTMP}
	pollCounter := reg.Counter("hls_polls_total")
	pollBase := pollCounter.Value()

	var frames atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < cfg.RealRTMP; i++ {
		v, err := rtmp.Subscribe(ctx, addr, id, "", rtmp.ViewerOptions{Queue: 4096})
		if err != nil {
			return nil, err
		}
		wg.Add(1)
		go func(v *rtmp.Viewer) {
			defer wg.Done()
			defer v.Close()
			for range v.Frames() {
				frames.Add(1)
			}
		}(v)
	}

	src := rng.New(cfg.Seed).Split("real")
	pollCtx, pollCancel := context.WithTimeout(ctx, cfg.RealDuration+2*time.Second)
	defer pollCancel()
	interval := cfg.PollInterval
	if interval > cfg.RealDuration {
		// A slice shorter than the nominal cadence still deserves a few
		// polls per viewer.
		interval = cfg.RealDuration / 4
	}
	for i := 0; i < cfg.RealHLS; i++ {
		stagger := time.Duration(src.Float64() * float64(interval) / 8)
		wg.Add(1)
		go func(stagger time.Duration) {
			defer wg.Done()
			client := &hls.Client{BaseURL: httpSrv.URL + "/hls", Metrics: reg, Clock: clk}
			if clk.Sleep(pollCtx, stagger) != nil {
				return
			}
			_ = client.Poll(pollCtx, id, hls.PollerConfig{Interval: interval})
		}(stagger)
	}

	enc := media.NewEncoder(media.EncoderConfig{}, src.Split("enc"))
	nFrames := int(cfg.RealDuration / media.FrameDuration)
	for i := 0; i < nFrames; i++ {
		if err := clk.Sleep(ctx, media.FrameDuration); err != nil {
			break
		}
		f := enc.Next(clk.Now())
		if err := pub.Send(&f); err != nil {
			return nil, err
		}
	}
	pub.End()
	wg.Wait()

	res.frames = frames.Load()
	res.polls = pollCounter.Value() - pollBase
	return res, nil
}
