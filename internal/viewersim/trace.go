package viewersim

import (
	"time"

	"repro/internal/delay"
	"repro/internal/media"
	"repro/internal/netsim"
	"repro/internal/rng"
)

// The §4.3 trace constants shared with delay.GenTrace: phone encode
// pipeline latency, per-frame payload (≈500 kbit/s at 25 fps), and the
// crawler's trigger-poll cadence that turns a chunk-ready into an edge pull.
const (
	deviceDelay         = 150 * time.Millisecond
	frameBytes          = 2500
	triggerPollInterval = 100 * time.Millisecond
)

// btrace is one broadcast's CDN-side trace at chunk granularity — the
// scale-friendly form of delay.Trace. Where GenTrace draws the WAN model per
// frame, genTrace draws it for each chunk's first and last frame and keeps
// the same TCP-ordering clamps, so the three retained offset arrays have the
// exact semantics of the paper's numbered timestamps:
//
//	originAt[c] — ⑥, the chunk's first frame reaches the origin
//	readyAt[c]  — ⑦, the last member frame arrives and the chunk seals
//	edgeAt[c]   — ⑪, the chunk is available at the edge
//
// Capture times, member counts, byte sizes, and content durations are pure
// arithmetic over (nFrames, perChunk) and are derived, not stored. All
// offsets are relative to the broadcast's start.
type btrace struct {
	dur      time.Duration
	nFrames  int
	perChunk int
	originAt []time.Duration
	readyAt  []time.Duration
	edgeAt   []time.Duration
}

func (t *btrace) chunks() int { return len(t.originAt) }

func (t *btrace) framesOf(c int) int {
	lo := c * t.perChunk
	hi := lo + t.perChunk
	if hi > t.nFrames {
		hi = t.nFrames
	}
	return hi - lo
}

// capturedOf is ① / ⑤ of the chunk's first frame.
func (t *btrace) capturedOf(c int) time.Duration {
	return time.Duration(c*t.perChunk) * media.FrameDuration
}

// lastCapOf is the capture time of the chunk's last member frame.
func (t *btrace) lastCapOf(c int) time.Duration {
	return time.Duration(c*t.perChunk+t.framesOf(c)-1) * media.FrameDuration
}

func (t *btrace) bytesOf(c int) int { return t.framesOf(c) * frameBytes }

// contentOf is the chunk's content duration (the last chunk may be partial).
func (t *btrace) contentOf(c int) time.Duration {
	return time.Duration(t.framesOf(c)) * media.FrameDuration
}

// genTrace fills tr for one broadcast, reusing its slices. Draw order per
// chunk is fixed (uplink last-mile + one-way for the first frame, again for
// the last frame when distinct, invalidation one-way, trigger RTT, transfer)
// so a broadcast's trace is a pure function of its keyed rng stream — the
// foundation of cross-engine determinism.
func genTrace(w *world, sp bcastSpec, src *rng.Source, tr *btrace) {
	model := netsim.NewModel(netsim.Params{}, src)
	// The trigger poller's grid phase. RunControlled anchors every
	// broadcast on one absolute epoch; per-broadcast offsets start at 0
	// here, so an explicit phase draw restores the cross-broadcast
	// dispersion of poll alignment.
	phase := time.Duration(src.Float64() * float64(triggerPollInterval))

	nFrames := int(sp.dur / media.FrameDuration)
	if nFrames < 1 {
		nFrames = 1
	}
	nChunks := (nFrames + w.perChunk - 1) / w.perChunk
	tr.dur = sp.dur
	tr.nFrames = nFrames
	tr.perChunk = w.perChunk
	tr.originAt = tr.originAt[:0]
	tr.readyAt = tr.readyAt[:0]
	tr.edgeAt = tr.edgeAt[:0]

	var prevReady, prevEdge time.Duration
	for c := 0; c < nChunks; c++ {
		frames := w.perChunk
		if lo := c * w.perChunk; lo+frames > nFrames {
			frames = nFrames - lo
		}
		// ⑥: first frame's device→origin leg, ordered after every prior
		// frame (TCP in-order delivery, as in GenTrace).
		o := tr.capturedOf(c) + deviceDelay +
			model.LastMile(netsim.WiFi, frameBytes) +
			model.OneWay(w.bcaster, w.origin.Location)
		if o < prevReady {
			o = prevReady
		}
		// ⑦: last frame's arrival seals the chunk.
		r := o
		if frames > 1 {
			r = tr.lastCapOf(c) + deviceDelay +
				model.LastMile(netsim.WiFi, frameBytes) +
				model.OneWay(w.bcaster, w.origin.Location)
			if r < o {
				r = o
			}
		}
		prevReady = r
		// ⑧–⑪ exactly as delay.EdgeArrivals: invalidate, first trigger
		// poll on the grid, then the pull (via the gateway relay when the
		// origin's co-located edge is not the serving edge).
		invalidAt := r + model.OneWay(w.origin.Location, w.edge.Location)
		pollAt := nextAfter(invalidAt, triggerPollInterval, phase)
		var arr time.Duration
		if w.gateway != nil {
			arr = pollAt +
				model.RTT(w.edge.Location, w.gateway.Location) +
				delay.DefaultGatewayOverhead +
				model.Transfer(w.gateway.Location, w.edge.Location, frames*frameBytes)
		} else {
			arr = pollAt +
				model.RTT(w.edge.Location, w.origin.Location) +
				model.Transfer(w.origin.Location, w.edge.Location, frames*frameBytes)
		}
		if arr < prevEdge {
			arr = prevEdge
		}
		prevEdge = arr

		tr.originAt = append(tr.originAt, o)
		tr.readyAt = append(tr.readyAt, r)
		tr.edgeAt = append(tr.edgeAt, arr)
	}
}
