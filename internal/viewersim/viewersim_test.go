package viewersim

import (
	"math"
	"reflect"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/player"
	"repro/internal/rng"
)

// protoHists extracts the proto-labelled delay histograms — the series both
// engines must reproduce bit-for-bit. Site-labelled cdn instruments are
// excluded on purpose: which same-tick viewer wins the pull race is
// scheduling-dependent, and the equivalence contract only covers the
// trace-derived accounting.
func protoHists(reg *metrics.Registry) []metrics.HistogramValue {
	var out []metrics.HistogramValue
	for _, h := range reg.Snapshot().Histograms {
		if h.Labels["proto"] != "" {
			out = append(out, h)
		}
	}
	return out
}

// comparable strips the fields allowed to differ between engines: Events
// counts different things (timer fires vs coordinator sleeps) and End is
// tick-rounded on the wheel.
func comparable(s *Summary) Summary {
	c := *s
	c.Events = 0
	c.End = time.Time{}
	return c
}

func TestPlayAccMatchesSimulate(t *testing.T) {
	src := rng.New(41)
	base := time.Unix(0, 0)
	for run := 0; run < 300; run++ {
		n := 1 + src.Intn(40)
		pre := time.Duration(src.Float64() * 12e9)
		if run%7 == 0 {
			pre = 0
		}
		var items []player.Item
		var acc playAcc
		acc.reset(pre)
		arr := time.Duration(src.Float64() * 5e9)
		for i := 0; i < n; i++ {
			dur := time.Duration(1+src.Intn(4000)) * time.Millisecond
			items = append(items, player.Item{Seq: uint64(i), Duration: dur, ArriveAt: base.Add(arr)})
			acc.add(arr, dur)
			// Monotone arrivals, the clamp invariant both protocols hold.
			arr += time.Duration(src.Float64() * 6e9)
		}
		want := player.Simulate(items, player.Config{PreBuffer: pre})
		got := acc.mean()
		if got != want.MeanBufferingDelay {
			t.Fatalf("run %d: playAcc mean %v, Simulate %v (n=%d pre=%v)", run, got, want.MeanBufferingDelay, n, pre)
		}
		if acc.played != want.Played {
			t.Fatalf("run %d: playAcc played %d, Simulate %d", run, acc.played, want.Played)
		}
	}
}

// equivCfg is small enough for the goroutine reference (one goroutine per
// viewer) while still covering both protocols, multi-chunk traces, late
// joins, and broadcast overlap.
func equivCfg(seed uint64) Config {
	return Config{
		Seed:      seed,
		Scale:     5000,
		ViewerCap: 150,
		// A low RTMP cap makes HLS overflow common even in a small
		// day, so every seed exercises both protocol paths.
		RTMPCap: 20,
	}
}

func TestWheelMatchesGoroutineReference(t *testing.T) {
	for _, seed := range []uint64{1, 7, 23} {
		cfg := equivCfg(seed)

		cfg.Engine = "wheel"
		cfg.Metrics = metrics.NewRegistry()
		wheelSum, err := Run(cfg)
		if err != nil {
			t.Fatalf("seed %d: wheel: %v", seed, err)
		}
		wheelHists := protoHists(cfg.Metrics)

		cfg.Engine = "goroutine"
		cfg.Metrics = metrics.NewRegistry()
		refSum, err := Run(cfg)
		if err != nil {
			t.Fatalf("seed %d: goroutine: %v", seed, err)
		}
		refHists := protoHists(cfg.Metrics)

		if got, want := comparable(wheelSum), comparable(refSum); !reflect.DeepEqual(got, want) {
			t.Errorf("seed %d: summaries diverge\nwheel:     %+v\ngoroutine: %+v", seed, got, want)
		}
		if !reflect.DeepEqual(wheelHists, refHists) {
			t.Errorf("seed %d: proto-labelled delay histograms diverge between engines", seed)
		}
		if wheelSum.Views == 0 || wheelSum.HLSViews == 0 || wheelSum.RTMPViews == 0 {
			t.Fatalf("seed %d: degenerate workload: %+v", seed, wheelSum)
		}
	}
}

func TestWheelDeterministicAcrossShardCounts(t *testing.T) {
	var sums []*Summary
	var hists [][]metrics.HistogramValue
	for _, shards := range []int{1, 3, 16} {
		cfg := equivCfg(99)
		cfg.Engine = "wheel"
		cfg.Shards = shards
		cfg.Metrics = metrics.NewRegistry()
		sum, err := Run(cfg)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		sums = append(sums, sum)
		hists = append(hists, protoHists(cfg.Metrics))
	}
	for i := 1; i < len(sums); i++ {
		if !reflect.DeepEqual(sums[0], sums[i]) {
			t.Errorf("summary varies with shard count:\n%+v\n%+v", sums[0], sums[i])
		}
		if !reflect.DeepEqual(hists[0], hists[i]) {
			t.Errorf("histograms vary with shard count (run %d)", i)
		}
	}
}

func TestWheelRepeatedRunsByteIdentical(t *testing.T) {
	run := func() (*Summary, []metrics.HistogramValue) {
		cfg := equivCfg(5)
		cfg.Engine = "wheel"
		cfg.Metrics = metrics.NewRegistry()
		sum, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return sum, protoHists(cfg.Metrics)
	}
	s1, h1 := run()
	s2, h2 := run()
	if !reflect.DeepEqual(s1, s2) {
		t.Errorf("repeated seeded runs differ:\n%+v\n%+v", s1, s2)
	}
	if !reflect.DeepEqual(h1, h2) {
		t.Errorf("repeated seeded runs produce different histograms")
	}
}

func TestFixedFanoutCounts(t *testing.T) {
	cfg := Config{
		Seed:                3,
		Scale:               1000,
		Broadcasts:          3,
		ViewersPerBroadcast: 5,
		BroadcastDuration:   10 * time.Second,
		Engine:              "wheel",
	}
	sum, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Broadcasts != 3 {
		t.Errorf("broadcasts = %d, want 3", sum.Broadcasts)
	}
	if sum.Views != 15 {
		t.Errorf("views = %d, want 15", sum.Views)
	}
	// 10 s at 3 s chunks → 4 chunks per broadcast.
	if sum.Chunks != 12 {
		t.Errorf("chunks = %d, want 12", sum.Chunks)
	}
	if sum.RTMPViews != 15 || sum.HLSViews != 0 {
		t.Errorf("5 viewers under the RTMP cap should all take RTMP: %+v", sum)
	}
}

func TestUnknownEngineRejected(t *testing.T) {
	if _, err := Run(Config{Engine: "bogus", Broadcasts: 1, ViewersPerBroadcast: 1}); err == nil {
		t.Fatal("want error for unknown engine")
	}
}

// TestScaleSmoke is the CI gate behind `make scale-smoke`: a 1:200-scale
// simulated day on the wheel engine under -race, with the real-socket
// fidelity slice running concurrently, asserting the Fig. 11 shape — HLS
// delay dominated by chunking+polling+buffering, an order beyond RTMP.
func TestScaleSmoke(t *testing.T) {
	cfg := Config{
		Seed:         11,
		Scale:        200,
		ViewerCap:    500,
		Engine:       "wheel",
		RealHLS:      2,
		RealRTMP:     2,
		RealDuration: time.Second,
		Metrics:      metrics.NewRegistry(),
	}
	sum, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Broadcasts == 0 || sum.Views == 0 || sum.Chunks == 0 || sum.Deliveries == 0 {
		t.Fatalf("degenerate day: %+v", sum)
	}
	rtmpTotal := sum.RTMP.Total()
	hlsTotal := sum.HLS.Total()
	if rtmpTotal < 200*time.Millisecond || rtmpTotal > 10*time.Second {
		t.Errorf("RTMP total delay %v outside the Fig. 11 band", rtmpTotal)
	}
	if hlsTotal < 4*time.Second || hlsTotal > 60*time.Second {
		t.Errorf("HLS total delay %v outside the Fig. 11 band", hlsTotal)
	}
	if hlsTotal < 2*rtmpTotal {
		t.Errorf("HLS (%v) should dominate RTMP (%v) as in Fig. 11", hlsTotal, rtmpTotal)
	}
	if sum.HLS.Polling <= 0 || sum.HLS.Polling > cfg.PollInterval+2800*time.Millisecond {
		t.Errorf("HLS polling %v outside (0, interval]", sum.HLS.Polling)
	}
	if math.Abs(float64(sum.HLS.Chunking-3*time.Second)) > float64(time.Second) {
		t.Errorf("HLS chunking %v should sit near the 3 s chunk duration", sum.HLS.Chunking)
	}
	if sum.RealFrames == 0 {
		t.Errorf("real RTMP slice drained no frames")
	}
	if sum.RealPolls == 0 {
		t.Errorf("real HLS slice made no polls")
	}
}
