package viewersim

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
)

// runReference drives the day with the pre-wheel architecture: one goroutine
// per broadcast and per viewer, blocked on a conservative coordinator over
// clock.Virtual. It exists as the equivalence anchor (and the baseline
// BenchmarkViewerEngine contrasts): the same sim methods run in event-time
// order, one goroutine at a time, so any divergence from the wheel engine is
// a wheel bug, not a modeling difference.
func (s *sim) runReference() {
	clk := clock.NewVirtual(s.w.start)
	s.buildCDN(clk)
	co := newCoord(clk)
	for i := range s.w.specs {
		sp := s.w.specs[i]
		co.spawn(func() { s.refBroadcast(co, sp) })
	}
	co.drive()
	s.end = clk.Now()
	s.events = co.events.Load()
	_ = s.origin.Close()
}

func (s *sim) refBroadcast(co *coord, sp bcastSpec) {
	co.sleepUntil(s.w.start.Add(sp.start))
	b := s.setupBroadcast(sp)
	for i := range b.joins {
		idx := i
		co.spawn(func() { s.refViewer(co, b, idx) })
	}
	for b.nextChunk < b.tr.chunks() {
		co.sleepUntil(b.abs(b.tr.readyAt[b.nextChunk]))
		s.ingestChunk(b)
	}
	s.userDone(b)
}

func (s *sim) refViewer(co *coord, b *bcastRun, idx int) {
	co.sleepUntil(b.abs(b.joins[idx]))
	v := s.newViewer(b, idx)
	if v == nil {
		return
	}
	for {
		co.sleepUntil(b.abs(v.nextAt))
		if _, done := s.deliver(v); done {
			return
		}
	}
}

// coord serializes a population of goroutines over a Virtual clock: at any
// instant at most one simulation goroutine is runnable, and the driver only
// pops the next timer event once everyone is parked. That makes the
// goroutine engine's execution order exactly the Virtual clock's (time, seq)
// order — the property the wheel's per-owner serialization is tested
// against.
type coord struct {
	clk     *clock.Virtual
	mu      sync.Mutex
	cond    *sync.Cond
	running int
	events  atomic.Int64
}

func newCoord(clk *clock.Virtual) *coord {
	c := &coord{clk: clk}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// spawn registers fn as a live simulation goroutine; it counts as running
// until its first sleep (or exit), keeping the driver from advancing time
// past work that hasn't parked yet.
func (c *coord) spawn(fn func()) {
	c.mu.Lock()
	c.running++
	c.mu.Unlock()
	go func() {
		fn()
		c.exit()
	}()
}

func (c *coord) exit() {
	c.mu.Lock()
	c.running--
	if c.running == 0 {
		c.cond.Signal()
	}
	c.mu.Unlock()
}

// sleepUntil parks the caller until the Virtual clock reaches at. The wake
// callback marks the goroutine running again before the driver can observe
// quiescence, so time never advances over a woken-but-unscheduled goroutine.
func (c *coord) sleepUntil(at time.Time) {
	c.events.Add(1)
	ch := make(chan struct{})
	c.clk.ScheduleAt(at, func(time.Time) {
		c.mu.Lock()
		c.running++
		c.mu.Unlock()
		close(ch)
	})
	c.exit()
	<-ch
}

// drive steps the Virtual clock whenever the population is fully parked,
// returning once no goroutine is live and no timer is pending.
func (c *coord) drive() {
	for {
		c.mu.Lock()
		for c.running > 0 {
			c.cond.Wait()
		}
		c.mu.Unlock()
		if !c.clk.Step(maxSimTime) {
			c.mu.Lock()
			idle := c.running == 0
			c.mu.Unlock()
			if idle {
				return
			}
		}
	}
}

// maxSimTime is an effectively-unbounded Step limit.
var maxSimTime = time.Unix(1<<40, 0)
